// Figure 7 reproduction: optimization progress of SHP-k (k = 8) on soc-LJ
// for p = 0.5 vs p = 1.0.
//
// (a) average fanout per iteration; (b) % of vertices moved per iteration.
// Paper shape: p = 0.5 keeps far more vertices moving in early iterations
// and converges to a better fanout; with p = 1.0 movement collapses almost
// immediately (local minimum, §4.2.4 / Fig. 2's mechanism at scale).
#include <cstdio>

#include "common/flags.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace shp;
  auto flags = Flags::Parse(argc, argv).value();
  bench::PrintBanner("Figure 7: SHP-k convergence, p=0.5 vs p=1.0 (soc-LJ, k=8)",
                     flags);

  bench::Instance instance =
      bench::LoadInstance("soc-LJ", flags.GetDouble("scale", 0.5));
  const BucketId k = 8;
  const uint32_t iterations =
      static_cast<uint32_t>(flags.GetInt("iterations", 50));

  struct Trace {
    std::vector<double> fanout;
    std::vector<double> moved_percent;
  };
  auto run = [&](double p) {
    Trace trace;
    ShpKOptions options;
    options.k = k;
    options.p = p;
    options.seed = 33;
    options.max_iterations = iterations;
    options.min_move_fraction = 0.0;  // run all iterations for the trace
    ShpKPartitioner(options).Run(
        instance.graph, nullptr,
        [&](uint32_t, const IterationStats& stats,
            const Partition& partition) {
          trace.fanout.push_back(
              AverageFanout(instance.graph, partition.assignment()));
          trace.moved_percent.push_back(stats.moved_fraction * 100.0);
          return true;
        });
    return trace;
  };

  const Trace half = run(0.5);
  const Trace one = run(1.0);

  TablePrinter table({"iteration", "fanout p=0.5", "fanout p=1.0",
                      "moved% p=0.5", "moved% p=1.0"});
  for (size_t i = 0; i < std::max(half.fanout.size(), one.fanout.size());
       ++i) {
    if (i % 5 != 0 && i != 1 && i + 1 != half.fanout.size()) continue;
    auto cell = [](const std::vector<double>& v, size_t i, int precision) {
      return i < v.size() ? TablePrinter::Fmt(v[i], precision)
                          : std::string("-");
    };
    table.AddRow({std::to_string(i + 1), cell(half.fanout, i, 3),
                  cell(one.fanout, i, 3), cell(half.moved_percent, i, 2),
                  cell(one.moved_percent, i, 2)});
  }
  table.Print();

  const double final_half = half.fanout.back();
  const double final_one = one.fanout.back();
  std::printf("\nfinal fanout: p=0.5 -> %.3f, p=1.0 -> %.3f (+%.1f%% worse; "
              "paper: p=1 substantially worse)\n",
              final_half, final_one, (final_one / final_half - 1.0) * 100.0);
  return 0;
}
