// Figure 6 reproduction: fanout reduction of SHP-2 on soc-Pokec as a
// function of the fanout probability p, for k ∈ {2, 8, 32, 128, 512}.
//
// Paper shape: a U-curve — quality peaks around 0.4 ≤ p ≤ 0.8 (p = 0.5 is
// the default), and p = 1.0 (direct fanout optimization) is clearly worse
// because the local search gets stuck (§4.2.4).
#include <cstdio>

#include "common/flags.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace shp;
  auto flags = Flags::Parse(argc, argv).value();
  bench::PrintBanner(
      "Figure 6: fanout reduction vs fanout probability p (SHP-2, soc-Pokec)",
      flags);

  bench::Instance instance =
      bench::LoadInstance("soc-Pokec", flags.GetDouble("scale", 0.4));

  const std::vector<double> ps = {0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.9, 1.0};
  const std::vector<BucketId> ks = {2, 8, 32, 128, 512};

  std::vector<std::string> headers = {"p"};
  for (BucketId k : ks) headers.push_back("k=" + std::to_string(k));
  TablePrinter table(headers);

  // Reduction is reported against the random partition at the same k
  // (the paper's y-axis is % reduction in fanout).
  std::vector<double> random_fanout;
  for (BucketId k : ks) {
    random_fanout.push_back(AverageFanout(
        instance.graph,
        Partition::Random(instance.graph.num_data(), k, 1).assignment()));
  }

  for (double p : ps) {
    std::vector<std::string> row = {TablePrinter::Fmt(p, 2)};
    for (size_t ki = 0; ki < ks.size(); ++ki) {
      const BucketId k = ks[ki];
      if (static_cast<VertexId>(k) * 2 > instance.graph.num_data()) {
        row.push_back("-");
        continue;
      }
      RecursiveOptions options;
      options.k = k;
      options.p = p;
      options.seed = 21;
      const auto result = RecursivePartitioner(options).Run(instance.graph);
      const double fanout = AverageFanout(instance.graph, result.assignment);
      row.push_back(TablePrinter::FmtPercent(
          fanout / random_fanout[ki] - 1.0, 1));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf("\n(values are fanout change vs random partitioning at the "
              "same k; more negative = better.\npaper shape: best around "
              "p in [0.4, 0.8]; p=1.0 worse than p=0.5.)\n");
  return 0;
}
