// Steady-state refinement-iteration latency: incremental neighbor-data
// maintenance vs the full-rebuild reference path.
//
// Protocol: run SHP-k on a power-law generator workload until the moved
// fraction decays below a steady-state threshold (default 0.2%, matching
// the paper's reported late-iteration movement on soc-LJ; <= 5% per the
// acceptance criterion), then time the remaining iterations with each
// engine from an identical warm-start assignment. Both engines execute bit-identical trajectories (the
// incremental path is exact; see core/refiner.h), so the comparison is pure
// iteration latency. Results go to stdout and to BENCH_refine.json for CI
// trend tracking; the run exits nonzero if the speedup falls below
// --min_speedup (default 0 so ad-hoc runs never fail; CI passes a gate).
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/timer.h"
#include "core/move_topology.h"
#include "core/partition.h"
#include "core/refiner.h"
#include "core/shp_k.h"
#include "graph/gen_powerlaw.h"
#include "harness.h"

namespace {

struct PathTiming {
  std::vector<double> iteration_ms;
  double mean_ms = 0.0;
  uint64_t rebuilds = 0;
  uint64_t recomputed = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace shp;
  auto flags = Flags::Parse(argc, argv).value();
  bench::PrintBanner(
      "Refinement iteration latency: incremental vs full rebuild", flags);

  PowerLawConfig config;
  config.num_queries = static_cast<VertexId>(
      flags.GetInt("queries", 60000) * flags.GetDouble("scale", 1.0));
  config.num_data = static_cast<VertexId>(
      flags.GetInt("data", 40000) * flags.GetDouble("scale", 1.0));
  config.target_edges = static_cast<EdgeIndex>(
      flags.GetInt("edges", 500000) * flags.GetDouble("scale", 1.0));
  config.seed = 7;
  const BipartiteGraph graph = GeneratePowerLaw(config);
  const BucketId k = static_cast<BucketId>(flags.GetInt("k", 32));
  const uint64_t seed = 11;
  const double steady_threshold = flags.GetDouble("steady_fraction", 0.002);
  const uint32_t timed_iterations = static_cast<uint32_t>(
      std::max<int64_t>(1, flags.GetInt("iterations", 20)));
  const double min_speedup = flags.GetDouble("min_speedup", 0.0);

  std::printf("graph: %u queries, %u data, %llu pins, k=%d\n",
              graph.num_queries(), graph.num_data(),
              static_cast<unsigned long long>(graph.num_edges()), k);

  // Warm-up: refine from random until the moved fraction decays into steady
  // state, then snapshot the assignment both timed runs start from.
  const MoveTopology topo = MoveTopology::FullK(k, graph.num_data(), 0.05);
  RefinerOptions base_options;
  base_options.exploration_probability =
      flags.GetDouble("exploration", 0.0);
  Partition warmup = Partition::BalancedRandom(graph.num_data(), k, seed);
  uint64_t warm_iterations = 0;
  {
    Refiner warm_refiner(graph, base_options);
    for (; warm_iterations < 200; ++warm_iterations) {
      const IterationStats stats =
          warm_refiner.RunIteration(topo, &warmup, seed, warm_iterations);
      if (stats.moved_fraction <= steady_threshold) break;
    }
  }
  std::printf("steady state after %llu warm-up iterations (moved <= %.1f%%)\n",
              static_cast<unsigned long long>(warm_iterations),
              steady_threshold * 100.0);
  const std::vector<BucketId> steady_start = warmup.assignment();

  auto run_path = [&](bool incremental) {
    RefinerOptions options = base_options;
    options.incremental = incremental;
    Refiner refiner(graph, options);
    Partition partition = Partition::FromAssignment(steady_start, k);
    PathTiming timing;
    for (uint32_t i = 0; i < timed_iterations; ++i) {
      Timer timer;
      const IterationStats stats = refiner.RunIteration(
          topo, &partition, seed, warm_iterations + 1 + i);
      timing.iteration_ms.push_back(timer.ElapsedMillis());
      timing.recomputed += stats.num_recomputed;
    }
    timing.rebuilds = refiner.num_full_rebuilds();
    timing.mean_ms = std::accumulate(timing.iteration_ms.begin(),
                                     timing.iteration_ms.end(), 0.0) /
                     static_cast<double>(timing.iteration_ms.size());
    return std::make_pair(timing, partition.assignment());
  };

  const auto [full, full_assignment] = run_path(/*incremental=*/false);
  const auto [incremental, incremental_assignment] =
      run_path(/*incremental=*/true);

  if (full_assignment != incremental_assignment) {
    std::fprintf(stderr,
                 "FAIL: incremental and full-rebuild paths diverged\n");
    return 2;
  }

  const double speedup = full.mean_ms / incremental.mean_ms;
  std::printf("\nfull rebuild : %.3f ms/iteration (%llu rebuilds, %llu "
              "proposals recomputed)\n",
              full.mean_ms, static_cast<unsigned long long>(full.rebuilds),
              static_cast<unsigned long long>(full.recomputed));
  std::printf("incremental  : %.3f ms/iteration (%llu rebuilds, %llu "
              "proposals recomputed)\n",
              incremental.mean_ms,
              static_cast<unsigned long long>(incremental.rebuilds),
              static_cast<unsigned long long>(incremental.recomputed));
  std::printf("speedup      : %.2fx (trajectories identical)\n", speedup);

  const std::string out_path =
      flags.GetString("out", "BENCH_refine.json");
  std::FILE* out = std::fopen(out_path.c_str(), "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  auto write_series = [&](const char* name, const PathTiming& t) {
    std::fprintf(out,
                 "  \"%s\": {\n"
                 "    \"mean_iteration_ms\": %.6f,\n"
                 "    \"full_rebuilds\": %llu,\n"
                 "    \"proposals_recomputed\": %llu,\n"
                 "    \"iteration_ms\": [",
                 name, t.mean_ms, static_cast<unsigned long long>(t.rebuilds),
                 static_cast<unsigned long long>(t.recomputed));
    for (size_t i = 0; i < t.iteration_ms.size(); ++i) {
      std::fprintf(out, "%s%.6f", i == 0 ? "" : ", ", t.iteration_ms[i]);
    }
    std::fprintf(out, "]\n  }");
  };
  std::fprintf(out,
               "{\n  \"benchmark\": \"refine_iteration\",\n"
               "  \"num_queries\": %u,\n  \"num_data\": %u,\n"
               "  \"num_pins\": %llu,\n  \"k\": %d,\n"
               "  \"steady_fraction\": %.4f,\n"
               "  \"warmup_iterations\": %llu,\n"
               "  \"timed_iterations\": %u,\n",
               graph.num_queries(), graph.num_data(),
               static_cast<unsigned long long>(graph.num_edges()), k,
               steady_threshold,
               static_cast<unsigned long long>(warm_iterations),
               timed_iterations);
  write_series("full_rebuild", full);
  std::fprintf(out, ",\n");
  write_series("incremental", incremental);
  std::fprintf(out, ",\n  \"speedup\": %.4f\n}\n", speedup);
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  if (speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: speedup %.2fx below required %.2fx\n",
                 speedup, min_speedup);
    return 3;
  }
  return 0;
}
