// Steady-state refinement-iteration latency: full-rebuild reference vs the
// incremental pull path vs the query-major push sweep, plus the BSP engine
// in both superstep-2 exchange modes (full-reship pull vs delta exchange +
// push sweep) — on the full-k topology AND on a grouped SHP-2 recursion
// window (sibling pairs), the configuration production recursion runs. The
// grouped series gate the deterministic steady-state superstep-2 byte
// reduction and the rtol 1e-4 fanout contract.
//
// Protocol: run SHP-k on a power-law generator workload until the moved
// fraction decays below a steady-state threshold (default 0.2%, matching
// the paper's reported late-iteration movement on soc-LJ; <= 5% per the
// acceptance criterion), then time the remaining iterations with each
// engine from an identical warm-start assignment. The full-rebuild and
// incremental pull engines execute bit-identical trajectories (the
// incremental path is exact; see core/refiner.h). The push sweep changes
// float summation order, so its trajectory matches pull to tolerance, not
// bits — the run checks the final average fanout agrees within a relative
// 1e-4 (the strict per-proposal harness lives in tests/affinity_sweep_test
// and the Debug-build per-iteration cross-checks). Results go to stdout and
// to BENCH_refine.json for CI trend tracking; the run exits nonzero if
// incremental/full falls below --min_speedup or push/incremental falls
// below --min_push_speedup (both default 0 so ad-hoc runs never fail; CI
// passes gates).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/move_topology.h"
#include "core/partition.h"
#include "core/refiner.h"
#include "core/shp_k.h"
#include "engine/shp_bsp.h"
#include "graph/gen_powerlaw.h"
#include "objective/gain.h"
#include "objective/objective.h"
#include "objective/scan_kernels.h"
#include "harness.h"

namespace {

struct PathTiming {
  std::vector<double> iteration_ms;
  double mean_ms = 0.0;
  uint64_t rebuilds = 0;
  uint64_t sweep_builds = 0;
  uint64_t recomputed = 0;
  uint64_t delta_records = 0;
};

/// One BSP engine run: per-iteration latency plus per-superstep-2 remote
/// bytes (the delta-exchange acceptance metric). `steady_s2_bytes` excludes
/// iteration 0 — both modes bootstrap there with the same full reship.
struct BspTiming {
  std::vector<double> iteration_ms;
  std::vector<uint64_t> s2_remote_bytes;
  double mean_ms = 0.0;
  uint64_t steady_s2_bytes = 0;
  /// Envelope framing overhead (header varints + CRC32C) of the steady
  /// superstep-2 exchanges — tracked as its own series, never mixed into
  /// the payload byte series, and gated at <= 4% of the varint payload.
  uint64_t steady_envelope_bytes = 0;
  uint64_t delta_records = 0;
  /// Adjacency pin reads of the one-pass sharded bootstrap (push mode; 0 on
  /// the pull path, which never builds the affinity sweep).
  uint64_t bootstrap_adjacency_reads = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace shp;
  auto flags = Flags::Parse(argc, argv).value();
  bench::PrintBanner(
      "Refinement iteration latency: full rebuild vs incremental pull vs "
      "query-major push sweep",
      flags);

  PowerLawConfig config;
  config.num_queries = static_cast<VertexId>(
      flags.GetInt("queries", 60000) * flags.GetDouble("scale", 1.0));
  config.num_data = static_cast<VertexId>(
      flags.GetInt("data", 40000) * flags.GetDouble("scale", 1.0));
  config.target_edges = static_cast<EdgeIndex>(
      flags.GetInt("edges", 500000) * flags.GetDouble("scale", 1.0));
  config.seed = 7;
  const BipartiteGraph graph = GeneratePowerLaw(config);
  const BucketId k = static_cast<BucketId>(flags.GetInt("k", 32));
  const uint64_t seed = 11;
  const double steady_threshold = flags.GetDouble("steady_fraction", 0.002);
  const uint32_t timed_iterations = static_cast<uint32_t>(
      std::max<int64_t>(1, flags.GetInt("iterations", 20)));
  const double min_speedup = flags.GetDouble("min_speedup", 0.0);
  const double min_push_speedup = flags.GetDouble("min_push_speedup", 0.0);

  std::printf("graph: %u queries, %u data, %llu pins, k=%d\n",
              graph.num_queries(), graph.num_data(),
              static_cast<unsigned long long>(graph.num_edges()), k);

  // Warm-up: refine from random until the moved fraction decays into steady
  // state, then snapshot the assignment all timed runs start from.
  const MoveTopology topo = MoveTopology::FullK(k, graph.num_data(), 0.05);
  RefinerOptions base_options;
  base_options.exploration_probability =
      flags.GetDouble("exploration", 0.0);
  Partition warmup = Partition::BalancedRandom(graph.num_data(), k, seed);
  uint64_t warm_iterations = 0;
  {
    RefinerOptions warm_options = base_options;
    warm_options.sweep_mode = RefinerOptions::SweepMode::kPull;
    Refiner warm_refiner(graph, warm_options);
    for (; warm_iterations < 200; ++warm_iterations) {
      const IterationStats stats =
          warm_refiner.RunIteration(topo, &warmup, seed, warm_iterations);
      if (stats.moved_fraction <= steady_threshold) break;
    }
  }
  std::printf("steady state after %llu warm-up iterations (moved <= %.1f%%)\n",
              static_cast<unsigned long long>(warm_iterations),
              steady_threshold * 100.0);
  const std::vector<BucketId> steady_start = warmup.assignment();

  auto run_path = [&](bool incremental, RefinerOptions::SweepMode mode) {
    RefinerOptions options = base_options;
    options.incremental = incremental;
    options.sweep_mode = mode;
    Refiner refiner(graph, options);
    Partition partition = Partition::FromAssignment(steady_start, k);
    PathTiming timing;
    for (uint32_t i = 0; i < timed_iterations; ++i) {
      Timer timer;
      const IterationStats stats = refiner.RunIteration(
          topo, &partition, seed, warm_iterations + 1 + i);
      timing.iteration_ms.push_back(timer.ElapsedMillis());
      timing.recomputed += stats.num_recomputed;
      timing.delta_records += stats.num_delta_records;
    }
    timing.rebuilds = refiner.num_full_rebuilds();
    timing.sweep_builds = refiner.num_sweep_builds();
    timing.mean_ms = std::accumulate(timing.iteration_ms.begin(),
                                     timing.iteration_ms.end(), 0.0) /
                     static_cast<double>(timing.iteration_ms.size());
    return std::make_pair(timing, partition.assignment());
  };

  const auto [full, full_assignment] =
      run_path(/*incremental=*/false, RefinerOptions::SweepMode::kPull);
  const auto [incremental, incremental_assignment] =
      run_path(/*incremental=*/true, RefinerOptions::SweepMode::kPull);
  const auto [push, push_assignment] =
      run_path(/*incremental=*/true, RefinerOptions::SweepMode::kPush);

  // BSP engine series: the same steady-state iterations through the
  // message-passing engine, full-reship pull vs delta exchange + push —
  // once on the full-k topology and once on a grouped SHP-2 recursion
  // window (sibling pairs), the configuration production recursion runs.
  const int bsp_workers =
      static_cast<int>(flags.GetInt("bsp_workers", 4));
  auto run_bsp = [&](RefinerOptions::SweepMode mode, const MoveTopology& t,
                     const std::vector<BucketId>& start,
                     uint64_t iteration_offset, bool varint_wire) {
    RefinerOptions options = base_options;
    options.sweep_mode = mode;
    BspConfig config;
    config.num_workers = bsp_workers;
    config.varint_wire = varint_wire;
    std::vector<SuperstepStats> log;
    BspRefiner refiner(graph, options, config, &log);
    Partition partition = Partition::FromAssignment(start, k);
    BspTiming timing;
    for (uint32_t i = 0; i < timed_iterations; ++i) {
      Timer timer;
      const IterationStats stats = refiner.RunIteration(
          t, &partition, seed, iteration_offset + 1 + i);
      timing.iteration_ms.push_back(timer.ElapsedMillis());
      timing.delta_records += stats.num_delta_records;
      const uint64_t s2 = log[i * 4 + 1].traffic.remote_bytes;
      timing.s2_remote_bytes.push_back(s2);
      if (i > 0) {
        timing.steady_s2_bytes += s2;
        timing.steady_envelope_bytes += log[i * 4 + 1].envelope_bytes;
      }
    }
    timing.mean_ms = std::accumulate(timing.iteration_ms.begin(),
                                     timing.iteration_ms.end(), 0.0) /
                     static_cast<double>(timing.iteration_ms.size());
    timing.bootstrap_adjacency_reads =
        refiner.sweep().last_build_adjacency_reads();
    return std::make_pair(timing, partition.assignment());
  };
  // The legacy bsp_pull/bsp_push series keep the raw fixed-width accounting
  // so their steady_s2_remote_bytes trend stays comparable across history;
  // the *_varint series gate the grouped varint codec against them.
  const auto [bsp_pull, bsp_pull_assignment] =
      run_bsp(RefinerOptions::SweepMode::kPull, topo, steady_start,
              warm_iterations, /*varint_wire=*/false);
  const auto [bsp_push, bsp_push_assignment] =
      run_bsp(RefinerOptions::SweepMode::kPush, topo, steady_start,
              warm_iterations, /*varint_wire=*/false);
  const auto [bsp_push_varint, bsp_push_varint_assignment] =
      run_bsp(RefinerOptions::SweepMode::kPush, topo, steady_start,
              warm_iterations, /*varint_wire=*/true);

  // Grouped series: a final-level SHP-2 window over the same graph —
  // sibling pairs {2i, 2i+1}. Warm into the grouped steady state from the
  // full-k snapshot with the threaded pull reference, then time both BSP
  // exchange modes from the identical grouped warm start.
  std::vector<std::vector<BucketId>> sibling_pairs;
  for (BucketId b = 0; b + 1 < k; b += 2) sibling_pairs.push_back({b, b + 1});
  const MoveTopology grouped_topo = MoveTopology::Grouped(
      k, graph.num_data(), 0.05, std::move(sibling_pairs));
  Partition grouped_warmup = Partition::FromAssignment(steady_start, k);
  uint64_t grouped_warm_iterations = 0;
  {
    RefinerOptions warm_options = base_options;
    warm_options.sweep_mode = RefinerOptions::SweepMode::kPull;
    Refiner warm_refiner(graph, warm_options);
    for (; grouped_warm_iterations < 100; ++grouped_warm_iterations) {
      const IterationStats stats = warm_refiner.RunIteration(
          grouped_topo, &grouped_warmup, seed, grouped_warm_iterations);
      if (stats.moved_fraction <= steady_threshold) break;
    }
  }
  const std::vector<BucketId> grouped_start = grouped_warmup.assignment();
  const auto [bsp_pull_grouped, bsp_pull_grouped_assignment] =
      run_bsp(RefinerOptions::SweepMode::kPull, grouped_topo, grouped_start,
              grouped_warm_iterations, /*varint_wire=*/false);
  const auto [bsp_push_grouped, bsp_push_grouped_assignment] =
      run_bsp(RefinerOptions::SweepMode::kPush, grouped_topo, grouped_start,
              grouped_warm_iterations, /*varint_wire=*/false);
  const auto [bsp_push_grouped_varint, bsp_push_grouped_varint_assignment] =
      run_bsp(RefinerOptions::SweepMode::kPush, grouped_topo, grouped_start,
              grouped_warm_iterations, /*varint_wire=*/true);

  if (full_assignment != incremental_assignment) {
    std::fprintf(stderr,
                 "FAIL: incremental and full-rebuild paths diverged\n");
    return 2;
  }
  // Push is tolerance-equivalent, not bit-exact: compare end objectives.
  const double fanout_pull = AverageFanout(graph, incremental_assignment);
  const double fanout_push = AverageFanout(graph, push_assignment);
  const double fanout_rel_diff =
      std::fabs(fanout_pull - fanout_push) / std::max(fanout_pull, 1e-30);
  if (fanout_rel_diff > 1e-4) {
    std::fprintf(stderr,
                 "FAIL: push fanout %.8f vs pull %.8f (rel diff %.2e)\n",
                 fanout_push, fanout_pull, fanout_rel_diff);
    return 2;
  }

  // BSP pull vs delta-exchange push: same tolerance contract as the
  // threaded engines, plus the hard traffic gate — steady-state superstep-2
  // remote bytes of the delta exchange must be strictly below the full
  // reship (this is the whole point of the exchange; it is a deterministic
  // byte count, not a timing, so it always gates).
  const double bsp_fanout_pull = AverageFanout(graph, bsp_pull_assignment);
  const double bsp_fanout_push = AverageFanout(graph, bsp_push_assignment);
  const double bsp_fanout_rel_diff =
      std::fabs(bsp_fanout_pull - bsp_fanout_push) /
      std::max(bsp_fanout_pull, 1e-30);
  if (bsp_fanout_rel_diff > 1e-4) {
    std::fprintf(stderr,
                 "FAIL: BSP push fanout %.8f vs pull %.8f (rel diff %.2e)\n",
                 bsp_fanout_push, bsp_fanout_pull, bsp_fanout_rel_diff);
    return 2;
  }
  // (With --iterations=1 there is no steady-state sample — only the
  // bootstrap iteration, which both modes ship identically — so the gate
  // has nothing to compare.)
  if (bsp_pull.steady_s2_bytes > 0 &&
      bsp_push.steady_s2_bytes >= bsp_pull.steady_s2_bytes) {
    std::fprintf(stderr,
                 "FAIL: delta-exchange superstep-2 bytes %llu not below "
                 "full-reship %llu\n",
                 static_cast<unsigned long long>(bsp_push.steady_s2_bytes),
                 static_cast<unsigned long long>(bsp_pull.steady_s2_bytes));
    return 2;
  }

  // Grouped recursion window: the same two gates — rtol 1e-4 trajectory
  // equivalence and the deterministic steady-state superstep-2 byte
  // comparison (grouped delta exchange strictly below the grouped full
  // reship; the SHP-2/r acceptance criterion).
  const double grouped_fanout_pull =
      AverageFanout(graph, bsp_pull_grouped_assignment);
  const double grouped_fanout_push =
      AverageFanout(graph, bsp_push_grouped_assignment);
  const double grouped_fanout_rel_diff =
      std::fabs(grouped_fanout_pull - grouped_fanout_push) /
      std::max(grouped_fanout_pull, 1e-30);
  if (grouped_fanout_rel_diff > 1e-4) {
    std::fprintf(
        stderr,
        "FAIL: grouped BSP push fanout %.8f vs pull %.8f (rel diff %.2e)\n",
        grouped_fanout_push, grouped_fanout_pull, grouped_fanout_rel_diff);
    return 2;
  }
  if (bsp_pull_grouped.steady_s2_bytes > 0 &&
      bsp_push_grouped.steady_s2_bytes >= bsp_pull_grouped.steady_s2_bytes) {
    std::fprintf(
        stderr,
        "FAIL: grouped delta-exchange superstep-2 bytes %llu not below "
        "grouped full-reship %llu\n",
        static_cast<unsigned long long>(bsp_push_grouped.steady_s2_bytes),
        static_cast<unsigned long long>(bsp_pull_grouped.steady_s2_bytes));
    return 2;
  }

  // Varint wire format: the codec is accounting-only, so the varint run must
  // walk the bit-identical trajectory of its raw twin, and its steady-state
  // superstep-2 bytes must undercut the raw 16-byte records by >= 25% (the
  // acceptance criterion; the codec lands near 3 bytes/record).
  auto gate_varint = [](const char* what, const BspTiming& raw,
                        const BspTiming& varint,
                        const std::vector<BucketId>& raw_assignment,
                        const std::vector<BucketId>& varint_assignment) {
    if (varint_assignment != raw_assignment) {
      std::fprintf(stderr,
                   "FAIL: %s varint wire run diverged from the raw run (the "
                   "codec must never change the trajectory)\n",
                   what);
      return false;
    }
    if (raw.steady_s2_bytes > 0 &&
        varint.steady_s2_bytes >
            raw.steady_s2_bytes - raw.steady_s2_bytes / 4) {
      std::fprintf(stderr,
                   "FAIL: %s varint superstep-2 bytes %llu not >=25%% below "
                   "raw %llu\n",
                   what,
                   static_cast<unsigned long long>(varint.steady_s2_bytes),
                   static_cast<unsigned long long>(raw.steady_s2_bytes));
      return false;
    }
    return true;
  };
  if (!gate_varint("full-k", bsp_push, bsp_push_varint, bsp_push_assignment,
                   bsp_push_varint_assignment) ||
      !gate_varint("grouped", bsp_push_grouped, bsp_push_grouped_varint,
                   bsp_push_grouped_assignment,
                   bsp_push_grouped_varint_assignment)) {
    return 2;
  }

  // Self-verifying envelope: the integrity framing must stay a rounding
  // error — <= 4% of the steady varint payload it protects (the ISSUE
  // budget). The raw-wire series bypass the envelope entirely, so any
  // overhead there is a protocol leak.
  auto gate_envelope = [](const char* what, const BspTiming& varint) {
    if (varint.steady_s2_bytes > 0 &&
        varint.steady_envelope_bytes * 25 > varint.steady_s2_bytes) {
      std::fprintf(stderr,
                   "FAIL: %s envelope overhead %llu bytes exceeds 4%% of the "
                   "varint payload %llu\n",
                   what,
                   static_cast<unsigned long long>(
                       varint.steady_envelope_bytes),
                   static_cast<unsigned long long>(varint.steady_s2_bytes));
      return false;
    }
    return true;
  };
  if (!gate_envelope("full-k", bsp_push_varint) ||
      !gate_envelope("grouped", bsp_push_grouped_varint)) {
    return 2;
  }
  for (const auto& [name, t] :
       {std::make_pair("bsp_pull", &bsp_pull),
        std::make_pair("bsp_push", &bsp_push),
        std::make_pair("bsp_pull_grouped", &bsp_pull_grouped),
        std::make_pair("bsp_push_grouped", &bsp_push_grouped)}) {
    if (t->steady_envelope_bytes != 0) {
      std::fprintf(stderr,
                   "FAIL: raw-wire series %s reported %llu envelope bytes "
                   "(the reference switch must bypass the envelope)\n",
                   name,
                   static_cast<unsigned long long>(t->steady_envelope_bytes));
      return 2;
    }
  }

  // One-pass sharded bootstrap: the push-mode engines build the affinity
  // sweep once at iteration 0; the binned bootstrap reads each adjacency pin
  // exactly once regardless of the worker count (the old layout read W×|E|).
  for (const BspTiming* t : {&bsp_push, &bsp_push_varint}) {
    if (t->bootstrap_adjacency_reads != graph.num_edges()) {
      std::fprintf(stderr,
                   "FAIL: sharded bootstrap read %llu adjacency pins, "
                   "expected exactly |E| = %llu (W=%d)\n",
                   static_cast<unsigned long long>(
                       t->bootstrap_adjacency_reads),
                   static_cast<unsigned long long>(graph.num_edges()),
                   bsp_workers);
      return 2;
    }
  }
  const double bootstrap_passes =
      static_cast<double>(bsp_push.bootstrap_adjacency_reads) /
      static_cast<double>(std::max<uint64_t>(1, graph.num_edges()));

  // Scan-kernel series: the push argmax primitive on a synthetic accumulator
  // run, scalar vs the dispatched AVX2 kernel (absent on pre-AVX2 hosts or
  // -DSHP_DISABLE_SIMD builds; the series is then omitted and the optional
  // gate is skipped). Long runs (512 entries) are where block-skip pays.
  const double min_simd_speedup = flags.GetDouble("min_simd_speedup", 0.0);
  std::vector<AffinityEntry> kernel_run(512);
  for (size_t i = 0; i < kernel_run.size(); ++i) {
    kernel_run[i] = {static_cast<BucketId>(i), 1,
                     HashToUnitDouble(3, 5, i) * 4.0};
  }
  auto time_kernel = [&](AffinityScanFn fn) {
    std::vector<double> ms;
    double sink = 0.0;
    for (uint32_t i = 0; i < timed_iterations; ++i) {
      Timer timer;
      for (int rep = 0; rep < 2000; ++rep) {
        AffinityScanBest best;
        fn(kernel_run.data(), kernel_run.data() + kernel_run.size(),
           GainComputer::kAffinityTieEpsilon, &best);
        sink += best.affinity;
      }
      ms.push_back(timer.ElapsedMillis());
    }
    if (sink < 0.0) std::printf("%f", sink);  // defeat dead-code elimination
    return ms;
  };
  const std::vector<double> scan_scalar_ms =
      time_kernel(&ScanAffinityRunScalar);
  const bool have_simd = SimdScanAvailable();
  const std::vector<double> scan_simd_ms =
      have_simd ? time_kernel(SimdAffinityScan()) : std::vector<double>{};
  auto mean_of = [](const std::vector<double>& v) {
    return v.empty() ? 0.0
                     : std::accumulate(v.begin(), v.end(), 0.0) /
                           static_cast<double>(v.size());
  };
  const double scan_scalar_mean = mean_of(scan_scalar_ms);
  const double scan_simd_mean = mean_of(scan_simd_ms);
  const double simd_speedup =
      have_simd && scan_simd_mean > 0.0 ? scan_scalar_mean / scan_simd_mean
                                        : 0.0;

  const double speedup = full.mean_ms / incremental.mean_ms;
  const double push_speedup = incremental.mean_ms / push.mean_ms;
  const double bsp_speedup = bsp_pull.mean_ms / bsp_push.mean_ms;
  const double bsp_s2_reduction =
      static_cast<double>(bsp_pull.steady_s2_bytes) /
      static_cast<double>(std::max<uint64_t>(1, bsp_push.steady_s2_bytes));
  std::printf("\nfull rebuild : %.3f ms/iteration (%llu rebuilds, %llu "
              "proposals recomputed)\n",
              full.mean_ms, static_cast<unsigned long long>(full.rebuilds),
              static_cast<unsigned long long>(full.recomputed));
  std::printf("incremental  : %.3f ms/iteration (%llu rebuilds, %llu "
              "proposals recomputed)\n",
              incremental.mean_ms,
              static_cast<unsigned long long>(incremental.rebuilds),
              static_cast<unsigned long long>(incremental.recomputed));
  std::printf("push sweep   : %.3f ms/iteration (%llu sweep builds, %llu "
              "proposals recomputed, %llu delta records)\n",
              push.mean_ms,
              static_cast<unsigned long long>(push.sweep_builds),
              static_cast<unsigned long long>(push.recomputed),
              static_cast<unsigned long long>(push.delta_records));
  std::printf("speedup      : %.2fx incremental/full, %.2fx push/incremental "
              "(fanout rel diff %.1e)\n",
              speedup, push_speedup, fanout_rel_diff);
  std::printf("bsp pull     : %.3f ms/iteration (W=%d, steady S2 %llu remote "
              "bytes)\n",
              bsp_pull.mean_ms, bsp_workers,
              static_cast<unsigned long long>(bsp_pull.steady_s2_bytes));
  std::printf("bsp delta    : %.3f ms/iteration (W=%d, steady S2 %llu remote "
              "bytes, %llu delta records)\n",
              bsp_push.mean_ms, bsp_workers,
              static_cast<unsigned long long>(bsp_push.steady_s2_bytes),
              static_cast<unsigned long long>(bsp_push.delta_records));
  std::printf("bsp          : %.2fx iteration speedup, %.2fx superstep-2 "
              "traffic reduction (fanout rel diff %.1e)\n",
              bsp_speedup, bsp_s2_reduction, bsp_fanout_rel_diff);
  const double varint_reduction =
      static_cast<double>(bsp_push.steady_s2_bytes) /
      static_cast<double>(
          std::max<uint64_t>(1, bsp_push_varint.steady_s2_bytes));
  std::printf("bsp varint   : %.3f ms/iteration (steady S2 %llu remote bytes "
              "— %.2fx below raw delta records)\n",
              bsp_push_varint.mean_ms,
              static_cast<unsigned long long>(bsp_push_varint.steady_s2_bytes),
              varint_reduction);
  std::printf("bsp envelope : %llu bytes steady overhead = %.2f%% of the "
              "varint payload (budget 4%%)\n",
              static_cast<unsigned long long>(
                  bsp_push_varint.steady_envelope_bytes),
              100.0 * static_cast<double>(bsp_push_varint.steady_envelope_bytes) /
                  static_cast<double>(
                      std::max<uint64_t>(1, bsp_push_varint.steady_s2_bytes)));
  std::printf("bootstrap    : %llu adjacency reads = %.2f passes over |E| "
              "(W=%d)\n",
              static_cast<unsigned long long>(
                  bsp_push.bootstrap_adjacency_reads),
              bootstrap_passes, bsp_workers);
  if (have_simd) {
    std::printf("scan kernel  : scalar %.4f ms, avx2 %.4f ms (%.2fx, %zu "
                "entries x 2000 reps)\n",
                scan_scalar_mean, scan_simd_mean, simd_speedup,
                kernel_run.size());
  } else {
    std::printf("scan kernel  : scalar %.4f ms (AVX2 kernel unavailable)\n",
                scan_scalar_mean);
  }
  const double grouped_bsp_speedup =
      bsp_pull_grouped.mean_ms / bsp_push_grouped.mean_ms;
  const double grouped_s2_reduction =
      static_cast<double>(bsp_pull_grouped.steady_s2_bytes) /
      static_cast<double>(
          std::max<uint64_t>(1, bsp_push_grouped.steady_s2_bytes));
  std::printf("bsp grouped pull : %.3f ms/iteration (steady S2 %llu remote "
              "bytes, %llu grouped warm-up iterations)\n",
              bsp_pull_grouped.mean_ms,
              static_cast<unsigned long long>(
                  bsp_pull_grouped.steady_s2_bytes),
              static_cast<unsigned long long>(grouped_warm_iterations));
  std::printf("bsp grouped delta: %.3f ms/iteration (steady S2 %llu remote "
              "bytes, %llu delta records)\n",
              bsp_push_grouped.mean_ms,
              static_cast<unsigned long long>(
                  bsp_push_grouped.steady_s2_bytes),
              static_cast<unsigned long long>(
                  bsp_push_grouped.delta_records));
  std::printf("bsp grouped      : %.2fx iteration speedup, %.2fx superstep-2 "
              "traffic reduction (fanout rel diff %.1e)\n",
              grouped_bsp_speedup, grouped_s2_reduction,
              grouped_fanout_rel_diff);
  const double grouped_varint_reduction =
      static_cast<double>(bsp_push_grouped.steady_s2_bytes) /
      static_cast<double>(
          std::max<uint64_t>(1, bsp_push_grouped_varint.steady_s2_bytes));
  std::printf("bsp grouped varint: %.3f ms/iteration (steady S2 %llu remote "
              "bytes — %.2fx below raw)\n",
              bsp_push_grouped_varint.mean_ms,
              static_cast<unsigned long long>(
                  bsp_push_grouped_varint.steady_s2_bytes),
              grouped_varint_reduction);

  // Default output deliberately differs from the committed baseline
  // (BENCH_refine.json): an ad-hoc run from the repo root must not clobber
  // the file the CI regression gate diffs against. Refresh the baseline
  // explicitly with --out=BENCH_refine.json when that is the intent.
  const std::string out_path =
      flags.GetString("out", "BENCH_refine_fresh.json");
  std::FILE* out = std::fopen(out_path.c_str(), "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  auto write_series = [&](const char* name, const PathTiming& t) {
    std::fprintf(out,
                 "  \"%s\": {\n"
                 "    \"mean_iteration_ms\": %.6f,\n"
                 "    \"full_rebuilds\": %llu,\n"
                 "    \"sweep_builds\": %llu,\n"
                 "    \"proposals_recomputed\": %llu,\n"
                 "    \"delta_records\": %llu,\n"
                 "    \"iteration_ms\": [",
                 name, t.mean_ms, static_cast<unsigned long long>(t.rebuilds),
                 static_cast<unsigned long long>(t.sweep_builds),
                 static_cast<unsigned long long>(t.recomputed),
                 static_cast<unsigned long long>(t.delta_records));
    for (size_t i = 0; i < t.iteration_ms.size(); ++i) {
      std::fprintf(out, "%s%.6f", i == 0 ? "" : ", ", t.iteration_ms[i]);
    }
    std::fprintf(out, "]\n  }");
  };
  std::fprintf(out,
               "{\n  \"benchmark\": \"refine_iteration\",\n"
               "  \"num_queries\": %u,\n  \"num_data\": %u,\n"
               "  \"num_pins\": %llu,\n  \"k\": %d,\n"
               "  \"steady_fraction\": %.4f,\n"
               "  \"warmup_iterations\": %llu,\n"
               "  \"timed_iterations\": %u,\n",
               graph.num_queries(), graph.num_data(),
               static_cast<unsigned long long>(graph.num_edges()), k,
               steady_threshold,
               static_cast<unsigned long long>(warm_iterations),
               timed_iterations);
  auto write_bsp_series = [&](const char* name, const BspTiming& t) {
    std::fprintf(out,
                 "  \"%s\": {\n"
                 "    \"mean_iteration_ms\": %.6f,\n"
                 "    \"workers\": %d,\n"
                 "    \"steady_s2_remote_bytes\": %llu,\n"
                 "    \"steady_s2_envelope_bytes\": %llu,\n"
                 "    \"delta_records\": %llu,\n"
                 "    \"iteration_ms\": [",
                 name, t.mean_ms, bsp_workers,
                 static_cast<unsigned long long>(t.steady_s2_bytes),
                 static_cast<unsigned long long>(t.steady_envelope_bytes),
                 static_cast<unsigned long long>(t.delta_records));
    for (size_t i = 0; i < t.iteration_ms.size(); ++i) {
      std::fprintf(out, "%s%.6f", i == 0 ? "" : ", ", t.iteration_ms[i]);
    }
    std::fprintf(out, "],\n    \"s2_remote_bytes\": [");
    for (size_t i = 0; i < t.s2_remote_bytes.size(); ++i) {
      std::fprintf(out, "%s%llu", i == 0 ? "" : ", ",
                   static_cast<unsigned long long>(t.s2_remote_bytes[i]));
    }
    std::fprintf(out, "]\n  }");
  };
  write_series("full_rebuild", full);
  std::fprintf(out, ",\n");
  write_series("incremental", incremental);
  std::fprintf(out, ",\n");
  write_series("push", push);
  std::fprintf(out, ",\n");
  auto write_kernel_series = [&](const char* name,
                                 const std::vector<double>& ms,
                                 double mean) {
    std::fprintf(out,
                 "  \"%s\": {\n"
                 "    \"mean_iteration_ms\": %.6f,\n"
                 "    \"iteration_ms\": [",
                 name, mean);
    for (size_t i = 0; i < ms.size(); ++i) {
      std::fprintf(out, "%s%.6f", i == 0 ? "" : ", ", ms[i]);
    }
    std::fprintf(out, "]\n  }");
  };
  write_bsp_series("bsp_pull", bsp_pull);
  std::fprintf(out, ",\n");
  write_bsp_series("bsp_push", bsp_push);
  std::fprintf(out, ",\n");
  write_bsp_series("bsp_push_varint", bsp_push_varint);
  std::fprintf(out, ",\n");
  write_bsp_series("bsp_pull_grouped", bsp_pull_grouped);
  std::fprintf(out, ",\n");
  write_bsp_series("bsp_push_grouped", bsp_push_grouped);
  std::fprintf(out, ",\n");
  write_bsp_series("bsp_push_grouped_varint", bsp_push_grouped_varint);
  std::fprintf(out, ",\n");
  write_kernel_series("scan_scalar", scan_scalar_ms, scan_scalar_mean);
  if (have_simd) {
    std::fprintf(out, ",\n");
    write_kernel_series("scan_simd", scan_simd_ms, scan_simd_mean);
  }
  std::fprintf(out,
               ",\n  \"speedup\": %.4f,\n  \"push_speedup\": %.4f,\n"
               "  \"push_fanout_rel_diff\": %.6e,\n"
               "  \"bsp_speedup\": %.4f,\n"
               "  \"bsp_s2_traffic_reduction\": %.4f,\n"
               "  \"bsp_fanout_rel_diff\": %.6e,\n"
               "  \"varint_s2_reduction\": %.4f,\n"
               "  \"grouped_warmup_iterations\": %llu,\n"
               "  \"bsp_grouped_speedup\": %.4f,\n"
               "  \"bsp_grouped_s2_traffic_reduction\": %.4f,\n"
               "  \"bsp_grouped_fanout_rel_diff\": %.6e,\n"
               "  \"grouped_varint_s2_reduction\": %.4f,\n"
               "  \"bootstrap_adjacency_reads\": %llu,\n"
               "  \"bootstrap_adjacency_passes\": %.4f,\n"
               "  \"simd_scan_speedup\": %.4f\n}\n",
               speedup, push_speedup, fanout_rel_diff, bsp_speedup,
               bsp_s2_reduction, bsp_fanout_rel_diff, varint_reduction,
               static_cast<unsigned long long>(grouped_warm_iterations),
               grouped_bsp_speedup, grouped_s2_reduction,
               grouped_fanout_rel_diff, grouped_varint_reduction,
               static_cast<unsigned long long>(
                   bsp_push.bootstrap_adjacency_reads),
               bootstrap_passes, simd_speedup);
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  if (speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: speedup %.2fx below required %.2fx\n",
                 speedup, min_speedup);
    return 3;
  }
  if (push_speedup < min_push_speedup) {
    std::fprintf(stderr,
                 "FAIL: push speedup %.2fx below required %.2fx\n",
                 push_speedup, min_push_speedup);
    return 3;
  }
  const double min_bsp_speedup = flags.GetDouble("min_bsp_speedup", 0.0);
  if (bsp_speedup < min_bsp_speedup) {
    std::fprintf(stderr, "FAIL: BSP speedup %.2fx below required %.2fx\n",
                 bsp_speedup, min_bsp_speedup);
    return 3;
  }
  // Optional (timing-based, so default 0): the AVX2 scan kernel vs scalar on
  // the synthetic run. Skipped when the kernel is unavailable — the scalar
  // fallback leg must not fail a gate it cannot run.
  if (have_simd && simd_speedup < min_simd_speedup) {
    std::fprintf(stderr,
                 "FAIL: SIMD scan speedup %.2fx below required %.2fx\n",
                 simd_speedup, min_simd_speedup);
    return 3;
  }
  return 0;
}
