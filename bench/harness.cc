#include "harness.h"

#include <cstdio>

#include "baseline/label_propagation.h"
#include "baseline/multilevel.h"
#include "baseline/random_partitioner.h"
#include "common/logging.h"
#include "common/thread_pool.h"

namespace shp::bench {

Instance LoadInstance(const std::string& name, double extra_scale,
                      uint64_t seed) {
  Result<DatasetSpec> spec = FindDataset(name);
  SHP_CHECK(spec.ok()) << spec.status().ToString();
  Instance instance;
  instance.name = name;
  instance.spec = spec.value();
  const double env_scale = BenchScale();
  instance.total_scale =
      instance.spec.default_scale * env_scale * extra_scale;
  instance.graph =
      Synthesize(instance.spec, env_scale * extra_scale, seed);
  return instance;
}

std::vector<AlgorithmEntry> StandardRoster(uint64_t seed) {
  std::vector<AlgorithmEntry> roster;
  roster.push_back({"SHP-k", [seed] {
                      ShpKOptions options;
                      options.seed = seed;
                      return MakeShpK(options);
                    }});
  roster.push_back({"SHP-2", [seed] {
                      RecursiveOptions options;
                      options.seed = seed;
                      return MakeShpRecursive(options);
                    }});
  roster.push_back({"Multilevel", [seed] {
                      MultilevelOptions options;
                      options.seed = seed;
                      options.memory_budget_bytes = 0;  // quality runs
                      return MakeMultilevelPartitioner(options);
                    }});
  roster.push_back({"LabelProp", [seed] {
                      LabelPropagationOptions options;
                      options.seed = seed;
                      return MakeLabelPropagation(options);
                    }});
  return roster;
}

RunOutcome RunAndEvaluate(Partitioner& partitioner,
                          const BipartiteGraph& graph, BucketId k) {
  RunOutcome outcome;
  Timer timer;
  Result<std::vector<BucketId>> result =
      partitioner.Partition(graph, k, &GlobalThreadPool());
  outcome.wall_seconds = timer.ElapsedSeconds();
  if (!result.ok()) {
    outcome.error = result.status().ToString();
    return outcome;
  }
  outcome.ok = true;
  outcome.assignment = std::move(result).value();
  outcome.fanout = AverageFanout(graph, outcome.assignment);
  outcome.imbalance =
      Partition::FromAssignment(outcome.assignment, k).ImbalanceRatio();
  return outcome;
}

void PrintBanner(const std::string& title, const Flags& flags) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf(
      "scale: SHP_BENCH_SCALE=%.4g (use --scale or the env var to grow "
      "toward paper-size instances); threads=%zu\n\n",
      BenchScale(), GlobalThreadPool().num_threads());
  (void)flags;
}

}  // namespace shp::bench
