// Figure 8 reproduction: quality impact of the optimization objective for
// SHP-2 across hypergraphs, k ∈ {2, 8, 32}.
//
// (a) direct fanout optimization (p = 1.0) vs p-fanout with p = 0.5:
//     paper shape — large increases, ~45% on average.
// (b) clique-net objective (p → 0; we use p = 0.02) vs p = 0.5:
//     paper shape — usually worse but close (0-20%).
#include <cstdio>

#include "common/flags.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace shp;
  auto flags = Flags::Parse(argc, argv).value();
  bench::PrintBanner(
      "Figure 8: objective comparison for SHP-2 (fanout increase over p=0.5)",
      flags);

  const double extra_scale = flags.GetDouble("scale", 0.3);
  const std::vector<std::string> datasets = {"email-Enron", "soc-Epinions",
                                             "web-Stanford", "web-BerkStan",
                                             "soc-Pokec",    "soc-LJ"};
  const std::vector<BucketId> ks = {2, 8, 32};

  auto fanout_for = [&](const BipartiteGraph& graph, BucketId k, double p) {
    RecursiveOptions options;
    options.k = k;
    options.p = p;
    options.seed = 44;
    return AverageFanout(graph,
                         RecursivePartitioner(options).Run(graph).assignment);
  };

  TablePrinter table_a({"hypergraph", "k=2", "k=8", "k=32"});
  TablePrinter table_b({"hypergraph", "k=2", "k=8", "k=32"});
  double total_increase_a = 0.0;
  int count_a = 0;
  for (const std::string& dataset : datasets) {
    bench::Instance instance = bench::LoadInstance(dataset, extra_scale);
    std::vector<std::string> row_a = {dataset};
    std::vector<std::string> row_b = {dataset};
    for (BucketId k : ks) {
      const double base = fanout_for(instance.graph, k, 0.5);
      const double direct = fanout_for(instance.graph, k, 1.0);
      const double clique = fanout_for(instance.graph, k, 0.02);
      row_a.push_back(TablePrinter::FmtPercent(direct / base - 1.0, 1));
      row_b.push_back(TablePrinter::FmtPercent(clique / base - 1.0, 1));
      total_increase_a += direct / base - 1.0;
      ++count_a;
    }
    table_a.AddRow(row_a);
    table_b.AddRow(row_b);
  }
  std::printf("(a) direct fanout optimization (p=1.0) vs p=0.5:\n");
  table_a.Print();
  std::printf("average increase: %.1f%% (paper: ~45%%)\n\n",
              total_increase_a / count_a * 100.0);
  std::printf("(b) clique-net objective (p->0) vs p=0.5:\n");
  table_b.Print();
  std::printf("\n(paper shape: (a) large increases; (b) often worse but "
              "typically close.)\n");
  return 0;
}
