// Table 3 reproduction: run-time of distributed hypergraph partitioners
// across the large hypergraphs for k ∈ {32, 512, 8192} on a 4-machine
// cluster.
//
// SHP-k and SHP-2 run on the simulated Giraph cluster (engine/); reported
// minutes are cost-model cluster time extrapolated to paper scale
// (simulated_minutes / total_scale — iterations are scale-free, per-
// iteration work is linear in |E|). The multilevel baseline plays the
// Zoltan/Parkway role: it is charged the un-sampled hierarchy footprint
// against a 4 × 144 GB budget scaled by the same factor, and rows that blow
// the budget print FAIL(mem), mirroring how the paper reports Zoltan and
// Parkway failures. Its runtime is measured once per dataset and reused for
// every k, matching the paper's observation that "Zoltan's run-time was
// largely independent of the bucket count".
//
// Defaults keep the single-core run to minutes: k ∈ {32, 512} and modest
// scales. Pass --full (and/or SHP_BENCH_SCALE) for the complete grid
// including k = 8192.
#include <cstdio>

#include "baseline/multilevel.h"
#include "common/flags.h"
#include "common/timer.h"
#include "engine/distributed_shp.h"
#include "harness.h"

namespace {

constexpr double kBudgetPaperBytes = 4.0 * 144e9;  // 4 machines × 144 GB RAM
constexpr double kTimeCapMinutes = 600.0;          // paper's 10-hour limit

std::string FormatMinutes(double minutes) {
  if (minutes > kTimeCapMinutes) return ">600";
  return shp::TablePrinter::Fmt(minutes, minutes < 10 ? 2 : 1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace shp;
  auto flags = Flags::Parse(argc, argv).value();
  bench::PrintBanner(
      "Table 3: distributed partitioner run-time (minutes, 4 machines, "
      "extrapolated to paper scale)",
      flags);

  const bool full = flags.GetBool("full", false);
  struct Row {
    std::string dataset;
    double extra_scale;
  };
  const std::vector<Row> datasets = {{"soc-Pokec", full ? 1.0 : 0.5},
                                     {"soc-LJ", full ? 1.0 : 0.5},
                                     {"FB-50M", 1.0},
                                     {"FB-2B", 1.0},
                                     {"FB-5B", 1.0},
                                     {"FB-10B", 1.0}};
  std::vector<BucketId> ks = {32, 512};
  if (full) ks.push_back(8192);
  const int machines = static_cast<int>(flags.GetInt("machines", 4));

  TablePrinter table({"hypergraph", "k", "SHP-k", "SHP-2", "Multilevel*",
                      "SHP-2 msgs/iter", "max-worker-state"});
  for (const Row& row_spec : datasets) {
    bench::Instance instance =
        bench::LoadInstance(row_spec.dataset, row_spec.extra_scale);
    const double s = instance.total_scale;

    // Multilevel (Zoltan/Parkway role): once per dataset, k-independent.
    std::string multilevel_cell;
    {
      MultilevelOptions options;
      options.seed = 3;
      options.memory_budget_bytes =
          static_cast<uint64_t>(kBudgetPaperBytes * s);
      auto partitioner = MakeMultilevelPartitioner(options);
      Timer timer;
      auto result = partitioner->Partition(instance.graph, 32, nullptr);
      multilevel_cell = result.ok()
                            ? FormatMinutes(timer.ElapsedSeconds() / 60.0 / s)
                            : "FAIL(mem)";
    }

    for (BucketId k : ks) {
      std::vector<std::string> row = {row_spec.dataset, std::to_string(k)};
      if (static_cast<VertexId>(k) * 2 > instance.graph.num_data()) {
        row.insert(row.end(),
                   {"n/a@scale", "n/a@scale", multilevel_cell, "-", "-"});
        table.AddRow(row);
        continue;
      }
      // SHP-k on the BSP cluster (iteration cap keeps the 1-core default
      // run short; quality at convergence is unaffected for timing).
      {
        DistributedShpOptions options;
        options.bsp.num_workers = machines;
        options.recursive = false;
        options.shpk_options.seed = 3;
        options.shpk_options.max_iterations = full ? 60 : 30;
        const DistributedShpReport report =
            DistributedShp(options).Run(instance.graph, k);
        row.push_back(FormatMinutes(report.simulated.seconds / 60.0 / s));
      }
      // SHP-2 on the BSP cluster.
      uint64_t msgs_per_iter = 0;
      uint64_t worker_state = 0;
      {
        DistributedShpOptions options;
        options.bsp.num_workers = machines;
        options.recursive = true;
        options.recursive_options.seed = 3;
        const DistributedShpReport report =
            DistributedShp(options).Run(instance.graph, k);
        row.push_back(FormatMinutes(report.simulated.seconds / 60.0 / s));
        if (report.num_supersteps > 0) {
          msgs_per_iter = report.total_traffic.remote_messages /
                          std::max<uint64_t>(1, report.num_supersteps / 4);
        }
        worker_state = report.max_worker_state_bytes;
      }
      row.push_back(multilevel_cell);
      row.push_back(
          TablePrinter::FmtCount(static_cast<long long>(msgs_per_iter)));
      row.push_back(
          TablePrinter::FmtCount(static_cast<long long>(worker_state)) + "B");
      table.AddRow(row);
    }
  }
  table.Print();
  std::printf(
      "\n* Multilevel stands in for Zoltan/Parkway (DESIGN.md substitution "
      "3); measured once\n  per dataset (its runtime is k-independent, as "
      "the paper observes for Zoltan).\n  FAIL(mem) = un-sampled hierarchy "
      "exceeds the scaled 4x144GB budget — the paper's\n  failure mode for "
      "those tools. n/a@scale rows need a larger SHP_BENCH_SCALE.\n  Run "
      "with --full for the complete k grid including 8192.\n");
  return 0;
}
