// Figure 5 reproduction: SHP-2 scalability in the distributed setting.
//
// (a) Total time (machine-minutes) as a function of |E| for
//     k ∈ {2, 32, 512, 8192, 131072} on the FB-2B/5B/10B family: the paper
//     verifies O(|E| · log k). We print the series plus the measured
//     log-log slope against |E| (expect ≈ 1).
// (b) Run-time and total time on the largest instance with 4, 8, and 16
//     machines: run-time drops sublinearly (communication grows), total
//     time rises — the paper's Fig. 5b.
#include <cstdio>

#include "common/flags.h"
#include "common/stats.h"
#include "engine/distributed_shp.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace shp;
  auto flags = Flags::Parse(argc, argv).value();
  bench::PrintBanner("Figure 5: SHP-2 distributed scalability", flags);

  // -------------------------------------------------------- Fig 5a -----
  // The paper's x-axis spans FB-2B..FB-10B (5e8..1e10 pins). We grow one
  // FB-family instance across 8x so |E| actually varies at bench scale;
  // the label shows the equivalent paper dataset progression.
  struct SizePoint {
    std::string label;
    double extra_scale;
  };
  const std::vector<SizePoint> sizes = {{"FB-10B x0.5", 0.5},
                                        {"FB-10B x1", 1.0},
                                        {"FB-10B x2", 2.0},
                                        {"FB-10B x4", 4.0}};
  std::vector<BucketId> ks = {2, 32, 512, 8192, 131072};

  std::printf("(a) total time (machine-minutes, simulated 4-machine cluster) "
              "vs |E|\n");
  TablePrinter table_a({"instance", "|E|", "k=2", "k=32", "k=512", "k=8192",
                        "k=131072"});
  std::vector<double> edges;
  std::vector<double> time_k32;
  for (const SizePoint& point : sizes) {
    bench::Instance instance =
        bench::LoadInstance("FB-10B", point.extra_scale);
    std::vector<std::string> row = {
        point.label, TablePrinter::FmtCount(static_cast<long long>(
                         instance.graph.num_edges()))};
    for (BucketId k : ks) {
      if (static_cast<VertexId>(k) * 2 > instance.graph.num_data()) {
        row.push_back("n/a@scale");
        continue;
      }
      DistributedShpOptions options;
      options.bsp.num_workers = 4;
      options.recursive = true;
      options.recursive_options.seed = 11;
      const DistributedShpReport report =
          DistributedShp(options).Run(instance.graph, k);
      const double machine_minutes = report.simulated.machine_seconds / 60.0;
      row.push_back(TablePrinter::Fmt(machine_minutes, 3));
      if (k == 32) {
        edges.push_back(static_cast<double>(instance.graph.num_edges()));
        // Slope over the algorithmic (work + communication) cost: at bench
        // scale the fixed 1 ms barrier dominates the totals above, which
        // would flatten the slope; at paper scale per-superstep work
        // dominates and the totals themselves are linear in |E|.
        CostModelConfig no_barrier;
        no_barrier.barrier_ns = 0.0;
        time_k32.push_back(CostModel(no_barrier)
                               .Total(report.supersteps, 4)
                               .machine_seconds /
                           60.0);
      }
    }
    table_a.AddRow(row);
  }
  table_a.Print();
  std::printf("log-log slope of algorithmic (barrier-free) total time vs "
              "|E| at k=32: %.2f\n(paper: linear, slope ~1; the table above "
              "includes fixed per-superstep barrier\ncost, which dominates "
              "at bench scale but vanishes at paper scale)\n\n",
              LogLogSlope(edges, time_k32));

  // -------------------------------------------------------- Fig 5b -----
  std::printf("(b) run-time and total time vs cluster size on FB-10B\n");
  bench::Instance biggest = bench::LoadInstance("FB-10B");
  const BucketId k_b = static_cast<BucketId>(flags.GetInt("kb", 32));
  TablePrinter table_b({"#machines", "run-time (min)", "total time (min)",
                        "speedup vs 4"});
  double base_runtime = 0.0;
  for (int machines : {4, 8, 16}) {
    DistributedShpOptions options;
    options.bsp.num_workers = machines;
    options.recursive = true;
    options.recursive_options.seed = 11;
    const DistributedShpReport report =
        DistributedShp(options).Run(biggest.graph, k_b);
    const double runtime_min = report.simulated.seconds / 60.0;
    if (machines == 4) base_runtime = runtime_min;
    table_b.AddRow({std::to_string(machines),
                    TablePrinter::Fmt(runtime_min, 4),
                    TablePrinter::Fmt(report.simulated.machine_seconds / 60.0,
                                      4),
                    TablePrinter::Fmt(base_runtime /
                                          std::max(runtime_min, 1e-12),
                                      2) +
                        "x"});
  }
  table_b.Print();
  std::printf("\npaper shape: run-time decreases sublinearly with machines "
              "(communication\ngrows); total time = run-time x machines "
              "increases.\n");
  return 0;
}
