// google-benchmark microbenches for the hot kernels: neighbor-data build,
// move-gain computation, one refinement iteration, generator throughput,
// and the FM pass of the multilevel baseline.
#include <benchmark/benchmark.h>

#include <span>
#include <vector>

#include "baseline/fm_refiner.h"
#include "core/partition.h"
#include "core/refiner.h"
#include "graph/gen_social.h"
#include "common/rng.h"
#include "objective/affinity_sweep.h"
#include "objective/gain.h"
#include "objective/neighbor_data.h"
#include "objective/scan_kernels.h"

namespace shp {
namespace {

BipartiteGraph MakeGraph(VertexId users, double degree) {
  SocialGraphConfig config;
  config.num_users = users;
  config.avg_degree = degree;
  config.seed = 77;
  return GenerateSocialGraph(config);
}

void BM_NeighborDataBuild(benchmark::State& state) {
  const BipartiteGraph graph = MakeGraph(20000, 16);
  const auto assignment =
      Partition::Random(graph.num_data(), 32, 1).assignment();
  QueryNeighborData ndata;
  for (auto _ : state) {
    ndata.Build(graph, assignment);
    benchmark::DoNotOptimize(ndata.TotalEntries());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(graph.num_edges()));
}
BENCHMARK(BM_NeighborDataBuild)->Unit(benchmark::kMillisecond);

void BM_MoveGainKernel(benchmark::State& state) {
  const BipartiteGraph graph = MakeGraph(20000, 16);
  const auto partition = Partition::Random(graph.num_data(), 32, 1);
  QueryNeighborData ndata;
  ndata.Build(graph, partition.assignment());
  const GainComputer gain(0.5,
                          static_cast<uint32_t>(graph.MaxQueryDegree()));
  uint64_t v = 0;
  for (auto _ : state) {
    const VertexId vertex = static_cast<VertexId>(v++ % graph.num_data());
    benchmark::DoNotOptimize(gain.MoveGain(
        graph, ndata, vertex, partition.bucket_of(vertex),
        (partition.bucket_of(vertex) + 1) % 32));
  }
}
BENCHMARK(BM_MoveGainKernel);

void BM_BestTargetScan(benchmark::State& state) {
  const BucketId k = static_cast<BucketId>(state.range(0));
  const BipartiteGraph graph = MakeGraph(20000, 16);
  const auto partition = Partition::Random(graph.num_data(), k, 1);
  QueryNeighborData ndata;
  ndata.Build(graph, partition.assignment());
  const GainComputer gain(0.5,
                          static_cast<uint32_t>(graph.MaxQueryDegree()));
  std::vector<double> affinity(static_cast<size_t>(k), 0.0);
  std::vector<BucketId> touched;
  uint64_t v = 0;
  for (auto _ : state) {
    const VertexId vertex = static_cast<VertexId>(v++ % graph.num_data());
    benchmark::DoNotOptimize(
        gain.FindBestTarget(graph, ndata, vertex,
                            partition.bucket_of(vertex), 0, k, &affinity,
                            &touched));
  }
}
BENCHMARK(BM_BestTargetScan)->Arg(8)->Arg(64)->Arg(512);

void BM_NeighborDataApplyMoves(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  const BipartiteGraph graph = MakeGraph(20000, 16);
  const BucketId k = 32;
  std::vector<BucketId> assignment =
      Partition::Random(graph.num_data(), k, 1).assignment();
  QueryNeighborData ndata;
  ndata.Build(graph, assignment);
  // Move generation happens outside the timed region so the measurement
  // tracks the splice kernel, not batch construction.
  std::vector<uint8_t> seen(graph.num_data(), 0);
  uint64_t round = 0;
  int64_t applied = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<VertexMove> moves;
    moves.reserve(batch);
    for (size_t i = 0; i < batch; ++i) {
      const VertexId v = static_cast<VertexId>(
          (round * 7919 + static_cast<uint64_t>(i) * 31) % graph.num_data());
      if (seen[v]) continue;
      seen[v] = 1;
      const BucketId from = assignment[v];
      const BucketId to =
          static_cast<BucketId>((from + 1 + i % (k - 1)) % k);
      if (to == from) continue;
      moves.push_back({v, from, to});
      assignment[v] = to;
    }
    for (const VertexMove& m : moves) seen[m.v] = 0;
    applied += static_cast<int64_t>(moves.size());
    ++round;
    state.ResumeTiming();
    ndata.ApplyMoves(graph, moves);
    benchmark::DoNotOptimize(ndata.TotalEntries());
  }
  state.SetItemsProcessed(applied);
}
BENCHMARK(BM_NeighborDataApplyMoves)->Arg(64)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

void BM_BestTargetPushGroupedScan(benchmark::State& state) {
  // Group-restricted push scan (SHP-2/r recursion): one merge over the
  // sibling candidates and the accumulator window spanning them.
  const BucketId k = static_cast<BucketId>(state.range(0));
  const BipartiteGraph graph = MakeGraph(20000, 16);
  const auto partition = Partition::Random(graph.num_data(), k, 1);
  QueryNeighborData ndata;
  ndata.Build(graph, partition.assignment());
  const GainComputer gain(0.5,
                          static_cast<uint32_t>(graph.MaxQueryDegree()));
  AffinitySweep sweep;
  sweep.Build(graph, ndata, gain.pow_table());
  // Sibling pairs {2i, 2i+1} — the final recursion level.
  std::vector<std::vector<BucketId>> pairs;
  for (BucketId b = 0; b + 1 < k; b += 2) pairs.push_back({b, b + 1});
  uint64_t v = 0;
  for (auto _ : state) {
    const VertexId vertex = static_cast<VertexId>(v++ % graph.num_data());
    const BucketId from = partition.bucket_of(vertex);
    const auto& siblings = pairs[static_cast<size_t>(from / 2)];
    benchmark::DoNotOptimize(gain.FindBestTargetPushGrouped(
        sweep, vertex, from, std::span<const BucketId>(siblings),
        static_cast<double>(graph.DataDegree(vertex))));
  }
}
BENCHMARK(BM_BestTargetPushGroupedScan)->Arg(8)->Arg(64)->Arg(512);

void BM_GroupedPullSiblingScan(benchmark::State& state) {
  // The pull reference the grouped push scan replaces: per-sibling MoveGain
  // over the neighbor-data arena (random-access gather per candidate).
  const BucketId k = static_cast<BucketId>(state.range(0));
  const BipartiteGraph graph = MakeGraph(20000, 16);
  const auto partition = Partition::Random(graph.num_data(), k, 1);
  QueryNeighborData ndata;
  ndata.Build(graph, partition.assignment());
  const GainComputer gain(0.5,
                          static_cast<uint32_t>(graph.MaxQueryDegree()));
  uint64_t v = 0;
  for (auto _ : state) {
    const VertexId vertex = static_cast<VertexId>(v++ % graph.num_data());
    const BucketId from = partition.bucket_of(vertex);
    const BucketId sibling = from % 2 == 0 ? from + 1 : from - 1;
    benchmark::DoNotOptimize(
        gain.MoveGain(graph, ndata, vertex, from, sibling));
  }
}
BENCHMARK(BM_GroupedPullSiblingScan)->Arg(8)->Arg(64)->Arg(512);

void PushScanKernelBench(benchmark::State& state, AffinityScanFn fn) {
  // The raw push-argmax primitive both FindBestTargetPush* paths reduce to:
  // a sequential epsilon-guarded max over a contiguous accumulator run. The
  // scalar/SIMD pair demonstrates the block-skip kernel's speedup on the
  // same input (bit-identical results by construction).
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<AffinityEntry> run(n);
  for (size_t i = 0; i < n; ++i) {
    run[i] = {static_cast<BucketId>(i), 1, HashToUnitDouble(9, 2, i) * 4.0};
  }
  for (auto _ : state) {
    AffinityScanBest best;
    fn(run.data(), run.data() + run.size(),
       GainComputer::kAffinityTieEpsilon, &best);
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}

void BM_BestTargetPushScanScalar(benchmark::State& state) {
  PushScanKernelBench(state, &ScanAffinityRunScalar);
}
BENCHMARK(BM_BestTargetPushScanScalar)->Arg(64)->Arg(512);

void BM_BestTargetPushScanSimd(benchmark::State& state) {
  if (!SimdScanAvailable()) {
    state.SkipWithError("AVX2 scan kernel unavailable on this host/build");
    return;
  }
  PushScanKernelBench(state, SimdAffinityScan());
}
BENCHMARK(BM_BestTargetPushScanSimd)->Arg(64)->Arg(512);

void RefinerIterationBench(benchmark::State& state, bool incremental) {
  const BipartiteGraph graph = MakeGraph(20000, 16);
  const BucketId k = 32;
  RefinerOptions options;
  options.incremental = incremental;
  Refiner refiner(graph, options);
  const MoveTopology topo = MoveTopology::FullK(k, graph.num_data(), 0.05);
  uint64_t iteration = 0;
  Partition partition = Partition::Random(graph.num_data(), k, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        refiner.RunIteration(topo, &partition, 1, iteration++));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(graph.num_edges()));
}

void BM_RefinerIteration(benchmark::State& state) {
  RefinerIterationBench(state, /*incremental=*/false);
}
BENCHMARK(BM_RefinerIteration)->Unit(benchmark::kMillisecond);

void BM_RefinerIterationIncremental(benchmark::State& state) {
  RefinerIterationBench(state, /*incremental=*/true);
}
BENCHMARK(BM_RefinerIterationIncremental)->Unit(benchmark::kMillisecond);

void BM_SocialGenerator(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(MakeGraph(10000, 12).num_edges());
  }
}
BENCHMARK(BM_SocialGenerator)->Unit(benchmark::kMillisecond);

void BM_FmPass(benchmark::State& state) {
  const BipartiteGraph graph = MakeGraph(5000, 10);
  FmOptions options;
  options.max_passes = 1;
  for (auto _ : state) {
    std::vector<int8_t> side(graph.num_data());
    for (VertexId v = 0; v < graph.num_data(); ++v) {
      side[v] = static_cast<int8_t>(v % 2);
    }
    benchmark::DoNotOptimize(FmRefineBisection(graph, {}, options, &side));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(graph.num_edges()));
}
BENCHMARK(BM_FmPass)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace shp

BENCHMARK_MAIN();
