// Table 2 reproduction: fanout quality of the partitioner roster across
// hypergraphs and bucket counts k ∈ {2, 8, 32, 128, 512}.
//
// Paper shape to check: no partitioner dominates everywhere; the multilevel
// family (standing in for Zoltan/Mondriaan) tends to win on web graphs by
// 10-30%, while SHP is competitive on social/FB-like graphs; SHP-2 trails
// SHP-k by roughly 5-10%. Random is printed as the no-structure reference.
#include <cstdio>
#include <map>

#include "baseline/random_partitioner.h"
#include "common/flags.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace shp;
  auto flags = Flags::Parse(argc, argv).value();
  bench::PrintBanner("Table 2: fanout quality comparison", flags);

  // Default extra scale keeps the whole grid to a couple of minutes.
  const double extra_scale = flags.GetDouble("scale", 0.15);
  const std::vector<std::string> datasets = {
      "email-Enron", "soc-Epinions", "web-Stanford", "web-BerkStan",
      "soc-Pokec",   "soc-LJ",       "FB-10M",       "FB-50M"};
  const std::vector<BucketId> ks = {2, 8, 32, 128, 512};

  auto roster = bench::StandardRoster(/*seed=*/12);

  for (const std::string& dataset : datasets) {
    bench::Instance instance = bench::LoadInstance(dataset, extra_scale);
    std::printf("--- %s (|Q|=%u |D|=%u |E|=%llu) ---\n", dataset.c_str(),
                instance.graph.num_queries(), instance.graph.num_data(),
                static_cast<unsigned long long>(instance.graph.num_edges()));

    // fanout[algorithm][k]
    std::map<std::string, std::map<BucketId, double>> fanout;
    for (BucketId k : ks) {
      if (static_cast<VertexId>(k) * 2 > instance.graph.num_data()) {
        continue;  // k too large for this bench scale
      }
      for (const auto& entry : roster) {
        auto partitioner = entry.make();
        const bench::RunOutcome outcome =
            bench::RunAndEvaluate(*partitioner, instance.graph, k);
        if (outcome.ok) fanout[entry.name][k] = outcome.fanout;
      }
      auto random = MakeRandomPartitioner({});
      fanout["Random"][k] =
          bench::RunAndEvaluate(*random, instance.graph, k).fanout;
    }

    // Raw fanout table (right half of paper Table 2).
    std::vector<std::string> headers = {"algorithm"};
    for (BucketId k : ks) headers.push_back("k=" + std::to_string(k));
    TablePrinter raw(headers);
    TablePrinter relative(headers);  // left half: % over best
    std::vector<std::string> algo_order = {"SHP-k", "SHP-2", "Multilevel",
                                           "LabelProp", "Random"};
    for (const auto& algo : algo_order) {
      std::vector<std::string> raw_row = {algo};
      std::vector<std::string> rel_row = {algo};
      for (BucketId k : ks) {
        const auto it = fanout[algo].find(k);
        if (it == fanout[algo].end()) {
          raw_row.push_back("-");
          rel_row.push_back("-");
          continue;
        }
        raw_row.push_back(TablePrinter::Fmt(it->second, 2));
        double best = 1e300;
        for (const auto& other : algo_order) {
          if (other == "Random") continue;  // reference, not competitor
          const auto jt = fanout[other].find(k);
          if (jt != fanout[other].end()) best = std::min(best, jt->second);
        }
        rel_row.push_back(algo == "Random"
                              ? "ref"
                              : TablePrinter::FmtPercent(
                                    it->second / best - 1.0, 1));
      }
      raw.AddRow(raw_row);
      relative.AddRow(rel_row);
    }
    std::printf("raw fanout:\n");
    raw.Print();
    std::printf("relative over best (Random = reference):\n");
    relative.Print();
    std::printf("\n");
  }
  return 0;
}
