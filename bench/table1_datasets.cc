// Table 1 reproduction: properties of the hypergraphs used in the
// experiments. Prints the paper-reported sizes next to the synthesized
// equivalents actually generated at the current bench scale.
#include <cstdio>

#include "common/flags.h"
#include "graph/graph_stats.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace shp;
  auto flags = Flags::Parse(argc, argv).value();
  bench::PrintBanner("Table 1: hypergraph properties (paper vs synthesized)",
                     flags);

  TablePrinter table({"hypergraph", "family", "paper |Q|", "paper |D|",
                      "paper |E|", "scale", "|Q|", "|D|", "|E|",
                      "avg qdeg"});
  for (const DatasetSpec& spec : DatasetCatalog()) {
    bench::Instance instance = bench::LoadInstance(spec.name);
    const GraphStats stats = ComputeGraphStats(instance.graph);
    table.AddRow({spec.name,
                  spec.family == DatasetFamily::kPowerLaw ? "power-law"
                  : spec.family == DatasetFamily::kWeb    ? "web"
                                                          : "social",
                  TablePrinter::FmtCount(static_cast<long long>(
                      spec.paper_queries)),
                  TablePrinter::FmtCount(static_cast<long long>(
                      spec.paper_data)),
                  TablePrinter::FmtCount(static_cast<long long>(
                      spec.paper_edges)),
                  TablePrinter::Fmt(instance.total_scale, 6),
                  TablePrinter::FmtCount(stats.num_queries),
                  TablePrinter::FmtCount(stats.num_data),
                  TablePrinter::FmtCount(static_cast<long long>(
                      stats.num_edges)),
                  TablePrinter::Fmt(stats.avg_query_degree, 1)});
  }
  table.Print();
  std::printf(
      "\nNote: synthesized instances preserve each dataset's average degree\n"
      "and structural family (degree tails, locality); see DESIGN.md "
      "substitution 2.\n");
  return 0;
}
