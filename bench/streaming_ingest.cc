// Bounded-memory streaming ingest series: ingest throughput (MB/s over the
// on-disk input), spill volume, and the refinement slowdown of running the
// same SHP sweep over a partially spilled graph versus the fully resident
// one (docs/ingest.md).
//
// Protocol: generate a power-law workload, snapshot it as both a text edge
// list and an SHPG binary, then stream each snapshot back in under a budget
// that forces the high-degree split to spill (factor 0.5 spills
// above-half-mean-degree lists regardless of the budget, so the spill path
// is always exercised at the default configuration). Refinement timing runs
// the incremental pull engine from an identical warm start on the in-memory
// graph and on the streamed (spilled) graph; the determinism contract says
// those trajectories are bit-identical, so the run exits 2 if the final
// assignments differ — the slowdown series is only meaningful if both legs
// did exactly the same work. Timing gates default to 0 (disabled) so ad-hoc
// runs never fail; the deterministic gates (spill exercised, identical
// trajectory, identical edge counts) always apply. Results go to stdout and
// BENCH_ingest_fresh.json for the CI regression gate
// (tools/check_bench_regression.py --ingest-fresh/--ingest-baseline).
//
// Peak-RSS ceilings are deliberately NOT asserted here: this process holds
// the reference graph and both streamed graphs at once. The budget
// assertion lives in tools/streaming_partition.cc, which isolates
// generation from the run under test in separate processes.
#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "common/flags.h"
#include "common/timer.h"
#include "core/move_topology.h"
#include "core/partition.h"
#include "core/refiner.h"
#include "graph/bipartite_graph.h"
#include "graph/gen_powerlaw.h"
#include "graph/io_binary.h"
#include "graph/io_edgelist.h"
#include "graph/streaming_ingest.h"
#include "harness.h"

namespace {

using namespace shp;  // NOLINT

uint64_t FileBytes(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 ? static_cast<uint64_t>(st.st_size)
                                        : 0;
}

struct IngestRun {
  double seconds = 0.0;
  double mb_per_s = 0.0;
  uint64_t file_bytes = 0;
  StreamingIngestStats stats;
};

}  // namespace

int main(int argc, char** argv) {
  auto flags = Flags::Parse(argc, argv).value();
  bench::PrintBanner(
      "Streaming ingest: throughput, spill volume, refinement slowdown",
      flags);

  const double scale = flags.GetDouble("scale", 1.0);
  PowerLawConfig config;
  config.num_queries =
      static_cast<VertexId>(flags.GetInt("queries", 20000) * scale);
  config.num_data = static_cast<VertexId>(flags.GetInt("data", 40000) * scale);
  config.target_edges =
      static_cast<EdgeIndex>(flags.GetInt("edges", 500000) * scale);
  config.seed = 9;
  const BipartiteGraph reference = GeneratePowerLaw(config);
  const BucketId k = static_cast<BucketId>(flags.GetInt("k", 16));
  const uint32_t timed_iterations = static_cast<uint32_t>(
      std::max<int64_t>(1, flags.GetInt("iterations", 12)));
  const uint64_t seed = 11;

  const std::string work_dir = flags.GetString("work_dir", "/tmp");
  const std::string text_path = work_dir + "/shp_ingest_bench.txt";
  const std::string binary_path = work_dir + "/shp_ingest_bench.shpg";
  const std::string spill_dir = work_dir + "/shp_ingest_bench_spill";
  if (!WriteBipartiteEdgeList(reference, text_path).ok() ||
      !WriteBinaryGraph(reference, binary_path).ok()) {
    std::fprintf(stderr, "cannot write snapshots under %s\n",
                 work_dir.c_str());
    return 1;
  }

  StreamingIngestOptions options;
  options.memory_budget_mb =
      static_cast<uint64_t>(flags.GetInt("memory_budget_mb", 12));
  options.high_degree_factor = flags.GetDouble("high_degree_factor", 0.5);
  options.spill_dir = spill_dir;

  std::printf("graph: %u queries, %u data, %llu pins, k=%d, budget %llu MB, "
              "factor %.2f\n",
              reference.num_queries(), reference.num_data(),
              static_cast<unsigned long long>(reference.num_edges()), k,
              static_cast<unsigned long long>(options.memory_budget_mb),
              options.high_degree_factor);

  auto ingest = [&](const char* what, bool binary)
      -> std::pair<IngestRun, Result<BipartiteGraph>> {
    IngestRun run;
    const std::string& path = binary ? binary_path : text_path;
    run.file_bytes = FileBytes(path);
    Timer timer;
    auto graph = binary ? StreamingIngestBinary(path, options, &run.stats)
                        : StreamingIngestEdgeList(path, options, &run.stats);
    run.seconds = timer.ElapsedMillis() / 1000.0;
    run.mb_per_s = run.seconds > 0.0
                       ? static_cast<double>(run.file_bytes) / (1 << 20) /
                             run.seconds
                       : 0.0;
    if (graph.ok()) {
      std::printf("%s: %.3f s, %.1f MB/s over %llu file bytes — spilled "
                  "%llu bytes (%u+%u lists), resident %llu bytes\n",
                  what, run.seconds, run.mb_per_s,
                  static_cast<unsigned long long>(run.file_bytes),
                  static_cast<unsigned long long>(run.stats.spilled_bytes),
                  run.stats.spilled_queries, run.stats.spilled_data,
                  static_cast<unsigned long long>(run.stats.resident_bytes));
    }
    return {run, std::move(graph)};
  };

  auto [edgelist_run, edgelist_graph] = ingest("ingest edgelist", false);
  auto [binary_run, binary_graph] = ingest("ingest binary  ", true);
  std::remove(text_path.c_str());
  std::remove(binary_path.c_str());
  if (!edgelist_graph.ok() || !binary_graph.ok()) {
    std::fprintf(stderr, "FAIL: ingest error: %s\n",
                 (!edgelist_graph.ok() ? edgelist_graph.status()
                                       : binary_graph.status())
                     .ToString()
                     .c_str());
    return 2;
  }
  // Deterministic gates: both paths must reconstruct the exact edge set and
  // must actually exercise the spill machinery this bench exists to time.
  for (const auto* run : {&edgelist_run, &binary_run}) {
    if (run->stats.spilled_bytes == 0) {
      std::fprintf(stderr,
                   "FAIL: nothing spilled — the series would time the "
                   "in-memory path twice (raise --edges or lower "
                   "--high_degree_factor)\n");
      return 2;
    }
  }
  if (edgelist_graph.value().num_edges() != reference.num_edges() ||
      binary_graph.value().num_edges() != reference.num_edges()) {
    std::fprintf(stderr, "FAIL: streamed edge count diverged from source\n");
    return 2;
  }

  // Refinement slowdown: the identical incremental-pull sweep from the same
  // warm start, on the fully resident graph vs the spilled one. The spilled
  // leg reads its high-degree adjacency through the mmap'd arena under the
  // residency cap; the ratio of mean iteration times is the price of that.
  const MoveTopology topo = MoveTopology::FullK(k, reference.num_data(), 0.05);
  const std::vector<BucketId> start =
      Partition::BalancedRandom(reference.num_data(), k, seed).assignment();
  auto run_refine = [&](const BipartiteGraph& graph) {
    RefinerOptions refiner_options;
    refiner_options.sweep_mode = RefinerOptions::SweepMode::kPull;
    Refiner refiner(graph, refiner_options);
    Partition partition = Partition::FromAssignment(start, k);
    std::vector<double> iteration_ms;
    for (uint32_t i = 0; i < timed_iterations; ++i) {
      Timer timer;
      refiner.RunIteration(topo, &partition, seed, i);
      iteration_ms.push_back(timer.ElapsedMillis());
    }
    return std::make_pair(iteration_ms, partition.assignment());
  };
  const auto [memory_ms, memory_assignment] = run_refine(reference);
  const auto [streaming_ms, streaming_assignment] =
      run_refine(binary_graph.value());
  if (streaming_assignment != memory_assignment) {
    std::fprintf(stderr,
                 "FAIL: refinement over the spilled graph diverged from the "
                 "in-memory run (the determinism contract in "
                 "graph/streaming_ingest.h)\n");
    return 2;
  }
  auto mean_of = [](const std::vector<double>& v) {
    return std::accumulate(v.begin(), v.end(), 0.0) /
           static_cast<double>(v.size());
  };
  const double memory_mean = mean_of(memory_ms);
  const double streaming_mean = mean_of(streaming_ms);
  const double slowdown =
      memory_mean > 0.0 ? streaming_mean / memory_mean : 0.0;
  std::printf("refine in-memory : %.3f ms/iteration\n", memory_mean);
  std::printf("refine streaming : %.3f ms/iteration (%.2fx slowdown, "
              "bit-identical trajectory)\n",
              streaming_mean, slowdown);

  // Default output deliberately differs from the committed baseline
  // (BENCH_ingest.json): an ad-hoc run must not clobber the file the CI
  // regression gate diffs against.
  const std::string out_path =
      flags.GetString("out", "BENCH_ingest_fresh.json");
  std::FILE* out = std::fopen(out_path.c_str(), "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  auto write_ingest_series = [&](const char* name, const IngestRun& run) {
    std::fprintf(out,
                 "  \"%s\": {\n"
                 "    \"seconds\": %.6f,\n"
                 "    \"mb_per_s\": %.3f,\n"
                 "    \"file_bytes\": %llu,\n"
                 "    \"spilled_bytes\": %llu,\n"
                 "    \"resident_bytes\": %llu,\n"
                 "    \"spilled_vertices\": %llu,\n"
                 "    \"spill_cache_bytes\": %llu\n"
                 "  }",
                 name, run.seconds, run.mb_per_s,
                 static_cast<unsigned long long>(run.file_bytes),
                 static_cast<unsigned long long>(run.stats.spilled_bytes),
                 static_cast<unsigned long long>(run.stats.resident_bytes),
                 static_cast<unsigned long long>(run.stats.spilled_queries +
                                                 run.stats.spilled_data),
                 static_cast<unsigned long long>(
                     run.stats.spill_cache_bytes));
  };
  auto write_refine_series = [&](const char* name,
                                 const std::vector<double>& ms, double mean) {
    std::fprintf(out,
                 "  \"%s\": {\n"
                 "    \"mean_iteration_ms\": %.6f,\n"
                 "    \"iteration_ms\": [",
                 name, mean);
    for (size_t i = 0; i < ms.size(); ++i) {
      std::fprintf(out, "%s%.6f", i == 0 ? "" : ", ", ms[i]);
    }
    std::fprintf(out, "]\n  }");
  };
  std::fprintf(out,
               "{\n  \"benchmark\": \"streaming_ingest\",\n"
               "  \"num_queries\": %u,\n  \"num_data\": %u,\n"
               "  \"num_pins\": %llu,\n  \"k\": %d,\n"
               "  \"memory_budget_mb\": %llu,\n"
               "  \"high_degree_factor\": %.4f,\n"
               "  \"timed_iterations\": %u,\n",
               reference.num_queries(), reference.num_data(),
               static_cast<unsigned long long>(reference.num_edges()), k,
               static_cast<unsigned long long>(options.memory_budget_mb),
               options.high_degree_factor, timed_iterations);
  write_ingest_series("ingest_edgelist", edgelist_run);
  std::fprintf(out, ",\n");
  write_ingest_series("ingest_binary", binary_run);
  std::fprintf(out, ",\n");
  write_refine_series("refine_in_memory", memory_ms, memory_mean);
  std::fprintf(out, ",\n");
  write_refine_series("refine_streaming", streaming_ms, streaming_mean);
  std::fprintf(out,
               ",\n  \"refine_slowdown\": %.4f,\n"
               "  \"identical_assignment\": true\n}\n",
               slowdown);
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  // Optional timing gate (host-dependent, so default 0 = disabled; CI sets
  // a generous ceiling — the trend lives in the regression script, which
  // compares the within-run slowdown ratio, not absolute ms).
  const double max_slowdown = flags.GetDouble("max_slowdown", 0.0);
  if (max_slowdown > 0.0 && slowdown > max_slowdown) {
    std::fprintf(stderr,
                 "FAIL: streaming refinement slowdown %.2fx above allowed "
                 "%.2fx\n",
                 slowdown, max_slowdown);
    return 3;
  }
  return 0;
}
