// Ablation bench for the §3.4 "advanced implementation" features, the design
// choices DESIGN.md calls out:
//   1. histogram matching vs the plain Algorithm-1 probability mover,
//   2. capacity-slack (imbalanced swaps) on/off,
//   3. ε scaling by recursion depth on/off,
//   4. the future-split objective on/off.
// Each row reports final fanout and moved-vertex volume on a social and a
// web instance (k = 32).
#include <cstdio>

#include "common/flags.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace shp;
  auto flags = Flags::Parse(argc, argv).value();
  bench::PrintBanner("Ablation: §3.4 advanced features (SHP-2, k=32)", flags);

  const double extra_scale = flags.GetDouble("scale", 0.3);
  const BucketId k = 32;

  struct Variant {
    std::string name;
    std::function<void(RecursiveOptions*)> tweak;
  };
  const std::vector<Variant> variants = {
      {"full (default)", [](RecursiveOptions*) {}},
      {"plain Alg.1 mover",
       [](RecursiveOptions* o) {
         o->refiner.broker.strategy =
             MoveBrokerOptions::Strategy::kPlainProbability;
         o->refiner.propose_nonpositive = false;
       }},
      {"no capacity slack",
       [](RecursiveOptions* o) {
         o->refiner.broker.use_capacity_slack = false;
       }},
      {"no eps scaling",
       [](RecursiveOptions* o) { o->scale_epsilon_by_depth = false; }},
      {"no future-split obj",
       [](RecursiveOptions* o) { o->future_split_objective = false; }},
      {"exact pairing (serial)",
       [](RecursiveOptions* o) {
         o->refiner.broker.strategy =
             MoveBrokerOptions::Strategy::kExactPairing;
       }},
  };

  for (const std::string& dataset : {std::string("soc-Pokec"),
                                     std::string("web-Stanford")}) {
    bench::Instance instance = bench::LoadInstance(dataset, extra_scale);
    std::printf("--- %s ---\n", dataset.c_str());
    TablePrinter table({"variant", "fanout", "imbalance", "total moves",
                        "levels"});
    for (const Variant& variant : variants) {
      RecursiveOptions options;
      options.k = k;
      options.seed = 55;
      variant.tweak(&options);
      const RecursiveResult result =
          RecursivePartitioner(options).Run(instance.graph);
      uint64_t total_moves = 0;
      for (const auto& record : result.level_history) {
        total_moves += record.total_moved;
      }
      const PartitionSummary summary =
          SummarizePartition(instance.graph, result.assignment, k);
      table.AddRow({variant.name, TablePrinter::Fmt(summary.fanout, 3),
                    TablePrinter::Fmt(summary.imbalance, 4),
                    TablePrinter::FmtCount(static_cast<long long>(
                        total_moves)),
                    std::to_string(result.levels_run)});
    }
    table.Print();
    std::printf("\n");
  }
  std::printf("expected: the full configuration matches or beats each "
              "ablation on fanout;\nthe plain mover's random pairing wastes "
              "high-gain moves (paper §3.4).\n");
  return 0;
}
