// Online repartitioning under live replayed traffic: the serving-loop bench
// (sharding/serving_loop.h). Four scenarios share one generated power-law
// workload graph:
//
//   * serving_powerlaw    — static skewed traffic; the headline series. The
//     run FAILS (exit 2) unless the settled post-repartition p99 is
//     strictly below the pre-repartition p99.
//   * serving_hotkey      — a 1% hot set absorbing half the mass.
//   * serving_diurnal     — the popularity center rotates each epoch.
//   * serving_worker_kill — a server dies mid-run; its records are
//     emergency-rehomed through the dual-read restore path.
//
// Each scenario emits before/during/after p50/p99/mean series plus the
// migration accounting (moves per epoch vs budget, migrated records/bytes,
// dual-read query counts) into BENCH_serving JSON. CI diffs the fresh run
// against the committed baseline with tools/check_bench_regression.py:
// the p99-during-migration inflation (during/before ratio) must not regress
// by more than 20%.
//
// Hard in-binary gates (deterministic, so they always run):
//   * powerlaw: p99_end < p99_start (the repartition must pay for itself),
//   * every epoch's executed moves <= the configured budget,
//   * zero scratch growths across all replay phases (allocation regression),
//   * every dual-read serveability check passed (the loop aborts otherwise).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "graph/gen_powerlaw.h"
#include "sharding/serving_loop.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace shp;
  auto flags = Flags::Parse(argc, argv).value();
  bench::PrintBanner(
      "Serving loop: online repartitioning under live replayed traffic",
      flags);

  PowerLawConfig graph_config;
  graph_config.num_queries = static_cast<VertexId>(
      flags.GetInt("queries", 24000) * flags.GetDouble("scale", 1.0));
  graph_config.num_data = static_cast<VertexId>(
      flags.GetInt("data", 16000) * flags.GetDouble("scale", 1.0));
  graph_config.target_edges = static_cast<EdgeIndex>(
      flags.GetInt("edges", 180000) * flags.GetDouble("scale", 1.0));
  graph_config.seed = 17;
  const BipartiteGraph graph = GeneratePowerLaw(graph_config);

  ServingLoopConfig base;
  base.num_epochs = static_cast<uint64_t>(flags.GetInt("epochs", 3));
  base.requests_per_phase =
      static_cast<uint64_t>(flags.GetInt("requests", 12000));
  base.iterations_per_epoch =
      static_cast<uint64_t>(flags.GetInt("iterations", 6));
  base.move_budget_per_epoch = static_cast<uint64_t>(
      flags.GetInt("budget", static_cast<int64_t>(graph.num_data() / 4)));
  base.cluster.num_servers =
      static_cast<uint32_t>(flags.GetInt("servers", 24));
  base.seed = 404;

  std::printf("graph: %u queries, %u data, %llu pins, %u servers, "
              "budget %llu moves/epoch\n",
              graph.num_queries(), graph.num_data(),
              static_cast<unsigned long long>(graph.num_edges()),
              base.cluster.num_servers,
              static_cast<unsigned long long>(base.move_budget_per_epoch));

  struct ScenarioRun {
    std::string name;
    ServingReport report;
  };
  std::vector<ScenarioRun> runs;

  auto run_scenario = [&](const char* name, TrafficScenario scenario,
                          std::vector<ServerKillEvent> kills) {
    ServingLoopConfig config = base;
    config.scenario = scenario;
    config.kill_events = std::move(kills);
    ServingLoop loop(graph, config);
    ScenarioRun run;
    run.name = name;
    run.report = loop.Run();
    const ServingReport& r = run.report;
    std::printf("%-20s p99 %.3f -> %.3f (worst during %.3f), "
                "%llu moves, %llu records / %llu bytes migrated, "
                "%llu dual-read queries, %llu recovered\n",
                name, r.p99_start, r.p99_end, r.p99_during_worst,
                static_cast<unsigned long long>(r.total_moves),
                static_cast<unsigned long long>(r.total_migrated_records),
                static_cast<unsigned long long>(r.total_migration_bytes),
                static_cast<unsigned long long>(r.total_dual_read_queries),
                static_cast<unsigned long long>(r.total_recovered_records));
    runs.push_back(std::move(run));
  };

  run_scenario("serving_powerlaw", TrafficScenario::kPowerLaw, {});
  run_scenario("serving_hotkey", TrafficScenario::kHotKey, {});
  run_scenario("serving_diurnal", TrafficScenario::kDiurnal, {});
  // Kill one server at the start of the second epoch — after the first
  // epoch's repartition has settled, so the restore path runs against an
  // optimized assignment, not the random start.
  run_scenario("serving_worker_kill", TrafficScenario::kPowerLaw,
               {{/*epoch=*/1, /*server=*/3}});

  // ---- deterministic gates ----
  int failures = 0;
  for (const ScenarioRun& run : runs) {
    const ServingReport& r = run.report;
    for (size_t e = 0; e < r.epochs.size(); ++e) {
      if (base.move_budget_per_epoch != 0 &&
          r.epochs[e].executed_moves > base.move_budget_per_epoch) {
        std::fprintf(stderr, "FAIL: %s epoch %zu executed %llu moves over "
                     "budget %llu\n",
                     run.name.c_str(), e,
                     static_cast<unsigned long long>(
                         r.epochs[e].executed_moves),
                     static_cast<unsigned long long>(
                         base.move_budget_per_epoch));
        ++failures;
      }
    }
    if (r.scratch_grow_events != 0) {
      std::fprintf(stderr, "FAIL: %s replay grew the multiget scratch %llu "
                   "times (zero-allocation steady state regressed)\n",
                   run.name.c_str(),
                   static_cast<unsigned long long>(r.scratch_grow_events));
      ++failures;
    }
    if (r.serveability_checks == 0) {
      std::fprintf(stderr,
                   "FAIL: %s performed no dual-read serveability checks\n",
                   run.name.c_str());
      ++failures;
    }
  }
  const ServingReport& powerlaw = runs[0].report;
  if (!(powerlaw.p99_end < powerlaw.p99_start)) {
    std::fprintf(stderr,
                 "FAIL: post-repartition p99 %.4f not strictly below "
                 "pre-repartition p99 %.4f on the power-law scenario\n",
                 powerlaw.p99_end, powerlaw.p99_start);
    ++failures;
  }
  if (powerlaw.total_migrated_records == 0 ||
      powerlaw.total_migration_bytes !=
          powerlaw.total_migrated_records * base.record_bytes) {
    std::fprintf(stderr,
                 "FAIL: migration byte accounting inconsistent "
                 "(%llu records, %llu bytes, %llu bytes/record)\n",
                 static_cast<unsigned long long>(
                     powerlaw.total_migrated_records),
                 static_cast<unsigned long long>(
                     powerlaw.total_migration_bytes),
                 static_cast<unsigned long long>(base.record_bytes));
    ++failures;
  }

  // Default output deliberately differs from the committed baseline
  // (BENCH_serving.json) so ad-hoc runs never clobber the file CI diffs
  // against; refresh the baseline explicitly with --out=BENCH_serving.json.
  const std::string out_path =
      flags.GetString("out", "BENCH_serving_fresh.json");
  std::FILE* out = std::fopen(out_path.c_str(), "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"benchmark\": \"serving_loop\",\n"
               "  \"num_queries\": %u,\n  \"num_data\": %u,\n"
               "  \"num_pins\": %llu,\n  \"num_servers\": %u,\n"
               "  \"num_epochs\": %llu,\n  \"requests_per_phase\": %llu,\n"
               "  \"move_budget_per_epoch\": %llu,\n"
               "  \"record_bytes\": %llu",
               graph.num_queries(), graph.num_data(),
               static_cast<unsigned long long>(graph.num_edges()),
               base.cluster.num_servers,
               static_cast<unsigned long long>(base.num_epochs),
               static_cast<unsigned long long>(base.requests_per_phase),
               static_cast<unsigned long long>(base.move_budget_per_epoch),
               static_cast<unsigned long long>(base.record_bytes));
  auto write_phase_array = [&](const char* field,
                               const ServingReport& r,
                               double PhaseStats::*member,
                               const PhaseStats EpochReport::*phase) {
    std::fprintf(out, "    \"%s\": [", field);
    for (size_t e = 0; e < r.epochs.size(); ++e) {
      std::fprintf(out, "%s%.6f", e == 0 ? "" : ", ",
                   r.epochs[e].*phase.*member);
    }
    std::fprintf(out, "],\n");
  };
  for (const ScenarioRun& run : runs) {
    const ServingReport& r = run.report;
    std::fprintf(out, ",\n  \"%s\": {\n", run.name.c_str());
    write_phase_array("serving_p50_before", r, &PhaseStats::p50,
                      &EpochReport::before);
    write_phase_array("serving_p50_during", r, &PhaseStats::p50,
                      &EpochReport::during_migration);
    write_phase_array("serving_p50_after", r, &PhaseStats::p50,
                      &EpochReport::after);
    write_phase_array("serving_p99_before", r, &PhaseStats::p99,
                      &EpochReport::before);
    write_phase_array("serving_p99_during", r, &PhaseStats::p99,
                      &EpochReport::during_migration);
    write_phase_array("serving_p99_after", r, &PhaseStats::p99,
                      &EpochReport::after);
    write_phase_array("mean_before", r, &PhaseStats::mean,
                      &EpochReport::before);
    write_phase_array("mean_after", r, &PhaseStats::mean,
                      &EpochReport::after);
    write_phase_array("fanout_before", r, &PhaseStats::average_fanout,
                      &EpochReport::before);
    write_phase_array("fanout_after", r, &PhaseStats::average_fanout,
                      &EpochReport::after);
    std::fprintf(out, "    \"moves_per_epoch\": [");
    for (size_t e = 0; e < r.epochs.size(); ++e) {
      std::fprintf(out, "%s%llu", e == 0 ? "" : ", ",
                   static_cast<unsigned long long>(
                       r.epochs[e].executed_moves));
    }
    std::fprintf(out, "],\n");
    std::fprintf(out,
                 "    \"p99_start\": %.6f,\n"
                 "    \"p99_during_worst\": %.6f,\n"
                 "    \"p99_end\": %.6f,\n"
                 "    \"total_moves\": %llu,\n"
                 "    \"migrated_records\": %llu,\n"
                 "    \"migration_bytes\": %llu,\n"
                 "    \"recovered_records\": %llu,\n"
                 "    \"dual_read_queries\": %llu,\n"
                 "    \"serveability_checks\": %llu\n  }",
                 r.p99_start, r.p99_during_worst, r.p99_end,
                 static_cast<unsigned long long>(r.total_moves),
                 static_cast<unsigned long long>(r.total_migrated_records),
                 static_cast<unsigned long long>(r.total_migration_bytes),
                 static_cast<unsigned long long>(r.total_recovered_records),
                 static_cast<unsigned long long>(r.total_dual_read_queries),
                 static_cast<unsigned long long>(r.serveability_checks));
  }
  std::fprintf(out, "\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  return failures == 0 ? 0 : 2;
}
