// Figure 4 reproduction: multi-get latency vs fanout.
//
// (a) Synthetic: latency percentiles of parallel fan-out requests, in units
//     of the average single-request latency t. Paper shape: p99 grows
//     steeply and saturates; halving fanout 40 -> 10 roughly halves average
//     latency.
// (b) Realistic: a simulated 40-server kv cluster storing a social graph,
//     sharded randomly vs with SHP; traffic replay measures latency per
//     observed fanout and the end-to-end average-latency ratio.
#include <cstdio>

#include "baseline/random_partitioner.h"
#include "common/flags.h"
#include "core/shp.h"
#include "graph/gen_social.h"
#include "harness.h"
#include "sharding/multiget_sim.h"
#include "sharding/traffic_replay.h"

int main(int argc, char** argv) {
  using namespace shp;
  auto flags = Flags::Parse(argc, argv).value();
  bench::PrintBanner("Figure 4: latency vs fanout", flags);

  // ------------------------------------------------ Fig 4a: synthetic ---
  std::printf("(a) synthetic multi-get latency (units of t = mean single "
              "request)\n");
  MultiGetSweepConfig sweep;
  sweep.samples_per_fanout =
      static_cast<uint32_t>(flags.GetInt("samples", 20000));
  const auto rows = RunMultiGetSweep(sweep);
  TablePrinter table_a({"fanout", "p50", "p90", "p95", "p99", "mean"});
  double mean_unit = rows.front().mean;  // normalize to fanout-1 mean
  for (const auto& row : rows) {
    if (row.fanout % 5 != 0 && row.fanout != 1) continue;  // paper's ticks
    table_a.AddRow({std::to_string(row.fanout),
                    TablePrinter::Fmt(row.p50 / mean_unit, 2),
                    TablePrinter::Fmt(row.p90 / mean_unit, 2),
                    TablePrinter::Fmt(row.p95 / mean_unit, 2),
                    TablePrinter::Fmt(row.p99 / mean_unit, 2),
                    TablePrinter::Fmt(row.mean / mean_unit, 2)});
  }
  table_a.Print();
  const double f40 = rows[39].mean, f10 = rows[9].mean;
  std::printf("mean latency ratio fanout 40 vs 10: %.2fx (paper: ~2x)\n\n",
              f40 / f10);

  // ----------------------------------------------- Fig 4b: kv cluster ---
  std::printf("(b) 40-server kv cluster, social graph, SHP vs random "
              "sharding\n");
  SocialGraphConfig social;
  social.num_users = static_cast<VertexId>(
      20000 * BenchScale() * flags.GetDouble("scale", 1.0));
  social.avg_degree = 40;
  const BipartiteGraph graph = GenerateSocialGraph(social);

  RecursiveOptions shp_options;
  shp_options.k = 40;
  shp_options.seed = 7;
  const auto shp_assignment =
      RecursivePartitioner(shp_options).Run(graph).assignment;
  const auto random_assignment =
      MakeRandomPartitioner({})->Partition(graph, 40, nullptr).value();

  KvClusterConfig cluster_config;
  ReplayConfig replay_config;
  replay_config.num_requests =
      static_cast<uint64_t>(flags.GetInt("requests", 100000));

  const KvClusterSim shp_cluster(cluster_config, shp_assignment);
  const KvClusterSim random_cluster(cluster_config, random_assignment);
  const ReplayReport shp_report =
      ReplayTraffic(graph, shp_cluster, replay_config);
  const ReplayReport random_report =
      ReplayTraffic(graph, random_cluster, replay_config);

  TablePrinter table_b({"fanout", "mean latency (SHP shard)", "p99",
                        "#queries"});
  for (uint32_t f = 1; f < shp_report.mean_latency_by_fanout.size(); ++f) {
    if (shp_report.count_by_fanout[f] < 50) continue;  // paper drops f>35
    if (f % 5 != 0 && f != 1) continue;
    table_b.AddRow({std::to_string(f),
                    TablePrinter::Fmt(shp_report.mean_latency_by_fanout[f], 2),
                    TablePrinter::Fmt(shp_report.p99_latency_by_fanout[f], 2),
                    TablePrinter::FmtCount(static_cast<long long>(
                        shp_report.count_by_fanout[f]))});
  }
  table_b.Print();
  std::printf(
      "\naverage fanout:  SHP %.1f vs random %.1f (paper: 9.9 vs ~40)\n"
      "average latency: SHP %.2f vs random %.2f -> %.2fx lower "
      "(paper: ~2x)\n",
      shp_report.average_fanout, random_report.average_fanout,
      shp_report.average_latency, random_report.average_latency,
      random_report.average_latency /
          std::max(1e-9, shp_report.average_latency));
  return 0;
}
