// Shared plumbing for the table/figure reproduction harnesses: scaled
// dataset synthesis, the partitioner roster, and run bookkeeping.
//
// Scale semantics: every harness generates datasets at
// catalog_default_scale × SHP_BENCH_SCALE × harness_scale. The default
// configuration keeps the full `for b in build/bench/*; do $b; done` sweep
// to a few minutes; SHP_BENCH_SCALE (or --scale) raises it toward
// paper-sized instances.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/flags.h"
#include "common/table.h"
#include "common/timer.h"
#include "core/shp.h"
#include "graph/dataset_catalog.h"

namespace shp::bench {

/// A generated instance plus its provenance.
struct Instance {
  std::string name;
  BipartiteGraph graph;
  DatasetSpec spec;
  /// Overall scale relative to the paper's instance (catalog × env × local).
  double total_scale = 1.0;
};

/// Synthesizes catalog dataset `name` at harness-local `extra_scale`.
Instance LoadInstance(const std::string& name, double extra_scale = 1.0,
                      uint64_t seed = 42);

/// The partitioner roster used by Table 2 / Table 3 style comparisons.
struct AlgorithmEntry {
  std::string name;
  std::function<std::unique_ptr<Partitioner>()> make;
};

/// SHP-k, SHP-2, Multilevel (the Zoltan/Mondriaan/Parkway stand-in),
/// LabelProp. Random is separate (reference, not a competitor).
std::vector<AlgorithmEntry> StandardRoster(uint64_t seed);

/// Runs `partitioner` and evaluates fanout; convenience for the harnesses.
struct RunOutcome {
  bool ok = false;
  std::string error;
  double fanout = 0.0;
  double imbalance = 0.0;
  double wall_seconds = 0.0;
  std::vector<BucketId> assignment;
};

RunOutcome RunAndEvaluate(Partitioner& partitioner, const BipartiteGraph& graph,
                          BucketId k);

/// Prints the standard harness banner (scale, threads).
void PrintBanner(const std::string& title, const Flags& flags);

}  // namespace shp::bench
