// End-to-end driver for the bounded-memory streaming ingest (docs/ingest.md).
//
// Two modes, split into separate invocations on purpose: peak RSS (VmHWM)
// is monotone over a process lifetime, so generating the synthetic graph
// in-process would contaminate the ceiling measurement of the run under
// test.
//
//   generate:  streaming_partition --gen_out=g.shpg --num_queries=300000 \
//                  --num_data=600000 --target_edges=6000000
//     Writes a power-law SHPG snapshot (--format=edgelist for text) and
//     prints the graph's full in-memory footprint, so a caller can pick a
//     budget ≥10x smaller.
//
//   run:       streaming_partition --input=g.shpg --k=16 \
//                  --memory_budget_mb=24 --high_degree_factor=1.0 \
//                  --spill_dir=/tmp/spill --iterations=8 --assert_budget
//     Streams the graph in under the budget, partitions it (SHP-k by
//     default; --algo=hdrf|dbh for the one-pass baselines), and reports
//     ingest stats, partition quality, and the RSS delta over the
//     pre-ingest baseline. --assert_budget exits 3 unless that delta stays
//     under the budget; --require_spill exits 3 unless adjacency actually
//     spilled. --compare reruns the same partition on the fully in-memory
//     load (after the peak is captured) and exits 3 unless the assignment
//     is bit-identical and quality matches within rtol 1e-4.
#include <malloc.h>

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "baseline/streaming_dbh.h"
#include "baseline/streaming_hdrf.h"
#include "common/env.h"
#include "common/flags.h"
#include "common/thread_pool.h"
#include "core/shp.h"
#include "graph/disk_arena.h"
#include "graph/gen_powerlaw.h"
#include "graph/io_binary.h"
#include "graph/io_edgelist.h"
#include "graph/streaming_ingest.h"

namespace {

using namespace shp;  // NOLINT

constexpr int kExitUsage = 1;
constexpr int kExitAssertFailed = 3;

bool LooksBinary(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char magic[4] = {0, 0, 0, 0};
  const bool got = std::fread(magic, 1, 4, f) == 4;
  std::fclose(f);
  return got && std::memcmp(magic, "SHPG", 4) == 0;
}

int Generate(const Flags& flags) {
  PowerLawConfig config;
  config.num_queries =
      static_cast<VertexId>(flags.GetInt("num_queries", 300000));
  config.num_data = static_cast<VertexId>(flags.GetInt("num_data", 600000));
  config.target_edges =
      static_cast<EdgeIndex>(flags.GetInt("target_edges", 6000000));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  BipartiteGraph graph = GeneratePowerLaw(config);
  const std::string out = flags.GetString("gen_out", "");
  const std::string format = flags.GetString("format", "binary");
  Status st = format == "edgelist" ? WriteBipartiteEdgeList(graph, out)
                                   : WriteBinaryGraph(graph, out);
  if (!st.ok()) {
    std::fprintf(stderr, "generate failed: %s\n", st.ToString().c_str());
    return kExitUsage;
  }
  std::printf("generated=%s format=%s queries=%u data=%u edges=%" PRIu64
              " in_memory_bytes=%zu\n",
              out.c_str(), format.c_str(), graph.num_queries(),
              graph.num_data(), graph.num_edges(), graph.MemoryBytes());
  return 0;
}

Result<std::vector<BucketId>> RunAlgorithm(const std::string& algo,
                                           const BipartiteGraph& graph,
                                           BucketId k, uint32_t iterations,
                                           uint64_t seed, ThreadPool* pool) {
  if (algo == "hdrf") {
    return MakeStreamingHdrf()->Partition(graph, k, pool);
  }
  if (algo == "dbh") {
    StreamingDbhOptions options;
    options.salt = seed;
    return MakeStreamingDbh(options)->Partition(graph, k, pool);
  }
  if (algo == "shp") {
    ShpKOptions options;
    options.k = k;
    options.max_iterations = iterations;
    options.seed = seed;
    return MakeShpK(options)->Partition(graph, k, pool);
  }
  return Status::InvalidArgument("unknown --algo " + algo +
                                 " (want shp|hdrf|dbh)");
}

int Run(const Flags& flags) {
#ifdef __GLIBC__
  // glibc grows one malloc arena per thread by default; each arena retains
  // freed memory independently, which inflates peak RSS by megabytes per
  // worker and would dominate the ceiling this tool exists to measure.
  ::mallopt(M_ARENA_MAX, 1);
#endif
  const std::string input = flags.GetString("input", "");
  const bool binary = flags.GetString("format", "") == "binary" ||
                      (flags.GetString("format", "").empty() &&
                       LooksBinary(input));
  const BucketId k = static_cast<BucketId>(flags.GetInt("k", 16));
  const uint32_t iterations =
      static_cast<uint32_t>(flags.GetInt("iterations", 8));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const std::string algo = flags.GetString("algo", "shp");

  StreamingIngestOptions options;
  options.memory_budget_mb =
      static_cast<uint64_t>(flags.GetInt("memory_budget_mb", 64));
  options.high_degree_factor = flags.GetDouble("high_degree_factor", 1.0);
  options.spill_dir = flags.GetString("spill_dir", "/tmp/shp_spill");
  options.spill_cache_mb =
      static_cast<uint64_t>(flags.GetInt("spill_cache_mb", 0));
  options.keep_spill_files = flags.GetBool("keep_spill", false);

  ThreadPool pool(static_cast<size_t>(flags.GetInt("threads", 4)));

  const uint64_t baseline_rss = CurrentRssBytes();
  StreamingIngestStats stats;
  auto ingested = binary ? StreamingIngestBinary(input, options, &stats)
                         : StreamingIngestEdgeList(input, options, &stats);
  if (!ingested.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n",
                 ingested.status().ToString().c_str());
    return kExitUsage;
  }
  const BipartiteGraph& graph = ingested.value();
  std::printf("ingest format=%s queries=%u data=%u edges=%" PRIu64
              " thresholds=%u/%u scale=%.3f spilled_vertices=%u/%u "
              "resident_bytes=%" PRIu64 " spilled_bytes=%" PRIu64
              " cache_bytes=%" PRIu64 " graph_bytes=%zu\n",
              binary ? "binary" : "edgelist", stats.num_queries,
              stats.num_data, stats.num_edges, stats.query_threshold,
              stats.data_threshold, stats.threshold_scale,
              stats.spilled_queries, stats.spilled_data, stats.resident_bytes,
              stats.spilled_bytes, stats.spill_cache_bytes,
              graph.MemoryBytes());

  std::printf("rss_phase ingest_done current=%" PRIu64 " peak=%" PRIu64 "\n",
              CurrentRssBytes(), PeakRssBytes());

  auto assignment =
      RunAlgorithm(algo, graph, k, iterations, seed, &pool);
  std::printf("rss_phase partition_done current=%" PRIu64 " peak=%" PRIu64
              "\n",
              CurrentRssBytes(), PeakRssBytes());
  if (!assignment.ok()) {
    std::fprintf(stderr, "partition failed: %s\n",
                 assignment.status().ToString().c_str());
    return kExitUsage;
  }
  const PartitionSummary summary =
      SummarizePartition(graph, assignment.value(), k, 0.5, &pool);
  std::printf("partition algo=%s k=%d fanout=%.6f p_fanout=%.6f "
              "imbalance=%.4f\n",
              algo.c_str(), k, summary.fanout, summary.p_fanout,
              summary.imbalance);

  if (const HybridAdjacency* hybrid = graph.hybrid(); hybrid != nullptr) {
    auto print_arena = [](const char* side, const HybridAdjacency::Side& s) {
      if (s.spill == nullptr) return;
      std::printf("arena side=%s touched=%" PRIu64 " evictions=%" PRIu64
                  " peak_windows=%" PRIu64 " cap_bytes=%" PRIu64 "\n",
                  side, s.spill->windows_touched(),
                  s.spill->window_evictions(),
                  s.spill->peak_resident_windows(),
                  s.spill->resident_cap_bytes());
    };
    print_arena("query", hybrid->query);
    print_arena("data", hybrid->data);
  }

  // Peak is captured before any optional in-memory comparison load.
  const uint64_t peak_rss = PeakRssBytes();
  const uint64_t rss_delta =
      peak_rss > baseline_rss ? peak_rss - baseline_rss : 0;
  const uint64_t budget_bytes = options.memory_budget_mb << 20;
  std::printf("rss baseline_bytes=%" PRIu64 " peak_bytes=%" PRIu64
              " delta_bytes=%" PRIu64 " budget_bytes=%" PRIu64 "\n",
              baseline_rss, peak_rss, rss_delta, budget_bytes);

  int exit_code = 0;
  if (flags.GetBool("require_spill", false) && stats.spilled_bytes == 0) {
    std::fprintf(stderr, "FAIL: nothing spilled (spilled_bytes=0)\n");
    exit_code = kExitAssertFailed;
  }
  if (flags.GetBool("assert_budget", false) && rss_delta > budget_bytes) {
    std::fprintf(stderr,
                 "FAIL: peak RSS delta %" PRIu64
                 " bytes exceeds budget %" PRIu64 " bytes\n",
                 rss_delta, budget_bytes);
    exit_code = kExitAssertFailed;
  }

  if (flags.GetBool("compare", false)) {
    auto in_memory = binary
                         ? ReadBinaryGraph(input)
                         : ReadBipartiteEdgeList(input, /*drop_trivial=*/false);
    if (!in_memory.ok()) {
      std::fprintf(stderr, "compare load failed: %s\n",
                   in_memory.status().ToString().c_str());
      return kExitUsage;
    }
    auto reference =
        RunAlgorithm(algo, in_memory.value(), k, iterations, seed, &pool);
    if (!reference.ok()) {
      std::fprintf(stderr, "compare partition failed: %s\n",
                   reference.status().ToString().c_str());
      return kExitUsage;
    }
    const PartitionSummary ref_summary = SummarizePartition(
        in_memory.value(), reference.value(), k, 0.5, &pool);
    const bool identical = assignment.value() == reference.value();
    const double rtol =
        std::abs(summary.fanout - ref_summary.fanout) /
        std::max(1.0, std::abs(ref_summary.fanout));
    std::printf("compare identical_assignment=%d fanout_in_memory=%.6f "
                "fanout_streaming=%.6f rtol=%.3e\n",
                identical ? 1 : 0, ref_summary.fanout, summary.fanout, rtol);
    if (!identical || rtol > 1e-4) {
      std::fprintf(stderr,
                   "FAIL: streaming run diverged from in-memory run\n");
      exit_code = kExitAssertFailed;
    }
  }
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return kExitUsage;
  }
  if (flags.value().Has("gen_out")) return Generate(flags.value());
  if (flags.value().Has("input")) return Run(flags.value());
  std::fprintf(
      stderr,
      "usage:\n"
      "  %s --gen_out=G.shpg [--num_queries=N --num_data=N "
      "--target_edges=N --seed=S --format=binary|edgelist]\n"
      "  %s --input=G.shpg --k=16 --memory_budget_mb=24 "
      "[--high_degree_factor=F --spill_dir=DIR --spill_cache_mb=M "
      "--iterations=I --seed=S --algo=shp|hdrf|dbh --threads=T "
      "--assert_budget --require_spill --compare --keep_spill]\n",
      flags.value().program_name().c_str(),
      flags.value().program_name().c_str());
  return kExitUsage;
}
