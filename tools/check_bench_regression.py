#!/usr/bin/env python3
"""Bench-regression gate for BENCH_refine.json.

Diffs a freshly produced BENCH_refine.json against the committed baseline
and fails (exit 1) on:

 1. Timing regression: for every series present in both files with an
    `iteration_ms` list, the fresh median-iteration-ms — normalized by the
    file's `full_rebuild` median so the gate is host-speed-invariant
    (shared CI runners are heterogeneous; absolute ms across machines is
    noise, the ratio to the in-process reference engine is not) — must not
    exceed the baseline's normalized median by more than --max-regression
    (default 20%). Medians, not means: one GC hiccup or cold first
    iteration must not trip the gate. If either file lacks the
    `full_rebuild` anchor, the comparison falls back to absolute medians.

 2. Byte regression: for the delta-exchange series (bsp_push,
    bsp_push_grouped, and their varint-wire twins bsp_push_varint,
    bsp_push_grouped_varint), any increase of `steady_s2_remote_bytes` over
    the baseline fails outright — the steady-state superstep-2 byte count is
    a deterministic message-accounting result, not a timing, so there is no
    noise to tolerate. The varint series gate the grouped codec: a framing
    or delta-width regression shows up here as a byte increase even when the
    raw-record series are unchanged. The self-verifying envelope keeps its
    overhead out of `steady_s2_remote_bytes`, so the fault-free payload
    series stays comparable across the protocol change.

 3. Envelope budget: for the varint-wire series, the fresh
    `steady_s2_envelope_bytes` (integrity framing: header varints + CRC32C)
    must stay <= 4% of the fresh `steady_s2_remote_bytes` varint payload.
    This gate reads only the fresh file — baselines that predate the
    envelope simply lack the field and are skipped.

 4. Ingest gate (only when --ingest-fresh/--ingest-baseline are given):
    for the streaming-ingest series in BENCH_ingest.json, any increase of
    `spilled_bytes` over the baseline fails outright — the spill volume is
    a deterministic function of the generator seed and the threshold fit,
    so growth means the budget accounting or the split rule changed; and
    the fresh `refine_slowdown` (spilled-graph iteration time over the
    in-memory iteration time, a within-run ratio and therefore
    host-speed-invariant) must not exceed the baseline's slowdown by more
    than --max-regression.

 5. Serving gate (only when --serving-fresh/--serving-baseline are given):
    for every scenario series in BENCH_serving.json, the during-migration
    p99 inflation — worst during-phase p99 divided by the run's starting
    p99, a within-run ratio and therefore host-speed-invariant — must not
    exceed the baseline's inflation by more than --max-regression. This is
    the "online repartitioning must not wreck the tail while it migrates"
    contract; the absolute before/after win is enforced inside the bench
    binary itself (it exits nonzero unless post-repartition p99 beats
    pre-repartition p99 on the power-law scenario).

Missing or unreadable baseline → exit 0 with a SKIP notice (first run on a
branch that predates the baseline, or a series newly added by this change).
"""

import argparse
import json
import statistics
import sys

ANCHOR_SERIES = "full_rebuild"
DELTA_BYTE_SERIES = ("bsp_push", "bsp_push_varint", "bsp_push_grouped",
                     "bsp_push_grouped_varint")
ENVELOPE_SERIES = ("bsp_push_varint", "bsp_push_grouped_varint")
ENVELOPE_BUDGET = 0.04
SERVING_SERIES = ("serving_powerlaw", "serving_hotkey", "serving_diurnal",
                  "serving_worker_kill")
INGEST_BYTE_SERIES = ("ingest_edgelist", "ingest_binary")


MISSING = object()


def load(path):
    """Parsed JSON dict, MISSING if the file does not exist, or None if it
    exists but cannot be parsed (corrupt baselines must FAIL, not silently
    disable the gate)."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except FileNotFoundError:
        return MISSING
    except (OSError, ValueError):
        return None


def series_median_ms(doc, name):
    series = doc.get(name)
    if not isinstance(series, dict):
        return None
    samples = series.get("iteration_ms")
    if not isinstance(samples, list) or not samples:
        return None
    return statistics.median(samples)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", required=True,
                        help="BENCH_refine.json produced by this run")
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_refine.json to diff against")
    parser.add_argument("--max-regression", type=float, default=0.20,
                        help="allowed fractional median-ms regression")
    parser.add_argument("--ingest-fresh", default=None,
                        help="BENCH_ingest.json produced by this run "
                        "(enables the streaming-ingest gate)")
    parser.add_argument("--ingest-baseline", default=None,
                        help="committed BENCH_ingest.json to diff against")
    parser.add_argument("--serving-fresh", default=None,
                        help="BENCH_serving.json produced by this run "
                        "(enables the serving p99 gate)")
    parser.add_argument("--serving-baseline", default=None,
                        help="committed BENCH_serving.json to diff against")
    args = parser.parse_args()

    baseline = load(args.baseline)
    if baseline is MISSING:
        print(f"SKIP: baseline {args.baseline} does not exist — nothing to "
              "diff against")
        return 0
    if not isinstance(baseline, dict):
        print(f"FAIL: baseline {args.baseline} exists but is unreadable — "
              "a corrupt baseline must not silently disable the gate")
        return 1
    fresh = load(args.fresh)
    if not isinstance(fresh, dict):
        print(f"FAIL: fresh results {args.fresh} missing or unreadable")
        return 1

    failures = []

    # --- timing gate: normalized median iteration ms per shared series ---
    fresh_anchor = series_median_ms(fresh, ANCHOR_SERIES)
    base_anchor = series_median_ms(baseline, ANCHOR_SERIES)
    normalized = fresh_anchor is not None and base_anchor is not None \
        and fresh_anchor > 0 and base_anchor > 0
    mode = ("normalized by %s median" % ANCHOR_SERIES) if normalized \
        else "absolute (no anchor series)"
    print(f"timing gate ({mode}, threshold "
          f"{args.max_regression:.0%}):")
    for name in sorted(fresh.keys()):
        fresh_median = series_median_ms(fresh, name)
        base_median = series_median_ms(baseline, name)
        if fresh_median is None or base_median is None:
            continue
        if normalized:
            if name == ANCHOR_SERIES:
                # The anchor's normalized ratio is 1.0 by definition, and
                # comparing it on absolute ms would reintroduce exactly the
                # cross-host noise the normalization removes.
                continue
            fresh_metric = fresh_median / fresh_anchor
            base_metric = base_median / base_anchor
        else:
            fresh_metric = fresh_median
            base_metric = base_median
        if base_metric <= 0:
            continue
        ratio = fresh_metric / base_metric
        verdict = "ok"
        if ratio > 1.0 + args.max_regression:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: median iteration ms regressed {ratio - 1.0:+.1%} "
                f"(fresh {fresh_median:.3f} ms vs baseline "
                f"{base_median:.3f} ms, {mode})")
        print(f"  {name:<18} fresh {fresh_median:9.3f} ms  baseline "
              f"{base_median:9.3f} ms  ratio {ratio:6.3f}  {verdict}")

    # --- byte gate: deterministic steady-state superstep-2 volume ---
    print("superstep-2 byte gate (delta-exchange series, any increase "
          "fails):")
    for name in DELTA_BYTE_SERIES:
        fresh_series = fresh.get(name)
        base_series = baseline.get(name)
        if not isinstance(fresh_series, dict) or \
                not isinstance(base_series, dict):
            print(f"  {name:<18} not in both files — skipped")
            continue
        fresh_bytes = fresh_series.get("steady_s2_remote_bytes")
        base_bytes = base_series.get("steady_s2_remote_bytes")
        if not isinstance(fresh_bytes, int) or not isinstance(base_bytes,
                                                              int):
            print(f"  {name:<18} steady_s2_remote_bytes missing — skipped")
            continue
        verdict = "ok"
        if fresh_bytes > base_bytes:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: steady-state superstep-2 bytes grew "
                f"{fresh_bytes - base_bytes:+d} "
                f"(fresh {fresh_bytes} vs baseline {base_bytes})")
        print(f"  {name:<18} fresh {fresh_bytes:>12}  baseline "
              f"{base_bytes:>12}  {verdict}")

    # --- envelope gate: integrity framing stays within its 4% budget ---
    print(f"envelope budget gate (fresh file only, <= "
          f"{ENVELOPE_BUDGET:.0%} of the varint payload):")
    for name in ENVELOPE_SERIES:
        series = fresh.get(name)
        if not isinstance(series, dict):
            print(f"  {name:<18} not in fresh file — skipped")
            continue
        envelope = series.get("steady_s2_envelope_bytes")
        payload = series.get("steady_s2_remote_bytes")
        if not isinstance(envelope, int) or not isinstance(payload, int) \
                or payload <= 0:
            print(f"  {name:<18} envelope/payload fields missing — skipped")
            continue
        fraction = envelope / payload
        verdict = "ok"
        if fraction > ENVELOPE_BUDGET:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: envelope overhead {envelope} bytes is "
                f"{fraction:.1%} of the {payload}-byte varint payload "
                f"(budget {ENVELOPE_BUDGET:.0%})")
        print(f"  {name:<18} envelope {envelope:>10}  payload "
              f"{payload:>12}  {fraction:6.2%}  {verdict}")

    # --- ingest gate: spill volume (deterministic) + refine slowdown ---
    if args.ingest_fresh is not None:
        ingest_fresh = load(args.ingest_fresh)
        ingest_base = load(args.ingest_baseline) \
            if args.ingest_baseline is not None else MISSING
        if not isinstance(ingest_fresh, dict):
            failures.append(
                f"ingest: fresh results {args.ingest_fresh} missing or "
                "unreadable")
        elif ingest_base is MISSING:
            print(f"ingest gate: SKIP — baseline "
                  f"{args.ingest_baseline} does not exist")
        elif not isinstance(ingest_base, dict):
            failures.append(
                f"ingest: baseline {args.ingest_baseline} exists but is "
                "unreadable — a corrupt baseline must not silently disable "
                "the gate")
        else:
            print("ingest gate (spilled bytes, any increase fails):")
            for name in INGEST_BYTE_SERIES:
                fresh_series = ingest_fresh.get(name)
                base_series = ingest_base.get(name)
                if not isinstance(fresh_series, dict) or \
                        not isinstance(base_series, dict):
                    print(f"  {name:<18} not in both files — skipped")
                    continue
                fresh_bytes = fresh_series.get("spilled_bytes")
                base_bytes = base_series.get("spilled_bytes")
                if not isinstance(fresh_bytes, int) or \
                        not isinstance(base_bytes, int):
                    print(f"  {name:<18} spilled_bytes missing — skipped")
                    continue
                verdict = "ok"
                if fresh_bytes > base_bytes:
                    verdict = "REGRESSION"
                    failures.append(
                        f"{name}: spilled bytes grew "
                        f"{fresh_bytes - base_bytes:+d} (fresh {fresh_bytes} "
                        f"vs baseline {base_bytes}) — the spill split is "
                        "deterministic, so this is an accounting or "
                        "threshold-fit change, not noise")
                print(f"  {name:<18} fresh {fresh_bytes:>12}  baseline "
                      f"{base_bytes:>12}  {verdict}")

            print(f"ingest refine-slowdown gate (within-run ratio, "
                  f"threshold {args.max_regression:.0%}):")
            fresh_slow = ingest_fresh.get("refine_slowdown")
            base_slow = ingest_base.get("refine_slowdown")
            if not isinstance(fresh_slow, (int, float)) or \
                    not isinstance(base_slow, (int, float)) or base_slow <= 0:
                print("  refine_slowdown missing in one file — skipped")
            else:
                ratio = fresh_slow / base_slow
                verdict = "ok"
                if ratio > 1.0 + args.max_regression:
                    verdict = "REGRESSION"
                    failures.append(
                        f"ingest: refinement slowdown regressed "
                        f"{ratio - 1.0:+.1%} (fresh {fresh_slow:.4f}x vs "
                        f"baseline {base_slow:.4f}x of the in-memory "
                        "iteration time)")
                print(f"  refine_slowdown    fresh {fresh_slow:7.4f}x  "
                      f"baseline {base_slow:7.4f}x  ratio {ratio:6.3f}  "
                      f"{verdict}")

    # --- serving gate: during-migration p99 inflation per scenario ---
    if args.serving_fresh is not None:
        serving_fresh = load(args.serving_fresh)
        serving_base = load(args.serving_baseline) \
            if args.serving_baseline is not None else MISSING
        if not isinstance(serving_fresh, dict):
            failures.append(
                f"serving: fresh results {args.serving_fresh} missing or "
                "unreadable")
        elif serving_base is MISSING:
            print(f"serving gate: SKIP — baseline "
                  f"{args.serving_baseline} does not exist")
        elif not isinstance(serving_base, dict):
            failures.append(
                f"serving: baseline {args.serving_baseline} exists but is "
                "unreadable — a corrupt baseline must not silently disable "
                "the gate")
        else:
            print(f"serving gate (during-migration p99 inflation, threshold "
                  f"{args.max_regression:.0%}):")
            for name in SERVING_SERIES:
                fresh_series = serving_fresh.get(name)
                base_series = serving_base.get(name)
                if not isinstance(fresh_series, dict) or \
                        not isinstance(base_series, dict):
                    print(f"  {name:<20} not in both files — skipped")
                    continue

                def inflation(series):
                    worst = series.get("p99_during_worst")
                    start = series.get("p99_start")
                    if not isinstance(worst, (int, float)) or \
                            not isinstance(start, (int, float)) or start <= 0:
                        return None
                    return worst / start

                fresh_ratio = inflation(fresh_series)
                base_ratio = inflation(base_series)
                if fresh_ratio is None or base_ratio is None or \
                        base_ratio <= 0:
                    print(f"  {name:<20} p99 fields missing — skipped")
                    continue
                ratio = fresh_ratio / base_ratio
                verdict = "ok"
                if ratio > 1.0 + args.max_regression:
                    verdict = "REGRESSION"
                    failures.append(
                        f"{name}: during-migration p99 inflation regressed "
                        f"{ratio - 1.0:+.1%} (fresh {fresh_ratio:.4f}x vs "
                        f"baseline {base_ratio:.4f}x of the starting p99)")
                print(f"  {name:<20} fresh {fresh_ratio:7.4f}x  baseline "
                      f"{base_ratio:7.4f}x  ratio {ratio:6.3f}  {verdict}")

    if failures:
        print("\nFAIL:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nPASS: no bench regression")
    return 0


if __name__ == "__main__":
    sys.exit(main())
