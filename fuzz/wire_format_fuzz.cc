// libFuzzer harness for the superstep-2 wire decoders.
//
// Feeds arbitrary bytes to DecodeEnveloped (which internally exercises the
// varint parser, the CRC check, the length pin, and DecodeGroupedDeltas) and
// to DecodeGroupedDeltas directly. The decoders' contract on hostile input
// is: return a verdict/false, never crash, hang, or allocate unboundedly.
//
// Build with -DSHP_FUZZ=ON (clang only):
//   cmake -B build-fuzz -DSHP_FUZZ=ON -DCMAKE_CXX_COMPILER=clang++
//   cmake --build build-fuzz --target wire_format_fuzz
//   build-fuzz/wire_format_fuzz -max_total_time=60
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "engine/wire_format.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::span<const uint8_t> bytes(data, size);

  shp::wire::EnvelopeHeader header;
  std::vector<shp::NeighborDelta> decoded;
  (void)shp::wire::DecodeEnveloped(bytes, &header, &decoded);

  decoded.clear();
  (void)shp::wire::DecodeGroupedDeltas(bytes, &decoded);
  return 0;
}
