#include "sharding/kv_cluster.h"

#include <algorithm>

#include "common/logging.h"

namespace shp {
namespace {

// Appends `value` without ever reallocating in steady state: Prepare()
// reserved worst-case capacity, so a growth here means the reservation was
// wrong — counted so the zero-allocation regression test can pin it at 0.
template <typename T>
void PushCounted(std::vector<T>* vec, T value, uint64_t* grow_events) {
  if (vec->size() == vec->capacity()) ++(*grow_events);
  vec->push_back(value);
}

}  // namespace

void MultiGetScratch::Prepare(const BipartiteGraph& graph) {
  // Worst case: every record of the largest query is mid-migration, so it
  // contributes two locations (primary + secondary).
  const size_t cap = 2 * static_cast<size_t>(graph.MaxQueryDegree());
  servers.reserve(cap);
  distinct.reserve(cap);
  records.reserve(cap);
  surcharges.reserve(cap);
  grow_events = 0;
  serveability_checks = 0;
}

KvClusterSim::KvClusterSim(const KvClusterConfig& config,
                           std::vector<BucketId> assignment)
    : config_(config),
      assignment_(std::move(assignment)),
      model_(config.latency) {
  for (BucketId b : assignment_) {
    SHP_CHECK(b >= 0 && b < static_cast<BucketId>(config.num_servers))
        << "record assigned to nonexistent server";
  }
}

void KvClusterSim::SetRecordServer(VertexId v, BucketId server) {
  SHP_CHECK(v >= 0 && static_cast<size_t>(v) < assignment_.size())
      << "record id out of range";
  SHP_CHECK(server >= -1 && server < static_cast<BucketId>(config_.num_servers))
      << "record rehomed to nonexistent server";
  assignment_[v] = server;
}

QueryTrace KvClusterSim::IssueQuery(const BipartiteGraph& graph, VertexId q,
                                    Rng* rng, MultiGetScratch* scratch) const {
  scratch->servers.clear();
  for (VertexId v : graph.QueryNeighbors(q)) {
    PushCounted(&scratch->servers, assignment_[v], &scratch->grow_events);
  }
  std::sort(scratch->servers.begin(), scratch->servers.end());

  // Run-length encode: records per contacted server.
  scratch->records.clear();
  const std::vector<BucketId>& servers = scratch->servers;
  for (size_t i = 0; i < servers.size();) {
    size_t j = i;
    while (j < servers.size() && servers[j] == servers[i]) ++j;
    PushCounted(&scratch->records, static_cast<uint32_t>(j - i),
                &scratch->grow_events);
    i = j;
  }

  QueryTrace trace;
  trace.fanout = static_cast<uint32_t>(scratch->records.size());
  trace.latency = model_.SampleMultiGetSized(
      scratch->records.data(), trace.fanout, config_.per_record_cost, rng);
  return trace;
}

QueryTrace KvClusterSim::IssueQuery(const BipartiteGraph& graph, VertexId q,
                                    Rng* rng) const {
  MultiGetScratch scratch;
  return IssueQuery(graph, q, rng, &scratch);
}

QueryTrace KvClusterSim::IssueQueryDual(const BipartiteGraph& graph,
                                        VertexId q, Rng* rng,
                                        const DualReadView& view,
                                        MultiGetScratch* scratch) const {
  scratch->servers.clear();
  uint32_t dual_records = 0;
  for (VertexId v : graph.QueryNeighbors(q)) {
    const BucketId primary = assignment_[v];
    const BucketId secondary =
        view.secondary != nullptr ? view.secondary[v] : BucketId{-1};
    // The migration state machine must never leave a record with no home:
    // settled records have a primary, in-flight records have at least the
    // copy target, and a killed primary is only cleared once the restore
    // copy can serve. Anything else is a bug worth crashing on.
    ++scratch->serveability_checks;
    SHP_CHECK(primary >= 0 || secondary >= 0)
        << "record " << v << " serveable from neither assignment";
    if (primary >= 0) {
      PushCounted(&scratch->servers, primary, &scratch->grow_events);
    }
    if (secondary >= 0 && secondary != primary) {
      PushCounted(&scratch->servers, secondary, &scratch->grow_events);
      if (primary >= 0) ++dual_records;
    }
  }
  std::sort(scratch->servers.begin(), scratch->servers.end());

  scratch->distinct.clear();
  scratch->records.clear();
  scratch->surcharges.clear();
  const std::vector<BucketId>& servers = scratch->servers;
  for (size_t i = 0; i < servers.size();) {
    size_t j = i;
    while (j < servers.size() && servers[j] == servers[i]) ++j;
    const BucketId server = servers[i];
    PushCounted(&scratch->distinct, server, &scratch->grow_events);
    PushCounted(&scratch->records, static_cast<uint32_t>(j - i),
                &scratch->grow_events);
    const bool streaming =
        view.copy_streams != nullptr && view.copy_streams[server] > 0;
    PushCounted(&scratch->surcharges, streaming ? view.interference : 0.0,
                &scratch->grow_events);
    i = j;
  }

  QueryTrace trace;
  trace.fanout = static_cast<uint32_t>(scratch->records.size());
  trace.dual_records = dual_records;
  trace.latency = model_.SampleMultiGetSizedSurcharged(
      scratch->records.data(), scratch->surcharges.data(), trace.fanout,
      config_.per_record_cost, rng);
  return trace;
}

}  // namespace shp
