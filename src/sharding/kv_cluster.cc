#include "sharding/kv_cluster.h"

#include <algorithm>

#include "common/logging.h"

namespace shp {

KvClusterSim::KvClusterSim(const KvClusterConfig& config,
                           std::vector<BucketId> assignment)
    : config_(config),
      assignment_(std::move(assignment)),
      model_(config.latency) {
  for (BucketId b : assignment_) {
    SHP_CHECK(b >= 0 && b < static_cast<BucketId>(config.num_servers))
        << "record assigned to nonexistent server";
  }
}

QueryTrace KvClusterSim::IssueQuery(const BipartiteGraph& graph, VertexId q,
                                    Rng* rng) const {
  // Records per contacted server.
  std::vector<BucketId> servers;
  for (VertexId v : graph.QueryNeighbors(q)) {
    servers.push_back(assignment_[v]);
  }
  std::sort(servers.begin(), servers.end());

  std::vector<uint32_t> records;
  for (size_t i = 0; i < servers.size();) {
    size_t j = i;
    while (j < servers.size() && servers[j] == servers[i]) ++j;
    records.push_back(static_cast<uint32_t>(j - i));
    i = j;
  }

  QueryTrace trace;
  trace.fanout = static_cast<uint32_t>(records.size());
  trace.latency = model_.SampleMultiGetSized(
      records.data(), trace.fanout, config_.per_record_cost, rng);
  return trace;
}

}  // namespace shp
