#include "sharding/traffic_replay.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"

namespace shp {

ReplayReport ReplayTraffic(const BipartiteGraph& graph,
                           const KvClusterSim& cluster,
                           const ReplayConfig& config) {
  ReplayReport report;
  if (graph.num_queries() == 0) return report;
  Rng rng(config.seed);

  const uint32_t max_fanout = cluster.config().num_servers + 1;
  std::vector<std::vector<double>> samples(max_fanout + 1);
  double fanout_sum = 0.0;
  double latency_sum = 0.0;

  // One scratch workspace for the whole replay: after Prepare, the hot loop
  // below performs zero per-query heap allocations (grow_events pins it).
  MultiGetScratch scratch;
  scratch.Prepare(graph);

  for (uint64_t r = 0; r < config.num_requests; ++r) {
    // Skewed query popularity: u^(1+skew) concentrates mass near 0.
    const double u = rng.NextDouble();
    const double skewed = std::pow(u, 1.0 + config.popularity_skew);
    const VertexId q = static_cast<VertexId>(
        std::min<uint64_t>(graph.num_queries() - 1,
                           static_cast<uint64_t>(
                               skewed * graph.num_queries())));
    const QueryTrace trace = cluster.IssueQuery(graph, q, &rng, &scratch);
    if (trace.fanout == 0) {
      // Zero-fanout queries (no records) get counted, not silently dropped:
      // they are real issued traffic but contribute no latency sample.
      ++report.empty_queries;
      continue;
    }
    samples[std::min(trace.fanout, max_fanout)].push_back(trace.latency);
    fanout_sum += trace.fanout;
    latency_sum += trace.latency;
  }
  report.scratch_grow_events = scratch.grow_events;

  report.mean_latency_by_fanout.assign(max_fanout + 1, 0.0);
  report.p99_latency_by_fanout.assign(max_fanout + 1, 0.0);
  report.count_by_fanout.assign(max_fanout + 1, 0);
  uint64_t total = 0;
  for (uint32_t f = 1; f <= max_fanout; ++f) {
    auto& bucket = samples[f];
    report.count_by_fanout[f] = bucket.size();
    total += bucket.size();
    if (bucket.empty()) continue;
    double sum = 0.0;
    for (double x : bucket) sum += x;
    report.mean_latency_by_fanout[f] = sum / static_cast<double>(bucket.size());
    // In place: the bucket is never read again, so no reason to copy + sort.
    report.p99_latency_by_fanout[f] = PercentileInPlace(&bucket, 99);
  }
  if (total > 0) {
    report.average_fanout = fanout_sum / static_cast<double>(total);
    report.average_latency = latency_sum / static_cast<double>(total);
  }
  return report;
}

}  // namespace shp
