// Fig. 4a experiment: latency percentiles of synthetic multi-get queries as
// a function of fanout ("we issued trivial remote requests and measured the
// latency of a single request and the latency of several requests sent in
// parallel").
#pragma once

#include <cstdint>
#include <vector>

#include "sharding/latency_model.h"

namespace shp {

struct MultiGetSweepConfig {
  uint32_t max_fanout = 40;
  uint32_t samples_per_fanout = 20000;
  LatencyModelConfig latency;
  uint64_t seed = 101;
};

struct FanoutLatencyRow {
  uint32_t fanout = 0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double mean = 0.0;
};

/// One row per fanout 1..max_fanout, in units of the single-request median.
std::vector<FanoutLatencyRow> RunMultiGetSweep(
    const MultiGetSweepConfig& config);

}  // namespace shp
