// Stochastic single-request latency model for the storage experiments
// (paper §4.2.1 / Fig. 4).
//
// A multi-get query fans out to `fanout` servers in parallel and completes
// when the slowest request returns, so its latency is the maximum of
// `fanout` i.i.d. draws — the "tail at scale" effect (Dean & Barroso 2013,
// cited by the paper) that makes low fanout matter. Service times default to
// a lognormal (median 1·t, heavy right tail), the standard fit for
// memory-backed kv-store request latencies; exponential and Pareto variants
// are provided to show the conclusion is distribution-robust.
#pragma once

#include <cstdint>

#include "common/rng.h"

namespace shp {

enum class LatencyDistribution {
  kLognormal,   ///< exp(μ + σ·N(0,1)); μ fixed so the median is `scale`
  kExponential, ///< scale · Exp(1)
  kPareto,      ///< scale · Pareto(α): heaviest tail
};

struct LatencyModelConfig {
  LatencyDistribution distribution = LatencyDistribution::kLognormal;
  /// Unit latency "t" of Fig. 4 (median single-request latency).
  double scale = 1.0;
  /// Lognormal sigma / Pareto alpha shape parameter. The default σ = 1.0
  /// matches the paper's observed tail: mean multi-get latency roughly
  /// doubles from fanout 10 to fanout 40 (Fig. 4a).
  double shape = 1.0;
  /// Fixed network/dispatch overhead added to every request.
  double overhead = 0.05;
};

class LatencyModel {
 public:
  explicit LatencyModel(const LatencyModelConfig& config) : config_(config) {}

  /// One single-request latency draw.
  double SampleRequest(Rng* rng) const;

  /// Latency of a query contacting `fanout` servers in parallel
  /// (max over draws). fanout = 0 returns 0.
  double SampleMultiGet(uint32_t fanout, Rng* rng) const;

  /// Variant with per-server work sizes: a request fetching `records`
  /// records costs request_latency + records · per_record_cost. This models
  /// the §5 caveat that "the size of a request to a server also plays a
  /// role".
  double SampleMultiGetSized(const uint32_t* records_per_server,
                             uint32_t fanout, double per_record_cost,
                             Rng* rng) const;

  /// Sized variant with an additive per-server surcharge: request i costs
  /// request_latency + records·per_record_cost + surcharge_per_server[i].
  /// The serving loop charges live-migration interference through this —
  /// a server running a copy stream (dual-read cutover in flight) serves
  /// its foreground requests slower, so migration traffic shows up in the
  /// during-migration percentiles instead of being free.
  double SampleMultiGetSizedSurcharged(const uint32_t* records_per_server,
                                       const double* surcharge_per_server,
                                       uint32_t fanout, double per_record_cost,
                                       Rng* rng) const;

 private:
  LatencyModelConfig config_;
};

}  // namespace shp
