#include "sharding/multiget_sim.h"

#include "common/stats.h"

namespace shp {

std::vector<FanoutLatencyRow> RunMultiGetSweep(
    const MultiGetSweepConfig& config) {
  std::vector<FanoutLatencyRow> rows;
  rows.reserve(config.max_fanout);
  const LatencyModel model(config.latency);
  Rng rng(config.seed);
  std::vector<double> samples;
  samples.reserve(config.samples_per_fanout);
  for (uint32_t fanout = 1; fanout <= config.max_fanout; ++fanout) {
    samples.clear();
    RunningStats stats;
    for (uint32_t s = 0; s < config.samples_per_fanout; ++s) {
      const double latency = model.SampleMultiGet(fanout, &rng);
      samples.push_back(latency);
      stats.Add(latency);
    }
    FanoutLatencyRow row;
    row.fanout = fanout;
    row.p50 = Percentile(samples, 50);
    row.p90 = Percentile(samples, 90);
    row.p95 = Percentile(samples, 95);
    row.p99 = Percentile(samples, 99);
    row.mean = stats.mean();
    rows.push_back(row);
  }
  return rows;
}

}  // namespace shp
