#include "sharding/serving_loop.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/stats.h"

namespace shp {

ServingLoop::ServingLoop(const BipartiteGraph& graph,
                         const ServingLoopConfig& config)
    : graph_(graph),
      config_(config),
      partition_(Partition::BalancedRandom(
          graph.num_data(), static_cast<BucketId>(config.cluster.num_servers),
          config.seed)),
      cluster_(config.cluster, partition_.assignment()),
      rng_(config.seed ^ 0x5e21f1c0ffeeULL) {
  SHP_CHECK(config_.cluster.num_servers >= 2) << "need at least two servers";
  refiner_ = config_.refiner_factory
                 ? config_.refiner_factory(graph_, config_.refine)
                 : std::make_unique<Refiner>(graph_, config_.refine);
  target_shadow_ = partition_.assignment();
  secondary_.assign(graph_.num_data(), -1);
  copy_src_.assign(graph_.num_data(), -1);
  queued_.assign(graph_.num_data(), 0);
  active_streams_.assign(config_.cluster.num_servers, 0);
  dead_.assign(config_.cluster.num_servers, 0);
  scratch_.Prepare(graph_);
  refine_seed_ = config_.seed * 0x9e3779b97f4a7c15ULL + 1;
  RebuildTopology();
}

void ServingLoop::RebuildTopology() {
  const BucketId k = static_cast<BucketId>(config_.cluster.num_servers);
  topo_ = MoveTopology::FullK(k, graph_.num_data(), config_.epsilon);
  BucketId alive = 0;
  for (BucketId b = 0; b < k; ++b) {
    if (!dead_[b]) ++alive;
  }
  if (alive == k) return;
  SHP_CHECK(alive > 0) << "every server killed";
  // A dead bucket accepts nothing; the survivors share the whole load, so
  // their cap must be measured against n/k_alive — keeping the original
  // n/k caps would make any balanced assignment over the survivors
  // infeasible.
  const uint64_t live_cap = MoveTopology::BucketCapacity(
      graph_.num_data(), alive, /*leaves=*/1, config_.epsilon);
  for (BucketId b = 0; b < k; ++b) {
    topo_.capacity[b] = dead_[b] ? 0 : live_cap;
  }
}

void ServingLoop::AddStream(BucketId server) {
  if (server >= 0) ++active_streams_[server];
}

void ServingLoop::RemoveStream(BucketId server) {
  if (server >= 0) {
    SHP_DCHECK(active_streams_[server] > 0);
    --active_streams_[server];
  }
}

void ServingLoop::StartMigration(VertexId v, BucketId target) {
  SHP_DCHECK(secondary_[v] < 0);
  secondary_[v] = target;
  copy_src_[v] = cluster_.record_server(v);  // -1 after a kill: restore copy
  AddStream(copy_src_[v]);
  AddStream(target);
  ++pending_migrations_;
  if (!queued_[v]) {
    queued_[v] = 1;
    queue_.push_back(v);
  }
  // else: v still has a stale (cancelled) queue entry — revive it in place
  // so the record is copied once, at its original queue position.
}

void ServingLoop::CancelMigration(VertexId v) {
  if (secondary_[v] < 0) return;
  RemoveStream(copy_src_[v]);
  RemoveStream(secondary_[v]);
  secondary_[v] = -1;
  copy_src_[v] = -1;
  SHP_DCHECK(pending_migrations_ > 0);
  --pending_migrations_;
  // The queue entry stays; AdvanceCopier skips it for free.
}

void ServingLoop::AdvanceCopier(uint32_t budget, EpochReport* epoch) {
  while (budget > 0 && queue_head_ < queue_.size()) {
    const VertexId v = queue_[queue_head_++];
    queued_[v] = 0;
    if (secondary_[v] < 0) continue;  // cancelled while queued: free skip
    const BucketId target = secondary_[v];
    RemoveStream(copy_src_[v]);
    RemoveStream(target);
    // Cutover: the copy landed, the new location takes over and the old
    // (possibly already-dead) one is retired for this record.
    cluster_.SetRecordServer(v, target);
    secondary_[v] = -1;
    copy_src_[v] = -1;
    SHP_DCHECK(pending_migrations_ > 0);
    --pending_migrations_;
    ++epoch->migrated_records;
    epoch->migration_bytes += config_.record_bytes;
    --budget;
  }
  if (queue_head_ == queue_.size()) {
    queue_.clear();
    queue_head_ = 0;
  }
}

void ServingLoop::EnqueueRefinementMoves(EpochReport* epoch) {
  (void)epoch;
  const VertexId n = graph_.num_data();
  for (VertexId v = 0; v < n; ++v) {
    const BucketId target = partition_.bucket_of(v);
    if (target == target_shadow_[v]) continue;
    target_shadow_[v] = target;
    const BucketId primary = cluster_.record_server(v);
    if (target == primary) {
      // Moved back to where it is already served: nothing to copy.
      CancelMigration(v);
      continue;
    }
    if (secondary_[v] >= 0) {
      // In-flight copy retargeted mid-stream: keep the source stream and
      // queue position, swap the destination.
      RemoveStream(secondary_[v]);
      AddStream(target);
      secondary_[v] = target;
      continue;
    }
    StartMigration(v, target);
  }
}

BucketId ServingLoop::LeastLoadedLiveServer() const {
  BucketId best = -1;
  for (BucketId b = 0; b < static_cast<BucketId>(config_.cluster.num_servers);
       ++b) {
    if (dead_[b]) continue;
    if (best < 0 || load_[b] < load_[best]) best = b;
  }
  SHP_CHECK(best >= 0) << "no live server to rehome onto";
  return best;
}

void ServingLoop::ApplyKills(uint64_t epoch, EpochReport* report) {
  bool any = false;
  for (const ServerKillEvent& event : config_.kill_events) {
    if (event.epoch != epoch) continue;
    const BucketId s = event.server;
    SHP_CHECK(s >= 0 && s < static_cast<BucketId>(config_.cluster.num_servers))
        << "kill event names a nonexistent server";
    if (dead_[s]) continue;
    dead_[s] = 1;
    any = true;

    // Effective record load per server (primary, or the copy target while
    // the primary is unassigned) — the rehoming argmin reads this.
    load_.assign(config_.cluster.num_servers, 0);
    const VertexId n = graph_.num_data();
    for (VertexId v = 0; v < n; ++v) {
      const BucketId home = cluster_.record_server(v) >= 0
                                ? cluster_.record_server(v)
                                : secondary_[v];
      if (home >= 0) ++load_[home];
    }

    for (VertexId v = 0; v < n; ++v) {
      if (secondary_[v] == s) {
        // Copy destined for the dead server: abandon it.
        CancelMigration(v);
      }
      const BucketId primary = cluster_.record_server(v);
      if (primary == s) {
        if (secondary_[v] >= 0) {
          // A restore/migration copy to a live server is already in flight;
          // it becomes the record's only home until the cutover lands.
          cluster_.SetRecordServer(v, -1);
          RemoveStream(copy_src_[v]);
          copy_src_[v] = -1;
          --load_[s];
        } else {
          // Emergency rehome: restore-copy the record to the least-loaded
          // live server through the ordinary dual-read machinery (primary
          // unassigned, so the copy target serves alone meanwhile).
          const BucketId r = LeastLoadedLiveServer();
          cluster_.SetRecordServer(v, -1);
          StartMigration(v, r);
          --load_[s];
          ++load_[r];
          ++report->recovered_records;
        }
      } else if (primary < 0 && secondary_[v] < 0) {
        // Both homes lost to kills (primary earlier, copy target just now):
        // restore from scratch.
        const BucketId r = LeastLoadedLiveServer();
        StartMigration(v, r);
        ++load_[r];
        ++report->recovered_records;
      }
      if (partition_.bucket_of(v) == s) {
        // The target partition must vacate the dead bucket too, or the
        // refiner would keep records homed there.
        const BucketId home =
            secondary_[v] >= 0 ? secondary_[v] : cluster_.record_server(v);
        SHP_CHECK(home >= 0) << "record left without a live target";
        partition_.Move(v, home);
        target_shadow_[v] = home;
      }
    }
  }
  if (any) RebuildTopology();
}

VertexId ServingLoop::SampleQuery(uint64_t epoch) {
  const uint64_t nq = static_cast<uint64_t>(graph_.num_queries());
  auto powerlaw = [&]() {
    // Skewed query popularity: u^(1+skew) concentrates mass near 0.
    const double u = rng_.NextDouble();
    const double skewed = std::pow(u, 1.0 + config_.popularity_skew);
    return std::min<uint64_t>(nq - 1, static_cast<uint64_t>(skewed * nq));
  };
  switch (config_.scenario) {
    case TrafficScenario::kPowerLaw:
      return static_cast<VertexId>(powerlaw());
    case TrafficScenario::kHotKey: {
      if (rng_.NextBernoulli(config_.hot_mass)) {
        // Hot set scattered across the id space (stride apart) so it is not
        // the same set the power-law tail already favors.
        const uint64_t hot_count = std::max<uint64_t>(
            1, static_cast<uint64_t>(config_.hot_fraction * nq));
        const uint64_t stride = std::max<uint64_t>(1, nq / hot_count);
        return static_cast<VertexId>((rng_.NextBounded(hot_count) * stride) %
                                     nq);
      }
      return static_cast<VertexId>(powerlaw());
    }
    case TrafficScenario::kDiurnal: {
      // The popularity center rotates by nq / phases each epoch — the
      // workload the partition was trained on drifts away underneath it.
      const uint64_t phases = std::max<uint64_t>(1, config_.diurnal_phases);
      const uint64_t shift = (epoch % phases) * (nq / phases);
      return static_cast<VertexId>((powerlaw() + shift) % nq);
    }
  }
  return 0;
}

PhaseStats ServingLoop::ReplayPhase(uint64_t min_requests, bool advance_copier,
                                    uint64_t epoch, EpochReport* report) {
  PhaseStats stats;
  if (graph_.num_queries() == 0) return stats;
  DualReadView view;
  view.secondary = secondary_.data();
  view.copy_streams = active_streams_.data();
  view.interference = config_.migration_interference;

  latencies_.clear();
  double latency_sum = 0.0;
  double fanout_sum = 0.0;
  // The during phase runs past min_requests until the copy queue drains, so
  // every epoch ends settled and the `after` phase measures the steady
  // state. Termination: each extra request copies ≥ 1 pending record.
  for (uint64_t r = 0;
       r < min_requests || (advance_copier && pending_migrations_ > 0); ++r) {
    const VertexId q = SampleQuery(epoch);
    const QueryTrace trace =
        cluster_.IssueQueryDual(graph_, q, &rng_, view, &scratch_);
    if (trace.fanout == 0) {
      ++stats.empty;
    } else {
      ++stats.served;
      latencies_.push_back(trace.latency);
      latency_sum += trace.latency;
      fanout_sum += trace.fanout;
      if (trace.dual_records > 0) ++stats.dual_read_queries;
    }
    if (advance_copier) {
      AdvanceCopier(config_.copy_records_per_request, report);
    }
  }
  if (stats.served > 0) {
    stats.p50 = PercentileInPlace(&latencies_, 50);
    stats.p99 = PercentileInPlace(&latencies_, 99);
    stats.mean = latency_sum / static_cast<double>(stats.served);
    stats.average_fanout = fanout_sum / static_cast<double>(stats.served);
  }
  return stats;
}

ServingReport ServingLoop::Run() {
  SHP_CHECK(config_.num_epochs > 0) << "serving loop needs at least one epoch";
  ServingReport report;
  for (uint64_t epoch = 0; epoch < config_.num_epochs; ++epoch) {
    EpochReport er;
    ApplyKills(epoch, &er);
    er.before = ReplayPhase(config_.requests_per_phase, /*advance_copier=*/
                            false, epoch, &er);

    // Bounded-budget refinement: each iteration gets the *remaining* epoch
    // budget, so however moves distribute across iterations the epoch total
    // stays within bounds.
    const uint64_t budget = config_.move_budget_per_epoch;
    uint64_t remaining = budget;
    for (uint64_t it = 0; it < config_.iterations_per_epoch; ++it) {
      refiner_->SetMoveBudget(budget == 0 ? 0 : remaining);
      const IterationStats stats = refiner_->RunIteration(
          topo_, &partition_, refine_seed_, iteration_counter_++);
      er.executed_moves += stats.num_moved;
      ++er.refine_iterations;
      EnqueueRefinementMoves(&er);
      if (budget != 0) {
        SHP_CHECK(stats.num_moved <= remaining)
            << "refiner exceeded the epoch move budget";
        remaining -= stats.num_moved;
        if (remaining == 0) break;
      }
    }
    SHP_CHECK(budget == 0 || er.executed_moves <= budget)
        << "epoch executed more moves than budgeted";

    er.during_migration =
        ReplayPhase(config_.requests_per_phase, /*advance_copier=*/true,
                    epoch, &er);
    SHP_CHECK(pending_migrations_ == 0) << "epoch ended with copies in flight";
    er.after = ReplayPhase(config_.requests_per_phase, /*advance_copier=*/
                           false, epoch, &er);

    // Settled invariant: once the queue drained, serving and target agree.
    for (VertexId v = 0; v < graph_.num_data(); ++v) {
      SHP_DCHECK(cluster_.record_server(v) == partition_.bucket_of(v));
    }
    report.epochs.push_back(er);
  }

  report.p99_start = report.epochs.front().before.p99;
  report.p99_end = report.epochs.back().after.p99;
  for (const EpochReport& er : report.epochs) {
    report.p99_during_worst =
        std::max(report.p99_during_worst, er.during_migration.p99);
    report.total_moves += er.executed_moves;
    report.total_migrated_records += er.migrated_records;
    report.total_migration_bytes += er.migration_bytes;
    report.total_recovered_records += er.recovered_records;
    report.total_dual_read_queries += er.before.dual_read_queries +
                                      er.during_migration.dual_read_queries +
                                      er.after.dual_read_queries;
  }
  report.serveability_checks = scratch_.serveability_checks;
  report.scratch_grow_events = scratch_.grow_events;
  report.final_assignment = cluster_.assignment();
  return report;
}

}  // namespace shp
