// Fig. 4b experiment substrate: a simulated memory-backed key-value cluster
// ("40 servers storing a subset of the Facebook friendship graph ... one
// data record per user") serving multi-get queries under a given sharding.
//
// Each query's requests go to the distinct servers holding its records;
// a request's service time is a stochastic draw plus a per-record cost, so
// concentrating a query's records on few servers both lowers fanout and
// grows the largest request — the trade-off §5 discusses.
//
// The cluster also supports the serving loop's live-migration view
// (sharding/serving_loop.h): a record may have a secondary location while
// its copy is in flight (dual-read — both locations are contacted until the
// cutover), the primary may be transiently unassigned after a server kill
// (the restore copy then serves alone), and servers running copy streams
// charge a latency surcharge to foreground requests.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.h"
#include "objective/neighbor_data.h"
#include "sharding/latency_model.h"

namespace shp {

struct KvClusterConfig {
  uint32_t num_servers = 40;
  LatencyModelConfig latency;
  /// Added service time per record fetched from one server.
  double per_record_cost = 0.02;
  uint64_t seed = 202;
};

/// Result of replaying one query.
struct QueryTrace {
  uint32_t fanout = 0;
  double latency = 0.0;
  /// Records read from two locations this query (dual-read path only) —
  /// the per-query migration tax the serving loop aggregates.
  uint32_t dual_records = 0;
};

/// Reusable per-caller (or per-thread) workspace for IssueQuery. The replay
/// hot path issues millions of queries; without this every query
/// heap-allocated two vectors. Prepare() reserves for the worst case up
/// front, after which steady-state replay performs zero per-query
/// allocations — grow_events counts any capacity growth past Prepare (the
/// regression tests pin it at 0).
struct MultiGetScratch {
  std::vector<BucketId> servers;        ///< one entry per record location
  std::vector<BucketId> distinct;       ///< deduplicated contacted servers
  std::vector<uint32_t> records;        ///< records per contacted server
  std::vector<double> surcharges;       ///< per contacted server (dual path)
  uint64_t grow_events = 0;             ///< capacity growths since Prepare
  uint64_t serveability_checks = 0;     ///< dual-read neither-location checks

  /// Reserves for the worst query of `graph`: a dual-read can contact two
  /// locations per record, so capacity is 2 × max query degree.
  void Prepare(const BipartiteGraph& graph);
};

/// Per-record migration overlay for IssueQueryDual, owned by the serving
/// loop; the cluster only reads it.
struct DualReadView {
  /// Secondary server per record (-1 = settled, serve the primary alone).
  /// Must outlive the call; size = num records.
  const BucketId* secondary = nullptr;
  /// Active copy streams per server (nullable = no interference modeled):
  /// any server with a nonzero count adds `interference` to its requests.
  const int32_t* copy_streams = nullptr;
  /// Latency surcharge per request to a server with an active copy stream.
  double interference = 0.0;
};

class KvClusterSim {
 public:
  /// `assignment` maps each data record (data vertex) to a server; values
  /// must be < config.num_servers.
  KvClusterSim(const KvClusterConfig& config,
               std::vector<BucketId> assignment);

  /// Replays query q of `graph`: one request per distinct server holding
  /// q's records. The scratch overload is the hot path (no allocations
  /// once prepared); the two-vector convenience overload allocates.
  QueryTrace IssueQuery(const BipartiteGraph& graph, VertexId q, Rng* rng,
                        MultiGetScratch* scratch) const;
  QueryTrace IssueQuery(const BipartiteGraph& graph, VertexId q,
                        Rng* rng) const;

  /// Dual-read replay under live migration: each record is served from its
  /// primary (this cluster's assignment) and/or its secondary (the view) —
  /// both are contacted while a copy is in flight. Checked invariant: a
  /// record with neither a valid primary nor a valid secondary is a
  /// migration state-machine bug and aborts (SHP_CHECK), never a silent
  /// wrong answer; every check is counted into scratch->serveability_checks.
  QueryTrace IssueQueryDual(const BipartiteGraph& graph, VertexId q, Rng* rng,
                            const DualReadView& view,
                            MultiGetScratch* scratch) const;

  /// Re-homes one record (the serving loop's cutover / kill-purge edit).
  /// -1 marks the primary unassigned — legal only while a DualReadView
  /// supplies a valid secondary for the record.
  void SetRecordServer(VertexId v, BucketId server);
  BucketId record_server(VertexId v) const { return assignment_[v]; }

  const KvClusterConfig& config() const { return config_; }
  const std::vector<BucketId>& assignment() const { return assignment_; }

 private:
  KvClusterConfig config_;
  std::vector<BucketId> assignment_;
  LatencyModel model_;
};

}  // namespace shp
