// Fig. 4b experiment substrate: a simulated memory-backed key-value cluster
// ("40 servers storing a subset of the Facebook friendship graph ... one
// data record per user") serving multi-get queries under a given sharding.
//
// Each query's requests go to the distinct servers holding its records;
// a request's service time is a stochastic draw plus a per-record cost, so
// concentrating a query's records on few servers both lowers fanout and
// grows the largest request — the trade-off §5 discusses.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.h"
#include "objective/neighbor_data.h"
#include "sharding/latency_model.h"

namespace shp {

struct KvClusterConfig {
  uint32_t num_servers = 40;
  LatencyModelConfig latency;
  /// Added service time per record fetched from one server.
  double per_record_cost = 0.02;
  uint64_t seed = 202;
};

/// Result of replaying one query.
struct QueryTrace {
  uint32_t fanout = 0;
  double latency = 0.0;
};

class KvClusterSim {
 public:
  /// `assignment` maps each data record (data vertex) to a server; values
  /// must be < config.num_servers.
  KvClusterSim(const KvClusterConfig& config,
               std::vector<BucketId> assignment);

  /// Replays query q of `graph`: one request per distinct server holding
  /// q's records.
  QueryTrace IssueQuery(const BipartiteGraph& graph, VertexId q, Rng* rng) const;

  const KvClusterConfig& config() const { return config_; }

 private:
  KvClusterConfig config_;
  std::vector<BucketId> assignment_;
  LatencyModel model_;
};

}  // namespace shp
