// Online repartitioning under live traffic (paper §5(i), "Incremental
// partitioning ... the new assignment should be close to the original one,
// since changing a bucket causes data migration in the storage system").
//
// The serving loop closes the gap between the partitioner benchmarks
// (optimize a static assignment, then measure) and what §5 actually calls
// for: a cluster that keeps serving multiget traffic *while* the assignment
// improves. Each epoch:
//
//   1. `before` phase — replay traffic against the current serving
//      assignment and snapshot p50/p99/mean fanout-latency.
//   2. refine — run Algorithm 1 iterations against the *target* partition,
//      with the refiner's executed moves capped by the epoch's move budget
//      (RefinerInterface::SetMoveBudget). Every net move becomes a record
//      migration: the record enters a dual-read window where both its old
//      (serving) and new (target) location are contacted, a background
//      copier streams it over at a bounded records-per-request rate, and
//      the per-record cutover retires the old location once the copy lands.
//      Servers running copy streams charge an interference surcharge to
//      foreground requests, so migration cost is visible in the latency
//      percentiles, and every copied byte is accounted (migration_bytes).
//   3. `during` phase — replay while the copier drains; runs until the
//      migration queue is empty, so an epoch always ends settled.
//   4. `after` phase — replay against the settled new assignment.
//
// Traffic scenarios: power-law skew (the Fig. 4b replay), hot-key (a small
// hot set absorbing a fixed mass), and diurnal shift (the popularity center
// rotates across epochs — the §5 case where yesterday's partition degrades
// and a bounded-budget repartition recovers it). A worker-kill scenario
// reuses the PR 7 fault semantics at serving level: a killed server's
// records are emergency-rehomed to the least-loaded live servers (restore
// copies ride the same dual-read machinery with the primary transiently
// unassigned) and the killed bucket's capacity drops to zero so refinement
// never routes records back to it.
//
// Checked invariants, enforced every query / epoch:
//   * a record is always serveable from at least one assignment
//     (KvClusterSim::IssueQueryDual aborts otherwise),
//   * executed moves per epoch never exceed the configured budget,
//   * the serving assignment equals the target partition at epoch end.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/refiner.h"
#include "sharding/kv_cluster.h"

namespace shp {

enum class TrafficScenario {
  kPowerLaw,  ///< static skew: q ∝ u^(1+skew) toward low ids
  kHotKey,    ///< hot set of hot_fraction·nq queries absorbs hot_mass
  kDiurnal,   ///< power-law whose center rotates by nq/diurnal_phases per epoch
};

/// Kill server `server` at the start of epoch `epoch` (before the `before`
/// phase), triggering emergency rehoming of its records.
struct ServerKillEvent {
  uint64_t epoch = 0;
  BucketId server = 0;
};

struct ServingLoopConfig {
  uint64_t num_epochs = 4;
  /// Queries replayed in the before / after phases (the during phase runs
  /// at least this long, extended until the migration queue drains).
  uint64_t requests_per_phase = 20000;
  /// Max executed (post-repair) refinement moves per epoch; 0 = unlimited.
  /// The §5(i) stability knob — bounds migration volume per epoch.
  uint64_t move_budget_per_epoch = 0;
  /// Refinement iterations attempted per epoch (stops early once the
  /// epoch's budget is exhausted).
  uint64_t iterations_per_epoch = 4;
  /// Balance slack for the move topology.
  double epsilon = 0.05;
  /// Cluster shape + latency model; cluster.num_servers is the partition k.
  KvClusterConfig cluster;
  RefinerOptions refine;
  /// Optional engine override (e.g. a BspRefiner factory); defaults to the
  /// threaded in-memory Refiner.
  RefinerFactory refiner_factory;

  TrafficScenario scenario = TrafficScenario::kPowerLaw;
  double popularity_skew = 0.8;
  /// kHotKey: fraction of queries forming the hot set, and the probability
  /// mass the hot set absorbs.
  double hot_fraction = 0.01;
  double hot_mass = 0.5;
  /// kDiurnal: epochs per full rotation of the popularity center.
  uint64_t diurnal_phases = 4;

  /// Copier rate: records copied over per replayed during-phase query.
  uint32_t copy_records_per_request = 4;
  /// Size of one record on the wire (migration_bytes accounting).
  uint64_t record_bytes = 512;
  /// Latency surcharge on every request to a server with ≥ 1 active copy
  /// stream (KvClusterSim dual-read interference).
  double migration_interference = 0.25;

  std::vector<ServerKillEvent> kill_events;
  uint64_t seed = 404;
};

/// Latency snapshot of one replay phase.
struct PhaseStats {
  uint64_t served = 0;            ///< queries with fanout ≥ 1
  uint64_t empty = 0;             ///< zero-fanout queries (counted, not dropped)
  uint64_t dual_read_queries = 0; ///< queries that touched a migrating record
  double p50 = 0.0;
  double p99 = 0.0;
  double mean = 0.0;
  double average_fanout = 0.0;
};

struct EpochReport {
  PhaseStats before;
  PhaseStats during_migration;
  PhaseStats after;
  /// Executed refinement moves this epoch (tests assert ≤ budget).
  uint64_t executed_moves = 0;
  uint64_t refine_iterations = 0;
  uint64_t migrated_records = 0;
  uint64_t migration_bytes = 0;
  /// Records emergency-rehomed off a killed server this epoch.
  uint64_t recovered_records = 0;
};

struct ServingReport {
  std::vector<EpochReport> epochs;
  /// Whole-run aggregates: first epoch's before phase vs last epoch's after
  /// phase, and the worst during-migration p99 across epochs.
  double p99_start = 0.0;
  double p99_during_worst = 0.0;
  double p99_end = 0.0;
  uint64_t total_moves = 0;
  uint64_t total_migrated_records = 0;
  uint64_t total_migration_bytes = 0;
  uint64_t total_recovered_records = 0;
  uint64_t total_dual_read_queries = 0;
  /// Dual-read serveability checks performed (every record of every query
  /// in every phase) — all passed, or the run would have aborted.
  uint64_t serveability_checks = 0;
  /// Scratch growths across all replay phases (0 = the zero-allocation
  /// steady-state guarantee held).
  uint64_t scratch_grow_events = 0;
  /// Final serving assignment (== final target partition).
  std::vector<BucketId> final_assignment;
};

/// Drives the epoch loop described in the file comment. The graph must
/// outlive the loop.
class ServingLoop {
 public:
  ServingLoop(const BipartiteGraph& graph, const ServingLoopConfig& config);

  /// Runs all epochs and returns the full report. Call once.
  ServingReport Run();

  /// Records still queued for migration (0 outside Run / at epoch ends).
  uint64_t pending_migrations() const { return pending_migrations_; }

 private:
  // ---- migration state machine (see docs/serving.md) ----
  void StartMigration(VertexId v, BucketId target);
  void CancelMigration(VertexId v);
  /// Copies up to `budget` queued records (cutover on landing); stale
  /// cancelled queue entries are skipped for free.
  void AdvanceCopier(uint32_t budget, EpochReport* epoch);
  void AddStream(BucketId server);
  void RemoveStream(BucketId server);

  /// Diffs the target partition against the last-seen shadow and turns
  /// every net move into a migration (or cancel / retarget).
  void EnqueueRefinementMoves(EpochReport* epoch);

  /// Applies kill events scheduled for `epoch`: emergency-rehomes the dead
  /// server's records and zeroes its capacity in the move topology.
  void ApplyKills(uint64_t epoch, EpochReport* report);

  /// Samples one query id for the scenario at `epoch`.
  VertexId SampleQuery(uint64_t epoch);

  PhaseStats ReplayPhase(uint64_t min_requests, bool advance_copier,
                         uint64_t epoch, EpochReport* report);

  BucketId LeastLoadedLiveServer() const;
  void RebuildTopology();

  const BipartiteGraph& graph_;
  ServingLoopConfig config_;
  Partition partition_;            ///< target assignment the refiner drives
  KvClusterSim cluster_;           ///< serving state (primaries)
  std::unique_ptr<RefinerInterface> refiner_;
  MoveTopology topo_;
  Rng rng_;

  std::vector<BucketId> target_shadow_;  ///< partition as of last diff
  std::vector<BucketId> secondary_;      ///< copy target per record (-1 none)
  std::vector<BucketId> copy_src_;       ///< copy source per record (-1 none)
  std::vector<uint8_t> queued_;          ///< record has a queue entry
  std::vector<VertexId> queue_;          ///< FIFO copy queue
  size_t queue_head_ = 0;
  uint64_t pending_migrations_ = 0;      ///< live (non-cancelled) entries
  std::vector<int32_t> active_streams_;  ///< copy streams per server
  std::vector<uint8_t> dead_;            ///< killed servers
  std::vector<uint64_t> load_;           ///< rehoming scratch (ApplyKills)
  MultiGetScratch scratch_;
  std::vector<double> latencies_;        ///< per-phase sample buffer
  uint64_t refine_seed_ = 0;
  uint64_t iteration_counter_ = 0;
};

}  // namespace shp
