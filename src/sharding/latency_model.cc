#include "sharding/latency_model.h"

#include <algorithm>
#include <cmath>

namespace shp {

double LatencyModel::SampleRequest(Rng* rng) const {
  double draw = 0.0;
  switch (config_.distribution) {
    case LatencyDistribution::kLognormal:
      draw = config_.scale * std::exp(config_.shape * rng->NextGaussian());
      break;
    case LatencyDistribution::kExponential:
      draw = config_.scale * rng->NextExponential();
      break;
    case LatencyDistribution::kPareto: {
      // Inverse CDF of Pareto with x_min = scale, alpha = shape.
      double u;
      do {
        u = rng->NextDouble();
      } while (u <= 0.0);
      draw = config_.scale * std::pow(u, -1.0 / std::max(config_.shape, 0.1));
      break;
    }
  }
  return config_.overhead + draw;
}

double LatencyModel::SampleMultiGet(uint32_t fanout, Rng* rng) const {
  double worst = 0.0;
  for (uint32_t i = 0; i < fanout; ++i) {
    worst = std::max(worst, SampleRequest(rng));
  }
  return worst;
}

double LatencyModel::SampleMultiGetSized(const uint32_t* records_per_server,
                                         uint32_t fanout,
                                         double per_record_cost,
                                         Rng* rng) const {
  double worst = 0.0;
  for (uint32_t i = 0; i < fanout; ++i) {
    const double latency =
        SampleRequest(rng) + records_per_server[i] * per_record_cost;
    worst = std::max(worst, latency);
  }
  return worst;
}

double LatencyModel::SampleMultiGetSizedSurcharged(
    const uint32_t* records_per_server, const double* surcharge_per_server,
    uint32_t fanout, double per_record_cost, Rng* rng) const {
  double worst = 0.0;
  for (uint32_t i = 0; i < fanout; ++i) {
    const double latency = SampleRequest(rng) +
                           records_per_server[i] * per_record_cost +
                           surcharge_per_server[i];
    worst = std::max(worst, latency);
  }
  return worst;
}

}  // namespace shp
