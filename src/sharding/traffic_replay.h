// Traffic replay harness: issues a sampled query workload against a
// KvClusterSim and aggregates latency per observed fanout — reproducing the
// Fig. 4b methodology ("we sample a live traffic pattern, and issued the
// same set of queries, while measuring fanout and latency of each query").
#pragma once

#include <cstdint>
#include <vector>

#include "sharding/kv_cluster.h"

namespace shp {

struct ReplayConfig {
  /// Number of query issues (queries are sampled with replacement,
  /// weighted toward low ids to imitate hot-user skew).
  uint64_t num_requests = 200000;
  /// Zipf-ish skew exponent for query popularity (0 = uniform).
  double popularity_skew = 0.8;
  uint64_t seed = 303;
};

struct ReplayReport {
  /// Average latency / sample count indexed by fanout (index 0 unused).
  std::vector<double> mean_latency_by_fanout;
  std::vector<double> p99_latency_by_fanout;
  std::vector<uint64_t> count_by_fanout;
  /// Issued queries that touched zero servers (isolated query vertices).
  /// They are excluded from every latency statistic — the denominator of
  /// average_fanout / average_latency is served queries only, i.e.
  /// Σ count_by_fanout == num_requests − empty_queries.
  uint64_t empty_queries = 0;
  /// Scratch-capacity growths observed during the replay. 0 in steady state;
  /// nonzero means the per-query zero-allocation guarantee regressed.
  uint64_t scratch_grow_events = 0;
  double average_fanout = 0.0;
  double average_latency = 0.0;
};

ReplayReport ReplayTraffic(const BipartiteGraph& graph,
                           const KvClusterSim& cluster,
                           const ReplayConfig& config);

}  // namespace shp
