#include "core/refiner.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace shp {

Refiner::Refiner(const BipartiteGraph& graph, const RefinerOptions& options)
    : graph_(graph),
      options_(options),
      gain_(options.p, static_cast<uint32_t>(graph.MaxQueryDegree()),
            options.future_splits),
      broker_(options.broker) {}

IterationStats Refiner::RunIteration(const MoveTopology& topo,
                                     Partition* partition, uint64_t seed,
                                     uint64_t iteration, ThreadPool* pool,
                                     const std::vector<BucketId>* anchor,
                                     double anchor_penalty) {
  SHP_CHECK_EQ(partition->num_data(), graph_.num_data());
  if (pool == nullptr) pool = &GlobalThreadPool();
  const VertexId n = graph_.num_data();

  // Supersteps 1-2: collect neighbor data, compute move gains.
  ndata_.Build(graph_, partition->assignment(), pool);
  targets_.assign(n, -1);
  gains_.assign(n, 0.0);

  pool->ParallelFor(n, [&](size_t begin, size_t end, size_t) {
    // Per-chunk scratch for the k-way affinity scan.
    std::vector<double> affinity;
    std::vector<BucketId> touched;
    if (topo.full_k) {
      affinity.assign(static_cast<size_t>(topo.k), 0.0);
    }
    for (size_t vi = begin; vi < end; ++vi) {
      const VertexId v = static_cast<VertexId>(vi);
      if (graph_.DataDegree(v) == 0) continue;  // isolated: nothing to gain
      const BucketId from = partition->bucket_of(v);
      const int32_t group = topo.group_of_bucket[static_cast<size_t>(from)];
      if (group < 0) continue;  // bucket not refined at this level

      BucketId best_target = -1;
      double best_gain = 0.0;
      if (topo.full_k) {
        if (options_.exploration_probability > 0.0 &&
            HashToUnitDouble(seed ^ 0xe791, iteration * 0x10001 + 1, v) <
                options_.exploration_probability) {
          // Exploration proposal: random target with its true gain.
          const BucketId candidate = static_cast<BucketId>(HashToBounded(
              seed ^ 0x77aa, iteration, v, static_cast<uint64_t>(topo.k)));
          if (candidate != from) {
            best_target = candidate;
            best_gain = gain_.MoveGain(graph_, ndata_, v, from, candidate);
          }
        }
        if (best_target < 0) {
          auto best = gain_.FindBestTarget(graph_, ndata_, v, from, 0,
                                           topo.k, &affinity, &touched);
          best_target = best.bucket;
          best_gain = best.gain;
        }
      } else {
        const auto& children =
            topo.group_children[static_cast<size_t>(group)];
        bool first = true;
        for (BucketId candidate : children) {
          if (candidate == from) continue;
          const double g = gain_.MoveGain(graph_, ndata_, v, from, candidate);
          if (first || g > best_gain) {
            best_gain = g;
            best_target = candidate;
            first = false;
          }
        }
      }
      if (best_target < 0) continue;

      // Incremental-update penalty (paper §5(i)).
      if (anchor != nullptr && anchor_penalty != 0.0) {
        const BucketId home = (*anchor)[v];
        if (from == home && best_target != home) best_gain -= anchor_penalty;
        if (from != home && best_target == home) best_gain += anchor_penalty;
      }

      if (!options_.propose_nonpositive && best_gain <= 0.0) continue;
      targets_[v] = best_target;
      gains_[v] = best_gain;
    }
  });

  // Supersteps 3-4: master aggregation, probabilistic moves, repair.
  const MoveOutcome outcome =
      broker_.Apply(topo, targets_, gains_, seed, iteration, partition, pool);

  IterationStats stats;
  stats.num_proposals = outcome.num_proposals;
  stats.num_moved = outcome.num_moved;
  stats.num_reverted = outcome.num_reverted;
  stats.gain_moved = outcome.gain_moved;
  stats.moved_fraction =
      n == 0 ? 0.0
             : static_cast<double>(outcome.num_moved) / static_cast<double>(n);
  return stats;
}

}  // namespace shp
