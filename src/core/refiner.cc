#include "core/refiner.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace shp {

Refiner::Refiner(const BipartiteGraph& graph, const RefinerOptions& options)
    : graph_(graph),
      options_(options),
      gain_(options.p, static_cast<uint32_t>(graph.MaxQueryDegree()),
            options.future_splits),
      broker_(options.broker) {}

Refiner::Proposal Refiner::ComputeProposal(
    const MoveTopology& topo, const Partition& partition, VertexId v,
    BucketId explore_target, bool push, const std::vector<BucketId>* anchor,
    double anchor_penalty, Workspace* ws, bool* cacheable) const {
  *cacheable = true;
  const double degree = static_cast<double>(graph_.DataDegree(v));
  if (degree == 0.0) return {};  // isolated: nothing to gain
  const BucketId from = partition.bucket_of(v);
  const int32_t group = topo.group_of_bucket[static_cast<size_t>(from)];
  if (group < 0) return {};  // bucket not refined at this level

  BucketId best_target = -1;
  double best_gain = 0.0;
  if (topo.full_k) {
    if (explore_target >= 0 && explore_target != from) {
      // Exploration proposal: random target with its true gain. Depends on
      // the iteration draw, so it must never be served from the cache.
      best_target = explore_target;
      best_gain = push ? gain_.MoveGainPush(sweep_, v, from, explore_target,
                                            degree)
                       : gain_.MoveGain(graph_, ndata_, v, from,
                                        explore_target);
      *cacheable = false;
    }
    if (best_target < 0) {
      const auto best =
          push ? gain_.FindBestTargetPush(sweep_, v, from, 0, topo.k, degree)
               : gain_.FindBestTarget(graph_, ndata_, v, from, 0, topo.k,
                                      &ws->affinity, &ws->touched);
      best_target = best.bucket;
      best_gain = best.gain;
    }
  } else {
    const auto& children = topo.group_children[static_cast<size_t>(group)];
    if (push) {
      // Group-restricted push scan: one pass over the accumulator window
      // spanning the siblings (a re-slice of the same topology-free
      // accumulators the full-k scan reads — recursion windows never
      // rebuild them).
      const auto best = gain_.FindBestTargetPushGrouped(
          sweep_, v, from, std::span<const BucketId>(children), degree);
      best_target = best.bucket;
      best_gain = best.gain;
    } else {
      bool first = true;
      for (BucketId candidate : children) {
        if (candidate == from) continue;
        const double g = gain_.MoveGain(graph_, ndata_, v, from, candidate);
        if (first || g > best_gain) {
          best_gain = g;
          best_target = candidate;
          first = false;
        }
      }
    }
  }
  if (best_target < 0) return {};

  // Incremental-update penalty (paper §5(i)).
  if (anchor != nullptr && anchor_penalty != 0.0) {
    const BucketId home = (*anchor)[v];
    if (from == home && best_target != home) best_gain -= anchor_penalty;
    if (from != home && best_target == home) best_gain += anchor_penalty;
  }

  if (!options_.propose_nonpositive && best_gain <= 0.0) return {};
  return {best_target, best_gain};
}

bool Refiner::ContextMatches(const MoveTopology& topo,
                             const std::vector<BucketId>* anchor,
                             double anchor_penalty) const {
  if (!has_cached_topo_) return false;
  if (cached_topo_.k != topo.k || cached_topo_.full_k != topo.full_k ||
      cached_topo_.group_of_bucket != topo.group_of_bucket ||
      cached_topo_.group_children != topo.group_children) {
    return false;
  }
  // Capacity is a broker concern; proposals do not depend on it.
  const bool has_anchor = anchor != nullptr && anchor_penalty != 0.0;
  if (has_anchor != cached_has_anchor_) return false;
  if (has_anchor && (cached_anchor_penalty_ != anchor_penalty ||
                     cached_anchor_ != *anchor)) {
    return false;
  }
  return true;
}

void Refiner::SnapshotContext(const MoveTopology& topo,
                              const std::vector<BucketId>* anchor,
                              double anchor_penalty) {
  cached_topo_ = topo;
  has_cached_topo_ = true;
  cached_has_anchor_ = anchor != nullptr && anchor_penalty != 0.0;
  cached_anchor_ = cached_has_anchor_ ? *anchor : std::vector<BucketId>{};
  cached_anchor_penalty_ = cached_has_anchor_ ? anchor_penalty : 0.0;
}

IterationStats Refiner::RunIteration(const MoveTopology& topo,
                                     Partition* partition, uint64_t seed,
                                     uint64_t iteration, ThreadPool* pool,
                                     const std::vector<BucketId>* anchor,
                                     double anchor_penalty) {
  SHP_CHECK_EQ(partition->num_data(), graph_.num_data());
  if (pool == nullptr) pool = &GlobalThreadPool();
  const VertexId n = graph_.num_data();
  IterationStats stats;

  // Superstep-2 scan direction for this iteration: push needs a nonzero pow
  // base (the accumulator-derived base term divides by B); kAuto prefers
  // push whenever available, and an explicit kPush request degrades to pull
  // in the p = 1, t = 1 limit. Grouped recursion windows run the same push
  // scan over the group-restricted accumulator view — the accumulators are
  // topology-free, so a recursion-level change re-slices, never rebuilds.
  const bool push =
      options_.sweep_mode != RefinerOptions::SweepMode::kPull &&
      gain_.SupportsPush();
  stats.push_sweep = push;

  // Superstep 1: collect neighbor data — reused across iterations whenever
  // it provably reflects the current assignment (the shadow copy is the
  // proof; callers that hand in a different partition trigger a rebuild).
  const bool ndata_reusable = options_.incremental && ndata_valid_ &&
                              shadow_assignment_ == partition->assignment();
  if (!ndata_reusable) {
    ndata_.Build(graph_, partition->assignment(), pool);
    shadow_assignment_ = partition->assignment();
    ndata_valid_ = true;
    proposals_valid_ = false;
    sweep_valid_ = false;
    ++num_full_rebuilds_;
    stats.full_rebuild = true;
  }
  if (push && !sweep_valid_) {
    // Full query-major pass: stream the arena once, scattering each query's
    // per-bucket contributions to all its data neighbors.
    sweep_.Build(graph_, ndata_, gain_.pow_table(), pool);
    sweep_valid_ = true;
    ++num_sweep_builds_;
  }

  // Exploration draw. Preselected mode draws ≈ n·prob firing vertices up
  // front (a compact list, so the steady-state pass never hashes the other
  // vertices); legacy mode evaluates the Bernoulli hash per vertex inside
  // the O(n) pass below.
  const bool explore = topo.full_k && options_.exploration_probability > 0.0;
  const bool preselect = explore && options_.preselect_exploration;
  firing_list_.clear();
  if (preselect) {
    if (explore_target_.size() < n) explore_target_.assign(n, -1);
    const uint64_t draws = static_cast<uint64_t>(
        static_cast<double>(n) * options_.exploration_probability + 0.5);
    for (uint64_t i = 0; i < draws; ++i) {
      // Sampling with replacement over hashed indices; duplicates collapse,
      // so the firing count is ≤ draws (statistically indistinguishable from
      // the Bernoulli draw at these rates).
      const VertexId v = static_cast<VertexId>(
          HashToBounded(seed ^ 0xe791, iteration * 0x10001 + 1, i, n));
      if (explore_target_[v] != -1) continue;
      explore_target_[v] = static_cast<BucketId>(HashToBounded(
          seed ^ 0x77aa, iteration, v, static_cast<uint64_t>(topo.k)));
      firing_list_.push_back(v);
    }
  }
  const auto explore_target_for = [&](VertexId v) -> BucketId {
    if (!explore) return -1;
    if (preselect) return explore_target_[v];
    if (HashToUnitDouble(seed ^ 0xe791, iteration * 0x10001 + 1, v) <
        options_.exploration_probability) {
      return static_cast<BucketId>(HashToBounded(
          seed ^ 0x77aa, iteration, v, static_cast<uint64_t>(topo.k)));
    }
    return -1;
  };

  // Superstep 2: move proposals. A full pass recomputes every vertex; the
  // steady-state pass recomputes only the compact work list — vertices
  // adjacent to a query whose neighbor data changed last round, last
  // round's explorers (their cached proposal is not reusable), and this
  // round's firing list. The legacy per-vertex exploration draw cannot know
  // the firing set without hashing all n vertices, so it keeps the O(n)
  // skip-scan.
  const bool recompute_all = !options_.incremental || !proposals_valid_ ||
                             !ContextMatches(topo, anchor, anchor_penalty);
  const size_t num_workers = std::max<size_t>(1, pool->num_threads());
  if (workspaces_.size() < num_workers) workspaces_.resize(num_workers);
  const auto ensure_workspace = [&](Workspace& ws) {
    if (!push && topo.full_k &&
        ws.affinity.size() < static_cast<size_t>(topo.k)) {
      // FindBestTarget requires a zero-filled scratch and restores it, so
      // (re)sizing is the only moment we pay for a fill.
      ws.affinity.assign(static_cast<size_t>(topo.k), 0.0);
    }
  };
  const auto recompute_vertex = [&](VertexId v, Workspace& ws) {
    bool cacheable = true;
    const Proposal proposal =
        ComputeProposal(topo, *partition, v, explore_target_for(v), push,
                        anchor, anchor_penalty, &ws, &cacheable);
    targets_[v] = proposal.target;
    gains_[v] = proposal.gain;
    cache_valid_[v] = cacheable ? 1 : 0;
  };

  bool compact_pass = false;
  if (recompute_all) {
    targets_.assign(n, -1);
    gains_.assign(n, 0.0);
    cache_valid_.assign(n, 0);
    recompute_.assign(n, 0);
    SnapshotContext(topo, anchor, anchor_penalty);
    pool->ParallelFor(n, [&](size_t begin, size_t end, size_t w) {
      Workspace& ws = workspaces_[w];
      ensure_workspace(ws);
      for (size_t vi = begin; vi < end; ++vi) {
        recompute_vertex(static_cast<VertexId>(vi), ws);
      }
    });
    stats.num_recomputed = n;
  } else if (!explore || preselect) {
    // Compact steady-state pass: claim the blast radius of last round's
    // moves through the recompute marks (different queries share data
    // vertices; atomic exchange makes each vertex appear once), then fold
    // in the stale and firing lists.
    compact_pass = true;
    recompute_list_.clear();
    collect_.resize(std::max(collect_.size(), num_workers));
    if (!dirty_list_.empty()) {
      for (size_t w = 0; w < num_workers; ++w) collect_[w].clear();
      pool->ParallelFor(
          dirty_list_.size(), [&](size_t begin, size_t end, size_t w) {
            std::vector<VertexId>& local = collect_[w];
            for (size_t i = begin; i < end; ++i) {
              for (VertexId v : graph_.QueryNeighbors(dirty_list_[i])) {
                if (std::atomic_ref<uint8_t>(recompute_[v])
                        .exchange(1, std::memory_order_relaxed) == 0) {
                  local.push_back(v);
                }
              }
            }
          });
      for (size_t w = 0; w < num_workers; ++w) {
        recompute_list_.insert(recompute_list_.end(), collect_[w].begin(),
                               collect_[w].end());
      }
    }
    for (const VertexId v : stale_list_) {
      if (!recompute_[v]) {
        recompute_[v] = 1;
        recompute_list_.push_back(v);
      }
    }
    for (const VertexId v : firing_list_) {
      if (!recompute_[v]) {
        recompute_[v] = 1;
        recompute_list_.push_back(v);
      }
    }
    pool->ParallelFor(recompute_list_.size(),
                      [&](size_t begin, size_t end, size_t w) {
                        Workspace& ws = workspaces_[w];
                        ensure_workspace(ws);
                        for (size_t i = begin; i < end; ++i) {
                          recompute_vertex(recompute_list_[i], ws);
                        }
                      });
    stats.num_recomputed = recompute_list_.size();
  } else {
    // Legacy O(n) skip-scan (per-vertex Bernoulli exploration draw): mark
    // the blast radius, then visit every vertex and skip the clean ones.
    if (!dirty_list_.empty()) {
      pool->ParallelForEach(dirty_list_.size(), [&](size_t i) {
        for (VertexId v : graph_.QueryNeighbors(dirty_list_[i])) {
          std::atomic_ref<uint8_t>(recompute_[v])
              .store(1, std::memory_order_relaxed);
        }
      });
    }
    std::vector<uint64_t> recomputed_per_worker(num_workers, 0);
    pool->ParallelFor(n, [&](size_t begin, size_t end, size_t w) {
      Workspace& ws = workspaces_[w];
      ensure_workspace(ws);
      uint64_t recomputed = 0;
      for (size_t vi = begin; vi < end; ++vi) {
        const VertexId v = static_cast<VertexId>(vi);
        const bool fires =
            HashToUnitDouble(seed ^ 0xe791, iteration * 0x10001 + 1, v) <
            options_.exploration_probability;
        if (!fires && cache_valid_[v] && !recompute_[v]) continue;
        recompute_vertex(v, ws);
        ++recomputed;
      }
      recomputed_per_worker[w] += recomputed;
    });
    for (const uint64_t r : recomputed_per_worker) stats.num_recomputed += r;
  }

  // Next round's stale list: this round's explorers hold uncacheable
  // proposals. (Legacy mode detects them through the O(n) scan instead.)
  stale_list_.clear();
  if (preselect) {
    for (const VertexId v : firing_list_) {
      if (!cache_valid_[v]) stale_list_.push_back(v);
    }
  }

#ifndef NDEBUG
  if (!recompute_all) {
    // Debug cross-check: the cached proposals must be bit-identical to a
    // full recompute (same code path over logically identical state).
    pool->ParallelFor(n, [&](size_t begin, size_t end, size_t w) {
      Workspace& ws = workspaces_[w];
      ensure_workspace(ws);
      for (size_t vi = begin; vi < end; ++vi) {
        const VertexId v = static_cast<VertexId>(vi);
        bool cacheable = true;
        const Proposal check =
            ComputeProposal(topo, *partition, v, explore_target_for(v), push,
                            anchor, anchor_penalty, &ws, &cacheable);
        SHP_CHECK(check.target == targets_[v] && check.gain == gains_[v])
            << "stale cached proposal for v=" << v << ": cached ("
            << targets_[v] << ", " << gains_[v] << ") vs fresh ("
            << check.target << ", " << check.gain << ")";
      }
    });
  }
  if (push) {
    // Tolerance-based pull-vs-push equivalence, verified per iteration: the
    // push proposal must name the same target as a pull recompute, or a
    // gain-tied one (≤ 1e-9), and its gain must agree within rtol 1e-6.
    std::vector<Workspace> debug_ws(num_workers);
    pool->ParallelFor(n, [&](size_t begin, size_t end, size_t w) {
      Workspace& ws = debug_ws[w];
      if (ws.affinity.size() < static_cast<size_t>(topo.k)) {
        ws.affinity.assign(static_cast<size_t>(topo.k), 0.0);
      }
      for (size_t vi = begin; vi < end; ++vi) {
        const VertexId v = static_cast<VertexId>(vi);
        bool cacheable = true;
        const Proposal pull = ComputeProposal(
            topo, *partition, v, explore_target_for(v), /*push=*/false,
            anchor, anchor_penalty, &ws, &cacheable);
        const double gtol =
            1e-9 + 1e-6 * std::max(std::fabs(pull.gain),
                                   std::fabs(gains_[v]));
        if (pull.target == targets_[v]) {
          SHP_CHECK(std::fabs(pull.gain - gains_[v]) <= gtol)
              << "pull/push gain divergence for v=" << v << ": pull "
              << pull.gain << " vs push " << gains_[v];
        } else if (pull.target >= 0 && targets_[v] >= 0) {
          // Different targets are legal only on a gain tie: evaluate both in
          // the pull frame and require them equal within the tie tolerance.
          const BucketId from = partition->bucket_of(v);
          const double g_pull_choice =
              gain_.MoveGain(graph_, ndata_, v, from, pull.target);
          const double g_push_choice =
              gain_.MoveGain(graph_, ndata_, v, from, targets_[v]);
          SHP_CHECK(std::fabs(g_pull_choice - g_push_choice) <= 1e-9)
              << "pull/push target divergence beyond tie tolerance for v="
              << v << ": pull -> " << pull.target << " (" << g_pull_choice
              << ") vs push -> " << targets_[v] << " (" << g_push_choice
              << ")";
        } else {
          // One path proposed, the other filtered (propose_nonpositive):
          // only legal when the surviving gain straddles zero within
          // tolerance.
          SHP_CHECK(std::fabs(pull.gain) <= gtol &&
                    std::fabs(gains_[v]) <= gtol)
              << "pull/push proposal presence mismatch for v=" << v;
        }
      }
    });
    // The patched accumulators must match a fresh query-major build up to
    // summation order.
    AffinitySweep fresh(sweep_.deterministic());
    fresh.Build(graph_, ndata_, gain_.pow_table(), pool);
    SHP_CHECK(sweep_.ApproxEquals(fresh, 1e-9, 1e-9))
        << "patched affinity accumulators diverged from a fresh build";
  }
#endif

  // Clear this round's recompute marks (the compact pass claims exactly the
  // work list; the legacy pass marks through the dirty list) and the
  // preselected exploration targets — keeps both arrays all-zero/-1 between
  // iterations without an O(n) sweep.
  if (compact_pass && !recompute_list_.empty()) {
    pool->ParallelForEach(recompute_list_.size(), [&](size_t i) {
      recompute_[recompute_list_[i]] = 0;
    });
  } else if (!recompute_all && !dirty_list_.empty()) {
    pool->ParallelForEach(dirty_list_.size(), [&](size_t i) {
      for (VertexId v : graph_.QueryNeighbors(dirty_list_[i])) {
        std::atomic_ref<uint8_t>(recompute_[v])
            .store(0, std::memory_order_relaxed);
      }
    });
  }
  for (const VertexId v : firing_list_) explore_target_[v] = -1;

  // Supersteps 3-4: master aggregation, probabilistic moves, repair. A
  // compact pass hands the broker its work list as the changed-proposal
  // list: only recomputed vertices can hold a different (bucket, target,
  // gain) than last round — last round's movers are always inside this
  // round's blast radius (ApplyMoves marks all of a mover's queries
  // touched, and the mover neighbors its own queries), so the list also
  // covers every bucket_of change. Non-compact rounds (recompute-all,
  // legacy skip-scan) pass nullptr and re-prime the broker's state.
  const MoveOutcome outcome =
      broker_.Apply(topo, targets_, gains_, seed, iteration, partition, pool,
                    compact_pass ? &recompute_list_ : nullptr);

  const bool high_churn =
      static_cast<double>(outcome.moves.size()) >
      options_.incremental_rebuild_fraction * static_cast<double>(n);
  if (options_.incremental && !high_churn) {
    // Fold the executed moves into the carried state (superstep 1 of the
    // *next* iteration, amortized to the blast radius of this round). Push
    // mode additionally consumes the bucket-count delta records to patch
    // the affinity accumulators — no rescan of untouched queries.
    dirty_list_.clear();
    deltas_.clear();
    ndata_.ApplyMoves(graph_, outcome.moves, pool, &dirty_list_,
                      push ? &deltas_ : nullptr);
    if (push) {
      stats.num_delta_records = deltas_.size();
      sweep_.ApplyDeltas(graph_, deltas_, gain_.pow_table(), pool);
    } else {
      sweep_valid_ = false;
    }
    for (const VertexMove& m : outcome.moves) {
      shadow_assignment_[m.v] = m.to;
    }
    proposals_valid_ = true;
#ifndef NDEBUG
    SHP_CHECK(shadow_assignment_ == partition->assignment())
        << "executed move list does not match the partition delta";
    QueryNeighborData fresh;
    fresh.Build(graph_, partition->assignment(), pool);
    SHP_CHECK(ndata_.ContentEquals(fresh))
        << "incrementally maintained neighbor data diverged from rebuild";
#endif
  } else {
    ndata_valid_ = false;
    proposals_valid_ = false;
    sweep_valid_ = false;
  }

  stats.num_proposals = outcome.num_proposals;
  stats.num_moved = outcome.num_moved;
  stats.num_reverted = outcome.num_reverted;
  stats.num_draws = outcome.num_draws;
  stats.gain_moved = outcome.gain_moved;
  stats.moved_fraction =
      n == 0 ? 0.0
             : static_cast<double>(outcome.num_moved) / static_cast<double>(n);
  return stats;
}

}  // namespace shp
