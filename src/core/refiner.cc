#include "core/refiner.h"

#include <algorithm>
#include <atomic>

#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace shp {

Refiner::Refiner(const BipartiteGraph& graph, const RefinerOptions& options)
    : graph_(graph),
      options_(options),
      gain_(options.p, static_cast<uint32_t>(graph.MaxQueryDegree()),
            options.future_splits),
      broker_(options.broker) {}

Refiner::Proposal Refiner::ComputeProposal(
    const MoveTopology& topo, const Partition& partition, VertexId v,
    uint64_t seed, uint64_t iteration, const std::vector<BucketId>* anchor,
    double anchor_penalty, Workspace* ws, bool* cacheable) const {
  *cacheable = true;
  if (graph_.DataDegree(v) == 0) return {};  // isolated: nothing to gain
  const BucketId from = partition.bucket_of(v);
  const int32_t group = topo.group_of_bucket[static_cast<size_t>(from)];
  if (group < 0) return {};  // bucket not refined at this level

  BucketId best_target = -1;
  double best_gain = 0.0;
  if (topo.full_k) {
    if (options_.exploration_probability > 0.0 &&
        HashToUnitDouble(seed ^ 0xe791, iteration * 0x10001 + 1, v) <
            options_.exploration_probability) {
      // Exploration proposal: random target with its true gain. Depends on
      // the iteration counter, so it must never be served from the cache.
      const BucketId candidate = static_cast<BucketId>(HashToBounded(
          seed ^ 0x77aa, iteration, v, static_cast<uint64_t>(topo.k)));
      if (candidate != from) {
        best_target = candidate;
        best_gain = gain_.MoveGain(graph_, ndata_, v, from, candidate);
        *cacheable = false;
      }
    }
    if (best_target < 0) {
      const auto best = gain_.FindBestTarget(graph_, ndata_, v, from, 0,
                                             topo.k, &ws->affinity,
                                             &ws->touched);
      best_target = best.bucket;
      best_gain = best.gain;
    }
  } else {
    const auto& children = topo.group_children[static_cast<size_t>(group)];
    bool first = true;
    for (BucketId candidate : children) {
      if (candidate == from) continue;
      const double g = gain_.MoveGain(graph_, ndata_, v, from, candidate);
      if (first || g > best_gain) {
        best_gain = g;
        best_target = candidate;
        first = false;
      }
    }
  }
  if (best_target < 0) return {};

  // Incremental-update penalty (paper §5(i)).
  if (anchor != nullptr && anchor_penalty != 0.0) {
    const BucketId home = (*anchor)[v];
    if (from == home && best_target != home) best_gain -= anchor_penalty;
    if (from != home && best_target == home) best_gain += anchor_penalty;
  }

  if (!options_.propose_nonpositive && best_gain <= 0.0) return {};
  return {best_target, best_gain};
}

bool Refiner::ContextMatches(const MoveTopology& topo,
                             const std::vector<BucketId>* anchor,
                             double anchor_penalty) const {
  if (!has_cached_topo_) return false;
  if (cached_topo_.k != topo.k || cached_topo_.full_k != topo.full_k ||
      cached_topo_.group_of_bucket != topo.group_of_bucket ||
      cached_topo_.group_children != topo.group_children) {
    return false;
  }
  // Capacity is a broker concern; proposals do not depend on it.
  const bool has_anchor = anchor != nullptr && anchor_penalty != 0.0;
  if (has_anchor != cached_has_anchor_) return false;
  if (has_anchor && (cached_anchor_penalty_ != anchor_penalty ||
                     cached_anchor_ != *anchor)) {
    return false;
  }
  return true;
}

void Refiner::SnapshotContext(const MoveTopology& topo,
                              const std::vector<BucketId>* anchor,
                              double anchor_penalty) {
  cached_topo_ = topo;
  has_cached_topo_ = true;
  cached_has_anchor_ = anchor != nullptr && anchor_penalty != 0.0;
  cached_anchor_ = cached_has_anchor_ ? *anchor : std::vector<BucketId>{};
  cached_anchor_penalty_ = cached_has_anchor_ ? anchor_penalty : 0.0;
}

IterationStats Refiner::RunIteration(const MoveTopology& topo,
                                     Partition* partition, uint64_t seed,
                                     uint64_t iteration, ThreadPool* pool,
                                     const std::vector<BucketId>* anchor,
                                     double anchor_penalty) {
  SHP_CHECK_EQ(partition->num_data(), graph_.num_data());
  if (pool == nullptr) pool = &GlobalThreadPool();
  const VertexId n = graph_.num_data();
  IterationStats stats;

  // Superstep 1: collect neighbor data — reused across iterations whenever
  // it provably reflects the current assignment (the shadow copy is the
  // proof; callers that hand in a different partition trigger a rebuild).
  const bool ndata_reusable = options_.incremental && ndata_valid_ &&
                              shadow_assignment_ == partition->assignment();
  if (!ndata_reusable) {
    ndata_.Build(graph_, partition->assignment(), pool);
    shadow_assignment_ = partition->assignment();
    ndata_valid_ = true;
    proposals_valid_ = false;
    ++num_full_rebuilds_;
    stats.full_rebuild = true;
  }

  // Superstep 2: move proposals. A full pass recomputes every vertex; the
  // incremental pass recomputes only vertices adjacent to a query whose
  // neighbor data changed last round, vertices whose cached proposal is not
  // reusable (exploration), and vertices whose exploration draw fires now.
  const bool recompute_all = !options_.incremental || !proposals_valid_ ||
                             !ContextMatches(topo, anchor, anchor_penalty);
  if (recompute_all) {
    targets_.assign(n, -1);
    gains_.assign(n, 0.0);
    cache_valid_.assign(n, 0);
    recompute_.assign(n, 0);
    SnapshotContext(topo, anchor, anchor_penalty);
  } else if (!dirty_list_.empty()) {
    // Mark the blast radius of last round's moves. Different queries share
    // data vertices, so marks are relaxed atomic stores.
    pool->ParallelForEach(dirty_list_.size(), [&](size_t i) {
      for (VertexId v : graph_.QueryNeighbors(dirty_list_[i])) {
        std::atomic_ref<uint8_t>(recompute_[v])
            .store(1, std::memory_order_relaxed);
      }
    });
  }

  const size_t num_workers = std::max<size_t>(1, pool->num_threads());
  if (workspaces_.size() < num_workers) workspaces_.resize(num_workers);
  const bool explore = topo.full_k && options_.exploration_probability > 0.0;

  std::vector<uint64_t> recomputed_per_worker(num_workers, 0);
  pool->ParallelFor(n, [&](size_t begin, size_t end, size_t w) {
    Workspace& ws = workspaces_[w];
    if (topo.full_k &&
        ws.affinity.size() < static_cast<size_t>(topo.k)) {
      // FindBestTarget requires a zero-filled scratch and restores it, so
      // (re)sizing is the only moment we pay for a fill.
      ws.affinity.assign(static_cast<size_t>(topo.k), 0.0);
    }
    uint64_t recomputed = 0;
    for (size_t vi = begin; vi < end; ++vi) {
      const VertexId v = static_cast<VertexId>(vi);
      if (!recompute_all) {
        const bool fires =
            explore &&
            HashToUnitDouble(seed ^ 0xe791, iteration * 0x10001 + 1, v) <
                options_.exploration_probability;
        if (!fires && cache_valid_[v] && !recompute_[v]) continue;
      }
      bool cacheable = true;
      const Proposal proposal =
          ComputeProposal(topo, *partition, v, seed, iteration, anchor,
                          anchor_penalty, &ws, &cacheable);
      targets_[v] = proposal.target;
      gains_[v] = proposal.gain;
      cache_valid_[v] = cacheable ? 1 : 0;
      ++recomputed;
    }
    recomputed_per_worker[w] += recomputed;
  });
  for (const uint64_t r : recomputed_per_worker) stats.num_recomputed += r;

#ifndef NDEBUG
  if (!recompute_all) {
    // Debug cross-check: the cached proposals must be bit-identical to a
    // full recompute (same code path over logically identical neighbor
    // data).
    pool->ParallelFor(n, [&](size_t begin, size_t end, size_t w) {
      Workspace& ws = workspaces_[w];
      for (size_t vi = begin; vi < end; ++vi) {
        const VertexId v = static_cast<VertexId>(vi);
        bool cacheable = true;
        const Proposal check =
            ComputeProposal(topo, *partition, v, seed, iteration, anchor,
                            anchor_penalty, &ws, &cacheable);
        SHP_CHECK(check.target == targets_[v] && check.gain == gains_[v])
            << "stale cached proposal for v=" << v << ": cached ("
            << targets_[v] << ", " << gains_[v] << ") vs fresh ("
            << check.target << ", " << check.gain << ")";
      }
    });
  }
#endif

  // Clear this round's recompute marks through the same dirty list (keeps
  // recompute_ all-zero between iterations without an O(n) sweep).
  if (!recompute_all && !dirty_list_.empty()) {
    pool->ParallelForEach(dirty_list_.size(), [&](size_t i) {
      for (VertexId v : graph_.QueryNeighbors(dirty_list_[i])) {
        std::atomic_ref<uint8_t>(recompute_[v])
            .store(0, std::memory_order_relaxed);
      }
    });
  }

  // Supersteps 3-4: master aggregation, probabilistic moves, repair.
  const MoveOutcome outcome =
      broker_.Apply(topo, targets_, gains_, seed, iteration, partition, pool);

  const bool high_churn =
      static_cast<double>(outcome.moves.size()) >
      options_.incremental_rebuild_fraction * static_cast<double>(n);
  if (options_.incremental && !high_churn) {
    // Fold the executed moves into the carried state (superstep 1 of the
    // *next* iteration, amortized to the blast radius of this round).
    dirty_list_.clear();
    ndata_.ApplyMoves(graph_, outcome.moves, pool, &dirty_list_);
    for (const VertexMove& m : outcome.moves) {
      shadow_assignment_[m.v] = m.to;
    }
    proposals_valid_ = true;
#ifndef NDEBUG
    SHP_CHECK(shadow_assignment_ == partition->assignment())
        << "executed move list does not match the partition delta";
    QueryNeighborData fresh;
    fresh.Build(graph_, partition->assignment(), pool);
    SHP_CHECK(ndata_.ContentEquals(fresh))
        << "incrementally maintained neighbor data diverged from rebuild";
#endif
  } else {
    ndata_valid_ = false;
    proposals_valid_ = false;
  }

  stats.num_proposals = outcome.num_proposals;
  stats.num_moved = outcome.num_moved;
  stats.num_reverted = outcome.num_reverted;
  stats.gain_moved = outcome.gain_moved;
  stats.moved_fraction =
      n == 0 ? 0.0
             : static_cast<double>(outcome.num_moved) / static_cast<double>(n);
  return stats;
}

}  // namespace shp
