// Partition state: the bucket assignment of every data vertex plus
// materialized bucket sizes and balance checks.
//
// Bucket ids are final-leaf ids in [0, k). During recursive partitioning a
// vertex's bucket is the *first leaf* of its current subtree (so ids remain
// a subset of [0, k) at every level and converge to all of [0, k) at the
// last level); see core/recursive.h.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.h"
#include "objective/neighbor_data.h"

namespace shp {

class Partition {
 public:
  Partition() = default;

  /// All vertices in bucket 0 (recursive partitioning starts here).
  Partition(VertexId num_data, BucketId k);

  /// Uniform random assignment: "for every vertex, we independently pick a
  /// random bucket, which for large graphs guarantees an initial perfect
  /// balance" (paper §3.1). Deterministic in seed.
  static Partition Random(VertexId num_data, BucketId k, uint64_t seed);

  /// Random assignment with *exact* balance (sizes differ by ≤ 1): vertices
  /// are ranked by a hash and dealt round-robin. Equivalent to Random in
  /// distribution at large n, but feasible even for tiny instances where
  /// independent draws can exceed (1+ε)·n/k; drivers use this for their
  /// initial state.
  static Partition BalancedRandom(VertexId num_data, BucketId k,
                                  uint64_t seed);

  /// Adopts an existing assignment (values must lie in [0, k)).
  static Partition FromAssignment(std::vector<BucketId> assignment,
                                  BucketId k);

  BucketId k() const { return k_; }
  VertexId num_data() const {
    return static_cast<VertexId>(assignment_.size());
  }

  BucketId bucket_of(VertexId v) const { return assignment_[v]; }
  uint64_t bucket_size(BucketId b) const {
    return sizes_[static_cast<size_t>(b)];
  }
  const std::vector<BucketId>& assignment() const { return assignment_; }
  const std::vector<uint64_t>& sizes() const { return sizes_; }

  /// Moves v to bucket `to`, updating sizes. No-op when already there.
  void Move(VertexId v, BucketId to);

  /// max_i |V_i| / (n/k) − 1: the ε the current assignment realizes,
  /// measured against perfectly equal buckets.
  double ImbalanceRatio() const;

  /// True iff every bucket satisfies |V_i| ≤ (1+ε)·n/k.
  bool IsBalanced(double epsilon) const;

  /// Recomputes sizes from the assignment and verifies ranges; aborts on
  /// corruption. Used by tests and after bulk edits.
  void CheckInvariants() const;

 private:
  std::vector<BucketId> assignment_;
  std::vector<uint64_t> sizes_;
  BucketId k_ = 0;
};

}  // namespace shp
