// Public facade of the Social Hash Partitioner library.
//
// Quick use:
//
//   #include "core/shp.h"
//   shp::RecursiveOptions options;
//   options.k = 32;
//   auto result = shp::RecursivePartitioner(options).Run(graph);
//   double fanout = shp::AverageFanout(graph, result.assignment);
//
// The `Partitioner` interface gives all algorithms in this repository (SHP-k,
// SHP-2/r, the multilevel/random/label-propagation baselines) a common shape
// for the bench harnesses and examples.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/incremental.h"
#include "core/multidim.h"
#include "core/recursive.h"
#include "core/shp_k.h"
#include "graph/bipartite_graph.h"
#include "objective/objective.h"

namespace shp {

class ThreadPool;

/// Uniform interface over every partitioning algorithm in the repository.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Short display name ("SHP-2", "SHP-k", "Multilevel", ...).
  virtual std::string name() const = 0;

  /// Partitions the data vertices of `graph` into k buckets.
  virtual Result<std::vector<BucketId>> Partition(const BipartiteGraph& graph,
                                                  BucketId k,
                                                  ThreadPool* pool) = 0;
};

/// SHP-k (direct k-way) as a Partitioner. `options.k` is overridden per call.
std::unique_ptr<Partitioner> MakeShpK(const ShpKOptions& options);

/// SHP-r recursive (r = 2 → SHP-2) as a Partitioner.
std::unique_ptr<Partitioner> MakeShpRecursive(const RecursiveOptions& options);

/// Quality summary of a finished partition.
struct PartitionSummary {
  double fanout = 0.0;       ///< average query fanout
  double p_fanout = 0.0;     ///< p-fanout at the given p
  uint64_t hyperedge_cut = 0;
  uint64_t clique_net_cut = 0;
  double imbalance = 0.0;    ///< realized ε
  BucketId k = 0;
};

PartitionSummary SummarizePartition(const BipartiteGraph& graph,
                                    const std::vector<BucketId>& assignment,
                                    BucketId k, double p = 0.5,
                                    ThreadPool* pool = nullptr);

}  // namespace shp
