// Signed exponential gain histograms and the bin-matching scheme of paper
// §3.4: "Instead of maintaining two queues for each pair of buckets, we
// maintain two histograms that contain the number of vertices with move
// gains in exponentially sized bins. We then match bins in the two
// histograms for maximal swapping with probability one, and then
// probabilistically pair the remaining vertices in the final matched bins."
//
// Bin layout (num_levels = L): index 0..L-1 are negative gains from most to
// least negative, index L is the near-zero bin (|g| ≤ min_gain), and
// L+1..2L are positive gains from least to most positive. Higher index =
// higher gain, so matching proceeds from the top down. A negative bin can be
// matched against a positive one when the representative gain sum stays
// positive ("a pair of positive and negative histogram bins can swap if the
// sum of the gains is expected to be positive").
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace shp {

class GainBinning {
 public:
  /// min_gain: width of the zero bin; growth: bin size ratio; num_levels:
  /// bins per sign.
  GainBinning(double min_gain = 1e-8, double growth = 2.0,
              int num_levels = 40);

  int num_bins() const { return 2 * num_levels_ + 1; }
  int zero_bin() const { return num_levels_; }

  /// Bin index of a gain value.
  int BinFor(double gain) const;

  /// Representative (geometric-midpoint) gain of a bin; 0 for the zero bin.
  double Representative(int bin) const;

 private:
  double min_gain_;
  double log_growth_;
  double growth_;
  int num_levels_;
};

/// Histogram of proposal gains for one direction (bucket i -> bucket j).
struct DirectedGainHistogram {
  std::vector<uint64_t> counts;  // size = binning.num_bins()

  void Init(const GainBinning& binning) {
    counts.assign(static_cast<size_t>(binning.num_bins()), 0);
  }
  void Add(const GainBinning& binning, double gain) {
    ++counts[static_cast<size_t>(binning.BinFor(gain))];
  }
  uint64_t Total() const {
    uint64_t t = 0;
    for (uint64_t c : counts) t += c;
    return t;
  }
};

/// Per-bin move probabilities for both directions of one bucket pair,
/// computed by MatchHistograms. probability[bin] ∈ [0, 1].
struct PairMoveProbabilities {
  std::vector<double> forward;   // direction i -> j
  std::vector<double> backward;  // direction j -> i
  /// Expected number of swapped pairs (diagnostic).
  double expected_swaps = 0.0;
};

/// Matches the two directed histograms of a bucket pair top-down. Bins are
/// matched while the representative gain sum is positive; fully matched bins
/// get probability 1, the final partially matched bin gets a fractional
/// probability, everything else 0. This focuses movement on the highest
/// gains first (the paper's motivation) while keeping expected flow
/// symmetric, preserving balance in expectation.
PairMoveProbabilities MatchHistograms(const GainBinning& binning,
                                      const DirectedGainHistogram& forward,
                                      const DirectedGainHistogram& backward);

}  // namespace shp
