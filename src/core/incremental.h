// Incremental re-partitioning (paper §5(i)): "Our algorithm simply adapts to
// incremental updates by initializing with a previous partition and running
// a local search. If a limited search moves too many data vertices, we can
// modify the move gain calculation to punish movement from the existing
// partition or artificially lower the movement probabilities."
//
// Both mechanisms are implemented: `move_penalty` is charged against the
// gain of any move that leaves the previous bucket (and credited to moves
// returning home), and `probability_damping` scales every move probability.
#pragma once

#include <cstdint>
#include <vector>

#include "core/shp_k.h"
#include "graph/bipartite_graph.h"

namespace shp {

struct IncrementalOptions {
  ShpKOptions base;
  /// Gain units charged for abandoning the previous bucket. 0 disables.
  double move_penalty = 0.0;
  /// Scales all move probabilities (1 = no damping).
  double probability_damping = 1.0;
};

struct IncrementalResult {
  ShpResult shp;
  /// Vertices whose final bucket differs from the previous assignment
  /// (excluding vertices that were new / unassigned).
  uint64_t vertices_relocated = 0;
  uint64_t vertices_new = 0;
};

class IncrementalRepartitioner {
 public:
  explicit IncrementalRepartitioner(const IncrementalOptions& options);

  /// previous[v] is the old bucket of vertex v, or -1 for vertices that did
  /// not exist before (previous may also be shorter than num_data when the
  /// graph grew; missing tail entries are treated as new). New vertices are
  /// placed in the currently least-loaded valid bucket before refinement.
  IncrementalResult Repartition(const BipartiteGraph& graph,
                                const std::vector<BucketId>& previous,
                                ThreadPool* pool = nullptr) const;

 private:
  IncrementalOptions options_;
};

}  // namespace shp
