// SHP-r: recursive r-section (r = 2 gives SHP-2, the open-sourced and most
// scalable variant, paper §3.3).
//
// The partition is built as a bucket tree. A tree node owns a contiguous
// range of final leaves [lo, hi) and is identified by bucket id = lo, so a
// vertex's bucket id is always a valid final-leaf id and the last level ends
// with ids exactly 0..k-1 — no remapping pass. At each level every active
// node (range size > 1) splits its range into ≤ r nearly equal child ranges;
// its vertices are randomly distributed over the children (weighted by leaf
// count, keeping balance for non-power-of-r k) and then refined with moves
// constrained to sibling buckets. All nodes of a level refine concurrently
// in a single Refiner pass — exactly how the Giraph implementation runs one
// job per level with per-vertex constraints.
//
// §3.4 extras, both on by default:
//  * ε is scaled by splits_done/splits_total, reserving imbalance headroom
//    for later levels;
//  * gains target the projected final p-fanout, using base (1 − p/t) where
//    t is the number of leaves a child will eventually split into.
#pragma once

#include <cstdint>
#include <vector>

#include "core/refiner.h"
#include "core/shp_k.h"
#include "graph/bipartite_graph.h"

namespace shp {

class ThreadPool;

struct RecursiveOptions {
  BucketId k = 2;
  int branching = 2;  ///< r; 2 = recursive bisection
  double p = 0.5;
  double epsilon = 0.05;
  uint32_t iterations_per_level = 20;  ///< paper default for SHP-2
  double min_move_fraction = 1e-3;
  uint64_t seed = 1;
  bool scale_epsilon_by_depth = true;   ///< §3.4
  bool future_split_objective = true;   ///< §3.4
  RefinerOptions refiner;  ///< p/future_splits overwritten internally
  /// Swaps the iteration engine (default: threaded in-memory Refiner).
  RefinerFactory refiner_factory;
};

struct RecursiveLevelRecord {
  uint32_t level = 0;
  uint32_t active_groups = 0;
  uint32_t iterations_run = 0;
  uint64_t total_moved = 0;
};

struct RecursiveResult {
  std::vector<BucketId> assignment;
  BucketId k = 0;
  uint32_t levels_run = 0;
  std::vector<RecursiveLevelRecord> level_history;
  /// Flattened per-iteration stats across levels (Fig. 5a time accounting).
  std::vector<ShpIterationRecord> history;
};

class RecursivePartitioner {
 public:
  explicit RecursivePartitioner(const RecursiveOptions& options);

  RecursiveResult Run(const BipartiteGraph& graph,
                      ThreadPool* pool = nullptr) const;

  /// Number of levels dlog_r(k)e the run will use.
  uint32_t NumLevels() const;

 private:
  RecursiveOptions options_;
};

}  // namespace shp
