#include "core/gain_histogram.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace shp {

GainBinning::GainBinning(double min_gain, double growth, int num_levels)
    : min_gain_(min_gain),
      log_growth_(std::log(growth)),
      growth_(growth),
      num_levels_(num_levels) {
  SHP_CHECK_GT(min_gain, 0.0);
  SHP_CHECK_GT(growth, 1.0);
  SHP_CHECK_GE(num_levels, 1);
}

int GainBinning::BinFor(double gain) const {
  const double magnitude = std::abs(gain);
  if (!(magnitude > min_gain_)) return zero_bin();  // includes NaN
  int level = 1 + static_cast<int>(
                      std::floor(std::log(magnitude / min_gain_) /
                                 log_growth_));
  level = std::min(level, num_levels_);
  return gain > 0 ? zero_bin() + level : zero_bin() - level;
}

double GainBinning::Representative(int bin) const {
  if (bin == zero_bin()) return 0.0;
  const int level = std::abs(bin - zero_bin());
  // Geometric midpoint of [min_gain * growth^(level-1), min_gain * growth^level).
  const double mid = min_gain_ * std::pow(growth_, level - 0.5);
  return bin > zero_bin() ? mid : -mid;
}

PairMoveProbabilities MatchHistograms(const GainBinning& binning,
                                      const DirectedGainHistogram& forward,
                                      const DirectedGainHistogram& backward) {
  const int bins = binning.num_bins();
  PairMoveProbabilities out;
  out.forward.assign(static_cast<size_t>(bins), 0.0);
  out.backward.assign(static_cast<size_t>(bins), 0.0);

  // Top-down two-pointer matching over remaining counts.
  std::vector<double> remaining_fwd(forward.counts.begin(),
                                    forward.counts.end());
  std::vector<double> remaining_bwd(backward.counts.begin(),
                                    backward.counts.end());
  int a = bins - 1;  // forward cursor
  int b = bins - 1;  // backward cursor
  auto skip_empty = [](const std::vector<double>& counts, int* cursor) {
    while (*cursor >= 0 && counts[static_cast<size_t>(*cursor)] <= 0.0) {
      --(*cursor);
    }
  };
  for (;;) {
    skip_empty(remaining_fwd, &a);
    skip_empty(remaining_bwd, &b);
    if (a < 0 || b < 0) break;
    // Swap only while the expected pair gain is positive.
    if (binning.Representative(a) + binning.Representative(b) <= 0.0) break;
    const double matched = std::min(remaining_fwd[static_cast<size_t>(a)],
                                    remaining_bwd[static_cast<size_t>(b)]);
    remaining_fwd[static_cast<size_t>(a)] -= matched;
    remaining_bwd[static_cast<size_t>(b)] -= matched;
    out.forward[static_cast<size_t>(a)] += matched;
    out.backward[static_cast<size_t>(b)] += matched;
    out.expected_swaps += matched;
  }

  // Convert matched counts to probabilities.
  for (int bin = 0; bin < bins; ++bin) {
    const uint64_t total_fwd = forward.counts[static_cast<size_t>(bin)];
    const uint64_t total_bwd = backward.counts[static_cast<size_t>(bin)];
    out.forward[static_cast<size_t>(bin)] =
        total_fwd == 0 ? 0.0
                       : std::min(1.0, out.forward[static_cast<size_t>(bin)] /
                                           static_cast<double>(total_fwd));
    out.backward[static_cast<size_t>(bin)] =
        total_bwd == 0 ? 0.0
                       : std::min(1.0, out.backward[static_cast<size_t>(bin)] /
                                           static_cast<double>(total_bwd));
  }
  return out;
}

}  // namespace shp
