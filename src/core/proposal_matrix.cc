#include "core/proposal_matrix.h"

#include <algorithm>

namespace shp {

double ProposalMatrix::MoveProbability(BucketId from, BucketId to) const {
  const uint64_t forward = Count(from, to);
  if (forward == 0) return 0.0;
  const uint64_t backward = Count(to, from);
  return static_cast<double>(std::min(forward, backward)) /
         static_cast<double>(forward);
}

void ProposalMatrix::Merge(const ProposalMatrix& other) {
  for (const auto& [key, count] : other.counts_) counts_[key] += count;
}

std::vector<std::pair<BucketId, BucketId>> ProposalMatrix::SortedPairs()
    const {
  std::vector<std::pair<BucketId, BucketId>> pairs;
  pairs.reserve(counts_.size());
  for (const auto& [key, count] : counts_) {
    pairs.emplace_back(static_cast<BucketId>(key >> 32),
                       static_cast<BucketId>(key & 0xffffffffULL));
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

}  // namespace shp
