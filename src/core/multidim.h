// Multi-dimensional balance (paper §5(ii)): "we favor a simple heuristic
// that produces c·k buckets for some c > 1 that have loose balance
// requirements on all but one dimension, and merges them into k buckets to
// satisfy load balance across all dimensions."
//
// The merge assigns exactly c sub-buckets to each final bucket (preserving
// the primary vertex-count balance) while greedily minimizing the maximum
// normalized load over all dimensions (LPT-style makespan heuristic).
#pragma once

#include <cstdint>
#include <vector>

#include "core/recursive.h"
#include "graph/bipartite_graph.h"

namespace shp {

struct MultiDimOptions {
  BucketId k = 2;
  /// Oversampling factor c > 1; the SHP stage produces c·k buckets.
  int oversample = 4;
  /// Options for the c·k-bucket SHP stage (k is overwritten internally).
  RecursiveOptions partition;
};

struct MultiDimResult {
  std::vector<BucketId> assignment;  ///< final buckets in [0, k)
  /// loads[b][d] = Σ weight of dimension d in final bucket b.
  std::vector<std::vector<double>> loads;
  /// Per-dimension imbalance: max_b loads[b][d] / (total_d / k) − 1.
  std::vector<double> imbalance;
  /// The intermediate c·k-bucket assignment (diagnostics).
  std::vector<BucketId> fine_assignment;
};

class MultiDimBalancer {
 public:
  explicit MultiDimBalancer(const MultiDimOptions& options);

  /// weights[v * num_dims + d] = load of vertex v in dimension d. All
  /// weights must be ≥ 0 and each dimension must have positive total.
  MultiDimResult Run(const BipartiteGraph& graph,
                     const std::vector<double>& weights, int num_dims,
                     ThreadPool* pool = nullptr) const;

  /// Exposed for tests: merges c·k sub-bucket loads into k buckets, exactly
  /// `oversample` sub-buckets per final bucket, minimizing max normalized
  /// load. Returns sub-bucket -> final bucket.
  static std::vector<BucketId> MergeSubBuckets(
      const std::vector<std::vector<double>>& sub_loads, BucketId k,
      int oversample);

 private:
  MultiDimOptions options_;
};

}  // namespace shp
