#include "core/partition.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"

namespace shp {

Partition::Partition(VertexId num_data, BucketId k) : k_(k) {
  SHP_CHECK_GT(k, 0);
  assignment_.assign(num_data, 0);
  sizes_.assign(static_cast<size_t>(k), 0);
  sizes_[0] = num_data;
}

Partition Partition::Random(VertexId num_data, BucketId k, uint64_t seed) {
  SHP_CHECK_GT(k, 0);
  Partition p;
  p.k_ = k;
  p.assignment_.resize(num_data);
  p.sizes_.assign(static_cast<size_t>(k), 0);
  for (VertexId v = 0; v < num_data; ++v) {
    const BucketId b = static_cast<BucketId>(
        HashToBounded(seed, v, 0x1417, static_cast<uint64_t>(k)));
    p.assignment_[v] = b;
    ++p.sizes_[static_cast<size_t>(b)];
  }
  return p;
}

Partition Partition::BalancedRandom(VertexId num_data, BucketId k,
                                    uint64_t seed) {
  SHP_CHECK_GT(k, 0);
  std::vector<VertexId> order(num_data);
  for (VertexId v = 0; v < num_data; ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [seed](VertexId a, VertexId b) {
    const uint64_t ha = HashCombine(seed, a, 0xba1a);
    const uint64_t hb = HashCombine(seed, b, 0xba1a);
    if (ha != hb) return ha < hb;
    return a < b;
  });
  Partition p;
  p.k_ = k;
  p.assignment_.resize(num_data);
  p.sizes_.assign(static_cast<size_t>(k), 0);
  for (VertexId rank = 0; rank < num_data; ++rank) {
    const BucketId b = static_cast<BucketId>(rank % static_cast<VertexId>(k));
    p.assignment_[order[rank]] = b;
    ++p.sizes_[static_cast<size_t>(b)];
  }
  return p;
}

Partition Partition::FromAssignment(std::vector<BucketId> assignment,
                                    BucketId k) {
  SHP_CHECK_GT(k, 0);
  Partition p;
  p.k_ = k;
  p.assignment_ = std::move(assignment);
  p.sizes_.assign(static_cast<size_t>(k), 0);
  for (BucketId b : p.assignment_) {
    SHP_CHECK(b >= 0 && b < k) << "assignment value out of range";
    ++p.sizes_[static_cast<size_t>(b)];
  }
  return p;
}

void Partition::Move(VertexId v, BucketId to) {
  const BucketId from = assignment_[v];
  if (from == to) return;
  SHP_DCHECK(to >= 0 && to < k_);
  --sizes_[static_cast<size_t>(from)];
  ++sizes_[static_cast<size_t>(to)];
  assignment_[v] = to;
}

double Partition::ImbalanceRatio() const {
  if (assignment_.empty() || k_ == 0) return 0.0;
  const double ideal =
      static_cast<double>(assignment_.size()) / static_cast<double>(k_);
  const uint64_t biggest = *std::max_element(sizes_.begin(), sizes_.end());
  return static_cast<double>(biggest) / ideal - 1.0;
}

bool Partition::IsBalanced(double epsilon) const {
  return ImbalanceRatio() <= epsilon + 1e-9;
}

void Partition::CheckInvariants() const {
  std::vector<uint64_t> recount(static_cast<size_t>(k_), 0);
  for (BucketId b : assignment_) {
    SHP_CHECK(b >= 0 && b < k_) << "bucket id out of range";
    ++recount[static_cast<size_t>(b)];
  }
  SHP_CHECK(recount == sizes_) << "bucket sizes out of sync with assignment";
}

}  // namespace shp
