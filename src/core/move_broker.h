// The move broker is the "master" of paper Fig. 3 supersteps 3-4: it
// aggregates per-vertex move proposals, computes per-pair move
// probabilities, and executes the simultaneous probabilistic moves.
//
// Two strategies:
//  * kPlainProbability — Algorithm 1 verbatim: only positive-gain proposals
//    count; probability for direction (i→j) is min(S_ij, S_ji)/S_ij.
//  * kHistogramMatching — the §3.4 production scheme: per-pair signed gain
//    histograms matched top-down, so the highest gains move first and
//    positive/negative bins can pair when their sum is positive.
//
// Both preserve balance in expectation; a deterministic post-move repair
// pass reverts the lowest-gain surplus moves of any bucket that exceeded
// its hard capacity, so the ε constraint is never violated (the paper runs
// with ε = 0.05 slack absorbing stochastic fluctuations; we enforce it).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/gain_histogram.h"
#include "core/move_topology.h"
#include "core/partition.h"
#include "graph/bipartite_graph.h"

namespace shp {

class ThreadPool;

struct MoveBrokerOptions {
  enum class Strategy {
    kPlainProbability,   ///< Algorithm 1 verbatim
    kHistogramMatching,  ///< §3.4 distributed scheme (default)
    /// §3.4's "ideal serial implementation": per bucket pair, two queues of
    /// vertices sorted by gain, paired off highest-to-lowest while the pair
    /// sum stays positive. Exact (no binning loss) and exactly
    /// balance-preserving, but inherently centralized — usable only
    /// single-machine; kept as the quality reference the histogram scheme
    /// approximates.
    kExactPairing,
  };
  Strategy strategy = Strategy::kHistogramMatching;
  GainBinning binning;
  /// Multiplies every move probability; <1 damps movement (used by
  /// incremental repartitioning, paper §5(i)).
  double probability_damping = 1.0;
  /// Ceiling on any per-vertex move probability. Strictly below 1 so that
  /// fully matched symmetric demands do not all execute simultaneously —
  /// with probability exactly 1 a matched bucket pair swaps its entire
  /// populations, which merely relabels the buckets and oscillates forever
  /// (visible on the paper's Fig. 2 example). A 0.9 cap breaks the symmetry
  /// while keeping expected flow balanced.
  double max_move_probability = 0.9;
  /// §3.4 "imbalanced swaps": also move unmatched positive-gain vertices
  /// into buckets with spare capacity (histogram strategy only).
  bool use_capacity_slack = true;
  /// Superstep-4 draw floor: proposals whose (from, target) probability row
  /// is all zero skip the per-vertex draw — a zero probability can never
  /// fire, so the move trajectory is identical and the steady-state
  /// O(#proposals) draw scan shrinks to the pairs the master actually
  /// matched. false restores the draw-everything reference (the regression
  /// test compares the two trajectories).
  bool skip_zero_probability_pairs = true;
  /// Ceiling on executed moves per round; 0 = unlimited. The online
  /// repartitioning stability knob (paper §5(i) alongside damping): when a
  /// round's drawn movers exceed the budget, the highest-gain movers are
  /// kept (deterministic tie-break on vertex id) and the rest stay put, so
  /// a serving tier migrates at a bounded rate per epoch. Enforced by all
  /// three strategies and by the BSP master; post-repair executed moves
  /// never exceed the budget (balance reversions only shrink the set).
  uint64_t max_moves_per_round = 0;
};

struct MoveOutcome {
  uint64_t num_proposals = 0;  ///< vertices with a valid target
  uint64_t num_moved = 0;      ///< moves that stuck (after repair)
  uint64_t num_reverted = 0;   ///< repair reversions
  /// Probability draws evaluated (≤ num_proposals once the draw floor
  /// skips all-zero probability rows; kExactPairing draws nothing).
  uint64_t num_draws = 0;
  double gain_moved = 0.0;     ///< Σ gains of surviving moves
  /// Net executed moves of the round (post balance-repair; a reverted vertex
  /// does not appear), ascending by vertex id. This is exactly the partition
  /// delta: incremental neighbor-data maintenance consumes it directly, and
  /// QueryNeighborData::ApplyMoves expands it into the per-query
  /// NeighborDelta records that patch the query-major affinity sweep.
  std::vector<VertexMove> moves;
};

/// Master-side state: per directed bucket pair (packed (from << 32) | to),
/// per-gain-bin move probabilities.
struct PairProbabilityTable {
  std::unordered_map<uint64_t, std::vector<double>> probabilities;

  /// Probability for a proposal (from, to, gain); 0 if the pair is unknown.
  double Lookup(const GainBinning& binning, BucketId from, BucketId to,
                double gain) const;

  /// Keys of pairs whose probability row holds any positive entry — the
  /// superstep-4 draw floor's support set. A proposal on any other pair
  /// draws against probability 0 in every bin, so its draw can never fire
  /// and is skipped without changing the move trajectory.
  std::unordered_set<uint64_t> LivePairKeys() const;
};

/// The master computation of supersteps 3-4 under histogram matching:
/// matches the two directed histograms of every bucket pair and (optionally)
/// spends spare capacity on unmatched positive bins (§3.4 imbalanced swaps).
/// Shared between the threaded MoveBroker and the BSP master.
PairProbabilityTable ComputePairProbabilities(
    const MoveTopology& topo, const GainBinning& binning,
    const std::unordered_map<uint64_t, DirectedGainHistogram>& histograms,
    const Partition& partition, bool use_capacity_slack);

class MoveBroker {
 public:
  explicit MoveBroker(MoveBrokerOptions options) : options_(options) {}

  const MoveBrokerOptions& options() const { return options_; }

  /// Adjusts the per-round move budget between rounds (the serving loop
  /// passes its remaining epoch budget before every iteration). 0 =
  /// unlimited. Does not disturb the incremental histogram state.
  void set_max_moves_per_round(uint64_t max_moves) {
    options_.max_moves_per_round = max_moves;
  }

  /// Executes one move round. targets[v] = proposed bucket (or -1);
  /// gains[v] = proposal gain (improvement; may be ≤ 0 under histogram
  /// matching). Deterministic in (seed, iteration) for a fixed thread count.
  ///
  /// `changed`, if non-null, is the compact changed-proposal list: every
  /// vertex whose (current bucket, target, gain) differs from the previous
  /// Apply call on this broker must be listed (duplicates are fine — the
  /// update is idempotent). Under kHistogramMatching the broker then patches
  /// its persistent per-pair histograms in O(|changed|) instead of
  /// re-accumulating the n-sized targets/gains arrays; the move trajectory
  /// is identical (Debug builds verify against a from-scratch accumulation).
  /// nullptr (the default, and the only mode the other strategies use)
  /// rebuilds from scratch and re-primes the incremental state.
  MoveOutcome Apply(const MoveTopology& topo,
                    const std::vector<BucketId>& targets,
                    const std::vector<double>& gains, uint64_t seed,
                    uint64_t iteration, Partition* partition,
                    ThreadPool* pool = nullptr,
                    const std::vector<VertexId>* changed = nullptr);

  /// Reverts lowest-gain surplus moves of over-capacity buckets until every
  /// bucket fits its capacity (or nothing is left to revert). Public so the
  /// BSP master can apply the identical repair.
  static void RepairBalance(const MoveTopology& topo,
                            const std::vector<VertexId>& moved,
                            const std::vector<BucketId>& original_bucket,
                            const std::vector<double>& gains,
                            Partition* partition, MoveOutcome* outcome);

  /// Emits the net executed moves (vertices whose post-repair bucket differs
  /// from their pre-round bucket) into outcome->moves, ascending by vertex
  /// id. Shared with the BSP master, which repairs via RepairBalance above.
  static void CollectNetMoves(const std::vector<VertexId>& moved,
                              const std::vector<BucketId>& original_bucket,
                              const Partition& partition,
                              MoveOutcome* outcome);

  /// Trims a drawn mover list to `budget` vertices (0 = unlimited): keeps
  /// the highest gains, ties broken on the lower vertex id, and restores
  /// ascending-by-vertex order on return. Deterministic for a fixed input.
  /// Shared with the BSP master's superstep 4.
  static void TrimToBudget(uint64_t budget, const std::vector<double>& gains,
                           std::vector<VertexId>* movers);

 private:
  MoveOutcome ApplyPlain(const MoveTopology& topo,
                         const std::vector<BucketId>& targets,
                         const std::vector<double>& gains, uint64_t seed,
                         uint64_t iteration, Partition* partition,
                         ThreadPool* pool);
  MoveOutcome ApplyHistogram(const MoveTopology& topo,
                             const std::vector<BucketId>& targets,
                             const std::vector<double>& gains, uint64_t seed,
                             uint64_t iteration, Partition* partition,
                             ThreadPool* pool,
                             const std::vector<VertexId>* changed);
  MoveOutcome ApplyExactPairing(const MoveTopology& topo,
                                const std::vector<BucketId>& targets,
                                const std::vector<double>& gains,
                                uint64_t seed, uint64_t iteration,
                                Partition* partition);

  /// Re-derives vertex v's histogram contribution: removes the recorded old
  /// (pair, bin) counter, adds the current one, and updates the live-proposal
  /// tally. Idempotent (remove-new-then-add-new under duplicate calls).
  void UpdateHistContribution(VertexId v, const std::vector<BucketId>& targets,
                              const std::vector<double>& gains,
                              const Partition& partition);

  MoveBrokerOptions options_;

  /// hist_last_pair_ sentinel: the vertex currently contributes nowhere.
  static constexpr uint64_t kNoPair = ~0ull;

  /// Persistent per-pair histogram with a live-proposal tally so emptied
  /// pairs can be pruned (mirrors BspRefiner's superstep-3 state).
  struct PairState {
    DirectedGainHistogram hist;
    uint64_t total = 0;
  };

  // Incrementally maintained kHistogramMatching master state: per-pair
  // histograms kept across rounds plus each vertex's last contribution
  // (pair key / bin), so one changed proposal costs two counter updates
  // instead of a term in an O(n) rebuild.
  std::unordered_map<uint64_t, PairState> hist_state_;
  std::vector<uint64_t> hist_last_pair_;  ///< kNoPair when not contributing
  std::vector<int32_t> hist_last_bin_;
  uint64_t hist_live_proposals_ = 0;
  bool hist_state_valid_ = false;
};

}  // namespace shp
