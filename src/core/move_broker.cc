#include "core/move_broker.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/proposal_matrix.h"

namespace shp {

namespace {

uint64_t PackPair(BucketId a, BucketId b) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint32_t>(b);
}

}  // namespace

void MoveBroker::CollectNetMoves(const std::vector<VertexId>& moved,
                                 const std::vector<BucketId>& original_bucket,
                                 const Partition& partition,
                                 MoveOutcome* outcome) {
  outcome->moves.reserve(outcome->num_moved);
  for (VertexId v : moved) {
    const BucketId now = partition.bucket_of(v);
    if (now != original_bucket[v]) {
      outcome->moves.push_back({v, original_bucket[v], now});
    }
  }
  SHP_DCHECK(outcome->moves.size() == outcome->num_moved);
}

void MoveBroker::TrimToBudget(uint64_t budget,
                              const std::vector<double>& gains,
                              std::vector<VertexId>* movers) {
  if (budget == 0 || movers->size() <= budget) return;
  std::nth_element(movers->begin(),
                   movers->begin() + static_cast<int64_t>(budget),
                   movers->end(), [&gains](VertexId a, VertexId b) {
                     if (gains[a] != gains[b]) return gains[a] > gains[b];
                     return a < b;
                   });
  movers->resize(budget);
  std::sort(movers->begin(), movers->end());
}

MoveOutcome MoveBroker::Apply(const MoveTopology& topo,
                              const std::vector<BucketId>& targets,
                              const std::vector<double>& gains, uint64_t seed,
                              uint64_t iteration, Partition* partition,
                              ThreadPool* pool,
                              const std::vector<VertexId>* changed) {
  if (pool == nullptr) pool = &GlobalThreadPool();
  switch (options_.strategy) {
    case MoveBrokerOptions::Strategy::kPlainProbability:
      return ApplyPlain(topo, targets, gains, seed, iteration, partition,
                        pool);
    case MoveBrokerOptions::Strategy::kHistogramMatching:
      return ApplyHistogram(topo, targets, gains, seed, iteration, partition,
                            pool, changed);
    case MoveBrokerOptions::Strategy::kExactPairing:
      return ApplyExactPairing(topo, targets, gains, seed, iteration,
                               partition);
  }
  SHP_CHECK(false) << "unknown strategy";
  return {};
}

MoveOutcome MoveBroker::ApplyExactPairing(const MoveTopology& topo,
                                          const std::vector<BucketId>& targets,
                                          const std::vector<double>& gains,
                                          uint64_t seed, uint64_t iteration,
                                          Partition* partition) {
  const VertexId n = partition->num_data();
  SHP_CHECK_EQ(targets.size(), n);
  MoveOutcome outcome;

  // Two sorted queues per unordered bucket pair (§3.4 "ideal serial
  // implementation"): queue[(i,j)] holds vertices of i targeting j.
  std::unordered_map<uint64_t, std::vector<VertexId>> queues;
  for (VertexId v = 0; v < n; ++v) {
    if (targets[v] < 0) continue;
    ++outcome.num_proposals;
    queues[PackPair(partition->bucket_of(v), targets[v])].push_back(v);
  }
  std::vector<uint64_t> keys;
  keys.reserve(queues.size());
  for (auto& [key, queue] : queues) {
    // Highest gain first; stable tie-break on a per-iteration hash so the
    // same vertices are not perpetually preferred.
    std::sort(queue.begin(), queue.end(), [&](VertexId a, VertexId b) {
      if (gains[a] != gains[b]) return gains[a] > gains[b];
      return HashCombine(seed, iteration, a) <
             HashCombine(seed, iteration, b);
    });
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());

  // Pair off the two queues of each pair while the summed gain is positive;
  // each executed pair is one exact swap, so bucket sizes never change and
  // no repair is needed. Leftover one-sided positive demand may still use
  // capacity slack, highest gain first.
  std::vector<int64_t> slack(static_cast<size_t>(topo.k), 0);
  for (BucketId b = 0; b < topo.k; ++b) {
    slack[static_cast<size_t>(b)] =
        static_cast<int64_t>(topo.capacity[static_cast<size_t>(b)]) -
        static_cast<int64_t>(partition->bucket_size(b));
  }
  auto execute = [&](VertexId v) {
    outcome.moves.push_back({v, partition->bucket_of(v), targets[v]});
    partition->Move(v, targets[v]);
    ++outcome.num_moved;
    outcome.gain_moved += gains[v];
  };
  // Per-round move budget at pair granularity: a swap is only started when
  // both of its moves fit (executing half a pair would unbalance the
  // buckets this strategy promises never to touch).
  const uint64_t budget = options_.max_moves_per_round;
  auto budget_allows = [&](uint64_t extra_moves) {
    return budget == 0 || outcome.num_moved + extra_moves <= budget;
  };
  for (uint64_t key : keys) {
    const BucketId i = static_cast<BucketId>(key >> 32);
    const BucketId j = static_cast<BucketId>(key & 0xffffffffULL);
    if (i > j && queues.count(PackPair(j, i)) > 0) continue;  // done as (j,i)
    auto& forward = queues[key];
    static const std::vector<VertexId> kEmpty;
    const auto it_back = queues.find(PackPair(j, i));
    const std::vector<VertexId>& backward =
        it_back != queues.end() ? it_back->second : kEmpty;
    // Cap the swapped fraction below 1 for the same reason as the
    // probabilistic movers: swapping two whole buckets merely relabels them.
    const size_t max_pairs = std::max<size_t>(
        1, static_cast<size_t>(options_.max_move_probability *
                               std::min(forward.size(), backward.size())));
    size_t a = 0, b = 0;
    while (a < forward.size() && b < backward.size() && a < max_pairs &&
           budget_allows(2) &&
           gains[forward[a]] + gains[backward[b]] > 0.0) {
      execute(forward[a++]);
      execute(backward[b++]);
    }
    if (options_.use_capacity_slack) {
      // One-sided extras into spare capacity (positive gains only).
      while (a < forward.size() && gains[forward[a]] > 0.0 &&
             budget_allows(1) &&
             slack[static_cast<size_t>(j)] > 0) {
        --slack[static_cast<size_t>(j)];
        ++slack[static_cast<size_t>(i)];
        execute(forward[a++]);
      }
      while (b < backward.size() && gains[backward[b]] > 0.0 &&
             budget_allows(1) &&
             slack[static_cast<size_t>(i)] > 0) {
        --slack[static_cast<size_t>(i)];
        ++slack[static_cast<size_t>(j)];
        execute(backward[b++]);
      }
    }
  }
  // Pairing order is per bucket pair; normalize to the ascending-by-vertex
  // invariant the incremental consumers rely on.
  std::sort(outcome.moves.begin(), outcome.moves.end(),
            [](const VertexMove& a, const VertexMove& b) { return a.v < b.v; });
  return outcome;
}

MoveOutcome MoveBroker::ApplyPlain(const MoveTopology& topo,
                                   const std::vector<BucketId>& targets,
                                   const std::vector<double>& gains,
                                   uint64_t seed, uint64_t iteration,
                                   Partition* partition, ThreadPool* pool) {
  const VertexId n = partition->num_data();
  SHP_CHECK_EQ(targets.size(), n);
  MoveOutcome outcome;

  // "Update matrix": S[i][j] = #vertices in i proposing j with gain > 0.
  // (Paper Algorithm 1 counts only strictly improving proposals.)
  ProposalMatrix matrix;
  for (VertexId v = 0; v < n; ++v) {
    if (targets[v] < 0 || gains[v] <= 0.0) continue;
    ++outcome.num_proposals;
    matrix.Add(partition->bucket_of(v), targets[v]);
  }

  // "Change buckets": move with probability min(S_ij, S_ji)/S_ij. The random
  // draw is a pure hash of (seed, iteration, v) so the outcome is
  // independent of thread scheduling. Per-pair probabilities are computed
  // once; the draw floor skips pairs at probability 0 (no reciprocal
  // demand) — those draws can never fire, so the trajectory is unchanged.
  std::unordered_map<uint64_t, double> pair_prob;
  pair_prob.reserve(matrix.num_pairs());
  for (const auto& [i, j] : matrix.SortedPairs()) {
    pair_prob[PackPair(i, j)] = matrix.MoveProbability(i, j);
  }
  const bool skip_dead = options_.skip_zero_probability_pairs;
  std::vector<uint8_t> decided(n, 0);
  const size_t num_workers = std::max<size_t>(1, pool->num_threads());
  std::vector<uint64_t> draws_per_worker(num_workers, 0);
  pool->ParallelFor(n, [&](size_t begin, size_t end, size_t w) {
    uint64_t draws = 0;
    for (size_t v = begin; v < end; ++v) {
      if (targets[v] < 0 || gains[v] <= 0.0) continue;
      const BucketId from =
          partition->bucket_of(static_cast<VertexId>(v));
      const double pair = pair_prob.at(PackPair(from, targets[v]));
      if (skip_dead && pair <= 0.0) continue;
      ++draws;
      const double prob = std::min(pair, options_.max_move_probability) *
                          options_.probability_damping;
      if (HashToUnitDouble(seed ^ 0xabcdef12, iteration, v) < prob) {
        decided[v] = 1;
      }
    }
    draws_per_worker[w] += draws;
  });
  for (const uint64_t d : draws_per_worker) outcome.num_draws += d;

  std::vector<VertexId> moved;
  for (VertexId v = 0; v < n; ++v) {
    if (decided[v]) moved.push_back(v);
  }
  // Per-round move budget (partition stability): keep only the
  // highest-gain drawn movers. Applied before execution, so post-repair
  // executed moves can only be fewer.
  TrimToBudget(options_.max_moves_per_round, gains, &moved);
  std::vector<BucketId> original(n, -1);
  for (VertexId v : moved) {
    original[v] = partition->bucket_of(v);
    partition->Move(v, targets[v]);
    ++outcome.num_moved;
    outcome.gain_moved += gains[v];
  }
  RepairBalance(topo, moved, original, gains, partition, &outcome);
  CollectNetMoves(moved, original, *partition, &outcome);
  return outcome;
}

double PairProbabilityTable::Lookup(const GainBinning& binning, BucketId from,
                                    BucketId to, double gain) const {
  const auto it = probabilities.find(PackPair(from, to));
  if (it == probabilities.end()) return 0.0;
  return it->second[static_cast<size_t>(binning.BinFor(gain))];
}

std::unordered_set<uint64_t> PairProbabilityTable::LivePairKeys() const {
  std::unordered_set<uint64_t> live;
  for (const auto& [key, probs] : probabilities) {
    for (const double p : probs) {
      if (p > 0.0) {
        live.insert(key);
        break;
      }
    }
  }
  return live;
}

PairProbabilityTable ComputePairProbabilities(
    const MoveTopology& topo, const GainBinning& binning,
    const std::unordered_map<uint64_t, DirectedGainHistogram>& histograms,
    const Partition& partition, bool use_capacity_slack) {
  // Match each unordered pair once, in deterministic key order.
  std::vector<uint64_t> keys;
  keys.reserve(histograms.size());
  for (const auto& [key, h] : histograms) keys.push_back(key);
  std::sort(keys.begin(), keys.end());

  PairProbabilityTable table;
  for (uint64_t key : keys) {
    const BucketId i = static_cast<BucketId>(key >> 32);
    const BucketId j = static_cast<BucketId>(key & 0xffffffffULL);
    if (i > j && histograms.count(PackPair(j, i)) > 0) {
      continue;  // handled from the (j, i) side
    }
    const auto it_fwd = histograms.find(PackPair(i, j));
    const auto it_bwd = histograms.find(PackPair(j, i));
    DirectedGainHistogram fwd;
    DirectedGainHistogram bwd;
    if (it_fwd != histograms.end()) fwd = it_fwd->second;
    if (it_bwd != histograms.end()) bwd = it_bwd->second;
    if (fwd.counts.empty()) fwd.Init(binning);
    if (bwd.counts.empty()) bwd.Init(binning);
    PairMoveProbabilities match = MatchHistograms(binning, fwd, bwd);
    table.probabilities[PackPair(i, j)] = std::move(match.forward);
    table.probabilities[PackPair(j, i)] = std::move(match.backward);
  }

  // §3.4 imbalanced swaps: spend spare capacity on unmatched positive bins,
  // highest gain first. Expected inflow is tracked so slack is not
  // oversubscribed in expectation.
  if (use_capacity_slack) {
    std::vector<double> slack(static_cast<size_t>(topo.k), 0.0);
    for (BucketId b = 0; b < topo.k; ++b) {
      slack[static_cast<size_t>(b)] =
          static_cast<double>(topo.capacity[static_cast<size_t>(b)]) -
          static_cast<double>(partition.bucket_size(b));
    }
    for (uint64_t key : keys) {
      const BucketId to = static_cast<BucketId>(key & 0xffffffffULL);
      auto& probs = table.probabilities[key];
      const auto& counts = histograms.at(key).counts;
      double& budget = slack[static_cast<size_t>(to)];
      for (int bin = binning.num_bins() - 1; bin > binning.zero_bin();
           --bin) {
        if (budget <= 0.0) break;
        const double unmatched =
            static_cast<double>(counts[static_cast<size_t>(bin)]) *
            (1.0 - probs[static_cast<size_t>(bin)]);
        if (unmatched <= 0.0) continue;
        const double extra = std::min(unmatched, budget);
        probs[static_cast<size_t>(bin)] +=
            extra / static_cast<double>(counts[static_cast<size_t>(bin)]);
        probs[static_cast<size_t>(bin)] =
            std::min(1.0, probs[static_cast<size_t>(bin)]);
        budget -= extra;
      }
    }
  }
  return table;
}

void MoveBroker::UpdateHistContribution(VertexId v,
                                        const std::vector<BucketId>& targets,
                                        const std::vector<double>& gains,
                                        const Partition& partition) {
  const uint64_t old_pair = hist_last_pair_[v];
  if (old_pair != kNoPair) {
    const auto it = hist_state_.find(old_pair);
    SHP_DCHECK(it != hist_state_.end());
    const size_t bin = static_cast<size_t>(hist_last_bin_[v]);
    SHP_DCHECK(it->second.hist.counts[bin] > 0);
    --it->second.hist.counts[bin];  // DirectedGainHistogram has no Remove
    --it->second.total;
    --hist_live_proposals_;
    hist_last_pair_[v] = kNoPair;
  }
  if (targets[v] < 0) return;
  const uint64_t pair = PackPair(partition.bucket_of(v), targets[v]);
  PairState& state = hist_state_[pair];
  if (state.hist.counts.empty()) state.hist.Init(options_.binning);
  const int bin = options_.binning.BinFor(gains[v]);
  ++state.hist.counts[static_cast<size_t>(bin)];
  ++state.total;
  ++hist_live_proposals_;
  hist_last_pair_[v] = pair;
  hist_last_bin_[v] = bin;
}

MoveOutcome MoveBroker::ApplyHistogram(const MoveTopology& topo,
                                       const std::vector<BucketId>& targets,
                                       const std::vector<double>& gains,
                                       uint64_t seed, uint64_t iteration,
                                       Partition* partition, ThreadPool* pool,
                                       const std::vector<VertexId>* changed) {
  const VertexId n = partition->num_data();
  SHP_CHECK_EQ(targets.size(), n);
  MoveOutcome outcome;
  const GainBinning& binning = options_.binning;

  // Directed gain histograms per ordered bucket pair (the master state;
  // O(#occupied pairs × bins) memory, k²·bins worst case as in the paper).
  // Maintained incrementally when the caller hands a changed-proposal list:
  // only the listed vertices' contributions are re-derived — O(|changed|)
  // counter updates instead of the O(n) re-accumulation.
  const bool incremental = changed != nullptr && hist_state_valid_ &&
                           hist_last_pair_.size() == static_cast<size_t>(n);
  if (incremental) {
    for (const VertexId v : *changed) {
      UpdateHistContribution(v, targets, gains, *partition);
    }
  } else {
    hist_state_.clear();
    hist_last_pair_.assign(static_cast<size_t>(n), kNoPair);
    hist_last_bin_.assign(static_cast<size_t>(n), 0);
    hist_live_proposals_ = 0;
    for (VertexId v = 0; v < n; ++v) {
      UpdateHistContribution(v, targets, gains, *partition);
    }
    hist_state_valid_ = true;
  }
  outcome.num_proposals = hist_live_proposals_;

  // Materialize the pruned live map for the shared master computation (and
  // drop emptied pairs so stale bucket pairs never accumulate).
  std::unordered_map<uint64_t, DirectedGainHistogram> histograms;
  histograms.reserve(hist_state_.size());
  for (auto it = hist_state_.begin(); it != hist_state_.end();) {
    if (it->second.total == 0) {
      it = hist_state_.erase(it);
      continue;
    }
    histograms.emplace(it->first, it->second.hist);
    ++it;
  }

#ifndef NDEBUG
  {
    // The incrementally patched histograms must equal a from-scratch
    // accumulation — the changed-proposal-vs-full-histogram equivalence
    // gate.
    std::unordered_map<uint64_t, DirectedGainHistogram> ref;
    uint64_t ref_proposals = 0;
    for (VertexId v = 0; v < n; ++v) {
      if (targets[v] < 0) continue;
      ++ref_proposals;
      auto& h = ref[PackPair(partition->bucket_of(v), targets[v])];
      if (h.counts.empty()) h.Init(binning);
      h.Add(binning, gains[v]);
    }
    SHP_CHECK_EQ(ref_proposals, outcome.num_proposals);
    SHP_CHECK_EQ(ref.size(), histograms.size());
    for (const auto& [key, h] : ref) {
      const auto it = histograms.find(key);
      SHP_CHECK(it != histograms.end() && it->second.counts == h.counts)
          << "incremental histogram diverged from full accumulation (pair "
          << (key >> 32) << "->" << (key & 0xffffffffULL) << ")";
    }
  }
#endif

  const PairProbabilityTable table = ComputePairProbabilities(
      topo, binning, histograms, *partition, options_.use_capacity_slack);

  // Superstep 4: probabilistic simultaneous moves. Draw floor: a proposal
  // whose pair row is all zero draws against probability 0 in every bin —
  // it can never fire, so skipping the hash leaves the trajectory unchanged
  // while the draw scan shrinks to the pairs the master matched.
  const std::unordered_set<uint64_t> live_pairs =
      options_.skip_zero_probability_pairs
          ? table.LivePairKeys()
          : std::unordered_set<uint64_t>{};
  const bool skip_dead = options_.skip_zero_probability_pairs;
  std::vector<uint8_t> decided(n, 0);
  const size_t num_workers = std::max<size_t>(1, pool->num_threads());
  std::vector<uint64_t> draws_per_worker(num_workers, 0);
  pool->ParallelFor(n, [&](size_t begin, size_t end, size_t w) {
    uint64_t draws = 0;
    for (size_t v = begin; v < end; ++v) {
      if (targets[v] < 0) continue;
      const BucketId from =
          partition->bucket_of(static_cast<VertexId>(v));
      if (skip_dead && live_pairs.count(PackPair(from, targets[v])) == 0) {
        continue;
      }
      ++draws;
      const double prob =
          std::min(table.Lookup(binning, from, targets[v], gains[v]),
                   options_.max_move_probability) *
          options_.probability_damping;
      if (HashToUnitDouble(seed ^ 0x5108e77a, iteration, v) < prob) {
        decided[v] = 1;
      }
    }
    draws_per_worker[w] += draws;
  });
  for (const uint64_t d : draws_per_worker) outcome.num_draws += d;

  std::vector<VertexId> moved;
  for (VertexId v = 0; v < n; ++v) {
    if (decided[v]) moved.push_back(v);
  }
  // Per-round move budget (partition stability): keep only the
  // highest-gain drawn movers. Applied before execution, so post-repair
  // executed moves can only be fewer.
  TrimToBudget(options_.max_moves_per_round, gains, &moved);
  std::vector<BucketId> original(n, -1);
  for (VertexId v : moved) {
    original[v] = partition->bucket_of(v);
    partition->Move(v, targets[v]);
    ++outcome.num_moved;
    outcome.gain_moved += gains[v];
  }
  RepairBalance(topo, moved, original, gains, partition, &outcome);
  CollectNetMoves(moved, original, *partition, &outcome);
  return outcome;
}

void MoveBroker::RepairBalance(const MoveTopology& topo,
                               const std::vector<VertexId>& moved,
                               const std::vector<BucketId>& original_bucket,
                               const std::vector<double>& gains,
                               Partition* partition, MoveOutcome* outcome) {
  // Group this round's inbound moves per destination bucket, lowest gain
  // first (ties broken by vertex id) so reversions sacrifice the least.
  std::unordered_map<BucketId, std::vector<VertexId>> inbound;
  for (VertexId v : moved) inbound[partition->bucket_of(v)].push_back(v);
  for (auto& [b, candidates] : inbound) {
    std::sort(candidates.begin(), candidates.end(),
              [&gains](VertexId a, VertexId c) {
                if (gains[a] != gains[c]) return gains[a] < gains[c];
                return a < c;
              });
  }

  // Iterate to a fixpoint: a reversion returns a vertex to its original
  // bucket, which may push *that* bucket over capacity, whose own arrivals
  // are then revertible. Reverting every arrival restores the pre-round
  // state, which satisfied all capacities, so the loop terminates with all
  // buckets within capacity (or with nothing left to revert, if the caller
  // handed us an infeasible pre-round state).
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<BucketId> buckets;
    buckets.reserve(inbound.size());
    for (const auto& [b, vs] : inbound) {
      if (!vs.empty()) buckets.push_back(b);
    }
    std::sort(buckets.begin(), buckets.end());
    for (BucketId b : buckets) {
      const uint64_t cap = topo.capacity[static_cast<size_t>(b)];
      auto& candidates = inbound[b];
      size_t next = 0;
      while (partition->bucket_size(b) > cap && next < candidates.size()) {
        const VertexId v = candidates[next++];
        partition->Move(v, original_bucket[v]);
        ++outcome->num_reverted;
        --outcome->num_moved;
        outcome->gain_moved -= gains[v];
        changed = true;
      }
      candidates.erase(candidates.begin(),
                       candidates.begin() + static_cast<int64_t>(next));
    }
  }
}

}  // namespace shp
