#include "core/recursive.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/move_topology.h"
#include "core/partition.h"

namespace shp {

namespace {

/// A bucket-tree node: final-leaf range [lo, hi); bucket id = lo.
struct Node {
  BucketId lo;
  BucketId hi;
  BucketId size() const { return hi - lo; }
};

/// Splits [lo, hi) into ≤ r child ranges differing in size by at most 1.
std::vector<Node> SplitNode(const Node& node, int r) {
  const BucketId size = node.size();
  const int children = std::min<int>(r, size);
  std::vector<Node> out;
  out.reserve(static_cast<size_t>(children));
  BucketId cursor = node.lo;
  for (int c = 0; c < children; ++c) {
    const BucketId span = size / children + (c < size % children ? 1 : 0);
    out.push_back({cursor, cursor + span});
    cursor += span;
  }
  SHP_DCHECK(cursor == node.hi);
  return out;
}

}  // namespace

RecursivePartitioner::RecursivePartitioner(const RecursiveOptions& options)
    : options_(options) {
  SHP_CHECK_GT(options.k, 1);
  SHP_CHECK_GE(options.branching, 2);
  SHP_CHECK_GT(options.p, 0.0);
  SHP_CHECK_LE(options.p, 1.0);
}

uint32_t RecursivePartitioner::NumLevels() const {
  uint32_t levels = 0;
  BucketId reach = 1;
  while (reach < options_.k) {
    reach = static_cast<BucketId>(
        std::min<int64_t>(static_cast<int64_t>(reach) * options_.branching,
                          options_.k));
    ++levels;
  }
  return levels;
}

RecursiveResult RecursivePartitioner::Run(const BipartiteGraph& graph,
                                          ThreadPool* pool) const {
  if (pool == nullptr) pool = &GlobalThreadPool();
  const VertexId n = graph.num_data();
  const BucketId k = options_.k;
  const uint32_t total_levels = NumLevels();

  RecursiveResult result;
  result.k = k;

  Partition partition(n, k);  // everything starts in bucket 0 = root node
  std::vector<Node> active{{0, k}};

  RefinerOptions refiner_options = options_.refiner;
  refiner_options.p = options_.p;

  // One refiner reused across levels whenever the gain base allows: within
  // a level it keeps the neighbor data (and, for the BSP engine, the
  // accumulator replicas) alive across iterations, and across a level
  // advance the engines self-heal from the redistribution diff — the BSP
  // delta exchange re-restricts its replicas to the new group windows
  // instead of re-bootstrapping. Only a future_splits change forces a new
  // refiner (the pow base B = 1 − p/t differs, invalidating every cached
  // float).
  std::unique_ptr<RefinerInterface> refiner;
  uint32_t refiner_future_splits = 0;

  for (uint32_t level = 1; !active.empty(); ++level) {
    // 1. Split every active node; compute the new node set and topology.
    std::vector<Node> next_active;
    MoveTopology topo;
    topo.k = k;
    topo.full_k = false;
    topo.group_of_bucket.assign(static_cast<size_t>(k), -1);
    topo.capacity.assign(static_cast<size_t>(k), 0);

    // ε for this level (§3.4: scale by completed-split fraction).
    const double eps_level =
        options_.scale_epsilon_by_depth
            ? options_.epsilon * static_cast<double>(level) /
                  static_cast<double>(total_levels)
            : options_.epsilon;

    // Future-split factor: leaves per child bucket after this level.
    BucketId max_child_leaves = 1;

    std::vector<std::pair<Node, std::vector<Node>>> splits;
    for (const Node& node : active) {
      std::vector<Node> children = SplitNode(node, options_.branching);
      SHP_DCHECK(children.size() >= 2);
      auto& group = topo.group_children.emplace_back();
      for (const Node& child : children) {
        group.push_back(child.lo);
        topo.group_of_bucket[static_cast<size_t>(child.lo)] =
            static_cast<int32_t>(topo.group_children.size() - 1);
        // Capacity proportional to the child's share of final leaves.
        topo.capacity[static_cast<size_t>(child.lo)] =
            MoveTopology::BucketCapacity(n, k, child.size(), eps_level);
        max_child_leaves = std::max(max_child_leaves, child.size());
        if (child.size() > 1) next_active.push_back(child);
      }
      splits.emplace_back(node, std::move(children));
    }

    // 2. Random initial distribution of each node's vertices over its
    // children, with *exact* quotas proportional to child leaf counts:
    // vertices are hash-shuffled within their node and dealt to children by
    // quota. Distributionally this matches the paper's independent random
    // draws at scale, but it is feasible (within capacity) even for tiny
    // nodes, where independent draws can violate ε outright.
    struct ChildDist {
      std::vector<BucketId> child_lo;
      std::vector<BucketId> child_leaves;
      BucketId total_leaves = 0;
    };
    std::vector<ChildDist> dist_of(static_cast<size_t>(k));
    for (const auto& [node, children] : splits) {
      ChildDist& dist = dist_of[static_cast<size_t>(node.lo)];
      for (const Node& child : children) {
        dist.child_lo.push_back(child.lo);
        dist.child_leaves.push_back(child.size());
        dist.total_leaves += child.size();
      }
    }
    // Group vertices per split node.
    std::vector<std::vector<VertexId>> members(static_cast<size_t>(k));
    for (VertexId v = 0; v < n; ++v) {
      const BucketId current = partition.bucket_of(v);
      if (dist_of[static_cast<size_t>(current)].total_leaves > 0) {
        members[static_cast<size_t>(current)].push_back(v);
      }
    }
    for (const auto& [node, children] : splits) {
      auto& list = members[static_cast<size_t>(node.lo)];
      const ChildDist& dist = dist_of[static_cast<size_t>(node.lo)];
      // Hash-shuffle (deterministic per seed and level).
      std::sort(list.begin(), list.end(), [&](VertexId a, VertexId b) {
        const uint64_t ha = HashCombine(options_.seed ^ 0x2ec5,
                                        level * 0x9e3779b9ULL + a, 0);
        const uint64_t hb = HashCombine(options_.seed ^ 0x2ec5,
                                        level * 0x9e3779b9ULL + b, 0);
        if (ha != hb) return ha < hb;
        return a < b;
      });
      // Deal by quota (largest remainder handled by the trailing child).
      size_t cursor = 0;
      for (size_t c = 0; c < dist.child_lo.size(); ++c) {
        size_t quota =
            list.size() * dist.child_leaves[c] / dist.total_leaves;
        if (c + 1 == dist.child_lo.size()) quota = list.size() - cursor;
        for (size_t i = 0; i < quota && cursor < list.size(); ++i) {
          partition.Move(list[cursor++], dist.child_lo[c]);
        }
      }
    }

    // 3. Refine this level: all sibling groups concurrently, one Refiner
    // pass per iteration, per-vertex moves constrained to siblings.
    refiner_options.future_splits =
        options_.future_split_objective
            ? static_cast<uint32_t>(max_child_leaves)
            : 1;
    if (refiner == nullptr ||
        refiner_options.future_splits != refiner_future_splits) {
      refiner = options_.refiner_factory
                    ? options_.refiner_factory(graph, refiner_options)
                    : std::make_unique<Refiner>(graph, refiner_options);
      refiner_future_splits = refiner_options.future_splits;
    }

    RecursiveLevelRecord record;
    record.level = level;
    record.active_groups = static_cast<uint32_t>(topo.group_children.size());
    for (uint32_t iter = 0; iter < options_.iterations_per_level; ++iter) {
      const IterationStats stats = refiner->RunIteration(
          topo, &partition, options_.seed + level, iter, pool);
      result.history.push_back(
          {static_cast<uint32_t>(result.history.size()), stats});
      ++record.iterations_run;
      record.total_moved += stats.num_moved;
      if (stats.moved_fraction < options_.min_move_fraction) break;
    }
    result.level_history.push_back(record);
    ++result.levels_run;
    active = std::move(next_active);
  }

  result.assignment = partition.assignment();
  return result;
}

}  // namespace shp
