// One local-refinement iteration of Algorithm 1, threaded.
//
// The iteration mirrors the four supersteps of paper Fig. 3:
//   1-2. rebuild query neighbor data and compute per-vertex move gains
//        (parallel over queries, then over data vertices),
//   3.   aggregate proposals at the "master" (MoveBroker),
//   4.   execute probabilistic moves and repair balance.
//
// Gains honor the MoveTopology constraint: direct k-way search uses the
// sparse-affinity best-target scan (k-independent per-vertex cost); grouped
// recursion evaluates each sibling candidate directly (O(r · deg(v))).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/move_broker.h"
#include "core/move_topology.h"
#include "core/partition.h"
#include "graph/bipartite_graph.h"
#include "objective/gain.h"
#include "objective/neighbor_data.h"

namespace shp {

class ThreadPool;

struct RefinerOptions {
  /// Fanout probability p ∈ (0, 1]; p = 1 optimizes fanout directly,
  /// p → 0 optimizes the clique-net objective (Lemmas 1-2).
  double p = 0.5;
  /// §3.4 future-split objective: optimize the projected p-fanout after the
  /// bucket splits into this many leaves (1 = plain p-fanout).
  uint32_t future_splits = 1;
  /// Propose the best target even when its gain is ≤ 0 (the histogram
  /// matcher can still pair it profitably). Plain strategy ignores them.
  bool propose_nonpositive = true;
  /// With this probability a vertex proposes a uniformly random bucket
  /// (with its true gain) instead of the argmax target. Deterministic
  /// argmax proposals herd onto few buckets, which starves the pairwise
  /// min(S_ij, S_ji) matching when buckets hold few vertices; a small
  /// exploration rate diversifies the proposal matrix. 0 disables
  /// (Algorithm 1 verbatim); the k-way driver defaults to a small value.
  double exploration_probability = 0.0;
  MoveBrokerOptions broker;
};

struct IterationStats {
  uint64_t num_proposals = 0;
  uint64_t num_moved = 0;
  uint64_t num_reverted = 0;
  double gain_moved = 0.0;
  /// num_moved / num_data — the convergence signal (paper Fig. 7b).
  double moved_fraction = 0.0;
};

/// Interface over refinement iteration engines. The threaded in-memory
/// Refiner below is the default; the BSP message-passing implementation in
/// engine/shp_bsp.h is a drop-in replacement used for the distributed
/// experiments.
class RefinerInterface {
 public:
  virtual ~RefinerInterface() = default;

  /// Runs one iteration of Algorithm 1. `anchor`/`anchor_penalty` implement
  /// incremental repartitioning (paper §5(i)): a move away from anchor[v] is
  /// charged `anchor_penalty`, a move back is credited the same amount.
  virtual IterationStats RunIteration(const MoveTopology& topo,
                                      Partition* partition, uint64_t seed,
                                      uint64_t iteration,
                                      ThreadPool* pool = nullptr,
                                      const std::vector<BucketId>* anchor =
                                          nullptr,
                                      double anchor_penalty = 0.0) = 0;
};

/// Factory installed into driver options to swap the iteration engine.
using RefinerFactory = std::function<std::unique_ptr<RefinerInterface>(
    const BipartiteGraph& graph, const RefinerOptions& options)>;

class Refiner : public RefinerInterface {
 public:
  /// The graph must outlive the refiner.
  Refiner(const BipartiteGraph& graph, const RefinerOptions& options);

  IterationStats RunIteration(const MoveTopology& topo, Partition* partition,
                              uint64_t seed, uint64_t iteration,
                              ThreadPool* pool = nullptr,
                              const std::vector<BucketId>* anchor = nullptr,
                              double anchor_penalty = 0.0) override;

  /// Neighbor data from the most recent iteration (for diagnostics/tests).
  const QueryNeighborData& neighbor_data() const { return ndata_; }

 private:
  const BipartiteGraph& graph_;
  RefinerOptions options_;
  GainComputer gain_;
  MoveBroker broker_;
  QueryNeighborData ndata_;
  std::vector<BucketId> targets_;
  std::vector<double> gains_;
};

}  // namespace shp
