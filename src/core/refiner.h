// One local-refinement iteration of Algorithm 1, threaded.
//
// The iteration mirrors the four supersteps of paper Fig. 3:
//   1-2. maintain query neighbor data and compute per-vertex move gains
//        (parallel over queries, then over data vertices),
//   3.   aggregate proposals at the "master" (MoveBroker),
//   4.   execute probabilistic moves and repair balance.
//
// Supersteps 1-2 are *incremental* across iterations (the paper's Giraph
// implementation amortizes this state the same way): the neighbor data is
// built once and then patched with each round's executed move list, and a
// vertex's proposal is recomputed only when the neighbor data of one of its
// queries changed (or its exploration draw fires). In steady state — moved
// fraction of a few percent — per-iteration work is proportional to the
// blast radius of the moves, not to |E|. A full rebuild happens only when
// the caller hands in an assignment, topology, or anchor the refiner has not
// seen (detected, never assumed), and debug builds cross-check the
// incremental state against a from-scratch rebuild every iteration.
//
// Superstep 2 has two scan directions (RefinerOptions::sweep_mode):
//
//  * pull — each recomputed vertex gathers the entry lists of all its
//    adjacent queries (GainComputer::FindBestTarget). Exact reference path;
//    bit-identical between the incremental and rebuild-everything variants.
//  * push — the query-major affinity sweep (objective/affinity_sweep.h):
//    per-vertex affinity accumulators are built by streaming the arena once
//    in query order and then patched from the bucket-count delta records
//    ApplyMoves emits, so a steady-state recompute is one sequential scan
//    of the vertex's own accumulator instead of a random-access gather.
//    Push changes float summation order, so its proposals match pull only
//    up to accumulation error: same targets modulo gain ties ≤ ~1e-9,
//    gains within rtol ~1e-6 (debug builds verify this per iteration; see
//    docs/refinement.md for the tolerance story).
//
// Gains honor the MoveTopology constraint: direct k-way search uses the
// sparse-affinity best-target scan (k-independent per-vertex cost); grouped
// recursion either evaluates each sibling candidate directly against the
// neighbor data (pull, O(r · deg(v))) or scans the group-restricted window
// of the same push accumulators (GainComputer::FindBestTargetPushGrouped) —
// the accumulators are topology-free, so recursion levels re-slice the
// active window instead of rebuilding state.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/move_broker.h"
#include "core/move_topology.h"
#include "core/partition.h"
#include "graph/bipartite_graph.h"
#include "objective/affinity_sweep.h"
#include "objective/gain.h"
#include "objective/neighbor_data.h"

namespace shp {

class ThreadPool;

struct RefinerOptions {
  /// Fanout probability p ∈ (0, 1]; p = 1 optimizes fanout directly,
  /// p → 0 optimizes the clique-net objective (Lemmas 1-2).
  double p = 0.5;
  /// §3.4 future-split objective: optimize the projected p-fanout after the
  /// bucket splits into this many leaves (1 = plain p-fanout).
  uint32_t future_splits = 1;
  /// Propose the best target even when its gain is ≤ 0 (the histogram
  /// matcher can still pair it profitably). Plain strategy ignores them.
  bool propose_nonpositive = true;
  /// With this probability a vertex proposes a uniformly random bucket
  /// (with its true gain) instead of the argmax target. Deterministic
  /// argmax proposals herd onto few buckets, which starves the pairwise
  /// min(S_ij, S_ji) matching when buckets hold few vertices; a small
  /// exploration rate diversifies the proposal matrix. 0 disables
  /// (Algorithm 1 verbatim); the k-way driver defaults to a small value.
  double exploration_probability = 0.0;
  /// Draw the ≈ n·exploration_probability exploring vertices up front into a
  /// compact firing list (sampling with replacement over hashed indices)
  /// instead of hashing every vertex per round. This lets the steady-state
  /// pass iterate only the recompute list — blast radius ∪ last round's
  /// explorers ∪ this round's firing list — never touching clean vertices.
  /// The drawn set differs from the legacy per-vertex Bernoulli draw
  /// (statistics match, trajectories don't), so the legacy draw stays
  /// selectable. (Note: even with the legacy draw, trajectories can differ
  /// from earlier revisions on exact affinity ties — the best-target scan
  /// now tie-breaks on the lowest bucket id instead of first encounter, so
  /// pull and push resolve ties identically.)
  bool preselect_exploration = true;
  /// Superstep-2 scan direction. kAuto uses push whenever it is available:
  /// a nonzero pow base (p < 1 or future_splits > 1); only the p = 1, t = 1
  /// limit falls back to pull. Grouped recursion windows run push over the
  /// group-restricted accumulator view (move_topology.h GroupWindow).
  /// The BSP engine (engine/shp_bsp.h) keys its superstep-2 *exchange* off
  /// the same switch: kPull reships dirty queries' full neighbor data (the
  /// reference), kPush/kAuto ship sparse NeighborDelta records and run the
  /// accumulator push sweep on the data workers (docs/distributed.md).
  enum class SweepMode { kPull, kPush, kAuto };
  SweepMode sweep_mode = SweepMode::kAuto;
  /// Maintain neighbor data and proposals incrementally across iterations
  /// (see the file comment). false forces the rebuild-everything path — the
  /// quality/latency reference the benchmarks compare against.
  bool incremental = true;
  /// High-churn fallback: when a round moves more than this fraction of the
  /// data vertices, patching the carried state costs more than the counting-
  /// sort rebuild, so the refiner drops it and rebuilds next iteration.
  /// Purely a cost decision — results are identical either way. 1.0 always
  /// patches.
  double incremental_rebuild_fraction = 0.15;
  MoveBrokerOptions broker;
};

struct IterationStats {
  uint64_t num_proposals = 0;
  uint64_t num_moved = 0;
  uint64_t num_reverted = 0;
  double gain_moved = 0.0;
  /// num_moved / num_data — the convergence signal (paper Fig. 7b).
  double moved_fraction = 0.0;
  /// True when this iteration rebuilt the neighbor data from scratch rather
  /// than patching it (first iteration, or assignment/topology/anchor
  /// drift). The BSP engine reports its announce-everything superstep-1
  /// scans here (it patches replicas instead of rebuilding).
  bool full_rebuild = false;
  /// True when superstep 2 ran the query-major push sweep this iteration
  /// (for the BSP engine: delta exchange + accumulator push).
  bool push_sweep = false;
  /// Data vertices whose proposal was recomputed this iteration (equals
  /// num_data on a full rebuild; the incremental win is this shrinking).
  uint64_t num_recomputed = 0;
  /// NeighborDelta records consumed by the affinity sweep (push only) —
  /// proxy for the steady-state patch volume. The BSP engine counts each
  /// record once at its emitting query owner; the superstep-2 wire volume
  /// is larger by the destination fan-out (records × touched workers, see
  /// SuperstepStats traffic).
  uint64_t num_delta_records = 0;
  /// Superstep-4 probability draws actually evaluated. Proposals whose
  /// (from, target) probability-table row is all zero skip the draw (it can
  /// never fire), so on a converged instance this drops below
  /// num_proposals while the move trajectory is unchanged.
  uint64_t num_draws = 0;

  // ---- fault-tolerant superstep protocol (BSP engine only; all zero on
  // fault-free runs and on the in-memory Refiner) ----
  /// Wire anomalies detected this iteration (CRC/truncation/decode failures,
  /// stale epochs, sequence gaps and duplicates).
  uint64_t faults_detected = 0;
  /// Link-level retransmissions performed this iteration.
  uint64_t retransmits = 0;
  /// 1 when an unrecoverable link forced the replica-invalidation +
  /// full-reship recovery path this iteration.
  uint64_t reship_recoveries = 0;
  /// Links currently degraded to backoff (full-reship mode while > 0).
  uint64_t degraded_links = 0;
  /// Workers killed at this iteration's boundary and rebuilt from the
  /// authoritative partition state.
  uint64_t workers_recovered = 0;
  /// Workers stalled (straggling) this iteration.
  uint64_t stalled_workers = 0;
};

/// Interface over refinement iteration engines. The threaded in-memory
/// Refiner below is the default; the BSP message-passing implementation in
/// engine/shp_bsp.h is a drop-in replacement used for the distributed
/// experiments.
class RefinerInterface {
 public:
  virtual ~RefinerInterface() = default;

  /// Runs one iteration of Algorithm 1. `anchor`/`anchor_penalty` implement
  /// incremental repartitioning (paper §5(i)): a move away from anchor[v] is
  /// charged `anchor_penalty`, a move back is credited the same amount.
  virtual IterationStats RunIteration(const MoveTopology& topo,
                                      Partition* partition, uint64_t seed,
                                      uint64_t iteration,
                                      ThreadPool* pool = nullptr,
                                      const std::vector<BucketId>* anchor =
                                          nullptr,
                                      double anchor_penalty = 0.0) = 0;

  /// Caps executed (post-repair) moves of subsequent iterations at
  /// `max_moves` (0 = unlimited). The serving loop's per-epoch stability
  /// budget: it hands each iteration the remaining epoch budget so a live
  /// repartition migrates records at a bounded rate. Both engines forward
  /// this to MoveBrokerOptions::max_moves_per_round; the default is a
  /// no-op so third-party engines without move caps still satisfy the
  /// interface.
  virtual void SetMoveBudget(uint64_t max_moves) { (void)max_moves; }
};

/// Factory installed into driver options to swap the iteration engine.
using RefinerFactory = std::function<std::unique_ptr<RefinerInterface>(
    const BipartiteGraph& graph, const RefinerOptions& options)>;

class Refiner : public RefinerInterface {
 public:
  /// The graph must outlive the refiner.
  Refiner(const BipartiteGraph& graph, const RefinerOptions& options);

  IterationStats RunIteration(const MoveTopology& topo, Partition* partition,
                              uint64_t seed, uint64_t iteration,
                              ThreadPool* pool = nullptr,
                              const std::vector<BucketId>* anchor = nullptr,
                              double anchor_penalty = 0.0) override;

  void SetMoveBudget(uint64_t max_moves) override {
    options_.broker.max_moves_per_round = max_moves;
    broker_.set_max_moves_per_round(max_moves);
  }

  /// Neighbor data from the most recent iteration (for diagnostics/tests).
  const QueryNeighborData& neighbor_data() const { return ndata_; }

  /// Affinity accumulators from the most recent push iteration
  /// (diagnostics/tests; content is stale while running in pull mode).
  const AffinitySweep& affinity_sweep() const { return sweep_; }

  /// Most recent proposals, indexed by vertex (targets()[v] = -1 for "no
  /// proposal"). For diagnostics and the pull-vs-push equivalence harness.
  const std::vector<BucketId>& targets() const { return targets_; }
  const std::vector<double>& gains() const { return gains_; }

  /// From-scratch neighbor-data builds performed so far (diagnostics; an
  /// incremental steady state holds this at 1 per warm start).
  uint64_t num_full_rebuilds() const { return num_full_rebuilds_; }

  /// Full query-major accumulator builds performed so far (push mode; an
  /// incremental steady state holds this at 1 per warm start).
  uint64_t num_sweep_builds() const { return num_sweep_builds_; }

 private:
  /// A vertex's move proposal: argmax target and its gain (anchor-adjusted,
  /// nonpositive-filtered), or target = -1 for "no proposal".
  struct Proposal {
    BucketId target = -1;
    double gain = 0.0;
  };

  /// Reusable per-thread scratch for the k-way pull affinity scan; allocated
  /// once per (pool, k) shape instead of per chunk per iteration.
  struct Workspace {
    std::vector<double> affinity;
    std::vector<BucketId> touched;
  };

  /// Computes v's proposal from the current neighbor data (pull) or the
  /// affinity accumulators (push) — the single source of truth shared by
  /// the full pass, the steady-state pass, and the debug cross-checks.
  /// `explore_target` ≥ 0 makes this an exploration proposal (random target
  /// with its true gain); those depend on the iteration draw, so
  /// *cacheable comes back false.
  Proposal ComputeProposal(const MoveTopology& topo,
                           const Partition& partition, VertexId v,
                           BucketId explore_target, bool push,
                           const std::vector<BucketId>* anchor,
                           double anchor_penalty, Workspace* ws,
                           bool* cacheable) const;

  /// True iff the cached proposals were computed under an identical
  /// topology / anchor context.
  bool ContextMatches(const MoveTopology& topo,
                      const std::vector<BucketId>* anchor,
                      double anchor_penalty) const;
  void SnapshotContext(const MoveTopology& topo,
                       const std::vector<BucketId>* anchor,
                       double anchor_penalty);

  const BipartiteGraph& graph_;
  RefinerOptions options_;
  GainComputer gain_;
  MoveBroker broker_;

  // ---- state carried across iterations (valid while shadow matches) ----
  QueryNeighborData ndata_;
  bool ndata_valid_ = false;
  AffinitySweep sweep_;       ///< push-mode affinity accumulators
  bool sweep_valid_ = false;  ///< sweep_ reflects ndata_ (patched or built)
  std::vector<BucketId> shadow_assignment_;  ///< assignment ndata_ reflects
  std::vector<BucketId> targets_;   ///< cached proposal targets
  std::vector<double> gains_;       ///< cached proposal gains
  std::vector<uint8_t> cache_valid_;  ///< 0: must recompute (e.g. exploration)
  bool proposals_valid_ = false;
  std::vector<VertexId> dirty_list_;  ///< queries changed by last ApplyMoves
  std::vector<NeighborDelta> deltas_;  ///< delta records of last ApplyMoves
  std::vector<uint8_t> recompute_;    ///< per-vertex recompute mark
  std::vector<VertexId> stale_list_;  ///< last round's explorers (cache inv.)

  // Per-iteration exploration/work-list scratch (reused across iterations).
  std::vector<BucketId> explore_target_;  ///< preselected draw (-1 = none)
  std::vector<VertexId> firing_list_;     ///< this round's exploring vertices
  std::vector<VertexId> recompute_list_;  ///< compact steady-state work list
  std::vector<std::vector<VertexId>> collect_;  ///< per-worker claim lists

  // Cached proposal context (proposals depend on these beyond the ndata).
  MoveTopology cached_topo_;
  bool has_cached_topo_ = false;
  std::vector<BucketId> cached_anchor_;
  bool cached_has_anchor_ = false;
  double cached_anchor_penalty_ = 0.0;

  std::vector<Workspace> workspaces_;
  uint64_t num_full_rebuilds_ = 0;
  uint64_t num_sweep_builds_ = 0;
};

}  // namespace shp
