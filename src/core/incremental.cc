#include "core/incremental.h"

#include <algorithm>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace shp {

IncrementalRepartitioner::IncrementalRepartitioner(
    const IncrementalOptions& options)
    : options_(options) {
  SHP_CHECK_GE(options.move_penalty, 0.0);
  SHP_CHECK_GT(options.probability_damping, 0.0);
  SHP_CHECK_LE(options.probability_damping, 1.0);
}

IncrementalResult IncrementalRepartitioner::Repartition(
    const BipartiteGraph& graph, const std::vector<BucketId>& previous,
    ThreadPool* pool) const {
  const VertexId n = graph.num_data();
  const BucketId k = options_.base.k;

  IncrementalResult result;

  // Warm start: keep valid previous assignments; place new vertices into the
  // least-loaded bucket as they appear (deterministic, keeps balance).
  std::vector<BucketId> warm(n, -1);
  std::vector<uint64_t> sizes(static_cast<size_t>(k), 0);
  std::vector<BucketId> anchor(n, -1);
  for (VertexId v = 0; v < n; ++v) {
    if (v < previous.size() && previous[v] >= 0 && previous[v] < k) {
      warm[v] = previous[v];
      anchor[v] = previous[v];
      ++sizes[static_cast<size_t>(previous[v])];
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    if (warm[v] >= 0) continue;
    ++result.vertices_new;
    const auto it = std::min_element(sizes.begin(), sizes.end());
    const BucketId b = static_cast<BucketId>(it - sizes.begin());
    warm[v] = b;
    anchor[v] = b;  // a new vertex's "home" is its placement bucket
    ++sizes[static_cast<size_t>(b)];
  }

  ShpKOptions shp_options = options_.base;
  shp_options.refiner.broker.probability_damping =
      options_.probability_damping;
  ShpKPartitioner partitioner(shp_options);
  result.shp = partitioner.RunFrom(graph, warm, pool, nullptr, &anchor,
                                   options_.move_penalty);

  for (VertexId v = 0; v < n; ++v) {
    if (v < previous.size() && previous[v] >= 0 && previous[v] < k &&
        result.shp.assignment[v] != previous[v]) {
      ++result.vertices_relocated;
    }
  }
  return result;
}

}  // namespace shp
