#include "core/shp.h"

#include <algorithm>

#include "common/logging.h"
#include "core/partition.h"

namespace shp {

namespace {

class ShpKAdapter : public Partitioner {
 public:
  explicit ShpKAdapter(const ShpKOptions& options) : options_(options) {}

  std::string name() const override { return "SHP-k"; }

  Result<std::vector<BucketId>> Partition(const BipartiteGraph& graph,
                                          BucketId k,
                                          ThreadPool* pool) override {
    if (k < 2) return Status::InvalidArgument("k must be ≥ 2");
    ShpKOptions options = options_;
    options.k = k;
    ShpKPartitioner partitioner(options);
    return partitioner.Run(graph, pool).assignment;
  }

 private:
  ShpKOptions options_;
};

class ShpRecursiveAdapter : public Partitioner {
 public:
  explicit ShpRecursiveAdapter(const RecursiveOptions& options)
      : options_(options) {}

  std::string name() const override {
    return options_.branching == 2
               ? "SHP-2"
               : "SHP-r" + std::to_string(options_.branching);
  }

  Result<std::vector<BucketId>> Partition(const BipartiteGraph& graph,
                                          BucketId k,
                                          ThreadPool* pool) override {
    if (k < 2) return Status::InvalidArgument("k must be ≥ 2");
    RecursiveOptions options = options_;
    options.k = k;
    RecursivePartitioner partitioner(options);
    return partitioner.Run(graph, pool).assignment;
  }

 private:
  RecursiveOptions options_;
};

}  // namespace

std::unique_ptr<Partitioner> MakeShpK(const ShpKOptions& options) {
  return std::make_unique<ShpKAdapter>(options);
}

std::unique_ptr<Partitioner> MakeShpRecursive(
    const RecursiveOptions& options) {
  return std::make_unique<ShpRecursiveAdapter>(options);
}

PartitionSummary SummarizePartition(const BipartiteGraph& graph,
                                    const std::vector<BucketId>& assignment,
                                    BucketId k, double p, ThreadPool* pool) {
  PartitionSummary summary;
  summary.k = k;
  summary.fanout = AverageFanout(graph, assignment, pool);
  summary.p_fanout = AveragePFanout(graph, assignment, p, pool);
  summary.hyperedge_cut = HyperedgeCut(graph, assignment, pool);
  summary.clique_net_cut = CliqueNetCut(graph, assignment, pool);
  summary.imbalance =
      Partition::FromAssignment(assignment, k).ImbalanceRatio();
  return summary;
}

}  // namespace shp
