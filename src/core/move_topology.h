// Move topology: which buckets a vertex may move to, and each bucket's
// capacity.
//
// Direct k-way SHP uses one group containing all k buckets. Recursive
// partitioning constrains each vertex to the children of its current
// subtree node (paper §3.3: "data vertices are constrained as to which
// buckets they are allowed to be moved to"); every subtree being split
// contributes one group whose members are its child bucket ids.
//
// Bucket ids are final-leaf ids (see core/partition.h), so they are sparse
// within [0, k) during recursion; group membership is resolved through
// group_of_bucket.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "objective/neighbor_data.h"

namespace shp {

struct MoveTopology {
  BucketId k = 0;
  /// Fast path: a single group over the contiguous bucket range [0, k).
  bool full_k = false;
  /// Per group: the bucket ids a member vertex may occupy (size ≥ 2).
  std::vector<std::vector<BucketId>> group_children;
  /// bucket id -> group index, or -1 if the bucket is not being refined.
  std::vector<int32_t> group_of_bucket;
  /// Hard size cap per bucket id ( (1+ε)·n·leaves(bucket)/k ).
  std::vector<uint64_t> capacity;

  /// Topology for direct k-way partitioning of n vertices.
  static MoveTopology FullK(BucketId k, uint64_t n, double epsilon) {
    MoveTopology topo;
    topo.k = k;
    topo.full_k = true;
    topo.group_children.resize(1);
    topo.group_children[0].reserve(static_cast<size_t>(k));
    for (BucketId b = 0; b < k; ++b) topo.group_children[0].push_back(b);
    topo.group_of_bucket.assign(static_cast<size_t>(k), 0);
    topo.capacity.assign(static_cast<size_t>(k),
                         BucketCapacity(n, k, /*leaves=*/1, epsilon));
    return topo;
  }

  /// Hard capacity of a bucket owning `leaves` of the k final leaves:
  /// floor((1+ε)·n·leaves/k), clamped below by ceil(n·leaves/k) so a
  /// perfectly even split always fits (tiny instances may then exceed ε —
  /// the paper's constraint is likewise infeasible at ε = 0 there).
  static uint64_t BucketCapacity(uint64_t n, BucketId k, BucketId leaves,
                                 double epsilon) {
    const double share =
        static_cast<double>(n) * static_cast<double>(leaves) /
        static_cast<double>(k);
    const uint64_t cap =
        static_cast<uint64_t>(std::floor((1.0 + epsilon) * share + 1e-9));
    const uint64_t feasible =
        static_cast<uint64_t>(std::ceil(share - 1e-9));
    return std::max(cap, feasible);
  }
};

}  // namespace shp
