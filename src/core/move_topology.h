// Move topology: which buckets a vertex may move to, and each bucket's
// capacity.
//
// Direct k-way SHP uses one group containing all k buckets. Recursive
// partitioning constrains each vertex to the children of its current
// subtree node (paper §3.3: "data vertices are constrained as to which
// buckets they are allowed to be moved to"); every subtree being split
// contributes one group whose members are its child bucket ids.
//
// Bucket ids are final-leaf ids (see core/partition.h), so they are sparse
// within [0, k) during recursion; group membership is resolved through
// group_of_bucket.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "objective/neighbor_data.h"

namespace shp {

struct MoveTopology {
  BucketId k = 0;
  /// Fast path: a single group over the contiguous bucket range [0, k).
  bool full_k = false;
  /// Per group: the bucket ids a member vertex may occupy (size ≥ 2),
  /// ascending. During recursion a group's members are the child-node ids of
  /// one split subtree — sparse within the subtree's leaf range, but no
  /// other group's buckets fall inside that range.
  std::vector<std::vector<BucketId>> group_children;
  /// bucket id -> group index, or -1 if the bucket is not being refined.
  std::vector<int32_t> group_of_bucket;
  /// Hard size cap per bucket id ( (1+ε)·n·leaves(bucket)/k ).
  std::vector<uint64_t> capacity;

  /// Half-open bucket-id window [begin, end) spanning group g's members —
  /// the slice of a sorted sparse accumulator that the group-restricted
  /// push scan reads. Re-slicing this window is all a recursion-level
  /// change costs the accumulator replicas; they are never rebuilt for a
  /// topology change (the entries themselves are topology-free).
  std::pair<BucketId, BucketId> GroupWindow(int32_t g) const {
    const std::vector<BucketId>& members =
        group_children[static_cast<size_t>(g)];
    return {members.front(), static_cast<BucketId>(members.back() + 1)};
  }

  /// Topology for direct k-way partitioning of n vertices.
  static MoveTopology FullK(BucketId k, uint64_t n, double epsilon) {
    MoveTopology topo;
    topo.k = k;
    topo.full_k = true;
    topo.group_children.resize(1);
    topo.group_children[0].reserve(static_cast<size_t>(k));
    for (BucketId b = 0; b < k; ++b) topo.group_children[0].push_back(b);
    topo.group_of_bucket.assign(static_cast<size_t>(k), 0);
    topo.capacity.assign(static_cast<size_t>(k),
                         BucketCapacity(n, k, /*leaves=*/1, epsilon));
    return topo;
  }

  /// Topology for an explicit group structure (tests and drivers that build
  /// recursion windows by hand): `groups` lists each group's member buckets
  /// (normalized to ascending). Each member's capacity covers the final
  /// leaves it owns,
  /// inferred from the recursion invariant that a bucket id is its node's
  /// lowest leaf id: bucket b spans the leaves up to the next member bucket
  /// (or k).
  static MoveTopology Grouped(BucketId k, uint64_t n, double epsilon,
                              std::vector<std::vector<BucketId>> groups) {
    MoveTopology topo;
    topo.k = k;
    topo.full_k = false;
    topo.group_of_bucket.assign(static_cast<size_t>(k), -1);
    topo.capacity.assign(static_cast<size_t>(k), 0);
    topo.group_children = std::move(groups);
    std::vector<BucketId> members;
    for (size_t g = 0; g < topo.group_children.size(); ++g) {
      // group_children must be ascending — GroupWindow and the grouped push
      // scan's candidate merge rely on it — so normalize hand-built input.
      std::sort(topo.group_children[g].begin(), topo.group_children[g].end());
      for (BucketId b : topo.group_children[g]) {
        topo.group_of_bucket[static_cast<size_t>(b)] =
            static_cast<int32_t>(g);
        members.push_back(b);
      }
    }
    std::sort(members.begin(), members.end());
    for (size_t i = 0; i < members.size(); ++i) {
      const BucketId next = i + 1 < members.size() ? members[i + 1] : k;
      topo.capacity[static_cast<size_t>(members[i])] =
          BucketCapacity(n, k, next - members[i], epsilon);
    }
    return topo;
  }

  /// Hard capacity of a bucket owning `leaves` of the k final leaves:
  /// floor((1+ε)·n·leaves/k), clamped below by ceil(n·leaves/k) so a
  /// perfectly even split always fits (tiny instances may then exceed ε —
  /// the paper's constraint is likewise infeasible at ε = 0 there).
  static uint64_t BucketCapacity(uint64_t n, BucketId k, BucketId leaves,
                                 double epsilon) {
    const double share =
        static_cast<double>(n) * static_cast<double>(leaves) /
        static_cast<double>(k);
    const uint64_t cap =
        static_cast<uint64_t>(std::floor((1.0 + epsilon) * share + 1e-9));
    const uint64_t feasible =
        static_cast<uint64_t>(std::ceil(share - 1e-9));
    return std::max(cap, feasible);
  }
};

}  // namespace shp
