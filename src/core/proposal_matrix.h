// The S matrix of paper Algorithm 1: S[i][j] = number of data vertices in
// bucket i whose best (positive-gain) target is bucket j. The master uses it
// to set swap probabilities min(S_ij, S_ji)/S_ij so the expected flow is
// symmetric and balance is preserved in expectation.
//
// Stored sparsely (hash map over packed (i,j)) because during recursion only
// sibling pairs occur, and even in direct k-way mode the number of occupied
// cells is bounded by the number of proposing vertices, not k².
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "objective/neighbor_data.h"

namespace shp {

class ProposalMatrix {
 public:
  static uint64_t PackPair(BucketId from, BucketId to) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(from)) << 32) |
           static_cast<uint32_t>(to);
  }

  void Add(BucketId from, BucketId to, uint64_t count = 1) {
    counts_[PackPair(from, to)] += count;
  }

  uint64_t Count(BucketId from, BucketId to) const {
    const auto it = counts_.find(PackPair(from, to));
    return it == counts_.end() ? 0 : it->second;
  }

  /// Paper Algorithm 1: probability of actually moving a proposed vertex
  /// from i to j = min(S_ij, S_ji) / S_ij (0 when S_ij = 0).
  double MoveProbability(BucketId from, BucketId to) const;

  /// Merges another matrix (used to combine per-thread partials).
  void Merge(const ProposalMatrix& other);

  size_t num_pairs() const { return counts_.size(); }

  /// All (from, to) pairs in deterministic (sorted) order.
  std::vector<std::pair<BucketId, BucketId>> SortedPairs() const;

  void Clear() { counts_.clear(); }

 private:
  std::unordered_map<uint64_t, uint64_t> counts_;
};

}  // namespace shp
