#include "core/shp_k.h"

#include "common/logging.h"
#include "common/thread_pool.h"
#include "core/move_topology.h"
#include "core/partition.h"

namespace shp {

ShpKPartitioner::ShpKPartitioner(const ShpKOptions& options)
    : options_(options) {
  SHP_CHECK_GT(options.k, 1);
  SHP_CHECK_GT(options.p, 0.0);
  SHP_CHECK_LE(options.p, 1.0);
  SHP_CHECK_GE(options.epsilon, 0.0);
}

ShpResult ShpKPartitioner::Run(const BipartiteGraph& graph, ThreadPool* pool,
                               const IterationCallback& callback) const {
  Partition initial =
      Partition::BalancedRandom(graph.num_data(), options_.k, options_.seed);
  return RunFrom(graph, initial.assignment(), pool, callback);
}

ShpResult ShpKPartitioner::RunFrom(const BipartiteGraph& graph,
                                   std::vector<BucketId> warm_start,
                                   ThreadPool* pool,
                                   const IterationCallback& callback,
                                   const std::vector<BucketId>* anchor,
                                   double anchor_penalty) const {
  if (pool == nullptr) pool = &GlobalThreadPool();
  SHP_CHECK_EQ(warm_start.size(), graph.num_data());

  Partition partition =
      Partition::FromAssignment(std::move(warm_start), options_.k);
  const MoveTopology topo =
      MoveTopology::FullK(options_.k, graph.num_data(), options_.epsilon);

  RefinerOptions refiner_options = options_.refiner;
  refiner_options.p = options_.p;
  refiner_options.future_splits = 1;
  // One refiner for the whole run: it keeps the query neighbor data (and the
  // proposal cache) alive across iterations, patching them with each round's
  // executed moves instead of rebuilding O(|E|) state per iteration.
  std::unique_ptr<RefinerInterface> refiner =
      options_.refiner_factory
          ? options_.refiner_factory(graph, refiner_options)
          : std::make_unique<Refiner>(graph, refiner_options);

  ShpResult result;
  result.k = options_.k;
  for (uint32_t iter = 0; iter < options_.max_iterations; ++iter) {
    const IterationStats stats = refiner->RunIteration(
        topo, &partition, options_.seed, iter, pool, anchor, anchor_penalty);
    result.history.push_back({iter, stats});
    ++result.iterations_run;
    if (callback && !callback(iter, stats, partition)) break;
    if (stats.moved_fraction < options_.min_move_fraction) {
      result.converged = true;
      break;
    }
  }
  result.assignment = partition.assignment();
  return result;
}

}  // namespace shp
