#include "core/multidim.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace shp {

MultiDimBalancer::MultiDimBalancer(const MultiDimOptions& options)
    : options_(options) {
  SHP_CHECK_GT(options.k, 0);
  SHP_CHECK_GT(options.oversample, 1);
}

std::vector<BucketId> MultiDimBalancer::MergeSubBuckets(
    const std::vector<std::vector<double>>& sub_loads, BucketId k,
    int oversample) {
  const size_t num_sub = sub_loads.size();
  SHP_CHECK_EQ(num_sub, static_cast<size_t>(k) * oversample);
  const size_t dims = sub_loads.empty() ? 0 : sub_loads[0].size();

  // Normalizers: ideal per-final-bucket load per dimension.
  std::vector<double> ideal(dims, 0.0);
  for (const auto& load : sub_loads) {
    for (size_t d = 0; d < dims; ++d) ideal[d] += load[d];
  }
  for (size_t d = 0; d < dims; ++d) {
    ideal[d] = std::max(ideal[d] / static_cast<double>(k), 1e-12);
  }

  // LPT: place heaviest sub-buckets first (by max normalized dim load).
  std::vector<size_t> order(num_sub);
  std::iota(order.begin(), order.end(), 0);
  auto heaviness = [&](size_t s) {
    double h = 0.0;
    for (size_t d = 0; d < dims; ++d) {
      h = std::max(h, sub_loads[s][d] / ideal[d]);
    }
    return h;
  };
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const double ha = heaviness(a), hb = heaviness(b);
    if (ha != hb) return ha > hb;
    return a < b;
  });

  std::vector<std::vector<double>> bucket_load(
      static_cast<size_t>(k), std::vector<double>(dims, 0.0));
  std::vector<int> bucket_slots(static_cast<size_t>(k), oversample);
  std::vector<BucketId> merge(num_sub, -1);

  for (size_t s : order) {
    BucketId best = -1;
    double best_makespan = 0.0;
    for (BucketId b = 0; b < k; ++b) {
      if (bucket_slots[static_cast<size_t>(b)] == 0) continue;
      double makespan = 0.0;
      for (size_t d = 0; d < dims; ++d) {
        makespan = std::max(makespan,
                            (bucket_load[static_cast<size_t>(b)][d] +
                             sub_loads[s][d]) /
                                ideal[d]);
      }
      if (best == -1 || makespan < best_makespan) {
        best = b;
        best_makespan = makespan;
      }
    }
    SHP_CHECK(best >= 0) << "slot accounting failed";
    merge[s] = best;
    --bucket_slots[static_cast<size_t>(best)];
    for (size_t d = 0; d < dims; ++d) {
      bucket_load[static_cast<size_t>(best)][d] += sub_loads[s][d];
    }
  }
  return merge;
}

MultiDimResult MultiDimBalancer::Run(const BipartiteGraph& graph,
                                     const std::vector<double>& weights,
                                     int num_dims, ThreadPool* pool) const {
  const VertexId n = graph.num_data();
  SHP_CHECK_GT(num_dims, 0);
  SHP_CHECK_EQ(weights.size(), static_cast<size_t>(n) * num_dims);
  const BucketId fine_k =
      options_.k * static_cast<BucketId>(options_.oversample);

  // Stage 1: SHP into c·k buckets (vertex-count balance only — the "one
  // strict dimension" of the heuristic).
  RecursiveOptions fine_options = options_.partition;
  fine_options.k = fine_k;
  RecursivePartitioner partitioner(fine_options);
  RecursiveResult fine = partitioner.Run(graph, pool);

  // Per-sub-bucket dimension loads.
  std::vector<std::vector<double>> sub_loads(
      static_cast<size_t>(fine_k), std::vector<double>(num_dims, 0.0));
  for (VertexId v = 0; v < n; ++v) {
    auto& load = sub_loads[static_cast<size_t>(fine.assignment[v])];
    for (int d = 0; d < num_dims; ++d) {
      load[static_cast<size_t>(d)] =
          load[static_cast<size_t>(d)] +
          weights[static_cast<size_t>(v) * num_dims + d];
    }
  }

  // Stage 2: merge.
  const std::vector<BucketId> merge =
      MergeSubBuckets(sub_loads, options_.k, options_.oversample);

  MultiDimResult result;
  result.fine_assignment = fine.assignment;
  result.assignment.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    result.assignment[v] =
        merge[static_cast<size_t>(fine.assignment[v])];
  }
  result.loads.assign(static_cast<size_t>(options_.k),
                      std::vector<double>(num_dims, 0.0));
  for (size_t s = 0; s < sub_loads.size(); ++s) {
    auto& load = result.loads[static_cast<size_t>(merge[s])];
    for (int d = 0; d < num_dims; ++d) {
      load[static_cast<size_t>(d)] += sub_loads[s][static_cast<size_t>(d)];
    }
  }
  result.imbalance.assign(num_dims, 0.0);
  for (int d = 0; d < num_dims; ++d) {
    double total = 0.0, biggest = 0.0;
    for (BucketId b = 0; b < options_.k; ++b) {
      total += result.loads[static_cast<size_t>(b)][static_cast<size_t>(d)];
      biggest = std::max(
          biggest,
          result.loads[static_cast<size_t>(b)][static_cast<size_t>(d)]);
    }
    const double ideal = std::max(total / options_.k, 1e-12);
    result.imbalance[static_cast<size_t>(d)] = biggest / ideal - 1.0;
  }
  return result;
}

}  // namespace shp
