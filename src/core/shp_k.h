// SHP-k: direct k-way fanout optimization (paper Algorithm 1 + §3.4).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/refiner.h"
#include "graph/bipartite_graph.h"

namespace shp {

class ThreadPool;

struct ShpKOptions {
  ShpKOptions() {
    // Direct k-way proposals herd onto few buckets when buckets hold few
    // vertices (scaled-down instances); a small exploration rate keeps the
    // pairwise swap matching fed. See RefinerOptions::exploration_probability.
    refiner.exploration_probability = 0.05;
  }

  BucketId k = 2;
  double p = 0.5;          ///< fanout probability (paper default)
  double epsilon = 0.05;   ///< allowed imbalance (paper default)
  uint32_t max_iterations = 60;  ///< paper default for SHP-k
  /// Converged when moved fraction drops below this (paper reports <0.1%
  /// after iteration 35 on soc-LJ).
  double min_move_fraction = 1e-3;
  uint64_t seed = 1;
  RefinerOptions refiner;  ///< p/future_splits here are overwritten from above
  /// Swaps the iteration engine (default: threaded in-memory Refiner).
  RefinerFactory refiner_factory;
};

struct ShpIterationRecord {
  uint32_t iteration = 0;
  IterationStats stats;
};

struct ShpResult {
  std::vector<BucketId> assignment;
  BucketId k = 0;
  uint32_t iterations_run = 0;
  bool converged = false;
  std::vector<ShpIterationRecord> history;
};

/// Per-iteration observer: called after each iteration with the live
/// partition (used by the Fig. 7 convergence bench). Return false to stop.
using IterationCallback = std::function<bool(
    uint32_t iteration, const IterationStats&, const Partition&)>;

class ShpKPartitioner {
 public:
  explicit ShpKPartitioner(const ShpKOptions& options);

  /// Runs from a random initial assignment.
  ShpResult Run(const BipartiteGraph& graph, ThreadPool* pool = nullptr,
                const IterationCallback& callback = nullptr) const;

  /// Runs from a caller-provided warm start (incremental repartitioning
  /// passes the previous assignment here).
  ShpResult RunFrom(const BipartiteGraph& graph,
                    std::vector<BucketId> warm_start,
                    ThreadPool* pool = nullptr,
                    const IterationCallback& callback = nullptr,
                    const std::vector<BucketId>* anchor = nullptr,
                    double anchor_penalty = 0.0) const;

 private:
  ShpKOptions options_;
};

}  // namespace shp
