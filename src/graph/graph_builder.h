// Mutable accumulator that produces an immutable BipartiteGraph.
//
// Handles the normalization the paper applies to all inputs: duplicate edges
// are merged, and "isolated queries and queries of degree one ... are
// removed, since they do not contribute to the objective" (paper §4.1).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.h"

namespace shp {

class GraphBuilder {
 public:
  /// num_queries / num_data may be 0 and grow automatically as edges arrive.
  explicit GraphBuilder(VertexId num_queries = 0, VertexId num_data = 0);

  /// Adds hyperedge membership: data vertex `v` belongs to hyperedge `q`.
  void AddEdge(VertexId q, VertexId v);

  /// Adds a whole hyperedge at once.
  void AddHyperedge(VertexId q, const std::vector<VertexId>& data);

  VertexId num_queries() const { return num_queries_; }
  VertexId num_data() const { return num_data_; }
  size_t num_raw_edges() const { return edges_.size(); }

  struct Options {
    /// Drop queries with fewer than two distinct data neighbors (paper §4.1).
    bool drop_trivial_queries = true;
    /// Renumber queries compactly after dropping (data ids are never
    /// renumbered: the partition is defined over data vertices).
    bool compact_queries = true;
  };

  /// Builds the CSR graph; the builder can be reused afterwards.
  BipartiteGraph Build(const Options& options) const;
  BipartiteGraph Build() const { return Build(Options{}); }

 private:
  VertexId num_queries_;
  VertexId num_data_;
  std::vector<std::pair<VertexId, VertexId>> edges_;  // (query, data)
};

}  // namespace shp
