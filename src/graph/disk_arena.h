// Compact on-disk adjacency arena for the bounded-memory streaming ingest
// (graph/streaming_ingest.h): high-degree vertices' neighbor lists are
// spilled here instead of being materialized in RAM, and refinement reads
// them back through an mmap'd view whose *residency* — not its contents —
// is capped by a windowed madvise cache.
//
// File format (little-endian, CRC32C-framed like the checkpoint files):
//
//   magic "SHPA" | version u32 | payload bytes (packed u32 neighbor lists) |
//   index: num_entries x { vertex u32 | count u32 | offset u64 } |
//   num_entries u64 | payload_bytes u64 | crc32c u32
//
// The CRC32C covers everything after the magic except the CRC field itself,
// so a flipped bit anywhere — header, payload, index, footer counts — is
// detected at Open. Offsets are bytes from the start of the payload region
// and must be 4-aligned (the payload region itself starts at byte 8, so
// every list is 4-aligned in the mapping and can be handed out as a
// span<const VertexId> with no copy). Index vertices are strictly
// ascending. All structural invariants (counts vs file size, offset ranges,
// ascending vertices) are validated before any allocation sized from
// file-supplied counts, mirroring the hardened io_binary reader.
//
// Residency cap: the payload mapping is divided into fixed windows; every
// span handed out marks its windows resident, and when more than
// resident_cap_bytes worth of windows are live a victim is dropped with
// madvise(MADV_DONTNEED). Eviction is CLOCK (second chance), not plain
// FIFO: every fast-path touch sets a referenced bit, and the evictor
// requeues referenced windows instead of dropping them. That keeps a
// window another thread is actively reading from being madvised out from
// under it — evicting such a window would refault its pages outside the
// tracking (the window left the queue, so the refaulted pages would never
// be dropped again) and silently inflate RSS past the cap under
// concurrent scans. Dropping a window a reader still holds a span into
// remains safe — the mapping is a read-only file mapping, so the next
// access simply refaults the page from disk — which is what makes the cap
// a pure residency bound with no correctness coupling.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "graph/bipartite_graph.h"

namespace shp {

/// One spilled vertex's location in the arena payload.
struct DiskArenaEntry {
  VertexId vertex;
  uint32_t count;   ///< neighbors (elements, not bytes)
  uint64_t offset;  ///< bytes from payload start; 4-aligned

  bool operator==(const DiskArenaEntry&) const = default;
};

/// Streaming writer. Two mutually exclusive feeding modes:
///
///  * sequential — BeginEntry/AppendToEntry in ascending vertex order, lists
///    arriving contiguously (the binary-snapshot ingest path, whose CSR
///    layout already delivers each list in one run). Bounded memory: only
///    the append buffer.
///  * scatter — PlanScatter fixes every entry's size up front (degrees are
///    known after the counting pass), then ScatterAdd appends single
///    neighbors in arbitrary arrival order (the edge-list ingest path).
///    Writes are staged in a bounded buffer and flushed as offset-sorted
///    coalesced pwrite runs.
///
/// Finish(normalize=true) rewrites the payload in entry order — sorting and
/// deduplicating each list, compacting the file — and is required after
/// scatter feeding; sequential feeding of already sorted/unique lists may
/// pass normalize=false to keep the single-pass CRC. The sort buffer holds
/// one list at a time, so transient memory is bounded by the largest spilled
/// degree, not by the payload.
class DiskArenaWriter {
 public:
  static Result<DiskArenaWriter> Create(const std::string& path);
  ~DiskArenaWriter();

  DiskArenaWriter(DiskArenaWriter&& other) noexcept;
  DiskArenaWriter& operator=(DiskArenaWriter&& other) noexcept;
  DiskArenaWriter(const DiskArenaWriter&) = delete;
  DiskArenaWriter& operator=(const DiskArenaWriter&) = delete;

  // ---- sequential mode ----

  /// Starts vertex `v`'s list (strictly ascending v across calls) of exactly
  /// `count` neighbors, delivered via AppendToEntry in one or more chunks.
  Status BeginEntry(VertexId v, uint32_t count);
  Status AppendToEntry(std::span<const VertexId> neighbors);

  // ---- scatter mode ----

  /// Declares the full entry set: (vertex, raw count) ascending by vertex.
  /// Reserves the payload layout; every slot must be filled by ScatterAdd
  /// before Finish.
  Status PlanScatter(const std::vector<std::pair<VertexId, uint32_t>>& plan);

  /// Appends one neighbor to the `rank`-th planned entry (0-based, in plan
  /// order). Rank-based so the caller's per-vertex lookup stays O(1).
  Status ScatterAdd(uint32_t rank, VertexId neighbor);

  /// Staged-write buffer size for scatter mode (default 4 MB).
  void SetScatterBufferBytes(uint64_t bytes);

  /// Finalizes payload, writes index + footer + CRC32C. normalize sorts and
  /// deduplicates every list (rewriting the payload compactly); mandatory
  /// after scatter feeding. After an OK Finish, index() holds the final
  /// (post-dedup) entries.
  Status Finish(bool normalize);

  const std::vector<DiskArenaEntry>& index() const { return index_; }
  uint64_t payload_bytes() const { return payload_bytes_; }

 private:
  explicit DiskArenaWriter(int fd, std::string path);

  Status WriteAt(uint64_t offset, const void* data, size_t size);
  Status ReadAt(uint64_t offset, void* data, size_t size);
  Status FlushScatter();
  Status FlushAppend();

  int fd_ = -1;
  std::string path_;
  bool scatter_ = false;
  bool sequential_ = false;
  bool finished_ = false;

  std::vector<DiskArenaEntry> index_;   // planned, then finalized
  std::vector<uint32_t> cursor_;        // scatter: filled slots per entry
  uint64_t payload_bytes_ = 0;          // raw (pre-normalize) payload size
  uint32_t crc_ = 0;                    // sequential-mode chained CRC
  uint32_t open_count_ = 0;             // sequential: remaining slots of the
  uint64_t append_offset_ = 0;          //   open entry / its write position
  VertexId last_vertex_ = 0;
  bool have_entry_ = false;

  std::vector<std::pair<uint64_t, VertexId>> scatter_buffer_;
  uint64_t scatter_buffer_cap_ = 4ull << 20;
  std::vector<VertexId> append_buffer_;  // sequential-mode write combining
};

/// Read view: validates the whole file once at Open (CRC + structure), then
/// serves zero-copy spans out of a private read-only mapping under the
/// windowed residency cap described in the file comment.
class DiskArena {
 public:
  /// resident_cap_bytes caps how much of the payload may be resident at
  /// once; 0 = unbounded (no tracking, no madvise). The effective cap is
  /// floored at two windows (see kWindowBytes).
  static Result<std::shared_ptr<DiskArena>> Open(const std::string& path,
                                                 uint64_t resident_cap_bytes);
  ~DiskArena();

  DiskArena(const DiskArena&) = delete;
  DiskArena& operator=(const DiskArena&) = delete;

  /// Neighbors of spilled vertex v (binary search over the index); empty
  /// span if v is not in the arena.
  std::span<const VertexId> Neighbors(VertexId v) const;

  /// Entry table (ascending vertex ids).
  const std::vector<DiskArenaEntry>& index() const { return index_; }

  uint64_t payload_bytes() const { return payload_bytes_; }

  /// Base of the payload region inside the mapping. Offsets from the index
  /// are relative to this pointer. Callers resolving spans directly (the
  /// hybrid BipartiteGraph keeps per-vertex offsets) must pair every access
  /// with TouchPayload so the residency accounting sees it.
  const uint8_t* payload_base() const { return map_ + kHeaderBytes; }

  /// Marks the windows of payload range [offset, offset + bytes) resident,
  /// evicting the oldest windows beyond the cap. Thread-safe; the fast path
  /// (window already resident) is one relaxed atomic load per window.
  void TouchPayload(uint64_t offset, uint64_t bytes) const;

  /// Residency cap this arena was opened with (0 = unbounded).
  uint64_t resident_cap_bytes() const { return max_windows_ * kWindowBytes; }

  // ---- residency diagnostics (approximate under concurrency) ----
  uint64_t window_evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  uint64_t windows_touched() const {
    return touches_.load(std::memory_order_relaxed);
  }
  uint64_t peak_resident_windows() const {
    return peak_resident_.load(std::memory_order_relaxed);
  }

  static constexpr uint64_t kWindowBytes = 128 * 1024;
  static constexpr uint64_t kHeaderBytes = 8;  // magic + version

 private:
  DiskArena() = default;

  const uint8_t* map_ = nullptr;
  uint64_t map_bytes_ = 0;
  uint64_t payload_bytes_ = 0;
  std::vector<DiskArenaEntry> index_;

  // Per-window CLOCK state: kTracked = in the eviction queue, kReferenced =
  // touched since the evictor last considered it.
  static constexpr uint8_t kTracked = 1;
  static constexpr uint8_t kReferenced = 2;

  uint64_t max_windows_ = 0;  // 0 = unbounded
  mutable std::vector<std::atomic<uint8_t>> resident_;
  mutable std::deque<uint32_t> fifo_;
  mutable std::mutex mu_;
  mutable std::atomic<uint64_t> evictions_{0};
  mutable std::atomic<uint64_t> touches_{0};
  mutable std::atomic<uint64_t> peak_resident_{0};
};

}  // namespace shp
