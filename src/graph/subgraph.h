// Induced subgraph extraction.
//
// Recursive partitioners work on the graph induced by one bucket's data
// vertices: queries keep only their neighbors inside the bucket, and queries
// left with fewer than two neighbors are dropped (they can no longer affect
// fanout within the bucket). Used by the multilevel baseline's recursive
// bisection and available as a library primitive; the SHP recursive driver
// instead constrains moves in-place (see core/recursive.h) to avoid graph
// copies, matching the paper's Giraph implementation.
#pragma once

#include <vector>

#include "graph/bipartite_graph.h"

namespace shp {

struct InducedSubgraph {
  BipartiteGraph graph;
  /// Maps subgraph data id -> original data id (size = graph.num_data()).
  std::vector<VertexId> data_to_parent;
};

/// Builds the subgraph induced by the data vertices with include[v] == true.
/// include.size() must equal parent.num_data().
InducedSubgraph BuildInducedSubgraph(const BipartiteGraph& parent,
                                     const std::vector<bool>& include);

/// Convenience: subgraph induced by data vertices currently assigned to
/// `bucket` in `assignment`.
InducedSubgraph BuildBucketSubgraph(const BipartiteGraph& parent,
                                    const std::vector<int32_t>& assignment,
                                    int32_t bucket);

}  // namespace shp
