#include "graph/io_hgr.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "graph/graph_builder.h"

namespace shp {

namespace {

// Splits a line into int64 tokens; returns false on a malformed token.
bool ParseInts(const std::string& line, std::vector<int64_t>* out) {
  out->clear();
  const char* p = line.c_str();
  while (*p != '\0') {
    while (*p != '\0' && std::isspace(static_cast<unsigned char>(*p))) ++p;
    if (*p == '\0') break;
    char* end = nullptr;
    const long long value = std::strtoll(p, &end, 10);
    if (end == p) return false;
    out->push_back(value);
    p = end;
  }
  return true;
}

}  // namespace

Result<BipartiteGraph> ParseHgr(const std::string& content,
                                bool drop_trivial) {
  std::istringstream in(content);
  std::string line;
  std::vector<int64_t> tokens;

  // Header (skipping comments).
  int64_t num_hyperedges = -1;
  int64_t num_vertices = -1;
  int fmt = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    if (!ParseInts(line, &tokens) || tokens.size() < 2 || tokens.size() > 3) {
      return Status::Corruption("hgr: malformed header line: " + line);
    }
    num_hyperedges = tokens[0];
    num_vertices = tokens[1];
    if (tokens.size() == 3) fmt = static_cast<int>(tokens[2]);
    break;
  }
  if (num_hyperedges < 0) return Status::Corruption("hgr: missing header");
  if (num_hyperedges == 0 || num_vertices <= 0) {
    return Status::InvalidArgument("hgr: empty hypergraph");
  }
  const bool edge_weights = fmt == 1 || fmt == 11;
  const bool vertex_weights = fmt == 10 || fmt == 11;
  if (fmt != 0 && !edge_weights && !vertex_weights) {
    return Status::Corruption("hgr: unknown fmt field " + std::to_string(fmt));
  }
  if (edge_weights || vertex_weights) {
    SHP_LOG(Warning) << "hgr: weights present (fmt=" << fmt
                     << "); SHP ignores weights";
  }

  GraphBuilder builder(static_cast<VertexId>(num_hyperedges),
                       static_cast<VertexId>(num_vertices));
  int64_t edges_read = 0;
  while (edges_read < num_hyperedges && std::getline(in, line)) {
    if (!line.empty() && line[0] == '%') continue;
    if (!ParseInts(line, &tokens)) {
      return Status::Corruption("hgr: malformed hyperedge line: " + line);
    }
    size_t first = edge_weights ? 1 : 0;  // skip the weight token
    if (edge_weights && tokens.empty()) {
      return Status::Corruption("hgr: weighted hyperedge missing weight");
    }
    for (size_t i = first; i < tokens.size(); ++i) {
      const int64_t v = tokens[i];
      if (v < 1 || v > num_vertices) {
        return Status::Corruption("hgr: vertex id " + std::to_string(v) +
                                  " out of range 1.." +
                                  std::to_string(num_vertices));
      }
      builder.AddEdge(static_cast<VertexId>(edges_read),
                      static_cast<VertexId>(v - 1));
    }
    ++edges_read;
  }
  if (edges_read != num_hyperedges) {
    return Status::Corruption("hgr: expected " +
                              std::to_string(num_hyperedges) +
                              " hyperedges, found " +
                              std::to_string(edges_read));
  }
  // Vertex weight lines, if any, are ignored.

  GraphBuilder::Options options;
  options.drop_trivial_queries = drop_trivial;
  return builder.Build(options);
}

Result<BipartiteGraph> ReadHgr(const std::string& path, bool drop_trivial) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseHgr(buffer.str(), drop_trivial);
}

Status WriteHgr(const BipartiteGraph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path);
  out << graph.num_queries() << ' ' << graph.num_data() << '\n';
  for (VertexId q = 0; q < graph.num_queries(); ++q) {
    bool first = true;
    for (VertexId v : graph.QueryNeighbors(q)) {
      if (!first) out << ' ';
      out << (v + 1);
      first = false;
    }
    out << '\n';
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

}  // namespace shp
