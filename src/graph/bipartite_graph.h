// Bipartite query-data graph: the paper's representation of a hypergraph.
//
// A hypergraph (V, H) is stored as the bipartite graph G = (Q ∪ D, E) where
// each query vertex q ∈ Q is one hyperedge and its bipartite neighbors are
// the data vertices the hyperedge spans (paper §1, Fig. 1). Both directions
// are materialized as CSR so that the algorithm can iterate neighbors of a
// query (superstep 1: collect neighbor data) and neighbors of a data vertex
// (superstep 2: compute move gains) in O(degree).
//
// The structure is immutable after construction; all partitioner state lives
// outside the graph, which lets multiple partitioners share one instance.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace shp {

/// Vertex index within its side (query side or data side).
using VertexId = uint32_t;
/// Edge index / edge count.
using EdgeIndex = uint64_t;

constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

class BipartiteGraph {
 public:
  BipartiteGraph() = default;

  /// Constructs from CSR arrays. query_offsets has num_queries+1 entries into
  /// query_adj (data ids); data_offsets has num_data+1 entries into data_adj
  /// (query ids). The two directions must describe the same edge set; this is
  /// checked in debug builds (see Validate()).
  BipartiteGraph(std::vector<EdgeIndex> query_offsets,
                 std::vector<VertexId> query_adj,
                 std::vector<EdgeIndex> data_offsets,
                 std::vector<VertexId> data_adj);

  VertexId num_queries() const {
    return query_offsets_.empty()
               ? 0
               : static_cast<VertexId>(query_offsets_.size() - 1);
  }
  VertexId num_data() const {
    return data_offsets_.empty()
               ? 0
               : static_cast<VertexId>(data_offsets_.size() - 1);
  }
  EdgeIndex num_edges() const { return query_adj_.size(); }

  /// Data vertices of hyperedge q (sorted ascending).
  std::span<const VertexId> QueryNeighbors(VertexId q) const {
    return {query_adj_.data() + query_offsets_[q],
            query_adj_.data() + query_offsets_[q + 1]};
  }

  /// Hyperedges incident to data vertex v (sorted ascending).
  std::span<const VertexId> DataNeighbors(VertexId v) const {
    return {data_adj_.data() + data_offsets_[v],
            data_adj_.data() + data_offsets_[v + 1]};
  }

  EdgeIndex QueryDegree(VertexId q) const {
    return query_offsets_[q + 1] - query_offsets_[q];
  }
  EdgeIndex DataDegree(VertexId v) const {
    return data_offsets_[v + 1] - data_offsets_[v];
  }

  EdgeIndex MaxQueryDegree() const;
  EdgeIndex MaxDataDegree() const;

  /// Full consistency check (symmetric edge sets, sortedness, no duplicate
  /// edges, ids in range). O(|E| log |E|); used by tests and after I/O.
  bool Validate(std::string* error = nullptr) const;

  /// Estimated resident memory of the CSR arrays in bytes.
  size_t MemoryBytes() const;

  // Raw access for serialization.
  const std::vector<EdgeIndex>& query_offsets() const { return query_offsets_; }
  const std::vector<VertexId>& query_adj() const { return query_adj_; }
  const std::vector<EdgeIndex>& data_offsets() const { return data_offsets_; }
  const std::vector<VertexId>& data_adj() const { return data_adj_; }

 private:
  std::vector<EdgeIndex> query_offsets_;
  std::vector<VertexId> query_adj_;
  std::vector<EdgeIndex> data_offsets_;
  std::vector<VertexId> data_adj_;
};

}  // namespace shp
