// Bipartite query-data graph: the paper's representation of a hypergraph.
//
// A hypergraph (V, H) is stored as the bipartite graph G = (Q ∪ D, E) where
// each query vertex q ∈ Q is one hyperedge and its bipartite neighbors are
// the data vertices the hyperedge spans (paper §1, Fig. 1). Both directions
// are materialized as CSR so that the algorithm can iterate neighbors of a
// query (superstep 1: collect neighbor data) and neighbors of a data vertex
// (superstep 2: compute move gains) in O(degree).
//
// Two storage modes share the same accessor API:
//
//  * fully resident — the original CSR arrays in RAM (default; every
//    in-memory loader builds this).
//  * hybrid — built by the bounded-memory streaming ingest
//    (graph/streaming_ingest.h): low-degree neighbor lists live in a packed
//    in-RAM arena, high-degree lists live in an mmap'd on-disk arena
//    (graph/disk_arena.h) and are served as zero-copy spans out of the
//    mapping. Callers cannot tell the difference — QueryNeighbors /
//    DataNeighbors / degrees behave identically — which is what lets the
//    whole refinement stack (QueryNeighborData, AffinitySweep, the BSP
//    engine) run over spilled data unchanged. Only the raw CSR accessors
//    used for serialization require a fully resident graph.
//
// The structure is immutable after construction; all partitioner state lives
// outside the graph, which lets multiple partitioners share one instance.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/logging.h"

namespace shp {

/// Vertex index within its side (query side or data side).
using VertexId = uint32_t;
/// Edge index / edge count.
using EdgeIndex = uint64_t;

constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

class DiskArena;

/// Storage of a hybrid (partially spilled) graph. Produced by the streaming
/// ingest; consumed by the BipartiteGraph hybrid constructor.
struct HybridAdjacency {
  /// Set in a `loc` word when the list lives in the disk arena; the low bits
  /// are then a byte offset into the arena payload. Cleared when the list is
  /// resident; the low bits are then an element index into `resident`.
  static constexpr uint64_t kSpilledBit = 1ull << 63;

  struct Side {
    std::vector<uint32_t> degree;    ///< final (deduplicated) degree
    std::vector<uint64_t> loc;       ///< per-vertex location word (see above)
    std::vector<VertexId> resident;  ///< packed low-degree neighbor lists
    std::shared_ptr<DiskArena> spill;  ///< nullptr when nothing spilled
  };

  Side query;
  Side data;
  EdgeIndex num_edges = 0;
};

class BipartiteGraph {
 public:
  BipartiteGraph() = default;

  /// Constructs from CSR arrays. query_offsets has num_queries+1 entries into
  /// query_adj (data ids); data_offsets has num_data+1 entries into data_adj
  /// (query ids). The two directions must describe the same edge set; this is
  /// checked in debug builds (see Validate()).
  BipartiteGraph(std::vector<EdgeIndex> query_offsets,
                 std::vector<VertexId> query_adj,
                 std::vector<EdgeIndex> data_offsets,
                 std::vector<VertexId> data_adj);

  /// Constructs a hybrid graph whose high-degree lists live in a disk arena.
  /// Use graph/streaming_ingest.h rather than building one by hand.
  explicit BipartiteGraph(HybridAdjacency hybrid);

  VertexId num_queries() const {
    if (hybrid_ != nullptr) {
      return static_cast<VertexId>(hybrid_->query.degree.size());
    }
    return query_offsets_.empty()
               ? 0
               : static_cast<VertexId>(query_offsets_.size() - 1);
  }
  VertexId num_data() const {
    if (hybrid_ != nullptr) {
      return static_cast<VertexId>(hybrid_->data.degree.size());
    }
    return data_offsets_.empty()
               ? 0
               : static_cast<VertexId>(data_offsets_.size() - 1);
  }
  EdgeIndex num_edges() const {
    return hybrid_ != nullptr ? hybrid_->num_edges : query_adj_.size();
  }

  /// Data vertices of hyperedge q (sorted ascending).
  std::span<const VertexId> QueryNeighbors(VertexId q) const {
    if (hybrid_ == nullptr) {
      return {query_adj_.data() + query_offsets_[q],
              query_adj_.data() + query_offsets_[q + 1]};
    }
    return HybridNeighbors(hybrid_->query, q);
  }

  /// Hyperedges incident to data vertex v (sorted ascending).
  std::span<const VertexId> DataNeighbors(VertexId v) const {
    if (hybrid_ == nullptr) {
      return {data_adj_.data() + data_offsets_[v],
              data_adj_.data() + data_offsets_[v + 1]};
    }
    return HybridNeighbors(hybrid_->data, v);
  }

  EdgeIndex QueryDegree(VertexId q) const {
    if (hybrid_ == nullptr) return query_offsets_[q + 1] - query_offsets_[q];
    return hybrid_->query.degree[q];
  }
  EdgeIndex DataDegree(VertexId v) const {
    if (hybrid_ == nullptr) return data_offsets_[v + 1] - data_offsets_[v];
    return hybrid_->data.degree[v];
  }

  EdgeIndex MaxQueryDegree() const;
  EdgeIndex MaxDataDegree() const;

  /// True when all adjacency is in RAM (no disk arena behind the accessors).
  /// Serialization and the raw CSR accessors require this.
  bool fully_resident() const { return hybrid_ == nullptr; }

  /// Hybrid storage diagnostics (spill arenas, resident arena sizes);
  /// nullptr for fully resident graphs.
  const HybridAdjacency* hybrid() const { return hybrid_.get(); }

  /// Full consistency check (symmetric edge sets, sortedness, no duplicate
  /// edges, ids in range). O(|E| log |E|); used by tests and after I/O.
  bool Validate(std::string* error = nullptr) const;

  /// Estimated resident memory in bytes: the CSR arrays, or for hybrid
  /// graphs the metadata + packed resident arena + the spill arenas'
  /// residency caps (their steady-state page footprint).
  size_t MemoryBytes() const;

  // Raw access for serialization. Fully resident graphs only.
  const std::vector<EdgeIndex>& query_offsets() const {
    SHP_CHECK(hybrid_ == nullptr) << "raw CSR access on a hybrid graph";
    return query_offsets_;
  }
  const std::vector<VertexId>& query_adj() const {
    SHP_CHECK(hybrid_ == nullptr) << "raw CSR access on a hybrid graph";
    return query_adj_;
  }
  const std::vector<EdgeIndex>& data_offsets() const {
    SHP_CHECK(hybrid_ == nullptr) << "raw CSR access on a hybrid graph";
    return data_offsets_;
  }
  const std::vector<VertexId>& data_adj() const {
    SHP_CHECK(hybrid_ == nullptr) << "raw CSR access on a hybrid graph";
    return data_adj_;
  }

 private:
  static std::span<const VertexId> HybridNeighbors(
      const HybridAdjacency::Side& side, VertexId v);

  std::vector<EdgeIndex> query_offsets_;
  std::vector<VertexId> query_adj_;
  std::vector<EdgeIndex> data_offsets_;
  std::vector<VertexId> data_adj_;

  // shared_ptr keeps the graph cheaply copyable (partitioners copy graphs by
  // value in a few places); the adjacency is immutable either way.
  std::shared_ptr<const HybridAdjacency> hybrid_;
};

}  // namespace shp
