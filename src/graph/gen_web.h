// Web-graph generator (stand-in for web-Stanford / web-BerkStan).
//
// Pages are grouped into power-law-sized hosts; a page's out-links stay
// within its host with high probability, and off-host links are produced by
// a copying model (copy a random earlier page's link with probability beta,
// otherwise link a random page), which yields the power-law in-degrees and
// very strong locality characteristic of web crawls. The paper's web graphs
// partition to fanout close to 1 even at large k — that behavior comes from
// exactly this host-locality, which the generator reproduces.
//
// Hypergraph conversion: page u is a query whose hyperedge is
// {u} ∪ out-links(u) (fetching a page needs itself plus its links).
#pragma once

#include <cstdint>

#include "graph/bipartite_graph.h"

namespace shp {

struct WebGraphConfig {
  VertexId num_pages = 100000;
  double avg_out_degree = 8.0;
  /// Mean host size (hosts are Zipf-sized around this).
  double avg_host_size = 120.0;
  /// Probability an out-link stays within the page's host.
  double in_host_probability = 0.85;
  /// For off-host links: probability of copying an earlier page's target
  /// (preferential attachment) vs. a uniform random page.
  double copy_probability = 0.6;
  uint64_t seed = 11;
  bool drop_trivial_queries = true;
};

BipartiteGraph GenerateWebGraph(const WebGraphConfig& config);

}  // namespace shp
