#include "graph/subgraph.h"

#include "common/logging.h"
#include "graph/graph_builder.h"

namespace shp {

InducedSubgraph BuildInducedSubgraph(const BipartiteGraph& parent,
                                     const std::vector<bool>& include) {
  SHP_CHECK_EQ(include.size(), parent.num_data());

  InducedSubgraph out;
  std::vector<VertexId> data_map(parent.num_data(), kInvalidVertex);
  for (VertexId v = 0; v < parent.num_data(); ++v) {
    if (include[v]) {
      data_map[v] = static_cast<VertexId>(out.data_to_parent.size());
      out.data_to_parent.push_back(v);
    }
  }

  GraphBuilder builder(0, static_cast<VertexId>(out.data_to_parent.size()));
  for (VertexId q = 0; q < parent.num_queries(); ++q) {
    for (VertexId v : parent.QueryNeighbors(q)) {
      if (data_map[v] != kInvalidVertex) builder.AddEdge(q, data_map[v]);
    }
  }
  GraphBuilder::Options options;
  options.drop_trivial_queries = true;  // degree<2 queries are inert here
  options.compact_queries = true;
  out.graph = builder.Build(options);
  return out;
}

InducedSubgraph BuildBucketSubgraph(const BipartiteGraph& parent,
                                    const std::vector<int32_t>& assignment,
                                    int32_t bucket) {
  SHP_CHECK_EQ(assignment.size(), parent.num_data());
  std::vector<bool> include(parent.num_data());
  for (VertexId v = 0; v < parent.num_data(); ++v) {
    include[v] = assignment[v] == bucket;
  }
  return BuildInducedSubgraph(parent, include);
}

}  // namespace shp
