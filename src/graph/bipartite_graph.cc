#include "graph/bipartite_graph.h"

#include <algorithm>

#include "common/logging.h"
#include "graph/disk_arena.h"

namespace shp {

BipartiteGraph::BipartiteGraph(std::vector<EdgeIndex> query_offsets,
                               std::vector<VertexId> query_adj,
                               std::vector<EdgeIndex> data_offsets,
                               std::vector<VertexId> data_adj)
    : query_offsets_(std::move(query_offsets)),
      query_adj_(std::move(query_adj)),
      data_offsets_(std::move(data_offsets)),
      data_adj_(std::move(data_adj)) {
  SHP_CHECK(!query_offsets_.empty()) << "offsets must have at least one entry";
  SHP_CHECK(!data_offsets_.empty()) << "offsets must have at least one entry";
  SHP_CHECK_EQ(query_offsets_.back(), query_adj_.size());
  SHP_CHECK_EQ(data_offsets_.back(), data_adj_.size());
  SHP_CHECK_EQ(query_adj_.size(), data_adj_.size());
}

BipartiteGraph::BipartiteGraph(HybridAdjacency hybrid)
    : hybrid_(std::make_shared<const HybridAdjacency>(std::move(hybrid))) {
  SHP_CHECK_EQ(hybrid_->query.degree.size(), hybrid_->query.loc.size());
  SHP_CHECK_EQ(hybrid_->data.degree.size(), hybrid_->data.loc.size());
}

std::span<const VertexId> BipartiteGraph::HybridNeighbors(
    const HybridAdjacency::Side& side, VertexId v) {
  const uint32_t deg = side.degree[v];
  if (deg == 0) return {};
  const uint64_t loc = side.loc[v];
  if ((loc & HybridAdjacency::kSpilledBit) == 0) {
    return {side.resident.data() + loc, deg};
  }
  const uint64_t offset = loc & ~HybridAdjacency::kSpilledBit;
  const uint64_t bytes = static_cast<uint64_t>(deg) * sizeof(VertexId);
  side.spill->TouchPayload(offset, bytes);
  return {
      reinterpret_cast<const VertexId*>(side.spill->payload_base() + offset),
      deg};
}

EdgeIndex BipartiteGraph::MaxQueryDegree() const {
  EdgeIndex best = 0;
  for (VertexId q = 0; q < num_queries(); ++q) {
    best = std::max(best, QueryDegree(q));
  }
  return best;
}

EdgeIndex BipartiteGraph::MaxDataDegree() const {
  EdgeIndex best = 0;
  for (VertexId v = 0; v < num_data(); ++v) {
    best = std::max(best, DataDegree(v));
  }
  return best;
}

bool BipartiteGraph::Validate(std::string* error) const {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  if (hybrid_ == nullptr) {
    // Offsets monotone (hybrid storage has no offsets arrays; its per-vertex
    // location words are range-checked through the accessors below).
    for (size_t i = 0; i + 1 < query_offsets_.size(); ++i) {
      if (query_offsets_[i] > query_offsets_[i + 1]) {
        return fail("query offsets not monotone at " + std::to_string(i));
      }
    }
    for (size_t i = 0; i + 1 < data_offsets_.size(); ++i) {
      if (data_offsets_[i] > data_offsets_[i + 1]) {
        return fail("data offsets not monotone at " + std::to_string(i));
      }
    }
  } else {
    EdgeIndex query_sum = 0, data_sum = 0;
    for (uint32_t d : hybrid_->query.degree) query_sum += d;
    for (uint32_t d : hybrid_->data.degree) data_sum += d;
    if (query_sum != hybrid_->num_edges || data_sum != hybrid_->num_edges) {
      return fail("hybrid degree sums disagree with num_edges");
    }
  }
  // Adjacency sorted, deduplicated, in range.
  for (VertexId q = 0; q < num_queries(); ++q) {
    auto nbrs = QueryNeighbors(q);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] >= num_data()) {
        return fail("query " + std::to_string(q) + " references data " +
                    std::to_string(nbrs[i]) + " out of range");
      }
      if (i > 0 && nbrs[i] <= nbrs[i - 1]) {
        return fail("query " + std::to_string(q) +
                    " adjacency not sorted/unique");
      }
    }
  }
  for (VertexId v = 0; v < num_data(); ++v) {
    auto nbrs = DataNeighbors(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] >= num_queries()) {
        return fail("data " + std::to_string(v) + " references query " +
                    std::to_string(nbrs[i]) + " out of range");
      }
      if (i > 0 && nbrs[i] <= nbrs[i - 1]) {
        return fail("data " + std::to_string(v) +
                    " adjacency not sorted/unique");
      }
    }
  }
  // The two directions describe the same edge set: rebuild (q, v) pairs from
  // the data side and compare against the query side.
  std::vector<std::pair<VertexId, VertexId>> from_data;
  from_data.reserve(num_edges());
  for (VertexId v = 0; v < num_data(); ++v) {
    for (VertexId q : DataNeighbors(v)) from_data.emplace_back(q, v);
  }
  std::sort(from_data.begin(), from_data.end());
  size_t idx = 0;
  for (VertexId q = 0; q < num_queries(); ++q) {
    for (VertexId v : QueryNeighbors(q)) {
      if (idx >= from_data.size() || from_data[idx] != std::make_pair(q, v)) {
        return fail("edge sets differ between directions near query " +
                    std::to_string(q));
      }
      ++idx;
    }
  }
  if (idx != from_data.size()) return fail("data side has extra edges");
  return true;
}

size_t BipartiteGraph::MemoryBytes() const {
  if (hybrid_ == nullptr) {
    return query_offsets_.size() * sizeof(EdgeIndex) +
           data_offsets_.size() * sizeof(EdgeIndex) +
           query_adj_.size() * sizeof(VertexId) +
           data_adj_.size() * sizeof(VertexId);
  }
  auto side_bytes = [](const HybridAdjacency::Side& side) {
    size_t bytes = side.degree.size() * sizeof(uint32_t) +
                   side.loc.size() * sizeof(uint64_t) +
                   side.resident.size() * sizeof(VertexId);
    if (side.spill != nullptr) {
      bytes += side.spill->resident_cap_bytes() +
               side.spill->index().size() * sizeof(DiskArenaEntry);
    }
    return bytes;
  };
  return side_bytes(hybrid_->query) + side_bytes(hybrid_->data);
}

}  // namespace shp
