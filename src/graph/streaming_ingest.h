// Bounded-memory streaming ingest: build a partitionable BipartiteGraph
// whose full CSR footprint exceeds RAM, under an explicit memory budget.
//
// The split follows HEP's hybrid in-memory/streaming recipe (Mayer &
// Jacobsen, "Hybrid Edge Partitioner"): adjacency lists of *low-degree*
// vertices — the overwhelming majority under a power law, but a minority of
// the edges — stay in a packed in-RAM arena, while lists of vertices whose
// degree exceeds a threshold T are spilled to a CRC32C-framed on-disk arena
// (graph/disk_arena.h) and served back as zero-copy spans out of an mmap'd
// view with a windowed residency cap. T = floor(high_degree_factor × mean
// degree), per side:
//
//   high_degree_factor = 0   → every non-empty list spills (pure streaming)
//   high_degree_factor = 1   → above-average-degree vertices spill
//   high_degree_factor → ∞   → nothing spills (degenerate in-memory build)
//
// The factor decides the split; the budget only tightens it. Memory-budget
// accounting (bytes charged against memory_budget_mb):
//
//   per-vertex metadata   12 B × (|Q| + |D|)   degree u32 + location u64
//   resident adjacency     4 B × Σ resident deg
//   spill residency caps   the two arenas' madvise window caps
//   ingest transients      pass-2 fill cursors, and for the edge-list path
//                          the sparse→dense id maps (≈48 B per distinct id)
//
// If that sum exceeds the budget at the requested factor, the thresholds
// are scaled down geometrically (spilling more) until it fits; if even the
// all-spilled split cannot fit the metadata, ingest fails with
// InvalidArgument rather than over-allocating.
//
// Determinism contract: the resulting graph is *identical* (vertex
// numbering, degrees, neighbor order) to the in-memory loaders —
// ReadBipartiteEdgeList(path, /*drop_trivial=*/false) for the text path,
// ReadBinaryGraph(path) for the SHPG path — so refinement trajectories over
// a spilled graph are bit-for-bit those of the in-memory run. Note the
// streaming text path always keeps trivial (degree<2) queries: dropping
// them would renumber vertices mid-stream.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "graph/bipartite_graph.h"

namespace shp {

struct StreamingIngestOptions {
  /// Ceiling for the resident footprint of the *returned graph plus ingest
  /// transients* (see accounting above). The process baseline (code,
  /// allocator, partitioner state) is outside the graph's charge.
  uint64_t memory_budget_mb = 64;

  /// Spill threshold knob: a side's lists spill iff degree > floor(factor ×
  /// that side's mean degree). See header comment for the 0 / 1 / ∞ shapes.
  double high_degree_factor = 1.0;

  /// Directory for the spill arena files. Required whenever anything
  /// spills; created if missing.
  std::string spill_dir;

  /// Combined madvise residency cap for the spill arenas' mappings, in MB.
  /// 0 = budget/4. Split evenly across the (up to two) arenas, floored at
  /// two windows each.
  uint64_t spill_cache_mb = 0;

  /// Keep the arena files on disk after the mappings are open (default:
  /// unlink immediately; the mappings keep them alive until the graph dies).
  bool keep_spill_files = false;
};

struct StreamingIngestStats {
  uint64_t edges_read = 0;      ///< raw pairs seen (before dedup)
  EdgeIndex num_edges = 0;      ///< final deduplicated edge count
  VertexId num_queries = 0;
  VertexId num_data = 0;
  uint32_t query_threshold = 0;  ///< final T: query lists spill iff deg > T
  uint32_t data_threshold = 0;
  double threshold_scale = 1.0;  ///< α after the budget clamp (1 = no clamp)
  uint32_t spilled_queries = 0;
  uint32_t spilled_data = 0;
  uint64_t resident_bytes = 0;   ///< packed in-RAM adjacency, both sides
  uint64_t spilled_bytes = 0;    ///< arena payload bytes, both sides
  uint64_t spill_cache_bytes = 0;  ///< total residency cap across arenas
  uint64_t memory_budget_bytes = 0;
};

/// Streams a bipartite "q d" text edge list (two counting/placement passes
/// over the file; memory bounded per the accounting above). Sparse ids are
/// compacted in first-appearance order, exactly as ReadBipartiteEdgeList.
Result<BipartiteGraph> StreamingIngestEdgeList(
    const std::string& path, const StreamingIngestOptions& options,
    StreamingIngestStats* stats = nullptr);

/// Streams an SHPG binary snapshot (graph/io_binary.h): one full pass
/// verifies the FNV-1a checksum and captures the offset arrays, a second
/// pass places each side's already-sorted lists. Per-vertex lists arrive
/// contiguously, so spilled lists take the arena's sequential path.
Result<BipartiteGraph> StreamingIngestBinary(
    const std::string& path, const StreamingIngestOptions& options,
    StreamingIngestStats* stats = nullptr);

}  // namespace shp
