// Partition (assignment) file I/O: the standard one-bucket-per-line format
// used by hMetis/Metis-family tools — line i holds the bucket of data
// vertex i. Comments start with '%' or '#'.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "graph/bipartite_graph.h"
#include "objective/neighbor_data.h"

namespace shp {

/// Writes one bucket id per line.
Status WritePartition(const std::vector<BucketId>& assignment,
                      const std::string& path);

/// Reads a partition file; verifies every value is in [0, k) when k > 0
/// and, when expected_size > 0, that the entry count matches.
Result<std::vector<BucketId>> ReadPartition(const std::string& path,
                                            BucketId k = 0,
                                            size_t expected_size = 0);

}  // namespace shp
