// Power-law bipartite hypergraph generator.
//
// Stand-in for the smaller SNAP-derived hypergraphs (email-Enron,
// soc-Epinions): query (hyperedge) degrees follow a truncated discrete power
// law, and data endpoints are drawn from a Zipf popularity distribution with
// an optional locality component so that related queries share data vertices
// (without locality, random hypergraphs have essentially no partition
// structure and every partitioner degenerates to fanout ≈ min(k, degree)).
#pragma once

#include <cstdint>

#include "graph/bipartite_graph.h"

namespace shp {

struct PowerLawConfig {
  VertexId num_queries = 10000;
  VertexId num_data = 20000;
  /// Approximate total number of pins |E| (realized count varies slightly
  /// because degrees are sampled).
  EdgeIndex target_edges = 100000;
  /// Exponent of the query-degree power law (larger = lighter tail).
  double query_degree_exponent = 2.0;
  /// Exponent of the data popularity Zipf distribution.
  double data_popularity_exponent = 1.2;
  /// Fraction of endpoints drawn near the query's "home" location instead of
  /// by global popularity; higher = more clusterable structure.
  double locality = 0.7;
  /// Mean distance of a local endpoint from the query home (geometric).
  double locality_spread = 200.0;
  uint64_t seed = 42;
  /// Drop queries that end up with fewer than two distinct data vertices.
  bool drop_trivial_queries = true;
};

BipartiteGraph GeneratePowerLaw(const PowerLawConfig& config);

/// Samples from a Zipf(exponent) distribution over {0, .., n-1} using the
/// rejection method of Devroye; O(1) expected time per sample.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double exponent);

  /// Draws a sample given uniform doubles u1, u2 in [0,1). Deterministic in
  /// its inputs, which lets callers use counter-based RNG streams.
  uint64_t Sample(double u1, double u2) const;

 private:
  uint64_t n_;
  double exponent_;
  double h_x1_;        // H(1.5) - 1
  double h_n_;         // H(n + 0.5)
  double inv_1_minus_e_;

  double H(double x) const;
  double HInverse(double x) const;
};

}  // namespace shp
