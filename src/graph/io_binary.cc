#include "graph/io_binary.h"

#include <cstdio>
#include <cstring>
#include <vector>

namespace shp {

namespace {

constexpr char kMagic[4] = {'S', 'H', 'P', 'G'};
constexpr uint32_t kVersion = 1;

uint64_t Fnv1a(const void* data, size_t size, uint64_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = seed;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

constexpr uint64_t kFnvInit = 0xcbf29ce484222325ULL;

class FileWriter {
 public:
  explicit FileWriter(std::FILE* f) : f_(f) {}

  template <typename T>
  bool WriteValue(const T& value) {
    checksum_ = Fnv1a(&value, sizeof(T), checksum_);
    return std::fwrite(&value, sizeof(T), 1, f_) == 1;
  }

  template <typename T>
  bool WriteVector(const std::vector<T>& vec) {
    if (vec.empty()) return true;
    checksum_ = Fnv1a(vec.data(), vec.size() * sizeof(T), checksum_);
    return std::fwrite(vec.data(), sizeof(T), vec.size(), f_) == vec.size();
  }

  uint64_t checksum() const { return checksum_; }

 private:
  std::FILE* f_;
  uint64_t checksum_ = kFnvInit;
};

class FileReader {
 public:
  explicit FileReader(std::FILE* f) : f_(f) {}

  template <typename T>
  bool ReadValue(T* value) {
    if (std::fread(value, sizeof(T), 1, f_) != 1) return false;
    checksum_ = Fnv1a(value, sizeof(T), checksum_);
    return true;
  }

  template <typename T>
  bool ReadVector(std::vector<T>* vec, size_t count) {
    vec->resize(count);
    if (count == 0) return true;
    if (std::fread(vec->data(), sizeof(T), count, f_) != count) return false;
    checksum_ = Fnv1a(vec->data(), count * sizeof(T), checksum_);
    return true;
  }

  uint64_t checksum() const { return checksum_; }

 private:
  std::FILE* f_;
  uint64_t checksum_ = kFnvInit;
};

}  // namespace

Status WriteBinaryGraph(const BipartiteGraph& graph, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  bool ok = std::fwrite(kMagic, 1, 4, f) == 4;
  FileWriter w(f);
  ok = ok && w.WriteValue(kVersion);
  ok = ok && w.WriteValue(graph.num_queries());
  ok = ok && w.WriteValue(graph.num_data());
  ok = ok && w.WriteValue(graph.num_edges());
  ok = ok && w.WriteVector(graph.query_offsets());
  ok = ok && w.WriteVector(graph.query_adj());
  ok = ok && w.WriteVector(graph.data_offsets());
  ok = ok && w.WriteVector(graph.data_adj());
  const uint64_t checksum = w.checksum();
  ok = ok && std::fwrite(&checksum, sizeof(checksum), 1, f) == 1;
  std::fclose(f);
  if (!ok) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

Result<BipartiteGraph> ReadBinaryGraph(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  char magic[4];
  if (std::fread(magic, 1, 4, f) != 4 ||
      std::memcmp(magic, kMagic, 4) != 0) {
    std::fclose(f);
    return Status::Corruption(path + ": bad magic");
  }
  FileReader r(f);
  uint32_t version = 0;
  VertexId num_queries = 0, num_data = 0;
  EdgeIndex num_edges = 0;
  bool ok = r.ReadValue(&version);
  if (ok && version != kVersion) {
    std::fclose(f);
    return Status::Corruption(path + ": unsupported version " +
                              std::to_string(version));
  }
  ok = ok && r.ReadValue(&num_queries);
  ok = ok && r.ReadValue(&num_data);
  ok = ok && r.ReadValue(&num_edges);

  std::vector<EdgeIndex> query_offsets, data_offsets;
  std::vector<VertexId> query_adj, data_adj;
  ok = ok && r.ReadVector(&query_offsets, num_queries + size_t{1});
  ok = ok && r.ReadVector(&query_adj, num_edges);
  ok = ok && r.ReadVector(&data_offsets, num_data + size_t{1});
  ok = ok && r.ReadVector(&data_adj, num_edges);
  uint64_t stored_checksum = 0;
  ok = ok && std::fread(&stored_checksum, sizeof(stored_checksum), 1, f) == 1;
  std::fclose(f);
  if (!ok) return Status::Corruption(path + ": truncated file");
  if (stored_checksum != r.checksum()) {
    return Status::Corruption(path + ": checksum mismatch");
  }
  if (query_offsets.back() != num_edges || data_offsets.back() != num_edges) {
    return Status::Corruption(path + ": inconsistent offsets");
  }
  return BipartiteGraph(std::move(query_offsets), std::move(query_adj),
                        std::move(data_offsets), std::move(data_adj));
}

}  // namespace shp
