#include "graph/io_binary.h"

#include <cstdio>
#include <cstring>
#include <vector>

#include "common/checksum.h"

namespace shp {

namespace {

constexpr char kMagic[4] = {'S', 'H', 'P', 'G'};
constexpr uint32_t kVersion = 1;

class FileWriter {
 public:
  explicit FileWriter(std::FILE* f) : f_(f) {}

  template <typename T>
  bool WriteValue(const T& value) {
    checksum_ = Fnv1a64(&value, sizeof(T), checksum_);
    return std::fwrite(&value, sizeof(T), 1, f_) == 1;
  }

  template <typename T>
  bool WriteVector(const std::vector<T>& vec) {
    if (vec.empty()) return true;
    checksum_ = Fnv1a64(vec.data(), vec.size() * sizeof(T), checksum_);
    return std::fwrite(vec.data(), sizeof(T), vec.size(), f_) == vec.size();
  }

  uint64_t checksum() const { return checksum_; }

 private:
  std::FILE* f_;
  uint64_t checksum_ = kFnv1a64Init;
};

class FileReader {
 public:
  explicit FileReader(std::FILE* f) : f_(f) {}

  template <typename T>
  bool ReadValue(T* value) {
    if (std::fread(value, sizeof(T), 1, f_) != 1) return false;
    checksum_ = Fnv1a64(value, sizeof(T), checksum_);
    return true;
  }

  template <typename T>
  bool ReadVector(std::vector<T>* vec, size_t count) {
    vec->resize(count);
    if (count == 0) return true;
    if (std::fread(vec->data(), sizeof(T), count, f_) != count) return false;
    checksum_ = Fnv1a64(vec->data(), count * sizeof(T), checksum_);
    return true;
  }

  uint64_t checksum() const { return checksum_; }

 private:
  std::FILE* f_;
  uint64_t checksum_ = kFnv1a64Init;
};

}  // namespace

Status WriteBinaryGraph(const BipartiteGraph& graph, const std::string& path) {
  if (!graph.fully_resident()) {
    return Status::InvalidArgument(
        "WriteBinaryGraph: hybrid (partially spilled) graphs have no "
        "resident CSR arrays to serialize; re-ingest in memory first");
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  bool ok = std::fwrite(kMagic, 1, 4, f) == 4;
  FileWriter w(f);
  ok = ok && w.WriteValue(kVersion);
  ok = ok && w.WriteValue(graph.num_queries());
  ok = ok && w.WriteValue(graph.num_data());
  ok = ok && w.WriteValue(graph.num_edges());
  ok = ok && w.WriteVector(graph.query_offsets());
  ok = ok && w.WriteVector(graph.query_adj());
  ok = ok && w.WriteVector(graph.data_offsets());
  ok = ok && w.WriteVector(graph.data_adj());
  const uint64_t checksum = w.checksum();
  ok = ok && std::fwrite(&checksum, sizeof(checksum), 1, f) == 1;
  std::fclose(f);
  if (!ok) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

namespace {

// Rejects non-decreasing violations and out-of-range adjacency ids before the
// vectors reach the BipartiteGraph constructor, whose SHP_CHECKs abort the
// process — crafted input must surface as a Status instead.
bool OffsetsConsistent(const std::vector<EdgeIndex>& offsets,
                       EdgeIndex num_edges) {
  if (offsets.empty() || offsets.front() != 0 ||
      offsets.back() != num_edges) {
    return false;
  }
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) return false;
  }
  return true;
}

bool AdjInRange(const std::vector<VertexId>& adj, VertexId limit) {
  for (VertexId v : adj) {
    if (v >= limit) return false;
  }
  return true;
}

}  // namespace

Result<BipartiteGraph> ReadBinaryGraph(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  // Pin the real file size up front so file-supplied counts are validated
  // before any allocation — an oversized count in a truncated or crafted
  // header must not trigger a multi-gigabyte resize.
  uint64_t file_size = 0;
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::IoError(path + ": seek failed");
  }
  {
    const long end = std::ftell(f);
    if (end < 0) {
      std::fclose(f);
      return Status::IoError(path + ": tell failed");
    }
    file_size = static_cast<uint64_t>(end);
    std::rewind(f);
  }
  char magic[4];
  if (std::fread(magic, 1, 4, f) != 4 ||
      std::memcmp(magic, kMagic, 4) != 0) {
    std::fclose(f);
    return Status::Corruption(path + ": bad magic");
  }
  FileReader r(f);
  uint32_t version = 0;
  VertexId num_queries = 0, num_data = 0;
  EdgeIndex num_edges = 0;
  bool ok = r.ReadValue(&version);
  if (ok && version != kVersion) {
    std::fclose(f);
    return Status::Corruption(path + ": unsupported version " +
                              std::to_string(version));
  }
  ok = ok && r.ReadValue(&num_queries);
  ok = ok && r.ReadValue(&num_data);
  ok = ok && r.ReadValue(&num_edges);
  if (ok) {
    const uint64_t header_bytes = 4 + sizeof(version) + sizeof(num_queries) +
                                  sizeof(num_data) + sizeof(num_edges);
    const uint64_t body_bytes =
        (uint64_t{num_queries} + 1 + uint64_t{num_data} + 1) *
            sizeof(EdgeIndex) +
        2 * num_edges * sizeof(VertexId) + sizeof(uint64_t);
    // num_edges > file_size also catches counts large enough to overflow the
    // body_bytes product. file_size >= header_bytes: the header reads passed.
    if (num_edges > file_size || body_bytes != file_size - header_bytes) {
      std::fclose(f);
      return Status::Corruption(path + ": header counts do not match size " +
                                std::to_string(file_size));
    }
  }

  std::vector<EdgeIndex> query_offsets, data_offsets;
  std::vector<VertexId> query_adj, data_adj;
  ok = ok && r.ReadVector(&query_offsets, num_queries + size_t{1});
  ok = ok && r.ReadVector(&query_adj, num_edges);
  ok = ok && r.ReadVector(&data_offsets, num_data + size_t{1});
  ok = ok && r.ReadVector(&data_adj, num_edges);
  uint64_t stored_checksum = 0;
  ok = ok && std::fread(&stored_checksum, sizeof(stored_checksum), 1, f) == 1;
  std::fclose(f);
  if (!ok) return Status::Corruption(path + ": truncated file");
  if (stored_checksum != r.checksum()) {
    return Status::Corruption(path + ": checksum mismatch");
  }
  if (!OffsetsConsistent(query_offsets, num_edges) ||
      !OffsetsConsistent(data_offsets, num_edges)) {
    return Status::Corruption(path + ": inconsistent offsets");
  }
  if (!AdjInRange(query_adj, num_data) || !AdjInRange(data_adj, num_queries)) {
    return Status::Corruption(path + ": adjacency id out of range");
  }
  return BipartiteGraph(std::move(query_offsets), std::move(query_adj),
                        std::move(data_offsets), std::move(data_adj));
}

}  // namespace shp
