#include "graph/io_edgelist.h"

#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <unordered_map>

#include "graph/graph_builder.h"

namespace shp {

namespace {

// Parses "a b" per line; invokes fn(a, b). Returns Corruption on bad lines.
Status ForEachPair(std::istream& in,
                   const std::function<void(int64_t, int64_t)>& fn) {
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    int64_t a, b;
    if (!(ls >> a >> b)) {
      return Status::Corruption("edge list: malformed line " +
                                std::to_string(line_number) + ": " + line);
    }
    if (a < 0 || b < 0) {
      return Status::Corruption("edge list: negative id at line " +
                                std::to_string(line_number));
    }
    std::string rest;
    if (ls >> rest) {
      return Status::Corruption("edge list: trailing garbage at line " +
                                std::to_string(line_number) + ": " + line);
    }
    fn(a, b);
  }
  return Status::Ok();
}

class IdCompactor {
 public:
  VertexId Map(int64_t raw) {
    auto [it, inserted] = map_.try_emplace(raw, next_);
    if (inserted) ++next_;
    return it->second;
  }
  VertexId size() const { return next_; }

 private:
  std::unordered_map<int64_t, VertexId> map_;
  VertexId next_ = 0;
};

}  // namespace

Status ForEachEdgePair(const std::string& path,
                       const std::function<void(int64_t, int64_t)>& fn) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  return ForEachPair(in, fn);
}

Result<BipartiteGraph> ParseBipartiteEdgeList(const std::string& content,
                                              bool drop_trivial) {
  std::istringstream in(content);
  GraphBuilder builder;
  IdCompactor queries, data;
  Status st = ForEachPair(in, [&](int64_t q, int64_t d) {
    builder.AddEdge(queries.Map(q), data.Map(d));
  });
  if (!st.ok()) return st;
  if (builder.num_raw_edges() == 0) {
    return Status::InvalidArgument("edge list: no edges");
  }
  GraphBuilder::Options options;
  options.drop_trivial_queries = drop_trivial;
  return builder.Build(options);
}

Result<BipartiteGraph> ReadBipartiteEdgeList(const std::string& path,
                                             bool drop_trivial) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseBipartiteEdgeList(buffer.str(), drop_trivial);
}

Result<BipartiteGraph> ReadUnipartiteAsHypergraph(const std::string& path,
                                                  bool symmetrize,
                                                  bool drop_trivial) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  GraphBuilder builder;
  IdCompactor ids;
  Status st = ForEachPair(in, [&](int64_t u, int64_t v) {
    const VertexId cu = ids.Map(u);
    const VertexId cv = ids.Map(v);
    // Hyperedge of u contains u itself and its neighbors.
    builder.AddEdge(cu, cu);
    builder.AddEdge(cu, cv);
    if (symmetrize) {
      builder.AddEdge(cv, cv);
      builder.AddEdge(cv, cu);
    }
  });
  if (!st.ok()) return st;
  if (builder.num_raw_edges() == 0) {
    return Status::InvalidArgument("edge list: no edges");
  }
  GraphBuilder::Options options;
  options.drop_trivial_queries = drop_trivial;
  return builder.Build(options);
}

Status WriteBipartiteEdgeList(const BipartiteGraph& graph,
                              const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path);
  out << "# bipartite edge list: query data\n";
  for (VertexId q = 0; q < graph.num_queries(); ++q) {
    for (VertexId v : graph.QueryNeighbors(q)) {
      out << q << ' ' << v << '\n';
    }
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

}  // namespace shp
