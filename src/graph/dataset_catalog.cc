#include "graph/dataset_catalog.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "graph/gen_powerlaw.h"
#include "graph/gen_social.h"
#include "graph/gen_web.h"

namespace shp {

const std::vector<DatasetSpec>& DatasetCatalog() {
  // Paper Table 1. default_scale shrinks the giant rows to bench-friendly
  // sizes; SHP_BENCH_SCALE multiplies on top for bigger runs.
  static const std::vector<DatasetSpec>* catalog = new std::vector<DatasetSpec>{
      {"email-Enron", DatasetFamily::kPowerLaw, 25481, 36692, 356451, 1.0},
      {"soc-Epinions", DatasetFamily::kPowerLaw, 31149, 75879, 479645, 1.0},
      {"web-Stanford", DatasetFamily::kWeb, 253097, 281903, 2283863, 0.25},
      {"web-BerkStan", DatasetFamily::kWeb, 609527, 685230, 7529636, 0.1},
      {"soc-Pokec", DatasetFamily::kSocial, 1277002, 1632803, 30466873, 0.02},
      {"soc-LJ", DatasetFamily::kSocial, 3392317, 4847571, 68077638, 0.01},
      {"FB-10M", DatasetFamily::kSocial, 32296, 32770, 10099740, 0.05},
      {"FB-50M", DatasetFamily::kSocial, 152263, 154551, 49998426, 0.01},
      {"FB-2B", DatasetFamily::kSocial, 6063442, 6153846, 2000000000, 0.0003},
      {"FB-5B", DatasetFamily::kSocial, 15150402, 15376099, 5000000000,
       0.00012},
      {"FB-10B", DatasetFamily::kSocial, 30302615, 40361708, 10000000000,
       0.00006},
  };
  return *catalog;
}

Result<DatasetSpec> FindDataset(const std::string& name) {
  for (const auto& spec : DatasetCatalog()) {
    if (spec.name == name) return spec;
  }
  return Status::NotFound("no dataset named '" + name + "' in catalog");
}

BipartiteGraph Synthesize(const DatasetSpec& spec, double scale,
                          uint64_t seed) {
  const double s = std::max(1e-9, scale * spec.default_scale);
  const auto scaled = [s](uint64_t paper_value, uint64_t floor_value) {
    return static_cast<uint64_t>(
        std::max<double>(static_cast<double>(floor_value),
                         std::llround(static_cast<double>(paper_value) * s)));
  };

  switch (spec.family) {
    case DatasetFamily::kPowerLaw: {
      PowerLawConfig config;
      config.num_queries = static_cast<VertexId>(scaled(spec.paper_queries, 64));
      config.num_data = static_cast<VertexId>(scaled(spec.paper_data, 128));
      config.target_edges = scaled(spec.paper_edges, 512);
      config.seed = seed;
      return GeneratePowerLaw(config);
    }
    case DatasetFamily::kWeb: {
      WebGraphConfig config;
      config.num_pages = static_cast<VertexId>(scaled(spec.paper_data, 256));
      // avg out-degree from paper pins / queries, minus the self edge.
      config.avg_out_degree = std::max(
          2.0, static_cast<double>(spec.paper_edges) / spec.paper_queries - 1);
      config.seed = seed;
      return GenerateWebGraph(config);
    }
    case DatasetFamily::kSocial: {
      SocialGraphConfig config;
      config.num_users = static_cast<VertexId>(scaled(spec.paper_data, 256));
      // Friendship degree ≈ pins per query minus the self record. The FB-*
      // rows are dense (avg ≈ 300); cap so tiny scaled instances stay valid.
      const double paper_avg =
          static_cast<double>(spec.paper_edges) / spec.paper_queries - 1;
      config.avg_degree =
          std::min(paper_avg, static_cast<double>(config.num_users) / 4);
      config.seed = seed;
      return GenerateSocialGraph(config);
    }
  }
  SHP_CHECK(false) << "unreachable: unknown dataset family";
  return BipartiteGraph();
}

}  // namespace shp
