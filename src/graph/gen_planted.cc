#include "graph/gen_planted.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"
#include "graph/graph_builder.h"

namespace shp {

PlantedPartition GeneratePlantedPartition(
    const PlantedPartitionConfig& config) {
  SHP_CHECK_GT(config.num_groups, 1);
  SHP_CHECK_GE(config.num_data, static_cast<VertexId>(config.num_groups));
  Rng rng(config.seed);

  PlantedPartition out;
  // Groups are round-robin over data ids so that all groups have size
  // n/k ± 1 (exact balance is needed for the recovery tests).
  out.truth.resize(config.num_data);
  for (VertexId v = 0; v < config.num_data; ++v) {
    out.truth[v] = static_cast<int32_t>(v % config.num_groups);
  }
  // Per-group member lists for uniform in-group sampling.
  std::vector<std::vector<VertexId>> members(
      static_cast<size_t>(config.num_groups));
  for (VertexId v = 0; v < config.num_data; ++v) {
    members[static_cast<size_t>(out.truth[v])].push_back(v);
  }

  GraphBuilder builder(config.num_queries, config.num_data);
  for (VertexId q = 0; q < config.num_queries; ++q) {
    const int32_t home =
        static_cast<int32_t>(rng.NextBounded(config.num_groups));
    const auto& home_members = members[static_cast<size_t>(home)];
    uint32_t degree =
        2 + static_cast<uint32_t>(rng.NextExponential() *
                                  (config.avg_query_degree - 2.0));
    for (uint32_t j = 0; j < degree; ++j) {
      VertexId v;
      if (rng.NextBernoulli(config.mixing)) {
        v = static_cast<VertexId>(rng.NextBounded(config.num_data));
      } else {
        v = home_members[rng.NextBounded(home_members.size())];
      }
      builder.AddEdge(q, v);
    }
  }

  GraphBuilder::Options options;
  options.drop_trivial_queries = true;
  out.graph = builder.Build(options);
  return out;
}

}  // namespace shp
