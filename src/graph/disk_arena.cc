#include "graph/disk_arena.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/checksum.h"
#include "common/logging.h"

namespace shp {
namespace {

constexpr char kMagic[4] = {'S', 'H', 'P', 'A'};
constexpr uint32_t kVersion = 1;
constexpr uint64_t kIndexEntryBytes = 16;
constexpr uint64_t kFooterBytes = 8 + 8 + 4;  // num_entries | payload_bytes | crc

Status ErrnoError(const char* what, const std::string& path) {
  return Status::IoError(std::string(what) + " " + path + ": " +
                         std::strerror(errno));
}

Status PReadFull(int fd, uint64_t offset, void* data, size_t size,
                 const std::string& path) {
  uint8_t* out = static_cast<uint8_t*>(data);
  while (size > 0) {
    ssize_t n = ::pread(fd, out, size, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("pread", path);
    }
    if (n == 0) return Status::Corruption("unexpected EOF reading " + path);
    out += n;
    offset += static_cast<uint64_t>(n);
    size -= static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status PWriteFull(int fd, uint64_t offset, const void* data, size_t size,
                  const std::string& path) {
  const uint8_t* in = static_cast<const uint8_t*>(data);
  while (size > 0) {
    ssize_t n = ::pwrite(fd, in, size, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("pwrite", path);
    }
    in += n;
    offset += static_cast<uint64_t>(n);
    size -= static_cast<size_t>(n);
  }
  return Status::Ok();
}

void PackEntry(const DiskArenaEntry& e, uint8_t out[kIndexEntryBytes]) {
  std::memcpy(out, &e.vertex, 4);
  std::memcpy(out + 4, &e.count, 4);
  std::memcpy(out + 8, &e.offset, 8);
}

DiskArenaEntry UnpackEntry(const uint8_t in[kIndexEntryBytes]) {
  DiskArenaEntry e;
  std::memcpy(&e.vertex, in, 4);
  std::memcpy(&e.count, in + 4, 4);
  std::memcpy(&e.offset, in + 8, 8);
  return e;
}

}  // namespace

// ---------------------------------------------------------------- writer ----

Result<DiskArenaWriter> DiskArenaWriter::Create(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoError("open", path);
  DiskArenaWriter writer(fd, path);
  uint8_t header[DiskArena::kHeaderBytes];
  std::memcpy(header, kMagic, 4);
  std::memcpy(header + 4, &kVersion, 4);
  Status st = writer.WriteAt(0, header, sizeof(header));
  if (!st.ok()) return st;
  // The CRC chain covers everything after the magic; start it at the version
  // field so sequential feeding never has to re-read the payload.
  writer.crc_ = Crc32c(header + 4, 4, 0);
  return writer;
}

DiskArenaWriter::DiskArenaWriter(int fd, std::string path)
    : fd_(fd), path_(std::move(path)) {}

DiskArenaWriter::~DiskArenaWriter() {
  if (fd_ >= 0) ::close(fd_);
}

DiskArenaWriter::DiskArenaWriter(DiskArenaWriter&& other) noexcept {
  *this = std::move(other);
}

DiskArenaWriter& DiskArenaWriter::operator=(DiskArenaWriter&& other) noexcept {
  if (this == &other) return *this;
  if (fd_ >= 0) ::close(fd_);
  fd_ = std::exchange(other.fd_, -1);
  path_ = std::move(other.path_);
  scatter_ = other.scatter_;
  sequential_ = other.sequential_;
  finished_ = other.finished_;
  index_ = std::move(other.index_);
  cursor_ = std::move(other.cursor_);
  payload_bytes_ = other.payload_bytes_;
  crc_ = other.crc_;
  open_count_ = other.open_count_;
  append_offset_ = other.append_offset_;
  last_vertex_ = other.last_vertex_;
  have_entry_ = other.have_entry_;
  scatter_buffer_ = std::move(other.scatter_buffer_);
  scatter_buffer_cap_ = other.scatter_buffer_cap_;
  append_buffer_ = std::move(other.append_buffer_);
  return *this;
}

Status DiskArenaWriter::WriteAt(uint64_t offset, const void* data,
                                size_t size) {
  return PWriteFull(fd_, offset, data, size, path_);
}

Status DiskArenaWriter::ReadAt(uint64_t offset, void* data, size_t size) {
  return PReadFull(fd_, offset, data, size, path_);
}

Status DiskArenaWriter::BeginEntry(VertexId v, uint32_t count) {
  if (finished_ || scatter_) {
    return Status::InvalidArgument("BeginEntry: writer not in sequential mode");
  }
  if (open_count_ != 0) {
    return Status::InvalidArgument("BeginEntry: previous entry short by " +
                                   std::to_string(open_count_) + " neighbors");
  }
  if (have_entry_ && v <= last_vertex_) {
    return Status::InvalidArgument("BeginEntry: vertices must be ascending");
  }
  sequential_ = true;
  have_entry_ = true;
  last_vertex_ = v;
  index_.push_back(DiskArenaEntry{v, count, payload_bytes_});
  open_count_ = count;
  return Status::Ok();
}

Status DiskArenaWriter::AppendToEntry(std::span<const VertexId> neighbors) {
  if (!sequential_ || finished_) {
    return Status::InvalidArgument("AppendToEntry: no entry open");
  }
  if (neighbors.size() > open_count_) {
    return Status::InvalidArgument("AppendToEntry: entry overflow");
  }
  crc_ = Crc32c(neighbors.data(), neighbors.size() * sizeof(VertexId), crc_);
  append_buffer_.insert(append_buffer_.end(), neighbors.begin(),
                        neighbors.end());
  payload_bytes_ += neighbors.size() * sizeof(VertexId);
  open_count_ -= static_cast<uint32_t>(neighbors.size());
  if (append_buffer_.size() * sizeof(VertexId) >= scatter_buffer_cap_) {
    return FlushAppend();
  }
  return Status::Ok();
}

Status DiskArenaWriter::FlushAppend() {
  if (append_buffer_.empty()) return Status::Ok();
  const uint64_t bytes = append_buffer_.size() * sizeof(VertexId);
  SHP_RETURN_IF_ERROR(WriteAt(DiskArena::kHeaderBytes + append_offset_,
                              append_buffer_.data(), bytes));
  append_offset_ += bytes;
  append_buffer_.clear();
  return Status::Ok();
}

Status DiskArenaWriter::PlanScatter(
    const std::vector<std::pair<VertexId, uint32_t>>& plan) {
  if (sequential_ || scatter_ || finished_) {
    return Status::InvalidArgument("PlanScatter: writer already in use");
  }
  scatter_ = true;
  index_.reserve(plan.size());
  uint64_t off = 0;
  for (const auto& [v, count] : plan) {
    if (!index_.empty() && v <= index_.back().vertex) {
      return Status::InvalidArgument("PlanScatter: vertices must be ascending");
    }
    index_.push_back(DiskArenaEntry{v, count, off});
    off += static_cast<uint64_t>(count) * sizeof(VertexId);
  }
  payload_bytes_ = off;
  cursor_.assign(plan.size(), 0);
  if (::ftruncate(fd_, static_cast<off_t>(DiskArena::kHeaderBytes + off)) !=
      0) {
    return ErrnoError("ftruncate", path_);
  }
  return Status::Ok();
}

Status DiskArenaWriter::ScatterAdd(uint32_t rank, VertexId neighbor) {
  if (!scatter_ || finished_) {
    return Status::InvalidArgument("ScatterAdd: PlanScatter not called");
  }
  if (rank >= index_.size()) {
    return Status::InvalidArgument("ScatterAdd: rank out of range");
  }
  DiskArenaEntry& e = index_[rank];
  if (cursor_[rank] >= e.count) {
    return Status::InvalidArgument("ScatterAdd: entry " +
                                   std::to_string(e.vertex) + " overflow");
  }
  const uint64_t slot =
      e.offset + static_cast<uint64_t>(cursor_[rank]++) * sizeof(VertexId);
  scatter_buffer_.emplace_back(slot, neighbor);
  if (scatter_buffer_.size() * sizeof(scatter_buffer_[0]) >=
      scatter_buffer_cap_) {
    return FlushScatter();
  }
  return Status::Ok();
}

void DiskArenaWriter::SetScatterBufferBytes(uint64_t bytes) {
  scatter_buffer_cap_ = std::max<uint64_t>(bytes, 64 * 1024);
}

Status DiskArenaWriter::FlushScatter() {
  if (scatter_buffer_.empty()) return Status::Ok();
  std::sort(scatter_buffer_.begin(), scatter_buffer_.end());
  // Coalesce adjacent slots into single pwrites.
  std::vector<VertexId> run;
  size_t i = 0;
  while (i < scatter_buffer_.size()) {
    const uint64_t start = scatter_buffer_[i].first;
    run.clear();
    run.push_back(scatter_buffer_[i].second);
    size_t j = i + 1;
    while (j < scatter_buffer_.size() &&
           scatter_buffer_[j].first ==
               start + run.size() * sizeof(VertexId)) {
      run.push_back(scatter_buffer_[j].second);
      ++j;
    }
    SHP_RETURN_IF_ERROR(WriteAt(DiskArena::kHeaderBytes + start, run.data(),
                                run.size() * sizeof(VertexId)));
    i = j;
  }
  scatter_buffer_.clear();
  return Status::Ok();
}

Status DiskArenaWriter::Finish(bool normalize) {
  if (finished_) return Status::InvalidArgument("Finish: already finished");
  if (scatter_) {
    if (!normalize) {
      return Status::InvalidArgument(
          "Finish: scatter feeding requires normalize");
    }
    for (size_t i = 0; i < index_.size(); ++i) {
      if (cursor_[i] != index_[i].count) {
        return Status::InvalidArgument(
            "Finish: entry " + std::to_string(index_[i].vertex) +
            " short by " + std::to_string(index_[i].count - cursor_[i]) +
            " neighbors");
      }
    }
    SHP_RETURN_IF_ERROR(FlushScatter());
  } else {
    if (open_count_ != 0) {
      return Status::InvalidArgument("Finish: last entry short by " +
                                     std::to_string(open_count_) +
                                     " neighbors");
    }
    SHP_RETURN_IF_ERROR(FlushAppend());
  }

  if (normalize) {
    // Rewrite every list sorted + deduplicated, compacting the payload in
    // place. Entries are laid out in ascending offset order and dedup only
    // shrinks, so the write cursor never passes the read cursor.
    uint32_t crc = Crc32c(&kVersion, 4, 0);
    uint64_t compact = 0;
    std::vector<VertexId> buf;
    for (DiskArenaEntry& e : index_) {
      buf.resize(e.count);
      SHP_RETURN_IF_ERROR(ReadAt(DiskArena::kHeaderBytes + e.offset,
                                 buf.data(), buf.size() * sizeof(VertexId)));
      std::sort(buf.begin(), buf.end());
      buf.erase(std::unique(buf.begin(), buf.end()), buf.end());
      SHP_CHECK_LE(compact, e.offset);
      SHP_RETURN_IF_ERROR(WriteAt(DiskArena::kHeaderBytes + compact,
                                  buf.data(), buf.size() * sizeof(VertexId)));
      crc = Crc32c(buf.data(), buf.size() * sizeof(VertexId), crc);
      e.count = static_cast<uint32_t>(buf.size());
      e.offset = compact;
      compact += buf.size() * sizeof(VertexId);
    }
    payload_bytes_ = compact;
    crc_ = crc;
  }

  // Index + footer, CRC-chained; the CRC field itself is excluded.
  std::vector<uint8_t> tail(index_.size() * kIndexEntryBytes + kFooterBytes);
  uint8_t* out = tail.data();
  for (const DiskArenaEntry& e : index_) {
    PackEntry(e, out);
    out += kIndexEntryBytes;
  }
  const uint64_t num_entries = index_.size();
  std::memcpy(out, &num_entries, 8);
  std::memcpy(out + 8, &payload_bytes_, 8);
  crc_ = Crc32c(tail.data(), tail.size() - 4, crc_);
  std::memcpy(out + 16, &crc_, 4);
  const uint64_t tail_offset = DiskArena::kHeaderBytes + payload_bytes_;
  SHP_RETURN_IF_ERROR(WriteAt(tail_offset, tail.data(), tail.size()));
  if (::ftruncate(fd_, static_cast<off_t>(tail_offset + tail.size())) != 0) {
    return ErrnoError("ftruncate", path_);
  }
  if (::fsync(fd_) != 0) return ErrnoError("fsync", path_);
  ::close(fd_);
  fd_ = -1;
  finished_ = true;
  return Status::Ok();
}

// ---------------------------------------------------------------- reader ----

Result<std::shared_ptr<DiskArena>> DiskArena::Open(
    const std::string& path, uint64_t resident_cap_bytes) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoError("open", path);
  struct FdCloser {
    int fd;
    ~FdCloser() { ::close(fd); }
  } closer{fd};

  struct stat st;
  if (::fstat(fd, &st) != 0) return ErrnoError("fstat", path);
  const uint64_t file_size = static_cast<uint64_t>(st.st_size);
  if (file_size < kHeaderBytes + kFooterBytes) {
    return Status::Corruption("arena " + path + " truncated: " +
                              std::to_string(file_size) + " bytes");
  }

  // Validate with bounded memory: pread (page cache, not RSS) rather than
  // faulting the whole mapping just to checksum it.
  uint8_t header[kHeaderBytes];
  SHP_RETURN_IF_ERROR(PReadFull(fd, 0, header, sizeof(header), path));
  if (std::memcmp(header, kMagic, 4) != 0) {
    return Status::Corruption("arena " + path + " has bad magic");
  }
  uint32_t version;
  std::memcpy(&version, header + 4, 4);
  if (version != kVersion) {
    return Status::Corruption("arena " + path + " has unsupported version " +
                              std::to_string(version));
  }

  uint8_t footer[kFooterBytes];
  SHP_RETURN_IF_ERROR(
      PReadFull(fd, file_size - kFooterBytes, footer, sizeof(footer), path));
  uint64_t num_entries, payload_bytes;
  uint32_t stored_crc;
  std::memcpy(&num_entries, footer, 8);
  std::memcpy(&payload_bytes, footer + 8, 8);
  std::memcpy(&stored_crc, footer + 16, 4);

  // Pin counts against the actual file size before trusting them for any
  // allocation (same discipline as the SHPG reader).
  if (payload_bytes > file_size ||
      num_entries > file_size / kIndexEntryBytes) {
    return Status::Corruption("arena " + path + " footer counts exceed file");
  }
  const uint64_t expected =
      kHeaderBytes + payload_bytes + num_entries * kIndexEntryBytes +
      kFooterBytes;
  if (expected != file_size) {
    return Status::Corruption(
        "arena " + path + " size mismatch: footer implies " +
        std::to_string(expected) + " bytes, file has " +
        std::to_string(file_size));
  }

  // CRC32C over [magic end, crc field): header version + payload + index +
  // footer counts, streamed in bounded chunks.
  {
    uint32_t crc = 0;
    std::vector<uint8_t> chunk(1 << 20);
    uint64_t off = 4;
    const uint64_t end = file_size - 4;
    while (off < end) {
      const size_t n =
          static_cast<size_t>(std::min<uint64_t>(chunk.size(), end - off));
      SHP_RETURN_IF_ERROR(PReadFull(fd, off, chunk.data(), n, path));
      crc = Crc32c(chunk.data(), n, crc);
      off += n;
    }
    if (crc != stored_crc) {
      return Status::Corruption("arena " + path + " CRC32C mismatch");
    }
  }

  // Index: copy out of the file and validate structurally.
  std::vector<DiskArenaEntry> index(num_entries);
  if (num_entries > 0) {
    std::vector<uint8_t> raw(num_entries * kIndexEntryBytes);
    SHP_RETURN_IF_ERROR(PReadFull(fd, kHeaderBytes + payload_bytes, raw.data(),
                                  raw.size(), path));
    for (uint64_t i = 0; i < num_entries; ++i) {
      index[i] = UnpackEntry(raw.data() + i * kIndexEntryBytes);
      const DiskArenaEntry& e = index[i];
      if (i > 0 && e.vertex <= index[i - 1].vertex) {
        return Status::Corruption("arena " + path +
                                  " index vertices not ascending at entry " +
                                  std::to_string(i));
      }
      if (e.offset % sizeof(VertexId) != 0) {
        return Status::Corruption("arena " + path + " entry " +
                                  std::to_string(i) + " offset misaligned");
      }
      const uint64_t list_bytes =
          static_cast<uint64_t>(e.count) * sizeof(VertexId);
      if (e.offset > payload_bytes || list_bytes > payload_bytes - e.offset) {
        return Status::Corruption("arena " + path + " entry " +
                                  std::to_string(i) +
                                  " list out of payload range");
      }
    }
  }

  void* map =
      ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
  if (map == MAP_FAILED) return ErrnoError("mmap", path);

  std::shared_ptr<DiskArena> arena(new DiskArena());
  arena->map_ = static_cast<const uint8_t*>(map);
  arena->map_bytes_ = file_size;
  arena->payload_bytes_ = payload_bytes;
  arena->index_ = std::move(index);
  if (resident_cap_bytes > 0) {
    arena->max_windows_ =
        std::max<uint64_t>(2, resident_cap_bytes / kWindowBytes);
    const uint64_t num_windows =
        (file_size + kWindowBytes - 1) / kWindowBytes;
    arena->resident_ = std::vector<std::atomic<uint8_t>>(num_windows);
  }
  return arena;
}

DiskArena::~DiskArena() {
  if (map_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(map_), map_bytes_);
  }
}

std::span<const VertexId> DiskArena::Neighbors(VertexId v) const {
  auto it = std::lower_bound(
      index_.begin(), index_.end(), v,
      [](const DiskArenaEntry& e, VertexId x) { return e.vertex < x; });
  if (it == index_.end() || it->vertex != v) return {};
  const uint64_t bytes = static_cast<uint64_t>(it->count) * sizeof(VertexId);
  TouchPayload(it->offset, bytes);
  return {reinterpret_cast<const VertexId*>(payload_base() + it->offset),
          it->count};
}

void DiskArena::TouchPayload(uint64_t offset, uint64_t bytes) const {
  if (max_windows_ == 0 || bytes == 0) return;
  const uint64_t abs = kHeaderBytes + offset;
  const uint64_t first = abs / kWindowBytes;
  const uint64_t last = (abs + bytes - 1) / kWindowBytes;
  for (uint64_t w = first; w <= last; ++w) {
    // Fast path doubles as the CLOCK reference: a touch of a tracked window
    // marks it referenced so the evictor gives it a second chance instead
    // of madvising it out from under the reader (see header comment).
    const uint8_t prev =
        resident_[w].fetch_or(kReferenced, std::memory_order_relaxed);
    if ((prev & kTracked) != 0) continue;
    std::lock_guard<std::mutex> lock(mu_);
    if ((resident_[w].load(std::memory_order_relaxed) & kTracked) != 0) {
      continue;
    }
    resident_[w].store(kTracked | kReferenced, std::memory_order_relaxed);
    fifo_.push_back(static_cast<uint32_t>(w));
    touches_.fetch_add(1, std::memory_order_relaxed);
    // Bound the second-chance sweep: if every window keeps getting
    // re-referenced by concurrent readers, force-evict after two passes
    // rather than spin under the lock.
    uint64_t attempts = 2 * fifo_.size();
    while (fifo_.size() > max_windows_) {
      const uint64_t victim = fifo_.front();
      fifo_.pop_front();
      uint8_t expected = kTracked;
      const bool force = attempts == 0;
      if (attempts > 0) --attempts;
      if (!force && !resident_[victim].compare_exchange_strong(
                        expected, 0, std::memory_order_relaxed)) {
        // Referenced since last pass: clear the bit and requeue.
        resident_[victim].store(kTracked, std::memory_order_relaxed);
        fifo_.push_back(static_cast<uint32_t>(victim));
        continue;
      }
      if (force) resident_[victim].store(0, std::memory_order_relaxed);
      const uint64_t start = victim * kWindowBytes;
      const uint64_t len = std::min(kWindowBytes, map_bytes_ - start);
      // Read-only file-backed mapping: dropping the pages only evicts the
      // resident copy; the next access refaults identical bytes from disk.
      ::madvise(const_cast<uint8_t*>(map_) + start, len, MADV_DONTNEED);
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    // Peak is sampled after eviction: the just-pushed window's pages have
    // not been faulted yet, so post-eviction queue depth is what bounds RSS.
    if (fifo_.size() > peak_resident_.load(std::memory_order_relaxed)) {
      peak_resident_.store(fifo_.size(), std::memory_order_relaxed);
    }
  }
}

}  // namespace shp
