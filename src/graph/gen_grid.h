// Mesh hypergraph generator: a rows × cols grid of cells where each query is
// a stencil (cell plus its von Neumann neighbors). This is the "matrices
// from scientific computing, planar networks or meshes" family the paper's
// conclusion contrasts with social graphs — partitioners behave very
// differently here (clean cuts exist), so tests and the ablation bench use
// it as the structured extreme.
#pragma once

#include <cstdint>

#include "graph/bipartite_graph.h"

namespace shp {

struct GridConfig {
  uint32_t rows = 64;
  uint32_t cols = 64;
  /// 5 = von Neumann stencil (cell + 4 neighbors), 9 = Moore (+ diagonals).
  int stencil = 5;
};

BipartiteGraph GenerateGrid(const GridConfig& config);

}  // namespace shp
