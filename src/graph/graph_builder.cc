#include "graph/graph_builder.h"

#include <algorithm>

#include "common/logging.h"

namespace shp {

GraphBuilder::GraphBuilder(VertexId num_queries, VertexId num_data)
    : num_queries_(num_queries), num_data_(num_data) {}

void GraphBuilder::AddEdge(VertexId q, VertexId v) {
  num_queries_ = std::max(num_queries_, q + 1);
  num_data_ = std::max(num_data_, v + 1);
  edges_.emplace_back(q, v);
}

void GraphBuilder::AddHyperedge(VertexId q, const std::vector<VertexId>& data) {
  for (VertexId v : data) AddEdge(q, v);
}

BipartiteGraph GraphBuilder::Build(const Options& options) const {
  // Sort + dedupe (query, data) pairs.
  std::vector<std::pair<VertexId, VertexId>> edges = edges_;
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  // Per-query degree after dedupe.
  std::vector<EdgeIndex> qdeg(num_queries_, 0);
  for (const auto& [q, v] : edges) ++qdeg[q];

  // Query keep/renumber map.
  std::vector<VertexId> qmap(num_queries_, kInvalidVertex);
  VertexId kept_queries = 0;
  for (VertexId q = 0; q < num_queries_; ++q) {
    const bool keep = !options.drop_trivial_queries || qdeg[q] >= 2;
    if (!keep) continue;
    if (options.compact_queries) {
      qmap[q] = kept_queries++;
    } else {
      qmap[q] = q;
      kept_queries = std::max(kept_queries, q + 1);
    }
  }
  if (!options.compact_queries) kept_queries = num_queries_;

  // Query-side CSR.
  std::vector<EdgeIndex> query_offsets(kept_queries + 1, 0);
  for (const auto& [q, v] : edges) {
    if (qmap[q] != kInvalidVertex) ++query_offsets[qmap[q] + 1];
  }
  for (size_t i = 1; i < query_offsets.size(); ++i) {
    query_offsets[i] += query_offsets[i - 1];
  }
  std::vector<VertexId> query_adj(query_offsets.back());
  {
    std::vector<EdgeIndex> cursor(query_offsets.begin(),
                                  query_offsets.end() - 1);
    for (const auto& [q, v] : edges) {
      if (qmap[q] == kInvalidVertex) continue;
      query_adj[cursor[qmap[q]]++] = v;
    }
  }

  // Data-side CSR (counting sort on data id keeps query ids sorted within
  // each data adjacency because edges are processed in (q, v) order).
  std::vector<EdgeIndex> data_offsets(num_data_ + 1, 0);
  for (const auto& [q, v] : edges) {
    if (qmap[q] != kInvalidVertex) ++data_offsets[v + 1];
  }
  for (size_t i = 1; i < data_offsets.size(); ++i) {
    data_offsets[i] += data_offsets[i - 1];
  }
  std::vector<VertexId> data_adj(data_offsets.back());
  {
    std::vector<EdgeIndex> cursor(data_offsets.begin(), data_offsets.end() - 1);
    for (const auto& [q, v] : edges) {
      if (qmap[q] == kInvalidVertex) continue;
      data_adj[cursor[v]++] = qmap[q];
    }
  }

  return BipartiteGraph(std::move(query_offsets), std::move(query_adj),
                        std::move(data_offsets), std::move(data_adj));
}

}  // namespace shp
