#include "graph/io_partition.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace shp {

Status WritePartition(const std::vector<BucketId>& assignment,
                      const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path);
  for (BucketId b : assignment) out << b << '\n';
  if (!out) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

Result<std::vector<BucketId>> ReadPartition(const std::string& path,
                                            BucketId k,
                                            size_t expected_size) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::vector<BucketId> assignment;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '%' || line[0] == '#') continue;
    std::istringstream ls(line);
    int64_t bucket;
    if (!(ls >> bucket)) {
      return Status::Corruption(path + ": malformed line " +
                                std::to_string(line_number));
    }
    if (bucket < 0 || (k > 0 && bucket >= k)) {
      return Status::OutOfRange(path + ": bucket " + std::to_string(bucket) +
                                " out of range at line " +
                                std::to_string(line_number));
    }
    std::string rest;
    if (ls >> rest) {
      return Status::Corruption(path + ": trailing garbage at line " +
                                std::to_string(line_number) + ": " + line);
    }
    assignment.push_back(static_cast<BucketId>(bucket));
  }
  if (expected_size > 0 && assignment.size() != expected_size) {
    return Status::Corruption(path + ": expected " +
                              std::to_string(expected_size) + " entries, got " +
                              std::to_string(assignment.size()));
  }
  return assignment;
}

}  // namespace shp
