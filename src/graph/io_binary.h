// Binary snapshot format for fast load of large generated instances:
//   magic "SHPG" | version u32 | num_queries u32 | num_data u32 |
//   num_edges u64 | query_offsets[] | query_adj[] | data_offsets[] |
//   data_adj[] | footer checksum (FNV-1a over payload).
#pragma once

#include <string>

#include "common/status.h"
#include "graph/bipartite_graph.h"

namespace shp {

Status WriteBinaryGraph(const BipartiteGraph& graph, const std::string& path);

Result<BipartiteGraph> ReadBinaryGraph(const std::string& path);

}  // namespace shp
