#include "graph/graph_stats.h"

#include <sstream>

namespace shp {

GraphStats ComputeGraphStats(const BipartiteGraph& graph) {
  GraphStats s;
  s.num_queries = graph.num_queries();
  s.num_data = graph.num_data();
  s.num_edges = graph.num_edges();
  s.max_query_degree = graph.MaxQueryDegree();
  s.max_data_degree = graph.MaxDataDegree();
  for (VertexId v = 0; v < graph.num_data(); ++v) {
    if (graph.DataDegree(v) == 0) ++s.isolated_data;
  }
  s.avg_query_degree =
      s.num_queries > 0
          ? static_cast<double>(s.num_edges) / s.num_queries
          : 0.0;
  s.avg_data_degree =
      s.num_data > 0 ? static_cast<double>(s.num_edges) / s.num_data : 0.0;
  return s;
}

std::string GraphStats::ToString() const {
  std::ostringstream out;
  out << "|Q|=" << num_queries << " |D|=" << num_data << " |E|=" << num_edges
      << " avg_qdeg=" << avg_query_degree << " avg_ddeg=" << avg_data_degree
      << " max_qdeg=" << max_query_degree << " max_ddeg=" << max_data_degree
      << " isolated_data=" << isolated_data;
  return out.str();
}

}  // namespace shp
