// Bipartite edge-list text format: one "query_id data_id" pair per line,
// '#' comments — the shape of SNAP exports after bipartite conversion.
// Also provides the paper's conversion from a unipartite (directed or
// undirected) edge list: every vertex u becomes a query whose hyperedge is
// {u} ∪ out-neighbors(u), matching "to render a profile-page ... fetch
// information about a user's friends" (paper §4.1).
#pragma once

#include <functional>
#include <string>

#include "common/status.h"
#include "graph/bipartite_graph.h"

namespace shp {

/// Streams "q d" pairs from a file line by line, invoking fn(q, d) per edge,
/// without materializing the graph — memory is bounded by one line. Same
/// syntax rules as ReadBipartiteEdgeList ('#'/'%' comments, malformed or
/// negative-id lines are Corruption). The bounded-memory ingest
/// (graph/streaming_ingest.h) runs its counting and placement passes on this.
Status ForEachEdgePair(const std::string& path,
                       const std::function<void(int64_t, int64_t)>& fn);

/// Reads "q d" pairs. Ids may be sparse; they are compacted preserving order.
Result<BipartiteGraph> ReadBipartiteEdgeList(const std::string& path,
                                             bool drop_trivial = true);

/// Parses bipartite edge-list content from a string (for tests).
Result<BipartiteGraph> ParseBipartiteEdgeList(const std::string& content,
                                              bool drop_trivial = true);

/// Reads a unipartite "u v" edge list (SNAP style) and converts to the
/// storage-sharding hypergraph: hyperedge(u) = {u} ∪ N(u). If `symmetrize`
/// is true, each edge is used in both directions.
Result<BipartiteGraph> ReadUnipartiteAsHypergraph(const std::string& path,
                                                  bool symmetrize = true,
                                                  bool drop_trivial = true);

/// Writes graph as a bipartite edge list.
Status WriteBipartiteEdgeList(const BipartiteGraph& graph,
                              const std::string& path);

}  // namespace shp
