#include "graph/gen_powerlaw.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "graph/graph_builder.h"

namespace shp {

// --- ZipfSampler (Devroye's rejection method for the Zipf distribution) ---

ZipfSampler::ZipfSampler(uint64_t n, double exponent)
    : n_(n), exponent_(exponent) {
  SHP_CHECK_GT(n, 0u);
  SHP_CHECK_GT(exponent, 1.0);
  inv_1_minus_e_ = 1.0 / (1.0 - exponent_);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
}

double ZipfSampler::H(double x) const {
  // Integral of x^-e: H(x) = x^(1-e) / (1-e).
  return std::pow(x, 1.0 - exponent_) * inv_1_minus_e_;
}

double ZipfSampler::HInverse(double x) const {
  return std::pow(x * (1.0 - exponent_), inv_1_minus_e_);
}

uint64_t ZipfSampler::Sample(double u1, double u2) const {
  // Rejection loop flattened: retry by re-mixing the uniforms. A couple of
  // iterations suffice in practice; hard cap keeps it deterministic-time.
  double a = u1, b = u2;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double u = h_n_ + a * (h_x1_ - h_n_);
    const double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    k = std::max<uint64_t>(1, std::min(k, n_));
    const double accept_bound =
        k - x <= 0.5
            ? 1.0
            : std::pow(static_cast<double>(k) / x, -exponent_);
    if (b < accept_bound) return k - 1;  // 0-based rank
    // Remix for the next attempt.
    a = static_cast<double>(SplitMix64(static_cast<uint64_t>(a * 1e18) +
                                       attempt) >>
                            11) *
        0x1.0p-53;
    b = static_cast<double>(SplitMix64(static_cast<uint64_t>(b * 1e18) +
                                       attempt + 977) >>
                            11) *
        0x1.0p-53;
  }
  return 0;  // overwhelmingly popular head item as a safe fallback
}

// --- Power-law bipartite generator ---

namespace {

// Samples a query degree from a truncated power law with the given exponent,
// scaled so the expected total pin count is close to target_edges.
class DegreeSampler {
 public:
  DegreeSampler(double exponent, double mean_degree, uint64_t max_degree)
      : zipf_(max_degree, exponent) {
    // Expected value of (1 + Zipf(exponent, max)) — measure once numerically.
    double expected = 0.0;
    double norm = 0.0;
    for (uint64_t d = 1; d <= max_degree; ++d) {
      const double w = std::pow(static_cast<double>(d), -exponent);
      expected += static_cast<double>(d) * w;
      norm += w;
    }
    expected /= norm;
    scale_ = mean_degree / expected;
  }

  uint64_t Sample(uint64_t seed, uint64_t query) const {
    const double u1 = HashToUnitDouble(seed, query, 0x5eed);
    const double u2 = HashToUnitDouble(seed, query, 0xface);
    const uint64_t base = zipf_.Sample(u1, u2) + 1;
    // Scale fractionally: floor + Bernoulli on the remainder.
    const double scaled = static_cast<double>(base) * scale_;
    uint64_t degree = static_cast<uint64_t>(scaled);
    if (HashToUnitDouble(seed, query, 0xf00d) < scaled - std::floor(scaled)) {
      ++degree;
    }
    return std::max<uint64_t>(1, degree);
  }

 private:
  ZipfSampler zipf_;
  double scale_ = 1.0;
};

}  // namespace

BipartiteGraph GeneratePowerLaw(const PowerLawConfig& config) {
  SHP_CHECK_GT(config.num_queries, 0u);
  SHP_CHECK_GT(config.num_data, 0u);
  const double mean_degree =
      static_cast<double>(config.target_edges) / config.num_queries;
  const uint64_t max_degree = std::max<uint64_t>(
      8, std::min<uint64_t>(config.num_data,
                            static_cast<uint64_t>(32 * mean_degree)));
  DegreeSampler degrees(config.query_degree_exponent, mean_degree, max_degree);
  ZipfSampler popularity(config.num_data, config.data_popularity_exponent);

  // Popularity rank r maps to data vertex perm[r]: decorrelates popularity
  // from vertex id so the id space carries no accidental structure.
  std::vector<VertexId> perm(config.num_data);
  for (VertexId v = 0; v < config.num_data; ++v) perm[v] = v;
  Rng rng(config.seed ^ 0x9e3779b97f4a7c15ULL);
  std::shuffle(perm.begin(), perm.end(), rng);

  GraphBuilder builder(config.num_queries, config.num_data);
  for (VertexId q = 0; q < config.num_queries; ++q) {
    const uint64_t degree = degrees.Sample(config.seed, q);
    // Home location: local endpoints cluster around it.
    const uint64_t home = HashToBounded(config.seed, q, 0x401e, config.num_data);
    for (uint64_t j = 0; j < degree; ++j) {
      const uint64_t stream = q * 0x1000193ULL + j;
      VertexId v;
      if (HashToUnitDouble(config.seed, stream, 1) < config.locality) {
        // Geometric jitter around home, wrapping around the id space.
        const double u = HashToUnitDouble(config.seed, stream, 2);
        const int64_t offset = static_cast<int64_t>(
            std::floor(std::log(std::max(u, 1e-300)) /
                       std::log(1.0 - 1.0 / config.locality_spread)));
        const int64_t signbit =
            HashToUnitDouble(config.seed, stream, 3) < 0.5 ? -1 : 1;
        int64_t pos = static_cast<int64_t>(home) + signbit * offset;
        const int64_t n = static_cast<int64_t>(config.num_data);
        pos = ((pos % n) + n) % n;
        v = static_cast<VertexId>(pos);
      } else {
        const double u1 = HashToUnitDouble(config.seed, stream, 4);
        const double u2 = HashToUnitDouble(config.seed, stream, 5);
        v = perm[popularity.Sample(u1, u2)];
      }
      builder.AddEdge(q, v);
    }
  }

  GraphBuilder::Options options;
  options.drop_trivial_queries = config.drop_trivial_queries;
  return builder.Build(options);
}

}  // namespace shp
