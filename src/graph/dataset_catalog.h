// Catalog of the paper's Table 1 datasets with synthesized equivalents.
//
// The paper evaluates on SNAP graphs (email-Enron .. soc-LJ), web crawls,
// and Darwini-generated Facebook-like graphs (FB-10M .. FB-10B). None of
// those inputs ship with this repository, so each catalog entry records the
// paper's |Q| / |D| / |E| and the generator family + parameters whose output
// matches the dataset's structural character (degree tails, locality,
// density). Synthesize(entry, scale, seed) produces the instance scaled by
// `scale` (0 < scale ≤ 1 keeps avg degrees fixed and shrinks vertex counts).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/bipartite_graph.h"

namespace shp {

enum class DatasetFamily {
  kPowerLaw,  ///< SNAP communication/rating graphs (Enron, Epinions)
  kWeb,       ///< web crawls with host locality (Stanford, BerkStan)
  kSocial,    ///< friendship graphs incl. Darwini FB-* (Pokec, LJ, FB-*)
};

struct DatasetSpec {
  std::string name;
  DatasetFamily family;
  // Paper-reported sizes (Table 1).
  uint64_t paper_queries;
  uint64_t paper_data;
  uint64_t paper_edges;
  /// Default down-scale applied on top of the caller's scale so the whole
  /// bench suite stays laptop-sized (the FB-10B row would otherwise need
  /// ~160 GB). 1.0 for the small graphs.
  double default_scale;
};

/// All Table 1 rows, in paper order.
const std::vector<DatasetSpec>& DatasetCatalog();

/// Looks up a spec by name.
Result<DatasetSpec> FindDataset(const std::string& name);

/// Generates the synthetic equivalent of `spec`, scaled by
/// scale × spec.default_scale (vertex and pin counts shrink proportionally;
/// average degrees are preserved). Deterministic in `seed`.
BipartiteGraph Synthesize(const DatasetSpec& spec, double scale = 1.0,
                          uint64_t seed = 42);

}  // namespace shp
