#include "graph/streaming_ingest.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/checksum.h"
#include "common/logging.h"
#include "graph/disk_arena.h"
#include "graph/io_edgelist.h"

namespace shp {
namespace {

constexpr char kBinaryMagic[4] = {'S', 'H', 'P', 'G'};
constexpr uint32_t kBinaryVersion = 1;

// Rough per-entry cost of the sparse→dense id maps on the text path
// (unordered_map node + bucket overhead); charged against the budget while
// the maps are alive (both passes).
constexpr uint64_t kIdMapBytesPerEntry = 48;

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return Status::Ok();
  return Status::IoError("mkdir " + dir + ": " + std::strerror(errno));
}

/// Sorted-degree prefix sums: resident adjacency bytes if lists with
/// degree ≤ T stay in RAM.
class DegreeProfile {
 public:
  explicit DegreeProfile(const std::vector<uint32_t>& degrees)
      : sorted_(degrees) {
    std::sort(sorted_.begin(), sorted_.end());
    prefix_bytes_.resize(sorted_.size() + 1, 0);
    for (size_t i = 0; i < sorted_.size(); ++i) {
      prefix_bytes_[i + 1] =
          prefix_bytes_[i] + uint64_t{sorted_[i]} * sizeof(VertexId);
    }
  }

  uint64_t ResidentBytes(uint32_t threshold) const {
    auto it = std::upper_bound(sorted_.begin(), sorted_.end(), threshold);
    return prefix_bytes_[static_cast<size_t>(it - sorted_.begin())];
  }

  uint64_t SpilledCount(uint32_t threshold) const {
    auto it = std::upper_bound(sorted_.begin(), sorted_.end(), threshold);
    return static_cast<uint64_t>(sorted_.end() - it);
  }

  uint32_t MaxDegree() const { return sorted_.empty() ? 0 : sorted_.back(); }

 private:
  std::vector<uint32_t> sorted_;
  std::vector<uint64_t> prefix_bytes_;
};

struct ThresholdPlan {
  uint32_t query_threshold = 0;
  uint32_t data_threshold = 0;
  double scale = 1.0;
  bool spills = false;
};

/// Scales the requested thresholds down geometrically until metadata +
/// resident adjacency + (cache, if anything spills) fits the budget.
Result<ThresholdPlan> FitThresholds(const DegreeProfile& query_profile,
                                    const DegreeProfile& data_profile,
                                    double t0_query, double t0_data,
                                    uint64_t fixed_bytes,
                                    uint64_t cache_total_bytes,
                                    uint64_t budget_bytes) {
  auto clamp_t = [](double t) {
    if (t < 0) return uint32_t{0};
    if (t >= static_cast<double>(std::numeric_limits<uint32_t>::max())) {
      return std::numeric_limits<uint32_t>::max();
    }
    return static_cast<uint32_t>(std::floor(t));
  };
  double alpha = 1.0;
  uint64_t last_need = 0;
  while (true) {
    ThresholdPlan plan;
    plan.query_threshold = clamp_t(alpha * t0_query);
    plan.data_threshold = clamp_t(alpha * t0_data);
    plan.scale = alpha;
    plan.spills = query_profile.MaxDegree() > plan.query_threshold ||
                  data_profile.MaxDegree() > plan.data_threshold;
    const uint64_t resident =
        query_profile.ResidentBytes(plan.query_threshold) +
        data_profile.ResidentBytes(plan.data_threshold);
    // Every spilled vertex costs an arena index entry twice at the pass-2
    // peak: the writer's in-progress index and DiskArena::Open's validated
    // owned copy (the read buffer overlaps the writer's freed allocation).
    const uint64_t index_bytes =
        2 * sizeof(DiskArenaEntry) *
        (query_profile.SpilledCount(plan.query_threshold) +
         data_profile.SpilledCount(plan.data_threshold));
    last_need = fixed_bytes + resident + index_bytes +
                (plan.spills ? cache_total_bytes : 0);
    if (last_need <= budget_bytes) return plan;
    if (plan.query_threshold == 0 && plan.data_threshold == 0) break;
    alpha *= 0.8;
  }
  return Status::InvalidArgument(
      "memory budget too small: even the all-spilled split needs " +
      std::to_string(last_need) + " bytes (metadata + spill cache) against " +
      std::to_string(budget_bytes));
}

/// One side's placement state during pass 2.
struct SideState {
  std::vector<uint32_t> degree;  // raw on entry, final after normalization
  std::vector<uint64_t> loc;     // resident base index, or kSpilledBit|rank
  std::vector<uint32_t> fill;    // resident fill cursors (scatter path only)
  std::vector<VertexId> resident;
  std::optional<DiskArenaWriter> writer;
  std::string arena_path;
  std::shared_ptr<DiskArena> arena;
  uint32_t threshold = 0;
  uint32_t num_spilled = 0;
  uint64_t spilled_payload = 0;
};

/// Assigns every vertex either a resident base slot or a spill rank, sizes
/// the resident arena, and opens the arena writer if needed — in scatter
/// mode for interleaved arrivals (edge-list path), or left in its default
/// state for the sequential BeginEntry path (binary path).
Status LayOutSide(SideState* side, uint32_t threshold,
                  const std::string& arena_path, uint64_t scatter_buffer,
                  bool track_fill, bool scatter) {
  side->threshold = threshold;
  const size_t n = side->degree.size();
  side->loc.resize(n);
  std::vector<std::pair<VertexId, uint32_t>> plan;
  uint64_t base = 0;
  for (size_t i = 0; i < n; ++i) {
    if (side->degree[i] > threshold) {
      side->loc[i] = HybridAdjacency::kSpilledBit | plan.size();
      plan.emplace_back(static_cast<VertexId>(i), side->degree[i]);
    } else {
      side->loc[i] = base;
      base += side->degree[i];
    }
  }
  side->num_spilled = static_cast<uint32_t>(plan.size());
  side->resident.resize(base);
  if (track_fill) side->fill.assign(n, 0);
  if (!plan.empty()) {
    auto writer = DiskArenaWriter::Create(arena_path);
    if (!writer.ok()) return writer.status();
    side->writer.emplace(std::move(writer).value());
    side->writer->SetScatterBufferBytes(scatter_buffer);
    side->arena_path = arena_path;
    if (scatter) SHP_RETURN_IF_ERROR(side->writer->PlanScatter(plan));
  }
  return Status::Ok();
}

/// Routes one arriving neighbor to the resident arena or the spill writer.
inline Status AddNeighbor(SideState* side, VertexId v, VertexId neighbor) {
  const uint64_t loc = side->loc[v];
  if ((loc & HybridAdjacency::kSpilledBit) != 0) {
    return side->writer->ScatterAdd(
        static_cast<uint32_t>(loc & ~HybridAdjacency::kSpilledBit), neighbor);
  }
  if (side->fill[v] >= side->degree[v]) {
    return Status::Corruption(
        "streaming ingest: input changed between passes (vertex " +
        std::to_string(v) + " grew)");
  }
  side->resident[loc + side->fill[v]++] = neighbor;
  return Status::Ok();
}

/// Sorts + dedups every resident list in place and repacks the arena
/// compactly (the write cursor never passes a list's original base).
Status NormalizeResident(SideState* side) {
  uint64_t write = 0;
  for (size_t i = 0; i < side->degree.size(); ++i) {
    if ((side->loc[i] & HybridAdjacency::kSpilledBit) != 0) continue;
    const uint64_t base = side->loc[i];
    const uint32_t deg = side->degree[i];
    if (!side->fill.empty() && side->fill[i] != deg) {
      return Status::Corruption(
          "streaming ingest: input changed between passes (vertex " +
          std::to_string(i) + " shrank)");
    }
    auto begin = side->resident.begin() + static_cast<int64_t>(base);
    auto end = begin + deg;
    std::sort(begin, end);
    auto last = std::unique(begin, end);
    const uint32_t final_deg = static_cast<uint32_t>(last - begin);
    SHP_CHECK_LE(write, base);
    std::copy(begin, begin + final_deg,
              side->resident.begin() + static_cast<int64_t>(write));
    side->loc[i] = write;
    side->degree[i] = final_deg;
    write += final_deg;
  }
  side->resident.resize(write);
  side->resident.shrink_to_fit();
  side->fill.clear();
  side->fill.shrink_to_fit();
  return Status::Ok();
}

/// Finish the spill writer (normalizing if asked), patch degrees/locations
/// from the final index, and record the payload size.
Status FinishSpill(SideState* side, bool normalize) {
  if (!side->writer.has_value()) return Status::Ok();
  SHP_RETURN_IF_ERROR(side->writer->Finish(normalize));
  for (const DiskArenaEntry& e : side->writer->index()) {
    side->degree[e.vertex] = e.count;
    side->loc[e.vertex] = HybridAdjacency::kSpilledBit | e.offset;
  }
  side->spilled_payload = side->writer->payload_bytes();
  return Status::Ok();
}

/// Open the mmap'd read view and (optionally) unlink the backing file — the
/// mapping keeps it alive until the graph is destroyed.
Status OpenSpill(SideState* side, uint64_t cache_bytes, bool keep_file) {
  if (!side->writer.has_value()) return Status::Ok();
  side->writer.reset();  // closes the fd
  auto arena = DiskArena::Open(side->arena_path, cache_bytes);
  if (!arena.ok()) return arena.status();
  side->arena = std::move(arena).value();
  if (!keep_file) ::unlink(side->arena_path.c_str());
  return Status::Ok();
}

struct BudgetShape {
  uint64_t budget_bytes = 0;
  uint64_t cache_total = 0;
  uint64_t scatter_buffer = 0;
};

BudgetShape ShapeBudget(const StreamingIngestOptions& options) {
  BudgetShape shape;
  shape.budget_bytes = options.memory_budget_mb << 20;
  shape.cache_total = options.spill_cache_mb != 0
                          ? options.spill_cache_mb << 20
                          : shape.budget_bytes / 4;
  // Two arenas × the two-window eviction floor.
  shape.cache_total =
      std::max<uint64_t>(shape.cache_total, 4 * DiskArena::kWindowBytes);
  shape.scatter_buffer = std::clamp<uint64_t>(shape.budget_bytes / 32,
                                              64 * 1024, 4ull << 20);
  return shape;
}

BipartiteGraph AssembleHybrid(SideState&& query_side, SideState&& data_side,
                              EdgeIndex num_edges, const BudgetShape& shape,
                              const ThresholdPlan& plan, uint64_t edges_read,
                              StreamingIngestStats* stats) {
  if (stats != nullptr) {
    stats->edges_read = edges_read;
    stats->num_edges = num_edges;
    stats->num_queries = static_cast<VertexId>(query_side.degree.size());
    stats->num_data = static_cast<VertexId>(data_side.degree.size());
    stats->query_threshold = query_side.threshold;
    stats->data_threshold = data_side.threshold;
    stats->threshold_scale = plan.scale;
    stats->spilled_queries = query_side.num_spilled;
    stats->spilled_data = data_side.num_spilled;
    stats->resident_bytes =
        (query_side.resident.size() + data_side.resident.size()) *
        sizeof(VertexId);
    stats->spilled_bytes =
        query_side.spilled_payload + data_side.spilled_payload;
    stats->spill_cache_bytes =
        (query_side.arena != nullptr ? query_side.arena->resident_cap_bytes()
                                     : 0) +
        (data_side.arena != nullptr ? data_side.arena->resident_cap_bytes()
                                    : 0);
    stats->memory_budget_bytes = shape.budget_bytes;
  }
  HybridAdjacency hybrid;
  hybrid.num_edges = num_edges;
  auto move_side = [](SideState&& s) {
    HybridAdjacency::Side out;
    out.degree = std::move(s.degree);
    out.loc = std::move(s.loc);
    out.resident = std::move(s.resident);
    out.spill = std::move(s.arena);
    return out;
  };
  hybrid.query = move_side(std::move(query_side));
  hybrid.data = move_side(std::move(data_side));
  return BipartiteGraph(std::move(hybrid));
}

}  // namespace

// -------------------------------------------------------- text edge list ----

Result<BipartiteGraph> StreamingIngestEdgeList(
    const std::string& path, const StreamingIngestOptions& options,
    StreamingIngestStats* stats) {
  const BudgetShape shape = ShapeBudget(options);

  // Pass 1: compact ids (first-appearance order, exactly as the in-memory
  // reader) and count raw per-vertex degrees.
  std::unordered_map<int64_t, VertexId> query_ids, data_ids;
  SideState query_side, data_side;
  uint64_t edges_read = 0;
  SHP_RETURN_IF_ERROR(ForEachEdgePair(path, [&](int64_t q, int64_t d) {
    auto [qit, q_new] = query_ids.try_emplace(
        q, static_cast<VertexId>(query_ids.size()));
    if (q_new) query_side.degree.push_back(0);
    auto [dit, d_new] =
        data_ids.try_emplace(d, static_cast<VertexId>(data_ids.size()));
    if (d_new) data_side.degree.push_back(0);
    ++query_side.degree[qit->second];
    ++data_side.degree[dit->second];
    ++edges_read;
  }));
  if (edges_read == 0) return Status::InvalidArgument("edge list: no edges");

  const uint64_t num_queries = query_side.degree.size();
  const uint64_t num_data = data_side.degree.size();
  // Metadata (degree + loc) plus ingest transients: the id maps, the pass-2
  // fill cursors, the threshold-planning degree profiles (sorted copy +
  // prefix sums), and the two scatter buffers.
  const uint64_t fixed_bytes =
      (num_queries + num_data) * (sizeof(uint32_t) + sizeof(uint64_t)) +
      (num_queries + num_data) * kIdMapBytesPerEntry +
      (num_queries + num_data) * sizeof(uint32_t) +
      (num_queries + num_data) * (sizeof(uint32_t) + sizeof(uint64_t)) +
      2 * shape.scatter_buffer;

  DegreeProfile query_profile(query_side.degree);
  DegreeProfile data_profile(data_side.degree);
  const double mean_query =
      static_cast<double>(edges_read) / static_cast<double>(num_queries);
  const double mean_data =
      static_cast<double>(edges_read) / static_cast<double>(num_data);
  auto plan_result = FitThresholds(
      query_profile, data_profile, options.high_degree_factor * mean_query,
      options.high_degree_factor * mean_data, fixed_bytes, shape.cache_total,
      shape.budget_bytes);
  if (!plan_result.ok()) return plan_result.status();
  const ThresholdPlan plan = plan_result.value();

  if (plan.spills && options.spill_dir.empty()) {
    return Status::InvalidArgument(
        "streaming ingest: spill_dir required (thresholds " +
        std::to_string(plan.query_threshold) + "/" +
        std::to_string(plan.data_threshold) + " spill adjacency)");
  }
  if (plan.spills) SHP_RETURN_IF_ERROR(EnsureDir(options.spill_dir));

  SHP_RETURN_IF_ERROR(LayOutSide(&query_side, plan.query_threshold,
                                 options.spill_dir + "/query_spill.shpa",
                                 shape.scatter_buffer, /*track_fill=*/true,
                                 /*scatter=*/true));
  SHP_RETURN_IF_ERROR(LayOutSide(&data_side, plan.data_threshold,
                                 options.spill_dir + "/data_spill.shpa",
                                 shape.scatter_buffer, /*track_fill=*/true,
                                 /*scatter=*/true));

  // Pass 2: route every edge to the resident arena or the spill writer.
  Status route = Status::Ok();
  uint64_t edges_seen = 0;
  SHP_RETURN_IF_ERROR(ForEachEdgePair(path, [&](int64_t q, int64_t d) {
    if (!route.ok()) return;
    auto qit = query_ids.find(q);
    auto dit = data_ids.find(d);
    if (qit == query_ids.end() || dit == data_ids.end()) {
      route = Status::Corruption(
          "streaming ingest: input changed between passes (new id)");
      return;
    }
    ++edges_seen;
    route = AddNeighbor(&query_side, qit->second, dit->second);
    if (!route.ok()) return;
    route = AddNeighbor(&data_side, dit->second, qit->second);
  }));
  SHP_RETURN_IF_ERROR(route);
  if (edges_seen != edges_read) {
    return Status::Corruption(
        "streaming ingest: input changed between passes (" +
        std::to_string(edges_read) + " pairs became " +
        std::to_string(edges_seen) + ")");
  }
  query_ids.clear();
  data_ids.clear();

  SHP_RETURN_IF_ERROR(NormalizeResident(&query_side));
  SHP_RETURN_IF_ERROR(NormalizeResident(&data_side));
  SHP_RETURN_IF_ERROR(FinishSpill(&query_side, /*normalize=*/true));
  SHP_RETURN_IF_ERROR(FinishSpill(&data_side, /*normalize=*/true));

  // Deduplication is symmetric, so both directions agree on the edge count.
  EdgeIndex num_edges = 0, data_edges = 0;
  for (uint32_t d : query_side.degree) num_edges += d;
  for (uint32_t d : data_side.degree) data_edges += d;
  if (num_edges != data_edges) {
    return Status::Internal("streaming ingest: side edge counts diverged (" +
                            std::to_string(num_edges) + " vs " +
                            std::to_string(data_edges) + ")");
  }

  const int arenas = (query_side.writer.has_value() ? 1 : 0) +
                     (data_side.writer.has_value() ? 1 : 0);
  const uint64_t cache_each = arenas > 0 ? shape.cache_total / arenas : 0;
  SHP_RETURN_IF_ERROR(
      OpenSpill(&query_side, cache_each, options.keep_spill_files));
  SHP_RETURN_IF_ERROR(
      OpenSpill(&data_side, cache_each, options.keep_spill_files));

  return AssembleHybrid(std::move(query_side), std::move(data_side),
                        num_edges, shape, plan, edges_read, stats);
}

// ------------------------------------------------------- binary snapshot ----

namespace {

/// fread wrapper chaining the snapshot's FNV-1a checksum.
class ChecksummingReader {
 public:
  explicit ChecksummingReader(std::FILE* f) : f_(f) {}

  template <typename T>
  bool ReadValue(T* value) {
    if (std::fread(value, sizeof(T), 1, f_) != 1) return false;
    checksum_ = Fnv1a64(value, sizeof(T), checksum_);
    return true;
  }

  bool ReadBytes(void* data, size_t size) {
    if (size == 0) return true;
    if (std::fread(data, 1, size, f_) != size) return false;
    checksum_ = Fnv1a64(data, size, checksum_);
    return true;
  }

  uint64_t checksum() const { return checksum_; }

 private:
  std::FILE* f_;
  uint64_t checksum_ = kFnv1a64Init;
};

bool OffsetsWellFormed(const std::vector<EdgeIndex>& offsets,
                       EdgeIndex num_edges) {
  if (offsets.empty() || offsets.front() != 0 || offsets.back() != num_edges) {
    return false;
  }
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) return false;
  }
  return true;
}

/// Pass 2 over one side of the snapshot: lists arrive contiguously and
/// sorted, so resident lists are copied straight into the packed arena and
/// spilled lists take the arena writer's sequential path. Enforces strictly
/// ascending in-range ids (the invariant WriteBinaryGraph guarantees).
Status PlaceBinarySide(std::FILE* f, uint64_t adj_start, SideState* side,
                       VertexId neighbor_limit, const std::string& path,
                       const char* side_name) {
  if (std::fseek(f, static_cast<long>(adj_start), SEEK_SET) != 0) {
    return Status::IoError(path + ": seek failed");
  }
  std::vector<VertexId> chunk(256 * 1024);
  const size_t n = side->degree.size();
  for (size_t v = 0; v < n; ++v) {
    const uint32_t deg = side->degree[v];
    const uint64_t loc = side->loc[v];
    const bool spilled = (loc & HybridAdjacency::kSpilledBit) != 0;
    if (spilled) {
      SHP_RETURN_IF_ERROR(
          side->writer->BeginEntry(static_cast<VertexId>(v), deg));
    }
    VertexId* dst = spilled ? nullptr : side->resident.data() + loc;
    uint64_t remaining = deg;
    VertexId prev = kInvalidVertex;  // wraps: first compare uses have_prev
    bool have_prev = false;
    while (remaining > 0) {
      const size_t take =
          static_cast<size_t>(std::min<uint64_t>(remaining, chunk.size()));
      if (std::fread(chunk.data(), sizeof(VertexId), take, f) != take) {
        return Status::Corruption(path + ": truncated adjacency");
      }
      for (size_t i = 0; i < take; ++i) {
        const VertexId id = chunk[i];
        if (id >= neighbor_limit || (have_prev && id <= prev)) {
          return Status::Corruption(
              path + ": " + side_name + " adjacency of vertex " +
              std::to_string(v) + " not sorted/unique/in-range");
        }
        prev = id;
        have_prev = true;
      }
      if (spilled) {
        SHP_RETURN_IF_ERROR(side->writer->AppendToEntry(
            std::span<const VertexId>(chunk.data(), take)));
      } else {
        std::memcpy(dst, chunk.data(), take * sizeof(VertexId));
        dst += take;
      }
      remaining -= take;
    }
  }
  return Status::Ok();
}

}  // namespace

Result<BipartiteGraph> StreamingIngestBinary(
    const std::string& path, const StreamingIngestOptions& options,
    StreamingIngestStats* stats) {
  const BudgetShape shape = ShapeBudget(options);

  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  struct FileCloser {
    std::FILE* f;
    ~FileCloser() { std::fclose(f); }
  } closer{f};

  uint64_t file_size = 0;
  if (std::fseek(f, 0, SEEK_END) != 0) {
    return Status::IoError(path + ": seek failed");
  }
  {
    const long end = std::ftell(f);
    if (end < 0) return Status::IoError(path + ": tell failed");
    file_size = static_cast<uint64_t>(end);
    std::rewind(f);
  }

  char magic[4];
  if (std::fread(magic, 1, 4, f) != 4 ||
      std::memcmp(magic, kBinaryMagic, 4) != 0) {
    return Status::Corruption(path + ": bad magic");
  }
  ChecksummingReader reader(f);
  uint32_t version = 0;
  VertexId num_queries = 0, num_data = 0;
  EdgeIndex num_edges = 0;
  if (!reader.ReadValue(&version)) {
    return Status::Corruption(path + ": truncated file");
  }
  if (version != kBinaryVersion) {
    return Status::Corruption(path + ": unsupported version " +
                              std::to_string(version));
  }
  if (!reader.ReadValue(&num_queries) || !reader.ReadValue(&num_data) ||
      !reader.ReadValue(&num_edges)) {
    return Status::Corruption(path + ": truncated file");
  }
  // Same size pin as ReadBinaryGraph: counts are validated against the real
  // file size before any count-sized allocation.
  const uint64_t header_bytes = 4 + sizeof(version) + sizeof(num_queries) +
                                sizeof(num_data) + sizeof(num_edges);
  const uint64_t body_bytes =
      (uint64_t{num_queries} + 1 + uint64_t{num_data} + 1) *
          sizeof(EdgeIndex) +
      2 * num_edges * sizeof(VertexId) + sizeof(uint64_t);
  if (num_edges > file_size || body_bytes != file_size - header_bytes) {
    return Status::Corruption(path + ": header counts do not match size " +
                              std::to_string(file_size));
  }

  // Pass 1 (single sequential sweep): capture both offsets arrays, stream
  // the adjacency through the checksum without keeping it.
  std::vector<EdgeIndex> query_offsets(uint64_t{num_queries} + 1);
  std::vector<EdgeIndex> data_offsets(uint64_t{num_data} + 1);
  if (!reader.ReadBytes(query_offsets.data(),
                        query_offsets.size() * sizeof(EdgeIndex))) {
    return Status::Corruption(path + ": truncated file");
  }
  const uint64_t query_adj_start =
      header_bytes + query_offsets.size() * sizeof(EdgeIndex);
  {
    std::vector<uint8_t> buf(1 << 20);
    uint64_t left = num_edges * sizeof(VertexId);
    while (left > 0) {
      const size_t take =
          static_cast<size_t>(std::min<uint64_t>(left, buf.size()));
      if (!reader.ReadBytes(buf.data(), take)) {
        return Status::Corruption(path + ": truncated file");
      }
      left -= take;
    }
    if (!reader.ReadBytes(data_offsets.data(),
                          data_offsets.size() * sizeof(EdgeIndex))) {
      return Status::Corruption(path + ": truncated file");
    }
    left = num_edges * sizeof(VertexId);
    while (left > 0) {
      const size_t take =
          static_cast<size_t>(std::min<uint64_t>(left, buf.size()));
      if (!reader.ReadBytes(buf.data(), take)) {
        return Status::Corruption(path + ": truncated file");
      }
      left -= take;
    }
  }
  const uint64_t data_adj_start = query_adj_start +
                                  num_edges * sizeof(VertexId) +
                                  data_offsets.size() * sizeof(EdgeIndex);
  uint64_t stored_checksum = 0;
  if (std::fread(&stored_checksum, sizeof(stored_checksum), 1, f) != 1) {
    return Status::Corruption(path + ": truncated file");
  }
  if (stored_checksum != reader.checksum()) {
    return Status::Corruption(path + ": checksum mismatch");
  }
  if (!OffsetsWellFormed(query_offsets, num_edges) ||
      !OffsetsWellFormed(data_offsets, num_edges)) {
    return Status::Corruption(path + ": inconsistent offsets");
  }

  SideState query_side, data_side;
  auto degrees_from_offsets = [&](const std::vector<EdgeIndex>& offsets,
                                  std::vector<uint32_t>* out) -> Status {
    out->resize(offsets.size() - 1);
    for (size_t i = 0; i + 1 < offsets.size(); ++i) {
      const EdgeIndex d = offsets[i + 1] - offsets[i];
      if (d > std::numeric_limits<uint32_t>::max()) {
        return Status::Corruption(path + ": degree overflow at vertex " +
                                  std::to_string(i));
      }
      (*out)[i] = static_cast<uint32_t>(d);
    }
    return Status::Ok();
  };
  SHP_RETURN_IF_ERROR(degrees_from_offsets(query_offsets, &query_side.degree));
  SHP_RETURN_IF_ERROR(degrees_from_offsets(data_offsets, &data_side.degree));
  query_offsets.clear();
  query_offsets.shrink_to_fit();
  data_offsets.clear();
  data_offsets.shrink_to_fit();

  // Metadata + transients: the offsets arrays (freed before refinement but
  // alive through planning), the threshold-planning degree profiles, the
  // 1 MB checksum/copy chunk, and the two sequential append buffers.
  const uint64_t fixed_bytes =
      (uint64_t{num_queries} + num_data) *
          (sizeof(uint32_t) + sizeof(uint64_t)) +
      (uint64_t{num_queries} + num_data + 2) * sizeof(EdgeIndex) +
      (uint64_t{num_queries} + num_data) *
          (sizeof(uint32_t) + sizeof(uint64_t)) +
      (1 << 20) + 2 * shape.scatter_buffer;

  DegreeProfile query_profile(query_side.degree);
  DegreeProfile data_profile(data_side.degree);
  const double mean_query =
      num_queries > 0 ? static_cast<double>(num_edges) / num_queries : 0.0;
  const double mean_data =
      num_data > 0 ? static_cast<double>(num_edges) / num_data : 0.0;
  auto plan_result = FitThresholds(
      query_profile, data_profile, options.high_degree_factor * mean_query,
      options.high_degree_factor * mean_data, fixed_bytes, shape.cache_total,
      shape.budget_bytes);
  if (!plan_result.ok()) return plan_result.status();
  const ThresholdPlan plan = plan_result.value();

  if (plan.spills && options.spill_dir.empty()) {
    return Status::InvalidArgument(
        "streaming ingest: spill_dir required (thresholds " +
        std::to_string(plan.query_threshold) + "/" +
        std::to_string(plan.data_threshold) + " spill adjacency)");
  }
  if (plan.spills) SHP_RETURN_IF_ERROR(EnsureDir(options.spill_dir));

  SHP_RETURN_IF_ERROR(LayOutSide(&query_side, plan.query_threshold,
                                 options.spill_dir + "/query_spill.shpa",
                                 shape.scatter_buffer, /*track_fill=*/false,
                                 /*scatter=*/false));
  SHP_RETURN_IF_ERROR(LayOutSide(&data_side, plan.data_threshold,
                                 options.spill_dir + "/data_spill.shpa",
                                 shape.scatter_buffer, /*track_fill=*/false,
                                 /*scatter=*/false));

  // Pass 2: place each side. Lists are already sorted/unique, so no
  // normalization pass; spilled lists keep their single-pass CRC.
  SHP_RETURN_IF_ERROR(PlaceBinarySide(f, query_adj_start, &query_side,
                                      num_data, path, "query"));
  SHP_RETURN_IF_ERROR(
      PlaceBinarySide(f, data_adj_start, &data_side, num_queries, path,
                      "data"));
  SHP_RETURN_IF_ERROR(FinishSpill(&query_side, /*normalize=*/false));
  SHP_RETURN_IF_ERROR(FinishSpill(&data_side, /*normalize=*/false));

  const int arenas = (query_side.writer.has_value() ? 1 : 0) +
                     (data_side.writer.has_value() ? 1 : 0);
  const uint64_t cache_each = arenas > 0 ? shape.cache_total / arenas : 0;
  SHP_RETURN_IF_ERROR(
      OpenSpill(&query_side, cache_each, options.keep_spill_files));
  SHP_RETURN_IF_ERROR(
      OpenSpill(&data_side, cache_each, options.keep_spill_files));

  return AssembleHybrid(std::move(query_side), std::move(data_side),
                        num_edges, shape, plan, /*edges_read=*/num_edges,
                        stats);
}

}  // namespace shp
