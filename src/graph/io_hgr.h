// hMetis / PaToH-style .hgr hypergraph format.
//
// Plain format:
//   line 1: "<num_hyperedges> <num_vertices>"
//   line 1+i: the 1-based vertex ids of hyperedge i, space separated.
// Lines starting with '%' are comments. Weighted variants (fmt field 1/10/11)
// are parsed and weights ignored — SHP partitions unweighted instances; a
// warning is logged once.
#pragma once

#include <string>

#include "common/status.h"
#include "graph/bipartite_graph.h"

namespace shp {

/// Reads an .hgr file; hyperedges become query vertices.
/// drop_trivial: drop single-vertex hyperedges (paper §4.1 normalization).
Result<BipartiteGraph> ReadHgr(const std::string& path,
                               bool drop_trivial = true);

/// Parses .hgr content from a string (for tests).
Result<BipartiteGraph> ParseHgr(const std::string& content,
                                bool drop_trivial = true);

/// Writes graph as .hgr (plain, unweighted).
Status WriteHgr(const BipartiteGraph& graph, const std::string& path);

}  // namespace shp
