#include "graph/gen_web.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "graph/graph_builder.h"

namespace shp {

BipartiteGraph GenerateWebGraph(const WebGraphConfig& config) {
  SHP_CHECK_GT(config.num_pages, 1u);
  const VertexId n = config.num_pages;
  Rng rng(config.seed);

  // Hosts: contiguous page ranges with exponential sizes (few giant hosts,
  // many small ones).
  std::vector<std::pair<VertexId, VertexId>> host_range;
  std::vector<VertexId> host_of(n);
  {
    VertexId begin = 0;
    while (begin < n) {
      const double raw = rng.NextExponential() * config.avg_host_size;
      const VertexId size = std::max<VertexId>(
          2, std::min<VertexId>(static_cast<VertexId>(raw) + 1, n - begin));
      const VertexId host = static_cast<VertexId>(host_range.size());
      for (VertexId p = begin; p < begin + size; ++p) host_of[p] = host;
      host_range.emplace_back(begin, begin + size);
      begin += size;
    }
  }

  // Copying model over the global link stream: all links generated so far.
  std::vector<VertexId> link_targets;
  link_targets.reserve(static_cast<size_t>(config.avg_out_degree * n));

  GraphBuilder builder(n, n);
  for (VertexId u = 0; u < n; ++u) {
    // Out-degree: geometric around the mean, at least 1.
    uint32_t out_degree =
        1 + static_cast<uint32_t>(rng.NextExponential() *
                                  (config.avg_out_degree - 1.0));
    const auto [hb, he] = host_range[host_of[u]];
    builder.AddEdge(u, u);  // hyperedge includes the page itself
    for (uint32_t j = 0; j < out_degree; ++j) {
      VertexId target;
      if (rng.NextBernoulli(config.in_host_probability) && he - hb >= 2) {
        do {
          target = hb + static_cast<VertexId>(rng.NextBounded(he - hb));
        } while (target == u);
      } else if (!link_targets.empty() &&
                 rng.NextBernoulli(config.copy_probability)) {
        target = link_targets[rng.NextBounded(link_targets.size())];
      } else {
        target = static_cast<VertexId>(rng.NextBounded(n));
      }
      builder.AddEdge(u, target);
      link_targets.push_back(target);
    }
  }

  GraphBuilder::Options options;
  options.drop_trivial_queries = config.drop_trivial_queries;
  return builder.Build(options);
}

}  // namespace shp
