// Darwini-like social graph generator (stand-in for soc-Pokec, soc-LJ and
// the FB-10M .. FB-10B rows of Table 1, which the paper generated with
// Darwini [Edunov et al. 2016]).
//
// Produces a friendship graph with (a) heavy-tailed degrees (discrete power
// law), (b) community structure (users join power-law-sized communities and
// wire a configurable fraction of their edges inside the community, yielding
// high clustering), and then converts it to the storage-sharding hypergraph
// the paper describes: "every user of a social network serves both as query
// and as data" — hyperedge(u) = {u} ∪ friends(u).
#pragma once

#include <cstdint>

#include "graph/bipartite_graph.h"

namespace shp {

struct SocialGraphConfig {
  VertexId num_users = 10000;
  double avg_degree = 20.0;
  /// Exponent of the user-degree power law (Facebook-like ≈ 2.2 .. 2.8).
  double degree_exponent = 2.3;
  uint64_t max_degree = 0;  ///< 0 = auto (32 × avg_degree)
  /// Mean community size (communities are exponentially sized around this).
  double avg_community_size = 60.0;
  /// Fraction of each user's edges wired within their community.
  double community_mixing = 0.75;
  /// Include the user itself in its own hyperedge (profile fetches own data).
  bool self_in_hyperedge = true;
  uint64_t seed = 7;
  bool drop_trivial_queries = true;
};

BipartiteGraph GenerateSocialGraph(const SocialGraphConfig& config);

}  // namespace shp
