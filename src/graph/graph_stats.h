// Summary statistics of a bipartite hypergraph (Table 1 columns and more).
#pragma once

#include <string>

#include "graph/bipartite_graph.h"

namespace shp {

struct GraphStats {
  VertexId num_queries = 0;   ///< |Q| — number of hyperedges
  VertexId num_data = 0;      ///< |D| — number of vertices
  EdgeIndex num_edges = 0;    ///< |E| — total hyperedge memberships (pins)
  double avg_query_degree = 0.0;
  double avg_data_degree = 0.0;
  EdgeIndex max_query_degree = 0;
  EdgeIndex max_data_degree = 0;
  VertexId isolated_data = 0;  ///< data vertices in no hyperedge

  std::string ToString() const;
};

GraphStats ComputeGraphStats(const BipartiteGraph& graph);

}  // namespace shp
