// Planted-partition hypergraph generator for ground-truth experiments.
//
// Data vertices are split into `num_groups` equal groups; each query picks a
// home group and draws each of its data endpoints from the home group with
// probability 1 - mixing, and uniformly at random otherwise. At mixing = 0 a
// perfect partitioner recovers the groups exactly (fanout → 1 for
// k = num_groups); as mixing grows the planted structure fades. The paper's
// future-work section mentions exactly this model ("an algorithm that
// provably finds a correct solution ... generated with a planted partition
// model") — we use it to test recovery.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.h"

namespace shp {

struct PlantedPartitionConfig {
  VertexId num_data = 4000;
  VertexId num_queries = 6000;
  int32_t num_groups = 8;
  double avg_query_degree = 6.0;
  /// Probability an endpoint escapes the query's home group.
  double mixing = 0.05;
  uint64_t seed = 3;
};

struct PlantedPartition {
  BipartiteGraph graph;
  /// Ground-truth group of every data vertex (size num_data).
  std::vector<int32_t> truth;
};

PlantedPartition GeneratePlantedPartition(const PlantedPartitionConfig& config);

}  // namespace shp
