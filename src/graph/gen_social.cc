#include "graph/gen_social.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/rng.h"
#include "graph/gen_powerlaw.h"
#include "graph/graph_builder.h"

namespace shp {

BipartiteGraph GenerateSocialGraph(const SocialGraphConfig& config) {
  SHP_CHECK_GT(config.num_users, 1u);
  const VertexId n = config.num_users;
  Rng rng(config.seed);

  // 1. Target degree per user: truncated power law scaled to avg_degree.
  const uint64_t max_degree =
      config.max_degree > 0
          ? config.max_degree
          : std::min<uint64_t>(
                n - 1, std::max<uint64_t>(
                           8, static_cast<uint64_t>(32 * config.avg_degree)));
  ZipfSampler degree_zipf(max_degree, config.degree_exponent);
  std::vector<uint32_t> degree(n);
  double raw_sum = 0.0;
  for (VertexId u = 0; u < n; ++u) {
    degree[u] = static_cast<uint32_t>(
        degree_zipf.Sample(rng.NextDouble(), rng.NextDouble()) + 1);
    raw_sum += degree[u];
  }
  // Rescale so the realized average matches avg_degree.
  const double scale = config.avg_degree * n / raw_sum;
  for (VertexId u = 0; u < n; ++u) {
    const double scaled = degree[u] * scale;
    uint32_t d = static_cast<uint32_t>(scaled);
    if (rng.NextBernoulli(scaled - std::floor(scaled))) ++d;
    degree[u] = std::max<uint32_t>(1, std::min<uint64_t>(d, n - 1));
  }

  // 2. Communities: contiguous runs of users with exponentially distributed
  // sizes around avg_community_size. Contiguity is harmless (user ids are
  // randomized by construction) and keeps membership O(1).
  std::vector<VertexId> community_of(n);
  std::vector<std::pair<VertexId, VertexId>> community_range;  // [begin,end)
  {
    VertexId begin = 0;
    while (begin < n) {
      const double raw = rng.NextExponential() * config.avg_community_size;
      const VertexId size = std::max<VertexId>(
          2, std::min<VertexId>(static_cast<VertexId>(raw) + 1, n - begin));
      const VertexId end = begin + size;
      const VertexId community_id =
          static_cast<VertexId>(community_range.size());
      for (VertexId u = begin; u < end; ++u) community_of[u] = community_id;
      community_range.emplace_back(begin, end);
      begin = end;
    }
  }

  // 3. Friendship edges. Within-community endpoints are chosen uniformly in
  // the community; global endpoints follow a Chung-Lu-style draw weighted by
  // target degree (sample from the cumulative degree distribution).
  std::vector<double> cumulative_degree(n);
  {
    double acc = 0.0;
    for (VertexId u = 0; u < n; ++u) {
      acc += degree[u];
      cumulative_degree[u] = acc;
    }
  }
  auto sample_global = [&](Rng& r) -> VertexId {
    const double target = r.NextDouble() * cumulative_degree.back();
    const auto it = std::lower_bound(cumulative_degree.begin(),
                                     cumulative_degree.end(), target);
    return static_cast<VertexId>(it - cumulative_degree.begin());
  };

  std::vector<std::pair<VertexId, VertexId>> friends;
  friends.reserve(static_cast<size_t>(config.avg_degree * n / 2 * 1.1));
  for (VertexId u = 0; u < n; ++u) {
    // Each endpoint initiates half its target degree; symmetrization brings
    // realized degree close to target.
    const uint32_t initiated = (degree[u] + 1) / 2;
    const auto [cb, ce] = community_range[community_of[u]];
    for (uint32_t j = 0; j < initiated; ++j) {
      VertexId w;
      if (rng.NextBernoulli(config.community_mixing) && ce - cb >= 2) {
        do {
          w = cb + static_cast<VertexId>(rng.NextBounded(ce - cb));
        } while (w == u);
      } else {
        do {
          w = sample_global(rng);
        } while (w == u);
      }
      friends.emplace_back(u, w);
    }
  }

  // 4. Hypergraph conversion: hyperedge(u) = {u} ∪ friends(u).
  GraphBuilder builder(n, n);
  for (const auto& [u, w] : friends) {
    builder.AddEdge(u, w);
    builder.AddEdge(w, u);  // friendship is symmetric
  }
  if (config.self_in_hyperedge) {
    for (VertexId u = 0; u < n; ++u) builder.AddEdge(u, u);
  }

  GraphBuilder::Options options;
  options.drop_trivial_queries = config.drop_trivial_queries;
  return builder.Build(options);
}

}  // namespace shp
