#include "graph/gen_grid.h"

#include "common/logging.h"
#include "graph/graph_builder.h"

namespace shp {

BipartiteGraph GenerateGrid(const GridConfig& config) {
  SHP_CHECK_GT(config.rows, 0u);
  SHP_CHECK_GT(config.cols, 0u);
  SHP_CHECK(config.stencil == 5 || config.stencil == 9)
      << "stencil must be 5 or 9";
  const uint32_t rows = config.rows;
  const uint32_t cols = config.cols;
  const VertexId n = rows * cols;
  auto cell = [cols](uint32_t r, uint32_t c) -> VertexId {
    return r * cols + c;
  };

  GraphBuilder builder(n, n);
  for (uint32_t r = 0; r < rows; ++r) {
    for (uint32_t c = 0; c < cols; ++c) {
      const VertexId q = cell(r, c);
      builder.AddEdge(q, q);
      if (r > 0) builder.AddEdge(q, cell(r - 1, c));
      if (r + 1 < rows) builder.AddEdge(q, cell(r + 1, c));
      if (c > 0) builder.AddEdge(q, cell(r, c - 1));
      if (c + 1 < cols) builder.AddEdge(q, cell(r, c + 1));
      if (config.stencil == 9) {
        if (r > 0 && c > 0) builder.AddEdge(q, cell(r - 1, c - 1));
        if (r > 0 && c + 1 < cols) builder.AddEdge(q, cell(r - 1, c + 1));
        if (r + 1 < rows && c > 0) builder.AddEdge(q, cell(r + 1, c - 1));
        if (r + 1 < rows && c + 1 < cols) {
          builder.AddEdge(q, cell(r + 1, c + 1));
        }
      }
    }
  }
  GraphBuilder::Options options;
  options.drop_trivial_queries = true;
  return builder.Build(options);
}

}  // namespace shp
