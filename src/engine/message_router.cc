// MessageRouter is header-only (templated); this translation unit exists to
// anchor the library target and hold non-template helpers if they appear.
#include "engine/message_router.h"
