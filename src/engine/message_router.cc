// MessageRouter itself is header-only (templated); this translation unit
// holds the deterministic FaultInjector the chaos harness hooks into the
// router layer.
#include "engine/message_router.h"

#include "common/rng.h"

namespace shp {

namespace {

bool IsWireFault(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDropBuffer:
    case FaultKind::kDuplicateBuffer:
    case FaultKind::kReorderBuffer:
    case FaultKind::kTruncateBuffer:
    case FaultKind::kBitFlipBuffer:
      return true;
    case FaultKind::kStallWorker:
    case FaultKind::kKillWorker:
      return false;
  }
  return false;
}

/// Deterministic fault detail when the event leaves `param` at 0: hashed from
/// the schedule seed and the delivery coordinates, so two runs of the same
/// schedule mangle the same bit/byte.
uint64_t DerivedParam(const FaultSchedule& schedule, const FaultEvent& event,
                      uint64_t epoch, int src, int dst) {
  uint64_t h = HashCombine(schedule.seed, epoch);
  h = HashCombine(h, static_cast<uint64_t>(event.kind),
                  static_cast<uint64_t>(static_cast<int64_t>(src)));
  return HashCombine(h, static_cast<uint64_t>(static_cast<int64_t>(dst)),
                     static_cast<uint64_t>(event.attempt));
}

}  // namespace

FaultInjector::WireAction FaultInjector::OnDelivery(
    uint64_t epoch, int src, int dst, int attempt, std::vector<uint8_t>* bytes,
    const std::vector<uint8_t>& previous_epoch_bytes) {
  WireAction action;
  for (const FaultEvent& event : schedule_.events) {
    if (!IsWireFault(event.kind)) continue;
    if (event.epoch != epoch || event.attempt != attempt) continue;
    if (event.src >= 0 && event.src != src) continue;
    if (event.dst >= 0 && event.dst != dst) continue;
    ++injected_;
    const uint64_t param = event.param != 0
                               ? event.param
                               : DerivedParam(schedule_, event, epoch, src, dst);
    switch (event.kind) {
      case FaultKind::kDropBuffer:
        action.drop = true;
        break;
      case FaultKind::kDuplicateBuffer:
        action.duplicate = true;
        break;
      case FaultKind::kReorderBuffer:
        // A reordered network delivers the link's previous-epoch frame in
        // place of this one. With no history there is nothing old to deliver
        // — the fault degrades to a drop.
        if (previous_epoch_bytes.empty()) {
          action.drop = true;
        } else {
          *bytes = previous_epoch_bytes;
          action.mutated = true;
        }
        break;
      case FaultKind::kTruncateBuffer:
        if (!bytes->empty()) {
          bytes->resize(param % bytes->size());
          action.mutated = true;
        } else {
          action.drop = true;  // nothing to cut: the frame just vanishes
        }
        break;
      case FaultKind::kBitFlipBuffer:
        if (!bytes->empty()) {
          const uint64_t bit = param % (bytes->size() * 8);
          (*bytes)[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
          action.mutated = true;
        } else {
          action.drop = true;
        }
        break;
      case FaultKind::kStallWorker:
      case FaultKind::kKillWorker:
        break;  // unreachable: filtered by IsWireFault
    }
  }
  return action;
}

bool FaultInjector::KillsWorker(uint64_t epoch, int worker) const {
  for (const FaultEvent& event : schedule_.events) {
    if (event.kind != FaultKind::kKillWorker) continue;
    if (event.epoch != epoch) continue;
    if (event.src >= 0 && event.src != worker) continue;
    return true;
  }
  return false;
}

uint64_t FaultInjector::StallWorkUnits(uint64_t epoch, int worker) const {
  uint64_t units = 0;
  for (const FaultEvent& event : schedule_.events) {
    if (event.kind != FaultKind::kStallWorker) continue;
    if (event.epoch != epoch) continue;
    if (event.src >= 0 && event.src != worker) continue;
    units += event.param != 0 ? event.param : 1000;
  }
  return units;
}

}  // namespace shp
