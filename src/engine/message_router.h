// Typed message routing between simulated BSP workers.
//
// Workers are threads standing in for Giraph machines; vertices are
// hash-distributed over workers ("Giraph distributes vertices among machines
// in a Giraph cluster randomly", paper §3.3). During a superstep each worker
// appends messages into its own row of a W×W buffer matrix — single-writer
// per row, so no locks — and after the barrier each destination worker
// drains its column.
//
// The router counts messages and bytes, separating worker-local deliveries
// (free in Giraph: "replaced with a read from the local memory") from remote
// ones, which is exactly the quantity the paper's communication-complexity
// analysis bounds. Payloads are caller-defined; the steady-state refinement
// supersteps route fixed-width delta records (superstep 1 bucket deltas,
// superstep 2 NeighborDelta records) rather than variable-length state, so
// wire volume is O(moved pins) per §3.3.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/logging.h"

namespace shp {

// ------------------------------------------------------- fault injection ---

/// Fault classes the chaos harness can inject into the simulated fabric.
/// The wire faults act on one enveloped (src, dst) buffer delivery; the
/// worker faults fire at a superstep boundary.
enum class FaultKind : uint8_t {
  kDropBuffer,       ///< the frame never arrives
  kDuplicateBuffer,  ///< the frame arrives twice (same sequence number)
  kReorderBuffer,    ///< the link's previous-epoch frame arrives instead
  kTruncateBuffer,   ///< the frame is cut short
  kBitFlipBuffer,    ///< one bit of the frame flips in flight
  kStallWorker,      ///< the worker straggles (extra work units this epoch)
  kKillWorker,       ///< the worker dies at the superstep boundary
};

/// One scheduled fault. Wire faults match a delivery by (epoch, src, dst,
/// attempt); `src`/`dst` of -1 match any worker, and `attempt` selects which
/// retransmission the fault hits (0 = the first delivery), so a schedule can
/// fail a link's retries too. Worker faults use `src` as the worker id.
/// `param` carries the fault detail — kTruncateBuffer: bytes to keep,
/// kBitFlipBuffer: bit index, kStallWorker: extra work units; 0 derives a
/// deterministic value from the schedule seed.
struct FaultEvent {
  FaultKind kind = FaultKind::kDropBuffer;
  uint64_t epoch = 0;
  int src = -1;
  int dst = -1;
  int attempt = 0;
  uint64_t param = 0;
};

/// Declarative fault schedule: the full chaos run is a pure function of this
/// struct, so every run is reproducible bit for bit.
struct FaultSchedule {
  uint64_t seed = 0x0bad0bad;  ///< derives defaulted fault params
  std::vector<FaultEvent> events;
};

/// Deterministic fault injector: applies the scheduled faults to enveloped
/// buffer deliveries and answers worker-boundary queries. Hooked into the
/// router layer — the BSP engine calls OnDelivery once per remote (src, dst)
/// delivery attempt of superstep 2, and the worker queries once per epoch.
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultSchedule schedule)
      : schedule_(std::move(schedule)) {}

  bool empty() const { return schedule_.events.empty(); }

  /// Outcome of one delivery attempt after fault application.
  struct WireAction {
    bool drop = false;       ///< frame lost: nothing arrives
    bool duplicate = false;  ///< frame arrives twice
    bool mutated = false;    ///< bytes were truncated/flipped/replayed
  };

  /// Applies every wire fault scheduled for (epoch, src, dst, attempt) to
  /// `bytes` (mutating it for truncate/bit-flip/reorder).
  /// `previous_epoch_bytes` is the link's last successfully delivered frame
  /// — what a reordered network would deliver instead; an empty history
  /// makes kReorderBuffer degrade to a drop.
  WireAction OnDelivery(uint64_t epoch, int src, int dst, int attempt,
                        std::vector<uint8_t>* bytes,
                        const std::vector<uint8_t>& previous_epoch_bytes);

  /// True when a kKillWorker event targets `worker` at `epoch`.
  bool KillsWorker(uint64_t epoch, int worker) const;

  /// Summed kStallWorker work units for `worker` at `epoch` (0 = no stall).
  uint64_t StallWorkUnits(uint64_t epoch, int worker) const;

  /// Wire faults actually applied so far (diagnostics; a detection test can
  /// assert detected == injected).
  uint64_t faults_injected() const { return injected_; }

 private:
  FaultSchedule schedule_;
  uint64_t injected_ = 0;
};

/// Aggregated traffic counts of one superstep.
struct RouteStats {
  uint64_t local_messages = 0;
  uint64_t remote_messages = 0;
  uint64_t remote_bytes = 0;

  RouteStats& operator+=(const RouteStats& other) {
    local_messages += other.local_messages;
    remote_messages += other.remote_messages;
    remote_bytes += other.remote_bytes;
    return *this;
  }
};

template <typename Message>
class MessageRouter {
 public:
  explicit MessageRouter(int num_workers) : num_workers_(num_workers) {
    SHP_CHECK_GT(num_workers, 0);
    buffers_.resize(static_cast<size_t>(num_workers) * num_workers);
    out_bytes_.assign(static_cast<size_t>(num_workers), 0);
    in_bytes_.assign(static_cast<size_t>(num_workers), 0);
  }

  int num_workers() const { return num_workers_; }

  /// Called by worker `src` only (single-writer row).
  void Send(int src, int dst, Message message) {
    buffers_[Index(src, dst)].push_back(std::move(message));
  }

  /// Messages addressed to `dst` from `src` (drained after the barrier).
  const std::vector<Message>& Incoming(int src, int dst) const {
    return buffers_[Index(src, dst)];
  }

  /// Tallies traffic (counting `bytes_per_message` for remote ones), then
  /// clears all buffers. Call once per superstep after consumption.
  RouteStats CollectAndClear(size_t bytes_per_message) {
    return CollectAndClearSized(
        [bytes_per_message](const Message&) { return bytes_per_message; });
  }

  /// Variable-size variant: `size_of(msg)` gives each message's wire bytes.
  template <typename SizeFn>
  RouteStats CollectAndClearSized(const SizeFn& size_of) {
    RouteStats stats;
    for (int src = 0; src < num_workers_; ++src) {
      for (int dst = 0; dst < num_workers_; ++dst) {
        const auto& buffer = buffers_[Index(src, dst)];
        if (src == dst) {
          stats.local_messages += buffer.size();
          continue;
        }
        stats.remote_messages += buffer.size();
        uint64_t bytes = 0;
        for (const Message& m : buffer) bytes += size_of(m);
        stats.remote_bytes += bytes;
        out_bytes_[static_cast<size_t>(src)] += bytes;
        in_bytes_[static_cast<size_t>(dst)] += bytes;
      }
    }
    for (auto& buffer : buffers_) buffer.clear();
    return stats;
  }

  /// Whole-buffer variant: `bytes_of(buffer)` gives the wire bytes of one
  /// remote (src, dst) buffer as a unit — for codecs with cross-message
  /// framing (the grouped delta format shares group headers and delta chains
  /// across records, so per-message sizing cannot express it).
  template <typename BufferSizeFn>
  RouteStats CollectAndClearBuffered(const BufferSizeFn& bytes_of) {
    RouteStats stats;
    for (int src = 0; src < num_workers_; ++src) {
      for (int dst = 0; dst < num_workers_; ++dst) {
        const auto& buffer = buffers_[Index(src, dst)];
        if (src == dst) {
          stats.local_messages += buffer.size();
          continue;
        }
        stats.remote_messages += buffer.size();
        const uint64_t bytes = bytes_of(buffer);
        stats.remote_bytes += bytes;
        out_bytes_[static_cast<size_t>(src)] += bytes;
        in_bytes_[static_cast<size_t>(dst)] += bytes;
      }
    }
    for (auto& buffer : buffers_) buffer.clear();
    return stats;
  }

  /// Per-link variant: `bytes_of(src, dst, buffer)` gives the wire bytes of
  /// one remote buffer. Used when the bytes were already determined during
  /// the (enveloped) transfer — the accounting then replays the recorded
  /// per-link sizes instead of re-encoding every buffer.
  template <typename LinkSizeFn>
  RouteStats CollectAndClearPerLink(const LinkSizeFn& bytes_of) {
    RouteStats stats;
    for (int src = 0; src < num_workers_; ++src) {
      for (int dst = 0; dst < num_workers_; ++dst) {
        const auto& buffer = buffers_[Index(src, dst)];
        if (src == dst) {
          stats.local_messages += buffer.size();
          continue;
        }
        stats.remote_messages += buffer.size();
        const uint64_t bytes = bytes_of(src, dst, buffer);
        stats.remote_bytes += bytes;
        out_bytes_[static_cast<size_t>(src)] += bytes;
        in_bytes_[static_cast<size_t>(dst)] += bytes;
      }
    }
    for (auto& buffer : buffers_) buffer.clear();
    return stats;
  }

  /// Per-worker remote byte counters accumulated across supersteps (used by
  /// the cost model's max-over-workers term); reset with ResetByteCounters.
  const std::vector<uint64_t>& out_bytes() const { return out_bytes_; }
  const std::vector<uint64_t>& in_bytes() const { return in_bytes_; }
  void ResetByteCounters() {
    std::fill(out_bytes_.begin(), out_bytes_.end(), 0);
    std::fill(in_bytes_.begin(), in_bytes_.end(), 0);
  }

 private:
  size_t Index(int src, int dst) const {
    SHP_DCHECK(src >= 0 && src < num_workers_);
    SHP_DCHECK(dst >= 0 && dst < num_workers_);
    return static_cast<size_t>(src) * num_workers_ + dst;
  }

  int num_workers_;
  std::vector<std::vector<Message>> buffers_;
  std::vector<uint64_t> out_bytes_;
  std::vector<uint64_t> in_bytes_;
};

/// Giraph-style message combiner: during a superstep's send phase each source
/// worker folds same-destination, same-key messages into one value before
/// anything reaches the wire ("machine-pair message combining", paper §3.3).
/// Layout mirrors MessageRouter: one map per (src, dst) cell, single-writer
/// per src row. The maps are *cleared, not destroyed*, between supersteps —
/// a W×W grid of fresh unordered_maps per iteration was measurable
/// allocation churn in the BSP hot loop, and clear() keeps each map's bucket
/// array for the next round.
template <typename Value>
class MessageCombiner {
 public:
  /// (Re)shapes to num_workers² cells and clears every map, keeping their
  /// allocated bucket arrays. Call once per superstep before combining.
  void Reset(int num_workers) {
    SHP_CHECK_GT(num_workers, 0);
    num_workers_ = num_workers;
    const size_t cells =
        static_cast<size_t>(num_workers) * static_cast<size_t>(num_workers);
    if (maps_.size() < cells) maps_.resize(cells);
    for (auto& m : maps_) m.clear();
  }

  /// Accumulation slot for `key` on the (src, dst) wire; value-initialized
  /// (0 for arithmetic types) on first touch. Called by worker `src` only.
  Value& Slot(int src, int dst, uint64_t key) {
    return maps_[Index(src, dst)][key];
  }

  /// Combined (key, value) pairs queued from src to dst, ready to route.
  const std::unordered_map<uint64_t, Value>& Cell(int src, int dst) const {
    return maps_[Index(src, dst)];
  }

 private:
  size_t Index(int src, int dst) const {
    SHP_DCHECK(src >= 0 && src < num_workers_);
    SHP_DCHECK(dst >= 0 && dst < num_workers_);
    return static_cast<size_t>(src) * num_workers_ + dst;
  }

  int num_workers_ = 0;
  std::vector<std::unordered_map<uint64_t, Value>> maps_;
};

}  // namespace shp
