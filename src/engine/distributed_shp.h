// Distributed SHP runs: SHP-k / SHP-2 executed on the simulated Giraph
// cluster (BspRefiner) with exact message accounting and cost-model timing.
// This is the harness behind Table 3 and Figure 5.
#pragma once

#include <cstdint>
#include <vector>

#include "core/recursive.h"
#include "core/shp_k.h"
#include "engine/bsp_engine.h"
#include "engine/cost_model.h"
#include "graph/bipartite_graph.h"

namespace shp {

struct DistributedShpOptions {
  BspConfig bsp;            ///< cluster shape (paper: 4, 8, 16 machines)
  CostModelConfig cost;
  bool recursive = true;    ///< true = SHP-2/r, false = SHP-k
  RecursiveOptions recursive_options;
  ShpKOptions shpk_options;
};

struct DistributedShpReport {
  std::vector<BucketId> assignment;
  BucketId k = 0;
  int num_workers = 0;
  uint64_t num_supersteps = 0;
  RouteStats total_traffic;
  /// Simulated cluster wall time / machine-seconds from the cost model.
  SimulatedTime simulated;
  /// Host wall time of the simulation itself (not a cluster estimate).
  double host_wall_seconds = 0.0;
  /// Peak estimated distributed state on the busiest worker.
  uint64_t max_worker_state_bytes = 0;
  /// Per-superstep log (Fig. 5 scaling analysis drills into this).
  std::vector<SuperstepStats> supersteps;
};

class DistributedShp {
 public:
  explicit DistributedShp(const DistributedShpOptions& options);

  DistributedShpReport Run(const BipartiteGraph& graph, BucketId k,
                           ThreadPool* pool = nullptr) const;

 private:
  DistributedShpOptions options_;
};

}  // namespace shp
