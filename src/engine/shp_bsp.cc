#include "engine/shp_bsp.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/move_broker.h"
#include "engine/wire_format.h"

namespace shp {

namespace {

/// Superstep-2 payload of the pull (full-reship) path: one query's
/// (restricted) neighbor data, shipped once per destination worker and
/// fanned out locally. The delta-exchange path ships NeighborDelta records
/// instead (see shp_bsp.h / docs/distributed.md).
struct NeighborDataMsg {
  VertexId query;
  std::vector<BucketCount> entries;
};

/// Directed bucket-pair key for histograms and probability tables.
uint64_t PackPair(BucketId a, BucketId b) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint32_t>(b);
}

/// Superstep-1 combiner key. Queries are VertexId — unsigned, with the full
/// 2^32 range legal — so the pack must widen through uint64 directly; the
/// old PackPair(static_cast<BucketId>(q), b) detour squeezed query ids
/// through a signed 32-bit cast, which silently aliases once ids reach 2^31
/// if VertexId ever widens. The static_asserts pin the layout.
uint64_t PackQueryBucket(VertexId q, BucketId b) {
  static_assert(sizeof(VertexId) == 4 && !std::is_signed_v<VertexId>,
                "PackQueryBucket assumes 32-bit unsigned query ids");
  static_assert(sizeof(BucketId) <= 4,
                "PackQueryBucket assumes bucket ids fit 32 bits");
  return (static_cast<uint64_t>(q) << 32) | static_cast<uint32_t>(b);
}

VertexId QueryOfKey(uint64_t key) { return static_cast<VertexId>(key >> 32); }

BucketId BucketOfKey(uint64_t key) {
  return static_cast<BucketId>(static_cast<uint32_t>(key));
}

uint32_t CountFor(const std::vector<BucketCount>& entries, BucketId b) {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), b,
      [](const BucketCount& e, BucketId bucket) { return e.bucket < bucket; });
  if (it != entries.end() && it->bucket == b) return it->count;
  return 0;
}

}  // namespace

BspRefiner::BspRefiner(const BipartiteGraph& graph,
                       const RefinerOptions& options, const BspConfig& config,
                       std::vector<SuperstepStats>* log)
    : graph_(graph),
      options_(options),
      config_(config),
      gain_(options.p, static_cast<uint32_t>(graph.MaxQueryDegree()),
            options.future_splits),
      sharding_(config.num_workers, config.shard_seed),
      log_(log) {
  SHP_CHECK_GT(config.num_workers, 0);
  const size_t W = static_cast<size_t>(config.num_workers);
  data_shards_ = VertexSharding::BuildDataShards(sharding_, graph.num_data());
  query_shards_ =
      VertexSharding::BuildQueryShards(sharding_, graph.num_queries());
  data_owner_.resize(graph.num_data());
  for (VertexId v = 0; v < graph.num_data(); ++v) {
    data_owner_[v] = sharding_.DataWorker(v);
  }
  query_ndata_.resize(graph.num_queries());
  query_dirty_.assign(graph.num_queries(), 1);
  known_assignment_.assign(graph.num_data(), -1);
  cached_target_.assign(graph.num_data(), -1);
  cached_gain_.assign(graph.num_data(), 0.0);
  worker_hist_.resize(W);
  last_pair_.assign(graph.num_data(), kNoPair);
  last_bin_.assign(graph.num_data(), 0);
  s1_sorted_.resize(W);
  s1_records_.resize(W);
  s2_inbox_.resize(W);
  recompute_.assign(graph.num_data(), 0);
  recompute_lists_.resize(W);
  mover_lists_.resize(W);
  original_.assign(graph.num_data(), -1);
  pull_affinity_.resize(W);
  pull_touched_.resize(W);
  const size_t links = W * W;
  link_send_seq_.assign(links, 0);
  link_recv_seq_.assign(links, 0);
  link_last_wire_.resize(links);
  link_fail_streak_.assign(links, 0);
  link_backoff_until_.assign(links, 0);
  link_backoff_len_.assign(links, std::max(config.link_backoff_epochs, 1));
  link_payload_bytes_.assign(links, 0);
  if (config.fault_schedule != nullptr) {
    injector_ = FaultInjector(*config.fault_schedule);
  }
  if (!config.checkpoint_dir.empty()) {
    checkpoints_ = std::make_unique<CheckpointManager>(
        config.checkpoint_dir, config.checkpoint_keep);
  }
}

uint64_t BspRefiner::MaxWorkerStateBytes() const {
  uint64_t worst = 0;
  for (int w = 0; w < config_.num_workers; ++w) {
    uint64_t bytes = 0;
    for (VertexId v : data_shards_[static_cast<size_t>(w)]) {
      bytes += graph_.DataDegree(v) * sizeof(VertexId) + 16;
      if (sweep_valid_) {
        // Delta-exchange replica: the vertex's accumulator entries replace
        // the pull path's cached neighbor-data lists.
        bytes += sweep_.Entries(v).size() * sizeof(AffinityEntry);
      }
    }
    for (VertexId q : query_shards_[static_cast<size_t>(w)]) {
      bytes += graph_.QueryDegree(q) * sizeof(VertexId) +
               query_ndata_[q].size() * sizeof(BucketCount) + 16;
    }
    worst = std::max(worst, bytes);
  }
  return worst;
}

bool BspRefiner::ContextMatches(const MoveTopology& topo,
                                const std::vector<BucketId>* anchor,
                                double anchor_penalty, bool push) const {
  if (!has_cached_topo_ || cached_push_ != push) return false;
  if (cached_topo_.k != topo.k || cached_topo_.full_k != topo.full_k ||
      cached_topo_.group_of_bucket != topo.group_of_bucket ||
      cached_topo_.group_children != topo.group_children) {
    return false;
  }
  // Capacity is a broker concern; proposals do not depend on it.
  const bool has_anchor = anchor != nullptr && anchor_penalty != 0.0;
  if (has_anchor != cached_has_anchor_) return false;
  if (has_anchor && (cached_anchor_penalty_ != anchor_penalty ||
                     cached_anchor_ != *anchor)) {
    return false;
  }
  return true;
}

void BspRefiner::SnapshotContext(const MoveTopology& topo,
                                 const std::vector<BucketId>* anchor,
                                 double anchor_penalty, bool push) {
  cached_topo_ = topo;
  has_cached_topo_ = true;
  cached_has_anchor_ = anchor != nullptr && anchor_penalty != 0.0;
  cached_anchor_ = cached_has_anchor_ ? *anchor : std::vector<BucketId>{};
  cached_anchor_penalty_ = cached_has_anchor_ ? anchor_penalty : 0.0;
  cached_push_ = push;
}

GainComputer::BestTarget BspRefiner::PullBestTarget(
    const MoveTopology& topo, VertexId v, BucketId from,
    std::vector<double>* affinity_scratch,
    std::vector<BucketId>* touched_scratch, uint64_t* work) const {
  std::vector<double>& affinity = *affinity_scratch;
  std::vector<BucketId>& touched = *touched_scratch;
  touched.clear();
  double base = 0.0;
  double degree = 0.0;
  for (VertexId q : graph_.DataNeighbors(v)) {
    degree += 1.0;
    for (const BucketCount& e : query_ndata_[q]) {
      ++*work;
      if (e.bucket == from) {
        base += gain_.Pow(e.count - 1);
        continue;
      }
      if (affinity[static_cast<size_t>(e.bucket)] == 0.0) {
        touched.push_back(e.bucket);
      }
      affinity[static_cast<size_t>(e.bucket)] += 1.0 - gain_.Pow(e.count);
    }
  }
  // Candidates scan in ascending bucket order so near-ties resolve to the
  // lower bucket id — the tie-break FindBestTarget/FindBestTargetPush share.
  std::sort(touched.begin(), touched.end());
  double best_affinity = 0.0;
  BucketId best_bucket = -1;
  for (BucketId b : touched) {
    if (affinity[static_cast<size_t>(b)] >
        best_affinity + GainComputer::kAffinityTieEpsilon) {
      best_affinity = affinity[static_cast<size_t>(b)];
      best_bucket = b;
    }
  }
  for (BucketId b : touched) affinity[static_cast<size_t>(b)] = 0.0;
  if (best_bucket == -1) {
    // Every candidate is as good as empty: shared deterministic fallback —
    // the lowest non-`from` bucket in the window.
    best_bucket = from == 0 ? 1 : 0;
    if (best_bucket >= topo.k) return {-1, 0.0};
  }
  return {best_bucket, gain_.p() * (base - (degree - best_affinity))};
}

IterationStats BspRefiner::RunIteration(const MoveTopology& topo,
                                        Partition* partition, uint64_t seed,
                                        uint64_t iteration, ThreadPool* pool,
                                        const std::vector<BucketId>* anchor,
                                        double anchor_penalty) {
  SHP_CHECK_EQ(partition->num_data(), graph_.num_data());
  if (pool == nullptr) pool = &GlobalThreadPool();
  const int W = config_.num_workers;
  const uint64_t base_superstep =
      log_ == nullptr ? 0 : static_cast<uint64_t>(log_->size());
  IterationStats stats;

  // Protocol epoch: the engine's own monotonic counter. The caller's
  // `iteration` parameter restarts under recursion drivers, so it cannot key
  // the wire protocol or the fault schedule.
  const uint64_t epoch = epoch_++;

  // Worker kill at the superstep boundary: the worker's query replicas are
  // rebuilt from the authoritative partition state its queries last saw, and
  // every derived structure (accumulator replicas, cached proposals,
  // histograms) is re-bootstrapped below. Before the first iteration there
  // is no state to lose — a kill at epoch 0 is a no-op.
  std::vector<uint64_t> recovery_work(static_cast<size_t>(W), 0);
  if (!injector_.empty() && state_valid_) {
    for (int w = 0; w < W; ++w) {
      if (!injector_.KillsWorker(epoch, w)) continue;
      recovery_work[static_cast<size_t>(w)] = RecoverKilledWorker(w);
      sweep_valid_ = false;
      proposals_valid_ = false;
      hist_valid_ = false;
      ++stats.workers_recovered;
      ++counters_.workers_recovered;
    }
  }

  // Links still in backoff at this epoch force degraded (full-reship) mode.
  uint64_t backoff_links = 0;
  for (const uint64_t until : link_backoff_until_) {
    if (until > epoch) ++backoff_links;
  }
  stats.degraded_links = backoff_links;

  // Superstep-2 exchange mode: delta exchange + push sweep needs only a
  // nonzero pow base (same support condition as the threaded Refiner) —
  // grouped recursion windows run the same record exchange and scan the
  // group-restricted accumulator view, so SHP-2/r levels also ship O(moved
  // pins). The mode is constant per engine instance (options and pow base
  // are fixed at construction).
  const bool push =
      options_.sweep_mode != RefinerOptions::SweepMode::kPull &&
      gain_.SupportsPush();
  stats.push_sweep = push;

  // ---------------------------------------------------------------- S1 ---
  // data -> query: bucket deltas from vertices whose bucket differs from
  // what their queries last saw. Steady state announces only last round's
  // net movers (the compact pending list); the O(n) per-vertex diff scan
  // runs only on the first iteration or when the partition was mutated
  // behind our back (detected below, never assumed — the diff scan then
  // self-heals the replicas).
  MessageRouter<BucketDeltaMsg> router1(W);
  s1_combiner_.Reset(W);
  for (int w = 0; w < W; ++w) s1_records_[static_cast<size_t>(w)].clear();

  bool full_scan = !state_valid_;
  std::vector<uint64_t> s1_send_work(static_cast<size_t>(W), 0);
  if (!full_scan) {
    s1_send_work = RunPhase(W, pool, [&](int w) -> uint64_t {
      uint64_t work = 0;
      for (const VertexMove& m : pending_announce_) {
        if (data_owner_[m.v] != w) continue;
        const BucketId before = known_assignment_[m.v];
        const BucketId now = partition->bucket_of(m.v);
        if (now == before) continue;
        for (VertexId q : graph_.DataNeighbors(m.v)) {
          const int dst = sharding_.QueryWorker(q);
          if (before >= 0) {
            --s1_combiner_.Slot(w, dst, PackQueryBucket(q, before));
          }
          ++s1_combiner_.Slot(w, dst, PackQueryBucket(q, now));
          work += 2;
        }
        known_assignment_[m.v] = now;
      }
      return work;
    });
    // Driver-level replica guard (int compare, not simulated work): after
    // folding the pending moves, anything still differing means the caller
    // mutated the partition externally.
    if (known_assignment_ != partition->assignment()) full_scan = true;
  }
  if (full_scan) {
    std::vector<uint64_t> diff_changed(static_cast<size_t>(W), 0);
    const std::vector<uint64_t> diff_work =
        RunPhase(W, pool, [&](int w) -> uint64_t {
          uint64_t work = 0;
          uint64_t changed = 0;
          for (VertexId v : data_shards_[static_cast<size_t>(w)]) {
            const BucketId now = partition->bucket_of(v);
            const BucketId before = known_assignment_[v];
            if (now == before) continue;
            ++changed;
            for (VertexId q : graph_.DataNeighbors(v)) {
              const int dst = sharding_.QueryWorker(q);
              if (before >= 0) {
                --s1_combiner_.Slot(w, dst, PackQueryBucket(q, before));
              }
              ++s1_combiner_.Slot(w, dst, PackQueryBucket(q, now));
              work += 2;
            }
            known_assignment_[v] = now;
          }
          diff_changed[static_cast<size_t>(w)] = changed;
          return work;
        });
    uint64_t total_changed = 0;
    for (int w = 0; w < W; ++w) {
      s1_send_work[static_cast<size_t>(w)] +=
          diff_work[static_cast<size_t>(w)];
      total_changed += diff_changed[static_cast<size_t>(w)];
    }
    if (sweep_valid_ &&
        static_cast<double>(total_changed) >
            options_.incremental_rebuild_fraction *
                static_cast<double>(graph_.num_data())) {
      // External-mutation churn guard (same cost rule as the post-move
      // fallback below): with this many externally changed vertices the
      // diff records outweigh a full reship, so drop the replicas now —
      // the fold then skips emission and superstep 2 re-bootstraps.
      sweep_valid_ = false;
    }
    proposals_valid_ = false;
    hist_valid_ = false;
  }
  pending_announce_.clear();

  // Flush each source row of the combiner onto the wire.
  RunPhase(W, pool, [&](int w) -> uint64_t {
    for (int dst = 0; dst < W; ++dst) {
      for (const auto& [key, delta] : s1_combiner_.Cell(w, dst)) {
        if (delta == 0) continue;
        router1.Send(w, dst,
                     BucketDeltaMsg{QueryOfKey(key), BucketOfKey(key), delta});
      }
    }
    return 0;
  });

  // Receive: owner workers fold deltas into their queries' neighbor data,
  // emitting the (q, bucket, old, new) NeighborDelta records superstep 2
  // ships in delta-exchange mode. Incoming deltas are stably sorted by
  // (query, bucket) first, so each query's records come out contiguous (for
  // the grouped send) and the fold order does not depend on the message
  // arrival interleaving.
  std::vector<uint64_t> s1_recv_work =
      RunPhase(W, pool, [&](int w) -> uint64_t {
        uint64_t work = 0;
        std::vector<BucketDeltaMsg>& sorted =
            s1_sorted_[static_cast<size_t>(w)];
        sorted.clear();
        for (int src = 0; src < W; ++src) {
          const auto& in = router1.Incoming(src, w);
          sorted.insert(sorted.end(), in.begin(), in.end());
        }
        std::stable_sort(sorted.begin(), sorted.end(),
                         [](const BucketDeltaMsg& a, const BucketDeltaMsg& b) {
                           if (a.query != b.query) return a.query < b.query;
                           return a.bucket < b.bucket;
                         });
        // Records are only worth emitting when valid accumulator replicas
        // will consume them; after a high-churn round the replicas were
        // dropped and superstep 2 re-bootstraps instead.
        std::vector<NeighborDelta>* emit =
            push && sweep_valid_ ? &s1_records_[static_cast<size_t>(w)]
                                 : nullptr;
        for (const BucketDeltaMsg& m : sorted) {
          auto& entries = query_ndata_[m.query];
          auto it = std::lower_bound(
              entries.begin(), entries.end(), m.bucket,
              [](const BucketCount& e, BucketId b) { return e.bucket < b; });
          const uint32_t old_count =
              it != entries.end() && it->bucket == m.bucket ? it->count : 0;
          const int64_t next = static_cast<int64_t>(old_count) + m.delta;
          SHP_DCHECK(next >= 0);
          const uint32_t new_count = static_cast<uint32_t>(next);
          if (old_count != 0 && new_count == 0) {
            entries.erase(it);
          } else if (old_count != 0) {
            it->count = new_count;
          } else {
            SHP_DCHECK(m.delta > 0);
            entries.insert(it, {m.bucket, new_count});
          }
          if (emit != nullptr) {
            emit->push_back({m.query, m.bucket, old_count, new_count});
          }
          query_dirty_[m.query] = 1;
          ++work;
        }
        return work;
      });

  // Records are emitted exactly when push && sweep_valid_ — superstep 2
  // then patches the accumulator replicas with them. The exchange mode is
  // constant per instance and grouped rounds now emit too, so a fold can
  // no longer change query replicas behind valid accumulators: sweep_valid_
  // implies push, and an invalid sweep re-bootstraps below. (A pull-mode
  // instance never builds replicas in the first place.)
  SHP_DCHECK(!sweep_valid_ || push);

  SuperstepStats s1;
  s1.label = "1:collect-neighbor-data";
  s1.superstep = base_superstep;
  s1.traffic = router1.CollectAndClear(sizeof(BucketDeltaMsg));
  s1.work_units.resize(static_cast<size_t>(W));
  for (int w = 0; w < W; ++w) {
    s1.work_units[static_cast<size_t>(w)] =
        s1_send_work[static_cast<size_t>(w)] +
        s1_recv_work[static_cast<size_t>(w)] +
        recovery_work[static_cast<size_t>(w)];
  }

#ifndef NDEBUG
  {
    // The delta-patched query replicas must be bit-identical to a rebuild
    // from the current assignment.
    QueryNeighborData fresh;
    fresh.Build(graph_, partition->assignment(), pool);
    for (VertexId q = 0; q < graph_.num_queries(); ++q) {
      const auto span = fresh.Entries(q);
      SHP_CHECK(span.size() == query_ndata_[q].size() &&
                std::equal(span.begin(), span.end(), query_ndata_[q].begin()))
          << "BSP query replica diverged from rebuild for q=" << q;
    }
  }
#endif

  // ---------------------------------------------------------------- S2 ---
  const bool context_ok = ContextMatches(topo, anchor, anchor_penalty, push);
  if (!context_ok) SnapshotContext(topo, anchor, anchor_penalty, push);
  // Enveloped wire path: under the grouped varint codec every remote delta
  // buffer crosses the fabric as one self-verifying frame through the fault
  // injector, and the receiver consumes the decoded records. The raw
  // reference switch (varint_wire = false) keeps the in-memory exchange.
  const bool enveloped = push && config_.varint_wire;
  // Degraded mode: while any link is in backoff the delta exchange stays
  // suspended — full-reship bootstraps (which bypass the link protocol)
  // until the backoff expires.
  const bool degraded = enveloped && backoff_links > 0;
  bool bootstrap = push && (!sweep_valid_ || degraded);

  stats.full_rebuild = full_scan;
  for (int w = 0; w < W; ++w) {
    stats.num_delta_records += s1_records_[static_cast<size_t>(w)].size();
  }

  // Routers for both exchange flavors (only one carries traffic per mode).
  MessageRouter<NeighborDataMsg> router2(W);
  MessageRouter<NeighborDelta> router2d(W);
  std::vector<uint64_t> s2_send_work(static_cast<size_t>(W), 0);
  std::vector<uint64_t> s2_recv_work(static_cast<size_t>(W), 0);
  std::vector<uint64_t> s2_patch_work(static_cast<size_t>(W), 0);
  SuperstepStats s2;

  bool transfer_ran = false;
  if (push && !bootstrap) {
    // Delta-exchange send: each dirty query's owner ships the sparse
    // NeighborDelta records produced while folding superstep 1 — O(delta
    // records × touched workers) on the wire, not O(Σ deg(dirty q) ×
    // touched workers). Records are grouped by query (the fold sorted
    // them), so the destination mask is computed once per query.
    s2_send_work = RunPhase(W, pool, [&](int w) -> uint64_t {
      uint64_t work = 0;
      std::vector<uint8_t> dst_mask(static_cast<size_t>(W));
      const std::vector<NeighborDelta>& records =
          s1_records_[static_cast<size_t>(w)];
      size_t i = 0;
      while (i < records.size()) {
        size_t j = i;
        while (j < records.size() && records[j].q == records[i].q) ++j;
        const VertexId q = records[i].q;
        std::fill(dst_mask.begin(), dst_mask.end(), 0);
        for (VertexId v : graph_.QueryNeighbors(q)) {
          dst_mask[static_cast<size_t>(data_owner_[v])] = 1;
        }
        for (int dst = 0; dst < W; ++dst) {
          if (!dst_mask[static_cast<size_t>(dst)]) continue;
          for (size_t r = i; r < j; ++r) router2d.Send(w, dst, records[r]);
          work += j - i;
        }
        i = j;
      }
      return work;
    });
    if (enveloped) {
      // Enveloped transfer: encode, frame, deliver (through the injector,
      // with bounded same-sequence retransmission), verify, decode into
      // s2_inbox_. A link that exhausts its retries is unrecoverable this
      // epoch — the recovery action is the same replica invalidation +
      // full-reship the churn guard uses, taken in this same iteration.
      transfer_ran = true;
      if (!TransferEnveloped(epoch, router2d, &s2, &stats)) {
        sweep_valid_ = false;
        bootstrap = true;
        ++stats.reship_recoveries;
        ++counters_.reship_recoveries;
      }
    }
  }

  if (bootstrap) ++num_bootstraps_;
  const bool recompute_all =
      full_scan || !proposals_valid_ || !context_ok || bootstrap;
  for (int w = 0; w < W; ++w) recompute_lists_[static_cast<size_t>(w)].clear();
  if (!push && recompute_all) {
    // The pull path's data-side caches hold topology-restricted lists; a
    // context change may activate buckets they never received, so charge a
    // full reship (on iteration 0 every query is dirty anyway).
    std::fill(query_dirty_.begin(), query_dirty_.end(), 1);
  }

  if (!push || bootstrap) {
    // Full-reship send: dirty queries ship their topology-relevant neighbor
    // data, one combined message per destination worker. The delta-exchange
    // bootstrap charges the same volume — the accumulator replicas are built
    // from exactly this shipment. (Accumulated, not assigned: a failed
    // enveloped exchange earlier this iteration already charged its send.)
    const std::vector<uint64_t> reship_send_work =
        RunPhase(W, pool, [&](int w) -> uint64_t {
      uint64_t work = 0;
      std::vector<uint8_t> dst_mask(static_cast<size_t>(W));
      for (VertexId q : query_shards_[static_cast<size_t>(w)]) {
        if (!query_dirty_[q] && !bootstrap) continue;
        // Pull mode restricts to buckets active in this topology (recursion
        // sends "at most r values" per §3.3). A delta-exchange bootstrap
        // ships the *full* lists instead: the accumulator replicas it seeds
        // are topology-free, which is what lets later recursion levels
        // re-slice the active window instead of reshipping.
        std::vector<BucketCount> restricted;
        restricted.reserve(query_ndata_[q].size());
        for (const BucketCount& e : query_ndata_[q]) {
          if (bootstrap ||
              topo.group_of_bucket[static_cast<size_t>(e.bucket)] >= 0) {
            restricted.push_back(e);
          }
        }
        if (restricted.empty()) continue;
        std::fill(dst_mask.begin(), dst_mask.end(), 0);
        for (VertexId v : graph_.QueryNeighbors(q)) {
          dst_mask[static_cast<size_t>(data_owner_[v])] = 1;
        }
        for (int dst = 0; dst < W; ++dst) {
          if (!dst_mask[static_cast<size_t>(dst)]) continue;
          router2.Send(w, dst, NeighborDataMsg{q, restricted});
          work += restricted.size();
        }
      }
      return work;
    });
    for (int w = 0; w < W; ++w) {
      s2_send_work[static_cast<size_t>(w)] +=
          reship_send_work[static_cast<size_t>(w)];
    }
    // Receive: mark data vertices adjacent to dirty queries — plus last
    // round's movers, whose own `from` changed even if every adjacent count
    // delta cancelled — for proposal recomputation (unused on a
    // recompute-all pass).
    s2_recv_work = RunPhase(W, pool, [&](int w) -> uint64_t {
      uint64_t work = 0;
      for (int src = 0; src < W; ++src) {
        for (const NeighborDataMsg& m : router2.Incoming(src, w)) {
          if (!recompute_all) {
            for (VertexId v : graph_.QueryNeighbors(m.query)) {
              if (data_owner_[v] == w && !recompute_[v]) {
                recompute_[v] = 1;
                recompute_lists_[static_cast<size_t>(w)].push_back(v);
              }
            }
          }
          work += m.entries.size();
        }
      }
      if (!recompute_all) {
        for (VertexId v : last_movers_) {
          if (data_owner_[v] == w && !recompute_[v]) {
            recompute_[v] = 1;
            recompute_lists_[static_cast<size_t>(w)].push_back(v);
            ++work;
          }
        }
      }
      return work;
    });
    if (bootstrap) {
      // Build each data worker's accumulator replica from the shipment, one
      // query-major pass over its own shard.
      const std::vector<uint64_t> build_work = sweep_.BuildSharded(
          graph_,
          [this](VertexId q) {
            return std::span<const BucketCount>(query_ndata_[q]);
          },
          gain_.pow_table(), data_owner_, W, pool);
      for (int w = 0; w < W; ++w) {
        s2_patch_work[static_cast<size_t>(w)] =
            build_work[static_cast<size_t>(w)];
      }
      sweep_valid_ = true;
      // The reship bypasses the enveloped link protocol, so it doubles as
      // the protocol resync point: receive sequences jump to the send
      // sequences and the next delta exchange starts from a clean chain.
      ResyncLinks();
    }
  } else {
    // Receive: each worker consumes its inbox (src order keeps every
    // per-(q, bucket) chain intact — a query's records come from its single
    // owner), marks the blast radius, and patches the accumulator replicas.
    // On the enveloped wire path the inbox was already filled by the
    // verified transfer above — the records here are the *decoded* frames;
    // the raw reference switch drains the router buffers directly.
    s2_recv_work = RunPhase(W, pool, [&](int w) -> uint64_t {
      uint64_t work = 0;
      std::vector<NeighborDelta>& inbox = s2_inbox_[static_cast<size_t>(w)];
      if (!transfer_ran) {
        inbox.clear();
        for (int src = 0; src < W; ++src) {
          const auto& in = router2d.Incoming(src, w);
          inbox.insert(inbox.end(), in.begin(), in.end());
        }
      }
      if (!recompute_all) {
        VertexId last_q = static_cast<VertexId>(-1);
        for (const NeighborDelta& rec : inbox) {
          if (rec.q == last_q) continue;
          last_q = rec.q;
          for (VertexId v : graph_.QueryNeighbors(rec.q)) {
            if (data_owner_[v] == w && !recompute_[v]) {
              recompute_[v] = 1;
              recompute_lists_[static_cast<size_t>(w)].push_back(v);
              ++work;
            }
          }
        }
        // Movers recompute unconditionally (their `from` changed even when
        // offsetting moves cancelled every adjacent count delta).
        for (VertexId v : last_movers_) {
          if (data_owner_[v] == w && !recompute_[v]) {
            recompute_[v] = 1;
            recompute_lists_[static_cast<size_t>(w)].push_back(v);
            ++work;
          }
        }
      }
      return work;
    });
    std::vector<std::span<const NeighborDelta>> inboxes;
    inboxes.reserve(static_cast<size_t>(W));
    for (int w = 0; w < W; ++w) {
      inboxes.emplace_back(s2_inbox_[static_cast<size_t>(w)]);
    }
    s2_patch_work = sweep_.ApplyDeltasSharded(graph_, inboxes,
                                              gain_.pow_table(), data_owner_,
                                              pool);
  }

  // Proposal recomputation. Shared finalization: anchor adjustment (paper
  // §5(i)) and the nonpositive filter — one copy, also used by the Debug
  // pull-comparison below.
  const auto finalize_value = [&](VertexId v, BucketId from,
                                  GainComputer::BestTarget best) {
    if (best.bucket >= 0 && anchor != nullptr && anchor_penalty != 0.0) {
      const BucketId home = (*anchor)[v];
      if (from == home && best.bucket != home) best.gain -= anchor_penalty;
      if (from != home && best.bucket == home) best.gain += anchor_penalty;
    }
    if (best.bucket >= 0 && !options_.propose_nonpositive &&
        best.gain <= 0.0) {
      best.bucket = -1;
    }
    if (best.bucket < 0) best.gain = 0.0;
    return best;
  };
  const auto finalize = [&](VertexId v, BucketId from,
                            GainComputer::BestTarget best) {
    best = finalize_value(v, from, best);
    cached_target_[v] = best.bucket;
    cached_gain_[v] = best.gain;
  };
  // Grouped pull reference: evaluate each sibling candidate directly
  // against the query replicas (the recursion counterpart of
  // PullBestTarget; also the Debug cross-check frame for grouped push).
  const auto grouped_pull_best = [&](VertexId v, BucketId from, int32_t group,
                                     uint64_t* work) {
    const auto& children = topo.group_children[static_cast<size_t>(group)];
    GainComputer::BestTarget best;
    bool first = true;
    for (BucketId candidate : children) {
      if (candidate == from) continue;
      double g = 0.0;
      for (VertexId q : graph_.DataNeighbors(v)) {
        const uint32_t n_from = CountFor(query_ndata_[q], from);
        const uint32_t n_to = CountFor(query_ndata_[q], candidate);
        SHP_DCHECK(n_from >= 1);
        g += gain_.Pow(n_from - 1) - gain_.Pow(n_to);
        *work += 2;
      }
      g *= gain_.p();
      if (first || g > best.gain) {
        best.gain = g;
        best.bucket = candidate;
        first = false;
      }
    }
    return best;
  };
  const auto recompute_vertex = [&](int w, VertexId v,
                                    uint64_t* work) {
    const BucketId from = partition->bucket_of(v);
    const int32_t group = topo.group_of_bucket[static_cast<size_t>(from)];
    if (group < 0 || graph_.DataDegree(v) == 0) {
      cached_target_[v] = -1;
      cached_gain_[v] = 0.0;
      return;
    }
    if (push) {
      if (topo.full_k) {
        *work += sweep_.Entries(v).size();
        finalize(v, from,
                 gain_.FindBestTargetPush(
                     sweep_, v, from, 0, topo.k,
                     static_cast<double>(graph_.DataDegree(v))));
        return;
      }
      // Group-restricted push: one merge over the sibling candidates and
      // the accumulator window spanning them (a re-slice of the same
      // replicas the full-k scan reads; sliced once, shared by the work
      // accounting and the scan).
      const auto& children =
          topo.group_children[static_cast<size_t>(group)];
      const auto [wbegin, wend] = topo.GroupWindow(group);
      const auto window = sweep_.EntriesInWindow(v, wbegin, wend);
      *work += window.size() + children.size();
      finalize(v, from,
               gain_.FindBestTargetPushGroupedWindow(
                   window, from, std::span<const BucketId>(children),
                   static_cast<double>(graph_.DataDegree(v))));
      return;
    }
    if (topo.full_k) {
      std::vector<double>& affinity = pull_affinity_[static_cast<size_t>(w)];
      std::vector<BucketId>& touched = pull_touched_[static_cast<size_t>(w)];
      if (affinity.size() < static_cast<size_t>(topo.k)) {
        affinity.assign(static_cast<size_t>(topo.k), 0.0);
      }
      finalize(v, from,
               PullBestTarget(topo, v, from, &affinity, &touched, work));
      return;
    }
    finalize(v, from, grouped_pull_best(v, from, group, work));
  };

  std::vector<uint64_t> s2_gain_work;
  if (recompute_all) {
    s2_gain_work = RunPhase(W, pool, [&](int w) -> uint64_t {
      uint64_t work = 0;
      for (VertexId v : data_shards_[static_cast<size_t>(w)]) {
        recompute_vertex(w, v, &work);
      }
      return work;
    });
    stats.num_recomputed = graph_.num_data();
  } else {
    s2_gain_work = RunPhase(W, pool, [&](int w) -> uint64_t {
      uint64_t work = 0;
      for (VertexId v : recompute_lists_[static_cast<size_t>(w)]) {
        recompute_vertex(w, v, &work);
      }
      return work;
    });
    for (int w = 0; w < W; ++w) {
      stats.num_recomputed += recompute_lists_[static_cast<size_t>(w)].size();
    }
  }
  proposals_valid_ = true;

  // Queries consumed their dirty flag by sending.
  RunPhase(W, pool, [&](int w) -> uint64_t {
    for (VertexId q : query_shards_[static_cast<size_t>(w)]) {
      query_dirty_[q] = 0;
    }
    return 0;
  });

  s2.label = push && !bootstrap ? "2:ship-deltas+gains"
                                : "2:ship-neighbor-data+gains";
  s2.superstep = base_superstep + 1;
  s2.traffic = router2.CollectAndClearSized([](const NeighborDataMsg& m) {
    return sizeof(VertexId) + m.entries.size() * sizeof(BucketCount);
  });
  // Delta records go on the wire under the grouped varint codec; the payload
  // byte series counts exactly the grouped stream, with the envelope framing
  // tracked separately in s2.envelope_bytes so the series stays comparable
  // across the protocol change. When the enveloped transfer ran, the
  // accounting replays the per-link payload sizes it recorded instead of
  // re-encoding every buffer. Each (src, dst) buffer is one encode unit —
  // per-query group headers and same-bucket delta chains span records, so
  // sizing is per buffer, not per message.
  if (transfer_ran) {
    s2.traffic += router2d.CollectAndClearPerLink(
        [this](int src, int dst, const std::vector<NeighborDelta>&) {
          return link_payload_bytes_[LinkIndex(src, dst)];
        });
  } else if (config_.varint_wire) {
    s2.traffic +=
        router2d.CollectAndClearBuffered([](const std::vector<NeighborDelta>&
                                                buffer) {
          return wire::GroupedWireBytes(buffer);
        });
  } else {
    s2.traffic += router2d.CollectAndClear(wire::kRawDeltaBytes);
  }
  s2.work_units.resize(static_cast<size_t>(W));
  for (int w = 0; w < W; ++w) {
    s2.work_units[static_cast<size_t>(w)] =
        s2_send_work[static_cast<size_t>(w)] +
        s2_recv_work[static_cast<size_t>(w)] +
        s2_patch_work[static_cast<size_t>(w)] +
        s2_gain_work[static_cast<size_t>(w)];
  }
  // Worker stall: a straggler's extra work units gate the simulated epoch
  // time (slowest worker holds the barrier) without touching any exchanged
  // data — the trajectory is unchanged by construction.
  if (!injector_.empty()) {
    for (int w = 0; w < W; ++w) {
      const uint64_t stall = injector_.StallWorkUnits(epoch, w);
      if (stall == 0) continue;
      s2.work_units[static_cast<size_t>(w)] += stall;
      ++stats.stalled_workers;
      ++counters_.stalled_workers;
    }
  }

#ifndef NDEBUG
  if (push) {
    // The delta-patched accumulator replicas must match a fresh owner-
    // sharded build up to float summation order.
    AffinitySweep fresh(sweep_.deterministic());
    fresh.BuildSharded(
        graph_,
        [this](VertexId q) {
          return std::span<const BucketCount>(query_ndata_[q]);
        },
        gain_.pow_table(), data_owner_, W, pool);
    SHP_CHECK(sweep_.ApproxEquals(fresh, 1e-9, 1e-9))
        << "patched BSP accumulator replicas diverged from a fresh build";
  }
  {
    // Every cached proposal — recomputed or carried — must equal a fresh
    // recompute in the active scan direction (cache-staleness guard), and
    // in push mode must match a pull recompute within the PR 2 tolerance
    // contract (same target modulo gain ties ≤ 1e-9; gains within
    // 1e-9 + rtol 1e-6).
    RunPhase(W, pool, [&](int w) -> uint64_t {
      std::vector<double> affinity(static_cast<size_t>(topo.k), 0.0);
      std::vector<BucketId> touched;
      uint64_t scratch_work = 0;
      for (VertexId v : data_shards_[static_cast<size_t>(w)]) {
        const BucketId cached_t = cached_target_[v];
        const double cached_g = cached_gain_[v];
        recompute_vertex(w, v, &scratch_work);
        SHP_CHECK(cached_target_[v] == cached_t && cached_gain_[v] == cached_g)
            << "stale cached BSP proposal for v=" << v;
        if (!push) continue;
        const BucketId from = partition->bucket_of(v);
        const int32_t group =
            topo.group_of_bucket[static_cast<size_t>(from)];
        if (group < 0 || graph_.DataDegree(v) == 0) continue;
        const GainComputer::BestTarget pull_best = finalize_value(
            v, from,
            topo.full_k
                ? PullBestTarget(topo, v, from, &affinity, &touched,
                                 &scratch_work)
                : grouped_pull_best(v, from, group, &scratch_work));
        const BucketId pull_t = pull_best.bucket;
        const double pull_g = pull_best.gain;
        const double gtol =
            1e-9 + 1e-6 * std::max(std::fabs(pull_g), std::fabs(cached_g));
        if (pull_t == cached_t) {
          SHP_CHECK(cached_t < 0 || std::fabs(pull_g - cached_g) <= gtol)
              << "BSP pull/push gain divergence for v=" << v;
        } else if (pull_t >= 0 && cached_t >= 0) {
          // Different targets are legal only on a gain tie, evaluated in
          // the pull frame.
          const auto pull_gain_to = [&](BucketId to) {
            double g = 0.0;
            for (VertexId q : graph_.DataNeighbors(v)) {
              const uint32_t n_from = CountFor(query_ndata_[q], from);
              const uint32_t n_to = CountFor(query_ndata_[q], to);
              g += gain_.Pow(n_from - 1) - gain_.Pow(n_to);
            }
            return g * gain_.p();
          };
          SHP_CHECK(std::fabs(pull_gain_to(pull_t) - pull_gain_to(cached_t)) <=
                    1e-9)
              << "BSP pull/push target divergence beyond tie tolerance for v="
              << v;
        } else {
          SHP_CHECK(std::fabs(pull_g) <= gtol && std::fabs(cached_g) <= gtol)
              << "BSP pull/push proposal presence mismatch for v=" << v;
        }
      }
      return 0;
    });
  }
#endif

  // ---------------------------------------------------------------- S3 ---
  // data -> master: per-worker (bucket-pair, gain-bin) histograms,
  // maintained incrementally from the compact changed-proposal list. Each
  // worker still uploads its full live histogram — the master's matching
  // needs every pair's totals — so bytes stay O(active pairs × bins); only
  // the accumulation work shrinks to the blast radius.
  const GainBinning& binning = options_.broker.binning;
  const auto hist_remove = [&](int w, VertexId v) {
    if (last_pair_[v] == kNoPair) return;
    auto& hist = worker_hist_[static_cast<size_t>(w)];
    const auto it = hist.find(last_pair_[v]);
    SHP_DCHECK(it != hist.end());
    --it->second.hist.counts[static_cast<size_t>(last_bin_[v])];
    if (--it->second.total == 0) hist.erase(it);
    last_pair_[v] = kNoPair;
  };
  const auto hist_add = [&](int w, VertexId v) {
    if (cached_target_[v] < 0) return;
    const uint64_t key =
        PackPair(partition->bucket_of(v), cached_target_[v]);
    PairHistogram& ph = worker_hist_[static_cast<size_t>(w)][key];
    if (ph.hist.counts.empty()) ph.hist.Init(binning);
    const int bin = binning.BinFor(cached_gain_[v]);
    ++ph.hist.counts[static_cast<size_t>(bin)];
    ++ph.total;
    last_pair_[v] = key;
    last_bin_[v] = bin;
  };
  std::vector<uint64_t> s3_work;
  if (recompute_all || !hist_valid_) {
    s3_work = RunPhase(W, pool, [&](int w) -> uint64_t {
      uint64_t work = 0;
      worker_hist_[static_cast<size_t>(w)].clear();
      for (VertexId v : data_shards_[static_cast<size_t>(w)]) {
        last_pair_[v] = kNoPair;
        hist_add(w, v);
        ++work;
      }
      return work;
    });
    hist_valid_ = true;
  } else {
    s3_work = RunPhase(W, pool, [&](int w) -> uint64_t {
      uint64_t work = 0;
      for (VertexId v : recompute_lists_[static_cast<size_t>(w)]) {
        hist_remove(w, v);
        hist_add(w, v);
        work += 2;
      }
      return work;
    });
  }

#ifndef NDEBUG
  {
    // The incrementally maintained histograms must equal a from-scratch
    // accumulation over the current proposals.
    for (int w = 0; w < W; ++w) {
      std::unordered_map<uint64_t, DirectedGainHistogram> check;
      for (VertexId v : data_shards_[static_cast<size_t>(w)]) {
        if (cached_target_[v] < 0) continue;
        auto& h = check[PackPair(partition->bucket_of(v), cached_target_[v])];
        if (h.counts.empty()) h.Init(binning);
        h.Add(binning, cached_gain_[v]);
      }
      const auto& live = worker_hist_[static_cast<size_t>(w)];
      SHP_CHECK(live.size() == check.size())
          << "incremental histogram pair set diverged on worker " << w;
      for (const auto& [key, h] : check) {
        const auto it = live.find(key);
        SHP_CHECK(it != live.end() && it->second.hist.counts == h.counts)
            << "incremental histogram diverged on worker " << w;
      }
    }
  }
#endif

  // Master merge (the master is a distinct machine; every worker's
  // histogram entries cross the wire).
  std::unordered_map<uint64_t, DirectedGainHistogram> histograms;
  uint64_t s3_remote_entries = 0;
  uint64_t num_proposals = 0;
  for (int w = 0; w < W; ++w) {
    for (const auto& [key, ph] : worker_hist_[static_cast<size_t>(w)]) {
      s3_remote_entries += ph.hist.counts.size();
      auto& merged = histograms[key];
      if (merged.counts.empty()) merged.Init(binning);
      for (size_t bin = 0; bin < ph.hist.counts.size(); ++bin) {
        merged.counts[bin] += ph.hist.counts[bin];
        num_proposals += ph.hist.counts[bin];
      }
    }
  }

  SuperstepStats s3;
  s3.label = "3:propose-to-master";
  s3.superstep = base_superstep + 2;
  s3.traffic.remote_messages = s3_remote_entries;
  s3.traffic.remote_bytes = s3_remote_entries * sizeof(uint64_t);
  s3.work_units = s3_work;

  // ---------------------------------------------------------------- S4 ---
  // master -> data: probabilities; vertices draw and move; master repairs.
  // Active proposals draw unless their pair row is all zero (the draw
  // floor below — skipping a probability-0 draw cannot change the
  // trajectory), and the drawn movers land in compact per-worker lists, so
  // execution, repair, and next round's superstep 1 touch O(moved) state.
  const PairProbabilityTable table =
      ComputePairProbabilities(topo, binning, histograms, *partition,
                               options_.broker.use_capacity_slack);

  // Draw floor: proposals whose pair row is all zero can never fire, so
  // their draws are skipped outright — on a converged instance the draw
  // count collapses while the trajectory is unchanged (probability-0 draws
  // never fire anyway).
  const bool skip_dead = options_.broker.skip_zero_probability_pairs;
  const std::unordered_set<uint64_t> live_pairs =
      skip_dead ? table.LivePairKeys() : std::unordered_set<uint64_t>{};
  std::vector<uint64_t> s4_draws(static_cast<size_t>(W), 0);
  for (int w = 0; w < W; ++w) mover_lists_[static_cast<size_t>(w)].clear();
  std::vector<uint64_t> s4_work = RunPhase(W, pool, [&](int w) -> uint64_t {
    uint64_t work = 0;
    uint64_t draws = 0;
    std::vector<VertexId>& movers = mover_lists_[static_cast<size_t>(w)];
    for (VertexId v : data_shards_[static_cast<size_t>(w)]) {
      if (cached_target_[v] < 0) continue;
      ++work;
      if (skip_dead &&
          live_pairs.count(
              PackPair(partition->bucket_of(v), cached_target_[v])) == 0) {
        continue;
      }
      ++draws;
      const double prob =
          std::min(table.Lookup(binning, partition->bucket_of(v),
                                cached_target_[v], cached_gain_[v]),
                   options_.broker.max_move_probability) *
          options_.broker.probability_damping;
      if (HashToUnitDouble(seed ^ 0x5108e77a, iteration, v) < prob) {
        movers.push_back(v);
      }
    }
    s4_draws[static_cast<size_t>(w)] = draws;
    return work;
  });
  for (int w = 0; w < W; ++w) {
    stats.num_draws += s4_draws[static_cast<size_t>(w)];
  }

  MoveOutcome outcome;
  outcome.num_proposals = num_proposals;
  movers_.clear();
  for (int w = 0; w < W; ++w) {
    movers_.insert(movers_.end(), mover_lists_[static_cast<size_t>(w)].begin(),
                   mover_lists_[static_cast<size_t>(w)].end());
  }
  std::sort(movers_.begin(), movers_.end());
  // Per-round move budget (partition stability): identical rule to the
  // threaded broker — keep the highest-gain drawn movers, execute only
  // those. Repair below can only shrink the executed set further.
  MoveBroker::TrimToBudget(options_.broker.max_moves_per_round, cached_gain_,
                           &movers_);
  for (VertexId v : movers_) {
    original_[v] = partition->bucket_of(v);
    partition->Move(v, cached_target_[v]);
    ++outcome.num_moved;
    outcome.gain_moved += cached_gain_[v];
  }
  MoveBroker::RepairBalance(topo, movers_, original_, cached_gain_, partition,
                            &outcome);
  MoveBroker::CollectNetMoves(movers_, original_, *partition, &outcome);
  pending_announce_ = std::move(outcome.moves);
  last_movers_.clear();
  for (const VertexMove& m : pending_announce_) last_movers_.push_back(m.v);
  state_valid_ = true;
  if (push &&
      static_cast<double>(pending_announce_.size()) >
          options_.incremental_rebuild_fraction *
              static_cast<double>(graph_.num_data())) {
    // High-churn fallback (mirrors the threaded refiner): with this many
    // moved pins, the delta records outweigh the full restricted lists and
    // patching costs more than rebuilding — drop the accumulator replicas
    // and re-bootstrap next iteration.
    sweep_valid_ = false;
  }

  // Clear this round's recompute marks through the compact lists — the mark
  // array stays all-zero between iterations without an O(n) sweep.
  for (int w = 0; w < W; ++w) {
    for (VertexId v : recompute_lists_[static_cast<size_t>(w)]) {
      recompute_[v] = 0;
    }
  }

  SuperstepStats s4;
  s4.label = "4:probabilities+moves";
  s4.superstep = base_superstep + 3;
  // Broadcast: the probability table goes to every worker.
  uint64_t table_bytes = 0;
  for (const auto& [key, probs] : table.probabilities) {
    table_bytes += sizeof(uint64_t) + probs.size() * sizeof(float);
  }
  s4.traffic.remote_messages = table.probabilities.size() *
                               static_cast<uint64_t>(W);
  s4.traffic.remote_bytes = table_bytes * static_cast<uint64_t>(W);
  s4.work_units = s4_work;

  if (log_ != nullptr) {
    log_->push_back(std::move(s1));
    log_->push_back(std::move(s2));
    log_->push_back(std::move(s3));
    log_->push_back(std::move(s4));
  }

  stats.num_proposals = outcome.num_proposals;
  stats.num_moved = outcome.num_moved;
  stats.num_reverted = outcome.num_reverted;
  stats.gain_moved = outcome.gain_moved;
  stats.moved_fraction =
      graph_.num_data() == 0
          ? 0.0
          : static_cast<double>(outcome.num_moved) /
                static_cast<double>(graph_.num_data());

  // Epoch checkpoint: the full partition assignment plus the stats subset
  // the caller's convergence loop consumes, written after the moves so a
  // restore replays from the next epoch. A write failure degrades durability
  // (older checkpoints remain), never the run.
  if (checkpoints_ != nullptr && config_.checkpoint_interval > 0 &&
      epoch % static_cast<uint64_t>(config_.checkpoint_interval) == 0) {
    CheckpointData ckpt;
    ckpt.epoch = epoch;
    ckpt.num_moved = stats.num_moved;
    ckpt.gain_moved = stats.gain_moved;
    ckpt.moved_fraction = stats.moved_fraction;
    ckpt.k = static_cast<uint32_t>(partition->k());
    ckpt.assignment = partition->assignment();
    const Status ckpt_status = checkpoints_->Write(ckpt);
    if (ckpt_status.ok()) {
      ++counters_.checkpoints_written;
    } else {
      SHP_LOG(Warning) << "checkpoint write failed: "
                       << ckpt_status.ToString();
    }
  }
  // Epoch boundary: everything of this iteration — moves, repair,
  // checkpoint — is committed; external observers (the serving loop's
  // migration bookkeeping) hook in here.
  if (config_.on_epoch_end) config_.on_epoch_end(epoch, stats.num_moved);
  return stats;
}

uint64_t BspRefiner::RecoverKilledWorker(int worker) {
  // The replacement worker reloads its query shard's adjacency and rebuilds
  // each owned query's neighbor data from the authoritative partition state
  // the queries last saw (known_assignment_ mirrors it by construction —
  // exact integer counts, so the rebuilt replicas are bit-identical to the
  // lost ones and the Debug replica cross-check still passes).
  uint64_t work = 0;
  std::vector<BucketId> buckets;
  for (VertexId q : query_shards_[static_cast<size_t>(worker)]) {
    auto& entries = query_ndata_[q];
    entries.clear();
    buckets.clear();
    for (VertexId v : graph_.QueryNeighbors(q)) {
      SHP_DCHECK(known_assignment_[v] >= 0);
      buckets.push_back(known_assignment_[v]);
      ++work;
    }
    std::sort(buckets.begin(), buckets.end());
    for (size_t i = 0; i < buckets.size();) {
      size_t j = i;
      while (j < buckets.size() && buckets[j] == buckets[i]) ++j;
      entries.push_back({buckets[i], static_cast<uint32_t>(j - i)});
      i = j;
    }
  }
  return work;
}

bool BspRefiner::TransferEnveloped(uint64_t epoch,
                                   const MessageRouter<NeighborDelta>& router,
                                   SuperstepStats* s2, IterationStats* stats) {
  const int W = config_.num_workers;
  const int max_attempts = 1 + std::max(config_.max_link_retries, 0);
  bool all_ok = true;
  std::vector<uint8_t> payload;
  std::vector<uint8_t> frame;
  std::vector<uint8_t> delivered;
  std::vector<NeighborDelta> decoded;
  for (int dst = 0; dst < W; ++dst) {
    std::vector<NeighborDelta>& inbox = s2_inbox_[static_cast<size_t>(dst)];
    inbox.clear();
    for (int src = 0; src < W; ++src) {
      const std::vector<NeighborDelta>& buffer = router.Incoming(src, dst);
      if (src == dst) {
        // Worker-local delivery is a memory read: no wire, no envelope.
        inbox.insert(inbox.end(), buffer.begin(), buffer.end());
        continue;
      }
      const size_t link = LinkIndex(src, dst);
      // Every remote link sends a frame every epoch — empty payloads too.
      // That keeps the per-link sequence chain gapless, which is what turns
      // a dropped frame into a *detectable* absence at the barrier.
      payload.clear();
      wire::EncodeGroupedDeltas(buffer, &payload);
      link_payload_bytes_[link] = payload.size();
      wire::EnvelopeHeader header;
      header.epoch = epoch;
      header.sequence = ++link_send_seq_[link];
      header.record_count = buffer.size();
      frame.clear();
      s2->envelope_bytes += wire::EncodeEnveloped(header, payload, &frame);
      bool accepted = false;
      for (int attempt = 0; attempt < max_attempts && !accepted; ++attempt) {
        if (attempt > 0) {
          // Same-sequence retransmission of the full frame.
          ++stats->retransmits;
          ++counters_.retransmits;
          s2->retry_bytes += frame.size();
        }
        delivered = frame;
        const FaultInjector::WireAction action = injector_.OnDelivery(
            epoch, src, dst, attempt, &delivered, link_last_wire_[link]);
        if (action.drop) {
          // Nothing arrives; the gapless sequence chain means the receiver
          // notices the missing frame at the barrier (the simulated
          // timeout) and requests a retransmit.
          ++stats->faults_detected;
          ++counters_.faults_detected;
          continue;
        }
        wire::EnvelopeHeader got;
        decoded.clear();
        const wire::WireVerdict verdict =
            wire::DecodeEnveloped(delivered, &got, &decoded);
        bool frame_ok = verdict == wire::WireVerdict::kOk;
        // Envelope-level anomalies are classified against the link state:
        // a wrong epoch is a stale replay (reordering), a sequence below
        // recv+1 a duplicate, above it a gap.
        if (frame_ok && got.epoch != epoch) frame_ok = false;
        if (frame_ok && got.sequence != link_recv_seq_[link] + 1) {
          frame_ok = false;
        }
        if (!frame_ok) {
          ++stats->faults_detected;
          ++counters_.faults_detected;
          continue;
        }
        if (action.duplicate) {
          // The second copy arrives with a sequence the receiver has
          // already advanced past — detected and discarded, no
          // retransmission needed.
          ++stats->faults_detected;
          ++counters_.faults_detected;
        }
#ifndef NDEBUG
        // Lossless-wire gate: an accepted frame must reproduce the sender's
        // records bit-identically — the per-delivery decode-equivalence
        // CHECK that pins the faulted trajectory to the fault-free one.
        SHP_CHECK(decoded.size() == buffer.size() &&
                  std::equal(decoded.begin(), decoded.end(), buffer.begin()))
            << "enveloped superstep-2 frame round-trip mismatch on link "
            << src << "->" << dst;
#endif
        link_recv_seq_[link] = got.sequence;
        link_last_wire_[link] = frame;
        inbox.insert(inbox.end(), decoded.begin(), decoded.end());
        accepted = true;
      }
      if (accepted) {
        link_fail_streak_[link] = 0;
        link_backoff_len_[link] = std::max(config_.link_backoff_epochs, 1);
      } else {
        all_ok = false;
        // Bounded exponential backoff once a link keeps failing whole
        // epochs: while it backs off, the engine degrades to full-reship
        // bootstraps instead of retrying the enveloped exchange.
        if (++link_fail_streak_[link] >= config_.link_degrade_threshold) {
          link_backoff_until_[link] =
              epoch + 1 + static_cast<uint64_t>(link_backoff_len_[link]);
          link_backoff_len_[link] =
              std::min(link_backoff_len_[link] * 2, config_.link_backoff_max);
        }
      }
    }
  }
  return all_ok;
}

void BspRefiner::ResyncLinks() {
  for (size_t l = 0; l < link_send_seq_.size(); ++l) {
    link_recv_seq_[l] = link_send_seq_[l];
    link_last_wire_[l].clear();
  }
}

Status BspRefiner::RestoreLatestCheckpoint(Partition* partition) {
  if (checkpoints_ == nullptr) {
    return Status::NotFound(
        "checkpointing disabled (BspConfig::checkpoint_dir is empty)");
  }
  Result<CheckpointData> result = checkpoints_->LoadLatest();
  if (!result.ok()) return result.status();
  CheckpointData ckpt = std::move(result).value();
  if (ckpt.assignment.size() != static_cast<size_t>(graph_.num_data())) {
    return Status::Corruption("checkpoint vertex count " +
                              std::to_string(ckpt.assignment.size()) +
                              " does not match graph");
  }
  const uint64_t restored_epoch = ckpt.epoch;
  *partition = Partition::FromAssignment(std::move(ckpt.assignment),
                                         static_cast<BucketId>(ckpt.k));
  // Invalidate every piece of incremental state so the next RunIteration
  // bootstraps from the restored assignment exactly like a cold start —
  // replay is then a pure function of (assignment, seed, iteration), i.e.
  // indistinguishable from a run that never crashed.
  state_valid_ = false;
  sweep_valid_ = false;
  proposals_valid_ = false;
  hist_valid_ = false;
  std::fill(known_assignment_.begin(), known_assignment_.end(), -1);
  // The cold full scan re-folds every vertex against before = -1, which only
  // ever *adds* counts — stale replica content must go first.
  for (auto& entries : query_ndata_) entries.clear();
  std::fill(query_dirty_.begin(), query_dirty_.end(), 1);
  pending_announce_.clear();
  last_movers_.clear();
  std::fill(last_pair_.begin(), last_pair_.end(), kNoPair);
  epoch_ = restored_epoch + 1;
  std::fill(link_send_seq_.begin(), link_send_seq_.end(), 0);
  std::fill(link_recv_seq_.begin(), link_recv_seq_.end(), 0);
  for (auto& wire_image : link_last_wire_) wire_image.clear();
  std::fill(link_fail_streak_.begin(), link_fail_streak_.end(), 0);
  std::fill(link_backoff_until_.begin(), link_backoff_until_.end(), 0);
  std::fill(link_backoff_len_.begin(), link_backoff_len_.end(),
            std::max(config_.link_backoff_epochs, 1));
  ++counters_.rollbacks;
  return Status::Ok();
}

}  // namespace shp
