#include "engine/shp_bsp.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/move_broker.h"

namespace shp {

namespace {

/// Superstep-1 payload: bucket-count delta of one query's neighbor data.
/// Combined per (source worker, query, bucket): Giraph's combiner merges
/// same-destination messages before the wire.
struct BucketDeltaMsg {
  VertexId query;
  BucketId bucket;
  int32_t delta;
};

/// Superstep-2 payload: one query's (restricted) neighbor data, shipped once
/// per destination worker and fanned out locally.
struct NeighborDataMsg {
  VertexId query;
  std::vector<BucketCount> entries;
};

uint64_t PackPair(BucketId a, BucketId b) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint32_t>(b);
}

uint32_t CountFor(const std::vector<BucketCount>& entries, BucketId b) {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), b,
      [](const BucketCount& e, BucketId bucket) { return e.bucket < bucket; });
  if (it != entries.end() && it->bucket == b) return it->count;
  return 0;
}

}  // namespace

BspRefiner::BspRefiner(const BipartiteGraph& graph,
                       const RefinerOptions& options, const BspConfig& config,
                       std::vector<SuperstepStats>* log)
    : graph_(graph),
      options_(options),
      config_(config),
      pow_table_(1.0 - options.p / std::max<uint32_t>(1, options.future_splits),
                 static_cast<uint32_t>(graph.MaxQueryDegree()) + 2),
      sharding_(config.num_workers, config.shard_seed),
      log_(log) {
  SHP_CHECK_GT(config.num_workers, 0);
  data_shards_ = VertexSharding::BuildDataShards(sharding_, graph.num_data());
  query_shards_ =
      VertexSharding::BuildQueryShards(sharding_, graph.num_queries());
  query_ndata_.resize(graph.num_queries());
  query_dirty_.assign(graph.num_queries(), 1);
  known_assignment_.assign(graph.num_data(), -1);
  cached_target_.assign(graph.num_data(), -1);
  cached_gain_.assign(graph.num_data(), 0.0);
}

uint64_t BspRefiner::MaxWorkerStateBytes() const {
  uint64_t worst = 0;
  for (int w = 0; w < config_.num_workers; ++w) {
    uint64_t bytes = 0;
    for (VertexId v : data_shards_[static_cast<size_t>(w)]) {
      bytes += graph_.DataDegree(v) * sizeof(VertexId) + 16;
    }
    for (VertexId q : query_shards_[static_cast<size_t>(w)]) {
      bytes += graph_.QueryDegree(q) * sizeof(VertexId) +
               query_ndata_[q].size() * sizeof(BucketCount) + 16;
    }
    worst = std::max(worst, bytes);
  }
  return worst;
}

IterationStats BspRefiner::RunIteration(const MoveTopology& topo,
                                        Partition* partition, uint64_t seed,
                                        uint64_t iteration, ThreadPool* pool,
                                        const std::vector<BucketId>* anchor,
                                        double anchor_penalty) {
  if (pool == nullptr) pool = &GlobalThreadPool();
  const int W = config_.num_workers;
  const uint64_t base_superstep =
      log_ == nullptr ? 0 : static_cast<uint64_t>(log_->size());

  // ---------------------------------------------------------------- S1 ---
  // data -> query: bucket deltas from vertices whose bucket differs from
  // what their queries last saw. First iteration: everyone announces.
  MessageRouter<BucketDeltaMsg> router1(W);
  std::vector<uint64_t> s1_send_work =
      RunPhase(W, pool, [&](int w) -> uint64_t {
        uint64_t work = 0;
        // Combine deltas per (dst worker, query, bucket) before "sending".
        std::vector<std::unordered_map<uint64_t, int32_t>> combined(
            static_cast<size_t>(W));
        for (VertexId v : data_shards_[static_cast<size_t>(w)]) {
          const BucketId now = partition->bucket_of(v);
          const BucketId before = known_assignment_[v];
          if (now == before) continue;
          for (VertexId q : graph_.DataNeighbors(v)) {
            const int dst = sharding_.QueryWorker(q);
            auto& slot = combined[static_cast<size_t>(dst)];
            if (before >= 0) {
              --slot[PackPair(static_cast<BucketId>(q), before)];
            }
            ++slot[PackPair(static_cast<BucketId>(q), now)];
            work += 2;
          }
          known_assignment_[v] = now;
        }
        for (int dst = 0; dst < W; ++dst) {
          for (const auto& [key, delta] : combined[static_cast<size_t>(dst)]) {
            if (delta == 0) continue;
            router1.Send(w, dst,
                         BucketDeltaMsg{static_cast<VertexId>(key >> 32),
                                        static_cast<BucketId>(key &
                                                              0xffffffffULL),
                                        delta});
          }
        }
        return work;
      });

  // Receive: owner workers fold deltas into their queries' neighbor data.
  std::vector<uint64_t> s1_recv_work =
      RunPhase(W, pool, [&](int w) -> uint64_t {
        uint64_t work = 0;
        for (int src = 0; src < W; ++src) {
          for (const BucketDeltaMsg& m : router1.Incoming(src, w)) {
            auto& entries = query_ndata_[m.query];
            auto it = std::lower_bound(
                entries.begin(), entries.end(), m.bucket,
                [](const BucketCount& e, BucketId b) { return e.bucket < b; });
            if (it != entries.end() && it->bucket == m.bucket) {
              const int64_t next =
                  static_cast<int64_t>(it->count) + m.delta;
              SHP_DCHECK(next >= 0);
              if (next == 0) {
                entries.erase(it);
              } else {
                it->count = static_cast<uint32_t>(next);
              }
            } else {
              SHP_DCHECK(m.delta > 0);
              entries.insert(it,
                             {m.bucket, static_cast<uint32_t>(m.delta)});
            }
            query_dirty_[m.query] = 1;
            ++work;
          }
        }
        return work;
      });

  SuperstepStats s1;
  s1.label = "1:collect-neighbor-data";
  s1.superstep = base_superstep;
  s1.traffic = router1.CollectAndClear(sizeof(BucketDeltaMsg));
  s1.work_units.resize(static_cast<size_t>(W));
  for (int w = 0; w < W; ++w) {
    s1.work_units[static_cast<size_t>(w)] =
        s1_send_work[static_cast<size_t>(w)] +
        s1_recv_work[static_cast<size_t>(w)];
  }

  // ---------------------------------------------------------------- S2 ---
  // query -> data: dirty queries ship their topology-relevant neighbor data,
  // one combined message per destination worker.
  MessageRouter<NeighborDataMsg> router2(W);
  std::vector<uint64_t> s2_send_work =
      RunPhase(W, pool, [&](int w) -> uint64_t {
        uint64_t work = 0;
        std::vector<uint8_t> dst_mask(static_cast<size_t>(W));
        for (VertexId q : query_shards_[static_cast<size_t>(w)]) {
          if (!query_dirty_[q]) continue;
          // Restrict to buckets active in this topology (recursion sends
          // "at most r values" per §3.3).
          std::vector<BucketCount> restricted;
          restricted.reserve(query_ndata_[q].size());
          for (const BucketCount& e : query_ndata_[q]) {
            if (topo.group_of_bucket[static_cast<size_t>(e.bucket)] >= 0) {
              restricted.push_back(e);
            }
          }
          if (restricted.empty()) continue;
          std::fill(dst_mask.begin(), dst_mask.end(), 0);
          for (VertexId v : graph_.QueryNeighbors(q)) {
            dst_mask[static_cast<size_t>(sharding_.DataWorker(v))] = 1;
          }
          for (int dst = 0; dst < W; ++dst) {
            if (!dst_mask[static_cast<size_t>(dst)]) continue;
            router2.Send(w, dst, NeighborDataMsg{q, restricted});
            work += restricted.size();
          }
        }
        return work;
      });

  // Receive: mark data vertices adjacent to dirty queries for gain
  // recomputation, then recompute their proposals.
  std::vector<uint8_t> recompute(graph_.num_data(), 0);
  RunPhase(W, pool, [&](int w) -> uint64_t {
    uint64_t work = 0;
    for (int src = 0; src < W; ++src) {
      for (const NeighborDataMsg& m : router2.Incoming(src, w)) {
        for (VertexId v : graph_.QueryNeighbors(m.query)) {
          if (sharding_.DataWorker(v) == w) recompute[v] = 1;
        }
        work += m.entries.size();
      }
    }
    return work;
  });

  std::vector<uint64_t> s2_gain_work =
      RunPhase(W, pool, [&](int w) -> uint64_t {
        uint64_t work = 0;
        std::vector<double> affinity;
        std::vector<BucketId> touched;
        if (topo.full_k) {
          affinity.assign(static_cast<size_t>(topo.k), 0.0);
        }
        const double p = options_.p;
        for (VertexId v : data_shards_[static_cast<size_t>(w)]) {
          const BucketId from = partition->bucket_of(v);
          const int32_t group =
              topo.group_of_bucket[static_cast<size_t>(from)];
          if (group < 0) {
            cached_target_[v] = -1;
            continue;
          }
          if (!recompute[v] && cached_target_[v] >= 0) continue;  // clean
          if (graph_.DataDegree(v) == 0) {
            cached_target_[v] = -1;
            continue;
          }

          BucketId best_target = -1;
          double best_gain = 0.0;
          if (topo.full_k) {
            // Sparse affinity scan over the received neighbor data.
            touched.clear();
            double base = 0.0;
            double degree = 0.0;
            for (VertexId q : graph_.DataNeighbors(v)) {
              degree += 1.0;
              for (const BucketCount& e : query_ndata_[q]) {
                work += 1;
                if (e.bucket == from) {
                  base += pow_table_.Pow(e.count - 1);
                  continue;
                }
                if (affinity[static_cast<size_t>(e.bucket)] == 0.0) {
                  touched.push_back(e.bucket);
                }
                affinity[static_cast<size_t>(e.bucket)] +=
                    1.0 - pow_table_.Pow(e.count);
              }
            }
            double best_affinity = 0.0;
            for (BucketId b : touched) {
              if (affinity[static_cast<size_t>(b)] > best_affinity + 1e-15) {
                best_affinity = affinity[static_cast<size_t>(b)];
                best_target = b;
              }
            }
            if (best_target == -1) {
              best_target = from == 0 ? 1 : 0;
              if (best_target >= topo.k) best_target = -1;
            }
            for (BucketId b : touched) {
              affinity[static_cast<size_t>(b)] = 0.0;
            }
            if (best_target >= 0) {
              best_gain = p * (base - (degree - best_affinity));
            }
          } else {
            const auto& children =
                topo.group_children[static_cast<size_t>(group)];
            bool first = true;
            for (BucketId candidate : children) {
              if (candidate == from) continue;
              double gain = 0.0;
              for (VertexId q : graph_.DataNeighbors(v)) {
                const uint32_t n_from = CountFor(query_ndata_[q], from);
                const uint32_t n_to = CountFor(query_ndata_[q], candidate);
                SHP_DCHECK(n_from >= 1);
                gain += pow_table_.Pow(n_from - 1) - pow_table_.Pow(n_to);
                work += 2;
              }
              gain *= p;
              if (first || gain > best_gain) {
                best_gain = gain;
                best_target = candidate;
                first = false;
              }
            }
          }

          if (best_target >= 0 && anchor != nullptr &&
              anchor_penalty != 0.0) {
            const BucketId home = (*anchor)[v];
            if (from == home && best_target != home) {
              best_gain -= anchor_penalty;
            }
            if (from != home && best_target == home) {
              best_gain += anchor_penalty;
            }
          }
          if (best_target >= 0 && !options_.propose_nonpositive &&
              best_gain <= 0.0) {
            best_target = -1;
          }
          cached_target_[v] = best_target;
          cached_gain_[v] = best_target >= 0 ? best_gain : 0.0;
        }
        return work;
      });

  // Queries consumed their dirty flag by sending.
  RunPhase(W, pool, [&](int w) -> uint64_t {
    for (VertexId q : query_shards_[static_cast<size_t>(w)]) {
      query_dirty_[q] = 0;
    }
    return 0;
  });

  SuperstepStats s2;
  s2.label = "2:ship-neighbor-data+gains";
  s2.superstep = base_superstep + 1;
  s2.traffic = router2.CollectAndClearSized([](const NeighborDataMsg& m) {
    return sizeof(VertexId) + m.entries.size() * sizeof(BucketCount);
  });
  s2.work_units.resize(static_cast<size_t>(W));
  for (int w = 0; w < W; ++w) {
    s2.work_units[static_cast<size_t>(w)] =
        s2_send_work[static_cast<size_t>(w)] +
        s2_gain_work[static_cast<size_t>(w)];
  }

  // ---------------------------------------------------------------- S3 ---
  // data -> master: per-worker histograms of (pair, bin) proposal counts.
  const GainBinning& binning = options_.broker.binning;
  std::vector<std::unordered_map<uint64_t, DirectedGainHistogram>>
      worker_histograms(static_cast<size_t>(W));
  std::vector<uint64_t> s3_work = RunPhase(W, pool, [&](int w) -> uint64_t {
    uint64_t work = 0;
    auto& local = worker_histograms[static_cast<size_t>(w)];
    for (VertexId v : data_shards_[static_cast<size_t>(w)]) {
      if (cached_target_[v] < 0) continue;
      auto& h = local[PackPair(partition->bucket_of(v), cached_target_[v])];
      if (h.counts.empty()) h.Init(binning);
      h.Add(binning, cached_gain_[v]);
      ++work;
    }
    return work;
  });

  // Master merge (the master is a distinct machine; every worker's
  // histogram entries cross the wire).
  std::unordered_map<uint64_t, DirectedGainHistogram> histograms;
  uint64_t s3_remote_entries = 0;
  uint64_t num_proposals = 0;
  for (int w = 0; w < W; ++w) {
    for (const auto& [key, h] : worker_histograms[static_cast<size_t>(w)]) {
      s3_remote_entries += h.counts.size();
      auto& merged = histograms[key];
      if (merged.counts.empty()) merged.Init(binning);
      for (size_t bin = 0; bin < h.counts.size(); ++bin) {
        merged.counts[bin] += h.counts[bin];
        num_proposals += h.counts[bin];
      }
    }
  }

  SuperstepStats s3;
  s3.label = "3:propose-to-master";
  s3.superstep = base_superstep + 2;
  s3.traffic.remote_messages = s3_remote_entries;
  s3.traffic.remote_bytes = s3_remote_entries * sizeof(uint64_t);
  s3.work_units = s3_work;

  // ---------------------------------------------------------------- S4 ---
  // master -> data: probabilities; vertices draw and move; master repairs.
  const PairProbabilityTable table =
      ComputePairProbabilities(topo, binning, histograms, *partition,
                               options_.broker.use_capacity_slack);

  std::vector<uint8_t> decided(graph_.num_data(), 0);
  std::vector<uint64_t> s4_work = RunPhase(W, pool, [&](int w) -> uint64_t {
    uint64_t work = 0;
    for (VertexId v : data_shards_[static_cast<size_t>(w)]) {
      if (cached_target_[v] < 0) continue;
      const double prob =
          std::min(table.Lookup(binning, partition->bucket_of(v),
                                cached_target_[v], cached_gain_[v]),
                   options_.broker.max_move_probability) *
          options_.broker.probability_damping;
      if (HashToUnitDouble(seed ^ 0x5108e77a, iteration, v) < prob) {
        decided[v] = 1;
      }
      ++work;
    }
    return work;
  });

  MoveOutcome outcome;
  outcome.num_proposals = num_proposals;
  std::vector<VertexId> moved;
  std::vector<BucketId> original(graph_.num_data(), -1);
  for (VertexId v = 0; v < graph_.num_data(); ++v) {
    if (!decided[v]) continue;
    original[v] = partition->bucket_of(v);
    partition->Move(v, cached_target_[v]);
    moved.push_back(v);
    ++outcome.num_moved;
    outcome.gain_moved += cached_gain_[v];
  }
  MoveBroker::RepairBalance(topo, moved, original, cached_gain_, partition,
                            &outcome);
  MoveBroker::CollectNetMoves(moved, original, *partition, &outcome);

  SuperstepStats s4;
  s4.label = "4:probabilities+moves";
  s4.superstep = base_superstep + 3;
  // Broadcast: the probability table goes to every worker.
  uint64_t table_bytes = 0;
  for (const auto& [key, probs] : table.probabilities) {
    table_bytes += sizeof(uint64_t) + probs.size() * sizeof(float);
  }
  s4.traffic.remote_messages = table.probabilities.size() *
                               static_cast<uint64_t>(W);
  s4.traffic.remote_bytes = table_bytes * static_cast<uint64_t>(W);
  s4.work_units = s4_work;

  if (log_ != nullptr) {
    log_->push_back(std::move(s1));
    log_->push_back(std::move(s2));
    log_->push_back(std::move(s3));
    log_->push_back(std::move(s4));
  }

  IterationStats stats;
  stats.num_proposals = outcome.num_proposals;
  stats.num_moved = outcome.num_moved;
  stats.num_reverted = outcome.num_reverted;
  stats.gain_moved = outcome.gain_moved;
  stats.moved_fraction =
      graph_.num_data() == 0
          ? 0.0
          : static_cast<double>(outcome.num_moved) /
                static_cast<double>(graph_.num_data());
  return stats;
}

}  // namespace shp
