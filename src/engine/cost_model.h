// Distributed cost model: converts BSP superstep accounting into simulated
// cluster wall time.
//
// The engine runs on one host, so host wall time says nothing about a
// 4/8/16-machine Giraph cluster. Instead every superstep reports abstract
// work units and exact remote bytes, and the model charges
//
//   machine_time(s) = max_w [ work_w · ns_per_unit
//                             + (out_bytes_w + in_bytes_w) · ns_per_byte ]
//                     + barrier_ns
//
// i.e., compute and communication overlap across workers but the slowest
// worker gates the superstep — the standard BSP h-relation cost. Constants
// default to commodity-cluster magnitudes (≈1 GB/s effective per-machine
// network, ~5 ns/unit compute, 1 ms barrier) and are configurable; the
// paper-shape claims (linear in |E|, log k levels, sublinear machine
// scaling) are invariant to the constants.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/bsp_engine.h"

namespace shp {

struct CostModelConfig {
  double ns_per_work_unit = 5.0;
  double ns_per_remote_byte = 1.0;  ///< ≈1 GB/s effective bandwidth
  double barrier_ns = 1e6;          ///< 1 ms per synchronization barrier
};

struct SimulatedTime {
  double seconds = 0.0;        ///< simulated cluster wall time
  double machine_seconds = 0.0;  ///< wall time × #machines ("total time")
};

class CostModel {
 public:
  explicit CostModel(const CostModelConfig& config) : config_(config) {}

  /// Simulated wall-clock duration of one superstep. per_worker_bytes holds
  /// out+in remote bytes per worker for this superstep.
  double SuperstepSeconds(const SuperstepStats& stats,
                          const std::vector<uint64_t>& per_worker_bytes) const;

  /// Simple variant: assumes remote bytes are spread evenly over workers
  /// (used when only the aggregate is tracked).
  double SuperstepSecondsEven(const SuperstepStats& stats,
                              int num_workers) const;

  /// Totals a run of supersteps.
  SimulatedTime Total(const std::vector<SuperstepStats>& supersteps,
                      int num_workers) const;

 private:
  CostModelConfig config_;
};

}  // namespace shp
