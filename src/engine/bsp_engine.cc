#include "engine/bsp_engine.h"

#include <atomic>

#include "common/rng.h"
#include "common/thread_pool.h"

namespace shp {

int VertexSharding::DataWorker(VertexId v) const {
  return static_cast<int>(
      HashToBounded(seed_, v, 0xda7a, static_cast<uint64_t>(num_workers_)));
}

int VertexSharding::QueryWorker(VertexId q) const {
  return static_cast<int>(
      HashToBounded(seed_, q, 0x9e12, static_cast<uint64_t>(num_workers_)));
}

std::vector<std::vector<VertexId>> VertexSharding::BuildDataShards(
    const VertexSharding& sharding, VertexId num_data) {
  std::vector<std::vector<VertexId>> shards(
      static_cast<size_t>(sharding.num_workers()));
  for (VertexId v = 0; v < num_data; ++v) {
    shards[static_cast<size_t>(sharding.DataWorker(v))].push_back(v);
  }
  return shards;
}

std::vector<std::vector<VertexId>> VertexSharding::BuildQueryShards(
    const VertexSharding& sharding, VertexId num_queries) {
  std::vector<std::vector<VertexId>> shards(
      static_cast<size_t>(sharding.num_workers()));
  for (VertexId q = 0; q < num_queries; ++q) {
    shards[static_cast<size_t>(sharding.QueryWorker(q))].push_back(q);
  }
  return shards;
}

std::vector<uint64_t> RunPhase(
    int num_workers, ThreadPool* pool,
    const std::function<uint64_t(int worker)>& phase) {
  if (pool == nullptr) pool = &GlobalThreadPool();
  std::vector<uint64_t> work(static_cast<size_t>(num_workers), 0);
  pool->ParallelForEach(static_cast<size_t>(num_workers), [&](size_t w) {
    work[w] = phase(static_cast<int>(w));
  });
  return work;
}

}  // namespace shp
