// Epoch checkpoints for the BSP engine's recovery protocol.
//
// A checkpoint captures the authoritative state a refinement epoch ends with
// — the full partition assignment plus the iteration-stats subset needed to
// resume reporting — in one self-verifying binary file:
//
//   file := "SHPC" u32(version) u64(epoch) u32(k) u32(num_data)
//           u64(num_moved) f64(gain_moved) f64(moved_fraction)
//           i32(assignment[num_data]) crc32c-u32-LE
//
// All fields little-endian native (same convention as graph/io_binary.cc);
// the trailing CRC32C covers every byte after the magic, so truncation and
// bit rot are both detected at load. A corrupt or torn checkpoint is skipped,
// not trusted: LoadLatest scans the directory and falls back to the newest
// file that verifies, which is what makes interval-based retention
// (checkpoint_keep) safe against a crash mid-write.
//
// Rollback-and-replay: BspRefiner::RestoreLatestCheckpoint resets the engine
// to the checkpointed assignment and invalidates every piece of incremental
// state, so the next RunIteration bootstraps from the restored partition —
// replaying from epoch N+1 is then indistinguishable from a run that never
// crashed, because the trajectory is a pure function of (assignment, seed,
// iteration).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "objective/neighbor_data.h"

namespace shp {

/// One epoch's recoverable state.
struct CheckpointData {
  uint64_t epoch = 0;
  /// Stats subset: what the caller's convergence loop consumes.
  uint64_t num_moved = 0;
  double gain_moved = 0.0;
  double moved_fraction = 0.0;
  /// assignment[v] = bucket of data vertex v; size() = num_data, values in
  /// [0, k). k is stored explicitly so a restore can validate the shape.
  uint32_t k = 0;
  std::vector<BucketId> assignment;
};

/// Writes one checkpoint file (atomically: temp file + rename).
Status WriteCheckpointFile(const CheckpointData& data,
                           const std::string& path);

/// Reads and verifies one checkpoint file. Corruption (bad magic/version,
/// truncation, CRC mismatch, out-of-range assignment values) is a Status,
/// never a crash.
Result<CheckpointData> ReadCheckpointFile(const std::string& path);

/// Manages a directory of epoch checkpoints with bounded retention.
class CheckpointManager {
 public:
  /// `dir` is created if missing. `keep` ≥ 1 checkpoints are retained;
  /// older ones are pruned after each successful write.
  CheckpointManager(std::string dir, int keep);

  /// Writes `data` as ckpt_<epoch>.shpc and prunes beyond the keep limit.
  Status Write(const CheckpointData& data);

  /// Loads the newest (highest-epoch) checkpoint that verifies, skipping
  /// corrupt files. NotFound when no valid checkpoint exists.
  Result<CheckpointData> LoadLatest() const;

  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  int keep_;
};

}  // namespace shp
