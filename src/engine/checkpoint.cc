#include "engine/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "common/checksum.h"
#include "common/logging.h"

namespace shp {

namespace {

constexpr char kMagic[4] = {'S', 'H', 'P', 'C'};
constexpr uint32_t kVersion = 1;

/// Serializes everything after the magic into a flat buffer — the unit the
/// trailing CRC32C covers, and the unit written in one fwrite so a torn write
/// can only truncate, never interleave.
std::vector<uint8_t> SerializeBody(const CheckpointData& data) {
  std::vector<uint8_t> body;
  body.reserve(4 + 8 + 4 + 4 + 8 + 8 + 8 +
               data.assignment.size() * sizeof(BucketId));
  auto append = [&body](const void* p, size_t n) {
    const auto* bytes = static_cast<const uint8_t*>(p);
    body.insert(body.end(), bytes, bytes + n);
  };
  const uint32_t num_data = static_cast<uint32_t>(data.assignment.size());
  append(&kVersion, sizeof(kVersion));
  append(&data.epoch, sizeof(data.epoch));
  append(&data.k, sizeof(data.k));
  append(&num_data, sizeof(num_data));
  append(&data.num_moved, sizeof(data.num_moved));
  append(&data.gain_moved, sizeof(data.gain_moved));
  append(&data.moved_fraction, sizeof(data.moved_fraction));
  if (!data.assignment.empty()) {
    append(data.assignment.data(),
           data.assignment.size() * sizeof(BucketId));
  }
  return body;
}

std::string CheckpointFileName(uint64_t epoch) {
  char name[64];
  std::snprintf(name, sizeof(name), "ckpt_%020llu.shpc",
                static_cast<unsigned long long>(epoch));
  return name;
}

/// Parses "ckpt_<epoch>.shpc"; returns false for unrelated directory entries.
bool ParseCheckpointFileName(const std::string& name, uint64_t* epoch) {
  constexpr const char* kPrefix = "ckpt_";
  constexpr const char* kSuffix = ".shpc";
  if (name.size() <= 5 + 5) return false;
  if (name.compare(0, 5, kPrefix) != 0) return false;
  if (name.compare(name.size() - 5, 5, kSuffix) != 0) return false;
  uint64_t value = 0;
  for (size_t i = 5; i < name.size() - 5; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *epoch = value;
  return true;
}

}  // namespace

Status WriteCheckpointFile(const CheckpointData& data,
                           const std::string& path) {
  const std::vector<uint8_t> body = SerializeBody(data);
  const uint32_t crc = Crc32c(body.data(), body.size());
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open " + tmp);
  bool ok = std::fwrite(kMagic, 1, 4, f) == 4;
  ok = ok && std::fwrite(body.data(), 1, body.size(), f) == body.size();
  uint8_t crc_le[4];
  for (int i = 0; i < 4; ++i) crc_le[i] = static_cast<uint8_t>(crc >> (8 * i));
  ok = ok && std::fwrite(crc_le, 1, 4, f) == 4;
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::IoError("write failed for " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return Status::IoError("rename failed for " + path + ": " + ec.message());
  }
  return Status::Ok();
}

Result<CheckpointData> ReadCheckpointFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  // Size-bounded read: the whole file is loaded once, then parsed from
  // memory, so a corrupt header can never drive an allocation beyond the
  // actual file size.
  std::fseek(f, 0, SEEK_END);
  const long file_size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (file_size < 0) {
    std::fclose(f);
    return Status::IoError("cannot stat " + path);
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(file_size));
  const bool read_ok =
      bytes.empty() ||
      std::fread(bytes.data(), 1, bytes.size(), f) == bytes.size();
  std::fclose(f);
  if (!read_ok) return Status::IoError("read failed for " + path);

  // magic + version/epoch/k/num_data + stats + crc is the minimum frame.
  constexpr size_t kHeaderBytes = 4 + 4 + 8 + 4 + 4 + 8 + 8 + 8;
  if (bytes.size() < kHeaderBytes + 4) {
    return Status::Corruption(path + ": truncated checkpoint");
  }
  if (std::memcmp(bytes.data(), kMagic, 4) != 0) {
    return Status::Corruption(path + ": bad magic");
  }
  const uint8_t* body = bytes.data() + 4;
  const size_t body_size = bytes.size() - 4 - 4;
  const uint8_t* crc_le = bytes.data() + bytes.size() - 4;
  uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= static_cast<uint32_t>(crc_le[i]) << (8 * i);
  }
  if (Crc32c(body, body_size) != stored_crc) {
    return Status::Corruption(path + ": checksum mismatch");
  }

  CheckpointData data;
  uint32_t version = 0;
  uint32_t num_data = 0;
  const uint8_t* p = body;
  auto read = [&p](void* out, size_t n) {
    std::memcpy(out, p, n);
    p += n;
  };
  read(&version, sizeof(version));
  if (version != kVersion) {
    return Status::Corruption(path + ": unsupported version " +
                              std::to_string(version));
  }
  read(&data.epoch, sizeof(data.epoch));
  read(&data.k, sizeof(data.k));
  read(&num_data, sizeof(num_data));
  read(&data.num_moved, sizeof(data.num_moved));
  read(&data.gain_moved, sizeof(data.gain_moved));
  read(&data.moved_fraction, sizeof(data.moved_fraction));
  const size_t expect = kHeaderBytes - 4 +
                        static_cast<size_t>(num_data) * sizeof(BucketId);
  if (body_size != expect) {
    return Status::Corruption(path + ": size does not match vertex count");
  }
  data.assignment.resize(num_data);
  if (num_data > 0) {
    read(data.assignment.data(),
         static_cast<size_t>(num_data) * sizeof(BucketId));
  }
  if (data.k == 0 && num_data > 0) {
    return Status::Corruption(path + ": zero buckets with nonzero vertices");
  }
  for (const BucketId b : data.assignment) {
    if (b < 0 || static_cast<uint32_t>(b) >= data.k) {
      return Status::Corruption(path + ": assignment value out of range");
    }
  }
  return data;
}

CheckpointManager::CheckpointManager(std::string dir, int keep)
    : dir_(std::move(dir)), keep_(std::max(keep, 1)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  // A failure here surfaces as an IoError at the first Write.
}

Status CheckpointManager::Write(const CheckpointData& data) {
  const std::string path =
      (std::filesystem::path(dir_) / CheckpointFileName(data.epoch)).string();
  SHP_RETURN_IF_ERROR(WriteCheckpointFile(data, path));
  // Prune beyond the retention limit, oldest first. Pruning is best-effort:
  // a leftover file costs disk, not correctness.
  std::vector<uint64_t> epochs;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    uint64_t epoch = 0;
    if (ParseCheckpointFileName(entry.path().filename().string(), &epoch)) {
      epochs.push_back(epoch);
    }
  }
  std::sort(epochs.begin(), epochs.end());
  const size_t keep = static_cast<size_t>(keep_);
  for (size_t i = 0; i + keep < epochs.size(); ++i) {
    std::filesystem::remove(
        std::filesystem::path(dir_) / CheckpointFileName(epochs[i]), ec);
  }
  return Status::Ok();
}

Result<CheckpointData> CheckpointManager::LoadLatest() const {
  std::vector<uint64_t> epochs;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    uint64_t epoch = 0;
    if (ParseCheckpointFileName(entry.path().filename().string(), &epoch)) {
      epochs.push_back(epoch);
    }
  }
  // Newest valid wins: a corrupt (torn, rotted) checkpoint falls back to the
  // next older one instead of failing the restore.
  std::sort(epochs.begin(), epochs.end(), std::greater<uint64_t>());
  for (const uint64_t epoch : epochs) {
    const std::string path =
        (std::filesystem::path(dir_) / CheckpointFileName(epoch)).string();
    Result<CheckpointData> result = ReadCheckpointFile(path);
    if (result.ok()) return result;
    SHP_LOG(Warning) << "skipping unreadable checkpoint " << path << ": "
                     << result.status().ToString();
  }
  return Status::NotFound("no valid checkpoint in " + dir_);
}

}  // namespace shp
