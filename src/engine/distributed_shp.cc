#include "engine/distributed_shp.h"

#include <memory>

#include "common/timer.h"
#include "engine/shp_bsp.h"

namespace shp {

DistributedShp::DistributedShp(const DistributedShpOptions& options)
    : options_(options) {}

DistributedShpReport DistributedShp::Run(const BipartiteGraph& graph,
                                         BucketId k, ThreadPool* pool) const {
  DistributedShpReport report;
  report.k = k;
  report.num_workers = options_.bsp.num_workers;

  // The factory hands every driver level a BSP refiner that appends into the
  // shared superstep log. The BspRefiner keeps cross-iteration state (dirty
  // flags, cached proposals), so one instance per driver-level is exactly
  // the Giraph job lifetime.
  auto log = std::make_shared<std::vector<SuperstepStats>>();
  auto max_state = std::make_shared<uint64_t>(0);
  const BspConfig bsp = options_.bsp;
  RefinerFactory factory =
      [log, max_state, bsp](const BipartiteGraph& g,
                            const RefinerOptions& ropts)
      -> std::unique_ptr<RefinerInterface> {
    auto refiner = std::make_unique<BspRefiner>(g, ropts, bsp, log.get());
    *max_state = std::max(*max_state, refiner->MaxWorkerStateBytes());
    return refiner;
  };

  Timer timer;
  if (options_.recursive) {
    RecursiveOptions options = options_.recursive_options;
    options.k = k;
    options.refiner_factory = factory;
    report.assignment = RecursivePartitioner(options).Run(graph, pool)
                            .assignment;
  } else {
    ShpKOptions options = options_.shpk_options;
    options.k = k;
    options.refiner_factory = factory;
    report.assignment = ShpKPartitioner(options).Run(graph, pool).assignment;
  }
  report.host_wall_seconds = timer.ElapsedSeconds();

  report.supersteps = std::move(*log);
  report.num_supersteps = report.supersteps.size();
  for (const auto& stats : report.supersteps) {
    report.total_traffic += stats.traffic;
  }
  report.simulated = CostModel(options_.cost)
                         .Total(report.supersteps, options_.bsp.num_workers);
  report.max_worker_state_bytes = *max_state;
  return report;
}

}  // namespace shp
