#include "engine/cost_model.h"

#include <algorithm>

#include "common/logging.h"

namespace shp {

double CostModel::SuperstepSeconds(
    const SuperstepStats& stats,
    const std::vector<uint64_t>& per_worker_bytes) const {
  SHP_CHECK_EQ(per_worker_bytes.size(), stats.work_units.size());
  double worst = 0.0;
  for (size_t w = 0; w < stats.work_units.size(); ++w) {
    const double ns =
        static_cast<double>(stats.work_units[w]) * config_.ns_per_work_unit +
        static_cast<double>(per_worker_bytes[w]) * config_.ns_per_remote_byte;
    worst = std::max(worst, ns);
  }
  return (worst + config_.barrier_ns) * 1e-9;
}

double CostModel::SuperstepSecondsEven(const SuperstepStats& stats,
                                       int num_workers) const {
  const double bytes_per_worker =
      num_workers > 0
          ? static_cast<double>(stats.traffic.remote_bytes) / num_workers
          : 0.0;
  const double ns =
      static_cast<double>(stats.MaxWork()) * config_.ns_per_work_unit +
      // bytes counted once on the send side and once on the receive side
      2.0 * bytes_per_worker * config_.ns_per_remote_byte;
  return (ns + config_.barrier_ns) * 1e-9;
}

SimulatedTime CostModel::Total(const std::vector<SuperstepStats>& supersteps,
                               int num_workers) const {
  SimulatedTime time;
  for (const auto& stats : supersteps) {
    time.seconds += SuperstepSecondsEven(stats, num_workers);
  }
  time.machine_seconds = time.seconds * num_workers;
  return time;
}

}  // namespace shp
