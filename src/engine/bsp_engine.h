// Minimal BSP (Pregel/Giraph-style) execution scaffolding for the simulated
// cluster: worker sharding, superstep phases with barriers, and per-superstep
// accounting (paper §3.2 Fig. 3).
//
// A "phase" is a function executed once per worker, in parallel; the call
// returns when all workers finish — that return is the synchronization
// barrier. Phases also report abstract work units (loop operations), which
// the CostModel converts into simulated machine time independently of host
// scheduling noise.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "engine/message_router.h"
#include "graph/bipartite_graph.h"

namespace shp {

class ThreadPool;

struct BspConfig {
  int num_workers = 4;  ///< simulated machines (paper's experiments use 4-16)
  uint64_t shard_seed = 0x5ca1ab1e;  ///< vertex -> worker hashing seed
  /// Exchange superstep-2 deltas through the grouped varint codec
  /// (engine/wire_format.h) instead of the raw 16-byte records. With the
  /// self-verifying envelope this is the load-bearing wire path: the receiver
  /// consumes the decoded frames. The codec is lossless, so the refinement
  /// trajectory is unchanged. false = reference switch to the raw format
  /// (accounting only, no envelope, no fault injection on the wire).
  bool varint_wire = true;

  // Fault-tolerant superstep protocol (docs/distributed.md).
  /// Retransmissions per (src, dst) link per epoch after the first delivery
  /// attempt; 1 + max_link_retries failed attempts declare the link failed
  /// for this epoch.
  int max_link_retries = 2;
  /// Consecutive failed epochs on a link before it degrades to backoff.
  int link_degrade_threshold = 2;
  /// Initial backoff length in epochs for a degraded link; doubles per
  /// further failure up to link_backoff_max. While any link is backing off,
  /// the engine runs full-reship bootstraps instead of delta exchange.
  int link_backoff_epochs = 2;
  int link_backoff_max = 16;
  /// Declarative fault schedule driving the deterministic FaultInjector;
  /// nullptr = fault-free (zero-overhead in the hot loop). Not owned; must
  /// outlive the refiner.
  const FaultSchedule* fault_schedule = nullptr;

  // Epoch checkpointing (engine/checkpoint.h).
  /// Directory for epoch checkpoints; empty = checkpointing off.
  std::string checkpoint_dir;
  /// Write a checkpoint every N epochs (only when checkpoint_dir is set).
  int checkpoint_interval = 1;
  /// Checkpoints retained on disk (older ones pruned).
  int checkpoint_keep = 2;

  /// Epoch-boundary hook: invoked after every completed iteration (all four
  /// supersteps done, moves executed and repaired, checkpoint written if
  /// due) with the engine's epoch id and the round's post-repair executed
  /// move count. The serving loop hangs its migration bookkeeping and
  /// budget accounting off this boundary; it runs on the driver thread, so
  /// callbacks may inspect the partition the caller passed to RunIteration.
  std::function<void(uint64_t epoch, uint64_t executed_moves)> on_epoch_end;
};

/// Accounting for one executed superstep.
struct SuperstepStats {
  std::string label;      ///< e.g. "collect-neighbor-data"
  uint64_t superstep = 0;
  RouteStats traffic;
  /// Envelope framing overhead (header varints + CRC) of this superstep's
  /// remote deliveries. Kept out of traffic.remote_bytes so the payload byte
  /// series stays comparable across the protocol change; gated separately
  /// (≤ 4% of the varint payload) by the bench harness.
  uint64_t envelope_bytes = 0;
  /// Full-frame bytes re-sent by link-level retransmissions (fault runs only).
  uint64_t retry_bytes = 0;
  /// Work units per worker (max over workers drives simulated time).
  std::vector<uint64_t> work_units;

  uint64_t MaxWork() const {
    uint64_t best = 0;
    for (uint64_t w : work_units) best = std::max(best, w);
    return best;
  }
  uint64_t TotalWork() const {
    uint64_t total = 0;
    for (uint64_t w : work_units) total += w;
    return total;
  }
};

/// Hash-sharding of vertices over workers (Giraph random distribution).
class VertexSharding {
 public:
  VertexSharding(int num_workers, uint64_t seed)
      : num_workers_(num_workers), seed_(seed) {}

  int num_workers() const { return num_workers_; }

  /// Worker owning data vertex v. Data and query id spaces are disjoint
  /// sides of the bipartite graph, so they use distinct salts.
  int DataWorker(VertexId v) const;
  int QueryWorker(VertexId q) const;

  /// Local data/query vertex lists per worker, built once per graph.
  static std::vector<std::vector<VertexId>> BuildDataShards(
      const VertexSharding& sharding, VertexId num_data);
  static std::vector<std::vector<VertexId>> BuildQueryShards(
      const VertexSharding& sharding, VertexId num_queries);

 private:
  int num_workers_;
  uint64_t seed_;
};

/// Runs `phase(worker)` once per worker in parallel and blocks (= barrier).
/// Returns per-worker work units as reported by the phase's return value.
std::vector<uint64_t> RunPhase(
    int num_workers, ThreadPool* pool,
    const std::function<uint64_t(int worker)>& phase);

}  // namespace shp
