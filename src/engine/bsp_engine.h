// Minimal BSP (Pregel/Giraph-style) execution scaffolding for the simulated
// cluster: worker sharding, superstep phases with barriers, and per-superstep
// accounting (paper §3.2 Fig. 3).
//
// A "phase" is a function executed once per worker, in parallel; the call
// returns when all workers finish — that return is the synchronization
// barrier. Phases also report abstract work units (loop operations), which
// the CostModel converts into simulated machine time independently of host
// scheduling noise.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "engine/message_router.h"
#include "graph/bipartite_graph.h"

namespace shp {

class ThreadPool;

struct BspConfig {
  int num_workers = 4;  ///< simulated machines (paper's experiments use 4-16)
  uint64_t shard_seed = 0x5ca1ab1e;  ///< vertex -> worker hashing seed
  /// Account superstep-2 delta traffic with the grouped varint codec
  /// (engine/wire_format.h) instead of the raw 16-byte records. Affects byte
  /// accounting only — never the exchanged data or the refinement trajectory.
  /// false = reference switch to the raw format.
  bool varint_wire = true;
};

/// Accounting for one executed superstep.
struct SuperstepStats {
  std::string label;      ///< e.g. "collect-neighbor-data"
  uint64_t superstep = 0;
  RouteStats traffic;
  /// Work units per worker (max over workers drives simulated time).
  std::vector<uint64_t> work_units;

  uint64_t MaxWork() const {
    uint64_t best = 0;
    for (uint64_t w : work_units) best = std::max(best, w);
    return best;
  }
  uint64_t TotalWork() const {
    uint64_t total = 0;
    for (uint64_t w : work_units) total += w;
    return total;
  }
};

/// Hash-sharding of vertices over workers (Giraph random distribution).
class VertexSharding {
 public:
  VertexSharding(int num_workers, uint64_t seed)
      : num_workers_(num_workers), seed_(seed) {}

  int num_workers() const { return num_workers_; }

  /// Worker owning data vertex v. Data and query id spaces are disjoint
  /// sides of the bipartite graph, so they use distinct salts.
  int DataWorker(VertexId v) const;
  int QueryWorker(VertexId q) const;

  /// Local data/query vertex lists per worker, built once per graph.
  static std::vector<std::vector<VertexId>> BuildDataShards(
      const VertexSharding& sharding, VertexId num_data);
  static std::vector<std::vector<VertexId>> BuildQueryShards(
      const VertexSharding& sharding, VertexId num_queries);

 private:
  int num_workers_;
  uint64_t seed_;
};

/// Runs `phase(worker)` once per worker in parallel and blocks (= barrier).
/// Returns per-worker work units as reported by the phase's return value.
std::vector<uint64_t> RunPhase(
    int num_workers, ThreadPool* pool,
    const std::function<uint64_t(int worker)>& phase);

}  // namespace shp
