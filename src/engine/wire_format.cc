#include "engine/wire_format.h"

#include <cstring>
#include <limits>

#include "common/checksum.h"
#include "common/logging.h"

namespace shp::wire {

namespace {

/// uint64 varints occupy at most 10 bytes; the ids and counts this codec
/// carries all fit in 32 bits (5 bytes), but the reader accepts the full
/// width so any AppendVarint output round-trips.
constexpr int kMaxVarintBytes = 10;

bool ReadVarint(const uint8_t** p, const uint8_t* end, uint64_t* value) {
  uint64_t v = 0;
  int shift = 0;
  for (int i = 0; i < kMaxVarintBytes && *p != end; ++i) {
    const uint8_t byte = **p;
    ++*p;
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *value = v;
      return true;
    }
    shift += 7;
  }
  return false;  // truncated, or continuation bits past 10 bytes
}

inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/// Reconstructed ids must fit the positive int32 range of VertexId/BucketId.
inline bool FitsId(uint64_t v) {
  return v <= static_cast<uint64_t>(std::numeric_limits<int32_t>::max());
}

}  // namespace

void AppendVarint(std::vector<uint8_t>* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

void AppendZigZag(std::vector<uint8_t>* out, int64_t value) {
  AppendVarint(out, (static_cast<uint64_t>(value) << 1) ^
                        static_cast<uint64_t>(value >> 63));
}

void EncodeGroupedDeltas(std::span<const NeighborDelta> records,
                         std::vector<uint8_t>* out) {
  size_t i = 0;
  VertexId prev_q = 0;
  while (i < records.size()) {
    const VertexId q = records[i].q;
    SHP_DCHECK(q >= prev_q) << "grouped codec requires ascending query ids";
    size_t j = i;
    while (j < records.size() && records[j].q == q) ++j;
    AppendVarint(out, static_cast<uint64_t>(q - prev_q));
    AppendVarint(out, static_cast<uint64_t>(j - i));
    prev_q = q;
    BucketId prev_bucket = 0;
    uint32_t prev_new = 0;
    bool have_prev = false;
    for (; i < j; ++i) {
      const NeighborDelta& rec = records[i];
      SHP_DCHECK(rec.bucket >= prev_bucket)
          << "grouped codec requires non-decreasing buckets within a group";
      AppendVarint(out, static_cast<uint64_t>(rec.bucket - prev_bucket));
      // Chain invariant: a same-bucket successor's old_count equals the
      // previous record's new_count, so the reference makes the common
      // old-delta exactly 0.
      const uint32_t ref =
          (have_prev && rec.bucket == prev_bucket) ? prev_new : 0;
      AppendZigZag(out, static_cast<int64_t>(rec.old_count) -
                            static_cast<int64_t>(ref));
      AppendZigZag(out, static_cast<int64_t>(rec.new_count) -
                            static_cast<int64_t>(rec.old_count));
      prev_bucket = rec.bucket;
      prev_new = rec.new_count;
      have_prev = true;
    }
  }
}

bool DecodeGroupedDeltas(std::span<const uint8_t> bytes,
                         std::vector<NeighborDelta>* out) {
  const uint8_t* p = bytes.data();
  const uint8_t* end = p + bytes.size();
  uint64_t prev_q = 0;
  while (p != end) {
    uint64_t q_delta = 0;
    uint64_t count = 0;
    if (!ReadVarint(&p, end, &q_delta)) return false;
    if (!ReadVarint(&p, end, &count)) return false;
    // Unbounded-allocation guard: every record costs at least three stream
    // bytes, so a count claim exceeding the remaining bytes is a lie — reject
    // it before the record loop starts appending.
    if (count > static_cast<uint64_t>(end - p)) return false;
    const uint64_t q = prev_q + q_delta;
    if (!FitsId(q)) return false;
    prev_q = q;  // zero-count groups still advance the qid chain
    uint64_t prev_bucket = 0;
    int64_t prev_new = 0;
    bool have_prev = false;
    for (uint64_t r = 0; r < count; ++r) {
      uint64_t b_delta = 0;
      uint64_t old_zz = 0;
      uint64_t new_zz = 0;
      if (!ReadVarint(&p, end, &b_delta)) return false;
      if (!ReadVarint(&p, end, &old_zz)) return false;
      if (!ReadVarint(&p, end, &new_zz)) return false;
      const uint64_t bucket = prev_bucket + b_delta;
      if (!FitsId(bucket)) return false;
      const int64_t ref =
          (have_prev && bucket == prev_bucket && b_delta == 0) ? prev_new : 0;
      const int64_t old_count = ref + ZigZagDecode(old_zz);
      const int64_t new_count = old_count + ZigZagDecode(new_zz);
      if (old_count < 0 || old_count > std::numeric_limits<uint32_t>::max())
        return false;
      if (new_count < 0 || new_count > std::numeric_limits<uint32_t>::max())
        return false;
      out->push_back(NeighborDelta{static_cast<VertexId>(q),
                                   static_cast<BucketId>(bucket),
                                   static_cast<uint32_t>(old_count),
                                   static_cast<uint32_t>(new_count)});
      prev_bucket = bucket;
      prev_new = new_count;
      have_prev = true;
    }
  }
  return true;
}

size_t GroupedWireBytes(std::span<const NeighborDelta> records) {
  thread_local std::vector<uint8_t> scratch;
  scratch.clear();
  EncodeGroupedDeltas(records, &scratch);
#ifndef NDEBUG
  thread_local std::vector<NeighborDelta> decoded;
  decoded.clear();
  SHP_CHECK(DecodeGroupedDeltas(scratch, &decoded))
      << "grouped wire stream failed to decode its own encoding";
  SHP_CHECK_EQ(decoded.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    SHP_CHECK(decoded[i] == records[i])
        << "grouped wire codec round-trip mismatch at record " << i;
  }
#endif
  return scratch.size();
}

const char* WireVerdictName(WireVerdict verdict) {
  switch (verdict) {
    case WireVerdict::kOk:
      return "ok";
    case WireVerdict::kTruncated:
      return "truncated";
    case WireVerdict::kCorrupt:
      return "corrupt";
  }
  return "unknown";
}

size_t EncodeEnveloped(const EnvelopeHeader& header,
                       std::span<const uint8_t> payload,
                       std::vector<uint8_t>* out) {
  const size_t start = out->size();
  AppendVarint(out, header.epoch);
  AppendVarint(out, header.sequence);
  AppendVarint(out, header.record_count);
  AppendVarint(out, payload.size());
  uint32_t crc = Crc32c(out->data() + start, out->size() - start);
  crc = Crc32c(payload.data(), payload.size(), crc);
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(crc >> (8 * i)));  // little-endian
  }
  out->insert(out->end(), payload.begin(), payload.end());
  return out->size() - start - payload.size();
}

WireVerdict DecodeEnveloped(std::span<const uint8_t> bytes,
                            EnvelopeHeader* header,
                            std::vector<NeighborDelta>* out) {
  const uint8_t* const begin = bytes.data();
  const uint8_t* p = begin;
  const uint8_t* const end = begin + bytes.size();
  if (!ReadVarint(&p, end, &header->epoch)) return WireVerdict::kTruncated;
  if (!ReadVarint(&p, end, &header->sequence)) return WireVerdict::kTruncated;
  if (!ReadVarint(&p, end, &header->record_count)) {
    return WireVerdict::kTruncated;
  }
  if (!ReadVarint(&p, end, &header->payload_bytes)) {
    return WireVerdict::kTruncated;
  }
  const size_t header_bytes = static_cast<size_t>(p - begin);
  if (end - p < 4) return WireVerdict::kTruncated;
  uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= static_cast<uint32_t>(p[i]) << (8 * i);
  }
  p += 4;
  const size_t remaining = static_cast<size_t>(end - p);
  if (header->payload_bytes > remaining) return WireVerdict::kTruncated;
  // Length pin: the frame must end exactly where the header says — trailing
  // garbage is corruption, not padding.
  if (header->payload_bytes < remaining) return WireVerdict::kCorrupt;
  uint32_t crc = Crc32c(begin, header_bytes);
  crc = Crc32c(p, remaining, crc);
  if (crc != stored_crc) return WireVerdict::kCorrupt;
  const size_t before = out->size();
  if (!DecodeGroupedDeltas(std::span<const uint8_t>(p, remaining), out)) {
    return WireVerdict::kCorrupt;
  }
  if (out->size() - before != header->record_count) {
    return WireVerdict::kCorrupt;
  }
  return WireVerdict::kOk;
}

}  // namespace shp::wire
