// Compact grouped wire format for superstep-2 NeighborDelta exchange.
//
// A (src, dst) router buffer of NeighborDelta records is highly redundant on
// the wire: records are stably sorted by (q, bucket) — each query's records
// are contiguous with bucket non-decreasing, query ids ascend across groups —
// and the chain invariant (neighbor_data.h) makes a record's old_count equal
// the previous same-bucket record's new_count, with new_count = old_count ± 1.
// The raw struct spends 16 bytes per record on fields whose information
// content is a few bits. The grouped codec exploits all three regularities:
//
//   stream  := group*
//   group   := varint(q − prev_group_q)  varint(record_count)  record*
//   record  := varint(bucket − prev_bucket_in_group)
//              zigzag(old_count − ref)       ref = previous record's
//                                            new_count when it shares the
//                                            bucket (chain ⇒ delta 0),
//                                            else 0
//              zigzag(new_count − old_count) (± 1 ⇒ one byte)
//
// with prev_group_q and prev_bucket_in_group starting at 0. Steady state this
// is ~3 bytes per record vs 16 raw. Encoding requires only the grouping
// invariant (q ascending, bucket non-decreasing within a group — DCHECKed);
// decoding additionally tolerates zero-count groups (skipped, but they still
// advance the qid chain) and full-width 5-byte varints, so hand-built streams
// round-trip too. The codec is lossless: DecodeGroupedDeltas reproduces the
// input records bit-identically, and GroupedWireBytes proves it per buffer in
// Debug builds.
//
// Since the fault-tolerant superstep protocol landed, every remote (src,
// dst) superstep-2 buffer actually flows through this codec: the sender
// encodes its records, wraps them in the self-verifying envelope below, and
// the receiver decodes the wire image — the structs the accumulator replicas
// patch from are the *decoded* ones, so the wire format is load-bearing, not
// accounting-only. The raw 16-byte sizing remains available as a reference
// switch (BspConfig::varint_wire = false; accounting only).
//
// Envelope grammar (docs/distributed.md "Failure model & recovery"):
//
//   enveloped := varint(epoch) varint(sequence) varint(record_count)
//                varint(payload_bytes) crc32c-u32-LE payload
//
// The CRC32C covers the four header varints plus the payload, so a bit flip
// anywhere in the frame is detected; `payload_bytes` pins the frame length,
// so truncation is detected before the payload is parsed; `epoch` (one per
// refinement iteration) detects stale replays; the per-(src, dst)-link
// monotonic `sequence` detects gaps and duplicates. The varint payload is
// bit-identical to the plain grouped stream — the envelope wraps it, never
// rewrites it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "objective/neighbor_data.h"

namespace shp::wire {

/// Bytes per record of the raw (reference) wire format.
inline constexpr size_t kRawDeltaBytes = sizeof(NeighborDelta);

/// Appends the LEB128 varint encoding of `value` (7 bits per byte, high bit
/// = continuation). Exposed so tests can hand-build streams.
void AppendVarint(std::vector<uint8_t>* out, uint64_t value);

/// Appends zigzag(value) as a varint (0, −1, 1, −2, 2 → 0, 1, 2, 3, 4).
void AppendZigZag(std::vector<uint8_t>* out, int64_t value);

/// Encodes `records` — which must satisfy the grouping invariant — into
/// `out` (appended; caller clears). DCHECKs the invariant in Debug.
void EncodeGroupedDeltas(std::span<const NeighborDelta> records,
                         std::vector<uint8_t>* out);

/// Decodes a grouped stream back into records (appended to *out). Returns
/// false — leaving *out in an unspecified state — on malformed input:
/// truncated or oversized varints, ids outside the 31-bit VertexId/BucketId
/// range, negative reconstructed counts, or trailing garbage.
bool DecodeGroupedDeltas(std::span<const uint8_t> bytes,
                         std::vector<NeighborDelta>* out);

/// Wire size of one router buffer under the grouped codec: encodes into a
/// thread-local scratch buffer and returns its length. In Debug builds also
/// decodes the scratch and CHECKs the records round-trip bit-identically —
/// the exact decode-equivalence gate on every simulated exchange.
size_t GroupedWireBytes(std::span<const NeighborDelta> records);

// ------------------------------------------------------------- envelope ---

/// Per-buffer envelope header. `epoch` is the engine's iteration counter;
/// `sequence` is the per-(src, dst)-link monotonic delivery number;
/// `record_count` must equal the number of records the payload decodes to;
/// `payload_bytes` the exact payload length.
struct EnvelopeHeader {
  uint64_t epoch = 0;
  uint64_t sequence = 0;
  uint64_t record_count = 0;
  uint64_t payload_bytes = 0;
};

/// Integrity verdict of one enveloped frame. Epoch/sequence anomalies
/// (stale replay, gap, duplicate) are classified by the *link state* the
/// receiver keeps, not by the frame alone — see BspRefiner's superstep-2
/// transfer loop.
enum class WireVerdict : uint8_t {
  kOk = 0,
  kTruncated,  ///< frame shorter than the header claims (or header cut off)
  kCorrupt,    ///< CRC mismatch, trailing garbage, or undecodable payload
};

const char* WireVerdictName(WireVerdict verdict);

/// Appends the envelope (header varints + CRC32C) followed by `payload` to
/// *out. The payload bytes are appended verbatim — bit-identical to the
/// plain grouped stream. Returns the envelope overhead in bytes (frame size
/// minus payload size). `header.payload_bytes` is taken from
/// `payload.size()`; the caller's value is ignored.
size_t EncodeEnveloped(const EnvelopeHeader& header,
                       std::span<const uint8_t> payload,
                       std::vector<uint8_t>* out);

/// Verifies and decodes one enveloped frame: parses the header, checks the
/// length pin and the CRC32C, decodes the grouped payload (appending to
/// *out), and checks the decoded record count against the header. On any
/// verdict other than kOk, *out may hold partially decoded records and
/// *header whatever fields parsed before the failure. Never crashes, hangs,
/// or allocates unboundedly on arbitrary bytes (fuzz-hardened with
/// DecodeGroupedDeltas).
WireVerdict DecodeEnveloped(std::span<const uint8_t> bytes,
                            EnvelopeHeader* header,
                            std::vector<NeighborDelta>* out);

}  // namespace shp::wire
