// SHP as a vertex-centric BSP program — the faithful counterpart of the
// paper's Giraph implementation (§3.2, Fig. 3). One refinement iteration is
// four supersteps with synchronization barriers:
//
//   1. data → query : current bucket (delta messages; a vertex that did not
//      move "does not send messages on superstep 1 for the next iteration").
//      Queries fold the deltas into their sparse neighbor data.
//   2. query → data : dirty queries send their neighbor data, restricted to
//      buckets active in the current move topology, ONE combined message per
//      destination worker (Giraph's machine-pair message combining);
//      receiving data vertices recompute move gains. Clean vertices keep
//      their cached proposal — their gains cannot have changed.
//   3. data → master: per-worker (bucket-pair, gain-bin) histograms.
//   4. master → data: per-pair-and-bin move probabilities; vertices draw and
//      move; the master repairs any capacity overshoot.
//
// The implementation plugs into the SHP drivers through RefinerInterface, so
// SHP-k and SHP-2/r run unmodified on top of it. All message and byte counts
// are exact; engine/cost_model.h converts them into simulated cluster time.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/refiner.h"
#include "engine/bsp_engine.h"
#include "graph/bipartite_graph.h"
#include "objective/pow_table.h"

namespace shp {

class BspRefiner : public RefinerInterface {
 public:
  /// `log`, if given, receives the SuperstepStats of every executed
  /// superstep (appended in order) and must outlive the refiner.
  BspRefiner(const BipartiteGraph& graph, const RefinerOptions& options,
             const BspConfig& config,
             std::vector<SuperstepStats>* log = nullptr);

  IterationStats RunIteration(const MoveTopology& topo, Partition* partition,
                              uint64_t seed, uint64_t iteration,
                              ThreadPool* pool = nullptr,
                              const std::vector<BucketId>* anchor = nullptr,
                              double anchor_penalty = 0.0) override;

  /// Estimated peak bytes of distributed state on the most loaded worker
  /// (adjacency shard + neighbor-data cache + proposal vectors).
  uint64_t MaxWorkerStateBytes() const;

 private:
  const BipartiteGraph& graph_;
  RefinerOptions options_;
  BspConfig config_;
  PowTable pow_table_;
  VertexSharding sharding_;
  std::vector<std::vector<VertexId>> data_shards_;
  std::vector<std::vector<VertexId>> query_shards_;

  // Distributed state. Each query's neighbor data lives on its owner worker
  // and is updated only by that worker (single-writer); the flat vectors
  // below are the simulation's stand-in for that per-worker memory.
  std::vector<std::vector<BucketCount>> query_ndata_;
  std::vector<uint8_t> query_dirty_;
  std::vector<BucketId> known_assignment_;  ///< last state sent upstream
  bool initialized_ = false;

  // Cached per-vertex proposals (clean vertices re-propose unchanged).
  std::vector<BucketId> cached_target_;
  std::vector<double> cached_gain_;

  std::vector<SuperstepStats>* log_;
};

}  // namespace shp
