// SHP as a vertex-centric BSP program — the faithful counterpart of the
// paper's Giraph implementation (§3.2, Fig. 3). One refinement iteration is
// four supersteps with synchronization barriers:
//
//   1. data → query : current bucket (delta messages; a vertex that did not
//      move "does not send messages on superstep 1 for the next iteration").
//      Queries fold the deltas into their sparse neighbor data.
//   2. query → data : two exchange modes, selected by
//      RefinerOptions::sweep_mode (the same switch that picks the threaded
//      Refiner's scan direction):
//        * pull (kPull, and the fallback whenever push is unsupported) —
//          dirty queries send their neighbor data, restricted to buckets
//          active in the current move topology, ONE combined message per
//          destination worker (Giraph's machine-pair message combining);
//          receiving data vertices re-gather move gains. The reference path.
//        * delta exchange + push sweep (kPush/kAuto with a nonzero pow
//          base, full-k AND grouped recursion topologies) — dirty queries
//          ship only the sparse (q, bucket, old, new) NeighborDelta records
//          produced while folding superstep 1, O(moved pins) on the wire
//          instead of O(Σ deg(dirty q) × touched workers). Each data worker
//          keeps an AffinitySweep accumulator replica over its own shard:
//          built query-major once (bootstrap iteration, charged as a full
//          unrestricted reship — the replicas are topology-free), patched
//          from incoming deltas thereafter, and proposals are one
//          sequential scan of the vertex's own accumulator
//          (GainComputer::FindBestTargetPush, or its group-restricted
//          window variant FindBestTargetPushGrouped under SHP-2/r recursion
//          — shared tie-break and fallback with the pull scan). A recursion
//          level advance re-slices each group's scan window and patches the
//          replicas from the diff-scan records; it does not reship.
//      In either mode, clean vertices keep their cached proposal — their
//      gains cannot have changed.
//   3. data → master: per-worker (bucket-pair, gain-bin) histograms. The
//      histograms are maintained *incrementally* from the compact
//      changed-proposal list (this round's recomputed vertices), so the
//      accumulation work is O(blast radius), not O(n); each worker still
//      ships its full live histogram (that is what the master's matching
//      needs) — bytes are O(active pairs × bins), independent of n.
//   4. master → data: per-pair-and-bin move probabilities; vertices draw and
//      move (proposals whose probability row is all zero skip the draw —
//      the trajectory-preserving draw floor); the drawn movers are
//      collected into compact per-worker lists, so move execution, balance
//      repair, and the next superstep 1 all touch O(moved) state instead of
//      rescanning n-sized arrays.
//
// The implementation plugs into the SHP drivers through RefinerInterface, so
// SHP-k and SHP-2/r run unmodified on top of it. All message and byte counts
// are exact; engine/cost_model.h converts them into simulated cluster time.
// docs/distributed.md documents the delta-exchange wire format and the
// replica-consistency invariants.
//
// Fault-tolerant superstep protocol (docs/distributed.md "Failure model &
// recovery"): in delta-exchange mode every remote (src, dst) superstep-2
// buffer crosses the simulated fabric as one self-verifying enveloped frame
// (engine/wire_format.h) — CRC32C integrity, epoch id, per-link monotonic
// sequence number — delivered through the deterministic FaultInjector. A
// detected anomaly (corruption, truncation, stale epoch, gap, duplicate)
// triggers a bounded same-sequence retransmission; an unrecoverably failed
// link invalidates the accumulator replicas and falls into the bootstrap
// reship path within the same iteration, which doubles as the protocol
// resync point (receive sequences jump to the send sequences). Repeatedly
// failing links degrade to backoff: while any link is backing off the engine
// runs full-reship bootstraps instead of delta exchange. A worker killed at
// an iteration boundary has its query replicas rebuilt from the
// authoritative partition state and the accumulator replicas re-bootstrapped.
// Optional per-epoch checkpoints (engine/checkpoint.h) enable rollback-and-
// replay via RestoreLatestCheckpoint. Every recovery path re-converges to
// the fault-free trajectory — the replica and proposal cross-checks below
// DCHECK that in Debug builds.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "engine/checkpoint.h"

#include "core/gain_histogram.h"
#include "core/move_topology.h"
#include "core/refiner.h"
#include "engine/bsp_engine.h"
#include "engine/message_router.h"
#include "graph/bipartite_graph.h"
#include "objective/affinity_sweep.h"
#include "objective/gain.h"
#include "objective/neighbor_data.h"

namespace shp {

/// Superstep-1 wire record: one bucket-count delta of one query's neighbor
/// data, combined per (source worker, query, bucket) before the wire
/// (Giraph's combiner). Folding these at the query owner is what produces
/// the NeighborDelta records superstep 2 ships in delta-exchange mode.
struct BucketDeltaMsg {
  VertexId query;
  BucketId bucket;
  int32_t delta;
};

class BspRefiner : public RefinerInterface {
 public:
  /// `log`, if given, receives the SuperstepStats of every executed
  /// superstep (appended in order) and must outlive the refiner.
  BspRefiner(const BipartiteGraph& graph, const RefinerOptions& options,
             const BspConfig& config,
             std::vector<SuperstepStats>* log = nullptr);

  IterationStats RunIteration(const MoveTopology& topo, Partition* partition,
                              uint64_t seed, uint64_t iteration,
                              ThreadPool* pool = nullptr,
                              const std::vector<BucketId>* anchor = nullptr,
                              double anchor_penalty = 0.0) override;

  /// Per-round executed-move cap (0 = unlimited): the master trims the
  /// drawn superstep-4 movers to the budget, highest gain first, before
  /// execution — same contract as the threaded broker's
  /// max_moves_per_round (the serving loop's epoch budget hook).
  void SetMoveBudget(uint64_t max_moves) override {
    options_.broker.max_moves_per_round = max_moves;
  }

  /// Estimated peak bytes of distributed state on the most loaded worker
  /// (adjacency shard + neighbor-data or accumulator replicas + proposal
  /// vectors).
  uint64_t MaxWorkerStateBytes() const;

  /// Accumulator-replica bootstrap reships performed so far (delta-exchange
  /// mode). With the externally changed fraction inside
  /// RefinerOptions::incremental_rebuild_fraction, a recursion run holds
  /// this at 1: level advances re-restrict the replicas through the
  /// diff-scan records instead of reshipping (the test hook for that
  /// invariant). Above the fraction — e.g. an SHP-2 redistribution moving
  /// ~half the vertices under the default 0.15 — the churn guard drops the
  /// replicas instead, because the records would outweigh the reship.
  uint64_t num_bootstrap_reships() const { return num_bootstraps_; }

  /// The data-worker accumulator replicas (delta-exchange mode). Exposes the
  /// sweep's bootstrap-cost counters (last_build_adjacency_reads) to benches
  /// and tests.
  const AffinitySweep& sweep() const { return sweep_; }

  /// Cumulative fault/recovery counters since construction (per-iteration
  /// values are in IterationStats).
  struct FaultCounters {
    uint64_t faults_detected = 0;
    uint64_t retransmits = 0;
    uint64_t reship_recoveries = 0;
    uint64_t workers_recovered = 0;
    uint64_t stalled_workers = 0;
    uint64_t checkpoints_written = 0;
    uint64_t rollbacks = 0;
  };
  const FaultCounters& fault_counters() const { return counters_; }

  /// Rolls the engine back to the newest valid checkpoint: *partition is
  /// replaced with the checkpointed assignment and every piece of
  /// incremental state is invalidated, so the next RunIteration bootstraps
  /// from the restored epoch and replay is indistinguishable from a run
  /// that never crashed. NotFound when checkpointing is off or no valid
  /// checkpoint exists.
  Status RestoreLatestCheckpoint(Partition* partition);

 private:
  /// last_pair_ sentinel: the vertex currently contributes to no histogram.
  static constexpr uint64_t kNoPair = ~0ull;

  /// Per-(bucket-pair) histogram kept alive across iterations on its worker;
  /// `total` tracks live proposals so emptied pairs can be pruned from the
  /// superstep-3 upload.
  struct PairHistogram {
    DirectedGainHistogram hist;
    uint64_t total = 0;
  };

  /// True iff the cached proposals were computed under an identical
  /// topology / anchor / scan-direction context.
  bool ContextMatches(const MoveTopology& topo,
                      const std::vector<BucketId>* anchor,
                      double anchor_penalty, bool push) const;
  void SnapshotContext(const MoveTopology& topo,
                       const std::vector<BucketId>* anchor,
                       double anchor_penalty, bool push);

  /// Pull-path proposal of v from the query replicas (the reference scan;
  /// shared tie-break and empty-window fallback with FindBestTargetPush).
  /// Adds the sparse-affinity scan cost to *work.
  GainComputer::BestTarget PullBestTarget(const MoveTopology& topo, VertexId v,
                                          BucketId from,
                                          std::vector<double>* affinity,
                                          std::vector<BucketId>* touched,
                                          uint64_t* work) const;

  // ---- fault-tolerant superstep protocol ----

  size_t LinkIndex(int src, int dst) const {
    return static_cast<size_t>(src) * config_.num_workers + dst;
  }

  /// Rebuilds the query replicas owned by a killed worker from the
  /// authoritative partition state its queries last saw. Returns the
  /// recovery work units charged to that worker.
  uint64_t RecoverKilledWorker(int worker);

  /// Delivers every remote router2d buffer as an enveloped frame through the
  /// fault injector with bounded same-sequence retransmission, filling
  /// s2_inbox_ (src-ascending per destination, locals copied verbatim) and
  /// link_payload_bytes_. Returns true when every link delivered; false when
  /// some link exhausted its retries (the caller then falls into the
  /// bootstrap reship path).
  bool TransferEnveloped(uint64_t epoch,
                         const MessageRouter<NeighborDelta>& router,
                         SuperstepStats* s2, IterationStats* stats);

  /// Protocol resync at a bootstrap: the full reship bypasses the enveloped
  /// link protocol, so receive sequences jump to the send sequences and the
  /// stale-frame history is dropped.
  void ResyncLinks();

  const BipartiteGraph& graph_;
  RefinerOptions options_;
  BspConfig config_;
  GainComputer gain_;
  VertexSharding sharding_;
  std::vector<std::vector<VertexId>> data_shards_;
  std::vector<std::vector<VertexId>> query_shards_;
  std::vector<int32_t> data_owner_;  ///< data vertex -> owning worker

  // Distributed state. Each query's neighbor data lives on its owner worker
  // and is updated only by that worker (single-writer); the flat vectors
  // below are the simulation's stand-in for that per-worker memory.
  std::vector<std::vector<BucketCount>> query_ndata_;
  std::vector<uint8_t> query_dirty_;
  std::vector<BucketId> known_assignment_;  ///< last state sent upstream
  /// Net executed moves of the previous superstep 4, still to be announced
  /// on the next superstep 1 — the compact replacement for the per-vertex
  /// "did I move" rescan.
  std::vector<VertexMove> pending_announce_;
  /// Last round's net movers: always recomputed in superstep 2. A mover's
  /// `from` changed even when offsetting moves cancel all of its queries'
  /// count deltas (A→B and B→A among one query's pins), in which case no
  /// dirty flag or delta record would ever reach it.
  std::vector<VertexId> last_movers_;
  bool state_valid_ = false;  ///< known_assignment_/query_ndata_ live

  // Data-worker accumulator replicas (delta-exchange mode): per-vertex
  // sparse (bucket, support, affinity) lists over each worker's own shard.
  AffinitySweep sweep_;
  bool sweep_valid_ = false;
  uint64_t num_bootstraps_ = 0;  ///< bootstrap reships (diagnostics/tests)

  // Fault-tolerant superstep protocol state. epoch_ is the engine's own
  // monotonic iteration counter (the caller's `iteration` parameter restarts
  // under recursion drivers, so it cannot key the wire protocol). The link_*
  // vectors are W×W, indexed by LinkIndex.
  uint64_t epoch_ = 0;
  FaultInjector injector_;
  std::vector<uint64_t> link_send_seq_;
  std::vector<uint64_t> link_recv_seq_;
  /// Last successfully delivered frame per link — what a reordering network
  /// would deliver in place of the current one (stale-epoch injection).
  std::vector<std::vector<uint8_t>> link_last_wire_;
  std::vector<int> link_fail_streak_;       ///< consecutive failed epochs
  std::vector<uint64_t> link_backoff_until_;  ///< in backoff while epoch <
  std::vector<int> link_backoff_len_;       ///< next backoff length (epochs)
  std::vector<uint64_t> link_payload_bytes_;  ///< per-epoch payload sizes
  FaultCounters counters_;
  std::unique_ptr<CheckpointManager> checkpoints_;

  // Cached per-vertex proposals (clean vertices re-propose unchanged).
  std::vector<BucketId> cached_target_;
  std::vector<double> cached_gain_;
  bool proposals_valid_ = false;

  // Cached proposal context (proposals depend on these beyond the replicas).
  MoveTopology cached_topo_;
  bool has_cached_topo_ = false;
  std::vector<BucketId> cached_anchor_;
  bool cached_has_anchor_ = false;
  double cached_anchor_penalty_ = 0.0;
  bool cached_push_ = false;

  // Incrementally maintained superstep-3 histograms plus each vertex's last
  // contribution (pair key / bin), so one changed proposal costs two counter
  // updates instead of an O(n) rebuild.
  std::vector<std::unordered_map<uint64_t, PairHistogram>> worker_hist_;
  std::vector<uint64_t> last_pair_;  ///< kNoPair when not contributing
  std::vector<int32_t> last_bin_;
  bool hist_valid_ = false;

  // Reusable per-iteration scratch (satellite of the delta-exchange work:
  // none of these are reallocated per call).
  MessageCombiner<int32_t> s1_combiner_;
  std::vector<std::vector<BucketDeltaMsg>> s1_sorted_;  ///< per query owner
  std::vector<std::vector<NeighborDelta>> s1_records_;  ///< per query owner
  std::vector<std::vector<NeighborDelta>> s2_inbox_;    ///< per data worker
  std::vector<uint8_t> recompute_;  ///< per-vertex mark, zeroed after use
  std::vector<std::vector<VertexId>> recompute_lists_;  ///< per data worker
  std::vector<std::vector<VertexId>> mover_lists_;      ///< per data worker
  std::vector<VertexId> movers_;       ///< merged, ascending
  std::vector<BucketId> original_;     ///< pre-move bucket (mover slots only)
  std::vector<std::vector<double>> pull_affinity_;   ///< per-worker scratch
  std::vector<std::vector<BucketId>> pull_touched_;  ///< per-worker scratch

  std::vector<SuperstepStats>* log_;
};

}  // namespace shp
