// Sparse per-query neighbor data: the multiset {n_i(q)} of how many of query
// q's data neighbors sit in each bucket i (paper §3.2, "neighbor data").
//
// Storage is sparse — one (bucket, count) entry per *occupied* bucket —
// giving total size Σ_q fanout(q) entries, exactly the message volume the
// paper's superstep-2 communication bound counts. A dense |Q|×k matrix would
// defeat the scalability analysis for large k.
//
// The structure is *incrementally maintained*: a full Build runs once per
// topology change, and the per-iteration refinement loop folds the executed
// move list in with ApplyMoves — O(Σ deg(moved) · fanout) instead of the
// O(|E| log maxdeg) rebuild. To make in-place splicing cheap, each query's
// entry list owns a small slack capacity inside one flat arena; a list that
// outgrows its slack is relocated to the arena tail, and the arena is
// compacted (epoch compaction) once relocation garbage plus slack exceed the
// live volume.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/bipartite_graph.h"

namespace shp {

class ThreadPool;

/// Bucket label type. Buckets are dense ints 0..k-1 at every stage; -1 marks
/// "unassigned" in intermediate states.
using BucketId = int32_t;

struct BucketCount {
  BucketId bucket;
  uint32_t count;

  bool operator==(const BucketCount&) const = default;
};

/// One executed move: data vertex v relocated from bucket `from` to `to`.
/// The move broker reports the net executed moves of a round in this form
/// (post balance-repair), and QueryNeighborData::ApplyMoves consumes them.
struct VertexMove {
  VertexId v;
  BucketId from;
  BucketId to;

  bool operator==(const VertexMove&) const = default;
};

/// One observed bucket-count transition of a query during ApplyMoves:
/// n_bucket(q) went from old_count to new_count (new_count = old_count ± 1).
/// Records for the same (q, bucket) chain — a later record's old_count equals
/// the previous record's new_count. The emission order preserves each chain:
/// all of a query's records come from its owning shard, which drains the
/// per-worker scatter buffers in move-list order (the ParallelFor split is a
/// contiguous ascending range per worker), so a query's records appear in
/// executed-move order for *any* thread count. Consumers that fold records
/// into derived state (the affinity sweep) may interleave different queries'
/// records freely but must keep each (q, bucket) chain in emission order —
/// the occupancy transitions (old == 0 adds support, new == 0 removes it)
/// are only well-formed along the chain.
struct NeighborDelta {
  VertexId q;
  BucketId bucket;
  uint32_t old_count;
  uint32_t new_count;

  bool operator==(const NeighborDelta&) const = default;
};

class QueryNeighborData {
 public:
  QueryNeighborData() = default;

  /// Builds neighbor data for all queries under `assignment` (size
  /// graph.num_data(), entries in [0, k)). Runs on `pool` if given, else the
  /// global pool. Counting-sort over a per-thread dense bucket scratch:
  /// O(|E| + Σ_q fanout(q) log fanout(q)) work — no per-query std::sort over
  /// the full pin list.
  void Build(const BipartiteGraph& graph,
             const std::vector<BucketId>& assignment,
             ThreadPool* pool = nullptr);

  /// Entries of query q, sorted by bucket id ascending.
  std::span<const BucketCount> Entries(VertexId q) const {
    const Loc& loc = loc_[q];
    return {entries_.data() + loc.begin, entries_.data() + loc.begin +
                                             loc.size};
  }

  /// n_b(q): count of q's neighbors in bucket b (0 if none). O(log fanout).
  uint32_t CountFor(VertexId q, BucketId b) const;

  /// fanout(q) = number of occupied buckets.
  uint32_t Fanout(VertexId q) const { return loc_[q].size; }

  VertexId num_queries() const { return static_cast<VertexId>(loc_.size()); }

  /// Total entries = Σ_q fanout(q); proxy for superstep-2 message volume.
  uint64_t TotalEntries() const { return live_entries_; }

  /// Applies a single move (v: from -> to) to all queries adjacent to v,
  /// splicing each affected entry list in place (relocating to the arena
  /// tail only when a list outgrows its slack). O(deg(v) · fanout).
  void ApplyMove(const BipartiteGraph& graph, VertexId v, BucketId from,
                 BucketId to);

  /// Applies a batch of executed moves in parallel: the query space is
  /// over-decomposed into contiguous mini-shards, per-query bucket-count
  /// deltas are scattered to their owning mini-shard, and mini-shards are
  /// then grouped into per-worker apply ranges *weighted by their scattered
  /// delta counts* (the Σ-deg-of-dirty-queries measure) — uniform ranges let
  /// one hub query serialize a whole shard. Each worker splices its queries'
  /// entry lists in place. O(Σ_v deg(v) · fanout) total work over the moved
  /// vertices —
  /// independent of |E|. If `touched_queries` is non-null, the ids of all
  /// queries whose entries changed are appended (each id once, ascending).
  /// If `deltas` is non-null, every bucket-count transition is appended as a
  /// NeighborDelta record (two per applied move × adjacent query) — the
  /// steady-state feed of the query-major affinity sweep.
  void ApplyMoves(const BipartiteGraph& graph,
                  std::span<const VertexMove> moves, ThreadPool* pool = nullptr,
                  std::vector<VertexId>* touched_queries = nullptr,
                  std::vector<NeighborDelta>* deltas = nullptr);

  /// Repacks the arena in query order with fresh slack, dropping relocation
  /// garbage. Called automatically by ApplyMove/ApplyMoves when overhead
  /// exceeds the live volume; public for tests and memory-pressure callers.
  void Compact();

  /// True iff both structures hold the same logical content (identical entry
  /// spans for every query), regardless of arena layout.
  bool ContentEquals(const QueryNeighborData& other) const;

  /// Arena slots including slack and relocation garbage (≥ TotalEntries());
  /// memory-overhead diagnostic for tests and stats.
  uint64_t ArenaSlots() const { return entries_.size(); }

 private:
  /// Per-query entry-list location, packed into one 16-byte record so the
  /// random-access gain scan touches a single cache line per query instead
  /// of three parallel arrays.
  struct Loc {
    uint64_t begin;  ///< arena offset of q's entry list
    uint32_t size;   ///< live entries of q
    uint32_t cap;    ///< arena slots owned by q (≥ size)
  };

  /// One scattered bucket-count delta: query q loses a neighbor in `from`
  /// and gains one in `to`.
  struct DeltaRec {
    VertexId q;
    BucketId from;
    BucketId to;
  };

  /// Shard-local store for entry lists that outgrew their slack during a
  /// parallel ApplyMoves (the shared arena cannot be grown concurrently).
  struct ShardOverflow {
    std::vector<std::pair<VertexId, std::vector<BucketCount>>> lists;
    std::unordered_map<VertexId, size_t> index;
  };

  /// Reusable ApplyMoves scratch: scatter buffers (workers × shards,
  /// flattened), per-shard overflow/accounting/touched lists. Cleared, not
  /// reallocated, between calls — ApplyMoves runs once per refinement
  /// iteration and the buffer count scales with cores².
  struct ApplyScratch {
    std::vector<std::vector<DeltaRec>> buffers;
    std::vector<ShardOverflow> overflow;
    std::vector<int64_t> live_delta;
    std::vector<std::vector<VertexId>> touched;
    std::vector<std::vector<NeighborDelta>> emitted;
    std::vector<uint64_t> mini_weight;  ///< scattered deltas per mini-shard
    std::vector<size_t> group_begin;    ///< weighted mini-shard → worker map
  };

  /// Outcome of an in-place delta application attempt.
  enum class DeltaResult { kDone, kNeedsGrowth };

  /// Applies (−1 at `from`, +1 at `to`) to q's entry list, accumulating the
  /// entry-count change into *live_delta. The decrement always fits; if the
  /// increment must insert a new bucket and the list is at capacity, returns
  /// kNeedsGrowth with the decrement applied (and recorded in `emitted` if
  /// non-null) and the insert still pending — the caller must record the
  /// pending (to, 0, 1) transition itself after performing the insert.
  DeltaResult ApplyDeltaInPlace(VertexId q, BucketId from, BucketId to,
                                int64_t* live_delta,
                                std::vector<NeighborDelta>* emitted = nullptr);

  /// Serial growth path: relocates q's list to the arena tail with fresh
  /// slack and performs the pending insert of `to`.
  void RelocateAndInsert(VertexId q, BucketId to);

  void MaybeCompact();

  std::vector<BucketCount> entries_;  ///< flat arena (entry lists + slack)
  std::vector<Loc> loc_;              ///< per-query list location
  uint64_t live_entries_ = 0;         ///< Σ_q loc_[q].size
  uint64_t garbage_ = 0;              ///< arena slots abandoned by relocation
  ApplyScratch scratch_;              ///< reusable ApplyMoves workspace
};

}  // namespace shp
