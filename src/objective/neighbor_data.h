// Sparse per-query neighbor data: the multiset {n_i(q)} of how many of query
// q's data neighbors sit in each bucket i (paper §3.2, "neighbor data").
//
// Storage is sparse — one (bucket, count) entry per *occupied* bucket —
// giving total size Σ_q fanout(q) entries, exactly the message volume the
// paper's superstep-2 communication bound counts. A dense |Q|×k matrix would
// defeat the scalability analysis for large k.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/bipartite_graph.h"

namespace shp {

class ThreadPool;

/// Bucket label type. Buckets are dense ints 0..k-1 at every stage; -1 marks
/// "unassigned" in intermediate states.
using BucketId = int32_t;

struct BucketCount {
  BucketId bucket;
  uint32_t count;

  bool operator==(const BucketCount&) const = default;
};

class QueryNeighborData {
 public:
  QueryNeighborData() = default;

  /// Builds neighbor data for all queries under `assignment` (size
  /// graph.num_data(), entries in [0, k)). Runs on `pool` if given, else the
  /// global pool. O(|E| log maxdeg) work.
  void Build(const BipartiteGraph& graph,
             const std::vector<BucketId>& assignment,
             ThreadPool* pool = nullptr);

  /// Entries of query q, sorted by bucket id ascending.
  std::span<const BucketCount> Entries(VertexId q) const {
    return {entries_.data() + offsets_[q], entries_.data() + offsets_[q + 1]};
  }

  /// n_b(q): count of q's neighbors in bucket b (0 if none). O(log fanout).
  uint32_t CountFor(VertexId q, BucketId b) const;

  /// fanout(q) = number of occupied buckets.
  uint32_t Fanout(VertexId q) const {
    return static_cast<uint32_t>(offsets_[q + 1] - offsets_[q]);
  }

  VertexId num_queries() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }

  /// Total entries = Σ_q fanout(q); proxy for superstep-2 message volume.
  uint64_t TotalEntries() const { return entries_.size(); }

  /// Applies a single move (v: from -> to) to all queries adjacent to v,
  /// keeping entries sorted. Used by incremental updates and by tests that
  /// cross-check gains against recomputation. O(deg(v) · fanout).
  void ApplyMove(const BipartiteGraph& graph, VertexId v, BucketId from,
                 BucketId to);

 private:
  std::vector<uint64_t> offsets_;
  std::vector<BucketCount> entries_;
};

}  // namespace shp
