// Precomputed powers of the gain base (1-p), the innermost operation of the
// move-gain kernel (paper Eq. 1). Exponents are bucket-local neighbor counts
// n_i(q), bounded by the max query degree, so a flat table removes all
// std::pow calls from the hot loop.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace shp {

class PowTable {
 public:
  /// Tabulates base^0 .. base^max_exponent; larger exponents fall back to
  /// std::pow. base must be in [0, 1].
  explicit PowTable(double base, uint32_t max_exponent = 4096);

  double base() const { return base_; }

  /// base^n.
  double Pow(uint32_t n) const {
    if (n < table_.size()) return table_[n];
    return std::pow(base_, static_cast<double>(n));
  }

 private:
  double base_;
  std::vector<double> table_;
};

}  // namespace shp
