// Query-major affinity sweep: per-vertex sparse affinity accumulators for
// the superstep-2 gain scan, maintained by streaming the neighbor-data arena
// (full pass) or by folding in ApplyMoves delta records (steady state).
//
// The pull-based gain scan (GainComputer::FindBestTarget) gathers, for every
// recomputed vertex v, the entry lists of all its adjacent queries — a
// random-access walk over the arena that dominates steady-state iteration
// latency. The paper's superstep 2 is naturally query-major: each query q
// contributes 1 − B^{n_j(q)} to the affinity of bucket j for *every* data
// neighbor of q. This module inverts the scan accordingly and keeps the
// result alive across iterations:
//
//   affinity_v[b] = Σ_{q ∈ N(v), n_b(q) > 0} (1 − B^{n_b(q)})
//   support_v[b]  = #{q ∈ N(v) : n_b(q) > 0}
//
// Build streams the neighbor-data arena once in query order (sequential
// reads; each query's per-bucket contribution is computed once and scattered
// to all its data neighbors, instead of being recomputed per vertex). In
// steady state, ApplyDeltas consumes the (q, bucket, old, new) records that
// QueryNeighborData::ApplyMoves emits and patches only the accumulators of
// vertices adjacent to a changed query — no rescan of untouched queries.
//
// The integer support count makes entry lifetime exact: an accumulator entry
// exists iff some adjacent query occupies the bucket, and dropping the entry
// at support == 0 resets the float to exactly 0, so cancellation drift never
// fabricates phantom affinity. Patching changes float summation order
// relative to a fresh build, so affinities (and the gains derived from them)
// agree with the pull path only up to accumulation error — the refiner's
// equivalence story is tolerance-based, not bit-exact (see docs/refinement.md).
// With deterministic mode on (default), delta records are canonically sorted
// before application, so accumulator contents are a pure function of the
// build assignment and the executed move history, independent of thread count.
//
// Storage mirrors QueryNeighborData: one flat arena of entries plus a packed
// per-vertex {begin, size, cap} record with slack, tail relocation on growth,
// and epoch compaction.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/bipartite_graph.h"
#include "objective/neighbor_data.h"
#include "objective/pow_table.h"

namespace shp {

class ThreadPool;

/// One accumulator slot: bucket, number of adjacent queries occupying it,
/// and their summed affinity contribution Σ (1 − B^{n_bucket(q)}).
struct AffinityEntry {
  BucketId bucket;
  uint32_t support;
  double affinity;

  bool operator==(const AffinityEntry&) const = default;
};

class AffinitySweep {
 public:
  /// deterministic: sort delta records into canonical (q, bucket, old, new)
  /// order before applying, making accumulator floats independent of the
  /// emitting shard layout (thread count). The sort is O(R log R) over the
  /// steady-state record count R — negligible; off saves only the sort.
  explicit AffinitySweep(bool deterministic = true)
      : deterministic_(deterministic) {}

  /// Full query-major pass: streams ndata's arena once in query order and
  /// scatters each query's per-bucket contributions to all its data
  /// neighbors. Vertices are range-sharded across workers; each shard
  /// streams the (cache-resident) arena sequentially and keeps only its own
  /// vertices' accumulators.
  void Build(const BipartiteGraph& graph, const QueryNeighborData& ndata,
             const PowTable& pow, ThreadPool* pool = nullptr);

  /// Steady-state patch: folds ApplyMoves delta records into the affected
  /// accumulators. O(Σ_records deg(q)) — proportional to the move blast
  /// radius, with no rescan of untouched queries. `pow` must match Build's.
  void ApplyDeltas(const BipartiteGraph& graph,
                   std::span<const NeighborDelta> deltas, const PowTable& pow,
                   ThreadPool* pool = nullptr);

  /// Source of one query's replica neighbor data for the sharded build —
  /// lets the BSP engine (per-worker replica lists, not a QueryNeighborData
  /// arena) reuse the accumulator machinery.
  using EntriesFn = std::function<std::span<const BucketCount>(VertexId)>;

  /// Owner-sharded build for the BSP engine: data vertices are distributed
  /// over `num_shards` simulated workers by `owner_of` (hash placement, not
  /// contiguous ranges), and shard s keeps accumulators only for its own
  /// vertices — vertices it does not own stay empty. The bootstrap is ONE
  /// pass over the adjacency regardless of shard count: a first parallel
  /// sweep bins each query's neighbors by owner shard (contiguous ascending
  /// query ranges per host worker), and a second merges each shard's binned
  /// queries — in ascending query order, so accumulator floats are identical
  /// to the former every-shard-streams-everything layout — into its own
  /// vertices' lists. Returns per-shard simulated work units (accumulator
  /// merge operations; the binning pass is host bookkeeping and is not
  /// charged, matching the old uncharged per-shard rescan).
  std::vector<uint64_t> BuildSharded(const BipartiteGraph& graph,
                                     const EntriesFn& entries_of,
                                     const PowTable& pow,
                                     const std::vector<int32_t>& owner_of,
                                     int num_shards,
                                     ThreadPool* pool = nullptr);

  /// Owner-sharded patch for the BSP engine: shard s applies `records[s]` —
  /// the worker's incoming superstep-2 wire records, each (q, bucket) chain
  /// in emission order — to the accumulators of its own vertices. Shards are
  /// single-writer (disjoint ownership); on the host, each shard's patch is
  /// sub-split into vertex ranges sized by Σ deg(q) of its records, so one
  /// hub-query-heavy inbox spreads over threads instead of serializing the
  /// phase. Returns per-shard simulated work units (records scanned + patch
  /// operations).
  std::vector<uint64_t> ApplyDeltasSharded(
      const BipartiteGraph& graph,
      const std::vector<std::span<const NeighborDelta>>& records,
      const PowTable& pow, const std::vector<int32_t>& owner_of,
      ThreadPool* pool = nullptr);

  /// Accumulator entries of vertex v, sorted by bucket id ascending.
  std::span<const AffinityEntry> Entries(VertexId v) const {
    const Loc& loc = loc_[v];
    return {entries_.data() + loc.begin,
            entries_.data() + loc.begin + loc.size};
  }

  /// Entries of v with bucket in [begin, end) — the group-restricted view
  /// used by the recursion push scan. A pure re-slice of the arena (two
  /// binary searches over v's sorted entries); changing the active window
  /// never rebuilds or copies accumulator state. O(log entries).
  std::span<const AffinityEntry> EntriesInWindow(VertexId v, BucketId begin,
                                                 BucketId end) const {
    const auto all = Entries(v);
    const auto cmp = [](const AffinityEntry& e, BucketId b) {
      return e.bucket < b;
    };
    const auto lo = std::lower_bound(all.begin(), all.end(), begin, cmp);
    const auto hi = std::lower_bound(lo, all.end(), end, cmp);
    return {lo, hi};
  }

  /// affinity_v[b] (0 if no adjacent query occupies b). O(log entries).
  double AffinityFor(VertexId v, BucketId b) const;

  VertexId num_vertices() const { return static_cast<VertexId>(loc_.size()); }

  /// Total live accumulator entries Σ_v |occupied buckets of N(v)|.
  uint64_t TotalEntries() const { return live_entries_; }

  /// Adjacency neighbor reads performed by the most recent BuildSharded.
  /// The one-pass bootstrap reads each (query, data-neighbor) pin exactly
  /// once, so this equals graph.num_edges() for every shard count — the
  /// counter the bootstrap-cost test and bench assert on.
  uint64_t last_build_adjacency_reads() const {
    return last_build_adjacency_reads_;
  }

  /// Arena slots including slack and relocation garbage (≥ TotalEntries()).
  uint64_t ArenaSlots() const { return entries_.size(); }

  bool deterministic() const { return deterministic_; }

  /// Repacks the arena in vertex order with fresh slack, dropping relocation
  /// garbage. Called automatically when garbage exceeds half the live
  /// volume; public for tests and memory-pressure callers.
  void Compact();

  /// Tolerance comparison against another sweep (typically a fresh Build):
  /// identical buckets and support everywhere, affinities equal within
  /// |a − b| ≤ atol + rtol · max(|a|, |b|). The debug cross-check the
  /// refiner runs per iteration.
  bool ApproxEquals(const AffinitySweep& other, double atol,
                    double rtol) const;

 private:
  /// Per-vertex accumulator location (same packing rationale as
  /// QueryNeighborData::Loc: one record per random access).
  struct Loc {
    uint64_t begin;
    uint32_t size;
    uint32_t cap;
  };

  /// Shard-local store for accumulators that outgrew their slack during a
  /// parallel ApplyDeltas (the shared arena cannot be grown concurrently).
  struct ShardOverflow {
    std::vector<std::pair<VertexId, std::vector<AffinityEntry>>> lists;
    std::unordered_map<VertexId, size_t> index;
  };

  /// Reusable ApplyDeltas scratch (cleared, not reallocated, per call).
  struct PatchScratch {
    std::vector<NeighborDelta> sorted;
    std::vector<ShardOverflow> overflow;
    std::vector<int64_t> live_delta;
    std::vector<uint64_t> deg_prefix;  ///< Σ-degree shard-bound scratch
  };

  /// Shared Build/BuildSharded tail: lays the per-vertex lists out into the
  /// arena with fresh slack and parallel-copies them in.
  void LayoutFromLists(const std::vector<std::vector<AffinityEntry>>& lists,
                       ThreadPool* pool);

  /// Folds one (bucket, affinity-add, support-delta) contribution into v's
  /// accumulator: in place while the slack lasts, else via `ovf` (the shared
  /// arena cannot grow concurrently). Shared by ApplyDeltas and the
  /// owner-sharded BSP patch.
  void PatchEntry(VertexId v, BucketId bucket, double add, int32_t sup,
                  ShardOverflow* ovf, int64_t* live_delta);

  /// Serial post-patch merge: relocates overflowed accumulators of
  /// overflow[0..count) to the arena tail and folds live_delta[0..count).
  void MergeOverflow(size_t count);

  void MaybeCompact();

  std::vector<AffinityEntry> entries_;  ///< flat arena (accumulators + slack)
  std::vector<Loc> loc_;                ///< per-vertex accumulator location
  uint64_t live_entries_ = 0;           ///< Σ_v loc_[v].size
  uint64_t garbage_ = 0;                ///< arena slots abandoned by relocation
  uint64_t last_build_adjacency_reads_ = 0;  ///< see accessor
  bool deterministic_ = true;
  PatchScratch scratch_;
};

}  // namespace shp
