// Raw-speed scan kernels for the push-path affinity argmax.
//
// GainComputer::FindBestTargetPush* reduces to one primitive: a sequential
// epsilon-guarded max over a contiguous run of AffinityEntry records,
//
//   for e in [begin, end): if e.affinity > best + eps: best = e; take e.bucket
//
// The rule is ORDER-DEPENDENT (an entry within eps of the running best is
// skipped even when it exceeds the true maximum; a later entry is compared
// against whatever best survived), so a naive vector max-reduction followed
// by "lowest bucket within eps of the max" is NOT equivalent. The AVX2
// kernel therefore vectorizes only the *rejection* test: per 4-entry block
// it computes the vector of affinities and compares against best + eps once;
// a block with no lane above the threshold cannot change the result and is
// skipped whole, while a block with any candidate lane is replayed scalarly
// in order. The output is bit-identical to the scalar kernel by
// construction, for every input — including tie-at-epsilon adversaries
// (the Debug DCHECK in gain.cc and tests/scan_kernels_test.cc hold it to
// that).
//
// Dispatch is resolved once at runtime (__builtin_cpu_supports); the AVX2
// kernel is compiled via a function-level target attribute, so the rest of
// the build needs no -march flags and the binary still runs on pre-AVX2
// hosts. Configuring with -DSHP_DISABLE_SIMD=ON removes the AVX2 kernel
// entirely (the CI leg proving the scalar fallback self-suffices).
#pragma once

#include <cstdint>

#include "objective/affinity_sweep.h"

namespace shp {

/// Running best of an epsilon-guarded sequential max scan. Value-initialized
/// state ({0.0, -1}) is the scan start: an empty bucket's affinity with no
/// candidate taken yet.
struct AffinityScanBest {
  double affinity = 0.0;
  BucketId bucket = -1;
};

/// Kernel signature: continue the sequential scan over [begin, end) from the
/// running best in *state, with tie epsilon `eps`. Kernels may be chained
/// over split runs (the caller excises the `from` entry by splitting around
/// it) — the state carries across calls exactly like one unbroken loop.
using AffinityScanFn = void (*)(const AffinityEntry* begin,
                                const AffinityEntry* end, double eps,
                                AffinityScanBest* state);

/// Reference scalar kernel (always available).
void ScanAffinityRunScalar(const AffinityEntry* begin,
                           const AffinityEntry* end, double eps,
                           AffinityScanBest* state);

/// True iff the AVX2 kernel was compiled into this binary (x86-64 gcc/clang
/// build without SHP_DISABLE_SIMD).
bool SimdScanCompiled();

/// True iff the AVX2 kernel is compiled in AND this CPU supports AVX2 — the
/// dispatch predicate.
bool SimdScanAvailable();

/// The AVX2 kernel, or nullptr when not compiled in. Exposed (alongside the
/// scalar kernel) so equivalence tests and micro-benchmarks can pin either
/// path regardless of what the dispatcher would pick.
AffinityScanFn SimdAffinityScan();

/// The dispatched kernel: AVX2 when available, scalar otherwise. Resolved
/// once per process.
AffinityScanFn ActiveAffinityScan();

}  // namespace shp
