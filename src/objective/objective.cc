#include "objective/objective.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "objective/pow_table.h"

namespace shp {

namespace {

// Shared driver: reduce fn(q, sorted bucket runs of q) over all queries.
// fn receives the query's sorted bucket scratch vector.
template <typename PerQuery>
double ReduceOverQueries(const BipartiteGraph& graph,
                         const std::vector<BucketId>& assignment,
                         ThreadPool* pool, PerQuery per_query) {
  SHP_CHECK_EQ(assignment.size(), graph.num_data());
  if (pool == nullptr) pool = &GlobalThreadPool();
  std::mutex mutex;
  double total = 0.0;
  pool->ParallelFor(
      graph.num_queries(), [&](size_t begin, size_t end, size_t) {
        std::vector<BucketId> scratch;
        double local = 0.0;
        for (size_t q = begin; q < end; ++q) {
          auto nbrs = graph.QueryNeighbors(static_cast<VertexId>(q));
          scratch.clear();
          scratch.reserve(nbrs.size());
          for (VertexId v : nbrs) {
            SHP_DCHECK(assignment[v] >= 0);
            scratch.push_back(assignment[v]);
          }
          std::sort(scratch.begin(), scratch.end());
          local += per_query(scratch);
        }
        std::lock_guard<std::mutex> lock(mutex);
        total += local;
      });
  return total;
}

}  // namespace

const char* ObjectiveKindName(ObjectiveKind kind) {
  switch (kind) {
    case ObjectiveKind::kPFanout:
      return "p-fanout";
    case ObjectiveKind::kFanout:
      return "fanout";
    case ObjectiveKind::kCliqueNet:
      return "clique-net";
  }
  return "unknown";
}

double AverageFanout(const BipartiteGraph& graph,
                     const std::vector<BucketId>& assignment,
                     ThreadPool* pool) {
  if (graph.num_queries() == 0) return 0.0;
  const double total = ReduceOverQueries(
      graph, assignment, pool, [](const std::vector<BucketId>& buckets) {
        uint32_t fanout = 0;
        for (size_t i = 0; i < buckets.size(); ++i) {
          if (i == 0 || buckets[i] != buckets[i - 1]) ++fanout;
        }
        return static_cast<double>(fanout);
      });
  return total / graph.num_queries();
}

double AveragePFanout(const BipartiteGraph& graph,
                      const std::vector<BucketId>& assignment, double p,
                      ThreadPool* pool) {
  SHP_CHECK_GT(p, 0.0);
  SHP_CHECK_LE(p, 1.0);
  if (graph.num_queries() == 0) return 0.0;
  const PowTable pow_table(1.0 - p,
                           static_cast<uint32_t>(graph.MaxQueryDegree()));
  const double total = ReduceOverQueries(
      graph, assignment, pool,
      [&pow_table](const std::vector<BucketId>& buckets) {
        double sum = 0.0;
        for (size_t i = 0; i < buckets.size();) {
          size_t j = i;
          while (j < buckets.size() && buckets[j] == buckets[i]) ++j;
          sum += 1.0 - pow_table.Pow(static_cast<uint32_t>(j - i));
          i = j;
        }
        return sum;
      });
  return total / graph.num_queries();
}

uint64_t HyperedgeCut(const BipartiteGraph& graph,
                      const std::vector<BucketId>& assignment,
                      ThreadPool* pool) {
  const double total = ReduceOverQueries(
      graph, assignment, pool, [](const std::vector<BucketId>& buckets) {
        if (buckets.empty()) return 0.0;
        return buckets.front() != buckets.back() ? 1.0 : 0.0;
      });
  return static_cast<uint64_t>(std::llround(total));
}

uint64_t SumExternalDegrees(const BipartiteGraph& graph,
                            const std::vector<BucketId>& assignment,
                            ThreadPool* pool) {
  const double total = ReduceOverQueries(
      graph, assignment, pool, [](const std::vector<BucketId>& buckets) {
        if (buckets.empty()) return 0.0;
        uint32_t fanout = 0;
        for (size_t i = 0; i < buckets.size(); ++i) {
          if (i == 0 || buckets[i] != buckets[i - 1]) ++fanout;
        }
        return static_cast<double>(fanout + (fanout > 1 ? 1 : 0));
      });
  return static_cast<uint64_t>(std::llround(total));
}

uint64_t CliqueNetCut(const BipartiteGraph& graph,
                      const std::vector<BucketId>& assignment,
                      ThreadPool* pool) {
  const double total = ReduceOverQueries(
      graph, assignment, pool, [](const std::vector<BucketId>& buckets) {
        const double d = static_cast<double>(buckets.size());
        double sum_squares = 0.0;
        for (size_t i = 0; i < buckets.size();) {
          size_t j = i;
          while (j < buckets.size() && buckets[j] == buckets[i]) ++j;
          const double n = static_cast<double>(j - i);
          sum_squares += n * n;
          i = j;
        }
        return (d * d - sum_squares) / 2.0;
      });
  return static_cast<uint64_t>(std::llround(total));
}

std::vector<uint64_t> FanoutHistogram(
    const BipartiteGraph& graph, const std::vector<BucketId>& assignment) {
  SHP_CHECK_EQ(assignment.size(), graph.num_data());
  std::vector<uint64_t> histogram;
  std::vector<BucketId> scratch;
  for (VertexId q = 0; q < graph.num_queries(); ++q) {
    auto nbrs = graph.QueryNeighbors(q);
    scratch.clear();
    for (VertexId v : nbrs) scratch.push_back(assignment[v]);
    std::sort(scratch.begin(), scratch.end());
    uint32_t fanout = 0;
    for (size_t i = 0; i < scratch.size(); ++i) {
      if (i == 0 || scratch[i] != scratch[i - 1]) ++fanout;
    }
    if (fanout >= histogram.size()) histogram.resize(fanout + 1, 0);
    ++histogram[fanout];
  }
  return histogram;
}

}  // namespace shp
