#include "objective/gain.h"

#include <algorithm>

#include "common/logging.h"
#include "objective/scan_kernels.h"

namespace shp {

namespace {

constexpr auto kBucketLess = [](const AffinityEntry& e, BucketId b) {
  return e.bucket < b;
};

/// Runs `scan` over [begin, end) with the entry at `skip` excised (when it
/// lies inside the range) — the kernels are pure epsilon-max scans, so the
/// caller splits around the `from` entry instead of branch-testing every
/// element.
inline void ScanSkippingFrom(AffinityScanFn scan, const AffinityEntry* begin,
                             const AffinityEntry* end,
                             const AffinityEntry* skip,
                             AffinityScanBest* best) {
  if (skip >= begin && skip < end) {
    scan(begin, skip, GainComputer::kAffinityTieEpsilon, best);
    scan(skip + 1, end, GainComputer::kAffinityTieEpsilon, best);
  } else {
    scan(begin, end, GainComputer::kAffinityTieEpsilon, best);
  }
}

/// Candidate when no bucket in [begin, end) \ {from} holds any neighbor of
/// v: every such bucket is as good as empty, so both scan paths pick the
/// lowest non-`from` bucket in the window — the shared deterministic
/// fallback. Returns -1 when the window contains no bucket besides `from`.
BucketId EmptyWindowFallback(BucketId from, BucketId begin, BucketId end) {
  const BucketId b = begin == from ? begin + 1 : begin;
  return b < end ? b : -1;
}

}  // namespace

GainComputer::GainComputer(double p, uint32_t max_query_degree,
                           uint32_t future_splits)
    : p_(p),
      pow_table_(1.0 - p / std::max<uint32_t>(1, future_splits),
                 max_query_degree + 2) {
  SHP_CHECK_GT(p, 0.0);
  SHP_CHECK_LE(p, 1.0);
  SHP_CHECK_GE(future_splits, 1u);
}

double GainComputer::BaseTerm(const BipartiteGraph& graph,
                              const QueryNeighborData& ndata, VertexId v,
                              BucketId from) const {
  double base = 0.0;
  for (VertexId q : graph.DataNeighbors(v)) {
    const uint32_t n_from = ndata.CountFor(q, from);
    SHP_DCHECK(n_from >= 1);  // v itself is in `from`
    base += pow_table_.Pow(n_from - 1);
  }
  return base;
}

double GainComputer::MoveGain(const BipartiteGraph& graph,
                              const QueryNeighborData& ndata, VertexId v,
                              BucketId from, BucketId to) const {
  if (from == to) return 0.0;
  double gain = 0.0;
  for (VertexId q : graph.DataNeighbors(v)) {
    const uint32_t n_from = ndata.CountFor(q, from);
    const uint32_t n_to = ndata.CountFor(q, to);
    SHP_DCHECK(n_from >= 1);
    gain += pow_table_.Pow(n_from - 1) - pow_table_.Pow(n_to);
  }
  return p_ * gain;
}

GainComputer::BestTarget GainComputer::FindBestTarget(
    const BipartiteGraph& graph, const QueryNeighborData& ndata, VertexId v,
    BucketId from, BucketId bucket_begin, BucketId bucket_end,
    std::vector<double>* affinity_scratch,
    std::vector<BucketId>* touched_scratch) const {
  SHP_DCHECK(bucket_begin < bucket_end);
  SHP_DCHECK(affinity_scratch->size() >=
             static_cast<size_t>(bucket_end));
  std::vector<double>& affinity = *affinity_scratch;
  std::vector<BucketId>& touched = *touched_scratch;
  touched.clear();

  // Σ_q B^{n_j(q)} = deg(v) − Σ_{q : n_j(q)>0} (1 − B^{n_j(q)}). We
  // accumulate the sparse second term ("affinity") per candidate bucket; an
  // untouched bucket has affinity 0. Larger affinity = better target.
  double base = 0.0;
  double degree = 0.0;
  for (VertexId q : graph.DataNeighbors(v)) {
    degree += 1.0;
    for (const BucketCount& entry : ndata.Entries(q)) {
      if (entry.bucket == from) {
        base += pow_table_.Pow(entry.count - 1);
        continue;
      }
      if (entry.bucket < bucket_begin || entry.bucket >= bucket_end) continue;
      if (affinity[entry.bucket] == 0.0) touched.push_back(entry.bucket);
      affinity[entry.bucket] += 1.0 - pow_table_.Pow(entry.count);
    }
    // If v's current bucket holds no other neighbor of q the loop above
    // added B^0 = 1; when `from` is outside [begin, end) the entry might be
    // missing entirely — but `from` always contains v, so the entry exists.
  }

  // Best touched bucket. Ties (within kAffinityTieEpsilon) must resolve to
  // the lower bucket id on both scan paths, so scan candidates in ascending
  // bucket order — `touched` is in first-encounter order, which depends on
  // the adjacency layout, not the bucket ids.
  std::sort(touched.begin(), touched.end());
  double best_affinity = 0.0;  // affinity of an empty bucket
  BucketId best_bucket = -1;
  for (BucketId b : touched) {
    if (affinity[b] > best_affinity + kAffinityTieEpsilon) {
      best_affinity = affinity[b];
      best_bucket = b;
    }
  }
  if (best_bucket == -1) {
    // All candidates are as good as an empty bucket; shared deterministic
    // fallback (its gain is the empty-bucket gain).
    best_bucket = EmptyWindowFallback(from, bucket_begin, bucket_end);
    if (best_bucket == -1) {
      for (BucketId b : touched) affinity[b] = 0.0;
      return BestTarget{-1, 0.0};
    }
  }
  // Reset scratch.
  for (BucketId b : touched) affinity[b] = 0.0;

  const double sum_pow_to = degree - best_affinity;
  return BestTarget{best_bucket, p_ * (base - sum_pow_to)};
}

GainComputer::BestTarget GainComputer::FindBestTargetPush(
    const AffinitySweep& sweep, VertexId v, BucketId from,
    BucketId bucket_begin, BucketId bucket_end, double degree) const {
  SHP_DCHECK(bucket_begin < bucket_end);
  SHP_DCHECK(SupportsPush());

  // The accumulator already holds the sparse affinity of every occupied
  // bucket, sorted ascending — the argmax is one sequential scan of v's own
  // (contiguous) entries, with the same tie-break and fallback as the pull
  // scan. The `from` entry always exists (v itself keeps each adjacent
  // query's n_from ≥ 1) and yields the base term: affinity_v[from] =
  // deg − Σ_q B^{n_from(q)}, so Σ_q B^{n_from(q)−1} = (deg − affinity)/B.
  // The entry list is bucket-sorted, so `from` and the candidate window are
  // located by binary search and the scan itself runs through the dispatched
  // kernel (note `from` may lie outside [bucket_begin, bucket_end) — its
  // lookup is over the full list, not the window).
  const auto all = sweep.Entries(v);
  const AffinityEntry* adata = all.data();
  const AffinityEntry* aend = adata + all.size();
  const AffinityEntry* from_it =
      std::lower_bound(adata, aend, from, kBucketLess);
  SHP_DCHECK(from_it != aend && from_it->bucket == from)
      << "from-bucket accumulator entry missing for v=" << v;
  const double from_affinity = from_it->affinity;
  const AffinityEntry* lo =
      std::lower_bound(adata, aend, bucket_begin, kBucketLess);
  const AffinityEntry* hi = std::lower_bound(lo, aend, bucket_end, kBucketLess);

  AffinityScanBest best;  // {0.0, -1}: affinity of an empty bucket
  ScanSkippingFrom(ActiveAffinityScan(), lo, hi, from_it, &best);
#ifndef NDEBUG
  {
    AffinityScanBest ref;
    ScanSkippingFrom(&ScanAffinityRunScalar, lo, hi, from_it, &ref);
    SHP_DCHECK(ref.affinity == best.affinity && ref.bucket == best.bucket)
        << "SIMD push scan diverged from scalar for v=" << v;
  }
#endif
  double best_affinity = best.affinity;
  BucketId best_bucket = best.bucket;
  if (best_bucket == -1) {
    best_bucket = EmptyWindowFallback(from, bucket_begin, bucket_end);
    if (best_bucket == -1) return BestTarget{-1, 0.0};
  }

  const double base = (degree - from_affinity) / pow_table_.base();
  const double sum_pow_to = degree - best_affinity;
  return BestTarget{best_bucket, p_ * (base - sum_pow_to)};
}

GainComputer::BestTarget GainComputer::FindBestTargetPushGrouped(
    const AffinitySweep& sweep, VertexId v, BucketId from,
    std::span<const BucketId> candidates, double degree) const {
  SHP_DCHECK(!candidates.empty());
  return FindBestTargetPushGroupedWindow(
      sweep.EntriesInWindow(v, candidates.front(),
                            static_cast<BucketId>(candidates.back() + 1)),
      from, candidates, degree);
}

GainComputer::BestTarget GainComputer::FindBestTargetPushGroupedWindow(
    std::span<const AffinityEntry> window, BucketId from,
    std::span<const BucketId> candidates, double degree) const {
  SHP_DCHECK(!candidates.empty());
  SHP_DCHECK(std::is_sorted(candidates.begin(), candidates.end()))
      << "grouped candidates must ascend (MoveTopology group_children "
         "invariant)";
  SHP_DCHECK(SupportsPush());

  // The candidate list (sibling buckets, ascending, containing `from`) and
  // the accumulator window spanning it are both bucket-sorted. The common
  // case — recursion groups are contiguous bucket ranges and the caller
  // sliced the window to exactly that range — means every window entry IS a
  // sibling, so the scan collapses to the kernel argmax with the `from`
  // entry excised. Sparse candidate sets or wider hand-built windows fall
  // back to the forward merge, which stays exact for arbitrary groups.
  double from_affinity = -1.0;
  double best_affinity = 0.0;  // affinity of an empty sibling
  BucketId best_bucket = -1;
  const bool contiguous =
      static_cast<size_t>(candidates.back() - candidates.front()) + 1 ==
      candidates.size();
  if (contiguous && !window.empty() &&
      window.front().bucket >= candidates.front() &&
      window.back().bucket <= candidates.back()) {
    const AffinityEntry* wdata = window.data();
    const AffinityEntry* wend = wdata + window.size();
    const AffinityEntry* from_it =
        std::lower_bound(wdata, wend, from, kBucketLess);
    if (from_it != wend && from_it->bucket == from) {
      from_affinity = from_it->affinity;
    } else {
      from_it = wend;  // nothing to excise — from is not in the window
    }
    AffinityScanBest best;  // {0.0, -1}: affinity of an empty sibling
    ScanSkippingFrom(ActiveAffinityScan(), wdata, wend, from_it, &best);
#ifndef NDEBUG
    {
      AffinityScanBest ref;
      ScanSkippingFrom(&ScanAffinityRunScalar, wdata, wend, from_it, &ref);
      SHP_DCHECK(ref.affinity == best.affinity && ref.bucket == best.bucket)
          << "SIMD grouped scan diverged from scalar (from=" << from << ")";
    }
#endif
    best_affinity = best.affinity;
    best_bucket = best.bucket;
  } else {
    size_t c = 0;
    for (const AffinityEntry& entry : window) {
      while (c < candidates.size() && candidates[c] < entry.bucket) ++c;
      if (c == candidates.size()) break;
      if (candidates[c] != entry.bucket) continue;
      if (entry.bucket == from) {
        from_affinity = entry.affinity;
        continue;
      }
      if (entry.affinity > best_affinity + kAffinityTieEpsilon) {
        best_affinity = entry.affinity;
        best_bucket = entry.bucket;
      }
    }
  }
  SHP_DCHECK(from_affinity >= 0.0)
      << "from-bucket accumulator entry missing in grouped window (from="
      << from << ")";
  if (best_bucket == -1) {
    // Every sibling is as good as empty: lowest sibling ≠ from — the same
    // pick the grouped pull argmax makes (candidates ascend, ties keep the
    // first).
    for (BucketId b : candidates) {
      if (b != from) {
        best_bucket = b;
        break;
      }
    }
    if (best_bucket == -1) return BestTarget{-1, 0.0};
  }

  const double base = (degree - from_affinity) / pow_table_.base();
  const double sum_pow_to = degree - best_affinity;
  return BestTarget{best_bucket, p_ * (base - sum_pow_to)};
}

double GainComputer::MoveGainPush(const AffinitySweep& sweep, VertexId v,
                                  BucketId from, BucketId to,
                                  double degree) const {
  if (from == to) return 0.0;
  SHP_DCHECK(SupportsPush());
  const double base =
      (degree - sweep.AffinityFor(v, from)) / pow_table_.base();
  const double sum_pow_to = degree - sweep.AffinityFor(v, to);
  return p_ * (base - sum_pow_to);
}

}  // namespace shp
