#include "objective/gain.h"

#include <algorithm>

#include "common/logging.h"

namespace shp {

GainComputer::GainComputer(double p, uint32_t max_query_degree,
                           uint32_t future_splits)
    : p_(p),
      pow_table_(1.0 - p / std::max<uint32_t>(1, future_splits),
                 max_query_degree + 2) {
  SHP_CHECK_GT(p, 0.0);
  SHP_CHECK_LE(p, 1.0);
  SHP_CHECK_GE(future_splits, 1u);
}

double GainComputer::BaseTerm(const BipartiteGraph& graph,
                              const QueryNeighborData& ndata, VertexId v,
                              BucketId from) const {
  double base = 0.0;
  for (VertexId q : graph.DataNeighbors(v)) {
    const uint32_t n_from = ndata.CountFor(q, from);
    SHP_DCHECK(n_from >= 1);  // v itself is in `from`
    base += pow_table_.Pow(n_from - 1);
  }
  return base;
}

double GainComputer::MoveGain(const BipartiteGraph& graph,
                              const QueryNeighborData& ndata, VertexId v,
                              BucketId from, BucketId to) const {
  if (from == to) return 0.0;
  double gain = 0.0;
  for (VertexId q : graph.DataNeighbors(v)) {
    const uint32_t n_from = ndata.CountFor(q, from);
    const uint32_t n_to = ndata.CountFor(q, to);
    SHP_DCHECK(n_from >= 1);
    gain += pow_table_.Pow(n_from - 1) - pow_table_.Pow(n_to);
  }
  return p_ * gain;
}

GainComputer::BestTarget GainComputer::FindBestTarget(
    const BipartiteGraph& graph, const QueryNeighborData& ndata, VertexId v,
    BucketId from, BucketId bucket_begin, BucketId bucket_end,
    std::vector<double>* affinity_scratch,
    std::vector<BucketId>* touched_scratch) const {
  SHP_DCHECK(bucket_begin < bucket_end);
  SHP_DCHECK(affinity_scratch->size() >=
             static_cast<size_t>(bucket_end));
  std::vector<double>& affinity = *affinity_scratch;
  std::vector<BucketId>& touched = *touched_scratch;
  touched.clear();

  // Σ_q B^{n_j(q)} = deg(v) − Σ_{q : n_j(q)>0} (1 − B^{n_j(q)}). We
  // accumulate the sparse second term ("affinity") per candidate bucket; an
  // untouched bucket has affinity 0. Larger affinity = better target.
  double base = 0.0;
  double degree = 0.0;
  for (VertexId q : graph.DataNeighbors(v)) {
    degree += 1.0;
    for (const BucketCount& entry : ndata.Entries(q)) {
      if (entry.bucket == from) {
        base += pow_table_.Pow(entry.count - 1);
        continue;
      }
      if (entry.bucket < bucket_begin || entry.bucket >= bucket_end) continue;
      if (affinity[entry.bucket] == 0.0) touched.push_back(entry.bucket);
      affinity[entry.bucket] += 1.0 - pow_table_.Pow(entry.count);
    }
    // If v's current bucket holds no other neighbor of q the loop above
    // added B^0 = 1; when `from` is outside [begin, end) the entry might be
    // missing entirely — but `from` always contains v, so the entry exists.
  }

  // Best touched bucket, deterministic tie-break on lower bucket id.
  double best_affinity = 0.0;  // affinity of an empty bucket
  BucketId best_bucket = -1;
  for (BucketId b : touched) {
    if (affinity[b] > best_affinity + 1e-15) {
      best_affinity = affinity[b];
      best_bucket = b;
    }
  }
  if (best_bucket == -1) {
    // All candidates are as good as an empty bucket; pick the first
    // non-`from` candidate (its gain is the empty-bucket gain).
    best_bucket = bucket_begin == from ? bucket_begin + 1 : bucket_begin;
    if (best_bucket >= bucket_end) {
      for (BucketId b : touched) affinity[b] = 0.0;
      return BestTarget{-1, 0.0};
    }
  }
  // Reset scratch.
  for (BucketId b : touched) affinity[b] = 0.0;

  const double sum_pow_to = degree - best_affinity;
  return BestTarget{best_bucket, p_ * (base - sum_pow_to)};
}

}  // namespace shp
