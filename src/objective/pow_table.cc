#include "objective/pow_table.h"

#include "common/logging.h"

namespace shp {

PowTable::PowTable(double base, uint32_t max_exponent) : base_(base) {
  SHP_CHECK_GE(base, 0.0);
  SHP_CHECK_LE(base, 1.0);
  table_.resize(max_exponent + 1);
  double value = 1.0;
  for (uint32_t n = 0; n <= max_exponent; ++n) {
    table_[n] = value;
    value *= base;
    // Powers of a base < 1 underflow monotonically; clamping at 0 early cuts
    // denormal arithmetic.
    if (value < 1e-300) value = 0.0;
  }
}

}  // namespace shp
