#include "objective/scan_kernels.h"

#include <cstddef>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__)) && \
    !defined(SHP_DISABLE_SIMD)
#define SHP_SIMD_X86 1
#include <immintrin.h>
#else
#define SHP_SIMD_X86 0
#endif

namespace shp {

void ScanAffinityRunScalar(const AffinityEntry* begin,
                           const AffinityEntry* end, double eps,
                           AffinityScanBest* state) {
  double best_affinity = state->affinity;
  BucketId best_bucket = state->bucket;
  for (const AffinityEntry* e = begin; e != end; ++e) {
    if (e->affinity > best_affinity + eps) {
      best_affinity = e->affinity;
      best_bucket = e->bucket;
    }
  }
  state->affinity = best_affinity;
  state->bucket = best_bucket;
}

#if SHP_SIMD_X86

namespace {

// AVX2 block-skip kernel. AffinityEntry is 16 bytes with the affinity double
// at offset 8, so four consecutive entries are two 32-byte lanes:
//   lo = [hdr(e0), aff(e0), hdr(e1), aff(e1)]
//   hi = [hdr(e2), aff(e2), hdr(e3), aff(e3)]
// unpackhi(lo, hi) gathers the odd (affinity) lanes of both — header bits
// never reach a comparison. One vector compare against the broadcast
// threshold rejects a whole block; a block with any candidate lane is
// replayed scalarly in order, which is what makes the sequential
// epsilon-guarded rule exact (see scan_kernels.h).
__attribute__((target("avx2"))) void ScanAffinityRunAvx2(
    const AffinityEntry* begin, const AffinityEntry* end, double eps,
    AffinityScanBest* state) {
  static_assert(sizeof(AffinityEntry) == 16,
                "AVX2 lane extraction assumes 16-byte AffinityEntry");
  static_assert(offsetof(AffinityEntry, affinity) == 8,
                "AVX2 lane extraction assumes affinity at offset 8");
  double best_affinity = state->affinity;
  BucketId best_bucket = state->bucket;
  const AffinityEntry* e = begin;
  for (; end - e >= 4; e += 4) {
    const double* base = reinterpret_cast<const double*>(e);
    const __m256d lo = _mm256_loadu_pd(base);
    const __m256d hi = _mm256_loadu_pd(base + 4);
    const __m256d affs = _mm256_unpackhi_pd(lo, hi);
    const __m256d threshold = _mm256_set1_pd(best_affinity + eps);
    const __m256d gt = _mm256_cmp_pd(affs, threshold, _CMP_GT_OQ);
    if (_mm256_movemask_pd(gt) == 0) continue;  // no lane can update best
    for (int i = 0; i < 4; ++i) {
      if (e[i].affinity > best_affinity + eps) {
        best_affinity = e[i].affinity;
        best_bucket = e[i].bucket;
      }
    }
  }
  for (; e != end; ++e) {  // scalar tail, no over-read
    if (e->affinity > best_affinity + eps) {
      best_affinity = e->affinity;
      best_bucket = e->bucket;
    }
  }
  state->affinity = best_affinity;
  state->bucket = best_bucket;
}

}  // namespace

bool SimdScanCompiled() { return true; }

bool SimdScanAvailable() {
  static const bool available = __builtin_cpu_supports("avx2");
  return available;
}

AffinityScanFn SimdAffinityScan() { return &ScanAffinityRunAvx2; }

AffinityScanFn ActiveAffinityScan() {
  static const AffinityScanFn active =
      SimdScanAvailable() ? &ScanAffinityRunAvx2 : &ScanAffinityRunScalar;
  return active;
}

#else  // !SHP_SIMD_X86

bool SimdScanCompiled() { return false; }
bool SimdScanAvailable() { return false; }
AffinityScanFn SimdAffinityScan() { return nullptr; }
AffinityScanFn ActiveAffinityScan() { return &ScanAffinityRunScalar; }

#endif  // SHP_SIMD_X86

}  // namespace shp
