// Exact evaluators for all hypergraph partitioning objectives in the paper.
//
// fanout        — average |{buckets a query touches}| (paper §1); the number
//                 reported in Tables 2-3 and all figures.
// p-fanout      — the smoothed objective SHP optimizes (paper §3.1).
// hyperedge cut — #queries with fanout > 1 (the classical "cut net" metric).
// SOED          — sum of external degrees = unnormalized fanout + cut
//                 (paper footnote 2).
// clique-net    — weighted edge-cut of the clique expansion (paper Lemma 2:
//                 the p→0 limit of p-fanout optimization).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.h"
#include "objective/neighbor_data.h"

namespace shp {

class ThreadPool;

enum class ObjectiveKind {
  kPFanout,    ///< probabilistic fanout with configurable p (SHP default)
  kFanout,     ///< direct fanout (== p-fanout in the p→1 limit)
  kCliqueNet,  ///< weighted edge-cut of the clique expansion (p→0 limit)
};

/// Human-readable name ("p-fanout", "fanout", "clique-net").
const char* ObjectiveKindName(ObjectiveKind kind);

/// Average query fanout of `assignment` (k inferred; unassigned (-1) entries
/// are rejected). Queries with no neighbors contribute 0.
double AverageFanout(const BipartiteGraph& graph,
                     const std::vector<BucketId>& assignment,
                     ThreadPool* pool = nullptr);

/// Average probabilistic fanout: (1/|Q|) Σ_q Σ_i (1 - (1-p)^{n_i(q)}).
double AveragePFanout(const BipartiteGraph& graph,
                      const std::vector<BucketId>& assignment, double p,
                      ThreadPool* pool = nullptr);

/// Number of queries with fanout > 1.
uint64_t HyperedgeCut(const BipartiteGraph& graph,
                      const std::vector<BucketId>& assignment,
                      ThreadPool* pool = nullptr);

/// Sum of external degrees: Σ_q fanout(q) + |{q : fanout(q) > 1}|.
uint64_t SumExternalDegrees(const BipartiteGraph& graph,
                            const std::vector<BucketId>& assignment,
                            ThreadPool* pool = nullptr);

/// Weighted edge-cut of the clique-net expansion: for each query q with
/// degree d and bucket counts n_i, the cut contribution is
/// (d² - Σ_i n_i²) / 2 — the number of neighbor pairs split across buckets,
/// summed over queries (multi-edges from shared queries add up, matching the
/// w(u,v) weights of Lemma 2).
uint64_t CliqueNetCut(const BipartiteGraph& graph,
                      const std::vector<BucketId>& assignment,
                      ThreadPool* pool = nullptr);

/// Per-query fanout histogram: result[f] = #queries with fanout f
/// (f = 0 .. max). Used by the sharding experiments.
std::vector<uint64_t> FanoutHistogram(const BipartiteGraph& graph,
                                      const std::vector<BucketId>& assignment);

}  // namespace shp
