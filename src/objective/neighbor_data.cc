#include "objective/neighbor_data.h"

#include <algorithm>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace shp {

void QueryNeighborData::Build(const BipartiteGraph& graph,
                              const std::vector<BucketId>& assignment,
                              ThreadPool* pool) {
  SHP_CHECK_EQ(assignment.size(), graph.num_data());
  const VertexId num_queries = graph.num_queries();
  offsets_.assign(num_queries + 1, 0);

  if (pool == nullptr) pool = &GlobalThreadPool();

  // Pass 1: fanout per query (entry counts) -> offsets.
  pool->ParallelFor(num_queries, [&](size_t begin, size_t end, size_t) {
    std::vector<BucketId> scratch;
    for (size_t q = begin; q < end; ++q) {
      auto nbrs = graph.QueryNeighbors(static_cast<VertexId>(q));
      scratch.clear();
      scratch.reserve(nbrs.size());
      for (VertexId v : nbrs) scratch.push_back(assignment[v]);
      std::sort(scratch.begin(), scratch.end());
      uint64_t distinct = 0;
      for (size_t i = 0; i < scratch.size(); ++i) {
        if (i == 0 || scratch[i] != scratch[i - 1]) ++distinct;
      }
      offsets_[q + 1] = distinct;
    }
  });
  for (VertexId q = 0; q < num_queries; ++q) offsets_[q + 1] += offsets_[q];
  entries_.resize(offsets_[num_queries]);

  // Pass 2: fill sorted run-length-encoded entries.
  pool->ParallelFor(num_queries, [&](size_t begin, size_t end, size_t) {
    std::vector<BucketId> scratch;
    for (size_t q = begin; q < end; ++q) {
      auto nbrs = graph.QueryNeighbors(static_cast<VertexId>(q));
      scratch.clear();
      scratch.reserve(nbrs.size());
      for (VertexId v : nbrs) scratch.push_back(assignment[v]);
      std::sort(scratch.begin(), scratch.end());
      uint64_t cursor = offsets_[q];
      for (size_t i = 0; i < scratch.size();) {
        size_t j = i;
        while (j < scratch.size() && scratch[j] == scratch[i]) ++j;
        entries_[cursor++] = {scratch[i], static_cast<uint32_t>(j - i)};
        i = j;
      }
      SHP_DCHECK(cursor == offsets_[q + 1]);
    }
  });
}

uint32_t QueryNeighborData::CountFor(VertexId q, BucketId b) const {
  auto entries = Entries(q);
  auto it = std::lower_bound(
      entries.begin(), entries.end(), b,
      [](const BucketCount& e, BucketId bucket) { return e.bucket < bucket; });
  if (it != entries.end() && it->bucket == b) return it->count;
  return 0;
}

void QueryNeighborData::ApplyMove(const BipartiteGraph& graph, VertexId v,
                                  BucketId from, BucketId to) {
  if (from == to) return;
  for (VertexId q : graph.DataNeighbors(v)) {
    auto old_entries = Entries(q);
    std::vector<BucketCount> updated(old_entries.begin(), old_entries.end());
    for (auto it = updated.begin(); it != updated.end(); ++it) {
      if (it->bucket == from) {
        SHP_CHECK_GT(it->count, 0u)
            << "move source bucket absent from neighbor data";
        if (--it->count == 0) updated.erase(it);
        break;
      }
    }
    auto it = std::lower_bound(updated.begin(), updated.end(), to,
                               [](const BucketCount& e, BucketId bucket) {
                                 return e.bucket < bucket;
                               });
    if (it != updated.end() && it->bucket == to) {
      ++it->count;
    } else {
      updated.insert(it, {to, 1});
    }
    // Splice back. The entry list may shrink or grow by one; rebuilding the
    // flat arrays is O(total entries) — acceptable because ApplyMove is a
    // correctness utility (tests / incremental trickle), not the bulk path.
    const int64_t delta = static_cast<int64_t>(updated.size()) -
                          static_cast<int64_t>(old_entries.size());
    if (delta == 0) {
      std::copy(updated.begin(), updated.end(),
                entries_.begin() + static_cast<int64_t>(offsets_[q]));
      continue;
    }
    std::vector<BucketCount> rebuilt;
    rebuilt.reserve(static_cast<size_t>(
        static_cast<int64_t>(entries_.size()) + std::max<int64_t>(delta, 0)));
    std::vector<uint64_t> new_offsets(offsets_.size());
    uint64_t cursor = 0;
    for (VertexId qq = 0; qq < num_queries(); ++qq) {
      new_offsets[qq] = cursor;
      if (qq == q) {
        rebuilt.insert(rebuilt.end(), updated.begin(), updated.end());
        cursor += updated.size();
      } else {
        auto e = Entries(qq);
        rebuilt.insert(rebuilt.end(), e.begin(), e.end());
        cursor += e.size();
      }
    }
    new_offsets[num_queries()] = cursor;
    offsets_ = std::move(new_offsets);
    entries_ = std::move(rebuilt);
  }
}

}  // namespace shp
