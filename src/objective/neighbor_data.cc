#include "objective/neighbor_data.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace shp {

namespace {

/// Slack slots appended to every entry list at Build/Compact time so that
/// the common "move introduces one new bucket" splice stays in place.
constexpr uint32_t kSlackPad = 2;

/// Per-thread counting-sort scratch for Build: dense per-bucket counts plus
/// the touched-bucket list used to reset them in O(fanout).
struct BuildScratch {
  std::vector<uint32_t> counts;
  std::vector<BucketId> touched;

  void EnsureBuckets(size_t k) {
    if (counts.size() < k) counts.assign(k, 0);
  }
};

/// Applies (−1 at from, +1 at to) to an owned (overflowed) entry vector.
void ApplyDeltaToVec(VertexId q, std::vector<BucketCount>* vec, BucketId from,
                     BucketId to, int64_t* live_delta,
                     std::vector<NeighborDelta>* emitted) {
  auto lb = [&](BucketId b) {
    return std::lower_bound(
        vec->begin(), vec->end(), b,
        [](const BucketCount& e, BucketId bucket) { return e.bucket < bucket; });
  };
  auto it = lb(from);
  SHP_CHECK(it != vec->end() && it->bucket == from && it->count > 0)
      << "move source bucket absent from neighbor data";
  if (emitted != nullptr) emitted->push_back({q, from, it->count, it->count - 1});
  if (--it->count == 0) {
    vec->erase(it);
    --*live_delta;
  }
  it = lb(to);
  if (it != vec->end() && it->bucket == to) {
    if (emitted != nullptr) emitted->push_back({q, to, it->count, it->count + 1});
    ++it->count;
  } else {
    if (emitted != nullptr) emitted->push_back({q, to, 0, 1});
    vec->insert(it, {to, 1});
    ++*live_delta;
  }
}

}  // namespace

void QueryNeighborData::Build(const BipartiteGraph& graph,
                              const std::vector<BucketId>& assignment,
                              ThreadPool* pool) {
  SHP_CHECK_EQ(assignment.size(), graph.num_data());
  const VertexId num_queries = graph.num_queries();
  if (pool == nullptr) pool = &GlobalThreadPool();

  size_t k = 0;
  for (const BucketId b : assignment) {
    SHP_DCHECK(b >= 0);
    k = std::max(k, static_cast<size_t>(b) + 1);
  }

  loc_.assign(num_queries, Loc{});
  garbage_ = 0;

  std::vector<BuildScratch> scratch(std::max<size_t>(1, pool->num_threads()));

  // Pass 1: fanout per query via counting over a dense k-sized per-thread
  // scratch (reset through the touched list, so each query costs O(deg + f)).
  pool->ParallelFor(num_queries, [&](size_t begin, size_t end, size_t worker) {
    BuildScratch& s = scratch[worker];
    s.EnsureBuckets(k);
    for (size_t q = begin; q < end; ++q) {
      s.touched.clear();
      for (VertexId v : graph.QueryNeighbors(static_cast<VertexId>(q))) {
        const BucketId b = assignment[v];
        if (s.counts[static_cast<size_t>(b)]++ == 0) s.touched.push_back(b);
      }
      loc_[q].size = static_cast<uint32_t>(s.touched.size());
      for (const BucketId b : s.touched) s.counts[static_cast<size_t>(b)] = 0;
    }
  });

  // Offsets with per-query slack; live total for TotalEntries().
  uint64_t cursor = 0;
  live_entries_ = 0;
  for (VertexId q = 0; q < num_queries; ++q) {
    Loc& loc = loc_[q];
    loc.begin = cursor;
    loc.cap = loc.size + kSlackPad;
    cursor += loc.cap;
    live_entries_ += loc.size;
  }
  entries_.assign(cursor, BucketCount{});

  // Pass 2: recount and emit sorted run-length entries. Only the (small)
  // touched list is sorted — O(f log f) per query instead of O(deg log deg).
  pool->ParallelFor(num_queries, [&](size_t begin, size_t end, size_t worker) {
    BuildScratch& s = scratch[worker];
    s.EnsureBuckets(k);
    for (size_t q = begin; q < end; ++q) {
      s.touched.clear();
      for (VertexId v : graph.QueryNeighbors(static_cast<VertexId>(q))) {
        const BucketId b = assignment[v];
        if (s.counts[static_cast<size_t>(b)]++ == 0) s.touched.push_back(b);
      }
      std::sort(s.touched.begin(), s.touched.end());
      BucketCount* out = entries_.data() + loc_[q].begin;
      for (const BucketId b : s.touched) {
        *out++ = {b, s.counts[static_cast<size_t>(b)]};
        s.counts[static_cast<size_t>(b)] = 0;
      }
      SHP_DCHECK(out == entries_.data() + loc_[q].begin + loc_[q].size);
    }
  });
}

uint32_t QueryNeighborData::CountFor(VertexId q, BucketId b) const {
  auto entries = Entries(q);
  auto it = std::lower_bound(
      entries.begin(), entries.end(), b,
      [](const BucketCount& e, BucketId bucket) { return e.bucket < bucket; });
  if (it != entries.end() && it->bucket == b) return it->count;
  return 0;
}

QueryNeighborData::DeltaResult QueryNeighborData::ApplyDeltaInPlace(
    VertexId q, BucketId from, BucketId to, int64_t* live_delta,
    std::vector<NeighborDelta>* emitted) {
  Loc& loc = loc_[q];
  BucketCount* base = entries_.data() + loc.begin;
  uint32_t n = loc.size;
  auto lb = [&](BucketId b) {
    return std::lower_bound(
        base, base + n, b,
        [](const BucketCount& e, BucketId bucket) { return e.bucket < bucket; });
  };

  BucketCount* it = lb(from);
  SHP_CHECK(it != base + n && it->bucket == from && it->count > 0)
      << "move source bucket absent from neighbor data";
  if (emitted != nullptr) emitted->push_back({q, from, it->count, it->count - 1});
  if (--it->count == 0) {
    std::copy(it + 1, base + n, it);
    loc.size = --n;
    --*live_delta;
  }

  it = lb(to);
  if (it != base + n && it->bucket == to) {
    if (emitted != nullptr) emitted->push_back({q, to, it->count, it->count + 1});
    ++it->count;
    return DeltaResult::kDone;
  }
  if (n == loc.cap) return DeltaResult::kNeedsGrowth;
  if (emitted != nullptr) emitted->push_back({q, to, 0, 1});
  std::copy_backward(it, base + n, base + n + 1);
  *it = {to, 1};
  loc.size = n + 1;
  ++*live_delta;
  return DeltaResult::kDone;
}

void QueryNeighborData::RelocateAndInsert(VertexId q, BucketId to) {
  Loc& loc = loc_[q];
  const uint32_t n = loc.size;
  // Geometric-ish growth bounded below by the standard pad so a repeatedly
  // growing list amortizes its relocations.
  const uint32_t new_cap = n + 1 + std::max(kSlackPad, n / 2);
  const uint64_t new_begin = entries_.size();
  entries_.resize(new_begin + new_cap);

  const BucketCount* old = entries_.data() + loc.begin;
  BucketCount* fresh = entries_.data() + new_begin;
  const BucketCount* insert_at =
      std::lower_bound(old, old + n, to,
                       [](const BucketCount& e, BucketId bucket) {
                         return e.bucket < bucket;
                       });
  BucketCount* out = std::copy(old, insert_at, fresh);
  *out++ = {to, 1};
  std::copy(insert_at, old + n, out);

  garbage_ += loc.cap;
  loc.begin = new_begin;
  loc.cap = new_cap;
  loc.size = n + 1;
  ++live_entries_;
}

void QueryNeighborData::ApplyMove(const BipartiteGraph& graph, VertexId v,
                                  BucketId from, BucketId to) {
  if (from == to) return;
  int64_t live_delta = 0;
  for (VertexId q : graph.DataNeighbors(v)) {
    if (ApplyDeltaInPlace(q, from, to, &live_delta) ==
        DeltaResult::kNeedsGrowth) {
      RelocateAndInsert(q, to);  // accounts its own +1
    }
  }
  live_entries_ = static_cast<uint64_t>(
      static_cast<int64_t>(live_entries_) + live_delta);
  MaybeCompact();
}

void QueryNeighborData::ApplyMoves(const BipartiteGraph& graph,
                                   std::span<const VertexMove> moves,
                                   ThreadPool* pool,
                                   std::vector<VertexId>* touched_queries,
                                   std::vector<NeighborDelta>* deltas) {
  if (moves.empty()) return;
  if (pool == nullptr) pool = &GlobalThreadPool();
  const VertexId nq = num_queries();
  if (nq == 0) return;

  const size_t workers = std::max<size_t>(1, pool->num_threads());
  const size_t shards = std::min<size_t>(workers, nq);
  // Over-decompose the query space so the apply pass can be balanced by the
  // *measured* delta volume instead of uniform id ranges: one hub query
  // adjacent to many moved pins otherwise serializes its whole shard.
  const size_t minis = std::min<size_t>(static_cast<size_t>(nq), shards * 8);
  const auto mini_of = [&](VertexId q) {
    return static_cast<size_t>(static_cast<uint64_t>(q) * minis / nq);
  };

  // Scatter: expand each move into per-adjacent-query deltas, binned by the
  // mini-shard that owns the query. buffers[w * minis + m] keeps worker-
  // local append-only vectors, so no synchronization is needed. All scratch
  // lives in the reusable member workspace (cleared, not reallocated, per
  // call).
  std::vector<std::vector<DeltaRec>>& buffers = scratch_.buffers;
  buffers.resize(std::max(buffers.size(), workers * minis));
  for (auto& b : buffers) b.clear();
  pool->ParallelFor(moves.size(), [&](size_t begin, size_t end, size_t w) {
    for (size_t i = begin; i < end; ++i) {
      const VertexMove& m = moves[i];
      SHP_DCHECK(m.from != m.to);
      for (VertexId q : graph.DataNeighbors(m.v)) {
        buffers[w * minis + mini_of(q)].push_back({q, m.from, m.to});
      }
    }
  });

  // Group contiguous mini-shards into per-worker apply ranges balanced by
  // their scattered delta counts (= Σ over dirty queries of their adjacent
  // moved pins — the Σ-deg-of-dirty-queries measure). Boundary g is the
  // first mini-shard whose weight prefix reaches g/shards of the total.
  std::vector<uint64_t>& mini_weight = scratch_.mini_weight;
  std::vector<size_t>& group_begin = scratch_.group_begin;
  mini_weight.assign(minis, 0);
  uint64_t total_weight = 0;
  for (size_t w = 0; w < workers; ++w) {
    for (size_t m = 0; m < minis; ++m) {
      mini_weight[m] += buffers[w * minis + m].size();
    }
  }
  for (size_t m = 0; m < minis; ++m) total_weight += mini_weight[m];
  group_begin.assign(shards + 1, minis);
  group_begin[0] = 0;
  {
    size_t g = 1;
    uint64_t prefix = 0;
    for (size_t m = 0; m < minis && g < shards; ++m) {
      while (g < shards && prefix * shards >= total_weight * g) {
        group_begin[g++] = m;
      }
      prefix += mini_weight[m];
    }
  }

  // Apply: each shard splices its own queries' entry lists in place. Lists
  // that outgrow their slack are moved to a shard-local overflow store (the
  // shared arena cannot be grown concurrently) and merged back below.
  std::vector<ShardOverflow>& overflow = scratch_.overflow;
  std::vector<int64_t>& live_delta = scratch_.live_delta;
  std::vector<std::vector<VertexId>>& touched = scratch_.touched;
  std::vector<std::vector<NeighborDelta>>& emitted = scratch_.emitted;
  overflow.resize(std::max(overflow.size(), shards));
  live_delta.assign(std::max(live_delta.size(), shards), 0);
  touched.resize(std::max(touched.size(), shards));
  emitted.resize(std::max(emitted.size(), shards));
  for (size_t s = 0; s < shards; ++s) {
    overflow[s].lists.clear();
    overflow[s].index.clear();
    touched[s].clear();
    emitted[s].clear();
  }
  pool->ParallelFor(shards, [&](size_t sbegin, size_t send, size_t) {
    for (size_t s = sbegin; s < send; ++s) {
      ShardOverflow& ovf = overflow[s];
      int64_t delta = 0;
      std::vector<VertexId>& touched_local = touched[s];
      std::vector<NeighborDelta>* emit_local =
          deltas != nullptr ? &emitted[s] : nullptr;
      // Mini-shards drain in ascending order, and within one mini-shard the
      // per-worker buffers drain in worker order — a query's deltas (its
      // mini-shard is unique) still apply in executed-move order for any
      // thread count.
      for (size_t m = group_begin[s]; m < group_begin[s + 1]; ++m) {
        for (size_t w = 0; w < workers; ++w) {
          for (const DeltaRec& rec : buffers[w * minis + m]) {
            touched_local.push_back(rec.q);
            if (!ovf.index.empty()) {
              const auto it = ovf.index.find(rec.q);
              if (it != ovf.index.end()) {
                ApplyDeltaToVec(rec.q, &ovf.lists[it->second].second, rec.from,
                                rec.to, &delta, emit_local);
                continue;
              }
            }
            if (ApplyDeltaInPlace(rec.q, rec.from, rec.to, &delta, emit_local) ==
                DeltaResult::kNeedsGrowth) {
              // Move to overflow with the pending insert applied.
              const auto span = Entries(rec.q);
              std::vector<BucketCount> vec;
              vec.reserve(span.size() + 2);
              const auto insert_at = std::lower_bound(
                  span.begin(), span.end(), rec.to,
                  [](const BucketCount& e, BucketId bucket) {
                    return e.bucket < bucket;
                  });
              vec.insert(vec.end(), span.begin(), insert_at);
              vec.push_back({rec.to, 1});
              vec.insert(vec.end(), insert_at, span.end());
              if (emit_local != nullptr) emit_local->push_back({rec.q, rec.to, 0, 1});
              ++delta;
              ovf.index.emplace(rec.q, ovf.lists.size());
              ovf.lists.emplace_back(rec.q, std::move(vec));
            }
          }
        }
      }
      std::sort(touched_local.begin(), touched_local.end());
      touched_local.erase(
          std::unique(touched_local.begin(), touched_local.end()),
          touched_local.end());
      live_delta[s] = delta;
    }
  });

  // Merge: append overflowed lists to the arena tail (serial — the arena may
  // reallocate) and fold the per-shard accounting.
  int64_t total_delta = 0;
  for (size_t s = 0; s < shards; ++s) {
    total_delta += live_delta[s];
    for (auto& [q, vec] : overflow[s].lists) {
      const uint32_t n = static_cast<uint32_t>(vec.size());
      const uint32_t new_cap = n + std::max(kSlackPad, n / 2);
      const uint64_t new_begin = entries_.size();
      entries_.resize(new_begin + new_cap);
      std::copy(vec.begin(), vec.end(), entries_.begin() + new_begin);
      Loc& loc = loc_[q];
      garbage_ += loc.cap;
      loc.begin = new_begin;
      loc.cap = new_cap;
      loc.size = n;
    }
  }
  live_entries_ = static_cast<uint64_t>(
      static_cast<int64_t>(live_entries_) + total_delta);

  if (touched_queries != nullptr) {
    for (size_t s = 0; s < shards; ++s) {
      touched_queries->insert(touched_queries->end(), touched[s].begin(),
                              touched[s].end());
    }
  }
  if (deltas != nullptr) {
    for (size_t s = 0; s < shards; ++s) {
      deltas->insert(deltas->end(), emitted[s].begin(), emitted[s].end());
    }
  }
  MaybeCompact();
}

void QueryNeighborData::Compact() {
  const VertexId nq = num_queries();
  std::vector<BucketCount> fresh;
  fresh.reserve(live_entries_ +
                static_cast<uint64_t>(kSlackPad) * nq);
  for (VertexId q = 0; q < nq; ++q) {
    const auto span = Entries(q);
    Loc& loc = loc_[q];
    loc.begin = fresh.size();
    fresh.insert(fresh.end(), span.begin(), span.end());
    loc.cap = loc.size + kSlackPad;
    fresh.resize(fresh.size() + kSlackPad);
  }
  entries_ = std::move(fresh);
  garbage_ = 0;
}

void QueryNeighborData::MaybeCompact() {
  // Relocation garbage (not the standing slack) is what compaction reclaims;
  // let it reach half the live volume before paying the O(arena) repack.
  if (garbage_ > live_entries_ / 2 + 1024) Compact();
}

bool QueryNeighborData::ContentEquals(const QueryNeighborData& other) const {
  if (num_queries() != other.num_queries()) return false;
  for (VertexId q = 0; q < num_queries(); ++q) {
    const auto a = Entries(q);
    const auto b = other.Entries(q);
    if (a.size() != b.size() || !std::equal(a.begin(), a.end(), b.begin())) {
      return false;
    }
  }
  return true;
}

}  // namespace shp
