#include "objective/affinity_sweep.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace shp {

namespace {

/// Slack slots appended to every accumulator at Build/Compact time so the
/// common "move occupies one new bucket" insert stays in place.
constexpr uint32_t kSlackPad = 2;

/// Contiguous vertex range owned by shard s of `shards` over n vertices.
inline VertexId ShardBegin(VertexId n, size_t shards, size_t s) {
  return static_cast<VertexId>(static_cast<uint64_t>(n) * s / shards);
}

/// Fills *prefix (n + 1 entries) with the data-degree prefix sum; returns
/// the total. One O(n) pass, shared by every split count of the call.
uint64_t FillDegreePrefix(const BipartiteGraph& graph, VertexId n,
                          std::vector<uint64_t>* prefix) {
  prefix->resize(static_cast<size_t>(n) + 1);
  uint64_t sum = 0;
  (*prefix)[0] = 0;
  for (VertexId v = 0; v < n; ++v) {
    sum += graph.DataDegree(v);
    (*prefix)[static_cast<size_t>(v) + 1] = sum;
  }
  return sum;
}

/// Σ-degree-weighted shard boundary: smallest v whose degree prefix reaches
/// total·s/shards (uniform split when the graph has no edges). The per-shard
/// sweep/patch cost is proportional to the Σ-degree of its vertex range, not
/// the vertex count — uniform ranges let a few hubs straggle the phase.
/// Compared as prefix·shards ≥ total·s in uint64 (no overflow at realistic
/// |E| × core counts, ≪ 2^64).
VertexId DegShardBegin(const std::vector<uint64_t>& prefix, VertexId n,
                       size_t shards, size_t s) {
  if (s >= shards) return n;
  const uint64_t total = prefix[static_cast<size_t>(n)];
  if (total == 0) return ShardBegin(n, shards, s);
  const uint64_t target = total * s;
  VertexId lo = 0;
  VertexId hi = n;
  while (lo < hi) {
    const VertexId mid = lo + (hi - lo) / 2;
    if (prefix[static_cast<size_t>(mid)] * shards >= target) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

/// Folds (support += sup, affinity += add, drop at support 0) into an owned
/// (overflowed) accumulator vector.
void ApplyToVec(std::vector<AffinityEntry>* vec, BucketId b, double add,
                int32_t sup, int64_t* live_delta) {
  auto it = std::lower_bound(
      vec->begin(), vec->end(), b,
      [](const AffinityEntry& e, BucketId bucket) { return e.bucket < bucket; });
  if (it != vec->end() && it->bucket == b) {
    it->affinity += add;
    SHP_DCHECK(sup >= 0 || it->support > 0);
    it->support = static_cast<uint32_t>(static_cast<int64_t>(it->support) + sup);
    if (it->support == 0) {
      vec->erase(it);
      --*live_delta;
    }
    return;
  }
  SHP_DCHECK(sup == 1) << "accumulator entry absent for a non-insert delta";
  vec->insert(it, {b, 1, add});
  ++*live_delta;
}

}  // namespace

void AffinitySweep::Build(const BipartiteGraph& graph,
                          const QueryNeighborData& ndata, const PowTable& pow,
                          ThreadPool* pool) {
  const VertexId n = graph.num_data();
  const VertexId nq = graph.num_queries();
  if (pool == nullptr) pool = &GlobalThreadPool();
  loc_.assign(n, Loc{});
  garbage_ = 0;
  live_entries_ = 0;
  if (n == 0) {
    entries_.clear();
    return;
  }

  const size_t workers = std::max<size_t>(1, pool->num_threads());
  const size_t shards = std::min<size_t>(workers, n);
  // Shard boundaries weighted by Σ-degree, not vertex count: a shard's merge
  // cost is the Σ-degree of its range, and power-law hubs make uniform
  // ranges straggle.
  FillDegreePrefix(graph, n, &scratch_.deg_prefix);

  // Query-major streaming pass, vertex-sharded: every shard streams the
  // whole arena sequentially (it is small — Σ fanout entries — and shared
  // read-only) but accumulates only for the vertices it owns, so no
  // synchronization is needed and each vertex's contributions arrive in
  // ascending query order (deterministic for any shard count).
  std::vector<std::vector<AffinityEntry>> lists(n);
  pool->ParallelFor(shards, [&](size_t sbegin, size_t send, size_t) {
    std::vector<std::pair<BucketId, double>> contrib;
    for (size_t s = sbegin; s < send; ++s) {
      const VertexId vbegin = DegShardBegin(scratch_.deg_prefix, n, shards, s);
      const VertexId vend =
          DegShardBegin(scratch_.deg_prefix, n, shards, s + 1);
      if (vbegin == vend) continue;
      for (VertexId q = 0; q < nq; ++q) {
        const auto nbrs = graph.QueryNeighbors(q);
        const auto lo = std::lower_bound(nbrs.begin(), nbrs.end(), vbegin);
        if (lo == nbrs.end() || *lo >= vend) continue;
        const auto hi = std::lower_bound(lo, nbrs.end(), vend);
        // One contribution per occupied bucket, shared by every owned
        // neighbor of q (this is the work the pull scan recomputes per
        // vertex).
        contrib.clear();
        for (const BucketCount& e : ndata.Entries(q)) {
          contrib.emplace_back(e.bucket, 1.0 - pow.Pow(e.count));
        }
        for (auto it = lo; it != hi; ++it) {
          std::vector<AffinityEntry>& list = lists[*it];
          // Both sides are bucket-ascending: single forward merge.
          size_t i = 0;
          for (const auto& [bucket, c] : contrib) {
            while (i < list.size() && list[i].bucket < bucket) ++i;
            if (i < list.size() && list[i].bucket == bucket) {
              list[i].support += 1;
              list[i].affinity += c;
            } else {
              list.insert(list.begin() + i, {bucket, 1, c});
            }
            ++i;
          }
        }
      }
    }
  });

  LayoutFromLists(lists, pool);
}

void AffinitySweep::LayoutFromLists(
    const std::vector<std::vector<AffinityEntry>>& lists, ThreadPool* pool) {
  // Layout with per-vertex slack, then parallel copy into the arena.
  const VertexId n = static_cast<VertexId>(lists.size());
  uint64_t cursor = 0;
  for (VertexId v = 0; v < n; ++v) {
    Loc& loc = loc_[v];
    loc.begin = cursor;
    loc.size = static_cast<uint32_t>(lists[v].size());
    loc.cap = loc.size + kSlackPad;
    cursor += loc.cap;
    live_entries_ += loc.size;
  }
  entries_.assign(cursor, AffinityEntry{});
  pool->ParallelFor(n, [&](size_t begin, size_t end, size_t) {
    for (size_t v = begin; v < end; ++v) {
      std::copy(lists[v].begin(), lists[v].end(),
                entries_.begin() + static_cast<ptrdiff_t>(loc_[v].begin));
    }
  });
}

std::vector<uint64_t> AffinitySweep::BuildSharded(
    const BipartiteGraph& graph, const EntriesFn& entries_of,
    const PowTable& pow, const std::vector<int32_t>& owner_of, int num_shards,
    ThreadPool* pool) {
  const VertexId n = graph.num_data();
  const VertexId nq = graph.num_queries();
  if (pool == nullptr) pool = &GlobalThreadPool();
  SHP_CHECK_GT(num_shards, 0);
  SHP_CHECK_EQ(owner_of.size(), static_cast<size_t>(n));
  loc_.assign(n, Loc{});
  garbage_ = 0;
  live_entries_ = 0;
  std::vector<uint64_t> work(static_cast<size_t>(num_shards), 0);
  if (n == 0) {
    entries_.clear();
    return work;
  }

  // One-pass bootstrap. Pass 1 bins the adjacency by owner shard: host
  // workers take contiguous ascending query ranges and append, per
  // (host range, shard) bin, a (q, neighbor count) head plus the owned
  // neighbors themselves. Every (query, pin) is read exactly once — the old
  // layout streamed the full adjacency once PER shard (W × |E| reads per
  // re-bootstrap).
  const size_t host = std::max<size_t>(1, pool->num_threads());
  const size_t ranges = std::min<size_t>(host, std::max<VertexId>(nq, 1));
  struct OwnerBin {
    std::vector<std::pair<VertexId, uint32_t>> heads;  ///< (q, #owned nbrs)
    std::vector<VertexId> verts;  ///< owned neighbors, grouped per head
  };
  std::vector<OwnerBin> bins(ranges * static_cast<size_t>(num_shards));
  std::vector<uint64_t> reads(ranges, 0);
  pool->ParallelFor(ranges, [&](size_t hbegin, size_t hend, size_t) {
    for (size_t h = hbegin; h < hend; ++h) {
      const VertexId qbegin =
          ShardBegin(nq, ranges, h);  // query ranges ascend with h
      const VertexId qend = ShardBegin(nq, ranges, h + 1);
      OwnerBin* row = bins.data() + h * static_cast<size_t>(num_shards);
      uint64_t scanned = 0;
      for (VertexId q = qbegin; q < qend; ++q) {
        for (VertexId v : graph.QueryNeighbors(q)) {
          ++scanned;
          SHP_DCHECK(owner_of[v] >= 0 && owner_of[v] < num_shards);
          OwnerBin& bin = row[static_cast<size_t>(owner_of[v])];
          if (bin.heads.empty() || bin.heads.back().first != q) {
            bin.heads.emplace_back(q, 0);
          }
          ++bin.heads.back().second;
          bin.verts.push_back(v);
        }
      }
      reads[h] = scanned;
    }
  });
  last_build_adjacency_reads_ = 0;
  for (const uint64_t r : reads) last_build_adjacency_reads_ += r;

  // Pass 2: each shard walks its bins in host-range order — query ids ascend
  // globally across ranges, so every vertex's contributions still arrive in
  // ascending query order and the accumulator floats are identical to the
  // old layout for any shard count. Single-writer per vertex (disjoint
  // ownership). Only the merges are charged as work, matching the old
  // accounting (the binning pass, like the old redundant per-shard rescan,
  // is a shared-memory-simulation artifact a real worker never pays).
  std::vector<std::vector<AffinityEntry>> lists(n);
  pool->ParallelForEach(static_cast<size_t>(num_shards), [&](size_t s) {
    std::vector<std::pair<BucketId, double>> contrib;
    uint64_t merged = 0;
    for (size_t h = 0; h < ranges; ++h) {
      const OwnerBin& bin = bins[h * static_cast<size_t>(num_shards) + s];
      size_t vi = 0;
      for (const auto& [q, count] : bin.heads) {
        // One contribution per occupied bucket, computed once per query and
        // shared by every owned neighbor.
        contrib.clear();
        for (const BucketCount& e : entries_of(q)) {
          contrib.emplace_back(e.bucket, 1.0 - pow.Pow(e.count));
        }
        for (uint32_t c = 0; c < count; ++c, ++vi) {
          std::vector<AffinityEntry>& list = lists[bin.verts[vi]];
          // Both sides are bucket-ascending: single forward merge.
          size_t i = 0;
          for (const auto& [bucket, add] : contrib) {
            while (i < list.size() && list[i].bucket < bucket) ++i;
            if (i < list.size() && list[i].bucket == bucket) {
              list[i].support += 1;
              list[i].affinity += add;
            } else {
              list.insert(list.begin() + i, {bucket, 1, add});
            }
            ++i;
          }
          merged += contrib.size();
        }
      }
      SHP_DCHECK(vi == bin.verts.size());
    }
    work[s] = merged;
  });

  LayoutFromLists(lists, pool);
  return work;
}

double AffinitySweep::AffinityFor(VertexId v, BucketId b) const {
  const auto entries = Entries(v);
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), b,
      [](const AffinityEntry& e, BucketId bucket) { return e.bucket < bucket; });
  if (it != entries.end() && it->bucket == b) return it->affinity;
  return 0.0;
}

void AffinitySweep::ApplyDeltas(const BipartiteGraph& graph,
                                std::span<const NeighborDelta> deltas,
                                const PowTable& pow, ThreadPool* pool) {
  if (deltas.empty()) return;
  if (pool == nullptr) pool = &GlobalThreadPool();
  const VertexId n = num_vertices();
  if (n == 0) return;

  std::span<const NeighborDelta> recs = deltas;
  if (deterministic_) {
    // Canonical application order: ascending (q, bucket), with each
    // (q, bucket) chain kept in emission order (stable sort) — the per-
    // vertex float accumulation order then no longer depends on how
    // ApplyMoves sharded its emission across threads.
    scratch_.sorted.assign(deltas.begin(), deltas.end());
    std::stable_sort(scratch_.sorted.begin(), scratch_.sorted.end(),
                     [](const NeighborDelta& a, const NeighborDelta& b) {
                       if (a.q != b.q) return a.q < b.q;
                       return a.bucket < b.bucket;
                     });
    recs = scratch_.sorted;
  }

  const size_t workers = std::max<size_t>(1, pool->num_threads());
  const size_t shards = std::min<size_t>(workers, n);
  // Σ-degree-weighted ranges: the patch cost of a range is driven by how
  // many record-adjacent pins land in it, for which the degree mass is the
  // stable proxy (uniform ranges straggle on hub-heavy shards).
  FillDegreePrefix(graph, n, &scratch_.deg_prefix);
  std::vector<ShardOverflow>& overflow = scratch_.overflow;
  std::vector<int64_t>& live_delta = scratch_.live_delta;
  overflow.resize(std::max(overflow.size(), shards));
  live_delta.assign(std::max(live_delta.size(), shards), 0);
  for (size_t s = 0; s < shards; ++s) {
    overflow[s].lists.clear();
    overflow[s].index.clear();
  }

  // Every shard scans the (short, steady-state) record list and patches the
  // accumulators of its own vertices; growth goes to a shard-local overflow
  // store merged serially below.
  pool->ParallelFor(shards, [&](size_t sbegin, size_t send, size_t) {
    for (size_t s = sbegin; s < send; ++s) {
      const VertexId vbegin = DegShardBegin(scratch_.deg_prefix, n, shards, s);
      const VertexId vend =
          DegShardBegin(scratch_.deg_prefix, n, shards, s + 1);
      if (vbegin == vend) continue;
      ShardOverflow& ovf = overflow[s];
      int64_t delta = 0;
      for (const NeighborDelta& rec : recs) {
        const double add = pow.Pow(rec.old_count) - pow.Pow(rec.new_count);
        const int32_t sup = static_cast<int32_t>(rec.old_count == 0) -
                            static_cast<int32_t>(rec.new_count == 0);
        const auto nbrs = graph.QueryNeighbors(rec.q);
        const auto lo = std::lower_bound(nbrs.begin(), nbrs.end(), vbegin);
        if (lo == nbrs.end() || *lo >= vend) continue;
        const auto hi = std::lower_bound(lo, nbrs.end(), vend);
        for (auto it = lo; it != hi; ++it) {
          PatchEntry(*it, rec.bucket, add, sup, &ovf, &delta);
        }
      }
      live_delta[s] = delta;
    }
  });

  MergeOverflow(shards);
}

void AffinitySweep::PatchEntry(VertexId v, BucketId bucket, double add,
                               int32_t sup, ShardOverflow* ovf,
                               int64_t* live_delta) {
  if (!ovf->index.empty()) {
    const auto oit = ovf->index.find(v);
    if (oit != ovf->index.end()) {
      ApplyToVec(&ovf->lists[oit->second].second, bucket, add, sup,
                 live_delta);
      return;
    }
  }
  Loc& loc = loc_[v];
  AffinityEntry* base = entries_.data() + loc.begin;
  AffinityEntry* pos = std::lower_bound(
      base, base + loc.size, bucket,
      [](const AffinityEntry& e, BucketId b) { return e.bucket < b; });
  if (pos != base + loc.size && pos->bucket == bucket) {
    pos->affinity += add;
    SHP_DCHECK(sup >= 0 || pos->support > 0);
    pos->support =
        static_cast<uint32_t>(static_cast<int64_t>(pos->support) + sup);
    if (pos->support == 0) {
      // Dropping the entry resets the float to an exact 0 — no cancellation
      // drift survives an emptied bucket.
      std::copy(pos + 1, base + loc.size, pos);
      --loc.size;
      --*live_delta;
    }
    return;
  }
  SHP_DCHECK(sup == 1) << "accumulator entry absent for a non-insert delta";
  if (loc.size == loc.cap) {
    // Outgrew the slack: move to overflow with the insert applied.
    std::vector<AffinityEntry> vec;
    vec.reserve(loc.size + 2);
    vec.insert(vec.end(), base, pos);
    vec.push_back({bucket, 1, add});
    vec.insert(vec.end(), pos, base + loc.size);
    ++*live_delta;
    ovf->index.emplace(v, ovf->lists.size());
    ovf->lists.emplace_back(v, std::move(vec));
    return;
  }
  std::copy_backward(pos, base + loc.size, base + loc.size + 1);
  *pos = {bucket, 1, add};
  ++loc.size;
  ++*live_delta;
}

void AffinitySweep::MergeOverflow(size_t count) {
  // Relocate overflowed accumulators to the arena tail (serial — the arena
  // may reallocate) and fold the per-shard accounting.
  int64_t total_delta = 0;
  for (size_t s = 0; s < count; ++s) {
    total_delta += scratch_.live_delta[s];
    for (auto& [v, vec] : scratch_.overflow[s].lists) {
      const uint32_t sz = static_cast<uint32_t>(vec.size());
      const uint32_t new_cap = sz + std::max(kSlackPad, sz / 2);
      const uint64_t new_begin = entries_.size();
      entries_.resize(new_begin + new_cap);
      std::copy(vec.begin(), vec.end(),
                entries_.begin() + static_cast<ptrdiff_t>(new_begin));
      Loc& loc = loc_[v];
      garbage_ += loc.cap;
      loc.begin = new_begin;
      loc.cap = new_cap;
      loc.size = sz;
    }
  }
  live_entries_ = static_cast<uint64_t>(
      static_cast<int64_t>(live_entries_) + total_delta);
  MaybeCompact();
}

std::vector<uint64_t> AffinitySweep::ApplyDeltasSharded(
    const BipartiteGraph& graph,
    const std::vector<std::span<const NeighborDelta>>& records,
    const PowTable& pow, const std::vector<int32_t>& owner_of,
    ThreadPool* pool) {
  std::vector<uint64_t> work(records.size(), 0);
  const VertexId n = num_vertices();
  if (n == 0 || records.empty()) return work;
  if (pool == nullptr) pool = &GlobalThreadPool();
  SHP_CHECK_EQ(owner_of.size(), static_cast<size_t>(n));

  // Host sub-sharding weights: Σ deg(q) over each worker's records is that
  // inbox's patch cost, so a hub-query-heavy inbox gets proportionally more
  // vertex-range subtasks instead of serializing the phase on one thread.
  // Per-record scan cost is charged once per worker (the sub-task rescans
  // are host parallelization, not simulated work).
  std::vector<uint64_t> weight(records.size(), 0);
  uint64_t total_weight = 0;
  for (size_t s = 0; s < records.size(); ++s) {
    for (const NeighborDelta& rec : records[s]) {
      weight[s] += graph.QueryDegree(rec.q);
    }
    total_weight += weight[s];
    work[s] = records[s].size();
  }
  if (total_weight == 0) return work;

  struct Task {
    int32_t shard;
    VertexId vbegin;
    VertexId vend;
  };
  const uint64_t host = std::max<uint64_t>(1, pool->num_threads());
  // Sub-task vertex ranges are Σ-degree-weighted like the threaded patch
  // shards: one prefix pass serves every split count.
  FillDegreePrefix(graph, n, &scratch_.deg_prefix);
  std::vector<Task> tasks;
  for (size_t s = 0; s < records.size(); ++s) {
    if (weight[s] == 0) continue;
    const uint64_t splits = std::min<uint64_t>(
        host, 1 + weight[s] * host / total_weight);
    for (uint64_t t = 0; t < splits; ++t) {
      tasks.push_back({static_cast<int32_t>(s),
                       DegShardBegin(scratch_.deg_prefix, n,
                                     static_cast<size_t>(splits),
                                     static_cast<size_t>(t)),
                       DegShardBegin(scratch_.deg_prefix, n,
                                     static_cast<size_t>(splits),
                                     static_cast<size_t>(t) + 1)});
    }
  }

  std::vector<ShardOverflow>& overflow = scratch_.overflow;
  std::vector<int64_t>& live_delta = scratch_.live_delta;
  overflow.resize(std::max(overflow.size(), tasks.size()));
  live_delta.assign(std::max(live_delta.size(), tasks.size()), 0);
  for (size_t t = 0; t < tasks.size(); ++t) {
    overflow[t].lists.clear();
    overflow[t].index.clear();
  }
  std::vector<uint64_t> patched(tasks.size(), 0);

  // (worker shard, vertex range) tasks: a vertex belongs to one shard and
  // one range, so the arena stays single-writer per accumulator.
  pool->ParallelForEach(tasks.size(), [&](size_t t) {
    const Task& task = tasks[t];
    if (task.vbegin == task.vend) return;
    ShardOverflow& ovf = overflow[t];
    int64_t delta = 0;
    uint64_t ops = 0;
    for (const NeighborDelta& rec : records[static_cast<size_t>(task.shard)]) {
      const double add = pow.Pow(rec.old_count) - pow.Pow(rec.new_count);
      const int32_t sup = static_cast<int32_t>(rec.old_count == 0) -
                          static_cast<int32_t>(rec.new_count == 0);
      const auto nbrs = graph.QueryNeighbors(rec.q);
      const auto lo = std::lower_bound(nbrs.begin(), nbrs.end(), task.vbegin);
      if (lo == nbrs.end() || *lo >= task.vend) continue;
      const auto hi = std::lower_bound(lo, nbrs.end(), task.vend);
      for (auto it = lo; it != hi; ++it) {
        if (owner_of[*it] != task.shard) continue;
        PatchEntry(*it, rec.bucket, add, sup, &ovf, &delta);
        ++ops;
      }
    }
    live_delta[t] = delta;
    patched[t] = ops;
  });

  MergeOverflow(tasks.size());
  for (size_t t = 0; t < tasks.size(); ++t) {
    work[static_cast<size_t>(tasks[t].shard)] += patched[t];
  }
  return work;
}

void AffinitySweep::Compact() {
  const VertexId n = num_vertices();
  std::vector<AffinityEntry> fresh;
  fresh.reserve(live_entries_ + static_cast<uint64_t>(kSlackPad) * n);
  for (VertexId v = 0; v < n; ++v) {
    const auto span = Entries(v);
    Loc& loc = loc_[v];
    loc.begin = fresh.size();
    fresh.insert(fresh.end(), span.begin(), span.end());
    loc.cap = loc.size + kSlackPad;
    fresh.resize(fresh.size() + kSlackPad);
  }
  entries_ = std::move(fresh);
  garbage_ = 0;
}

void AffinitySweep::MaybeCompact() {
  if (garbage_ > live_entries_ / 2 + 1024) Compact();
}

bool AffinitySweep::ApproxEquals(const AffinitySweep& other, double atol,
                                 double rtol) const {
  if (num_vertices() != other.num_vertices()) return false;
  for (VertexId v = 0; v < num_vertices(); ++v) {
    const auto a = Entries(v);
    const auto b = other.Entries(v);
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].bucket != b[i].bucket || a[i].support != b[i].support) {
        return false;
      }
      const double tol =
          atol + rtol * std::max(std::fabs(a[i].affinity),
                                 std::fabs(b[i].affinity));
      if (std::fabs(a[i].affinity - b[i].affinity) > tol) return false;
    }
  }
  return true;
}

}  // namespace shp
