// Move-gain computation (paper Eq. 1) and its §3.4 future-split variant.
//
// Sign convention: we define the gain of moving data vertex v from bucket i
// to bucket j as the *decrease* of the p-fanout objective,
//
//   gain_j(v) = p · Σ_{q ∈ N(v)} ( B^{n_i(q)-1} − B^{n_j(q)} ),   B = 1 − p
//
// so positive gain = improvement. (The paper states Eq. 1 as the objective
// delta and maximizes the negated value; the algebra is identical.)
//
// Future-split generalization (paper §3.4): when the current buckets will
// each later split into t leaves, the projected final contribution of a
// (query, bucket) pair with r neighbors is t·(1 − (1 − p/t)^r); the gain
// formula keeps the same shape with base B = 1 − p/t and leading factor p.
// t = 1 recovers plain p-fanout. The fanout limit p→1 and the clique-net
// limit p→0 are obtained by setting p accordingly (Lemmas 1-2).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.h"
#include "objective/neighbor_data.h"
#include "objective/pow_table.h"

namespace shp {

class GainComputer {
 public:
  /// p in (0, 1]; future_splits t ≥ 1 (§3.4 projected-final objective).
  /// max_query_degree bounds the pow table (pass graph.MaxQueryDegree()).
  GainComputer(double p, uint32_t max_query_degree, uint32_t future_splits = 1);

  double p() const { return p_; }
  double pow_base() const { return pow_table_.base(); }

  /// B^n for the configured base.
  double Pow(uint32_t n) const { return pow_table_.Pow(n); }

  /// Gain (objective decrease) of moving v from `from` to `to`, given current
  /// neighbor data. O(deg(v) · log fanout). from must be v's current bucket.
  double MoveGain(const BipartiteGraph& graph, const QueryNeighborData& ndata,
                  VertexId v, BucketId from, BucketId to) const;

  /// Per-vertex "base" term Σ_{q∈N(v)} B^{n_from(q)−1}: gain to any target j
  /// is p · (base − Σ_q B^{n_j(q)}). Shared across all k targets.
  double BaseTerm(const BipartiteGraph& graph, const QueryNeighborData& ndata,
                  VertexId v, BucketId from) const;

  /// Result of a best-target search.
  struct BestTarget {
    BucketId bucket = -1;
    double gain = 0.0;  ///< improvement; may be ≤ 0 if no positive move
  };

  /// Finds the target bucket in [bucket_begin, bucket_end) \ {from} with the
  /// maximum gain for v. `affinity_scratch` must have ≥ bucket_end entries
  /// and be zero-filled; it is restored to zero before returning (touched-
  /// list reset), so callers can reuse it across vertices. O(Σ_{q∈N(v)}
  /// fanout(q)) — independent of k, per the sparse neighbor-data design.
  BestTarget FindBestTarget(const BipartiteGraph& graph,
                            const QueryNeighborData& ndata, VertexId v,
                            BucketId from, BucketId bucket_begin,
                            BucketId bucket_end,
                            std::vector<double>* affinity_scratch,
                            std::vector<BucketId>* touched_scratch) const;

 private:
  double p_;
  PowTable pow_table_;
};

}  // namespace shp
