// Move-gain computation (paper Eq. 1) and its §3.4 future-split variant.
//
// Sign convention: we define the gain of moving data vertex v from bucket i
// to bucket j as the *decrease* of the p-fanout objective,
//
//   gain_j(v) = p · Σ_{q ∈ N(v)} ( B^{n_i(q)-1} − B^{n_j(q)} ),   B = 1 − p
//
// so positive gain = improvement. (The paper states Eq. 1 as the objective
// delta and maximizes the negated value; the algebra is identical.)
//
// Future-split generalization (paper §3.4): when the current buckets will
// each later split into t leaves, the projected final contribution of a
// (query, bucket) pair with r neighbors is t·(1 − (1 − p/t)^r); the gain
// formula keeps the same shape with base B = 1 − p/t and leading factor p.
// t = 1 recovers plain p-fanout. The fanout limit p→1 and the clique-net
// limit p→0 are obtained by setting p accordingly (Lemmas 1-2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/bipartite_graph.h"
#include "objective/affinity_sweep.h"
#include "objective/neighbor_data.h"
#include "objective/pow_table.h"

namespace shp {

class GainComputer {
 public:
  /// Affinities within this absolute distance are treated as tied; ties
  /// resolve to the lower bucket id in *both* the pull and push scans, so
  /// the two paths pick the same target whenever their (float-order-
  /// divergent) affinities agree to well above this epsilon.
  static constexpr double kAffinityTieEpsilon = 1e-15;
  /// p in (0, 1]; future_splits t ≥ 1 (§3.4 projected-final objective).
  /// max_query_degree bounds the pow table (pass graph.MaxQueryDegree()).
  GainComputer(double p, uint32_t max_query_degree, uint32_t future_splits = 1);

  double p() const { return p_; }
  double pow_base() const { return pow_table_.base(); }
  /// The B^n table shared with the affinity sweep (AffinitySweep::Build /
  /// ApplyDeltas must use the same base as the gain formulas).
  const PowTable& pow_table() const { return pow_table_; }

  /// B^n for the configured base.
  double Pow(uint32_t n) const { return pow_table_.Pow(n); }

  /// Gain (objective decrease) of moving v from `from` to `to`, given current
  /// neighbor data. O(deg(v) · log fanout). from must be v's current bucket.
  double MoveGain(const BipartiteGraph& graph, const QueryNeighborData& ndata,
                  VertexId v, BucketId from, BucketId to) const;

  /// Per-vertex "base" term Σ_{q∈N(v)} B^{n_from(q)−1}: gain to any target j
  /// is p · (base − Σ_q B^{n_j(q)}). Shared across all k targets.
  double BaseTerm(const BipartiteGraph& graph, const QueryNeighborData& ndata,
                  VertexId v, BucketId from) const;

  /// Result of a best-target search.
  struct BestTarget {
    BucketId bucket = -1;
    double gain = 0.0;  ///< improvement; may be ≤ 0 if no positive move
  };

  /// Finds the target bucket in [bucket_begin, bucket_end) \ {from} with the
  /// maximum gain for v. `affinity_scratch` must have ≥ bucket_end entries
  /// and be zero-filled; it is restored to zero before returning (touched-
  /// list reset), so callers can reuse it across vertices. O(Σ_{q∈N(v)}
  /// fanout(q)) — independent of k, per the sparse neighbor-data design.
  BestTarget FindBestTarget(const BipartiteGraph& graph,
                            const QueryNeighborData& ndata, VertexId v,
                            BucketId from, BucketId bucket_begin,
                            BucketId bucket_end,
                            std::vector<double>* affinity_scratch,
                            std::vector<BucketId>* touched_scratch) const;

  /// True iff the push-path gain formulas below are available: they divide
  /// by the pow base B to recover Σ B^{n_from−1} from the maintained
  /// affinity, so B must be nonzero (p < 1 or future_splits > 1). The p = 1,
  /// t = 1 fanout limit must use the pull path.
  bool SupportsPush() const { return pow_table_.base() > 0.0; }

  /// Push-path best-target scan: one sequential pass over v's maintained
  /// accumulator (O(|occupied buckets of N(v)|), no arena gather). Same
  /// candidate window, tie-break, and empty-bucket fallback semantics as
  /// FindBestTarget; gains agree with the pull path up to float summation
  /// order. Requires SupportsPush(); `degree` = graph.DataDegree(v).
  BestTarget FindBestTargetPush(const AffinitySweep& sweep, VertexId v,
                                BucketId from, BucketId bucket_begin,
                                BucketId bucket_end, double degree) const;

  /// Group-restricted push scan for recursion windows: candidates are the
  /// sibling buckets of v's group (ascending, containing `from`), and the
  /// scan reads only the accumulator window spanning them
  /// (AffinitySweep::EntriesInWindow — a re-slice, never a rebuild). Same
  /// tie-break as the full-k scan; the empty-window fallback is the lowest
  /// sibling ≠ from, matching the grouped pull path's first-candidate-wins
  /// argmax. O(|candidates| + window entries). Requires SupportsPush().
  BestTarget FindBestTargetPushGrouped(const AffinitySweep& sweep, VertexId v,
                                       BucketId from,
                                       std::span<const BucketId> candidates,
                                       double degree) const;

  /// Same scan over a pre-sliced accumulator window — for callers that
  /// already hold AffinitySweep::EntriesInWindow(v, window) (the BSP engine
  /// slices once for work accounting; re-slicing per call would double the
  /// binary searches in the recompute hot loop).
  BestTarget FindBestTargetPushGroupedWindow(
      std::span<const AffinityEntry> window, BucketId from,
      std::span<const BucketId> candidates, double degree) const;

  /// Push-path gain of moving v from `from` to a specific `to` (exploration
  /// proposals). O(log entries). Requires SupportsPush().
  double MoveGainPush(const AffinitySweep& sweep, VertexId v, BucketId from,
                      BucketId to, double degree) const;

 private:
  double p_;
  PowTable pow_table_;
};

}  // namespace shp
