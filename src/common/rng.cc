#include "common/rng.h"

#include <cmath>

namespace shp {

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Marsaglia polar method: rejection-sample a point in the unit disk.
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

double Rng::NextExponential() {
  // Inverse CDF; guard against log(0).
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u);
}

}  // namespace shp
