#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace shp {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Fmt(double value, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << value;
  return out.str();
}

std::string TablePrinter::FmtInt(long long value) {
  return std::to_string(value);
}

std::string TablePrinter::FmtCount(long long value) {
  std::string digits = std::to_string(value < 0 ? -value : value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (value < 0) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

std::string TablePrinter::FmtPercent(double fraction, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  if (fraction >= 0) out << '+';
  out << fraction * 100.0 << '%';
  return out.str();
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << cell << std::string(widths[c] - cell.size() + 2, ' ');
    }
    out << '\n';
  };
  emit_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) total += widths[c] + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TablePrinter::ToMarkdown() const {
  std::ostringstream out;
  out << '|';
  for (const auto& h : headers_) out << ' ' << h << " |";
  out << "\n|";
  for (size_t c = 0; c < headers_.size(); ++c) out << "---|";
  out << '\n';
  for (const auto& row : rows_) {
    out << '|';
    for (size_t c = 0; c < headers_.size(); ++c) {
      out << ' ' << (c < row.size() ? row[c] : std::string()) << " |";
    }
    out << '\n';
  }
  return out.str();
}

void TablePrinter::Print() const {
  std::fputs(ToString().c_str(), stdout);
  std::fflush(stdout);
}

}  // namespace shp
