// Wall-clock timing helpers (header-only).
#pragma once

#include <chrono>
#include <cstdint>

namespace shp {

/// Monotonic stopwatch. Started on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace shp
