// Deterministic pseudo-random number generation.
//
// The partitioner is randomized in three places (initial assignment, move
// probabilities, tie-breaking); reproducible experiments require that every
// random decision be a pure function of (seed, vertex id, iteration). We use
// SplitMix64 as a stateless hash-style generator for that purpose, and
// xoshiro256** as a fast sequential generator for workload synthesis.
#pragma once

#include <cstdint>
#include <limits>

namespace shp {

/// One SplitMix64 mixing step: maps any 64-bit value to a well-distributed
/// 64-bit value. Stateless; usable as a hash.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Mixes several words into one (for per-(seed, vertex, iteration) streams).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return SplitMix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}
inline uint64_t HashCombine(uint64_t a, uint64_t b, uint64_t c) {
  return HashCombine(HashCombine(a, b), c);
}

/// Fast sequential PRNG (xoshiro256**, Blackman & Vigna). Not cryptographic.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  /// Re-seeds all four lanes from SplitMix64(seed) per the reference
  /// initialization, so nearby seeds yield unrelated streams.
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& lane : s_) {
      x = SplitMix64(x + 0x9e3779b97f4a7c15ULL);
      lane = x;
    }
    // The all-zero state is invalid for xoshiro; nudge if it happens.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0. Uses Lemire's multiply-shift
  /// reduction (slightly biased for huge bounds; fine for workload synthesis).
  uint64_t NextBounded(uint64_t bound) {
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// True with probability prob (clamped to [0,1]).
  bool NextBernoulli(double prob) { return NextDouble() < prob; }

  /// Standard normal via Marsaglia polar method.
  double NextGaussian();

  /// Standard exponential (mean 1).
  double NextExponential();

  // UniformRandomBitGenerator interface (for std::shuffle etc.).
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() {
    return std::numeric_limits<uint64_t>::max();
  }
  uint64_t operator()() { return Next(); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// Stateless uniform double in [0,1) derived from a hash of the inputs.
/// The same (seed, a, b) always yields the same value, independent of thread
/// scheduling — this is what makes the threaded refiner deterministic.
inline double HashToUnitDouble(uint64_t seed, uint64_t a, uint64_t b) {
  return static_cast<double>(HashCombine(seed, a, b) >> 11) * 0x1.0p-53;
}

/// Stateless uniform integer in [0, bound) from a hash of the inputs.
inline uint64_t HashToBounded(uint64_t seed, uint64_t a, uint64_t b,
                              uint64_t bound) {
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(HashCombine(seed, a, b)) * bound) >> 64);
}

}  // namespace shp
