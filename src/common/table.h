// Aligned-column table printer for bench harnesses. Prints the paper-style
// rows (Tables 1-3, figure series) as plain text and optionally markdown.
#pragma once

#include <string>
#include <vector>

namespace shp {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds one row; the row is padded/truncated to the header width.
  void AddRow(std::vector<std::string> cells);

  /// Convenience formatter helpers for numeric cells.
  static std::string Fmt(double value, int precision = 2);
  static std::string FmtInt(long long value);
  /// Thousands-separated ("2,283,863") — used for Table 1.
  static std::string FmtCount(long long value);
  /// Percent with sign ("+12.3%").
  static std::string FmtPercent(double fraction, int precision = 1);

  /// Renders with space-aligned columns and a header separator.
  std::string ToString() const;
  /// Renders as a GitHub-flavored markdown table.
  std::string ToMarkdown() const;

  /// Prints ToString() to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace shp
