// Minimal logging and invariant-checking macros.
//
// SHP_CHECK* fire in all build types: internal invariants of the partitioner
// must hold regardless of NDEBUG because silent balance violations corrupt
// experiment results. SHP_DCHECK* compile out in release builds and guard
// hot-path-only assertions.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace shp {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level actually emitted; default kInfo. Thread-safe to set
/// before spawning workers.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Terminates the process after streaming the failure context.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define SHP_LOG(level)                                                      \
  ::shp::internal::LogMessage(::shp::LogLevel::k##level, __FILE__, __LINE__) \
      .stream()

#define SHP_CHECK(cond)                                             \
  if (!(cond))                                                      \
  ::shp::internal::FatalMessage(__FILE__, __LINE__, #cond).stream()

#define SHP_CHECK_OP(a, b, op) SHP_CHECK((a)op(b)) << " (" << (a) << " vs " << (b) << ") "
#define SHP_CHECK_EQ(a, b) SHP_CHECK_OP(a, b, ==)
#define SHP_CHECK_NE(a, b) SHP_CHECK_OP(a, b, !=)
#define SHP_CHECK_LT(a, b) SHP_CHECK_OP(a, b, <)
#define SHP_CHECK_LE(a, b) SHP_CHECK_OP(a, b, <=)
#define SHP_CHECK_GT(a, b) SHP_CHECK_OP(a, b, >)
#define SHP_CHECK_GE(a, b) SHP_CHECK_OP(a, b, >=)
#define SHP_CHECK_OK(expr)                          \
  do {                                              \
    ::shp::Status _st = (expr);                     \
    SHP_CHECK(_st.ok()) << _st.ToString();          \
  } while (0)

#ifdef NDEBUG
#define SHP_DCHECK(cond) \
  if (false) ::shp::internal::NullStream()
#else
#define SHP_DCHECK(cond) SHP_CHECK(cond)
#endif

#define SHP_DCHECK_LT(a, b) SHP_DCHECK((a) < (b))
#define SHP_DCHECK_LE(a, b) SHP_DCHECK((a) <= (b))
#define SHP_DCHECK_EQ(a, b) SHP_DCHECK((a) == (b))

}  // namespace shp
