#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace shp {

ExponentialHistogram::ExponentialHistogram(double min_value, double growth,
                                           int num_bins)
    : min_value_(min_value),
      log_growth_(std::log(growth)),
      growth_(growth),
      counts_(static_cast<size_t>(num_bins), 0) {
  SHP_CHECK_GT(min_value, 0.0);
  SHP_CHECK_GT(growth, 1.0);
  SHP_CHECK_GE(num_bins, 2);
}

int ExponentialHistogram::BinFor(double value) const {
  if (!(value > min_value_)) return 0;  // also catches NaN -> bin 0
  const int bin =
      1 + static_cast<int>(std::floor(std::log(value / min_value_) /
                                      log_growth_));
  return std::min(bin, num_bins() - 1);
}

double ExponentialHistogram::BinLower(int bin) const {
  if (bin <= 0) return 0.0;
  return min_value_ * std::pow(growth_, bin - 1);
}

double ExponentialHistogram::BinUpper(int bin) const {
  if (bin >= num_bins() - 1) return std::numeric_limits<double>::infinity();
  return min_value_ * std::pow(growth_, bin);
}

void ExponentialHistogram::Add(double value, uint64_t weight) {
  counts_[static_cast<size_t>(BinFor(std::max(value, 0.0)))] += weight;
  total_ += weight;
}

void ExponentialHistogram::Clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
}

void ExponentialHistogram::Merge(const ExponentialHistogram& other) {
  SHP_CHECK_EQ(num_bins(), other.num_bins());
  for (int i = 0; i < num_bins(); ++i) {
    counts_[static_cast<size_t>(i)] += other.counts_[static_cast<size_t>(i)];
  }
  total_ += other.total_;
}

double ExponentialHistogram::Percentile(double p) const {
  if (total_ == 0) return 0.0;
  const double target = std::clamp(p, 0.0, 100.0) / 100.0 *
                        static_cast<double>(total_);
  uint64_t cumulative = 0;
  for (int bin = 0; bin < num_bins(); ++bin) {
    const uint64_t c = counts_[static_cast<size_t>(bin)];
    if (cumulative + c >= target && c > 0) {
      const double fraction =
          (target - static_cast<double>(cumulative)) / static_cast<double>(c);
      const double lo = BinLower(bin);
      double hi = BinUpper(bin);
      if (std::isinf(hi)) hi = lo * growth_;  // last bin: extrapolate one step
      return lo + fraction * (hi - lo);
    }
    cumulative += c;
  }
  double hi = BinUpper(num_bins() - 1);
  if (std::isinf(hi)) hi = BinLower(num_bins() - 1) * growth_;
  return hi;
}

std::string ExponentialHistogram::Summary() const {
  std::ostringstream out;
  out << "count=" << total_ << " p50=" << Percentile(50)
      << " p95=" << Percentile(95) << " p99=" << Percentile(99);
  return out.str();
}

}  // namespace shp
