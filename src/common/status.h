// Lightweight Status / Result types for error propagation on non-hot paths
// (I/O, configuration validation). Modeled after the RocksDB/Arrow idiom:
// library code never throws; fallible functions return Status or Result<T>.
#pragma once

#include <string>
#include <utility>
#include <variant>

namespace shp {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kCorruption,
  kOutOfRange,
  kUnimplemented,
  kInternal,
};

/// Returns a short human-readable name for a StatusCode ("Ok", "IOError", ...).
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail. Cheap to copy when OK (no message
/// allocation); carries a code + message otherwise.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Value-or-Status. Use `result.ok()` then `result.value()` /
/// `std::move(result).value()`; accessing value() of a failed Result aborts.
template <typename T>
class Result {
 public:
  Result(T value) : var_(std::move(value)) {}            // NOLINT(runtime/explicit)
  Result(Status status) : var_(std::move(status)) {}     // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(var_); }

  const Status& status() const {
    static const Status kOk = Status::Ok();
    if (ok()) return kOk;
    return std::get<Status>(var_);
  }

  const T& value() const& { return std::get<T>(var_); }
  T& value() & { return std::get<T>(var_); }
  T&& value() && { return std::get<T>(std::move(var_)); }

 private:
  std::variant<T, Status> var_;
};

/// Propagate a non-OK Status from the current function.
#define SHP_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::shp::Status _st = (expr);                \
    if (!_st.ok()) return _st;                 \
  } while (0)

}  // namespace shp
