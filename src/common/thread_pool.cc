#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/env.h"
#include "common/logging.h"

namespace shp {

namespace {
thread_local bool t_inside_pool_worker = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  t_inside_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock,
                           [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_tasks_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_tasks_;
      if (active_tasks_ == 0 && tasks_.empty()) all_done_.notify_all();
    }
  }
}

bool ThreadPool::RunOneTask() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (tasks_.empty()) return false;
    task = std::move(tasks_.front());
    tasks_.pop();
    ++active_tasks_;
  }
  task();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --active_tasks_;
    if (active_tasks_ == 0 && tasks_.empty()) all_done_.notify_all();
  }
  return true;
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SHP_CHECK(!shutting_down_) << "Submit after shutdown";
    tasks_.push(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  // If called from inside a worker (nested parallelism in recursive
  // bisection), help drain the queue instead of deadlocking on ourselves.
  if (t_inside_pool_worker) {
    while (RunOneTask()) {
    }
  }
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock,
                 [this] { return tasks_.empty() && active_tasks_ == 0; });
}

void ThreadPool::ParallelFor(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t workers = std::min(n, num_threads());
  if (workers <= 1 || t_inside_pool_worker) {
    // Inline execution: nested ParallelFor from a recursive split runs on the
    // calling worker; chunk boundaries stay identical so RNG streams keyed by
    // vertex id are unaffected.
    fn(0, n, 0);
    return;
  }
  std::atomic<std::size_t> remaining{workers};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  const std::size_t chunk = (n + workers - 1) / workers;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = w * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    Submit([&, begin, end, w] {
      if (begin < end) fn(begin, end, w);
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(done_mutex);
        done_cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
}

void ThreadPool::ParallelForEach(std::size_t n,
                                 const std::function<void(std::size_t)>& fn) {
  ParallelFor(n, [&fn](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

ThreadPool& GlobalThreadPool() {
  static ThreadPool* pool = new ThreadPool(
      static_cast<std::size_t>(GetEnvInt("SHP_BENCH_THREADS", 0)));
  return *pool;
}

}  // namespace shp
