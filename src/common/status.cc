#include "common/status.h"

namespace shp {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIoError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace shp
