#include "common/csv.h"

#include <cstdio>

namespace shp {

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void CsvWriter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void CsvWriter::AppendCell(std::string* out, const std::string& cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) {
    *out += cell;
    return;
  }
  out->push_back('"');
  for (char ch : cell) {
    if (ch == '"') out->push_back('"');
    out->push_back(ch);
  }
  out->push_back('"');
}

std::string CsvWriter::ToString() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out.push_back(',');
      AppendCell(&out, row[c]);
    }
    out.push_back('\n');
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out;
}

Status CsvWriter::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  const std::string data = ToString();
  const size_t written = std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (written != data.size()) return Status::IoError("short write to " + path);
  return Status::Ok();
}

}  // namespace shp
