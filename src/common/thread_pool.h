// Fixed-size worker pool with a blocking ParallelFor.
//
// The SHP refiner is embarrassingly parallel within a superstep (per-vertex
// gain computation, per-query neighbor-data aggregation), so the only
// primitive we need is a static range split with a barrier at the end —
// matching the BSP structure of the distributed algorithm. Static chunking
// (not work stealing) keeps per-vertex RNG streams deterministic for a fixed
// thread count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace shp {

class ThreadPool {
 public:
  /// Creates num_threads workers. num_threads == 0 means
  /// std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return threads_.size(); }

  /// Runs fn(begin, end, worker_index) over [0, n) split into one contiguous
  /// chunk per worker; blocks until all chunks finish. Reentrant calls from
  /// inside a worker run inline on the calling thread (used by recursive
  /// bisection, where subtrees parallelize internally).
  void ParallelFor(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

  /// Convenience: fn(index) for each index in [0, n).
  void ParallelForEach(std::size_t n,
                       const std::function<void(std::size_t)>& fn);

  /// Enqueues an independent task; use Wait() to drain.
  void Submit(std::function<void()> task);

  /// Blocks until all Submitted tasks have completed.
  void Wait();

 private:
  void WorkerLoop();
  bool RunOneTask();  // returns false if queue empty

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t active_tasks_ = 0;
  bool shutting_down_ = false;
};

/// Singleton pool sized from SHP_BENCH_THREADS (or hardware concurrency).
/// Library entry points take an optional ThreadPool*; nullptr means this pool.
ThreadPool& GlobalThreadPool();

}  // namespace shp
