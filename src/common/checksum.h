// Shared checksum primitives for self-verifying on-disk and on-wire formats.
//
// CRC32C (Castagnoli) is the integrity check of the superstep-2 wire envelope
// (engine/wire_format.h) and the epoch checkpoint files
// (engine/checkpoint.h): it detects all single-bit flips and, unlike an
// additive hash, any burst error up to 32 bits. The implementation is the
// classic byte-at-a-time table walk — the buffers it covers are small (delta
// payloads, partition vectors), so a slicing-by-8 variant would be noise.
//
// FNV-1a is kept for the binary graph snapshot (graph/io_binary.cc), whose
// on-disk format predates this header; moving the shared definition here
// keeps the two call sites from drifting apart.
#pragma once

#include <cstddef>
#include <cstdint>

namespace shp {

/// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected). `seed` chains
/// incremental updates: pass a previous return value to extend the checksum
/// over a further buffer.
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

/// FNV-1a 64-bit over a buffer, chained through `seed` the same way.
uint64_t Fnv1a64(const void* data, size_t size, uint64_t seed);

/// FNV-1a offset basis (the seed of a fresh chain).
inline constexpr uint64_t kFnv1a64Init = 0xcbf29ce484222325ULL;

}  // namespace shp
