#include "common/checksum.h"

#include <array>

namespace shp {

namespace {

/// 256-entry lookup table for reflected CRC32C, generated once at startup
/// (constexpr, so actually at compile time).
constexpr std::array<uint32_t, 256> MakeCrc32cTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ 0x82f63b78u : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kCrc32cTable = MakeCrc32cTable();

}  // namespace

uint32_t Crc32c(const void* data, size_t size, uint32_t seed) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc = kCrc32cTable[(crc ^ bytes[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

uint64_t Fnv1a64(const void* data, size_t size, uint64_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = seed;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace shp
