// Exponentially-binned histogram over non-negative doubles.
//
// Used for (a) latency distributions in the sharding simulator and (b) as the
// building block of the signed gain histograms in the advanced move matcher
// (paper §3.4: "histograms that contain the number of vertices with move
// gains in exponentially sized bins").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace shp {

class ExponentialHistogram {
 public:
  /// Bins: [0, min_value), [min_value, min_value*growth), ... capped at
  /// num_bins. growth must be > 1.
  ExponentialHistogram(double min_value = 1e-9, double growth = 2.0,
                       int num_bins = 64);

  /// Adds a sample (weight defaults to 1). Negative samples are clamped to 0.
  void Add(double value, uint64_t weight = 1);

  /// Bin index a value falls into (0 .. num_bins-1).
  int BinFor(double value) const;

  /// Lower/upper edge of bin i; upper edge of the last bin is +inf.
  double BinLower(int bin) const;
  double BinUpper(int bin) const;

  uint64_t BinCount(int bin) const { return counts_[static_cast<size_t>(bin)]; }
  int num_bins() const { return static_cast<int>(counts_.size()); }
  uint64_t total_count() const { return total_; }

  /// Approximate p-th percentile (p in [0,100]) assuming samples sit at their
  /// bin's geometric midpoint; linear interpolation within the bin.
  double Percentile(double p) const;

  void Clear();

  /// Merges another histogram with identical bin configuration.
  void Merge(const ExponentialHistogram& other);

  /// One-line summary "count=.. p50=.. p95=.. p99=..".
  std::string Summary() const;

 private:
  double min_value_;
  double log_growth_;  // precomputed log(growth)
  double growth_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace shp
