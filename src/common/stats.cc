#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace shp {

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = static_cast<size_t>(std::ceil(rank));
  if (lo == hi) return samples[lo];
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double PercentileInPlace(std::vector<double>* samples, double p) {
  if (samples == nullptr || samples->empty()) return 0.0;
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank =
      clamped / 100.0 * static_cast<double>(samples->size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = static_cast<size_t>(std::ceil(rank));
  auto lo_it = samples->begin() + static_cast<int64_t>(lo);
  std::nth_element(samples->begin(), lo_it, samples->end());
  const double lo_value = *lo_it;
  if (lo == hi) return lo_value;
  // The hi-th order statistic is the minimum of the suffix nth_element
  // left to the right of lo.
  const double hi_value =
      *std::min_element(lo_it + 1, samples->end());
  const double frac = rank - static_cast<double>(lo);
  return lo_value * (1.0 - frac) + hi_value * frac;
}

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ == 0) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  const double new_mean =
      mean_ + delta * static_cast<double>(other.count_) / total;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ = new_mean;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double LogLogSlope(const std::vector<double>& x, const std::vector<double>& y) {
  SHP_CHECK_EQ(x.size(), y.size());
  if (x.size() < 2) return 0.0;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int n = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i] <= 0.0 || y[i] <= 0.0) continue;
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++n;
  }
  if (n < 2) return 0.0;
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  return (n * sxy - sx * sy) / denom;
}

}  // namespace shp
