// Small statistics helpers: exact percentiles over stored samples and
// streaming mean/variance (Welford).
#pragma once

#include <cstdint>
#include <vector>

namespace shp {

/// Exact percentile of a sample set (copies + sorts on demand; for
/// experiment-sized sample counts). p in [0, 100]; linear interpolation
/// between order statistics.
double Percentile(std::vector<double> samples, double p);

/// Exact percentile computed in place with nth_element — no copy, no full
/// sort; O(n) expected instead of O(n log n) per call. Returns the same
/// interpolated order statistic as Percentile (the equivalence test pins
/// this). The sample order is scrambled on return; callers that need
/// several percentiles of one buffer just call repeatedly — each call
/// re-selects in O(n). This is the replay/serving hot-path variant:
/// percentile snapshots per fanout row per epoch must not re-copy and
/// re-sort the whole sample set.
double PercentileInPlace(std::vector<double>* samples, double p);

/// Streaming mean / variance / min / max.
class RunningStats {
 public:
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

  /// Population variance / standard deviation.
  double variance() const;
  double stddev() const;

  void Merge(const RunningStats& other);

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Least-squares slope of log(y) against log(x); used to verify complexity
/// claims like "total time is O(|E| log k)" (slope ≈ 1 against |E|).
/// Returns 0 if fewer than two points.
double LogLogSlope(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace shp
