#include "common/flags.h"

#include <cstdlib>

namespace shp {

Result<Flags> Flags::Parse(int argc, const char* const* argv) {
  Flags flags;
  if (argc > 0) flags.program_name_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    if (arg.empty()) {
      // Bare "--": everything after is positional.
      for (int j = i + 1; j < argc; ++j) flags.positional_.push_back(argv[j]);
      break;
    }
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else {
      flags.values_[arg] = "true";  // boolean flag
    }
  }
  return flags;
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const long long parsed = std::strtoll(it->second.c_str(), &end, 10);
  return end == it->second.c_str() ? def : parsed;
}

double Flags::GetDouble(const std::string& name, double def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const double parsed = std::strtod(it->second.c_str(), &end);
  return end == it->second.c_str() ? def : parsed;
}

bool Flags::GetBool(const std::string& name, bool def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  return def;
}

}  // namespace shp
