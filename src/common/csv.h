// Minimal CSV writer (RFC 4180 quoting) for exporting experiment series.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"

namespace shp {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Serializes header + rows, quoting cells containing [",\n].
  std::string ToString() const;

  /// Writes ToString() to `path`.
  Status WriteFile(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  static void AppendCell(std::string* out, const std::string& cell);

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace shp
