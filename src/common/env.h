// Environment-variable helpers used by bench harnesses for scale knobs.
#pragma once

#include <cstdint>
#include <string>

namespace shp {

/// Returns the integer value of env var `name`, or `def` if unset/invalid.
int64_t GetEnvInt(const std::string& name, int64_t def);

/// Returns the double value of env var `name`, or `def` if unset/invalid.
double GetEnvDouble(const std::string& name, double def);

/// Returns the string value of env var `name`, or `def` if unset.
std::string GetEnvString(const std::string& name, const std::string& def);

/// Global dataset-size multiplier for benches (SHP_BENCH_SCALE, default 1.0).
/// All Table/Figure harnesses generate datasets scaled by this factor so the
/// whole suite runs in minutes by default and can be scaled toward
/// paper-size runs on bigger machines.
double BenchScale();

/// Current resident set size of this process in bytes (VmRSS from
/// /proc/self/status), or 0 if unavailable. Used by the streaming-ingest
/// memory-ceiling assertions.
uint64_t CurrentRssBytes();

/// Lifetime peak resident set size in bytes (VmHWM from /proc/self/status),
/// or 0 if unavailable. Monotone over the process lifetime — measure a
/// baseline before the phase under test and compare deltas.
uint64_t PeakRssBytes();

}  // namespace shp
