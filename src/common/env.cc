#include "common/env.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace shp {

namespace {

// Reads a "VmXXX:  <kB> kB" line from /proc/self/status.
uint64_t ProcStatusBytes(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  uint64_t bytes = 0;
  const size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) != 0) continue;
    unsigned long long kb = 0;
    if (std::sscanf(line + key_len, ": %llu", &kb) == 1) bytes = kb * 1024;
    break;
  }
  std::fclose(f);
  return bytes;
}

}  // namespace

int64_t GetEnvInt(const std::string& name, int64_t def) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || *value == '\0') return def;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value) return def;
  return static_cast<int64_t>(parsed);
}

double GetEnvDouble(const std::string& name, double def) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || *value == '\0') return def;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value) return def;
  return parsed;
}

std::string GetEnvString(const std::string& name, const std::string& def) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr) return def;
  return value;
}

double BenchScale() { return GetEnvDouble("SHP_BENCH_SCALE", 1.0); }

uint64_t CurrentRssBytes() { return ProcStatusBytes("VmRSS"); }

uint64_t PeakRssBytes() { return ProcStatusBytes("VmHWM"); }

}  // namespace shp
