#include "common/env.h"

#include <cstdlib>

namespace shp {

int64_t GetEnvInt(const std::string& name, int64_t def) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || *value == '\0') return def;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value) return def;
  return static_cast<int64_t>(parsed);
}

double GetEnvDouble(const std::string& name, double def) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || *value == '\0') return def;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value) return def;
  return parsed;
}

std::string GetEnvString(const std::string& name, const std::string& def) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr) return def;
  return value;
}

double BenchScale() { return GetEnvDouble("SHP_BENCH_SCALE", 1.0); }

}  // namespace shp
