// Tiny command-line flag parser for examples and bench harnesses.
// Supports --name=value and bare boolean --name; a bare "--" ends flag
// parsing. (No "--name value" form: it is ambiguous with positionals.)
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace shp {

class Flags {
 public:
  /// Parses argv; positional (non --) arguments are collected in order.
  static Result<Flags> Parse(int argc, const char* const* argv);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name, const std::string& def) const;
  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  bool GetBool(const std::string& name, bool def) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program_name() const { return program_name_; }

 private:
  std::string program_name_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace shp
