// Fiduccia–Mattheyses boundary refinement for weighted bisection,
// optimizing exact fanout (the k=2 case of the paper's objective).
//
// Classic FM: one pass moves every vertex at most once, always the
// highest-gain movable vertex (bucket-indexed gain structure, O(1)
// updates); the best prefix of the move sequence is kept. Gains are exact
// fanout deltas: moving v from side A to B improves a query q by 1 when v
// was q's last A-side member, and worsens it by 1 when q had no B-side
// member ("cut net" bookkeeping, Fiduccia & Mattheyses 1982 / hMetis).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.h"
#include "objective/neighbor_data.h"

namespace shp {

struct FmOptions {
  /// Per-side weight ceiling: side0 ≤ (1+ε)·total·target_left_fraction,
  /// side1 ≤ (1+ε)·total·(1 − target_left_fraction).
  double epsilon = 0.05;
  /// Fraction of total weight targeted at side 0 (recursive bisection with
  /// uneven leaf counts sets this to leaves_left / leaves_total).
  double target_left_fraction = 0.5;
  /// FM passes (each pass is a full move sequence + rollback).
  uint32_t max_passes = 8;
  /// Abort a pass after this many consecutive non-improving moves
  /// (classic early exit; 0 = no limit).
  uint32_t stall_limit = 512;
};

/// Refines a bisection in place. side[v] ∈ {0, 1}; weight[v] ≥ 1 (pass {}
/// for all-ones). Returns the total fanout improvement achieved.
int64_t FmRefineBisection(const BipartiteGraph& graph,
                          const std::vector<uint32_t>& weight,
                          const FmOptions& options, std::vector<int8_t>* side);

}  // namespace shp
