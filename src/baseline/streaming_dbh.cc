#include "baseline/streaming_dbh.h"

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace shp {

namespace {

class StreamingDbh : public Partitioner {
 public:
  explicit StreamingDbh(const StreamingDbhOptions& options)
      : options_(options) {}

  std::string name() const override { return "DBH-stream"; }

  Result<std::vector<BucketId>> Partition(const BipartiteGraph& graph,
                                          BucketId k, ThreadPool*) override {
    if (k < 1) return Status::InvalidArgument("k must be ≥ 1");
    const VertexId n = graph.num_data();
    std::vector<uint64_t> loads(k, 0);
    const uint64_t cap = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               std::ceil((1.0 + options_.epsilon) * n / k)));
    std::vector<BucketId> assignment(n);
    for (VertexId v = 0; v < n; ++v) {
      auto queries = graph.DataNeighbors(v);
      // Hash through the minimum-degree incident query (lowest id on ties):
      // small hyperedges stay whole, hubs spread.
      VertexId anchor = kInvalidVertex;
      EdgeIndex anchor_degree = 0;
      for (VertexId q : queries) {
        const EdgeIndex deg = graph.QueryDegree(q);
        if (anchor == kInvalidVertex || deg < anchor_degree) {
          anchor = q;
          anchor_degree = deg;
        }
      }
      BucketId target;
      if (anchor == kInvalidVertex) {
        target = static_cast<BucketId>(HashToBounded(
            options_.salt, v, 0xdb11, static_cast<uint64_t>(k)));
      } else {
        target = static_cast<BucketId>(HashToBounded(
            options_.salt, anchor, 0xdb00, static_cast<uint64_t>(k)));
      }
      if (loads[target] >= cap) {  // capacity overflow → least loaded
        target = 0;
        for (BucketId b = 1; b < k; ++b) {
          if (loads[b] < loads[target]) target = b;
        }
      }
      assignment[v] = target;
      ++loads[target];
    }
    return assignment;
  }

 private:
  StreamingDbhOptions options_;
};

}  // namespace

std::unique_ptr<Partitioner> MakeStreamingDbh(
    const StreamingDbhOptions& options) {
  return std::make_unique<StreamingDbh>(options);
}

}  // namespace shp
