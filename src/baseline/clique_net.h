// Clique-net expansion: the weighted unipartite graph over data vertices
// where w(u, v) = number of shared queries (paper Lemma 2). Used by the
// multilevel baseline's heavy-edge coarsening.
//
// As the paper notes (§3.1), a hyperedge over Ω(n) vertices expands to Ω(n²)
// clique edges, so practical implementations sample large hyperedges; we
// keep each query's expansion at most `max_clique_degree` pairs (a ring plus
// random chords — connectivity preserved, weight approximated). This very
// workaround is what Lemma 2 makes unnecessary for SHP itself.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.h"

namespace shp {

struct CliqueNetOptions {
  /// Queries with degree above this are sampled instead of fully expanded.
  uint32_t max_clique_degree = 32;
  uint64_t seed = 23;
};

/// Weighted undirected adjacency (CSR) over data vertices.
struct WeightedGraph {
  std::vector<uint64_t> offsets;   // num_vertices + 1
  std::vector<VertexId> adjacency;
  std::vector<uint32_t> weights;   // parallel to adjacency

  VertexId num_vertices() const {
    return offsets.empty() ? 0 : static_cast<VertexId>(offsets.size() - 1);
  }
  uint64_t num_edges() const { return adjacency.size(); }  // directed count
  size_t MemoryBytes() const {
    return offsets.size() * sizeof(uint64_t) +
           adjacency.size() * (sizeof(VertexId) + sizeof(uint32_t));
  }
};

WeightedGraph BuildCliqueNet(const BipartiteGraph& graph,
                             const CliqueNetOptions& options = {});

}  // namespace shp
