#include "baseline/hash_partitioner.h"

#include "common/rng.h"

namespace shp {

namespace {

class HashPartitioner : public Partitioner {
 public:
  explicit HashPartitioner(uint64_t salt) : salt_(salt) {}

  std::string name() const override { return "Hash"; }

  Result<std::vector<BucketId>> Partition(const BipartiteGraph& graph,
                                          BucketId k, ThreadPool*) override {
    if (k < 1) return Status::InvalidArgument("k must be ≥ 1");
    std::vector<BucketId> assignment(graph.num_data());
    for (VertexId v = 0; v < graph.num_data(); ++v) {
      assignment[v] = static_cast<BucketId>(
          HashToBounded(salt_, v, 0xcafe, static_cast<uint64_t>(k)));
    }
    return assignment;
  }

 private:
  uint64_t salt_;
};

}  // namespace

std::unique_ptr<Partitioner> MakeHashPartitioner(uint64_t salt) {
  return std::make_unique<HashPartitioner>(salt);
}

}  // namespace shp
