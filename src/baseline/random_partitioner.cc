#include "baseline/random_partitioner.h"

#include "core/partition.h"

namespace shp {

namespace {

class RandomPartitioner : public Partitioner {
 public:
  explicit RandomPartitioner(const RandomPartitionerOptions& options)
      : options_(options) {}

  std::string name() const override { return "Random"; }

  Result<std::vector<BucketId>> Partition(const BipartiteGraph& graph,
                                          BucketId k, ThreadPool*) override {
    if (k < 1) return Status::InvalidArgument("k must be ≥ 1");
    return Partition::Random(graph.num_data(), k, options_.seed).assignment();
  }

 private:
  RandomPartitionerOptions options_;
};

}  // namespace

std::unique_ptr<Partitioner> MakeRandomPartitioner(
    const RandomPartitionerOptions& options) {
  return std::make_unique<RandomPartitioner>(options);
}

}  // namespace shp
