#include "baseline/multilevel.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/rng.h"
#include "graph/subgraph.h"

namespace shp {

namespace {

/// One full multilevel bisection of `graph` with vertex weights `weight`.
/// Returns sides (0/1) per data vertex, or an error if the hierarchy blows
/// the memory budget.
Result<std::vector<int8_t>> MultilevelBisect(
    const BipartiteGraph& graph, const std::vector<uint32_t>& weight,
    const MultilevelOptions& options, uint64_t* peak_memory) {
  // --- Coarsening phase ---
  struct Level {
    CoarseLevel coarse;
  };
  std::vector<Level> hierarchy;
  const BipartiteGraph* current = &graph;
  std::vector<uint32_t> current_weight = weight;
  uint64_t memory = graph.MemoryBytes();

  for (uint32_t level = 0; level < options.max_levels; ++level) {
    if (current->num_data() <= options.coarsest_size) break;
    CoarsenOptions coarsen = options.coarsen;
    coarsen.seed = options.coarsen.seed + level;
    CoarseLevel next = CoarsenOnce(*current, current_weight, coarsen);
    memory += options.full_expansion_accounting ? next.modeled_full_bytes
                                                : next.memory_bytes;
    if (options.memory_budget_bytes > 0 &&
        memory > options.memory_budget_bytes) {
      return Status::OutOfRange(
          "multilevel hierarchy exceeds memory budget (" +
          std::to_string(memory) + " > " +
          std::to_string(options.memory_budget_bytes) + " bytes)");
    }
    // Stalled coarsening (matching found nothing) — stop here.
    if (next.graph.num_data() >= current->num_data()) break;
    current_weight = next.vertex_weight;
    hierarchy.push_back({std::move(next)});
    current = &hierarchy.back().coarse.graph;
  }
  if (peak_memory != nullptr) *peak_memory = std::max(*peak_memory, memory);

  // --- Initial partition of the coarsest level: LPT greedy by weight ---
  const BipartiteGraph& coarsest = *current;
  std::vector<int8_t> side(coarsest.num_data(), 0);
  {
    std::vector<VertexId> order(coarsest.num_data());
    std::iota(order.begin(), order.end(), 0);
    auto weight_of = [&current_weight](VertexId v) -> uint64_t {
      return current_weight.empty() ? 1 : current_weight[v];
    };
    std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
      if (weight_of(a) != weight_of(b)) return weight_of(a) > weight_of(b);
      return a < b;
    });
    const double f = options.fm.target_left_fraction;
    uint64_t load[2] = {0, 0};
    for (VertexId v : order) {
      // Fill toward the target ratio: pick the side furthest below target.
      const double deficit0 =
          f - static_cast<double>(load[0]) /
                  std::max<double>(1.0, static_cast<double>(load[0] + load[1]));
      const int8_t target = deficit0 >= 0 ? 0 : 1;
      side[v] = target;
      load[static_cast<size_t>(target)] += weight_of(v);
    }
    FmRefineBisection(coarsest, current_weight, options.fm, &side);
  }

  // --- Uncoarsening: project up, refine at each level ---
  for (size_t level = hierarchy.size(); level-- > 0;) {
    const CoarseLevel& coarse = hierarchy[level].coarse;
    const BipartiteGraph& fine_graph =
        level == 0 ? graph : hierarchy[level - 1].coarse.graph;
    const std::vector<uint32_t>& fine_weight =
        level == 0 ? weight
                   : hierarchy[level - 1].coarse.vertex_weight;
    std::vector<int8_t> fine_side(fine_graph.num_data());
    for (VertexId v = 0; v < fine_graph.num_data(); ++v) {
      fine_side[v] = side[coarse.fine_to_coarse[v]];
    }
    FmRefineBisection(fine_graph, fine_weight, options.fm, &fine_side);
    side = std::move(fine_side);
  }
  return side;
}

class MultilevelPartitioner : public Partitioner {
 public:
  explicit MultilevelPartitioner(const MultilevelOptions& options)
      : options_(options) {}

  std::string name() const override { return "Multilevel"; }

  Result<std::vector<BucketId>> Partition(const BipartiteGraph& graph,
                                          BucketId k, ThreadPool*) override {
    if (k < 2) return Status::InvalidArgument("k must be ≥ 2");
    std::vector<BucketId> assignment(graph.num_data(), 0);
    uint64_t peak_memory = 0;
    // Recursive bisection over leaf ranges [lo, hi), like the SHP driver:
    // bucket id = first leaf of the subtree.
    Status st = Bisect(graph, {}, &assignment, 0, k, &peak_memory);
    if (!st.ok()) return st;
    return assignment;
  }

 private:
  Status Bisect(const BipartiteGraph& graph,
                const std::vector<uint32_t>& weight,
                std::vector<BucketId>* assignment, BucketId lo, BucketId hi,
                uint64_t* peak_memory) const {
    if (hi - lo <= 1) return Status::Ok();
    // Split leaves: left gets ceil(half) so sizes differ by ≤ 1.
    const BucketId mid = lo + (hi - lo + 1) / 2;

    MultilevelOptions options = options_;
    // Uneven leaf counts (k not a power of two) need an uneven weight split.
    options.fm.target_left_fraction =
        static_cast<double>(mid - lo) / static_cast<double>(hi - lo);
    Result<std::vector<int8_t>> sides =
        MultilevelBisect(graph, weight, options, peak_memory);
    if (!sides.ok()) return sides.status();

    // Route side 0 -> [lo, mid), side 1 -> [mid, hi); recurse on induced
    // subgraphs.
    std::vector<bool> in_left(graph.num_data());
    for (VertexId v = 0; v < graph.num_data(); ++v) {
      in_left[v] = sides.value()[v] == 0;
    }
    for (int half = 0; half < 2; ++half) {
      std::vector<bool> include(graph.num_data());
      for (VertexId v = 0; v < graph.num_data(); ++v) {
        include[v] = in_left[v] == (half == 0);
      }
      InducedSubgraph sub = BuildInducedSubgraph(graph, include);
      const BucketId sub_lo = half == 0 ? lo : mid;
      const BucketId sub_hi = half == 0 ? mid : hi;
      // Tag this half's vertices with the subtree's first leaf.
      for (VertexId v : sub.data_to_parent) (*assignment)[v] = sub_lo;
      if (sub_hi - sub_lo > 1) {
        std::vector<BucketId> sub_assignment(sub.graph.num_data(), 0);
        SHP_RETURN_IF_ERROR(Bisect(sub.graph, {}, &sub_assignment, sub_lo,
                                   sub_hi, peak_memory));
        for (VertexId sv = 0; sv < sub.graph.num_data(); ++sv) {
          (*assignment)[sub.data_to_parent[sv]] = sub_assignment[sv];
        }
      }
    }
    return Status::Ok();
  }

  MultilevelOptions options_;
};

}  // namespace

std::unique_ptr<Partitioner> MakeMultilevelPartitioner(
    const MultilevelOptions& options) {
  return std::make_unique<MultilevelPartitioner>(options);
}

uint64_t EstimateMultilevelMemory(const BipartiteGraph& graph,
                                  const MultilevelOptions& options) {
  MultilevelOptions trial = options;
  trial.memory_budget_bytes = 0;  // measure, don't fail
  uint64_t peak = 0;
  std::vector<int8_t> unused_result_storage;
  Result<std::vector<int8_t>> sides =
      MultilevelBisect(graph, {}, trial, &peak);
  (void)sides;
  return peak;
}

}  // namespace shp
