// HDRF (High-Degree Replicated First, Petroni et al., CIKM'15) adapted to
// the paper's vertex-placement objective, as a one-pass streaming baseline
// for the quality-comparison tables.
//
// The original HDRF is an *edge* partitioner: each arriving edge is placed
// on the machine where the endpoint replicas already are, weighting
// endpoints by partial degree so that high-degree vertices get replicated
// and low-degree vertices stay whole. Here the stream is the data-vertex
// sequence of the bipartite hypergraph and the replicas are hyperedge
// (query) bucket sets: data vertex v goes to the bucket b maximizing
//
//   score(b) = Σ_{q ∈ N(v), b ∈ touched(q)} θ(q)
//              + λ · (maxload − load(b)) / (1 + maxload − minload)
//
// with θ(q) = 1 + remaining(q)/deg(q) — hyperedges with many still-unplaced
// pins carry more weight, since co-locating with them anchors future
// placements (the vertex-placement mirror of HDRF's partial-degree rule).
// Buckets at the (1+ε)·n/k capacity cap are skipped; ties break to the
// lowest bucket id, so the result is deterministic.
//
// One pass, O(|N(v)|·k) per vertex, and the only state is the per-query
// touched-bucket bitmask (⌈k/64⌉ words per query) plus bucket loads — no
// adjacency is materialized, so it runs unchanged over hybrid (spilled)
// graphs from the streaming ingest.
#pragma once

#include <memory>

#include "core/shp.h"

namespace shp {

struct StreamingHdrfOptions {
  double lambda = 1.1;    ///< balance-term weight (paper's λ)
  double epsilon = 0.05;  ///< capacity slack: cap = ceil((1+ε)·n/k)
};

std::unique_ptr<Partitioner> MakeStreamingHdrf(
    const StreamingHdrfOptions& options = {});

}  // namespace shp
