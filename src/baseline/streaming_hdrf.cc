#include "baseline/streaming_hdrf.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace shp {

namespace {

class StreamingHdrf : public Partitioner {
 public:
  explicit StreamingHdrf(const StreamingHdrfOptions& options)
      : options_(options) {}

  std::string name() const override { return "HDRF-stream"; }

  Result<std::vector<BucketId>> Partition(const BipartiteGraph& graph,
                                          BucketId k, ThreadPool*) override {
    if (k < 1) return Status::InvalidArgument("k must be ≥ 1");
    const VertexId n = graph.num_data();
    const VertexId nq = graph.num_queries();
    const size_t words = (static_cast<size_t>(k) + 63) / 64;
    std::vector<uint64_t> touched(static_cast<size_t>(nq) * words, 0);
    std::vector<uint32_t> placed(nq, 0);
    std::vector<uint64_t> loads(k, 0);
    const uint64_t cap = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               std::ceil((1.0 + options_.epsilon) * n / k)));
    std::vector<BucketId> assignment(n);
    std::vector<double> score(k);

    for (VertexId v = 0; v < n; ++v) {
      auto queries = graph.DataNeighbors(v);
      // Balance term first, then co-location affinity on top.
      const uint64_t max_load = *std::max_element(loads.begin(), loads.end());
      const uint64_t min_load = *std::min_element(loads.begin(), loads.end());
      const double denom = 1.0 + static_cast<double>(max_load - min_load);
      for (BucketId b = 0; b < k; ++b) {
        score[b] =
            options_.lambda * static_cast<double>(max_load - loads[b]) / denom;
      }
      for (VertexId q : queries) {
        const double deg = static_cast<double>(graph.QueryDegree(q));
        const double remaining = deg - static_cast<double>(placed[q]);
        const double theta = 1.0 + remaining / deg;
        const uint64_t* mask = touched.data() + static_cast<size_t>(q) * words;
        for (size_t w = 0; w < words; ++w) {
          uint64_t bits = mask[w];
          while (bits != 0) {
            const int bit = __builtin_ctzll(bits);
            bits &= bits - 1;
            score[w * 64 + static_cast<size_t>(bit)] += theta;
          }
        }
      }
      // Strict > keeps the lowest bucket id on ties → deterministic pass.
      BucketId best = -1;
      double best_score = 0.0;
      for (BucketId b = 0; b < k; ++b) {
        if (loads[b] >= cap) continue;
        if (best < 0 || score[b] > best_score) {
          best = b;
          best_score = score[b];
        }
      }
      if (best < 0) {  // every bucket at cap: overflow to the least loaded
        best = 0;
        for (BucketId b = 1; b < k; ++b) {
          if (loads[b] < loads[best]) best = b;
        }
      }
      assignment[v] = best;
      ++loads[best];
      for (VertexId q : queries) {
        ++placed[q];
        touched[static_cast<size_t>(q) * words +
                static_cast<size_t>(best) / 64] |=
            uint64_t{1} << (static_cast<size_t>(best) % 64);
      }
    }
    return assignment;
  }

 private:
  StreamingHdrfOptions options_;
};

}  // namespace

std::unique_ptr<Partitioner> MakeStreamingHdrf(
    const StreamingHdrfOptions& options) {
  return std::make_unique<StreamingHdrf>(options);
}

}  // namespace shp
