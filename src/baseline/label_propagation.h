// Size-constrained label propagation partitioner.
//
// A lightweight distributed-style baseline: every data vertex repeatedly
// adopts the bucket that the plurality of its co-query neighbors occupy,
// subject to bucket capacities. This is the technique used for partitioning
// in several large-scale systems and as the coarsening engine of modern
// multilevel partitioners; it converges fast but has no objective-aware
// tie-breaking, so SHP should dominate it on fanout.
#pragma once

#include <memory>

#include "core/shp.h"

namespace shp {

struct LabelPropagationOptions {
  uint32_t max_iterations = 20;
  double epsilon = 0.05;
  uint64_t seed = 17;
};

std::unique_ptr<Partitioner> MakeLabelPropagation(
    const LabelPropagationOptions& options = {});

}  // namespace shp
