#include "baseline/coarsener.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/rng.h"
#include "graph/graph_builder.h"

namespace shp {

CoarseLevel CoarsenOnce(const BipartiteGraph& graph,
                        const std::vector<uint32_t>& fine_weight,
                        const CoarsenOptions& options) {
  const VertexId n = graph.num_data();
  const WeightedGraph clique = BuildCliqueNet(graph, options.clique);

  // Heavy-edge matching in randomized vertex order.
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(options.seed);
  std::shuffle(order.begin(), order.end(), rng);

  std::vector<VertexId> match(n, kInvalidVertex);
  for (VertexId u : order) {
    if (match[u] != kInvalidVertex) continue;
    VertexId best = kInvalidVertex;
    uint32_t best_weight = 0;
    for (uint64_t e = clique.offsets[u]; e < clique.offsets[u + 1]; ++e) {
      const VertexId v = clique.adjacency[e];
      if (v == u || match[v] != kInvalidVertex) continue;
      if (clique.weights[e] > best_weight ||
          (clique.weights[e] == best_weight && best != kInvalidVertex &&
           v < best)) {
        best = v;
        best_weight = clique.weights[e];
      }
    }
    if (best != kInvalidVertex) {
      match[u] = best;
      match[best] = u;
    } else {
      match[u] = u;  // stays single
    }
  }

  CoarseLevel level;
  level.fine_to_coarse.assign(n, kInvalidVertex);
  VertexId next_coarse = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (level.fine_to_coarse[v] != kInvalidVertex) continue;
    level.fine_to_coarse[v] = next_coarse;
    if (match[v] != v && match[v] != kInvalidVertex) {
      level.fine_to_coarse[match[v]] = next_coarse;
    }
    ++next_coarse;
  }

  level.vertex_weight.assign(next_coarse, 0);
  for (VertexId v = 0; v < n; ++v) {
    const uint32_t w = fine_weight.empty() ? 1 : fine_weight[v];
    level.vertex_weight[level.fine_to_coarse[v]] += w;
  }

  GraphBuilder builder(graph.num_queries(), next_coarse);
  for (VertexId q = 0; q < graph.num_queries(); ++q) {
    for (VertexId v : graph.QueryNeighbors(q)) {
      builder.AddEdge(q, level.fine_to_coarse[v]);
    }
  }
  GraphBuilder::Options build_options;
  build_options.drop_trivial_queries = true;  // collapsed hyperedges are inert
  level.graph = builder.Build(build_options);

  level.memory_bytes = level.graph.MemoryBytes() + clique.MemoryBytes() +
                       level.fine_to_coarse.size() * sizeof(VertexId) +
                       level.vertex_weight.size() * sizeof(uint32_t);
  // Un-sampled accounting: every query of the *input* level expands into
  // d(d-1)/2 weighted pairs at 12 bytes (two endpoints + weight).
  uint64_t full_pairs = 0;
  for (VertexId q = 0; q < graph.num_queries(); ++q) {
    const uint64_t d = graph.QueryDegree(q);
    full_pairs += d * (d - 1) / 2;
  }
  level.modeled_full_bytes =
      graph.MemoryBytes() + full_pairs * 12 +
      level.fine_to_coarse.size() * sizeof(VertexId);
  return level;
}

}  // namespace shp
