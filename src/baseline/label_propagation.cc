#include "baseline/label_propagation.h"

#include <algorithm>
#include <unordered_map>

#include "common/rng.h"
#include "core/move_topology.h"
#include "core/partition.h"

namespace shp {

namespace {

class LabelPropagationPartitioner : public Partitioner {
 public:
  explicit LabelPropagationPartitioner(const LabelPropagationOptions& options)
      : options_(options) {}

  std::string name() const override { return "LabelProp"; }

  Result<std::vector<BucketId>> Partition(const BipartiteGraph& graph,
                                          BucketId k, ThreadPool*) override {
    if (k < 2) return Status::InvalidArgument("k must be ≥ 2");
    const VertexId n = graph.num_data();
    ::shp::Partition partition = ::shp::Partition::Random(n, k, options_.seed);
    const uint64_t capacity = MoveTopology::BucketCapacity(
        n, k, /*leaves=*/1, options_.epsilon);

    std::unordered_map<BucketId, uint32_t> votes;
    for (uint32_t iter = 0; iter < options_.max_iterations; ++iter) {
      uint64_t moves = 0;
      for (VertexId v = 0; v < n; ++v) {
        votes.clear();
        // Vote: buckets of all co-query neighbors, weighted by co-occurrence.
        for (VertexId q : graph.DataNeighbors(v)) {
          for (VertexId u : graph.QueryNeighbors(q)) {
            if (u == v) continue;
            ++votes[partition.bucket_of(u)];
          }
        }
        const BucketId from = partition.bucket_of(v);
        BucketId best = from;
        uint32_t best_votes = votes.count(from) ? votes[from] : 0;
        for (const auto& [bucket, count] : votes) {
          const bool better =
              count > best_votes ||
              // Deterministic tie-break toward the smaller bucket id.
              (count == best_votes && bucket < best);
          if (better &&
              (bucket == from ||
               partition.bucket_size(bucket) < capacity)) {
            best = bucket;
            best_votes = count;
          }
        }
        if (best != from) {
          partition.Move(v, best);
          ++moves;
        }
      }
      if (moves == 0) break;
    }
    return partition.assignment();
  }

 private:
  LabelPropagationOptions options_;
};

}  // namespace

std::unique_ptr<Partitioner> MakeLabelPropagation(
    const LabelPropagationOptions& options) {
  return std::make_unique<LabelPropagationPartitioner>(options);
}

}  // namespace shp
