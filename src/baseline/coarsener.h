// Heavy-edge-matching coarsening of a hypergraph — one level of the
// multilevel scheme used by hMetis/Zoltan/Parkway/Mondriaan (the family the
// paper compares against, §2 "multi-level coarse/refine technique").
//
// Matching runs on the clique-net expansion (heaviest co-query weight
// first); matched data-vertex pairs merge into coarse vertices carrying
// summed weights, and hyperedges re-point at coarse ids with duplicates and
// single-vertex hyperedges dropped.
#pragma once

#include <cstdint>
#include <vector>

#include "baseline/clique_net.h"
#include "graph/bipartite_graph.h"

namespace shp {

struct CoarsenOptions {
  CliqueNetOptions clique;
  uint64_t seed = 31;
};

struct CoarseLevel {
  BipartiteGraph graph;
  /// fine data id -> coarse data id (size = fine num_data).
  std::vector<VertexId> fine_to_coarse;
  /// Merged unit-vertex count per coarse vertex (size = coarse num_data).
  std::vector<uint32_t> vertex_weight;
  /// Bytes consumed by this level as implemented (sampled clique-net).
  size_t memory_bytes = 0;
  /// Bytes a faithful un-sampled multilevel hypergraph partitioner would
  /// need at this level: full clique expansion Σ_q d(d-1)/2 pairs plus the
  /// hypergraph itself. This is the quantity whose growth makes the
  /// Zoltan/Parkway family fail on dense instances (paper §2/4.2.3); the
  /// Table 3 bench charges it against the scaled memory budget.
  size_t modeled_full_bytes = 0;
};

/// One coarsening level. `fine_weight` carries the current vertex weights
/// (pass {} at the finest level for all-ones).
CoarseLevel CoarsenOnce(const BipartiteGraph& graph,
                        const std::vector<uint32_t>& fine_weight,
                        const CoarsenOptions& options);

}  // namespace shp
