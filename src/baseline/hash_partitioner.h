// Deterministic hash (modulo) sharding — what production systems do before
// adopting graph-aware placement; equivalent in expectation to random.
#pragma once

#include <memory>

#include "core/shp.h"

namespace shp {

std::unique_ptr<Partitioner> MakeHashPartitioner(uint64_t salt = 0);

}  // namespace shp
