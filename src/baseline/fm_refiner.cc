#include "baseline/fm_refiner.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace shp {

namespace {

/// Bucket-list priority structure over integer gains in
/// [-max_gain, +max_gain]; supports O(1) push/update and O(range) max pop.
class GainBuckets {
 public:
  GainBuckets(VertexId n, int64_t max_gain)
      : max_gain_(max_gain),
        buckets_(static_cast<size_t>(2 * max_gain + 1)),
        where_(n, {-1, 0}),
        current_max_(-max_gain) {}

  void Insert(VertexId v, int64_t gain) {
    const int64_t idx = Clamp(gain);
    auto& bucket = buckets_[static_cast<size_t>(idx + max_gain_)];
    where_[v] = {idx, bucket.size()};
    bucket.push_back(v);
    current_max_ = std::max(current_max_, idx);
  }

  void Remove(VertexId v) {
    const auto [idx, pos] = where_[v];
    if (idx == kAbsent) return;
    auto& bucket = buckets_[static_cast<size_t>(idx + max_gain_)];
    // Swap-remove, fixing the moved vertex's position.
    bucket[pos] = bucket.back();
    where_[bucket[pos]].second = pos;
    bucket.pop_back();
    where_[v] = {kAbsent, 0};
  }

  void Update(VertexId v, int64_t gain) {
    Remove(v);
    Insert(v, gain);
  }

  /// Highest-gain vertex satisfying `movable`, or kInvalidVertex.
  template <typename Pred>
  VertexId PopBest(const Pred& movable) {
    while (current_max_ >= -max_gain_) {
      auto& bucket = buckets_[static_cast<size_t>(current_max_ + max_gain_)];
      // Scan the top bucket for a movable vertex.
      for (size_t i = bucket.size(); i-- > 0;) {
        const VertexId v = bucket[i];
        if (movable(v)) {
          Remove(v);
          return v;
        }
      }
      --current_max_;
    }
    return kInvalidVertex;
  }

 private:
  static constexpr int64_t kAbsent = std::numeric_limits<int64_t>::min();

  int64_t Clamp(int64_t gain) const {
    return std::clamp(gain, -max_gain_, max_gain_);
  }

  int64_t max_gain_;
  std::vector<std::vector<VertexId>> buckets_;
  std::vector<std::pair<int64_t, size_t>> where_;  // (gain idx, position)
  int64_t current_max_;
};

}  // namespace

int64_t FmRefineBisection(const BipartiteGraph& graph,
                          const std::vector<uint32_t>& weight,
                          const FmOptions& options,
                          std::vector<int8_t>* side_ptr) {
  std::vector<int8_t>& side = *side_ptr;
  const VertexId n = graph.num_data();
  SHP_CHECK_EQ(side.size(), n);

  auto weight_of = [&weight](VertexId v) -> uint64_t {
    return weight.empty() ? 1 : weight[v];
  };
  uint64_t total_weight = 0;
  uint64_t side_weight[2] = {0, 0};
  for (VertexId v = 0; v < n; ++v) {
    total_weight += weight_of(v);
    side_weight[static_cast<size_t>(side[v])] += weight_of(v);
  }
  const double f = std::clamp(options.target_left_fraction, 0.05, 0.95);
  const uint64_t max_side_limit[2] = {
      static_cast<uint64_t>((1.0 + options.epsilon) *
                            static_cast<double>(total_weight) * f),
      static_cast<uint64_t>((1.0 + options.epsilon) *
                            static_cast<double>(total_weight) * (1.0 - f))};

  // Per-query side counts.
  std::vector<uint32_t> count0(graph.num_queries(), 0);
  std::vector<uint32_t> count1(graph.num_queries(), 0);
  for (VertexId q = 0; q < graph.num_queries(); ++q) {
    for (VertexId v : graph.QueryNeighbors(q)) {
      (side[v] == 0 ? count0[q] : count1[q])++;
    }
  }

  auto gain_of = [&](VertexId v) -> int64_t {
    int64_t gain = 0;
    for (VertexId q : graph.DataNeighbors(v)) {
      const uint32_t here = side[v] == 0 ? count0[q] : count1[q];
      const uint32_t there = side[v] == 0 ? count1[q] : count0[q];
      if (here == 1) ++gain;    // vacates this side: fanout -1
      if (there == 0) --gain;   // opens the other side: fanout +1
    }
    return gain;
  };

  const int64_t max_gain =
      static_cast<int64_t>(std::max<EdgeIndex>(1, graph.MaxDataDegree()));
  int64_t total_improvement = 0;

  for (uint32_t pass = 0; pass < options.max_passes; ++pass) {
    GainBuckets buckets(n, max_gain);
    std::vector<uint8_t> locked(n, 0);
    for (VertexId v = 0; v < n; ++v) buckets.Insert(v, gain_of(v));

    struct MoveRecord {
      VertexId vertex;
      int64_t gain;
    };
    std::vector<MoveRecord> sequence;
    int64_t running = 0, best_running = 0;
    size_t best_prefix = 0;
    uint32_t stall = 0;

    for (;;) {
      const VertexId v = buckets.PopBest([&](VertexId u) {
        const int8_t target = static_cast<int8_t>(1 - side[u]);
        return !locked[u] &&
               side_weight[static_cast<size_t>(target)] + weight_of(u) <=
                   max_side_limit[static_cast<size_t>(target)];
      });
      if (v == kInvalidVertex) break;
      const int64_t gain = gain_of(v);
      const int8_t from = side[v];
      const int8_t to = static_cast<int8_t>(1 - from);

      // Execute the move and update query counts + neighbor gains.
      side[v] = to;
      side_weight[static_cast<size_t>(from)] -= weight_of(v);
      side_weight[static_cast<size_t>(to)] += weight_of(v);
      locked[v] = 1;
      for (VertexId q : graph.DataNeighbors(v)) {
        (from == 0 ? count0[q] : count1[q])--;
        (to == 0 ? count0[q] : count1[q])++;
        for (VertexId u : graph.QueryNeighbors(q)) {
          if (!locked[u]) buckets.Update(u, gain_of(u));
        }
      }

      sequence.push_back({v, gain});
      running += gain;
      if (running > best_running) {
        best_running = running;
        best_prefix = sequence.size();
        stall = 0;
      } else if (options.stall_limit > 0 &&
                 ++stall >= options.stall_limit) {
        break;
      }
    }

    // Roll back everything past the best prefix.
    for (size_t i = sequence.size(); i-- > best_prefix;) {
      const VertexId v = sequence[i].vertex;
      const int8_t from = side[v];
      const int8_t to = static_cast<int8_t>(1 - from);
      side[v] = to;
      side_weight[static_cast<size_t>(from)] -= weight_of(v);
      side_weight[static_cast<size_t>(to)] += weight_of(v);
      for (VertexId q : graph.DataNeighbors(v)) {
        (from == 0 ? count0[q] : count1[q])--;
        (to == 0 ? count0[q] : count1[q])++;
      }
    }

    total_improvement += best_running;
    if (best_running == 0) break;  // pass converged
  }
  return total_improvement;
}

}  // namespace shp
