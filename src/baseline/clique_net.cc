#include "baseline/clique_net.h"

#include <algorithm>

#include "common/rng.h"

namespace shp {

WeightedGraph BuildCliqueNet(const BipartiteGraph& graph,
                             const CliqueNetOptions& options) {
  // Accumulate weighted pairs (u < v), then fold duplicates.
  std::vector<std::pair<uint64_t, uint32_t>> pairs;  // (packed uv, weight)
  auto pack = [](VertexId u, VertexId v) {
    if (u > v) std::swap(u, v);
    return (static_cast<uint64_t>(u) << 32) | v;
  };

  for (VertexId q = 0; q < graph.num_queries(); ++q) {
    auto nbrs = graph.QueryNeighbors(q);
    const size_t d = nbrs.size();
    if (d < 2) continue;
    if (d <= options.max_clique_degree) {
      for (size_t i = 0; i < d; ++i) {
        for (size_t j = i + 1; j < d; ++j) {
          pairs.emplace_back(pack(nbrs[i], nbrs[j]), 1);
        }
      }
    } else {
      // Sampled expansion: ring (connectivity) + random chords, with edge
      // weight scaled so total expanded weight ≈ d(d-1)/2.
      const uint64_t kept = 2 * d;  // ring d + chords d
      const double full = static_cast<double>(d) * (d - 1) / 2.0;
      const uint32_t weight = static_cast<uint32_t>(
          std::max(1.0, full / static_cast<double>(kept)));
      for (size_t i = 0; i < d; ++i) {
        pairs.emplace_back(pack(nbrs[i], nbrs[(i + 1) % d]), weight);
        const size_t other = HashToBounded(options.seed, q, i, d);
        if (other != i) {
          pairs.emplace_back(pack(nbrs[i], nbrs[other]), weight);
        }
      }
    }
  }

  std::sort(pairs.begin(), pairs.end());
  // Fold duplicate pairs, summing weights.
  size_t write = 0;
  for (size_t read = 0; read < pairs.size(); ++read) {
    if (write > 0 && pairs[write - 1].first == pairs[read].first) {
      pairs[write - 1].second += pairs[read].second;
    } else {
      pairs[write++] = pairs[read];
    }
  }
  pairs.resize(write);

  // Symmetric CSR.
  WeightedGraph out;
  const VertexId n = graph.num_data();
  out.offsets.assign(n + 1, 0);
  for (const auto& [key, w] : pairs) {
    ++out.offsets[(key >> 32) + 1];
    ++out.offsets[(key & 0xffffffffULL) + 1];
  }
  for (size_t i = 1; i < out.offsets.size(); ++i) {
    out.offsets[i] += out.offsets[i - 1];
  }
  out.adjacency.resize(out.offsets.back());
  out.weights.resize(out.offsets.back());
  std::vector<uint64_t> cursor(out.offsets.begin(), out.offsets.end() - 1);
  for (const auto& [key, w] : pairs) {
    const VertexId u = static_cast<VertexId>(key >> 32);
    const VertexId v = static_cast<VertexId>(key & 0xffffffffULL);
    out.adjacency[cursor[u]] = v;
    out.weights[cursor[u]++] = w;
    out.adjacency[cursor[v]] = u;
    out.weights[cursor[v]++] = w;
  }
  return out;
}

}  // namespace shp
