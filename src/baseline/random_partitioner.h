// Uniform random assignment — the "random sharding" reference point of the
// paper's storage experiments (Fig. 4: random sharding ≈ fanout 40 on 40
// servers) and the floor every real partitioner must beat.
#pragma once

#include <memory>

#include "core/shp.h"

namespace shp {

struct RandomPartitionerOptions {
  uint64_t seed = 99;
};

std::unique_ptr<Partitioner> MakeRandomPartitioner(
    const RandomPartitionerOptions& options = {});

}  // namespace shp
