// Multilevel hypergraph partitioner: the in-repo comparator standing in for
// Zoltan / Parkway / Mondriaan / hMetis (all unavailable offline; see
// DESIGN.md substitution 3). Classic three phases per bisection:
//
//   coarsen   — heavy-edge matching on the clique-net expansion until the
//               hypergraph is small,
//   initial   — balanced greedy split of the coarsest level + FM,
//   uncoarsen — project the bisection up the hierarchy, FM-refining at
//               every level.
//
// k-way partitions come from recursive bisection over induced subgraphs.
//
// The whole coarsening hierarchy must be resident, which is precisely the
// scalability wall the paper identifies for this family ("even the coarsest
// hypergraph might not fit the memory of a single machine", §2). The
// `memory_budget_bytes` option models that: a run whose hierarchy exceeds
// the budget fails with StatusCode::kOutOfRange, which the Table 3 bench
// reports the way the paper reports Zoltan/Parkway failures.
#pragma once

#include <cstdint>
#include <memory>

#include "baseline/coarsener.h"
#include "baseline/fm_refiner.h"
#include "core/shp.h"

namespace shp {

struct MultilevelOptions {
  /// Stop coarsening when the hypergraph has at most this many data
  /// vertices (or coarsening stalls).
  VertexId coarsest_size = 200;
  uint32_t max_levels = 40;
  double epsilon = 0.05;
  FmOptions fm;
  CoarsenOptions coarsen;
  uint64_t seed = 41;
  /// 0 = unlimited. Otherwise the peak hierarchy footprint allowed.
  uint64_t memory_budget_bytes = 0;
  /// Charge the modeled un-sampled expansion (Zoltan/Parkway-faithful
  /// accounting) against the budget instead of the sampled footprint this
  /// implementation actually allocates.
  bool full_expansion_accounting = true;
};

std::unique_ptr<Partitioner> MakeMultilevelPartitioner(
    const MultilevelOptions& options = {});

/// Peak memory the hierarchy would need (measured during a trial coarsen);
/// exposed for the scalability experiments.
uint64_t EstimateMultilevelMemory(const BipartiteGraph& graph,
                                  const MultilevelOptions& options);

}  // namespace shp
