// DBH (Degree-Based Hashing, Xie et al., NIPS'14) adapted to vertex
// placement, as the cheapest one-pass streaming baseline.
//
// The original DBH assigns each edge by hashing its lower-degree endpoint,
// so low-degree vertices keep their edges together while high-degree hubs
// get cut. The vertex-placement mirror: data vertex v is hashed through its
// minimum-degree incident query (lowest query id on ties) — queries with
// few pins thus pull their whole hyperedge into one bucket, while hub
// queries spread. Vertices whose target bucket is at the (1+ε)·n/k
// capacity cap fall back to the least-loaded bucket (lowest id on ties),
// keeping the pass deterministic.
//
// State is just the bucket loads; adjacency is consumed through the
// accessors, so it runs unchanged over hybrid (spilled) graphs.
#pragma once

#include <memory>

#include "core/shp.h"

namespace shp {

struct StreamingDbhOptions {
  uint64_t salt = 0;      ///< hash salt (varies the placement)
  double epsilon = 0.05;  ///< capacity slack: cap = ceil((1+ε)·n/k)
};

std::unique_ptr<Partitioner> MakeStreamingDbh(
    const StreamingDbhOptions& options = {});

}  // namespace shp
