// Quickstart: build a hypergraph, partition it with SHP-2, evaluate fanout.
//
//   ./quickstart [--k=8] [--p=0.5] [--hgr=path/to/file.hgr]
//
// Without --hgr a small synthetic social hypergraph is generated, so the
// example runs out of the box.
#include <cstdio>

#include "common/flags.h"
#include "core/shp.h"
#include "graph/gen_social.h"
#include "graph/io_hgr.h"

int main(int argc, char** argv) {
  using namespace shp;
  auto flags = Flags::Parse(argc, argv).value();
  const BucketId k = static_cast<BucketId>(flags.GetInt("k", 8));
  const double p = flags.GetDouble("p", 0.5);

  // 1. Get a hypergraph: from an .hgr file or synthesized.
  BipartiteGraph graph;
  if (flags.Has("hgr")) {
    auto loaded = ReadHgr(flags.GetString("hgr", ""));
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to read input: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    graph = std::move(loaded).value();
  } else {
    SocialGraphConfig config;
    config.num_users = 20000;
    config.avg_degree = 15;
    graph = GenerateSocialGraph(config);
  }
  std::printf("hypergraph: |Q|=%u |D|=%u |E|=%llu\n", graph.num_queries(),
              graph.num_data(),
              static_cast<unsigned long long>(graph.num_edges()));

  // 2. Partition with SHP-2 (recursive bisection, the open-sourced variant).
  RecursiveOptions options;
  options.k = k;
  options.p = p;         // fanout probability (paper default 0.5)
  options.epsilon = 0.05;  // allowed imbalance
  const RecursiveResult result = RecursivePartitioner(options).Run(graph);

  // 3. Evaluate.
  const PartitionSummary summary =
      SummarizePartition(graph, result.assignment, k, p);
  const double random_fanout = AverageFanout(
      graph, Partition::BalancedRandom(graph.num_data(), k, 1).assignment());

  std::printf("k=%d p=%.2f levels=%u\n", k, p, result.levels_run);
  std::printf("fanout:      %.3f   (random baseline: %.3f)\n", summary.fanout,
              random_fanout);
  std::printf("p-fanout:    %.3f\n", summary.p_fanout);
  std::printf("imbalance:   %.4f  (epsilon: %.2f)\n", summary.imbalance,
              options.epsilon);
  std::printf("improvement: %.1f%% fewer server requests per query\n",
              (1.0 - summary.fanout / random_fanout) * 100.0);
  return 0;
}
