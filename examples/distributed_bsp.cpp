// Distributed execution demo: run SHP-2 on the simulated Giraph cluster and
// inspect what the paper's Fig. 3 pipeline actually does — supersteps,
// message volumes, the Giraph combining/delta optimizations, and cost-model
// cluster time for different machine counts.
//
//   ./distributed_bsp [--users=15000] [--k=32]
#include <cstdio>

#include "common/flags.h"
#include "common/table.h"
#include "core/shp.h"
#include "engine/distributed_shp.h"
#include "graph/gen_social.h"

int main(int argc, char** argv) {
  using namespace shp;
  auto flags = Flags::Parse(argc, argv).value();
  const VertexId users = static_cast<VertexId>(flags.GetInt("users", 15000));
  const BucketId k = static_cast<BucketId>(flags.GetInt("k", 32));

  SocialGraphConfig config;
  config.num_users = users;
  config.avg_degree = 12;
  const BipartiteGraph graph = GenerateSocialGraph(config);
  std::printf("hypergraph: |D|=%u |E|=%llu, k=%d\n\n", graph.num_data(),
              static_cast<unsigned long long>(graph.num_edges()), k);

  TablePrinter table({"machines", "supersteps", "remote msgs", "remote MB",
                      "sim wall (s)", "machine-sec", "fanout"});
  for (int machines : {2, 4, 8, 16}) {
    DistributedShpOptions options;
    options.bsp.num_workers = machines;
    options.recursive = true;
    const DistributedShpReport report =
        DistributedShp(options).Run(graph, k);
    table.AddRow(
        {std::to_string(machines),
         std::to_string(report.num_supersteps),
         TablePrinter::FmtCount(
             static_cast<long long>(report.total_traffic.remote_messages)),
         TablePrinter::Fmt(report.total_traffic.remote_bytes / 1e6, 2),
         TablePrinter::Fmt(report.simulated.seconds, 3),
         TablePrinter::Fmt(report.simulated.machine_seconds, 3),
         TablePrinter::Fmt(AverageFanout(graph, report.assignment), 3)});
  }
  table.Print();

  // Drill into the first iteration's four supersteps on 4 machines.
  DistributedShpOptions options;
  options.bsp.num_workers = 4;
  options.recursive = true;
  const DistributedShpReport report = DistributedShp(options).Run(graph, k);
  std::printf("\nfirst iteration, superstep by superstep (Fig. 3):\n");
  TablePrinter steps({"superstep", "remote msgs", "local msgs", "remote KB",
                      "max work units"});
  for (size_t i = 0; i < 4 && i < report.supersteps.size(); ++i) {
    const SuperstepStats& s = report.supersteps[i];
    steps.AddRow({s.label,
                  TablePrinter::FmtCount(static_cast<long long>(
                      s.traffic.remote_messages)),
                  TablePrinter::FmtCount(static_cast<long long>(
                      s.traffic.local_messages)),
                  TablePrinter::Fmt(s.traffic.remote_bytes / 1e3, 1),
                  TablePrinter::FmtCount(static_cast<long long>(
                      s.MaxWork()))});
  }
  steps.Print();
  std::printf(
      "\nnotes: more machines = less wall time but more communication and "
      "machine-seconds\n(paper Fig. 5b); superstep 2 dominates traffic, "
      "bounded by fanout·|E| (§3.3).\n");
  return 0;
}
