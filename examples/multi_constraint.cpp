// Multi-dimensional balance (paper §5(ii)): storage servers must balance
// several resources at once (record count, storage bytes, read QPS). SHP
// oversamples to c·k buckets balanced on one dimension, then merges to k
// buckets balancing all dimensions.
//
//   ./multi_constraint [--users=15000] [--k=8] [--oversample=8]
#include <cstdio>

#include "common/flags.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/multidim.h"
#include "core/shp.h"
#include "graph/gen_social.h"

int main(int argc, char** argv) {
  using namespace shp;
  auto flags = Flags::Parse(argc, argv).value();
  const VertexId users = static_cast<VertexId>(flags.GetInt("users", 15000));
  const BucketId k = static_cast<BucketId>(flags.GetInt("k", 8));
  const int oversample = static_cast<int>(flags.GetInt("oversample", 8));

  SocialGraphConfig config;
  config.num_users = users;
  config.avg_degree = 12;
  const BipartiteGraph graph = GenerateSocialGraph(config);

  // Three per-record dimensions: count (1), storage bytes (heavy-tailed),
  // read rate (correlated with degree — hot users are read more).
  const int dims = 3;
  std::vector<double> weights(static_cast<size_t>(graph.num_data()) * dims);
  Rng rng(11);
  for (VertexId v = 0; v < graph.num_data(); ++v) {
    weights[v * dims + 0] = 1.0;
    weights[v * dims + 1] = 1.0 + rng.NextExponential() * 9.0;  // bytes
    weights[v * dims + 2] =
        1.0 + static_cast<double>(graph.DataDegree(v));  // read QPS
  }

  MultiDimOptions options;
  options.k = k;
  options.oversample = oversample;
  const MultiDimResult result =
      MultiDimBalancer(options).Run(graph, weights, dims);

  // Compare against plain SHP (balances record count only).
  RecursiveOptions plain;
  plain.k = k;
  const auto plain_assignment =
      RecursivePartitioner(plain).Run(graph).assignment;
  auto imbalance_of = [&](const std::vector<BucketId>& assignment, int d) {
    std::vector<double> load(static_cast<size_t>(k), 0.0);
    double total = 0.0;
    for (VertexId v = 0; v < graph.num_data(); ++v) {
      load[static_cast<size_t>(assignment[v])] += weights[v * dims + d];
      total += weights[v * dims + d];
    }
    double biggest = 0.0;
    for (double x : load) biggest = std::max(biggest, x);
    return biggest / (total / k) - 1.0;
  };

  TablePrinter table({"method", "fanout", "imb(count)", "imb(bytes)",
                      "imb(reads)"});
  const PartitionSummary plain_summary =
      SummarizePartition(graph, plain_assignment, k);
  table.AddRow({"SHP (1-dim)", TablePrinter::Fmt(plain_summary.fanout, 3),
                TablePrinter::Fmt(imbalance_of(plain_assignment, 0), 3),
                TablePrinter::Fmt(imbalance_of(plain_assignment, 1), 3),
                TablePrinter::Fmt(imbalance_of(plain_assignment, 2), 3)});
  const PartitionSummary multi_summary =
      SummarizePartition(graph, result.assignment, k);
  table.AddRow(
      {"SHP + merge (" + std::to_string(oversample) + "x)",
       TablePrinter::Fmt(multi_summary.fanout, 3),
       TablePrinter::Fmt(result.imbalance[0], 3),
       TablePrinter::Fmt(result.imbalance[1], 3),
       TablePrinter::Fmt(result.imbalance[2], 3)});
  table.Print();
  std::printf(
      "\nthe c·k merge trades a little fanout for balance across all "
      "dimensions\n(paper §5(ii): strict multi-dimension balance during "
      "search harms quality).\n");
  return 0;
}
