// Storage sharding end to end — the paper's motivating application (§1,
// §4.2.1): place a social network's data records on servers so multi-get
// queries touch few servers, then measure simulated query latency under
// random vs SHP sharding.
//
//   ./storage_sharding [--servers=40] [--users=30000] [--requests=100000]
#include <cstdio>

#include "common/flags.h"
#include "common/table.h"
#include "core/shp.h"
#include "graph/gen_social.h"
#include "sharding/kv_cluster.h"
#include "sharding/traffic_replay.h"

int main(int argc, char** argv) {
  using namespace shp;
  auto flags = Flags::Parse(argc, argv).value();
  const BucketId servers =
      static_cast<BucketId>(flags.GetInt("servers", 40));
  const VertexId users =
      static_cast<VertexId>(flags.GetInt("users", 30000));

  // The workload: rendering a user's page fetches the user's record plus
  // all friends' records — hyperedge(u) = {u} ∪ friends(u).
  SocialGraphConfig social;
  social.num_users = users;
  social.avg_degree = 40;
  const BipartiteGraph graph = GenerateSocialGraph(social);
  std::printf("social graph: %u users, %llu pins\n", graph.num_data(),
              static_cast<unsigned long long>(graph.num_edges()));

  // Sharding A: random placement (what a hash shard gives you).
  const auto random_assignment =
      Partition::BalancedRandom(graph.num_data(), servers, 7).assignment();
  // Sharding B: SHP-2 fanout minimization.
  RecursiveOptions options;
  options.k = servers;
  const auto shp_assignment = RecursivePartitioner(options).Run(graph)
                                  .assignment;

  // Replay identical traffic against both layouts of a simulated cluster.
  KvClusterConfig cluster_config;
  cluster_config.num_servers = static_cast<uint32_t>(servers);
  ReplayConfig replay;
  replay.num_requests =
      static_cast<uint64_t>(flags.GetInt("requests", 100000));

  const ReplayReport random_report = ReplayTraffic(
      graph, KvClusterSim(cluster_config, random_assignment), replay);
  const ReplayReport shp_report = ReplayTraffic(
      graph, KvClusterSim(cluster_config, shp_assignment), replay);

  TablePrinter table({"sharding", "avg fanout", "avg latency", "p99@f=10"});
  auto p99 = [](const ReplayReport& r, size_t f) {
    return f < r.p99_latency_by_fanout.size() ? r.p99_latency_by_fanout[f]
                                              : 0.0;
  };
  table.AddRow({"random", TablePrinter::Fmt(random_report.average_fanout, 1),
                TablePrinter::Fmt(random_report.average_latency, 3),
                TablePrinter::Fmt(p99(random_report, 10), 3)});
  table.AddRow({"SHP", TablePrinter::Fmt(shp_report.average_fanout, 1),
                TablePrinter::Fmt(shp_report.average_latency, 3),
                TablePrinter::Fmt(p99(shp_report, 10), 3)});
  table.Print();

  std::printf(
      "\nSHP sharding answers the same queries with %.1fx lower average "
      "latency\n(paper reports ~2x at fanout 40 -> 10, plus >50%% in "
      "production; §4.2.1).\n",
      random_report.average_latency /
          std::max(1e-9, shp_report.average_latency));
  return 0;
}
