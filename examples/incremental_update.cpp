// Incremental re-partitioning (paper §5(i)): a live system cannot reshuffle
// every record when the graph changes. This example partitions a social
// graph, grows it by 10% new users and edges, and re-partitions with a
// movement penalty — comparing quality and churn against a full re-run.
//
//   ./incremental_update [--users=20000] [--penalty=0.5]
#include <cstdio>

#include "common/flags.h"
#include "common/table.h"
#include "core/incremental.h"
#include "core/shp.h"
#include "graph/gen_social.h"

int main(int argc, char** argv) {
  using namespace shp;
  auto flags = Flags::Parse(argc, argv).value();
  const VertexId users = static_cast<VertexId>(flags.GetInt("users", 20000));
  const double penalty = flags.GetDouble("penalty", 0.5);
  const BucketId k = 16;

  // Yesterday's graph and its partition.
  SocialGraphConfig config;
  config.num_users = users;
  config.avg_degree = 12;
  const BipartiteGraph old_graph = GenerateSocialGraph(config);
  RecursiveOptions shp2;
  shp2.k = k;
  const auto old_assignment = RecursivePartitioner(shp2).Run(old_graph)
                                  .assignment;

  // Today's graph: 10% more users (same generator, larger n, same seed
  // family keeps the old community structure as a prefix).
  config.num_users = static_cast<VertexId>(users * 1.1);
  const BipartiteGraph new_graph = GenerateSocialGraph(config);
  std::printf("graph grew: %u -> %u users\n", old_graph.num_data(),
              new_graph.num_data());

  // Previous assignment, padded with -1 for new vertices.
  std::vector<BucketId> previous(new_graph.num_data(), -1);
  for (VertexId v = 0; v < old_graph.num_data(); ++v) {
    previous[v] = old_assignment[v];
  }

  TablePrinter table(
      {"strategy", "fanout", "moved existing", "moved %", "imbalance"});
  auto add_row = [&](const std::string& name,
                     const std::vector<BucketId>& assignment) {
    uint64_t moved = 0;
    for (VertexId v = 0; v < old_graph.num_data(); ++v) {
      if (assignment[v] != old_assignment[v]) ++moved;
    }
    const PartitionSummary summary =
        SummarizePartition(new_graph, assignment, k);
    table.AddRow({name, TablePrinter::Fmt(summary.fanout, 3),
                  TablePrinter::FmtCount(static_cast<long long>(moved)),
                  TablePrinter::Fmt(100.0 * moved / old_graph.num_data(), 1),
                  TablePrinter::Fmt(summary.imbalance, 4)});
  };

  // Strategy 1: full re-partition from scratch (max quality, max churn).
  add_row("full re-run",
          RecursivePartitioner(shp2).Run(new_graph).assignment);

  // Strategy 2: incremental with movement penalty + damped probabilities.
  IncrementalOptions inc;
  inc.base.k = k;
  inc.move_penalty = penalty;
  inc.probability_damping = 0.5;
  const IncrementalResult result =
      IncrementalRepartitioner(inc).Repartition(new_graph, previous);
  add_row("incremental", result.shp.assignment);

  // Strategy 3: do nothing (keep old buckets, new vertices least-loaded).
  IncrementalOptions frozen = inc;
  frozen.base.max_iterations = 0;
  add_row("frozen",
          IncrementalRepartitioner(frozen)
              .Repartition(new_graph, previous)
              .shp.assignment);

  table.Print();
  std::printf(
      "\nincremental keeps most records in place (bounded migration) while "
      "recovering\nmost of the fanout quality of a full re-run — paper "
      "§5(i).\n");
  return 0;
}
