// shp_partition — the command-line partitioner, mirroring what the paper's
// open-source release provides: read a hypergraph, partition it, write the
// assignment, report quality.
//
//   ./shp_partition --input=graph.hgr --k=32 --output=assignment.txt
//   ./shp_partition --input=edges.txt --format=unipartite --k=16 \
//       --algo=shp-k --p=0.7 --epsilon=0.03 --seed=7
//
// Formats: hgr (hMetis), bipartite ("query data" per line), unipartite
// ("u v" per line; converted to hyperedge(u) = {u} ∪ N(u)).
// Algorithms: shp-2 (default), shp-r4, shp-k, multilevel, labelprop, random.
#include <cstdio>

#include "baseline/label_propagation.h"
#include "baseline/multilevel.h"
#include "baseline/random_partitioner.h"
#include "common/flags.h"
#include "common/timer.h"
#include "core/shp.h"
#include "graph/io_edgelist.h"
#include "graph/io_hgr.h"
#include "graph/io_partition.h"

namespace {

void PrintUsage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s --input=FILE [--format=hgr|bipartite|unipartite] --k=K\n"
      "          [--output=FILE] [--algo=shp-2|shp-r4|shp-k|multilevel|"
      "labelprop|random]\n"
      "          [--p=0.5] [--epsilon=0.05] [--seed=1] [--iters=N]\n",
      prog);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace shp;
  auto flags = Flags::Parse(argc, argv).value();
  if (!flags.Has("input") || !flags.Has("k")) {
    PrintUsage(argv[0]);
    return 2;
  }
  const std::string input = flags.GetString("input", "");
  const std::string format = flags.GetString("format", "hgr");
  const std::string algo = flags.GetString("algo", "shp-2");
  const BucketId k = static_cast<BucketId>(flags.GetInt("k", 2));
  const double p = flags.GetDouble("p", 0.5);
  const double epsilon = flags.GetDouble("epsilon", 0.05);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  // Load.
  Result<BipartiteGraph> loaded = Status::InvalidArgument("unset");
  if (format == "hgr") {
    loaded = ReadHgr(input);
  } else if (format == "bipartite") {
    loaded = ReadBipartiteEdgeList(input);
  } else if (format == "unipartite") {
    loaded = ReadUnipartiteAsHypergraph(input);
  } else {
    std::fprintf(stderr, "unknown --format=%s\n", format.c_str());
    return 2;
  }
  if (!loaded.ok()) {
    std::fprintf(stderr, "failed to load %s: %s\n", input.c_str(),
                 loaded.status().ToString().c_str());
    return 1;
  }
  const BipartiteGraph graph = std::move(loaded).value();
  std::fprintf(stderr, "loaded %s: |Q|=%u |D|=%u |E|=%llu\n", input.c_str(),
               graph.num_queries(), graph.num_data(),
               static_cast<unsigned long long>(graph.num_edges()));

  // Pick the algorithm.
  std::unique_ptr<Partitioner> partitioner;
  if (algo == "shp-2" || algo == "shp-r4") {
    RecursiveOptions options;
    options.p = p;
    options.epsilon = epsilon;
    options.seed = seed;
    options.branching = algo == "shp-r4" ? 4 : 2;
    if (flags.Has("iters")) {
      options.iterations_per_level =
          static_cast<uint32_t>(flags.GetInt("iters", 20));
    }
    partitioner = MakeShpRecursive(options);
  } else if (algo == "shp-k") {
    ShpKOptions options;
    options.p = p;
    options.epsilon = epsilon;
    options.seed = seed;
    if (flags.Has("iters")) {
      options.max_iterations =
          static_cast<uint32_t>(flags.GetInt("iters", 60));
    }
    partitioner = MakeShpK(options);
  } else if (algo == "multilevel") {
    MultilevelOptions options;
    options.epsilon = epsilon;
    options.seed = seed;
    partitioner = MakeMultilevelPartitioner(options);
  } else if (algo == "labelprop") {
    LabelPropagationOptions options;
    options.epsilon = epsilon;
    options.seed = seed;
    partitioner = MakeLabelPropagation(options);
  } else if (algo == "random") {
    partitioner = MakeRandomPartitioner({seed});
  } else {
    std::fprintf(stderr, "unknown --algo=%s\n", algo.c_str());
    return 2;
  }

  // Partition.
  Timer timer;
  Result<std::vector<BucketId>> result =
      partitioner->Partition(graph, k, nullptr);
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", partitioner->name().c_str(),
                 result.status().ToString().c_str());
    return 1;
  }
  const double seconds = timer.ElapsedSeconds();

  // Report + write.
  const PartitionSummary summary =
      SummarizePartition(graph, result.value(), k, p);
  std::printf("algorithm=%s k=%d time=%.2fs\n", partitioner->name().c_str(),
              k, seconds);
  std::printf("fanout=%.4f p-fanout=%.4f hyperedge-cut=%llu imbalance=%.4f\n",
              summary.fanout, summary.p_fanout,
              static_cast<unsigned long long>(summary.hyperedge_cut),
              summary.imbalance);
  if (flags.Has("output")) {
    const std::string output = flags.GetString("output", "");
    const Status st = WritePartition(result.value(), output);
    if (!st.ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n", output.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", output.c_str());
  }
  return 0;
}
