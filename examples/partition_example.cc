// Minimal end-to-end example: generate a social-style hypergraph, partition
// it with SHP-k and SHP-2, and print the fanout each achieves.
#include <cstdio>

#include "core/shp.h"
#include "graph/gen_social.h"

int main() {
  shp::SocialGraphConfig config;
  config.num_users = 5000;
  config.avg_degree = 10;
  config.seed = 1;
  const shp::BipartiteGraph graph = shp::GenerateSocialGraph(config);
  std::printf("graph: %u queries, %u data vertices, %llu pins\n",
              graph.num_queries(), graph.num_data(),
              static_cast<unsigned long long>(graph.num_edges()));

  const shp::BucketId k = 16;
  shp::ShpKOptions k_options;
  shp::RecursiveOptions r_options;
  for (auto* partitioner :
       {shp::MakeShpK(k_options).release(),
        shp::MakeShpRecursive(r_options).release()}) {
    auto result = partitioner->Partition(graph, k, nullptr);
    if (!result.ok()) {
      std::printf("%s failed: %s\n", partitioner->name().c_str(),
                  result.status().ToString().c_str());
      delete partitioner;
      return 1;
    }
    const shp::PartitionSummary summary =
        shp::SummarizePartition(graph, result.value(), k);
    std::printf("%-8s fanout=%.4f p-fanout=%.4f imbalance=%.4f\n",
                partitioner->name().c_str(), summary.fanout, summary.p_fanout,
                summary.imbalance);
    delete partitioner;
  }
  return 0;
}
