# Empty dependencies file for example_partition_example.
# This may be replaced when dependencies are built.
