file(REMOVE_RECURSE
  "CMakeFiles/example_partition_example.dir/examples/partition_example.cc.o"
  "CMakeFiles/example_partition_example.dir/examples/partition_example.cc.o.d"
  "partition_example"
  "partition_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_partition_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
