# Empty compiler generated dependencies file for bench_table2_quality.
# This may be replaced when dependencies are built.
