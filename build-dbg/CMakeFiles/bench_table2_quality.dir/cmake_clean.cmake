file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_quality.dir/bench/table2_quality.cc.o"
  "CMakeFiles/bench_table2_quality.dir/bench/table2_quality.cc.o.d"
  "table2_quality"
  "table2_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
