file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_latency.dir/bench/fig4_latency.cc.o"
  "CMakeFiles/bench_fig4_latency.dir/bench/fig4_latency.cc.o.d"
  "fig4_latency"
  "fig4_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
