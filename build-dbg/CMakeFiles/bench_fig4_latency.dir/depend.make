# Empty dependencies file for bench_fig4_latency.
# This may be replaced when dependencies are built.
