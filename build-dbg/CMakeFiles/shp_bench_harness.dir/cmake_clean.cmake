file(REMOVE_RECURSE
  "CMakeFiles/shp_bench_harness.dir/bench/harness.cc.o"
  "CMakeFiles/shp_bench_harness.dir/bench/harness.cc.o.d"
  "libshp_bench_harness.a"
  "libshp_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shp_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
