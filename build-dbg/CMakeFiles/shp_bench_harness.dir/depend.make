# Empty dependencies file for shp_bench_harness.
# This may be replaced when dependencies are built.
