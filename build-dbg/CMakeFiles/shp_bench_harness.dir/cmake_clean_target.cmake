file(REMOVE_RECURSE
  "libshp_bench_harness.a"
)
