# Empty compiler generated dependencies file for bench_fig8_objectives.
# This may be replaced when dependencies are built.
