file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_objectives.dir/bench/fig8_objectives.cc.o"
  "CMakeFiles/bench_fig8_objectives.dir/bench/fig8_objectives.cc.o.d"
  "fig8_objectives"
  "fig8_objectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_objectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
