# Empty compiler generated dependencies file for bench_fig6_fanout_probability.
# This may be replaced when dependencies are built.
