file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_fanout_probability.dir/bench/fig6_fanout_probability.cc.o"
  "CMakeFiles/bench_fig6_fanout_probability.dir/bench/fig6_fanout_probability.cc.o.d"
  "fig6_fanout_probability"
  "fig6_fanout_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_fanout_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
