# Empty dependencies file for bench_ablation_advanced.
# This may be replaced when dependencies are built.
