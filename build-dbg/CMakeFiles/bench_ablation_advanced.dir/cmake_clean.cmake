file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_advanced.dir/bench/ablation_advanced.cc.o"
  "CMakeFiles/bench_ablation_advanced.dir/bench/ablation_advanced.cc.o.d"
  "ablation_advanced"
  "ablation_advanced.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_advanced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
