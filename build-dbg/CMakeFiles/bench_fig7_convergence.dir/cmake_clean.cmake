file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_convergence.dir/bench/fig7_convergence.cc.o"
  "CMakeFiles/bench_fig7_convergence.dir/bench/fig7_convergence.cc.o.d"
  "fig7_convergence"
  "fig7_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
