# Empty dependencies file for shp.
# This may be replaced when dependencies are built.
