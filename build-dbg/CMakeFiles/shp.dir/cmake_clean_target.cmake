file(REMOVE_RECURSE
  "libshp.a"
)
