
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/clique_net.cc" "CMakeFiles/shp.dir/src/baseline/clique_net.cc.o" "gcc" "CMakeFiles/shp.dir/src/baseline/clique_net.cc.o.d"
  "/root/repo/src/baseline/coarsener.cc" "CMakeFiles/shp.dir/src/baseline/coarsener.cc.o" "gcc" "CMakeFiles/shp.dir/src/baseline/coarsener.cc.o.d"
  "/root/repo/src/baseline/fm_refiner.cc" "CMakeFiles/shp.dir/src/baseline/fm_refiner.cc.o" "gcc" "CMakeFiles/shp.dir/src/baseline/fm_refiner.cc.o.d"
  "/root/repo/src/baseline/hash_partitioner.cc" "CMakeFiles/shp.dir/src/baseline/hash_partitioner.cc.o" "gcc" "CMakeFiles/shp.dir/src/baseline/hash_partitioner.cc.o.d"
  "/root/repo/src/baseline/label_propagation.cc" "CMakeFiles/shp.dir/src/baseline/label_propagation.cc.o" "gcc" "CMakeFiles/shp.dir/src/baseline/label_propagation.cc.o.d"
  "/root/repo/src/baseline/multilevel.cc" "CMakeFiles/shp.dir/src/baseline/multilevel.cc.o" "gcc" "CMakeFiles/shp.dir/src/baseline/multilevel.cc.o.d"
  "/root/repo/src/baseline/random_partitioner.cc" "CMakeFiles/shp.dir/src/baseline/random_partitioner.cc.o" "gcc" "CMakeFiles/shp.dir/src/baseline/random_partitioner.cc.o.d"
  "/root/repo/src/common/csv.cc" "CMakeFiles/shp.dir/src/common/csv.cc.o" "gcc" "CMakeFiles/shp.dir/src/common/csv.cc.o.d"
  "/root/repo/src/common/env.cc" "CMakeFiles/shp.dir/src/common/env.cc.o" "gcc" "CMakeFiles/shp.dir/src/common/env.cc.o.d"
  "/root/repo/src/common/flags.cc" "CMakeFiles/shp.dir/src/common/flags.cc.o" "gcc" "CMakeFiles/shp.dir/src/common/flags.cc.o.d"
  "/root/repo/src/common/histogram.cc" "CMakeFiles/shp.dir/src/common/histogram.cc.o" "gcc" "CMakeFiles/shp.dir/src/common/histogram.cc.o.d"
  "/root/repo/src/common/logging.cc" "CMakeFiles/shp.dir/src/common/logging.cc.o" "gcc" "CMakeFiles/shp.dir/src/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "CMakeFiles/shp.dir/src/common/rng.cc.o" "gcc" "CMakeFiles/shp.dir/src/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "CMakeFiles/shp.dir/src/common/stats.cc.o" "gcc" "CMakeFiles/shp.dir/src/common/stats.cc.o.d"
  "/root/repo/src/common/status.cc" "CMakeFiles/shp.dir/src/common/status.cc.o" "gcc" "CMakeFiles/shp.dir/src/common/status.cc.o.d"
  "/root/repo/src/common/table.cc" "CMakeFiles/shp.dir/src/common/table.cc.o" "gcc" "CMakeFiles/shp.dir/src/common/table.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "CMakeFiles/shp.dir/src/common/thread_pool.cc.o" "gcc" "CMakeFiles/shp.dir/src/common/thread_pool.cc.o.d"
  "/root/repo/src/core/gain_histogram.cc" "CMakeFiles/shp.dir/src/core/gain_histogram.cc.o" "gcc" "CMakeFiles/shp.dir/src/core/gain_histogram.cc.o.d"
  "/root/repo/src/core/incremental.cc" "CMakeFiles/shp.dir/src/core/incremental.cc.o" "gcc" "CMakeFiles/shp.dir/src/core/incremental.cc.o.d"
  "/root/repo/src/core/move_broker.cc" "CMakeFiles/shp.dir/src/core/move_broker.cc.o" "gcc" "CMakeFiles/shp.dir/src/core/move_broker.cc.o.d"
  "/root/repo/src/core/multidim.cc" "CMakeFiles/shp.dir/src/core/multidim.cc.o" "gcc" "CMakeFiles/shp.dir/src/core/multidim.cc.o.d"
  "/root/repo/src/core/partition.cc" "CMakeFiles/shp.dir/src/core/partition.cc.o" "gcc" "CMakeFiles/shp.dir/src/core/partition.cc.o.d"
  "/root/repo/src/core/proposal_matrix.cc" "CMakeFiles/shp.dir/src/core/proposal_matrix.cc.o" "gcc" "CMakeFiles/shp.dir/src/core/proposal_matrix.cc.o.d"
  "/root/repo/src/core/recursive.cc" "CMakeFiles/shp.dir/src/core/recursive.cc.o" "gcc" "CMakeFiles/shp.dir/src/core/recursive.cc.o.d"
  "/root/repo/src/core/refiner.cc" "CMakeFiles/shp.dir/src/core/refiner.cc.o" "gcc" "CMakeFiles/shp.dir/src/core/refiner.cc.o.d"
  "/root/repo/src/core/shp.cc" "CMakeFiles/shp.dir/src/core/shp.cc.o" "gcc" "CMakeFiles/shp.dir/src/core/shp.cc.o.d"
  "/root/repo/src/core/shp_k.cc" "CMakeFiles/shp.dir/src/core/shp_k.cc.o" "gcc" "CMakeFiles/shp.dir/src/core/shp_k.cc.o.d"
  "/root/repo/src/engine/bsp_engine.cc" "CMakeFiles/shp.dir/src/engine/bsp_engine.cc.o" "gcc" "CMakeFiles/shp.dir/src/engine/bsp_engine.cc.o.d"
  "/root/repo/src/engine/cost_model.cc" "CMakeFiles/shp.dir/src/engine/cost_model.cc.o" "gcc" "CMakeFiles/shp.dir/src/engine/cost_model.cc.o.d"
  "/root/repo/src/engine/distributed_shp.cc" "CMakeFiles/shp.dir/src/engine/distributed_shp.cc.o" "gcc" "CMakeFiles/shp.dir/src/engine/distributed_shp.cc.o.d"
  "/root/repo/src/engine/message_router.cc" "CMakeFiles/shp.dir/src/engine/message_router.cc.o" "gcc" "CMakeFiles/shp.dir/src/engine/message_router.cc.o.d"
  "/root/repo/src/engine/shp_bsp.cc" "CMakeFiles/shp.dir/src/engine/shp_bsp.cc.o" "gcc" "CMakeFiles/shp.dir/src/engine/shp_bsp.cc.o.d"
  "/root/repo/src/graph/bipartite_graph.cc" "CMakeFiles/shp.dir/src/graph/bipartite_graph.cc.o" "gcc" "CMakeFiles/shp.dir/src/graph/bipartite_graph.cc.o.d"
  "/root/repo/src/graph/dataset_catalog.cc" "CMakeFiles/shp.dir/src/graph/dataset_catalog.cc.o" "gcc" "CMakeFiles/shp.dir/src/graph/dataset_catalog.cc.o.d"
  "/root/repo/src/graph/gen_grid.cc" "CMakeFiles/shp.dir/src/graph/gen_grid.cc.o" "gcc" "CMakeFiles/shp.dir/src/graph/gen_grid.cc.o.d"
  "/root/repo/src/graph/gen_planted.cc" "CMakeFiles/shp.dir/src/graph/gen_planted.cc.o" "gcc" "CMakeFiles/shp.dir/src/graph/gen_planted.cc.o.d"
  "/root/repo/src/graph/gen_powerlaw.cc" "CMakeFiles/shp.dir/src/graph/gen_powerlaw.cc.o" "gcc" "CMakeFiles/shp.dir/src/graph/gen_powerlaw.cc.o.d"
  "/root/repo/src/graph/gen_social.cc" "CMakeFiles/shp.dir/src/graph/gen_social.cc.o" "gcc" "CMakeFiles/shp.dir/src/graph/gen_social.cc.o.d"
  "/root/repo/src/graph/gen_web.cc" "CMakeFiles/shp.dir/src/graph/gen_web.cc.o" "gcc" "CMakeFiles/shp.dir/src/graph/gen_web.cc.o.d"
  "/root/repo/src/graph/graph_builder.cc" "CMakeFiles/shp.dir/src/graph/graph_builder.cc.o" "gcc" "CMakeFiles/shp.dir/src/graph/graph_builder.cc.o.d"
  "/root/repo/src/graph/graph_stats.cc" "CMakeFiles/shp.dir/src/graph/graph_stats.cc.o" "gcc" "CMakeFiles/shp.dir/src/graph/graph_stats.cc.o.d"
  "/root/repo/src/graph/io_binary.cc" "CMakeFiles/shp.dir/src/graph/io_binary.cc.o" "gcc" "CMakeFiles/shp.dir/src/graph/io_binary.cc.o.d"
  "/root/repo/src/graph/io_edgelist.cc" "CMakeFiles/shp.dir/src/graph/io_edgelist.cc.o" "gcc" "CMakeFiles/shp.dir/src/graph/io_edgelist.cc.o.d"
  "/root/repo/src/graph/io_hgr.cc" "CMakeFiles/shp.dir/src/graph/io_hgr.cc.o" "gcc" "CMakeFiles/shp.dir/src/graph/io_hgr.cc.o.d"
  "/root/repo/src/graph/io_partition.cc" "CMakeFiles/shp.dir/src/graph/io_partition.cc.o" "gcc" "CMakeFiles/shp.dir/src/graph/io_partition.cc.o.d"
  "/root/repo/src/graph/subgraph.cc" "CMakeFiles/shp.dir/src/graph/subgraph.cc.o" "gcc" "CMakeFiles/shp.dir/src/graph/subgraph.cc.o.d"
  "/root/repo/src/objective/gain.cc" "CMakeFiles/shp.dir/src/objective/gain.cc.o" "gcc" "CMakeFiles/shp.dir/src/objective/gain.cc.o.d"
  "/root/repo/src/objective/neighbor_data.cc" "CMakeFiles/shp.dir/src/objective/neighbor_data.cc.o" "gcc" "CMakeFiles/shp.dir/src/objective/neighbor_data.cc.o.d"
  "/root/repo/src/objective/objective.cc" "CMakeFiles/shp.dir/src/objective/objective.cc.o" "gcc" "CMakeFiles/shp.dir/src/objective/objective.cc.o.d"
  "/root/repo/src/objective/pow_table.cc" "CMakeFiles/shp.dir/src/objective/pow_table.cc.o" "gcc" "CMakeFiles/shp.dir/src/objective/pow_table.cc.o.d"
  "/root/repo/src/sharding/kv_cluster.cc" "CMakeFiles/shp.dir/src/sharding/kv_cluster.cc.o" "gcc" "CMakeFiles/shp.dir/src/sharding/kv_cluster.cc.o.d"
  "/root/repo/src/sharding/latency_model.cc" "CMakeFiles/shp.dir/src/sharding/latency_model.cc.o" "gcc" "CMakeFiles/shp.dir/src/sharding/latency_model.cc.o.d"
  "/root/repo/src/sharding/multiget_sim.cc" "CMakeFiles/shp.dir/src/sharding/multiget_sim.cc.o" "gcc" "CMakeFiles/shp.dir/src/sharding/multiget_sim.cc.o.d"
  "/root/repo/src/sharding/traffic_replay.cc" "CMakeFiles/shp.dir/src/sharding/traffic_replay.cc.o" "gcc" "CMakeFiles/shp.dir/src/sharding/traffic_replay.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
