file(REMOVE_RECURSE
  "CMakeFiles/neighbor_data_incremental_test.dir/tests/neighbor_data_incremental_test.cc.o"
  "CMakeFiles/neighbor_data_incremental_test.dir/tests/neighbor_data_incremental_test.cc.o.d"
  "neighbor_data_incremental_test"
  "neighbor_data_incremental_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neighbor_data_incremental_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
