# Empty compiler generated dependencies file for neighbor_data_incremental_test.
# This may be replaced when dependencies are built.
