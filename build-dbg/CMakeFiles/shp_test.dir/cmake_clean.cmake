file(REMOVE_RECURSE
  "CMakeFiles/shp_test.dir/tests/shp_test.cc.o"
  "CMakeFiles/shp_test.dir/tests/shp_test.cc.o.d"
  "shp_test"
  "shp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
