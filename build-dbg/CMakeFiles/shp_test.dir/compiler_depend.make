# Empty compiler generated dependencies file for shp_test.
# This may be replaced when dependencies are built.
