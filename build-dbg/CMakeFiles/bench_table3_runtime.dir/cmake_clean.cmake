file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_runtime.dir/bench/table3_runtime.cc.o"
  "CMakeFiles/bench_table3_runtime.dir/bench/table3_runtime.cc.o.d"
  "table3_runtime"
  "table3_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
