# Empty compiler generated dependencies file for bench_refine_iteration.
# This may be replaced when dependencies are built.
