file(REMOVE_RECURSE
  "CMakeFiles/bench_refine_iteration.dir/bench/refine_iteration.cc.o"
  "CMakeFiles/bench_refine_iteration.dir/bench/refine_iteration.cc.o.d"
  "refine_iteration"
  "refine_iteration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_refine_iteration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
