# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build-dbg
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(baseline_test "/root/repo/build-dbg/baseline_test")
set_tests_properties(baseline_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;37;add_test;/root/repo/CMakeLists.txt;0;")
add_test(common_test "/root/repo/build-dbg/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;37;add_test;/root/repo/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build-dbg/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;37;add_test;/root/repo/CMakeLists.txt;0;")
add_test(engine_test "/root/repo/build-dbg/engine_test")
set_tests_properties(engine_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;37;add_test;/root/repo/CMakeLists.txt;0;")
add_test(generator_test "/root/repo/build-dbg/generator_test")
set_tests_properties(generator_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;37;add_test;/root/repo/CMakeLists.txt;0;")
add_test(graph_test "/root/repo/build-dbg/graph_test")
set_tests_properties(graph_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;37;add_test;/root/repo/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build-dbg/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;37;add_test;/root/repo/CMakeLists.txt;0;")
add_test(io_test "/root/repo/build-dbg/io_test")
set_tests_properties(io_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;37;add_test;/root/repo/CMakeLists.txt;0;")
add_test(neighbor_data_incremental_test "/root/repo/build-dbg/neighbor_data_incremental_test")
set_tests_properties(neighbor_data_incremental_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;37;add_test;/root/repo/CMakeLists.txt;0;")
add_test(objective_test "/root/repo/build-dbg/objective_test")
set_tests_properties(objective_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;37;add_test;/root/repo/CMakeLists.txt;0;")
add_test(refiner_test "/root/repo/build-dbg/refiner_test")
set_tests_properties(refiner_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;37;add_test;/root/repo/CMakeLists.txt;0;")
add_test(sharding_test "/root/repo/build-dbg/sharding_test")
set_tests_properties(sharding_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;37;add_test;/root/repo/CMakeLists.txt;0;")
add_test(shp_test "/root/repo/build-dbg/shp_test")
set_tests_properties(shp_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;37;add_test;/root/repo/CMakeLists.txt;0;")
add_test(smoke_test "/root/repo/build-dbg/smoke_test")
set_tests_properties(smoke_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;37;add_test;/root/repo/CMakeLists.txt;0;")
