// Serving-loop tests: bounded-budget epochs, dual-read migration, the
// worker-kill restore path, and determinism of the whole loop
// (sharding/serving_loop.h).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "engine/shp_bsp.h"
#include "graph/gen_powerlaw.h"
#include "sharding/serving_loop.h"

namespace shp {
namespace {

BipartiteGraph TestGraph() {
  PowerLawConfig config;
  config.num_queries = 4000;
  config.num_data = 3000;
  config.target_edges = 26000;
  config.seed = 21;
  return GeneratePowerLaw(config);
}

ServingLoopConfig TestConfig() {
  ServingLoopConfig config;
  config.num_epochs = 2;
  config.requests_per_phase = 3000;
  config.iterations_per_epoch = 4;
  config.move_budget_per_epoch = 400;
  config.cluster.num_servers = 8;
  config.seed = 99;
  return config;
}

TEST(ServingLoop, MovesPerEpochRespectBudget) {
  const BipartiteGraph graph = TestGraph();
  ServingLoopConfig config = TestConfig();
  config.move_budget_per_epoch = 150;  // tight: the refiner wants far more
  ServingLoop loop(graph, config);
  const ServingReport report = loop.Run();
  ASSERT_EQ(report.epochs.size(), config.num_epochs);
  for (const EpochReport& epoch : report.epochs) {
    EXPECT_LE(epoch.executed_moves, config.move_budget_per_epoch);
    // The tight budget binds: the refiner uses everything it is given.
    EXPECT_GT(epoch.executed_moves, 0u);
  }
  EXPECT_EQ(loop.pending_migrations(), 0u);
}

TEST(ServingLoop, SkewedTrafficP99ImprovesAcrossRun) {
  const BipartiteGraph graph = TestGraph();
  ServingLoopConfig config = TestConfig();
  config.scenario = TrafficScenario::kPowerLaw;
  ServingLoop loop(graph, config);
  const ServingReport report = loop.Run();
  // The whole point of repartitioning online: the settled post-repartition
  // tail beats the random-assignment starting point.
  EXPECT_LT(report.p99_end, report.p99_start);
  // Fanout drops too (the latency win is not a sampling artifact).
  EXPECT_LT(report.epochs.back().after.average_fanout,
            report.epochs.front().before.average_fanout);
}

TEST(ServingLoop, DeterministicInSeed) {
  const BipartiteGraph graph = TestGraph();
  const ServingLoopConfig config = TestConfig();
  ServingLoop a(graph, config);
  ServingLoop b(graph, config);
  const ServingReport ra = a.Run();
  const ServingReport rb = b.Run();
  ASSERT_EQ(ra.epochs.size(), rb.epochs.size());
  for (size_t e = 0; e < ra.epochs.size(); ++e) {
    EXPECT_EQ(ra.epochs[e].executed_moves, rb.epochs[e].executed_moves);
    EXPECT_EQ(ra.epochs[e].migrated_records, rb.epochs[e].migrated_records);
    EXPECT_DOUBLE_EQ(ra.epochs[e].before.p99, rb.epochs[e].before.p99);
    EXPECT_DOUBLE_EQ(ra.epochs[e].during_migration.p99,
                     rb.epochs[e].during_migration.p99);
    EXPECT_DOUBLE_EQ(ra.epochs[e].after.p99, rb.epochs[e].after.p99);
  }
  EXPECT_EQ(ra.final_assignment, rb.final_assignment);
  EXPECT_EQ(ra.total_migration_bytes, rb.total_migration_bytes);
}

TEST(ServingLoop, MigrationAccountingConsistent) {
  const BipartiteGraph graph = TestGraph();
  ServingLoopConfig config = TestConfig();
  config.record_bytes = 768;
  ServingLoop loop(graph, config);
  const ServingReport report = loop.Run();
  EXPECT_GT(report.total_migrated_records, 0u);
  EXPECT_EQ(report.total_migration_bytes,
            report.total_migrated_records * config.record_bytes);
  // Dual reads happened while copies were in flight, and every one of them
  // went through the serveability invariant.
  EXPECT_GT(report.total_dual_read_queries, 0u);
  EXPECT_GT(report.serveability_checks, 0u);
  // Steady-state replay never grew the multiget scratch.
  EXPECT_EQ(report.scratch_grow_events, 0u);
}

TEST(ServingLoop, WorkerKillRehomesAndKeepsServing) {
  const BipartiteGraph graph = TestGraph();
  ServingLoopConfig config = TestConfig();
  config.num_epochs = 3;
  const BucketId killed = 2;
  config.kill_events = {{/*epoch=*/1, killed}};
  ServingLoop loop(graph, config);
  const ServingReport report = loop.Run();
  // The kill epoch rehomed every record the dead server held.
  EXPECT_GT(report.epochs[1].recovered_records, 0u);
  // No record ends up on the dead server, and every record has a home.
  for (BucketId b : report.final_assignment) {
    EXPECT_GE(b, 0);
    EXPECT_NE(b, killed);
  }
  // Dual-read serveability held throughout (the loop aborts otherwise; the
  // counter proves the checked path actually ran during the kill epoch).
  EXPECT_GT(report.serveability_checks, 0u);
  EXPECT_EQ(loop.pending_migrations(), 0u);
}

TEST(ServingLoop, KillEpochStillRespectsBudget) {
  const BipartiteGraph graph = TestGraph();
  ServingLoopConfig config = TestConfig();
  config.num_epochs = 3;
  config.move_budget_per_epoch = 200;
  config.kill_events = {{/*epoch=*/1, /*server=*/0}};
  ServingLoop loop(graph, config);
  const ServingReport report = loop.Run();
  for (const EpochReport& epoch : report.epochs) {
    // Emergency restores are not refinement moves; the refiner's budget
    // still binds in the kill epoch.
    EXPECT_LE(epoch.executed_moves, config.move_budget_per_epoch);
  }
}

TEST(ServingLoop, BspEngineDropsIn) {
  const BipartiteGraph graph = TestGraph();
  ServingLoopConfig config = TestConfig();
  config.refiner_factory = [](const BipartiteGraph& g,
                              const RefinerOptions& options) {
    BspConfig bsp;
    bsp.num_workers = 2;
    return std::unique_ptr<RefinerInterface>(
        new BspRefiner(g, options, bsp));
  };
  ServingLoop loop(graph, config);
  const ServingReport report = loop.Run();
  for (const EpochReport& epoch : report.epochs) {
    EXPECT_LE(epoch.executed_moves, config.move_budget_per_epoch);
  }
  EXPECT_LT(report.p99_end, report.p99_start);
}

}  // namespace
}  // namespace shp
