// Cross-module integration tests: file -> partition -> evaluate pipelines,
// p-sweep sanity (Fig. 6 shape), iteration monotonicity (Fig. 7 shape), and
// degenerate inputs.
#include <gtest/gtest.h>

#include <fstream>

#include "core/shp.h"
#include "graph/gen_planted.h"
#include "graph/gen_social.h"
#include "graph/graph_builder.h"
#include "graph/io_hgr.h"
#include "objective/objective.h"

namespace shp {
namespace {

TEST(Integration, HgrFileToPartitionPipeline) {
  // Write a planted hypergraph to .hgr, read it back, partition, evaluate.
  PlantedPartitionConfig config;
  config.num_data = 600;
  config.num_queries = 1500;
  config.num_groups = 4;
  config.mixing = 0.02;
  const PlantedPartition planted = GeneratePlantedPartition(config);
  const std::string path = testing::TempDir() + "/integration.hgr";
  ASSERT_TRUE(WriteHgr(planted.graph, path).ok());
  auto loaded = ReadHgr(path);
  ASSERT_TRUE(loaded.ok());

  RecursiveOptions options;
  options.k = 4;
  const auto result = RecursivePartitioner(options).Run(loaded.value());
  EXPECT_LT(AverageFanout(loaded.value(), result.assignment), 1.5);
}

TEST(Integration, PSweepShapeMatchesFigure6) {
  // p = 0.5 must beat p = 1.0 (direct fanout) distinctly; this is the core
  // of the paper's Fig. 6/8 message.
  SocialGraphConfig social;
  social.num_users = 3000;
  social.avg_degree = 12;
  const BipartiteGraph g = GenerateSocialGraph(social);
  auto fanout_at = [&](double p) {
    RecursiveOptions options;
    options.k = 16;
    options.p = p;
    options.seed = 6;
    return AverageFanout(g, RecursivePartitioner(options).Run(g).assignment);
  };
  const double at_half = fanout_at(0.5);
  const double at_one = fanout_at(1.0);
  EXPECT_LT(at_half, at_one)
      << "probabilistic fanout must beat direct fanout optimization";
}

TEST(Integration, PFanoutNonIncreasingAcrossIterations) {
  // Figure 7a shape: the optimized objective decreases (tolerating tiny
  // stochastic wiggle from the probabilistic mover).
  SocialGraphConfig social;
  social.num_users = 2000;
  social.avg_degree = 10;
  const BipartiteGraph g = GenerateSocialGraph(social);
  ShpKOptions options;
  options.k = 8;
  options.seed = 3;
  options.max_iterations = 15;
  options.min_move_fraction = 0.0;
  std::vector<double> trace;
  ShpKPartitioner(options).Run(
      g, nullptr,
      [&](uint32_t, const IterationStats&, const Partition& partition) {
        trace.push_back(AveragePFanout(g, partition.assignment(), 0.5));
        return true;
      });
  ASSERT_GE(trace.size(), 10u);
  int violations = 0;
  for (size_t i = 1; i < trace.size(); ++i) {
    if (trace[i] > trace[i - 1] + 0.02) ++violations;
  }
  EXPECT_LE(violations, 1) << "p-fanout should fall monotonically (±noise)";
  EXPECT_LT(trace.back(), trace.front());
}

TEST(Integration, MovedVerticesDecayAcrossIterations) {
  // Figure 7b shape: movement decays toward convergence.
  SocialGraphConfig social;
  social.num_users = 2000;
  social.avg_degree = 10;
  const BipartiteGraph g = GenerateSocialGraph(social);
  ShpKOptions options;
  options.k = 8;
  options.seed = 3;
  options.max_iterations = 20;
  options.min_move_fraction = 0.0;
  std::vector<double> moved;
  ShpKPartitioner(options).Run(
      g, nullptr,
      [&](uint32_t, const IterationStats& stats, const Partition&) {
        moved.push_back(stats.moved_fraction);
        return true;
      });
  ASSERT_GE(moved.size(), 10u);
  EXPECT_LT(moved.back(), moved.front() / 4);
}

// ------------------------------------------------------ degenerate inputs
TEST(Degenerate, KEqualsNumData) {
  GraphBuilder b;
  b.AddHyperedge(0, {0, 1});
  b.AddHyperedge(1, {1, 2});
  b.AddHyperedge(2, {2, 3});
  const BipartiteGraph g = b.Build();
  RecursiveOptions options;
  options.k = 4;  // one vertex per bucket
  const auto result = RecursivePartitioner(options).Run(g);
  const auto partition = Partition::FromAssignment(result.assignment, 4);
  partition.CheckInvariants();
  EXPECT_EQ(partition.ImbalanceRatio(), 0.0);
}

TEST(Degenerate, SingleQueryGraph) {
  GraphBuilder b;
  b.AddHyperedge(0, {0, 1, 2, 3});
  const BipartiteGraph g = b.Build();
  ShpKOptions options;
  options.k = 2;
  const auto result = ShpKPartitioner(options).Run(g);
  // One query spanning everything: fanout 2 at k=2 regardless.
  EXPECT_DOUBLE_EQ(AverageFanout(g, result.assignment), 2.0);
  EXPECT_TRUE(Partition::FromAssignment(result.assignment, 2)
                  .IsBalanced(0.0 + 1e-9));
}

TEST(Degenerate, GraphWithIsolatedData) {
  GraphBuilder b(0, 10);  // data 0..9, only 0..3 connected
  b.AddHyperedge(0, {0, 1});
  b.AddHyperedge(1, {2, 3});
  const BipartiteGraph g = b.Build();
  ShpKOptions options;
  options.k = 2;
  const auto result = ShpKPartitioner(options).Run(g);
  EXPECT_EQ(result.assignment.size(), 10u);
  EXPECT_TRUE(
      Partition::FromAssignment(result.assignment, 2).IsBalanced(0.05));
}

TEST(Degenerate, EmptyGraphNoCrash) {
  GraphBuilder b(0, 4);  // 4 data vertices, zero queries
  const BipartiteGraph g = b.Build();
  ShpKOptions options;
  options.k = 2;
  const auto result = ShpKPartitioner(options).Run(g);
  EXPECT_EQ(result.assignment.size(), 4u);
}

}  // namespace
}  // namespace shp
