// Generator tests: determinism, structural targets, planted ground truth,
// catalog synthesis. Parameterized sweeps double as property tests.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "graph/dataset_catalog.h"
#include "graph/gen_grid.h"
#include "graph/gen_planted.h"
#include "graph/gen_powerlaw.h"
#include "graph/gen_social.h"
#include "graph/gen_web.h"

namespace shp {
namespace {

TEST(PowerLaw, DeterministicPerSeed) {
  PowerLawConfig config;
  config.num_queries = 500;
  config.num_data = 800;
  config.target_edges = 4000;
  const BipartiteGraph a = GeneratePowerLaw(config);
  const BipartiteGraph b = GeneratePowerLaw(config);
  EXPECT_EQ(a.query_adj(), b.query_adj());
  config.seed ^= 1;
  const BipartiteGraph c = GeneratePowerLaw(config);
  EXPECT_NE(a.query_adj(), c.query_adj());
}

TEST(PowerLaw, HitsTargetSizesApproximately) {
  PowerLawConfig config;
  config.num_queries = 2000;
  config.num_data = 3000;
  config.target_edges = 20000;
  config.drop_trivial_queries = false;
  const BipartiteGraph g = GeneratePowerLaw(config);
  EXPECT_EQ(g.num_data(), 3000u);
  // Dedupe removes some pins; allow a generous band.
  EXPECT_GT(g.num_edges(), 10000u);
  EXPECT_LT(g.num_edges(), 30000u);
}

TEST(PowerLaw, ValidatesStructurally) {
  PowerLawConfig config;
  config.num_queries = 300;
  config.num_data = 400;
  config.target_edges = 2500;
  std::string error;
  EXPECT_TRUE(GeneratePowerLaw(config).Validate(&error)) << error;
}

TEST(ZipfSampler, ProducesSkewedRanks) {
  ZipfSampler zipf(1000, 1.5);
  Rng rng(3);
  uint64_t head = 0, total = 20000;
  for (uint64_t i = 0; i < total; ++i) {
    if (zipf.Sample(rng.NextDouble(), rng.NextDouble()) < 10) ++head;
  }
  // Top-10 ranks must carry far more than the uniform share (1%).
  EXPECT_GT(static_cast<double>(head) / total, 0.2);
}

TEST(ZipfSampler, StaysInRange) {
  ZipfSampler zipf(37, 2.0);
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(zipf.Sample(rng.NextDouble(), rng.NextDouble()), 37u);
  }
}

TEST(Social, UsersAreQueriesAndData) {
  SocialGraphConfig config;
  config.num_users = 2000;
  config.avg_degree = 10;
  config.drop_trivial_queries = false;
  const BipartiteGraph g = GenerateSocialGraph(config);
  EXPECT_EQ(g.num_queries(), 2000u);
  EXPECT_EQ(g.num_data(), 2000u);
  std::string error;
  EXPECT_TRUE(g.Validate(&error)) << error;
}

TEST(Social, SelfInHyperedge) {
  SocialGraphConfig config;
  config.num_users = 300;
  config.avg_degree = 6;
  config.drop_trivial_queries = false;
  const BipartiteGraph g = GenerateSocialGraph(config);
  int with_self = 0;
  for (VertexId u = 0; u < g.num_queries(); ++u) {
    for (VertexId v : g.QueryNeighbors(u)) {
      if (v == u) {
        ++with_self;
        break;
      }
    }
  }
  EXPECT_EQ(with_self, 300);
}

TEST(Social, AverageDegreeNearTarget) {
  SocialGraphConfig config;
  config.num_users = 5000;
  config.avg_degree = 14;
  config.drop_trivial_queries = false;
  const BipartiteGraph g = GenerateSocialGraph(config);
  const double avg =
      static_cast<double>(g.num_edges()) / g.num_queries() - 1;  // minus self
  EXPECT_GT(avg, 14 * 0.6);
  EXPECT_LT(avg, 14 * 1.6);
}

TEST(Social, DeterministicPerSeed) {
  SocialGraphConfig config;
  config.num_users = 500;
  EXPECT_EQ(GenerateSocialGraph(config).query_adj(),
            GenerateSocialGraph(config).query_adj());
}

TEST(Web, HostLocalityDominates) {
  WebGraphConfig config;
  config.num_pages = 3000;
  config.avg_out_degree = 6;
  config.in_host_probability = 0.9;
  const BipartiteGraph g = GenerateWebGraph(config);
  std::string error;
  EXPECT_TRUE(g.Validate(&error)) << error;
  EXPECT_GT(g.num_edges(), 3000u);
}

TEST(Web, DeterministicPerSeed) {
  WebGraphConfig config;
  config.num_pages = 800;
  EXPECT_EQ(GenerateWebGraph(config).query_adj(),
            GenerateWebGraph(config).query_adj());
}

TEST(Planted, TruthIsBalancedAndInRange) {
  PlantedPartitionConfig config;
  config.num_data = 1000;
  config.num_groups = 8;
  const PlantedPartition planted = GeneratePlantedPartition(config);
  std::vector<int> sizes(8, 0);
  for (int32_t t : planted.truth) {
    ASSERT_GE(t, 0);
    ASSERT_LT(t, 8);
    ++sizes[static_cast<size_t>(t)];
  }
  for (int s : sizes) EXPECT_EQ(s, 125);
}

TEST(Planted, ZeroMixingQueriesStayInGroup) {
  PlantedPartitionConfig config;
  config.num_data = 400;
  config.num_queries = 600;
  config.num_groups = 4;
  config.mixing = 0.0;
  const PlantedPartition planted = GeneratePlantedPartition(config);
  for (VertexId q = 0; q < planted.graph.num_queries(); ++q) {
    auto nbrs = planted.graph.QueryNeighbors(q);
    for (VertexId v : nbrs) {
      EXPECT_EQ(planted.truth[v], planted.truth[nbrs[0]])
          << "query " << q << " crosses groups at mixing=0";
    }
  }
}

TEST(Grid, FivePointStencilShape) {
  GridConfig config;
  config.rows = 4;
  config.cols = 5;
  const BipartiteGraph g = GenerateGrid(config);
  EXPECT_EQ(g.num_data(), 20u);
  EXPECT_EQ(g.num_queries(), 20u);
  // Interior cell (1,1) = id 6: stencil of 5 cells.
  EXPECT_EQ(g.QueryNeighbors(6).size(), 5u);
  // Corner (0,0): itself + 2 neighbors.
  EXPECT_EQ(g.QueryNeighbors(0).size(), 3u);
}

TEST(Grid, NinePointStencil) {
  GridConfig config;
  config.rows = 3;
  config.cols = 3;
  config.stencil = 9;
  const BipartiteGraph g = GenerateGrid(config);
  EXPECT_EQ(g.QueryNeighbors(4).size(), 9u);  // center of 3x3
}

TEST(Catalog, HasAllElevenPaperRows) {
  EXPECT_EQ(DatasetCatalog().size(), 11u);
  EXPECT_TRUE(FindDataset("soc-LJ").ok());
  EXPECT_TRUE(FindDataset("FB-10B").ok());
  EXPECT_FALSE(FindDataset("no-such-dataset").ok());
}

TEST(Catalog, SynthesizeScalesLinearly) {
  const DatasetSpec spec = FindDataset("email-Enron").value();
  const BipartiteGraph small = Synthesize(spec, 0.05);
  const BipartiteGraph bigger = Synthesize(spec, 0.1);
  EXPECT_GT(bigger.num_data(), small.num_data());
  EXPECT_NEAR(static_cast<double>(bigger.num_data()) / small.num_data(), 2.0,
              0.3);
}

TEST(Catalog, SynthesizeDeterministicPerSeed) {
  const DatasetSpec spec = FindDataset("soc-Pokec").value();
  EXPECT_EQ(Synthesize(spec, 0.02, 9).query_adj(),
            Synthesize(spec, 0.02, 9).query_adj());
}

// Property sweep: every family × several seeds produces a valid graph with
// no empty adjacency arrays.
struct GenCase {
  std::string name;
  uint64_t seed;
};

class GeneratorProperty : public testing::TestWithParam<GenCase> {};

TEST_P(GeneratorProperty, CatalogInstanceIsValid) {
  const auto& param = GetParam();
  const DatasetSpec spec = FindDataset(param.name).value();
  const BipartiteGraph g = Synthesize(spec, 0.02, param.seed);
  ASSERT_GT(g.num_data(), 0u);
  ASSERT_GT(g.num_queries(), 0u);
  std::string error;
  EXPECT_TRUE(g.Validate(&error)) << error;
  // Every kept query has ≥ 2 neighbors (trivial queries dropped).
  for (VertexId q = 0; q < g.num_queries(); ++q) {
    EXPECT_GE(g.QueryDegree(q), 2u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, GeneratorProperty,
    testing::Values(GenCase{"email-Enron", 1}, GenCase{"email-Enron", 2},
                    GenCase{"web-Stanford", 1}, GenCase{"web-Stanford", 2},
                    GenCase{"soc-Pokec", 1}, GenCase{"soc-Pokec", 2},
                    GenCase{"FB-10M", 1}, GenCase{"FB-10M", 2}),
    [](const testing::TestParamInfo<GenCase>& info) {
      std::string name = info.param.name + "_s" +
                         std::to_string(info.param.seed);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace shp
