// Grouped varint wire codec tests: randomized lossless roundtrip over
// chain-invariant record streams, hand-built streams exercising decoder
// tolerances (zero-count groups, wide varints), boundary ids, malformed
// inputs, and the compression claim on a realistic steady-state stream.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>
#include <span>
#include <vector>

#include "engine/wire_format.h"

namespace shp {
namespace {

using wire::AppendVarint;
using wire::AppendZigZag;
using wire::DecodeEnveloped;
using wire::DecodeGroupedDeltas;
using wire::EncodeEnveloped;
using wire::EncodeGroupedDeltas;
using wire::EnvelopeHeader;
using wire::GroupedWireBytes;
using wire::WireVerdict;

std::vector<NeighborDelta> Roundtrip(
    const std::vector<NeighborDelta>& records) {
  std::vector<uint8_t> bytes;
  EncodeGroupedDeltas(records, &bytes);
  std::vector<NeighborDelta> decoded;
  EXPECT_TRUE(DecodeGroupedDeltas(bytes, &decoded));
  return decoded;
}

TEST(WireFormat, EmptyStream) {
  EXPECT_TRUE(Roundtrip({}).empty());
  EXPECT_EQ(GroupedWireBytes({}), 0u);
}

TEST(WireFormat, SingleRecord) {
  const std::vector<NeighborDelta> records = {{7, 3, 2, 3}};
  EXPECT_EQ(Roundtrip(records), records);
}

TEST(WireFormat, RandomizedRoundtripIsBitIdentical) {
  // Streams shaped like real superstep-2 buffers: ascending query groups,
  // non-decreasing buckets inside a group, and same-bucket chains obeying
  // old == previous new with new = old ± 1.
  std::mt19937_64 rng(0xc0dec);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<NeighborDelta> records;
    VertexId q = 0;
    const int groups = static_cast<int>(rng() % 20);
    for (int g = 0; g < groups; ++g) {
      q += static_cast<VertexId>(rng() % 1000);  // may repeat-jump by 0 only
      // once: enforce strictly ascending except first
      if (g > 0) q += 1;
      BucketId bucket = 0;
      const int recs = 1 + static_cast<int>(rng() % 6);
      uint32_t prev_new = 0;
      bool chained = false;
      for (int r = 0; r < recs; ++r) {
        const bool same_bucket = chained && (rng() % 3 == 0);
        if (!same_bucket) {
          bucket += static_cast<BucketId>(rng() % 64) + (chained ? 1 : 0);
        }
        // Same-bucket successors chain (old == previous new); a fresh
        // (q, bucket) chain starts at an arbitrary count.
        const uint32_t old_count = same_bucket
                                       ? prev_new
                                       : static_cast<uint32_t>(rng() % 50);
        const uint32_t new_count =
            (old_count == 0 || (rng() % 2 == 0)) ? old_count + 1
                                                 : old_count - 1;
        records.push_back({q, bucket, old_count, new_count});
        prev_new = new_count;
        chained = true;
      }
    }
    EXPECT_EQ(Roundtrip(records), records) << "trial " << trial;
    // GroupedWireBytes must agree with an explicit encode (and, in Debug,
    // internally re-verify the decode).
    std::vector<uint8_t> bytes;
    EncodeGroupedDeltas(records, &bytes);
    EXPECT_EQ(GroupedWireBytes(records), bytes.size());
  }
}

TEST(WireFormat, QidDeltaOverflowAndMaxBucket) {
  // Extreme ids: a first-group qid needing a full 5-byte varint, INT32_MAX
  // bucket values, and large counts.
  const std::vector<NeighborDelta> records = {
      {std::numeric_limits<int32_t>::max() - 1, 0, 4000000000u, 4000000001u},
      {std::numeric_limits<int32_t>::max(),
       std::numeric_limits<int32_t>::max(), 0, 1},
  };
  EXPECT_EQ(Roundtrip(records), records);
}

TEST(WireFormat, ZeroCountGroupsAdvanceTheQidChain) {
  // Hand-built stream: group (q=5, 0 records), then group (delta 3 -> q=8,
  // 1 record). The encoder never emits empty groups; the decoder must accept
  // them and keep the qid chain intact.
  std::vector<uint8_t> bytes;
  AppendVarint(&bytes, 5);  // qid delta
  AppendVarint(&bytes, 0);  // zero records
  AppendVarint(&bytes, 3);  // qid delta -> q = 8
  AppendVarint(&bytes, 1);  // one record
  AppendVarint(&bytes, 2);  // bucket delta -> bucket 2
  AppendZigZag(&bytes, 4);  // old = 4 (no chain ref)
  AppendZigZag(&bytes, -1);  // new = 3
  std::vector<NeighborDelta> decoded;
  ASSERT_TRUE(DecodeGroupedDeltas(bytes, &decoded));
  const std::vector<NeighborDelta> expected = {{8, 2, 4, 3}};
  EXPECT_EQ(decoded, expected);
}

TEST(WireFormat, RejectsMalformedInput) {
  std::vector<NeighborDelta> decoded;

  // Truncated mid-varint: a lone continuation byte.
  EXPECT_FALSE(DecodeGroupedDeltas(std::vector<uint8_t>{0x80}, &decoded));

  // Group header promising more records than the stream holds.
  std::vector<uint8_t> bytes;
  AppendVarint(&bytes, 1);
  AppendVarint(&bytes, 2);  // two records announced
  AppendVarint(&bytes, 0);
  AppendZigZag(&bytes, 1);
  AppendZigZag(&bytes, 1);  // ...but only one encoded
  decoded.clear();
  EXPECT_FALSE(DecodeGroupedDeltas(bytes, &decoded));

  // Query id overflowing the 31-bit VertexId range.
  bytes.clear();
  AppendVarint(&bytes, 1ull << 40);
  AppendVarint(&bytes, 0);
  decoded.clear();
  EXPECT_FALSE(DecodeGroupedDeltas(bytes, &decoded));

  // Negative reconstructed old_count.
  bytes.clear();
  AppendVarint(&bytes, 1);
  AppendVarint(&bytes, 1);
  AppendVarint(&bytes, 0);
  AppendZigZag(&bytes, -2);  // old = -2
  AppendZigZag(&bytes, 1);
  decoded.clear();
  EXPECT_FALSE(DecodeGroupedDeltas(bytes, &decoded));

  // Continuation bits running past the 10-byte varint cap.
  bytes.assign(11, 0x80);
  decoded.clear();
  EXPECT_FALSE(DecodeGroupedDeltas(bytes, &decoded));
}

TEST(WireFormat, RejectsGroupCountClaimBeyondStream) {
  // A group header claiming 2^40 records must fail fast on the count-claim
  // guard, not loop or reserve for a count the stream cannot possibly hold.
  std::vector<uint8_t> bytes;
  AppendVarint(&bytes, 1);          // qid delta
  AppendVarint(&bytes, 1ull << 40);  // absurd record count
  std::vector<NeighborDelta> decoded;
  EXPECT_FALSE(DecodeGroupedDeltas(bytes, &decoded));
}

// ------------------------------------------------------------- envelope ---

std::vector<NeighborDelta> SampleRecords() {
  return {{3, 0, 0, 1}, {3, 2, 4, 3}, {9, 1, 1, 2}, {9, 1, 2, 3}};
}

std::vector<uint8_t> EncodeFrame(const std::vector<NeighborDelta>& records,
                                 uint64_t epoch, uint64_t seq,
                                 size_t* overhead = nullptr) {
  std::vector<uint8_t> payload;
  EncodeGroupedDeltas(records, &payload);
  EnvelopeHeader header;
  header.epoch = epoch;
  header.sequence = seq;
  header.record_count = records.size();
  std::vector<uint8_t> frame;
  const size_t oh = EncodeEnveloped(header, payload, &frame);
  if (overhead != nullptr) *overhead = oh;
  return frame;
}

TEST(Envelope, RoundTripPreservesHeaderAndPayload) {
  const auto records = SampleRecords();
  size_t overhead = 0;
  const auto frame = EncodeFrame(records, /*epoch=*/42, /*seq=*/7, &overhead);
  EXPECT_EQ(overhead + GroupedWireBytes(records), frame.size());

  EnvelopeHeader got;
  std::vector<NeighborDelta> decoded;
  ASSERT_EQ(DecodeEnveloped(frame, &got, &decoded), WireVerdict::kOk);
  EXPECT_EQ(got.epoch, 42u);
  EXPECT_EQ(got.sequence, 7u);
  EXPECT_EQ(got.record_count, records.size());
  EXPECT_EQ(decoded, records);
}

TEST(Envelope, EmptyPayloadRoundTrips) {
  // Links with nothing to say still send a frame (the gapless sequence chain
  // is what makes drops detectable); the empty frame must verify.
  const auto frame = EncodeFrame({}, 3, 12);
  EnvelopeHeader got;
  std::vector<NeighborDelta> decoded;
  ASSERT_EQ(DecodeEnveloped(frame, &got, &decoded), WireVerdict::kOk);
  EXPECT_TRUE(decoded.empty());
  EXPECT_EQ(got.sequence, 12u);
}

TEST(Envelope, DetectsEverySingleBitFlip) {
  // CRC32C detects all single-bit errors: flip each bit of the frame in turn
  // and require a non-kOk verdict every time.
  const auto frame = EncodeFrame(SampleRecords(), 5, 1);
  for (size_t bit = 0; bit < frame.size() * 8; ++bit) {
    std::vector<uint8_t> mutated = frame;
    mutated[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    EnvelopeHeader got;
    std::vector<NeighborDelta> decoded;
    EXPECT_NE(DecodeEnveloped(mutated, &got, &decoded), WireVerdict::kOk)
        << "bit " << bit << " flip went undetected";
  }
}

TEST(Envelope, DetectsEveryTruncationPoint) {
  const auto frame = EncodeFrame(SampleRecords(), 5, 1);
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    const std::span<const uint8_t> prefix(frame.data(), cut);
    EnvelopeHeader got;
    std::vector<NeighborDelta> decoded;
    EXPECT_NE(DecodeEnveloped(prefix, &got, &decoded), WireVerdict::kOk)
        << "prefix of " << cut << " bytes accepted";
  }
}

TEST(Envelope, DetectsTrailingGarbage) {
  auto frame = EncodeFrame(SampleRecords(), 5, 1);
  frame.push_back(0x00);
  EnvelopeHeader got;
  std::vector<NeighborDelta> decoded;
  EXPECT_EQ(DecodeEnveloped(frame, &got, &decoded), WireVerdict::kCorrupt);
}

TEST(Envelope, DetectsRecordCountMismatch) {
  // A frame whose header record_count disagrees with the payload, CRC intact
  // (the attacker recomputed it): the decode-count cross-check must catch it.
  const auto records = SampleRecords();
  std::vector<uint8_t> payload;
  EncodeGroupedDeltas(records, &payload);
  EnvelopeHeader header;
  header.epoch = 1;
  header.sequence = 1;
  header.record_count = records.size() + 1;  // lie
  std::vector<uint8_t> frame;
  EncodeEnveloped(header, payload, &frame);
  EnvelopeHeader got;
  std::vector<NeighborDelta> decoded;
  EXPECT_EQ(DecodeEnveloped(frame, &got, &decoded), WireVerdict::kCorrupt);
}

TEST(Envelope, FuzzArbitraryBytesNeverCrash) {
  // Seeded randomized fuzz: feed arbitrary byte blobs to both decoders. The
  // contract is "never crash, hang, or allocate unboundedly" — any verdict
  // is fine, surviving is the assertion.
  std::mt19937_64 rng(0xf0221);
  for (int trial = 0; trial < 3000; ++trial) {
    const size_t size = rng() % 128;
    std::vector<uint8_t> bytes(size);
    for (auto& b : bytes) b = static_cast<uint8_t>(rng());
    EnvelopeHeader header;
    std::vector<NeighborDelta> decoded;
    (void)DecodeEnveloped(bytes, &header, &decoded);
    decoded.clear();
    (void)DecodeGroupedDeltas(bytes, &decoded);
  }
}

TEST(Envelope, FuzzMutatedValidFramesNeverCrash) {
  // Second fuzz family: start from a valid frame and apply random slices and
  // byte smashes — closer to what a faulty link actually produces.
  std::mt19937_64 rng(0xbadf00d);
  const auto base = EncodeFrame(SampleRecords(), 9, 4);
  for (int trial = 0; trial < 3000; ++trial) {
    std::vector<uint8_t> frame = base;
    const int mutations = 1 + static_cast<int>(rng() % 4);
    for (int m = 0; m < mutations; ++m) {
      if (frame.empty()) break;
      switch (rng() % 3) {
        case 0:  // truncate
          frame.resize(rng() % (frame.size() + 1));
          break;
        case 1:  // smash a byte
          frame[rng() % frame.size()] = static_cast<uint8_t>(rng());
          break;
        default:  // duplicate a tail slice (grows the frame)
          frame.insert(frame.end(), frame.begin() + frame.size() / 2,
                       frame.end());
          break;
      }
    }
    EnvelopeHeader header;
    std::vector<NeighborDelta> decoded;
    (void)DecodeEnveloped(frame, &header, &decoded);
  }
}

TEST(WireFormat, SteadyStateStreamBeatsRawFormat) {
  // A realistic steady-state buffer: a few hundred queries, each with a
  // handful of ±1 transitions on nearby buckets. The codec should land near
  // 3 bytes/record — far below the 25% reduction the acceptance criterion
  // demands against 16-byte raw records.
  std::mt19937_64 rng(99);
  std::vector<NeighborDelta> records;
  VertexId q = 0;
  for (int g = 0; g < 300; ++g) {
    q += 1 + static_cast<VertexId>(rng() % 40);
    BucketId bucket = static_cast<BucketId>(rng() % 8);
    const int recs = 1 + static_cast<int>(rng() % 3);
    for (int r = 0; r < recs; ++r) {
      const uint32_t old_count = static_cast<uint32_t>(rng() % 6);
      records.push_back({q, bucket, old_count, old_count + 1});
      bucket += 1 + static_cast<BucketId>(rng() % 4);
    }
  }
  const size_t grouped = GroupedWireBytes(records);
  const size_t raw = records.size() * wire::kRawDeltaBytes;
  EXPECT_LT(grouped, raw - raw / 4)
      << "grouped " << grouped << " bytes vs raw " << raw;
}

}  // namespace
}  // namespace shp
