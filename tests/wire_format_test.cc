// Grouped varint wire codec tests: randomized lossless roundtrip over
// chain-invariant record streams, hand-built streams exercising decoder
// tolerances (zero-count groups, wide varints), boundary ids, malformed
// inputs, and the compression claim on a realistic steady-state stream.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "engine/wire_format.h"

namespace shp {
namespace {

using wire::AppendVarint;
using wire::AppendZigZag;
using wire::DecodeGroupedDeltas;
using wire::EncodeGroupedDeltas;
using wire::GroupedWireBytes;

std::vector<NeighborDelta> Roundtrip(
    const std::vector<NeighborDelta>& records) {
  std::vector<uint8_t> bytes;
  EncodeGroupedDeltas(records, &bytes);
  std::vector<NeighborDelta> decoded;
  EXPECT_TRUE(DecodeGroupedDeltas(bytes, &decoded));
  return decoded;
}

TEST(WireFormat, EmptyStream) {
  EXPECT_TRUE(Roundtrip({}).empty());
  EXPECT_EQ(GroupedWireBytes({}), 0u);
}

TEST(WireFormat, SingleRecord) {
  const std::vector<NeighborDelta> records = {{7, 3, 2, 3}};
  EXPECT_EQ(Roundtrip(records), records);
}

TEST(WireFormat, RandomizedRoundtripIsBitIdentical) {
  // Streams shaped like real superstep-2 buffers: ascending query groups,
  // non-decreasing buckets inside a group, and same-bucket chains obeying
  // old == previous new with new = old ± 1.
  std::mt19937_64 rng(0xc0dec);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<NeighborDelta> records;
    VertexId q = 0;
    const int groups = static_cast<int>(rng() % 20);
    for (int g = 0; g < groups; ++g) {
      q += static_cast<VertexId>(rng() % 1000);  // may repeat-jump by 0 only
      // once: enforce strictly ascending except first
      if (g > 0) q += 1;
      BucketId bucket = 0;
      const int recs = 1 + static_cast<int>(rng() % 6);
      uint32_t prev_new = 0;
      bool chained = false;
      for (int r = 0; r < recs; ++r) {
        const bool same_bucket = chained && (rng() % 3 == 0);
        if (!same_bucket) {
          bucket += static_cast<BucketId>(rng() % 64) + (chained ? 1 : 0);
        }
        // Same-bucket successors chain (old == previous new); a fresh
        // (q, bucket) chain starts at an arbitrary count.
        const uint32_t old_count = same_bucket
                                       ? prev_new
                                       : static_cast<uint32_t>(rng() % 50);
        const uint32_t new_count =
            (old_count == 0 || (rng() % 2 == 0)) ? old_count + 1
                                                 : old_count - 1;
        records.push_back({q, bucket, old_count, new_count});
        prev_new = new_count;
        chained = true;
      }
    }
    EXPECT_EQ(Roundtrip(records), records) << "trial " << trial;
    // GroupedWireBytes must agree with an explicit encode (and, in Debug,
    // internally re-verify the decode).
    std::vector<uint8_t> bytes;
    EncodeGroupedDeltas(records, &bytes);
    EXPECT_EQ(GroupedWireBytes(records), bytes.size());
  }
}

TEST(WireFormat, QidDeltaOverflowAndMaxBucket) {
  // Extreme ids: a first-group qid needing a full 5-byte varint, INT32_MAX
  // bucket values, and large counts.
  const std::vector<NeighborDelta> records = {
      {std::numeric_limits<int32_t>::max() - 1, 0, 4000000000u, 4000000001u},
      {std::numeric_limits<int32_t>::max(),
       std::numeric_limits<int32_t>::max(), 0, 1},
  };
  EXPECT_EQ(Roundtrip(records), records);
}

TEST(WireFormat, ZeroCountGroupsAdvanceTheQidChain) {
  // Hand-built stream: group (q=5, 0 records), then group (delta 3 -> q=8,
  // 1 record). The encoder never emits empty groups; the decoder must accept
  // them and keep the qid chain intact.
  std::vector<uint8_t> bytes;
  AppendVarint(&bytes, 5);  // qid delta
  AppendVarint(&bytes, 0);  // zero records
  AppendVarint(&bytes, 3);  // qid delta -> q = 8
  AppendVarint(&bytes, 1);  // one record
  AppendVarint(&bytes, 2);  // bucket delta -> bucket 2
  AppendZigZag(&bytes, 4);  // old = 4 (no chain ref)
  AppendZigZag(&bytes, -1);  // new = 3
  std::vector<NeighborDelta> decoded;
  ASSERT_TRUE(DecodeGroupedDeltas(bytes, &decoded));
  const std::vector<NeighborDelta> expected = {{8, 2, 4, 3}};
  EXPECT_EQ(decoded, expected);
}

TEST(WireFormat, RejectsMalformedInput) {
  std::vector<NeighborDelta> decoded;

  // Truncated mid-varint: a lone continuation byte.
  EXPECT_FALSE(DecodeGroupedDeltas(std::vector<uint8_t>{0x80}, &decoded));

  // Group header promising more records than the stream holds.
  std::vector<uint8_t> bytes;
  AppendVarint(&bytes, 1);
  AppendVarint(&bytes, 2);  // two records announced
  AppendVarint(&bytes, 0);
  AppendZigZag(&bytes, 1);
  AppendZigZag(&bytes, 1);  // ...but only one encoded
  decoded.clear();
  EXPECT_FALSE(DecodeGroupedDeltas(bytes, &decoded));

  // Query id overflowing the 31-bit VertexId range.
  bytes.clear();
  AppendVarint(&bytes, 1ull << 40);
  AppendVarint(&bytes, 0);
  decoded.clear();
  EXPECT_FALSE(DecodeGroupedDeltas(bytes, &decoded));

  // Negative reconstructed old_count.
  bytes.clear();
  AppendVarint(&bytes, 1);
  AppendVarint(&bytes, 1);
  AppendVarint(&bytes, 0);
  AppendZigZag(&bytes, -2);  // old = -2
  AppendZigZag(&bytes, 1);
  decoded.clear();
  EXPECT_FALSE(DecodeGroupedDeltas(bytes, &decoded));

  // Continuation bits running past the 10-byte varint cap.
  bytes.assign(11, 0x80);
  decoded.clear();
  EXPECT_FALSE(DecodeGroupedDeltas(bytes, &decoded));
}

TEST(WireFormat, SteadyStateStreamBeatsRawFormat) {
  // A realistic steady-state buffer: a few hundred queries, each with a
  // handful of ±1 transitions on nearby buckets. The codec should land near
  // 3 bytes/record — far below the 25% reduction the acceptance criterion
  // demands against 16-byte raw records.
  std::mt19937_64 rng(99);
  std::vector<NeighborDelta> records;
  VertexId q = 0;
  for (int g = 0; g < 300; ++g) {
    q += 1 + static_cast<VertexId>(rng() % 40);
    BucketId bucket = static_cast<BucketId>(rng() % 8);
    const int recs = 1 + static_cast<int>(rng() % 3);
    for (int r = 0; r < recs; ++r) {
      const uint32_t old_count = static_cast<uint32_t>(rng() % 6);
      records.push_back({q, bucket, old_count, old_count + 1});
      bucket += 1 + static_cast<BucketId>(rng() % 4);
    }
  }
  const size_t grouped = GroupedWireBytes(records);
  const size_t raw = records.size() * wire::kRawDeltaBytes;
  EXPECT_LT(grouped, raw - raw / 4)
      << "grouped " << grouped << " bytes vs raw " << raw;
}

}  // namespace
}  // namespace shp
