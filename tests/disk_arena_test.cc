// DiskArena tests: writer round-trips (sequential and scatter feeding),
// the mangled-fixture sweep mirrored from io_test.cc (CRC flip, every-byte
// truncation, out-of-range / misaligned offsets, non-ascending index,
// oversized footer counts), and the windowed residency cap.
#include "graph/disk_arena.h"

#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/checksum.h"
#include "common/status.h"

namespace shp {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<char> Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void Dump(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      .write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::vector<VertexId> ToVec(std::span<const VertexId> s) {
  return {s.begin(), s.end()};
}

// Writes a small sequential-mode arena: vertex 3 -> {1, 2}, vertex 7 -> {0},
// vertex 9 -> {4, 5, 6}.
std::string WriteSampleArena(const std::string& name) {
  const std::string path = TempPath(name);
  auto writer = DiskArenaWriter::Create(path);
  EXPECT_TRUE(writer.ok()) << writer.status().ToString();
  DiskArenaWriter w = std::move(writer).value();
  const std::vector<VertexId> a = {1, 2}, b = {0}, c = {4, 5, 6};
  EXPECT_TRUE(w.BeginEntry(3, 2).ok());
  EXPECT_TRUE(w.AppendToEntry(a).ok());
  EXPECT_TRUE(w.BeginEntry(7, 1).ok());
  EXPECT_TRUE(w.AppendToEntry(b).ok());
  EXPECT_TRUE(w.BeginEntry(9, 3).ok());
  EXPECT_TRUE(w.AppendToEntry(c).ok());
  EXPECT_TRUE(w.Finish(/*normalize=*/false).ok());
  return path;
}

TEST(DiskArenaWriter, SequentialRoundTrip) {
  const std::string path = WriteSampleArena("seq.shpa");
  auto arena = DiskArena::Open(path, /*resident_cap_bytes=*/0);
  ASSERT_TRUE(arena.ok()) << arena.status().ToString();
  const DiskArena& a = *arena.value();
  ASSERT_EQ(a.index().size(), 3u);
  EXPECT_EQ(ToVec(a.Neighbors(3)), (std::vector<VertexId>{1, 2}));
  EXPECT_EQ(ToVec(a.Neighbors(7)), (std::vector<VertexId>{0}));
  EXPECT_EQ(ToVec(a.Neighbors(9)), (std::vector<VertexId>{4, 5, 6}));
  EXPECT_TRUE(a.Neighbors(4).empty());   // between entries
  EXPECT_TRUE(a.Neighbors(99).empty());  // past the last entry
  EXPECT_EQ(a.payload_bytes(), 6 * sizeof(VertexId));
}

TEST(DiskArenaWriter, SequentialChunkedAppends) {
  const std::string path = TempPath("chunked.shpa");
  auto writer = DiskArenaWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  DiskArenaWriter w = std::move(writer).value();
  std::vector<VertexId> list(1000);
  for (uint32_t i = 0; i < 1000; ++i) list[i] = i;
  ASSERT_TRUE(w.BeginEntry(0, 1000).ok());
  ASSERT_TRUE(w.AppendToEntry(std::span(list).subspan(0, 300)).ok());
  ASSERT_TRUE(w.AppendToEntry(std::span(list).subspan(300)).ok());
  ASSERT_TRUE(w.Finish(/*normalize=*/false).ok());

  auto arena = DiskArena::Open(path, 0);
  ASSERT_TRUE(arena.ok()) << arena.status().ToString();
  EXPECT_EQ(ToVec(arena.value()->Neighbors(0)), list);
}

TEST(DiskArenaWriter, ScatterNormalizesSortsAndDeduplicates) {
  const std::string path = TempPath("scatter.shpa");
  auto writer = DiskArenaWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  DiskArenaWriter w = std::move(writer).value();
  // Raw counts include a duplicate for vertex 5; arrivals are interleaved.
  ASSERT_TRUE(w.PlanScatter({{2, 3}, {5, 4}}).ok());
  ASSERT_TRUE(w.ScatterAdd(1, 9).ok());
  ASSERT_TRUE(w.ScatterAdd(0, 7).ok());
  ASSERT_TRUE(w.ScatterAdd(1, 3).ok());
  ASSERT_TRUE(w.ScatterAdd(0, 1).ok());
  ASSERT_TRUE(w.ScatterAdd(1, 9).ok());  // duplicate
  ASSERT_TRUE(w.ScatterAdd(0, 4).ok());
  ASSERT_TRUE(w.ScatterAdd(1, 0).ok());
  ASSERT_TRUE(w.Finish(/*normalize=*/true).ok());
  // Post-normalize index reflects the deduplicated counts.
  ASSERT_EQ(w.index().size(), 2u);
  EXPECT_EQ(w.index()[1].count, 3u);

  auto arena = DiskArena::Open(path, 0);
  ASSERT_TRUE(arena.ok()) << arena.status().ToString();
  EXPECT_EQ(ToVec(arena.value()->Neighbors(2)), (std::vector<VertexId>{1, 4, 7}));
  EXPECT_EQ(ToVec(arena.value()->Neighbors(5)), (std::vector<VertexId>{0, 3, 9}));
}

TEST(DiskArenaWriter, RejectsModeMixingAndShortEntries) {
  {
    auto w = DiskArenaWriter::Create(TempPath("mix1.shpa"));
    ASSERT_TRUE(w.ok());
    DiskArenaWriter writer = std::move(w).value();
    ASSERT_TRUE(writer.PlanScatter({{0, 1}}).ok());
    EXPECT_EQ(writer.BeginEntry(1, 1).code(), StatusCode::kInvalidArgument);
    // Scatter feeding must normalize.
    EXPECT_EQ(writer.Finish(false).code(), StatusCode::kInvalidArgument);
    // Unfilled slot: vertex 0 never received its neighbor.
    EXPECT_EQ(writer.Finish(true).code(), StatusCode::kInvalidArgument);
  }
  {
    auto w = DiskArenaWriter::Create(TempPath("mix2.shpa"));
    ASSERT_TRUE(w.ok());
    DiskArenaWriter writer = std::move(w).value();
    ASSERT_TRUE(writer.BeginEntry(4, 2).ok());
    // Descending vertex and short entry both rejected.
    EXPECT_EQ(writer.BeginEntry(3, 1).code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(writer.Finish(false).code(), StatusCode::kInvalidArgument);
  }
  {
    auto w = DiskArenaWriter::Create(TempPath("mix3.shpa"));
    ASSERT_TRUE(w.ok());
    DiskArenaWriter writer = std::move(w).value();
    ASSERT_TRUE(writer.PlanScatter({{0, 1}}).ok());
    ASSERT_TRUE(writer.ScatterAdd(0, 5).ok());
    EXPECT_EQ(writer.ScatterAdd(0, 6).code(),
              StatusCode::kInvalidArgument);  // overflow
    EXPECT_EQ(writer.ScatterAdd(1, 0).code(),
              StatusCode::kInvalidArgument);  // rank out of range
  }
}

// ---- mangled fixtures ----

TEST(DiskArena, DetectsBitFlipAnywhere) {
  const std::string path = WriteSampleArena("flip.shpa");
  const std::vector<char> full = Slurp(path);
  // Flip one bit in every covered byte (everything after the magic): header
  // version, payload, index, footer counts, and the CRC field itself.
  for (size_t i = 4; i < full.size(); ++i) {
    std::vector<char> mangled = full;
    mangled[i] = static_cast<char>(mangled[i] ^ 0x10);
    const std::string mangled_path = TempPath("flip_now.shpa");
    Dump(mangled_path, mangled);
    auto result = DiskArena::Open(mangled_path, 0);
    EXPECT_FALSE(result.ok()) << "bit flip at byte " << i << " accepted";
  }
}

TEST(DiskArena, EveryTruncationPointIsAStatus) {
  const std::string path = WriteSampleArena("trunc.shpa");
  const std::vector<char> full = Slurp(path);
  for (size_t cut = 0; cut < full.size(); ++cut) {
    const std::string cut_path = TempPath("trunc_now.shpa");
    Dump(cut_path, {full.begin(), full.begin() + static_cast<long>(cut)});
    auto result = DiskArena::Open(cut_path, 0);
    EXPECT_FALSE(result.ok()) << "prefix of " << cut << " bytes accepted";
  }
}

TEST(DiskArena, RejectsWrongMagic) {
  const std::string path = WriteSampleArena("magic.shpa");
  std::vector<char> bytes = Slurp(path);
  bytes[0] = 'X';
  Dump(path, bytes);
  auto result = DiskArena::Open(path, 0);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

// Builds an arena file byte-for-byte with a VALID CRC32C, so structural
// validation past the checksum is reachable (io_test BinaryFixture idiom).
class ArenaFixture {
 public:
  ArenaFixture() {
    bytes_ = {'S', 'H', 'P', 'A'};
    Value(uint32_t{1});  // version
  }

  template <typename T>
  ArenaFixture& Value(T v) {
    const auto* p = reinterpret_cast<const uint8_t*>(&v);
    bytes_.insert(bytes_.end(), p, p + sizeof(T));
    return *this;
  }

  ArenaFixture& Payload(const std::vector<VertexId>& lists) {
    for (VertexId v : lists) Value(v);
    payload_bytes_ = lists.size() * sizeof(VertexId);
    return *this;
  }

  ArenaFixture& Entry(VertexId v, uint32_t count, uint64_t offset) {
    Value(v).Value(count).Value(offset);
    ++num_entries_;
    return *this;
  }

  std::string WriteTo(const std::string& name) {
    Value(num_entries_).Value(payload_bytes_);
    const uint32_t crc = Crc32c(bytes_.data() + 4, bytes_.size() - 4, 0);
    Value(crc);
    const std::string path = TempPath(name);
    std::ofstream f(path, std::ios::binary);
    f.write(reinterpret_cast<const char*>(bytes_.data()),
            static_cast<std::streamsize>(bytes_.size()));
    return path;
  }

 private:
  std::vector<uint8_t> bytes_;
  uint64_t num_entries_ = 0;
  uint64_t payload_bytes_ = 0;
};

TEST(DiskArena, RejectsOutOfRangeOffset) {
  // Valid CRC; entry points past the payload region.
  const std::string path = ArenaFixture()
                               .Payload({1, 2})
                               .Entry(0, 2, /*offset=*/64)
                               .WriteTo("oorange.shpa");
  auto result = DiskArena::Open(path, 0);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(DiskArena, RejectsCountOverflowingPayload) {
  // Offset in range but count runs past the payload end.
  const std::string path = ArenaFixture()
                               .Payload({1, 2})
                               .Entry(0, 5, /*offset=*/4)
                               .WriteTo("overflow.shpa");
  auto result = DiskArena::Open(path, 0);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(DiskArena, RejectsMisalignedOffset) {
  const std::string path = ArenaFixture()
                               .Payload({1, 2})
                               .Entry(0, 1, /*offset=*/2)
                               .WriteTo("misaligned.shpa");
  auto result = DiskArena::Open(path, 0);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(DiskArena, RejectsNonAscendingIndex) {
  const std::string path = ArenaFixture()
                               .Payload({1, 2})
                               .Entry(5, 1, 0)
                               .Entry(5, 1, 4)
                               .WriteTo("nonascending.shpa");
  auto result = DiskArena::Open(path, 0);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(DiskArena, RejectsOversizedFooterCountsBeforeAllocating) {
  // Footer claims 10^15 entries in a 48-byte file: the size pin must reject
  // it before the index allocation is attempted. The CRC is deliberately
  // bogus too — the count pin fires first, so Open must not even read the
  // payload region the footer implies.
  const std::string path = TempPath("oversized.shpa");
  std::vector<uint8_t> bytes = {'S', 'H', 'P', 'A', 1, 0, 0, 0};
  const uint64_t entries = 1000000000000000ull;
  const uint64_t payload = 0;
  const uint32_t crc = 0xdeadbeef;
  const auto put = [&bytes](const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    bytes.insert(bytes.end(), b, b + n);
  };
  put(&entries, 8);
  put(&payload, 8);
  put(&crc, 4);
  Dump(path, {bytes.begin(), bytes.end()});
  auto result = DiskArena::Open(path, 0);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(DiskArena, MissingFileIsIoError) {
  auto result = DiskArena::Open(TempPath("does_not_exist.shpa"), 0);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

// ---- residency cap ----

TEST(DiskArena, ResidencyCapEvictsAndTracksPeak) {
  // Payload spanning many windows: 64 lists x 16 KB = 1 MB = 8 windows.
  const std::string path = TempPath("resident.shpa");
  auto writer = DiskArenaWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  DiskArenaWriter w = std::move(writer).value();
  std::vector<VertexId> list(4096);
  for (VertexId v = 0; v < 64; ++v) {
    for (uint32_t i = 0; i < list.size(); ++i) list[i] = v * 100003u + i;
    ASSERT_TRUE(w.BeginEntry(v, static_cast<uint32_t>(list.size())).ok());
    ASSERT_TRUE(w.AppendToEntry(list).ok());
  }
  ASSERT_TRUE(w.Finish(/*normalize=*/false).ok());

  // Cap at 3 windows; a full scan must evict but never exceed the cap.
  auto arena = DiskArena::Open(path, 3 * DiskArena::kWindowBytes);
  ASSERT_TRUE(arena.ok()) << arena.status().ToString();
  const DiskArena& a = *arena.value();
  EXPECT_EQ(a.resident_cap_bytes(), 3 * DiskArena::kWindowBytes);
  uint64_t checksum = 0;
  for (VertexId v = 0; v < 64; ++v) {
    for (VertexId n : a.Neighbors(v)) checksum += n;
  }
  EXPECT_NE(checksum, 0u);
  EXPECT_GT(a.window_evictions(), 0u);
  EXPECT_LE(a.peak_resident_windows(), 3u);
  // Re-reading an evicted list refaults the identical bytes.
  EXPECT_EQ(a.Neighbors(0)[0], 0u * 100003u);
  EXPECT_EQ(a.Neighbors(63)[4095], 63u * 100003u + 4095u);
}

TEST(DiskArena, UnboundedCapDoesNoTracking) {
  const std::string path = WriteSampleArena("unbounded.shpa");
  auto arena = DiskArena::Open(path, 0);
  ASSERT_TRUE(arena.ok());
  (void)arena.value()->Neighbors(3);
  EXPECT_EQ(arena.value()->resident_cap_bytes(), 0u);
  EXPECT_EQ(arena.value()->windows_touched(), 0u);
  EXPECT_EQ(arena.value()->window_evictions(), 0u);
}

TEST(DiskArena, ConcurrentScansStayUnderCap) {
  // Four threads scanning disjoint ranges: the CLOCK second-chance evictor
  // must keep peak residency at the cap (the FIFO-only design leaked here).
  const std::string path = TempPath("concurrent.shpa");
  auto writer = DiskArenaWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  DiskArenaWriter w = std::move(writer).value();
  std::vector<VertexId> list(2048);
  for (VertexId v = 0; v < 128; ++v) {
    for (uint32_t i = 0; i < list.size(); ++i) list[i] = v + i;
    ASSERT_TRUE(w.BeginEntry(v, static_cast<uint32_t>(list.size())).ok());
    ASSERT_TRUE(w.AppendToEntry(list).ok());
  }
  ASSERT_TRUE(w.Finish(false).ok());

  auto arena = DiskArena::Open(path, 2 * DiskArena::kWindowBytes);
  ASSERT_TRUE(arena.ok());
  const DiskArena& a = *arena.value();
  std::vector<std::thread> threads;
  std::vector<uint64_t> sums(4, 0);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&a, &sums, t] {
      for (int round = 0; round < 3; ++round) {
        for (VertexId v = static_cast<VertexId>(t) * 32;
             v < (static_cast<VertexId>(t) + 1) * 32; ++v) {
          for (VertexId n : a.Neighbors(v)) sums[static_cast<size_t>(t)] += n;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < 4; ++t) EXPECT_NE(sums[static_cast<size_t>(t)], 0u);
  EXPECT_LE(a.peak_resident_windows(), 2u);
}

}  // namespace
}  // namespace shp
