// Unit tests for the bipartite graph core: builder normalization, CSR
// invariants, induced subgraphs, stats.
#include <gtest/gtest.h>

#include "graph/bipartite_graph.h"
#include "graph/graph_builder.h"
#include "graph/graph_stats.h"
#include "graph/subgraph.h"

namespace shp {
namespace {

BipartiteGraph Fig1Graph() {
  // Paper Fig. 1: queries {1,2,6}, {1,2,3,4}, {4,5,6} over data 1..6
  // (0-indexed here).
  GraphBuilder b;
  b.AddHyperedge(0, {0, 1, 5});
  b.AddHyperedge(1, {0, 1, 2, 3});
  b.AddHyperedge(2, {3, 4, 5});
  return b.Build();
}

TEST(GraphBuilder, BuildsBothCsrDirections) {
  const BipartiteGraph g = Fig1Graph();
  EXPECT_EQ(g.num_queries(), 3u);
  EXPECT_EQ(g.num_data(), 6u);
  EXPECT_EQ(g.num_edges(), 10u);
  std::string error;
  EXPECT_TRUE(g.Validate(&error)) << error;
  // Query 1 spans data {0,1,2,3}.
  auto nbrs = g.QueryNeighbors(1);
  ASSERT_EQ(nbrs.size(), 4u);
  EXPECT_EQ(nbrs[0], 0u);
  EXPECT_EQ(nbrs[3], 3u);
  // Data 0 belongs to hyperedges {0, 1}.
  auto qs = g.DataNeighbors(0);
  ASSERT_EQ(qs.size(), 2u);
  EXPECT_EQ(qs[0], 0u);
  EXPECT_EQ(qs[1], 1u);
}

TEST(GraphBuilder, DeduplicatesEdges) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  const BipartiteGraph g = b.Build();
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphBuilder, DropsTrivialQueries) {
  GraphBuilder b;
  b.AddEdge(0, 0);  // degree-1 query: inert for fanout (paper §4.1)
  b.AddHyperedge(1, {1, 2});
  const BipartiteGraph g = b.Build();
  EXPECT_EQ(g.num_queries(), 1u);  // query 0 dropped, query 1 renumbered to 0
  EXPECT_EQ(g.QueryNeighbors(0).size(), 2u);
  EXPECT_EQ(g.num_data(), 3u);  // data ids are never renumbered
}

TEST(GraphBuilder, KeepsTrivialQueriesWhenAsked) {
  GraphBuilder b;
  b.AddEdge(0, 0);
  b.AddHyperedge(1, {1, 2});
  GraphBuilder::Options options;
  options.drop_trivial_queries = false;
  const BipartiteGraph g = b.Build(options);
  EXPECT_EQ(g.num_queries(), 2u);
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(GraphBuilder, DuplicateMembershipReducesToTrivialAndDrops) {
  GraphBuilder b;
  b.AddHyperedge(0, {3, 3, 3});  // one distinct neighbor after dedupe
  b.AddHyperedge(1, {0, 1});
  const BipartiteGraph g = b.Build();
  EXPECT_EQ(g.num_queries(), 1u);
}

TEST(GraphBuilder, EmptyBuilderYieldsEmptyGraph) {
  GraphBuilder b;
  const BipartiteGraph g = b.Build();
  EXPECT_EQ(g.num_queries(), 0u);
  EXPECT_EQ(g.num_data(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(BipartiteGraph, DegreesAndMaxima) {
  const BipartiteGraph g = Fig1Graph();
  EXPECT_EQ(g.QueryDegree(1), 4u);
  EXPECT_EQ(g.DataDegree(3), 2u);
  EXPECT_EQ(g.MaxQueryDegree(), 4u);
  EXPECT_EQ(g.MaxDataDegree(), 2u);
}

TEST(BipartiteGraph, ValidateCatchesAsymmetry) {
  // Hand-build inconsistent CSR: query side says (q0, v0) but data side
  // references a different query.
  std::vector<EdgeIndex> qoff = {0, 1};
  std::vector<VertexId> qadj = {0};
  std::vector<EdgeIndex> doff = {0, 1};
  std::vector<VertexId> dadj = {0};
  BipartiteGraph ok(qoff, qadj, doff, dadj);
  EXPECT_TRUE(ok.Validate());

  std::vector<EdgeIndex> doff2 = {0, 0, 1};  // two data vertices
  std::vector<VertexId> dadj2 = {0};         // edge attached to data 1
  std::vector<EdgeIndex> qoff2 = {0, 1};
  std::vector<VertexId> qadj2 = {0};         // but query says data 0
  BipartiteGraph bad(qoff2, qadj2, doff2, dadj2);
  std::string error;
  EXPECT_FALSE(bad.Validate(&error));
  EXPECT_FALSE(error.empty());
}

TEST(BipartiteGraph, MemoryBytesScalesWithSize) {
  const BipartiteGraph g = Fig1Graph();
  EXPECT_GT(g.MemoryBytes(), 10u * sizeof(VertexId));
}

TEST(GraphStats, MatchesHandComputation) {
  const GraphStats s = ComputeGraphStats(Fig1Graph());
  EXPECT_EQ(s.num_queries, 3u);
  EXPECT_EQ(s.num_data, 6u);
  EXPECT_EQ(s.num_edges, 10u);
  EXPECT_NEAR(s.avg_query_degree, 10.0 / 3.0, 1e-12);
  EXPECT_EQ(s.isolated_data, 0u);
  EXPECT_FALSE(s.ToString().empty());
}

TEST(GraphStats, CountsIsolatedData) {
  GraphBuilder b(0, 5);  // data 0..4 exist, only 0..1 used
  b.AddHyperedge(0, {0, 1});
  const GraphStats s = ComputeGraphStats(b.Build());
  EXPECT_EQ(s.isolated_data, 3u);
}

TEST(Subgraph, InducesOnDataSubset) {
  const BipartiteGraph g = Fig1Graph();
  // Keep data {0,1,2,3}: query 0 retains {0,1}, query 1 all four, query 2
  // only {3} -> dropped as trivial.
  std::vector<bool> include = {true, true, true, true, false, false};
  const InducedSubgraph sub = BuildInducedSubgraph(g, include);
  EXPECT_EQ(sub.graph.num_data(), 4u);
  EXPECT_EQ(sub.graph.num_queries(), 2u);
  ASSERT_EQ(sub.data_to_parent.size(), 4u);
  EXPECT_EQ(sub.data_to_parent[0], 0u);
  EXPECT_EQ(sub.data_to_parent[3], 3u);
  std::string error;
  EXPECT_TRUE(sub.graph.Validate(&error)) << error;
}

TEST(Subgraph, BucketSubgraphSelectsByAssignment) {
  const BipartiteGraph g = Fig1Graph();
  std::vector<int32_t> assignment = {0, 0, 1, 1, 1, 0};
  const InducedSubgraph sub = BuildBucketSubgraph(g, assignment, 1);
  EXPECT_EQ(sub.graph.num_data(), 3u);  // data {2,3,4}
  // Only query 2 = {3,4,5} keeps ≥2 members ({3,4}); query 1 keeps {2,3}.
  EXPECT_EQ(sub.graph.num_queries(), 2u);
}

TEST(Subgraph, EmptySelection) {
  const BipartiteGraph g = Fig1Graph();
  std::vector<bool> include(6, false);
  const InducedSubgraph sub = BuildInducedSubgraph(g, include);
  EXPECT_EQ(sub.graph.num_data(), 0u);
  EXPECT_EQ(sub.graph.num_queries(), 0u);
}

}  // namespace
}  // namespace shp
