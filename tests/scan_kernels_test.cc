// Push-scan kernel equivalence tests: the AVX2 block-skip kernel must be
// bit-identical to the scalar sequential epsilon-guarded max — including
// tie-at-epsilon adversaries where the order-dependent rule diverges from a
// plain max-reduction — and the dispatched kernel must be one of the two.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "objective/gain.h"
#include "objective/scan_kernels.h"

namespace shp {
namespace {

constexpr double kEps = GainComputer::kAffinityTieEpsilon;

std::vector<AffinityEntry> MakeRun(const std::vector<double>& affinities) {
  std::vector<AffinityEntry> run;
  run.reserve(affinities.size());
  BucketId bucket = 0;
  for (double a : affinities) {
    run.push_back({bucket, 1, a});
    bucket += 1;
  }
  return run;
}

AffinityScanBest RunKernel(AffinityScanFn fn,
                           const std::vector<AffinityEntry>& run) {
  AffinityScanBest best;
  fn(run.data(), run.data() + run.size(), kEps, &best);
  return best;
}

void ExpectSameBest(const AffinityScanBest& a, const AffinityScanBest& b,
                    const char* what) {
  EXPECT_EQ(a.bucket, b.bucket) << what;
  EXPECT_EQ(a.affinity, b.affinity) << what;  // bit-identical, no tolerance
}

TEST(ScanKernels, EmptyRunLeavesStateUntouched) {
  const std::vector<AffinityEntry> run;
  ExpectSameBest(RunKernel(ScanAffinityRunScalar, run),
                 AffinityScanBest{0.0, -1}, "scalar empty");
  if (AffinityScanFn simd = SimdAffinityScan();
      simd != nullptr && SimdScanAvailable()) {
    ExpectSameBest(RunKernel(simd, run), AffinityScanBest{0.0, -1},
                   "simd empty");
  }
}

TEST(ScanKernels, DispatcherPicksACompiledKernel) {
  AffinityScanFn active = ActiveAffinityScan();
  ASSERT_NE(active, nullptr);
  if (SimdScanAvailable()) {
    EXPECT_EQ(active, SimdAffinityScan());
  } else {
    EXPECT_EQ(active, &ScanAffinityRunScalar);
  }
  // Compiled-but-unavailable (old CPU) still reports a kernel pointer.
  if (SimdScanCompiled()) {
    EXPECT_NE(SimdAffinityScan(), nullptr);
  } else {
    EXPECT_EQ(SimdAffinityScan(), nullptr);
    EXPECT_FALSE(SimdScanAvailable());
  }
}

TEST(ScanKernels, SimdMatchesScalarOnRandomizedRuns) {
  if (!SimdScanAvailable()) {
    GTEST_SKIP() << "AVX2 kernel not available on this host/build";
  }
  AffinityScanFn simd = SimdAffinityScan();
  std::mt19937_64 rng(0x51caa);
  std::uniform_real_distribution<double> dist(0.0, 4.0);
  for (int trial = 0; trial < 500; ++trial) {
    const size_t n = rng() % 37;  // covers empty, sub-block, and tail sizes
    std::vector<double> affs(n);
    for (double& a : affs) a = dist(rng);
    const std::vector<AffinityEntry> run = MakeRun(affs);
    ExpectSameBest(RunKernel(ScanAffinityRunScalar, run),
                   RunKernel(simd, run), "randomized");
  }
}

TEST(ScanKernels, SimdMatchesScalarOnEpsilonTieAdversaries) {
  if (!SimdScanAvailable()) {
    GTEST_SKIP() << "AVX2 kernel not available on this host/build";
  }
  AffinityScanFn simd = SimdAffinityScan();
  // Runs built from values spaced by fractions/multiples of the tie epsilon.
  // The sequential rule is order-dependent here: 1.0 followed by 1.0 + eps/2
  // keeps the first entry, but 1.0 + 2*eps later re-takes — a plain
  // max-then-lowest-bucket reduction gets several of these wrong.
  const double b = 1.0;
  const std::vector<std::vector<double>> adversaries = {
      {b, b + kEps / 2},
      {b, b + kEps, b + kEps / 2},
      {b, b + 2 * kEps, b + 2 * kEps + kEps / 2},
      {b + kEps, b, b + kEps / 2, b + 3 * kEps},
      {b, b + kEps / 4, b + kEps / 2, b + 3 * kEps / 4, b + kEps,
       b + 5 * kEps / 4},
      // A strictly ascending eps/2 staircase: the running best advances only
      // every other entry.
      {b, b + kEps / 2, b + kEps, b + 3 * kEps / 2, b + 2 * kEps,
       b + 5 * kEps / 2, b + 3 * kEps, b + 7 * kEps / 2, b + 4 * kEps},
  };
  for (size_t i = 0; i < adversaries.size(); ++i) {
    const std::vector<AffinityEntry> run = MakeRun(adversaries[i]);
    ExpectSameBest(RunKernel(ScanAffinityRunScalar, run),
                   RunKernel(simd, run), "adversary");
  }
  // Randomized epsilon-neighborhood runs: every value within a few eps of b.
  std::mt19937_64 rng(0x7135);
  for (int trial = 0; trial < 300; ++trial) {
    const size_t n = 1 + rng() % 24;
    std::vector<double> affs(n);
    for (double& a : affs) {
      a = b + static_cast<double>(rng() % 9) * (kEps / 2);
    }
    const std::vector<AffinityEntry> run = MakeRun(affs);
    ExpectSameBest(RunKernel(ScanAffinityRunScalar, run),
                   RunKernel(simd, run), "randomized adversary");
  }
}

TEST(ScanKernels, ChainedSplitScansEqualOneUnbrokenScan) {
  // Kernels must carry state across split runs exactly like one loop —
  // this is how gain.cc excises the `from` entry.
  std::mt19937_64 rng(0xc4a1);
  std::uniform_real_distribution<double> dist(0.0, 2.0);
  AffinityScanFn simd = SimdScanAvailable() ? SimdAffinityScan() : nullptr;
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = 1 + rng() % 30;
    std::vector<double> affs(n);
    for (double& a : affs) a = dist(rng);
    const std::vector<AffinityEntry> run = MakeRun(affs);
    const AffinityScanBest whole = RunKernel(ScanAffinityRunScalar, run);
    const size_t split = rng() % (n + 1);
    AffinityScanBest chained;
    ScanAffinityRunScalar(run.data(), run.data() + split, kEps, &chained);
    ScanAffinityRunScalar(run.data() + split, run.data() + n, kEps, &chained);
    ExpectSameBest(chained, whole, "scalar chained");
    if (simd != nullptr) {
      AffinityScanBest chained_simd;
      simd(run.data(), run.data() + split, kEps, &chained_simd);
      simd(run.data() + split, run.data() + n, kEps, &chained_simd);
      ExpectSameBest(chained_simd, whole, "simd chained");
    }
  }
}

TEST(ScanKernels, EmptyScanWindowFallsBackToLowestSibling) {
  // When the accumulator window holds only the excised `from` entry, the
  // kernel scans an empty range and leaves its {0.0, -1} start state — the
  // grouped push scan must then fall back to the lowest sibling != from, and
  // report -1 when no sibling exists.
  GainComputer gc(/*p=*/0.5, /*max_query_degree=*/8);
  ASSERT_TRUE(gc.SupportsPush());
  const std::vector<AffinityEntry> window = {{5, 2, 0.75}};
  const std::vector<BucketId> siblings = {4, 5, 6};
  const auto best = gc.FindBestTargetPushGroupedWindow(
      window, /*from=*/5, siblings, /*degree=*/3.0);
  EXPECT_EQ(best.bucket, 4);
  const std::vector<BucketId> only_from = {5};
  const auto none = gc.FindBestTargetPushGroupedWindow(
      window, /*from=*/5, only_from, /*degree=*/3.0);
  EXPECT_EQ(none.bucket, -1);
  EXPECT_EQ(none.gain, 0.0);
}

}  // namespace
}  // namespace shp
