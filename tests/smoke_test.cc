// End-to-end smoke tests: SHP must substantially beat a random partition on
// structured inputs and recover planted partitions. These run first during
// development; the detailed per-module suites live alongside.
#include <gtest/gtest.h>

#include "core/shp.h"
#include "graph/gen_planted.h"
#include "graph/gen_social.h"

namespace shp {
namespace {

TEST(Smoke, RecursiveBisectionRecoversPlantedPartition) {
  PlantedPartitionConfig config;
  config.num_data = 2000;
  config.num_queries = 4000;
  config.num_groups = 4;
  config.mixing = 0.02;
  PlantedPartition planted = GeneratePlantedPartition(config);

  RecursiveOptions options;
  options.k = 4;
  options.seed = 5;
  RecursiveResult result = RecursivePartitioner(options).Run(planted.graph);

  PartitionSummary summary =
      SummarizePartition(planted.graph, result.assignment, 4);
  // With 2% mixing the ground truth has fanout close to 1; SHP should land
  // well under the random baseline of ~min(k, avg degree) ≈ 3.9.
  EXPECT_LT(summary.fanout, 1.6);
  EXPECT_LE(summary.imbalance, 0.05 + 1e-9);
}

TEST(Smoke, ShpKImprovesOverRandomOnSocialGraph) {
  SocialGraphConfig config;
  config.num_users = 3000;
  config.avg_degree = 12;
  BipartiteGraph graph = GenerateSocialGraph(config);

  const auto random_assignment =
      Partition::Random(graph.num_data(), 8, 123).assignment();
  const double random_fanout = AverageFanout(graph, random_assignment);

  ShpKOptions options;
  options.k = 8;
  options.seed = 9;
  ShpResult result = ShpKPartitioner(options).Run(graph);
  const double shp_fanout = AverageFanout(graph, result.assignment);

  EXPECT_LT(shp_fanout, random_fanout * 0.8)
      << "SHP-k should cut fanout well below random";
  EXPECT_TRUE(
      Partition::FromAssignment(result.assignment, 8).IsBalanced(0.05));
}

}  // namespace
}  // namespace shp
