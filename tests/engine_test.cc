// BSP engine tests: routing/accounting, sharding, the BSP refiner's
// equivalence to the threaded refiner, Giraph-style optimizations (delta
// supersteps, message combining), and the cost model.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "core/recursive.h"
#include "core/shp_k.h"
#include "engine/bsp_engine.h"
#include "engine/cost_model.h"
#include "engine/distributed_shp.h"
#include "engine/message_router.h"
#include "engine/shp_bsp.h"
#include "graph/gen_powerlaw.h"
#include "graph/gen_social.h"
#include "objective/objective.h"

namespace shp {
namespace {

TEST(MessageRouter, SeparatesLocalFromRemote) {
  MessageRouter<int> router(3);
  router.Send(0, 0, 1);  // local
  router.Send(0, 1, 2);  // remote
  router.Send(2, 1, 3);  // remote
  EXPECT_EQ(router.Incoming(0, 1).size(), 1u);
  const RouteStats stats = router.CollectAndClear(4);
  EXPECT_EQ(stats.local_messages, 1u);
  EXPECT_EQ(stats.remote_messages, 2u);
  EXPECT_EQ(stats.remote_bytes, 8u);
  // Cleared after collection.
  EXPECT_TRUE(router.Incoming(0, 1).empty());
}

TEST(MessageRouter, SizedCollection) {
  MessageRouter<std::vector<int>> router(2);
  router.Send(0, 1, {1, 2, 3});
  const RouteStats stats = router.CollectAndClearSized(
      [](const std::vector<int>& m) { return m.size() * sizeof(int); });
  EXPECT_EQ(stats.remote_bytes, 12u);
}

TEST(MessageRouter, PerWorkerByteCounters) {
  MessageRouter<int> router(2);
  router.Send(0, 1, 5);
  router.CollectAndClear(10);
  EXPECT_EQ(router.out_bytes()[0], 10u);
  EXPECT_EQ(router.in_bytes()[1], 10u);
  router.ResetByteCounters();
  EXPECT_EQ(router.out_bytes()[0], 0u);
}

TEST(MessageRouter, SizedCollectionCountsOnlyRemoteBytes) {
  // Local deliveries are free in Giraph ("replaced with a read from the
  // local memory"): they must count as local messages and zero bytes.
  MessageRouter<std::vector<int>> router(2);
  router.Send(0, 0, {1, 2, 3, 4});  // local
  router.Send(1, 0, {5});           // remote
  const RouteStats stats = router.CollectAndClearSized(
      [](const std::vector<int>& m) { return m.size() * sizeof(int); });
  EXPECT_EQ(stats.local_messages, 1u);
  EXPECT_EQ(stats.remote_messages, 1u);
  EXPECT_EQ(stats.remote_bytes, 4u);
  EXPECT_EQ(router.out_bytes()[0], 0u) << "local bytes never hit the wire";
  EXPECT_EQ(router.out_bytes()[1], 4u);
  EXPECT_EQ(router.in_bytes()[0], 4u);
}

TEST(MessageRouter, ByteCountersAccumulateAcrossSupersteps) {
  // The cost model's max-over-workers term reads the counters after several
  // supersteps; each CollectAndClear* must add, not overwrite.
  MessageRouter<int> router(3);
  router.Send(0, 1, 1);
  router.Send(0, 2, 2);
  const RouteStats first = router.CollectAndClear(8);
  EXPECT_EQ(first.remote_bytes, 16u);
  router.Send(0, 1, 3);
  router.Send(2, 1, 4);
  const RouteStats second = router.CollectAndClearSized(
      [](const int&) { return size_t{4}; });
  EXPECT_EQ(second.remote_bytes, 8u);
  EXPECT_EQ(router.out_bytes()[0], 8u + 8u + 4u);
  EXPECT_EQ(router.out_bytes()[2], 4u);
  EXPECT_EQ(router.in_bytes()[1], 8u + 4u + 4u);
  EXPECT_EQ(router.in_bytes()[2], 8u);
  router.ResetByteCounters();
  EXPECT_EQ(router.in_bytes()[1], 0u);
}

TEST(MessageCombiner, CombinesPerDestinationAndSurvivesReset) {
  MessageCombiner<int32_t> combiner;
  combiner.Reset(2);
  ++combiner.Slot(0, 1, 7);
  ++combiner.Slot(0, 1, 7);
  --combiner.Slot(0, 1, 9);
  ++combiner.Slot(1, 1, 7);  // different source row: independent
  EXPECT_EQ(combiner.Cell(0, 1).at(7), 2);
  EXPECT_EQ(combiner.Cell(0, 1).at(9), -1);
  EXPECT_EQ(combiner.Cell(1, 1).at(7), 1);
  EXPECT_TRUE(combiner.Cell(0, 0).empty());
  combiner.Reset(2);
  EXPECT_TRUE(combiner.Cell(0, 1).empty()) << "Reset clears combined state";
}

TEST(Sharding, CoversAllVerticesExactlyOnce) {
  const VertexSharding sharding(4, 99);
  const auto shards = VertexSharding::BuildDataShards(sharding, 1000);
  size_t total = 0;
  for (const auto& shard : shards) total += shard.size();
  EXPECT_EQ(total, 1000u);
  // Roughly even (hash distribution).
  for (const auto& shard : shards) {
    EXPECT_GT(shard.size(), 150u);
    EXPECT_LT(shard.size(), 350u);
  }
}

TEST(Sharding, QueryAndDataSaltsDiffer) {
  const VertexSharding sharding(16, 7);
  int differing = 0;
  for (VertexId v = 0; v < 100; ++v) {
    if (sharding.DataWorker(v) != sharding.QueryWorker(v)) ++differing;
  }
  EXPECT_GT(differing, 50) << "sides use independent hash streams";
}

BipartiteGraph TestGraph(uint64_t seed = 3) {
  SocialGraphConfig config;
  config.num_users = 1200;
  config.avg_degree = 8;
  config.seed = seed;
  return GenerateSocialGraph(config);
}

TEST(BspRefiner, QualityMatchesThreadedRefiner) {
  const BipartiteGraph g = TestGraph();
  const BucketId k = 8;

  ShpKOptions threaded_options;
  threaded_options.k = k;
  threaded_options.seed = 5;
  const ShpResult threaded = ShpKPartitioner(threaded_options).Run(g);

  ShpKOptions bsp_options = threaded_options;
  std::vector<SuperstepStats> log;
  bsp_options.refiner_factory = [&log](const BipartiteGraph& graph,
                                       const RefinerOptions& options) {
    BspConfig config;
    config.num_workers = 4;
    return std::make_unique<BspRefiner>(graph, options, config, &log);
  };
  const ShpResult bsp = ShpKPartitioner(bsp_options).Run(g);

  const double threaded_fanout = AverageFanout(g, threaded.assignment);
  const double bsp_fanout = AverageFanout(g, bsp.assignment);
  EXPECT_LT(std::abs(bsp_fanout - threaded_fanout) / threaded_fanout, 0.10)
      << "BSP and threaded engines run the same algorithm";
  EXPECT_TRUE(Partition::FromAssignment(bsp.assignment, k).IsBalanced(0.05));
  EXPECT_FALSE(log.empty());
  EXPECT_EQ(log.size() % 4, 0u) << "four supersteps per iteration (Fig. 3)";
}

TEST(BspRefiner, DeltaSuperstepOneShrinksAfterFirstIteration) {
  // Giraph optimization (paper §3.3): vertices that did not move do not
  // send superstep-1 messages, so iteration 2's superstep 1 must carry far
  // fewer messages than iteration 1's (which announces everyone).
  const BipartiteGraph g = TestGraph();
  std::vector<SuperstepStats> log;
  ShpKOptions options;
  options.k = 4;
  options.max_iterations = 6;
  options.min_move_fraction = 0.0;
  options.refiner_factory = [&log](const BipartiteGraph& graph,
                                   const RefinerOptions& ropts) {
    BspConfig config;
    config.num_workers = 4;
    return std::make_unique<BspRefiner>(graph, ropts, config, &log);
  };
  ShpKPartitioner(options).Run(g);
  ASSERT_GE(log.size(), 24u);
  auto s1_messages = [&log](size_t iteration) {
    return log[iteration * 4].traffic.remote_messages +
           log[iteration * 4].traffic.local_messages;
  };
  // Early iterations move many vertices (two delta entries each), so the
  // first comparison is loose; by iteration 6 movement has decayed and the
  // delta traffic must be a small fraction of the initial announcement.
  EXPECT_LT(s1_messages(5), s1_messages(0) / 2)
      << "movement decays, so delta messages must shrink sharply";
}

TEST(BspRefiner, Superstep2VolumeBoundedByFanoutTimesEdges) {
  // Paper §3.3: superstep-2 volume ≈ Σ_q fanout(q)·(#dst) ≤ fanout·|E|.
  const BipartiteGraph g = TestGraph();
  std::vector<SuperstepStats> log;
  ShpKOptions options;
  options.k = 8;
  options.max_iterations = 1;
  options.min_move_fraction = 0.0;
  options.refiner_factory = [&log](const BipartiteGraph& graph,
                                   const RefinerOptions& ropts) {
    BspConfig config;
    config.num_workers = 4;
    return std::make_unique<BspRefiner>(graph, ropts, config, &log);
  };
  ShpKPartitioner(options).Run(g);
  ASSERT_GE(log.size(), 2u);
  const SuperstepStats& s2 = log[1];
  const uint64_t entries_upper =
      static_cast<uint64_t>(8) * g.num_edges();  // k·|E| hard bound
  EXPECT_LT(s2.traffic.remote_bytes / sizeof(BucketCount), entries_upper);
}

// Delta exchange + push sweep (sweep_mode kPush) vs the full-reship pull
// reference, across all three broker strategies and several cluster widths.
// The two exchanges accumulate floats in different orders, so the
// trajectories agree to tolerance, not bits (PR 2's contract): the Debug
// build additionally asserts the per-vertex proposal tolerance and the
// replica bit-equality inside RunIteration.
class BspDeltaExchange
    : public testing::TestWithParam<
          std::tuple<MoveBrokerOptions::Strategy, int>> {};

TEST_P(BspDeltaExchange, PushTrajectoryMatchesPullWithinTolerance) {
  const auto [strategy, workers] = GetParam();
  const BipartiteGraph g = TestGraph();
  const BucketId k = 8;
  const MoveTopology topo = MoveTopology::FullK(k, g.num_data(), 0.05);

  RefinerOptions pull_options;
  pull_options.broker.strategy = strategy;
  pull_options.sweep_mode = RefinerOptions::SweepMode::kPull;
  // Always patch (no high-churn re-bootstrap) so every steady-state
  // iteration exercises the delta wire + accumulator patch path.
  pull_options.incremental_rebuild_fraction = 1.0;
  RefinerOptions push_options = pull_options;
  push_options.sweep_mode = RefinerOptions::SweepMode::kPush;
  BspConfig config;
  config.num_workers = workers;

  std::vector<SuperstepStats> pull_log;
  std::vector<SuperstepStats> push_log;
  BspRefiner pull(g, pull_options, config, &pull_log);
  BspRefiner push(g, push_options, config, &push_log);
  Partition p_pull = Partition::BalancedRandom(g.num_data(), k, 2);
  Partition p_push = p_pull;

  for (uint64_t iter = 0; iter < 6; ++iter) {
    const IterationStats a = pull.RunIteration(topo, &p_pull, 9, iter);
    const IterationStats b = push.RunIteration(topo, &p_push, 9, iter);
    EXPECT_FALSE(a.push_sweep);
    EXPECT_TRUE(b.push_sweep);
    const double f_pull = AveragePFanout(g, p_pull.assignment(), 0.5);
    const double f_push = AveragePFanout(g, p_push.assignment(), 0.5);
    ASSERT_NEAR(f_pull, f_push, 1e-6 * std::max(f_pull, f_push))
        << "iteration " << iter << " (strategy "
        << static_cast<int>(strategy) << ", W=" << workers << ")";
    if (iter > 0) {
      EXPECT_GT(b.num_delta_records, 0u)
          << "steady-state iterations must flow delta records";
    }
  }
  ASSERT_EQ(pull_log.size(), push_log.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategiesAndWidths, BspDeltaExchange,
    testing::Combine(
        testing::Values(MoveBrokerOptions::Strategy::kPlainProbability,
                        MoveBrokerOptions::Strategy::kHistogramMatching,
                        MoveBrokerOptions::Strategy::kExactPairing),
        testing::Values(1, 3, 8)));

TEST(BspRefiner, DeltaExchangeShrinksSteadyStateSuperstep2Traffic) {
  // The point of the delta exchange: steady-state superstep 2 moves
  // O(delta records), not O(Σ deg(dirty q) × touched workers). High-churn
  // early rounds re-bootstrap (full reship — the records would outweigh the
  // lists there); once movement decays, the delta supersteps must undercut
  // the full reship, and every delta-superstep remote byte must be a
  // fixed-width NeighborDelta record. The win scales with query fanout, so
  // measure on a power-law workload (hub queries with near-k fanout — the
  // paper's regime) rather than the low-degree social graph.
  PowerLawConfig pcfg;
  pcfg.num_queries = 4000;
  pcfg.num_data = 3000;
  pcfg.target_edges = 30000;
  pcfg.seed = 7;
  const BipartiteGraph g = GeneratePowerLaw(pcfg);
  const BucketId k = 32;
  const MoveTopology topo = MoveTopology::FullK(k, g.num_data(), 0.05);
  BspConfig config;
  config.num_workers = 4;
  // Raw reference wire: this test pins the fixed-width record accounting
  // (VarintWire* below covers the grouped codec).
  config.varint_wire = false;
  const uint64_t iterations = 14;

  auto run = [&](RefinerOptions::SweepMode mode) {
    RefinerOptions options;
    options.sweep_mode = mode;
    std::vector<SuperstepStats> log;
    BspRefiner refiner(g, options, config, &log);
    Partition partition = Partition::BalancedRandom(g.num_data(), k, 2);
    for (uint64_t iter = 0; iter < iterations; ++iter) {
      refiner.RunIteration(topo, &partition, 9, iter);
    }
    return log;
  };
  const auto pull_log = run(RefinerOptions::SweepMode::kPull);
  const auto push_log = run(RefinerOptions::SweepMode::kPush);
  ASSERT_EQ(pull_log.size(), push_log.size());
  ASSERT_EQ(push_log.size(), iterations * 4);

  // Steady state: the last half of the run.
  uint64_t pull_s2 = 0;
  uint64_t push_s2 = 0;
  uint64_t delta_supersteps = 0;
  for (size_t iter = iterations / 2; iter < iterations; ++iter) {
    pull_s2 += pull_log[iter * 4 + 1].traffic.remote_bytes;
    const SuperstepStats& s2 = push_log[iter * 4 + 1];
    push_s2 += s2.traffic.remote_bytes;
    if (s2.label == "2:ship-deltas+gains") {
      ++delta_supersteps;
      EXPECT_EQ(s2.traffic.remote_bytes,
                s2.traffic.remote_messages * sizeof(NeighborDelta))
          << "delta-mode superstep 2 ships fixed-width records";
    }
  }
  EXPECT_GT(delta_supersteps, 0u)
      << "movement must decay into the delta-exchange regime";
  EXPECT_GT(pull_s2, 0u);
  EXPECT_LT(push_s2, pull_s2)
      << "delta exchange must undercut the full reship in steady state";
  // The first iteration bootstraps in both modes with the same reship.
  EXPECT_EQ(pull_log[1].traffic.remote_bytes,
            push_log[1].traffic.remote_bytes);
}

TEST(BspRefiner, GroupedDeltaExchangeShrinksSteadyStateSuperstep2Traffic) {
  // Same steady-state byte claim for the production scenario: a grouped
  // SHP-2 recursion window (sibling pairs over k = 32). The grouped pull
  // reference reships dirty queries' restricted lists; the delta exchange
  // must undercut it once movement decays.
  PowerLawConfig pcfg;
  pcfg.num_queries = 4000;
  pcfg.num_data = 3000;
  pcfg.target_edges = 30000;
  pcfg.seed = 7;
  const BipartiteGraph g = GeneratePowerLaw(pcfg);
  const BucketId k = 32;
  std::vector<std::vector<BucketId>> pairs;
  for (BucketId b = 0; b < k; b += 2) pairs.push_back({b, b + 1});
  const MoveTopology topo =
      MoveTopology::Grouped(k, g.num_data(), 0.05, std::move(pairs));
  BspConfig config;
  config.num_workers = 4;
  config.varint_wire = false;  // raw reference wire (see the full-k variant)
  const uint64_t iterations = 14;

  auto run = [&](RefinerOptions::SweepMode mode) {
    RefinerOptions options;
    options.sweep_mode = mode;
    std::vector<SuperstepStats> log;
    BspRefiner refiner(g, options, config, &log);
    Partition partition = Partition::BalancedRandom(g.num_data(), k, 2);
    for (uint64_t iter = 0; iter < iterations; ++iter) {
      refiner.RunIteration(topo, &partition, 9, iter);
    }
    return log;
  };
  const auto pull_log = run(RefinerOptions::SweepMode::kPull);
  const auto push_log = run(RefinerOptions::SweepMode::kPush);
  ASSERT_EQ(push_log.size(), iterations * 4);

  uint64_t pull_s2 = 0;
  uint64_t push_s2 = 0;
  uint64_t delta_supersteps = 0;
  for (size_t iter = iterations / 2; iter < iterations; ++iter) {
    pull_s2 += pull_log[iter * 4 + 1].traffic.remote_bytes;
    const SuperstepStats& s2 = push_log[iter * 4 + 1];
    push_s2 += s2.traffic.remote_bytes;
    if (s2.label == "2:ship-deltas+gains") {
      ++delta_supersteps;
      EXPECT_EQ(s2.traffic.remote_bytes,
                s2.traffic.remote_messages * sizeof(NeighborDelta))
          << "delta-mode superstep 2 ships fixed-width records";
    }
  }
  EXPECT_GT(delta_supersteps, 0u)
      << "grouped movement must decay into the delta-exchange regime";
  EXPECT_GT(pull_s2, 0u);
  EXPECT_LT(push_s2, pull_s2)
      << "grouped delta exchange must undercut the grouped full reship";
}

TEST(BspRefiner, VarintWireUndercutsRawSteadyStateSuperstep2Bytes) {
  // The grouped varint codec is byte accounting only: the raw and varint
  // runs must produce the identical partition trajectory, and once movement
  // decays into the delta-exchange regime the varint steady-state superstep-2
  // bytes must come in well under the raw 16-byte records (the ISSUE floor is
  // a 25% reduction; steady state the codec sits near 3 bytes/record).
  PowerLawConfig pcfg;
  pcfg.num_queries = 4000;
  pcfg.num_data = 3000;
  pcfg.target_edges = 30000;
  pcfg.seed = 7;
  const BipartiteGraph g = GeneratePowerLaw(pcfg);
  const BucketId k = 32;
  const MoveTopology topo = MoveTopology::FullK(k, g.num_data(), 0.05);
  const uint64_t iterations = 14;

  auto run = [&](bool varint, Partition* out) {
    BspConfig config;
    config.num_workers = 4;
    config.varint_wire = varint;
    RefinerOptions options;
    options.sweep_mode = RefinerOptions::SweepMode::kPush;
    std::vector<SuperstepStats> log;
    BspRefiner refiner(g, options, config, &log);
    Partition partition = Partition::BalancedRandom(g.num_data(), k, 2);
    for (uint64_t iter = 0; iter < iterations; ++iter) {
      refiner.RunIteration(topo, &partition, 9, iter);
    }
    *out = std::move(partition);
    return log;
  };
  Partition raw_part;
  Partition varint_part;
  const auto raw_log = run(false, &raw_part);
  const auto varint_log = run(true, &varint_part);
  ASSERT_EQ(raw_log.size(), varint_log.size());
  for (VertexId v = 0; v < g.num_data(); ++v) {
    ASSERT_EQ(raw_part.bucket_of(v), varint_part.bucket_of(v))
        << "wire accounting must never steer the refinement trajectory";
  }

  uint64_t raw_s2 = 0;
  uint64_t varint_s2 = 0;
  uint64_t delta_supersteps = 0;
  for (size_t iter = iterations / 2; iter < iterations; ++iter) {
    const SuperstepStats& raw_s2_step = raw_log[iter * 4 + 1];
    const SuperstepStats& varint_s2_step = varint_log[iter * 4 + 1];
    ASSERT_EQ(raw_s2_step.label, varint_s2_step.label);
    if (raw_s2_step.label != "2:ship-deltas+gains") continue;
    ++delta_supersteps;
    ASSERT_EQ(raw_s2_step.traffic.remote_messages,
              varint_s2_step.traffic.remote_messages);
    raw_s2 += raw_s2_step.traffic.remote_bytes;
    varint_s2 += varint_s2_step.traffic.remote_bytes;
  }
  ASSERT_GT(delta_supersteps, 0u)
      << "movement must decay into the delta-exchange regime";
  EXPECT_LT(varint_s2, raw_s2 - raw_s2 / 4)
      << "varint steady-state superstep-2 bytes must be >= 25% below raw";
}

TEST(BspRefiner, GroupedRoundsKeepDeltaExchangeAndReplicas) {
  // kAuto on one refiner instance alternating full-k and grouped recursion
  // windows: every round runs the delta exchange + push sweep (the full-k
  // gate is gone — grouped rounds scan the group-restricted accumulator
  // view), and the replicas survive the topology switches: one bootstrap
  // reship total, topology changes only re-slice the scan window. Debug
  // builds assert replica + proposal equivalence inside RunIteration.
  const BipartiteGraph g = TestGraph();
  const BucketId k = 8;
  const MoveTopology full = MoveTopology::FullK(k, g.num_data(), 0.05);
  const MoveTopology grouped = MoveTopology::Grouped(
      k, g.num_data(), 0.05, {{0, 1, 2, 3}, {4, 5, 6, 7}});
  RefinerOptions options;
  options.sweep_mode = RefinerOptions::SweepMode::kAuto;
  // Always patch: this test pins the replica lifecycle, not the churn
  // heuristic.
  options.incremental_rebuild_fraction = 1.0;
  BspConfig config;
  config.num_workers = 3;
  BspRefiner refiner(g, options, config);
  Partition partition = Partition::BalancedRandom(g.num_data(), k, 6);
  for (uint64_t iter = 0; iter < 8; ++iter) {
    const bool full_k_round = iter % 4 < 2;
    const IterationStats stats = refiner.RunIteration(
        full_k_round ? full : grouped, &partition, 9, iter);
    EXPECT_TRUE(stats.push_sweep)
        << "grouped rounds must stay on the delta exchange (iter " << iter
        << ")";
  }
  EXPECT_EQ(refiner.num_bootstrap_reships(), 1u)
      << "topology switches must re-slice, not reship";
  EXPECT_TRUE(Partition::FromAssignment(partition.assignment(), k)
                  .IsBalanced(0.051));
}

TEST(BspRefiner, ZeroMoveGroupedRoundKeepsReplicasFresh) {
  // A grouped round that folds the previous round's moves but itself moves
  // nothing (prohibitive anchor penalty): the fold's delta records must
  // patch the accumulator replicas — grouped rounds emit like full-k ones —
  // so the following full-k round carries on without a bootstrap reship.
  // Debug builds assert replica equality inside RunIteration.
  const BipartiteGraph g = TestGraph();
  const BucketId k = 8;
  const MoveTopology full = MoveTopology::FullK(k, g.num_data(), 0.05);
  const MoveTopology grouped = MoveTopology::Grouped(
      k, g.num_data(), 0.05, {{0, 1, 2, 3}, {4, 5, 6, 7}});
  RefinerOptions options;
  options.sweep_mode = RefinerOptions::SweepMode::kAuto;
  options.incremental_rebuild_fraction = 1.0;
  BspConfig config;
  config.num_workers = 3;
  BspRefiner refiner(g, options, config);
  Partition partition = Partition::BalancedRandom(g.num_data(), k, 6);
  uint64_t iter = 0;
  IterationStats stats;
  do {
    stats = refiner.RunIteration(full, &partition, 9, iter++);
  } while (iter < 40 && stats.num_moved == 0);
  ASSERT_GT(stats.num_moved, 0u) << "need moves pending for the grouped fold";
  const uint64_t bootstraps = refiner.num_bootstrap_reships();
  // Grouped round: folds the pending moves, executes none of its own.
  const std::vector<BucketId> anchor = partition.assignment();
  stats = refiner.RunIteration(grouped, &partition, 9, iter++, nullptr,
                               &anchor, 1e9);
  EXPECT_TRUE(stats.push_sweep);
  EXPECT_EQ(stats.num_moved, 0u) << "the repro needs a zero-move fold round";
  EXPECT_GT(stats.num_delta_records, 0u)
      << "the grouped fold must emit the patch records";
  stats = refiner.RunIteration(full, &partition, 9, iter++);
  EXPECT_TRUE(stats.push_sweep);
  EXPECT_EQ(refiner.num_bootstrap_reships(), bootstraps)
      << "no re-bootstrap across the grouped fold";
}

/// Deals each bucket's members over `children` in deterministic hash order
/// with exact quotas — the recursion driver's redistribution, reproduced for
/// manually driven level advances.
void RedistributeByQuota(Partition* partition, BucketId parent,
                         const std::vector<BucketId>& children,
                         uint64_t seed) {
  std::vector<VertexId> members;
  for (VertexId v = 0; v < partition->num_data(); ++v) {
    if (partition->bucket_of(v) == parent) members.push_back(v);
  }
  std::sort(members.begin(), members.end(), [&](VertexId a, VertexId b) {
    const uint64_t ha = HashCombine(seed, a, 0);
    const uint64_t hb = HashCombine(seed, b, 0);
    if (ha != hb) return ha < hb;
    return a < b;
  });
  size_t cursor = 0;
  for (size_t c = 0; c < children.size(); ++c) {
    size_t quota = members.size() / children.size();
    if (c + 1 == children.size()) quota = members.size() - cursor;
    for (size_t i = 0; i < quota && cursor < members.size(); ++i) {
      partition->Move(members[cursor++], children[c]);
    }
  }
}

// Grouped delta exchange vs the grouped full-reship pull reference, across
// all three broker strategies and several cluster widths, over two manually
// driven SHP-2 recursion levels (level advance = quota redistribution, the
// driver's external mutation). Trajectories agree to the established rtol
// 1e-4 fanout contract; Debug builds additionally assert the per-vertex
// proposal tolerance and replica consistency inside RunIteration.
class BspGroupedDeltaExchange
    : public testing::TestWithParam<
          std::tuple<MoveBrokerOptions::Strategy, int>> {};

TEST_P(BspGroupedDeltaExchange, TrajectoryMatchesPullAcrossRecursionLevels) {
  const auto [strategy, workers] = GetParam();
  const BipartiteGraph g = TestGraph();
  const BucketId k = 8;
  // SHP-2 over k = 8: level 1 splits [0,8) into {0,4}; level 2 splits the
  // halves into {{0,2},{4,6}}.
  const MoveTopology level1 =
      MoveTopology::Grouped(k, g.num_data(), 0.05, {{0, 4}});
  const MoveTopology level2 =
      MoveTopology::Grouped(k, g.num_data(), 0.05, {{0, 2}, {4, 6}});

  RefinerOptions pull_options;
  pull_options.broker.strategy = strategy;
  pull_options.sweep_mode = RefinerOptions::SweepMode::kPull;
  pull_options.incremental_rebuild_fraction = 1.0;
  RefinerOptions push_options = pull_options;
  push_options.sweep_mode = RefinerOptions::SweepMode::kPush;
  BspConfig config;
  config.num_workers = workers;

  BspRefiner pull(g, pull_options, config);
  BspRefiner push(g, push_options, config);
  Partition p_pull(g.num_data(), k);  // all in bucket 0 = the root node
  Partition p_push(g.num_data(), k);
  RedistributeByQuota(&p_pull, 0, {0, 4}, 0x5eed);
  RedistributeByQuota(&p_push, 0, {0, 4}, 0x5eed);

  uint64_t iter = 0;
  uint64_t push_delta_records = 0;
  const auto run_level = [&](const MoveTopology& topo) {
    for (int i = 0; i < 4; ++i, ++iter) {
      const IterationStats a = pull.RunIteration(topo, &p_pull, 9, iter);
      const IterationStats b = push.RunIteration(topo, &p_push, 9, iter);
      EXPECT_FALSE(a.push_sweep);
      EXPECT_TRUE(b.push_sweep);
      push_delta_records += b.num_delta_records;
      const double f_pull = AveragePFanout(g, p_pull.assignment(), 0.5);
      const double f_push = AveragePFanout(g, p_push.assignment(), 0.5);
      ASSERT_NEAR(f_pull, f_push, 1e-4 * std::max(f_pull, f_push))
          << "iteration " << iter << " (strategy "
          << static_cast<int>(strategy) << ", W=" << workers << ")";
    }
  };
  run_level(level1);
  // Level advance: the driver's redistribution, applied to each trajectory.
  RedistributeByQuota(&p_pull, 0, {0, 2}, 0xfeed);
  RedistributeByQuota(&p_pull, 4, {4, 6}, 0xfeed);
  RedistributeByQuota(&p_push, 0, {0, 2}, 0xfeed);
  RedistributeByQuota(&p_push, 4, {4, 6}, 0xfeed);
  run_level(level2);

  EXPECT_GT(push_delta_records, 0u)
      << "grouped steady-state iterations must flow delta records";
  EXPECT_EQ(push.num_bootstrap_reships(), 1u)
      << "the level advance must re-restrict the replicas, not reship them";
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategiesAndWidths, BspGroupedDeltaExchange,
    testing::Combine(
        testing::Values(MoveBrokerOptions::Strategy::kPlainProbability,
                        MoveBrokerOptions::Strategy::kHistogramMatching,
                        MoveBrokerOptions::Strategy::kExactPairing),
        testing::Values(1, 3, 8)));

TEST(BspRefiner, RecursionLevelAdvanceReRestrictsWithoutBootstrapReship) {
  // The real SHP-2/r driver with one BSP refiner reused across levels
  // (constant gain base: future-split objective off): the whole recursion
  // performs exactly one bootstrap reship — every later level advance
  // re-restricts the accumulator replicas through the diff-scan records.
  const BipartiteGraph g = TestGraph();
  RecursiveOptions options;
  options.k = 8;
  options.seed = 5;
  options.iterations_per_level = 4;
  options.future_split_objective = false;
  options.refiner.sweep_mode = RefinerOptions::SweepMode::kPush;
  options.refiner.incremental_rebuild_fraction = 1.0;
  // The driver owns (and destroys) the refiner it gets from the factory, so
  // hand it a forwarding proxy and keep the real engine alive in the test to
  // read its counters after Run returns.
  struct Proxy : RefinerInterface {
    std::shared_ptr<BspRefiner> impl;
    IterationStats RunIteration(const MoveTopology& topo,
                                Partition* partition, uint64_t seed,
                                uint64_t iteration, ThreadPool* pool,
                                const std::vector<BucketId>* anchor,
                                double anchor_penalty) override {
      return impl->RunIteration(topo, partition, seed, iteration, pool,
                                anchor, anchor_penalty);
    }
  };
  std::shared_ptr<BspRefiner> refiner;
  int factory_calls = 0;
  options.refiner_factory = [&](const BipartiteGraph& graph,
                                const RefinerOptions& ropts)
      -> std::unique_ptr<RefinerInterface> {
    ++factory_calls;
    BspConfig config;
    config.num_workers = 4;
    refiner = std::make_shared<BspRefiner>(graph, ropts, config);
    auto proxy = std::make_unique<Proxy>();
    proxy->impl = refiner;
    return proxy;
  };
  const RecursiveResult result = RecursivePartitioner(options).Run(g);
  EXPECT_EQ(result.levels_run, 3u);
  EXPECT_EQ(factory_calls, 1)
      << "a constant gain base must reuse one refiner across levels";
  ASSERT_NE(refiner, nullptr);
  EXPECT_EQ(refiner->num_bootstrap_reships(), 1u)
      << "level advances must patch the replicas, never reship";
  EXPECT_TRUE(Partition::FromAssignment(result.assignment, 8)
                  .IsBalanced(0.051));
}

TEST(BspRefiner, ExternalPartitionMutationSelfHeals) {
  // The replica guard must detect an externally mutated partition, re-sync
  // the query replicas through the per-vertex diff scan, and keep the
  // delta-patched accumulators consistent (Debug builds assert replica
  // equality inside RunIteration).
  const BipartiteGraph g = TestGraph();
  const BucketId k = 4;
  const MoveTopology topo = MoveTopology::FullK(k, g.num_data(), 0.05);
  RefinerOptions options;
  options.sweep_mode = RefinerOptions::SweepMode::kPush;
  BspConfig config;
  config.num_workers = 3;
  BspRefiner refiner(g, options, config);
  Partition partition = Partition::BalancedRandom(g.num_data(), k, 5);
  refiner.RunIteration(topo, &partition, 9, 0);
  refiner.RunIteration(topo, &partition, 9, 1);
  // Mutate behind the refiner's back (the recursive driver does this when
  // redistributing between levels).
  for (VertexId v = 0; v < 50; ++v) {
    partition.Move(v, (partition.bucket_of(v) + 1) % k);
  }
  const IterationStats healed = refiner.RunIteration(topo, &partition, 9, 2);
  EXPECT_TRUE(healed.full_rebuild) << "mutation must trigger the diff scan";
  const IterationStats steady = refiner.RunIteration(topo, &partition, 9, 3);
  EXPECT_FALSE(steady.full_rebuild) << "healed state carries incrementally";
}

TEST(BspRefiner, WorkerStateEstimatePositive) {
  const BipartiteGraph g = TestGraph();
  RefinerOptions options;
  BspConfig config;
  config.num_workers = 4;
  BspRefiner refiner(g, options, config);
  EXPECT_GT(refiner.MaxWorkerStateBytes(), 0u);
}

TEST(CostModel, MoreBytesCostsMoreTime) {
  CostModelConfig config;
  CostModel model(config);
  SuperstepStats cheap;
  cheap.work_units = {100, 100};
  SuperstepStats heavy = cheap;
  heavy.traffic.remote_bytes = 1000000;
  EXPECT_GT(model.SuperstepSecondsEven(heavy, 2),
            model.SuperstepSecondsEven(cheap, 2));
}

TEST(CostModel, SlowestWorkerGates) {
  CostModelConfig config;
  config.barrier_ns = 0;
  config.ns_per_remote_byte = 0;
  CostModel model(config);
  SuperstepStats stats;
  stats.work_units = {10, 1000, 10};
  EXPECT_DOUBLE_EQ(
      model.SuperstepSeconds(stats, {0, 0, 0}),
      1000 * config.ns_per_work_unit * 1e-9);
}

TEST(CostModel, TotalAccumulatesAndScalesMachineSeconds) {
  CostModel model({});
  SuperstepStats stats;
  stats.work_units = {100};
  const SimulatedTime time = model.Total({stats, stats}, 4);
  EXPECT_GT(time.seconds, 0.0);
  EXPECT_DOUBLE_EQ(time.machine_seconds, time.seconds * 4);
}

TEST(DistributedShp, ReportIsConsistent) {
  const BipartiteGraph g = TestGraph();
  DistributedShpOptions options;
  options.bsp.num_workers = 4;
  options.recursive = true;
  const DistributedShpReport report = DistributedShp(options).Run(g, 8);
  EXPECT_EQ(report.k, 8);
  EXPECT_EQ(report.assignment.size(), g.num_data());
  EXPECT_GT(report.num_supersteps, 0u);
  EXPECT_EQ(report.num_supersteps % 4, 0u);
  EXPECT_GT(report.simulated.seconds, 0.0);
  EXPECT_DOUBLE_EQ(report.simulated.machine_seconds,
                   report.simulated.seconds * 4);
  EXPECT_TRUE(Partition::FromAssignment(report.assignment, 8)
                  .IsBalanced(0.05));
}

TEST(DistributedShp, MoreWorkersMoreCommunication) {
  const BipartiteGraph g = TestGraph();
  auto traffic = [&](int workers) {
    DistributedShpOptions options;
    options.bsp.num_workers = workers;
    options.recursive = true;
    options.recursive_options.seed = 9;
    return DistributedShp(options).Run(g, 4).total_traffic.remote_bytes;
  };
  // With more workers a larger fraction of edges crosses machines.
  EXPECT_GT(traffic(8), traffic(2));
}

TEST(BspRefiner, EpochEndCallbackFiresPerIteration) {
  // The serving loop hangs its epoch bookkeeping off on_epoch_end: it must
  // fire exactly once per completed iteration, on the driver thread, with
  // the executed move count of that iteration.
  const BipartiteGraph g = TestGraph();
  const BucketId k = 4;
  const MoveTopology topo = MoveTopology::FullK(k, g.num_data(), 0.05);
  RefinerOptions options;
  BspConfig config;
  config.num_workers = 3;
  std::vector<std::pair<uint64_t, uint64_t>> calls;
  config.on_epoch_end = [&calls](uint64_t epoch, uint64_t moves) {
    calls.emplace_back(epoch, moves);
  };
  BspRefiner refiner(g, options, config);
  Partition partition = Partition::BalancedRandom(g.num_data(), k, 5);
  std::vector<uint64_t> moved;
  for (uint64_t iter = 0; iter < 3; ++iter) {
    moved.push_back(refiner.RunIteration(topo, &partition, 9, iter).num_moved);
  }
  ASSERT_EQ(calls.size(), 3u);
  for (size_t i = 0; i < calls.size(); ++i) {
    EXPECT_EQ(calls[i].first, i);
    EXPECT_EQ(calls[i].second, moved[i]);
  }
}

TEST(BspRefiner, MoveBudgetCapsIteration) {
  // SetMoveBudget flows through BspConfig-independent broker options into
  // superstep 4's trim: no iteration may exceed it, on either engine.
  const BipartiteGraph g = TestGraph();
  const BucketId k = 4;
  const MoveTopology topo = MoveTopology::FullK(k, g.num_data(), 0.05);
  RefinerOptions options;
  BspConfig config;
  config.num_workers = 3;
  BspRefiner bsp(g, options, config);
  Refiner threaded(g, options);
  for (RefinerInterface* refiner :
       std::initializer_list<RefinerInterface*>{&bsp, &threaded}) {
    Partition partition = Partition::BalancedRandom(g.num_data(), k, 5);
    // First iteration unlimited: from a random start the refiner moves far
    // more than the budget we are about to impose.
    const IterationStats free_run =
        refiner->RunIteration(topo, &partition, 9, 0);
    EXPECT_GT(free_run.num_moved, 50u);
    refiner->SetMoveBudget(50);
    for (uint64_t iter = 1; iter < 4; ++iter) {
      const IterationStats stats =
          refiner->RunIteration(topo, &partition, 9, iter);
      EXPECT_LE(stats.num_moved, 50u);
    }
    refiner->SetMoveBudget(0);
    // 0 restores unlimited (no crash, no residual cap semantics to assert
    // beyond the run completing).
    refiner->RunIteration(topo, &partition, 9, 4);
  }
}

}  // namespace
}  // namespace shp
