// BSP engine tests: routing/accounting, sharding, the BSP refiner's
// equivalence to the threaded refiner, Giraph-style optimizations (delta
// supersteps, message combining), and the cost model.
#include <gtest/gtest.h>

#include "core/recursive.h"
#include "core/shp_k.h"
#include "engine/bsp_engine.h"
#include "engine/cost_model.h"
#include "engine/distributed_shp.h"
#include "engine/message_router.h"
#include "engine/shp_bsp.h"
#include "graph/gen_social.h"
#include "objective/objective.h"

namespace shp {
namespace {

TEST(MessageRouter, SeparatesLocalFromRemote) {
  MessageRouter<int> router(3);
  router.Send(0, 0, 1);  // local
  router.Send(0, 1, 2);  // remote
  router.Send(2, 1, 3);  // remote
  EXPECT_EQ(router.Incoming(0, 1).size(), 1u);
  const RouteStats stats = router.CollectAndClear(4);
  EXPECT_EQ(stats.local_messages, 1u);
  EXPECT_EQ(stats.remote_messages, 2u);
  EXPECT_EQ(stats.remote_bytes, 8u);
  // Cleared after collection.
  EXPECT_TRUE(router.Incoming(0, 1).empty());
}

TEST(MessageRouter, SizedCollection) {
  MessageRouter<std::vector<int>> router(2);
  router.Send(0, 1, {1, 2, 3});
  const RouteStats stats = router.CollectAndClearSized(
      [](const std::vector<int>& m) { return m.size() * sizeof(int); });
  EXPECT_EQ(stats.remote_bytes, 12u);
}

TEST(MessageRouter, PerWorkerByteCounters) {
  MessageRouter<int> router(2);
  router.Send(0, 1, 5);
  router.CollectAndClear(10);
  EXPECT_EQ(router.out_bytes()[0], 10u);
  EXPECT_EQ(router.in_bytes()[1], 10u);
  router.ResetByteCounters();
  EXPECT_EQ(router.out_bytes()[0], 0u);
}

TEST(Sharding, CoversAllVerticesExactlyOnce) {
  const VertexSharding sharding(4, 99);
  const auto shards = VertexSharding::BuildDataShards(sharding, 1000);
  size_t total = 0;
  for (const auto& shard : shards) total += shard.size();
  EXPECT_EQ(total, 1000u);
  // Roughly even (hash distribution).
  for (const auto& shard : shards) {
    EXPECT_GT(shard.size(), 150u);
    EXPECT_LT(shard.size(), 350u);
  }
}

TEST(Sharding, QueryAndDataSaltsDiffer) {
  const VertexSharding sharding(16, 7);
  int differing = 0;
  for (VertexId v = 0; v < 100; ++v) {
    if (sharding.DataWorker(v) != sharding.QueryWorker(v)) ++differing;
  }
  EXPECT_GT(differing, 50) << "sides use independent hash streams";
}

BipartiteGraph TestGraph(uint64_t seed = 3) {
  SocialGraphConfig config;
  config.num_users = 1200;
  config.avg_degree = 8;
  config.seed = seed;
  return GenerateSocialGraph(config);
}

TEST(BspRefiner, QualityMatchesThreadedRefiner) {
  const BipartiteGraph g = TestGraph();
  const BucketId k = 8;

  ShpKOptions threaded_options;
  threaded_options.k = k;
  threaded_options.seed = 5;
  const ShpResult threaded = ShpKPartitioner(threaded_options).Run(g);

  ShpKOptions bsp_options = threaded_options;
  std::vector<SuperstepStats> log;
  bsp_options.refiner_factory = [&log](const BipartiteGraph& graph,
                                       const RefinerOptions& options) {
    BspConfig config;
    config.num_workers = 4;
    return std::make_unique<BspRefiner>(graph, options, config, &log);
  };
  const ShpResult bsp = ShpKPartitioner(bsp_options).Run(g);

  const double threaded_fanout = AverageFanout(g, threaded.assignment);
  const double bsp_fanout = AverageFanout(g, bsp.assignment);
  EXPECT_LT(std::abs(bsp_fanout - threaded_fanout) / threaded_fanout, 0.10)
      << "BSP and threaded engines run the same algorithm";
  EXPECT_TRUE(Partition::FromAssignment(bsp.assignment, k).IsBalanced(0.05));
  EXPECT_FALSE(log.empty());
  EXPECT_EQ(log.size() % 4, 0u) << "four supersteps per iteration (Fig. 3)";
}

TEST(BspRefiner, DeltaSuperstepOneShrinksAfterFirstIteration) {
  // Giraph optimization (paper §3.3): vertices that did not move do not
  // send superstep-1 messages, so iteration 2's superstep 1 must carry far
  // fewer messages than iteration 1's (which announces everyone).
  const BipartiteGraph g = TestGraph();
  std::vector<SuperstepStats> log;
  ShpKOptions options;
  options.k = 4;
  options.max_iterations = 6;
  options.min_move_fraction = 0.0;
  options.refiner_factory = [&log](const BipartiteGraph& graph,
                                   const RefinerOptions& ropts) {
    BspConfig config;
    config.num_workers = 4;
    return std::make_unique<BspRefiner>(graph, ropts, config, &log);
  };
  ShpKPartitioner(options).Run(g);
  ASSERT_GE(log.size(), 24u);
  auto s1_messages = [&log](size_t iteration) {
    return log[iteration * 4].traffic.remote_messages +
           log[iteration * 4].traffic.local_messages;
  };
  // Early iterations move many vertices (two delta entries each), so the
  // first comparison is loose; by iteration 6 movement has decayed and the
  // delta traffic must be a small fraction of the initial announcement.
  EXPECT_LT(s1_messages(5), s1_messages(0) / 2)
      << "movement decays, so delta messages must shrink sharply";
}

TEST(BspRefiner, Superstep2VolumeBoundedByFanoutTimesEdges) {
  // Paper §3.3: superstep-2 volume ≈ Σ_q fanout(q)·(#dst) ≤ fanout·|E|.
  const BipartiteGraph g = TestGraph();
  std::vector<SuperstepStats> log;
  ShpKOptions options;
  options.k = 8;
  options.max_iterations = 1;
  options.min_move_fraction = 0.0;
  options.refiner_factory = [&log](const BipartiteGraph& graph,
                                   const RefinerOptions& ropts) {
    BspConfig config;
    config.num_workers = 4;
    return std::make_unique<BspRefiner>(graph, ropts, config, &log);
  };
  ShpKPartitioner(options).Run(g);
  ASSERT_GE(log.size(), 2u);
  const SuperstepStats& s2 = log[1];
  const uint64_t entries_upper =
      static_cast<uint64_t>(8) * g.num_edges();  // k·|E| hard bound
  EXPECT_LT(s2.traffic.remote_bytes / sizeof(BucketCount), entries_upper);
}

TEST(BspRefiner, WorkerStateEstimatePositive) {
  const BipartiteGraph g = TestGraph();
  RefinerOptions options;
  BspConfig config;
  config.num_workers = 4;
  BspRefiner refiner(g, options, config);
  EXPECT_GT(refiner.MaxWorkerStateBytes(), 0u);
}

TEST(CostModel, MoreBytesCostsMoreTime) {
  CostModelConfig config;
  CostModel model(config);
  SuperstepStats cheap;
  cheap.work_units = {100, 100};
  SuperstepStats heavy = cheap;
  heavy.traffic.remote_bytes = 1000000;
  EXPECT_GT(model.SuperstepSecondsEven(heavy, 2),
            model.SuperstepSecondsEven(cheap, 2));
}

TEST(CostModel, SlowestWorkerGates) {
  CostModelConfig config;
  config.barrier_ns = 0;
  config.ns_per_remote_byte = 0;
  CostModel model(config);
  SuperstepStats stats;
  stats.work_units = {10, 1000, 10};
  EXPECT_DOUBLE_EQ(
      model.SuperstepSeconds(stats, {0, 0, 0}),
      1000 * config.ns_per_work_unit * 1e-9);
}

TEST(CostModel, TotalAccumulatesAndScalesMachineSeconds) {
  CostModel model({});
  SuperstepStats stats;
  stats.work_units = {100};
  const SimulatedTime time = model.Total({stats, stats}, 4);
  EXPECT_GT(time.seconds, 0.0);
  EXPECT_DOUBLE_EQ(time.machine_seconds, time.seconds * 4);
}

TEST(DistributedShp, ReportIsConsistent) {
  const BipartiteGraph g = TestGraph();
  DistributedShpOptions options;
  options.bsp.num_workers = 4;
  options.recursive = true;
  const DistributedShpReport report = DistributedShp(options).Run(g, 8);
  EXPECT_EQ(report.k, 8);
  EXPECT_EQ(report.assignment.size(), g.num_data());
  EXPECT_GT(report.num_supersteps, 0u);
  EXPECT_EQ(report.num_supersteps % 4, 0u);
  EXPECT_GT(report.simulated.seconds, 0.0);
  EXPECT_DOUBLE_EQ(report.simulated.machine_seconds,
                   report.simulated.seconds * 4);
  EXPECT_TRUE(Partition::FromAssignment(report.assignment, 8)
                  .IsBalanced(0.05));
}

TEST(DistributedShp, MoreWorkersMoreCommunication) {
  const BipartiteGraph g = TestGraph();
  auto traffic = [&](int workers) {
    DistributedShpOptions options;
    options.bsp.num_workers = workers;
    options.recursive = true;
    options.recursive_options.seed = 9;
    return DistributedShp(options).Run(g, 4).total_traffic.remote_bytes;
  };
  // With more workers a larger fraction of edges crosses machines.
  EXPECT_GT(traffic(8), traffic(2));
}

}  // namespace
}  // namespace shp
