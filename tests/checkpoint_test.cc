// Epoch checkpoint tests: file round-trip, corruption detection with
// fallback to an older valid checkpoint, bounded retention, and
// rollback-and-replay equivalence through BspRefiner::RestoreLatestCheckpoint
// (replay from the restored epoch matches the uninterrupted run).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/move_topology.h"
#include "core/partition.h"
#include "engine/checkpoint.h"
#include "engine/shp_bsp.h"
#include "graph/gen_social.h"
#include "objective/objective.h"

namespace shp {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

CheckpointData Sample(uint64_t epoch) {
  CheckpointData data;
  data.epoch = epoch;
  data.num_moved = 123;
  data.gain_moved = 4.5;
  data.moved_fraction = 0.125;
  data.k = 4;
  data.assignment = {0, 1, 2, 3, 2, 1, 0, 3};
  return data;
}

TEST(CheckpointFile, RoundTripPreservesEveryField) {
  const std::string dir = FreshDir("ckpt_rt");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/one.shpc";
  const CheckpointData data = Sample(17);
  ASSERT_TRUE(WriteCheckpointFile(data, path).ok());
  auto back = ReadCheckpointFile(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().epoch, 17u);
  EXPECT_EQ(back.value().num_moved, 123u);
  EXPECT_DOUBLE_EQ(back.value().gain_moved, 4.5);
  EXPECT_DOUBLE_EQ(back.value().moved_fraction, 0.125);
  EXPECT_EQ(back.value().k, 4u);
  EXPECT_EQ(back.value().assignment, data.assignment);
}

TEST(CheckpointFile, EveryBitFlipAndTruncationIsAStatus) {
  const std::string dir = FreshDir("ckpt_mangle");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/victim.shpc";
  ASSERT_TRUE(WriteCheckpointFile(Sample(3), path).ok());
  std::ifstream in(path, std::ios::binary);
  std::vector<char> full((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  in.close();

  const std::string mangled = dir + "/mangled.shpc";
  // Flip one bit per byte position: all must be rejected cleanly.
  for (size_t i = 0; i < full.size(); ++i) {
    std::vector<char> copy = full;
    copy[i] = static_cast<char>(copy[i] ^ 0x10);
    std::ofstream(mangled, std::ios::binary | std::ios::trunc)
        .write(copy.data(), static_cast<std::streamsize>(copy.size()));
    EXPECT_FALSE(ReadCheckpointFile(mangled).ok())
        << "bit flip at byte " << i << " went undetected";
  }
  // Every truncation point.
  for (size_t cut = 0; cut < full.size(); ++cut) {
    std::ofstream(mangled, std::ios::binary | std::ios::trunc)
        .write(full.data(), static_cast<std::streamsize>(cut));
    EXPECT_FALSE(ReadCheckpointFile(mangled).ok())
        << "prefix of " << cut << " bytes accepted";
  }
}

TEST(CheckpointManager, RetainsNewestAndPrunes) {
  const std::string dir = FreshDir("ckpt_keep");
  CheckpointManager manager(dir, /*keep=*/2);
  for (uint64_t e = 0; e < 5; ++e) {
    ASSERT_TRUE(manager.Write(Sample(e)).ok());
  }
  size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 2u) << "older checkpoints must be pruned";
  auto latest = manager.LoadLatest();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest.value().epoch, 4u);
}

TEST(CheckpointManager, CorruptNewestFallsBackToOlder) {
  const std::string dir = FreshDir("ckpt_fallback");
  CheckpointManager manager(dir, /*keep=*/3);
  ASSERT_TRUE(manager.Write(Sample(7)).ok());
  ASSERT_TRUE(manager.Write(Sample(8)).ok());
  // Corrupt the newest file in place.
  std::string newest;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string p = entry.path().string();
    if (newest.empty() || p > newest) newest = p;
  }
  {
    std::fstream f(newest, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(10);
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(10);
    byte = static_cast<char>(byte ^ 0xff);
    f.write(&byte, 1);
  }
  auto latest = manager.LoadLatest();
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest.value().epoch, 7u)
      << "a corrupt newest checkpoint must fall back, not fail";
}

TEST(CheckpointManager, EmptyDirIsNotFound) {
  CheckpointManager manager(FreshDir("ckpt_empty"), 2);
  auto latest = manager.LoadLatest();
  ASSERT_FALSE(latest.ok());
  EXPECT_EQ(latest.status().code(), StatusCode::kNotFound);
}

// ---- rollback-and-replay through the BSP engine ----

BipartiteGraph TestGraph() {
  SocialGraphConfig config;
  config.num_users = 800;
  config.avg_degree = 8;
  config.seed = 3;
  return GenerateSocialGraph(config);
}

TEST(BspCheckpoint, RestoreWithoutCheckpointingIsNotFound) {
  const BipartiteGraph g = TestGraph();
  RefinerOptions options;
  BspConfig config;
  config.num_workers = 3;
  BspRefiner refiner(g, options, config);
  Partition partition = Partition::BalancedRandom(g.num_data(), 4, 2);
  EXPECT_EQ(refiner.RestoreLatestCheckpoint(&partition).code(),
            StatusCode::kNotFound);
}

TEST(BspCheckpoint, RollbackAndReplayMatchesUninterruptedRun) {
  // Reference: one uninterrupted run, trajectory recorded per iteration.
  // Crash run: same engine config with checkpointing on; after iteration 3
  // the engine "crashes" (we roll it back via RestoreLatestCheckpoint) and
  // replays — the replayed iterations must land on the uninterrupted
  // trajectory within the established rtol 1e-4 fanout contract.
  const BipartiteGraph g = TestGraph();
  const BucketId k = 8;
  const MoveTopology topo = MoveTopology::FullK(k, g.num_data(), 0.05);
  RefinerOptions options;
  options.sweep_mode = RefinerOptions::SweepMode::kPush;
  const uint64_t iterations = 6;

  std::vector<double> reference;
  {
    BspConfig config;
    config.num_workers = 3;
    BspRefiner refiner(g, options, config);
    Partition partition = Partition::BalancedRandom(g.num_data(), k, 2);
    for (uint64_t iter = 0; iter < iterations; ++iter) {
      refiner.RunIteration(topo, &partition, 9, iter);
      reference.push_back(AveragePFanout(g, partition.assignment(), 0.5));
    }
  }

  BspConfig config;
  config.num_workers = 3;
  config.checkpoint_dir = FreshDir("ckpt_replay");
  config.checkpoint_interval = 1;
  config.checkpoint_keep = 2;
  BspRefiner refiner(g, options, config, nullptr);
  Partition partition = Partition::BalancedRandom(g.num_data(), k, 2);
  for (uint64_t iter = 0; iter < 4; ++iter) {
    refiner.RunIteration(topo, &partition, 9, iter);
    ASSERT_NEAR(AveragePFanout(g, partition.assignment(), 0.5),
                reference[iter], 1e-4 * reference[iter]);
  }
  EXPECT_EQ(refiner.fault_counters().checkpoints_written, 4u);

  // Crash: clobber the partition, then roll back to the newest checkpoint
  // (written after iteration 3) and replay the remaining iterations.
  for (VertexId v = 0; v < g.num_data(); ++v) partition.Move(v, 0);
  ASSERT_TRUE(refiner.RestoreLatestCheckpoint(&partition).ok());
  EXPECT_EQ(refiner.fault_counters().rollbacks, 1u);
  ASSERT_NEAR(AveragePFanout(g, partition.assignment(), 0.5), reference[3],
              1e-4 * reference[3])
      << "restore must reproduce the checkpointed assignment";
  for (uint64_t iter = 4; iter < iterations; ++iter) {
    refiner.RunIteration(topo, &partition, 9, iter);
    ASSERT_NEAR(AveragePFanout(g, partition.assignment(), 0.5),
                reference[iter], 1e-4 * reference[iter])
        << "replayed iteration " << iter
        << " diverged from the uninterrupted run";
  }
}

}  // namespace
}  // namespace shp
